bench/perf.ml: Analyze Array Bechamel Bench_common Benchmark Dctcp Engine Hashtbl Instance List Measure Net Printf Staged Stats Tcp Test Time Toolkit
