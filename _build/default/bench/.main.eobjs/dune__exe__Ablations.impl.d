bench/ablations.ml: Bench_common Control Dctcp Fluid List Printf Stats Workloads
