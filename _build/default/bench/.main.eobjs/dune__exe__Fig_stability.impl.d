bench/fig_stability.ml: Bench_common Control Float Format List Printf Stats
