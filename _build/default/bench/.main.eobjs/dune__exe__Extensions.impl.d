bench/extensions.ml: Array Bench_common Dctcp Engine Float List Net Printf Stats String Tcp Workloads
