bench/main.mli:
