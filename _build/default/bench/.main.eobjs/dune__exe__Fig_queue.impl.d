bench/fig_queue.ml: Array Bench_common Dctcp Engine Float List Net Printf Stats Stdlib String Workloads
