bench/fig_incast.ml: Bench_common Hashtbl List Printf Stats String Workloads
