bench/main.ml: Ablations Array Bench_common Extensions Fig_incast Fig_queue Fig_spectrum Fig_stability Fig_sweep List Perf Printf String Sys Unix
