bench/bench_common.ml: Dctcp Engine Int64 Printf Stdlib String Workloads
