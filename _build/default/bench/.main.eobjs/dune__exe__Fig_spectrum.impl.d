bench/fig_spectrum.ml: Array Bench_common Control Engine Float List Printf Stats Workloads
