bench/fig_sweep.ml: Array Bench_common List Printf Stats Workloads
