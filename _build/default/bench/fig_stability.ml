(* Describing-function validation (the quantitative content of the paper's
   Figures 3-8) and Figure 9 (Nyquist stability comparison). *)

module C = Control.Cplx
module Df = Control.Df
module St = Control.Stability
module Plant = Control.Plant

let fig_df () =
  Bench_common.section_header
    "Figures 3-8: describing functions, closed form vs numeric Fourier";
  let t =
    Stats.Table.create ~title:"DF values (K=40; K1=30, K2=50)"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "mechanism";
          Stats.Table.column "X (pkts)";
          Stats.Table.column "closed form";
          Stats.Table.column "numeric";
          Stats.Table.column "rel err";
        ]
  in
  let row name closed numeric x =
    let err = C.dist closed numeric /. Float.max 1e-12 (C.modulus closed) in
    Stats.Table.add_row t
      [
        name;
        Stats.Table.fmt_f 0 x;
        C.to_string closed;
        C.to_string numeric;
        Printf.sprintf "%.2e" err;
      ]
  in
  List.iter
    (fun x ->
      let closed = Df.relay ~k:40. ~x in
      let numeric =
        Df.fundamental_of_indicator
          (fun theta -> Df.relay_indicator ~k:40. ~x ~theta)
          ~x ~n:200000
      in
      row "relay (DCTCP, Eq.22)" closed numeric x)
    [ 45.; 57.; 80.; 150. ];
  List.iter
    (fun x ->
      let closed = Df.hysteresis ~k1:30. ~k2:50. ~x in
      let numeric =
        Df.fundamental_of_indicator
          (fun theta -> Df.hysteresis_indicator ~k1:30. ~k2:50. ~x ~theta)
          ~x ~n:200000
      in
      row "hysteresis (DT, Eq.27)" closed numeric x)
    [ 55.; 70.; 100.; 200. ];
  Stats.Table.print t;
  Printf.printf
    "\nThe hysteresis DF has a positive imaginary part (phase lead), which\n\
     is what pushes -1/N0_dt away from the plant locus in Figure 9.\n"

let fig9 () =
  Bench_common.section_header
    "Figure 9: Nyquist analysis (Theorems 1 and 2)";
  let c = 10e9 /. 12000. and g = 1. /. 16. in
  let grids =
    if !Bench_common.quick then
      { St.default_grids with St.w_points = 800; x_points = 400 }
    else { St.default_grids with St.w_points = 1500; x_points = 800 }
  in
  let t =
    Stats.Table.create
      ~title:
        "paper parameters (C=10G, R0=100us, g=1/16, K=40 | K1=30, K2=50): \
         gain margins"
      ~columns:
        [
          Stats.Table.column "N";
          Stats.Table.column "DCTCP margin";
          Stats.Table.column "DT margin";
          Stats.Table.column "DT/DCTCP";
          Stats.Table.column ~align:Stats.Table.Left "verdicts";
        ]
  in
  List.iter
    (fun n ->
      let p = Plant.params ~c ~n ~r0:1e-4 ~g in
      let mdc = St.dctcp_margin ~grids p ~k:40. in
      let mdt = St.dt_dctcp_margin ~grids p ~k1:30. ~k2:50. in
      let vdc = St.dctcp ~grids p ~k:40. in
      let vdt = St.dt_dctcp ~grids p ~k1:30. ~k2:50. in
      Stats.Table.add_row t
        [
          string_of_int n;
          Stats.Table.fmt_f 3 mdc;
          Stats.Table.fmt_f 3 mdt;
          Stats.Table.fmt_f 3 (mdt /. mdc);
          Format.asprintf "%a / %a" St.pp_verdict vdc St.pp_verdict vdt;
        ])
    [ 10; 20; 30; 40; 50; 60; 70; 80; 100; 150; 200 ];
  Stats.Table.print t;
  Printf.printf
    "\nWith the paper's stated parameters the printed G(jw) never reaches\n\
     the DF loci (see EXPERIMENTS.md): both systems are margin-stable, but\n\
     DCTCP's margin dips lowest near N=50-60 (where the paper's Figure 10\n\
     observes the worst queue deviation) and DT-DCTCP keeps 13-27%% more\n\
     margin at every N.\n";
  (* A configuration where the loci do intersect, showing the paper's
     ordering of critical N. *)
  let r0 = 1e-3 in
  let t2 =
    Stats.Table.create
      ~title:"long-RTT variant (R0=1ms): predicted oscillation onset"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "protocol";
          Stats.Table.column "critical N";
          Stats.Table.column ~align:Stats.Table.Left "limit cycle at N=100";
        ]
  in
  let crit verdict_at =
    St.critical_n ~c ~r0 ~g ~n_max:200 ~verdict_at ()
  in
  let p100 = Plant.params ~c ~n:100 ~r0 ~g in
  let dc_crit = crit (fun p -> St.dctcp ~grids p ~k:40.) in
  let dt_crit = crit (fun p -> St.dt_dctcp ~grids p ~k1:30. ~k2:50.) in
  let str = function Some n -> string_of_int n | None -> "> 200" in
  Stats.Table.add_row t2
    [
      "DCTCP";
      str dc_crit;
      Format.asprintf "%a" St.pp_verdict (St.dctcp ~grids p100 ~k:40.);
    ];
  Stats.Table.add_row t2
    [
      "DT-DCTCP";
      str dt_crit;
      Format.asprintf "%a" St.pp_verdict
        (St.dt_dctcp ~grids p100 ~k1:30. ~k2:50.);
    ];
  Stats.Table.print t2;
  Printf.printf
    "\nPaper: loci intersect at N=60 (DCTCP) vs N=70 (DT-DCTCP). Here the\n\
     same ordering appears (DCTCP first), with the gap direction and the\n\
     mechanism (hysteresis phase lead) reproduced.\n"
