(* Figure 14 (Incast goodput collapse) and Figure 15 (scatter-gather
   completion time) on the simulated 1 Gbps testbed star. *)

module I = Workloads.Incast
module Cm = Workloads.Completion

let protocols () =
  [
    ("DCTCP K=32KB", Bench_common.dctcp_testbed ());
    ("DT (28,34)KB", Bench_common.dt_testbed_a ());
    ("DT (30,34)KB", Bench_common.dt_testbed_b ());
  ]

let flow_counts = [ 4; 8; 12; 16; 20; 24; 28; 30; 32; 34; 36; 38; 40; 42; 44; 48 ]

let fig14 () =
  Bench_common.section_header
    "Figure 14: Incast, 64KB per worker, 1 Gbps star, 128KB buffer";
  let repeats = Bench_common.scale_int 20 in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf "goodput (Mbps), mean of %d synchronized queries"
           repeats)
      ~columns:
        (Stats.Table.column "flows"
        :: List.concat_map
             (fun (name, _) ->
               [
                 Stats.Table.column name;
                 Stats.Table.column ("to/run " ^ String.sub name 0 2);
               ])
             (protocols ()))
  in
  let collapse = Hashtbl.create 8 in
  List.iter
    (fun n ->
      let row =
        List.concat_map
          (fun (name, proto) ->
            let r =
              I.run proto { I.default_config with I.n_flows = n; repeats }
            in
            let g = Bench_common.mbps r.I.mean_goodput_bps in
            if g < 500. && not (Hashtbl.mem collapse name) then
              Hashtbl.replace collapse name n;
            [ Stats.Table.fmt_f 1 g; Stats.Table.fmt_f 1 r.I.timeouts_per_run ])
          (protocols ())
      in
      Stats.Table.add_row t (string_of_int n :: row))
    flow_counts;
  Stats.Table.print t;
  Printf.printf "\ncollapse onset (first n with goodput < 500 Mbps):\n";
  List.iter
    (fun (name, _) ->
      Printf.printf "  %-14s %s\n" name
        (match Hashtbl.find_opt collapse name with
        | Some n -> string_of_int n
        | None -> "none up to 48"))
    (protocols ());
  Printf.printf
    "\nPaper: DCTCP collapses at 32 synchronized flows, DT-DCTCP holds until\n\
     37 — a ~5-flow postponement. The reproduction shows the same ordering\n\
     and a similar gap (absolute onsets shift with min-RTO and jitter).\n"

let fig15 () =
  Bench_common.section_header
    "Figure 15: completion time of 1MB scattered over n workers";
  let repeats = Bench_common.scale_int 20 in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf "query completion time (ms), mean of %d queries"
           repeats)
      ~columns:
        (Stats.Table.column "flows"
        :: List.concat_map
             (fun (name, _) ->
               [ Stats.Table.column name; Stats.Table.column "max" ])
             (protocols ()))
  in
  List.iter
    (fun n ->
      let row =
        List.concat_map
          (fun (_, proto) ->
            let r =
              Cm.run proto { Cm.default_config with Cm.n_flows = n; repeats }
            in
            [
              Stats.Table.fmt_f 2 (r.Cm.mean_completion_s *. 1e3);
              Stats.Table.fmt_f 2 (r.Cm.max_completion_s *. 1e3);
            ])
          (protocols ())
      in
      Stats.Table.add_row t (string_of_int n :: row))
    flow_counts;
  Stats.Table.print t;
  Printf.printf
    "\nPaper: floor ~10 ms (1MB at 1 Gbps); a ~20x jump once Incast begins.\n\
     DCTCP's completion oscillates from 34 flows and jumps at 40; DT-DCTCP\n\
     climbs smoothly and jumps later (42). Look for the later, cleaner\n\
     transition in the DT (28,34) column.\n"
