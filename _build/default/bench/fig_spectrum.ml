(* Spectral validation: the packet simulator's measured oscillation
   frequency against the describing-function prediction, in the long-RTT
   configuration where Theorems 1-2 predict finite limit cycles. *)

module Time = Engine.Time
module L = Workloads.Longlived
module St = Control.Stability

let measure proto ~n ~rtt_us =
  let sample_period = Time.span_of_us 50. in
  let cfg =
    {
      L.default_config with
      L.n_flows = n;
      rtt = Time.span_of_us rtt_us;
      warmup = Bench_common.scale_span (Time.span_of_ms 200.);
      measure = Bench_common.scale_span (Time.span_of_ms 400.);
      trace_sampling = Some sample_period;
      min_rto = Time.span_of_ms 50.;
    }
  in
  let r = L.run proto cfg in
  match r.L.queue_series with
  | None -> (r, None)
  | Some series ->
      let samples = Array.map snd series in
      ( r,
        Stats.Spectrum.dominant_frequency ~samples
          ~sample_rate_hz:(1. /. Time.span_to_sec sample_period) )

let run () =
  Bench_common.section_header
    "Spectral validation: simulated oscillation frequency vs DF prediction \
     (R0 = 1 ms)";
  let c = 10e9 /. 12000. and r0 = 1e-3 and g = 1. /. 16. in
  let grids =
    { St.default_grids with St.w_points = 1200; x_points = 600 }
  in
  let t =
    Stats.Table.create
      ~title:"dominant queue frequency (Hz), packet simulator vs Theorems 1-2"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "protocol";
          Stats.Table.column "N";
          Stats.Table.column "DF f (Hz)";
          Stats.Table.column "sim f (Hz)";
          Stats.Table.column "sim queue mean";
          Stats.Table.column "sim queue std";
        ]
  in
  List.iter
    (fun n ->
      let params = Control.Plant.params ~c ~n ~r0 ~g in
      let add name verdict proto =
        let df_f =
          match verdict with
          | St.Oscillatory o ->
              Stats.Table.fmt_f 0 (o.St.omega /. (2. *. Float.pi))
          | St.Stable -> "stable"
        in
        let r, peak = measure proto ~n ~rtt_us:1000. in
        let sim_f =
          match peak with
          | Some p -> Stats.Table.fmt_f 0 p.Stats.Spectrum.frequency_hz
          | None -> "none"
        in
        Stats.Table.add_row t
          [
            name;
            string_of_int n;
            df_f;
            sim_f;
            Stats.Table.fmt_f 1 r.L.mean_queue_pkts;
            Stats.Table.fmt_f 1 r.L.std_queue_pkts;
          ]
      in
      add "DCTCP"
        (St.dctcp ~grids params ~k:40.)
        (Bench_common.dctcp_sim ());
      add "DT-DCTCP"
        (St.dt_dctcp ~grids params ~k1:30. ~k2:50.)
        (Bench_common.dt_sim ()))
    [ 60; 100 ];
  Stats.Table.print t;
  Printf.printf
    "\nThe DF predicts the first harmonic of the limit cycle in the smooth\n\
     fluid abstraction; the packet system adds window quantization and\n\
     ACK-clocking, which shorten the cycle. Frequencies agree within a\n\
     factor of two and the predicted ordering (DT-DCTCP oscillates faster\n\
     and with less queue deviation than DCTCP) holds in the packet system.\n"
