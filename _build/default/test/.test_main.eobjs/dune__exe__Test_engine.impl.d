test/test_engine.ml: Alcotest Array Engine Float Fun Gen Int64 List QCheck QCheck_alcotest
