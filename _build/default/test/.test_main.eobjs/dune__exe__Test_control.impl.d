test/test_control.ml: Alcotest Array Control Dctcp Float Format List Net Printf QCheck QCheck_alcotest String
