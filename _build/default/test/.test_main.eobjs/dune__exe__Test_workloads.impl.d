test/test_workloads.ml: Alcotest Array Dctcp Engine Filename Float Net Printf Stats Sys Tcp Workloads
