test/test_net.ml: Alcotest Array Engine Format List Net Printf Stats Tcp
