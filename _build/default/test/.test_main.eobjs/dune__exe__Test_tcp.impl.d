test/test_tcp.ml: Alcotest Array Engine Float List Net Option Printf Tcp
