test/test_dctcp.ml: Alcotest Dctcp Engine Float Fun Gen List Net Printf QCheck QCheck_alcotest Tcp
