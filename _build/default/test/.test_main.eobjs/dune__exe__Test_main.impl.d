test/test_main.ml: Alcotest Test_control Test_dctcp Test_engine Test_fluid Test_net Test_stats Test_tcp Test_workloads
