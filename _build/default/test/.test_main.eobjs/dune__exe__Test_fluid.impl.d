test/test_fluid.ml: Alcotest Array Float Fluid Printf Stdlib
