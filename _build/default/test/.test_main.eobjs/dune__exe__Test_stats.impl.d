test/test_stats.ml: Alcotest Array Complex Engine Filename Float Gen List Printf QCheck QCheck_alcotest Stats String Sys
