(* Tests for the DDE integrator and the DCTCP fluid model. *)

module Dde = Fluid.Dde
module Fm = Fluid.Dctcp_fluid

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg

(* --- Dde on known systems --- *)

let test_dde_exponential_decay () =
  (* x' = -x, no delay involvement: x(t) = e^{-t} *)
  let problem =
    {
      Dde.dim = 1;
      deriv = (fun ~t:_ ~state ~delayed:_ -> [| -.state.(0) |]);
      output = (fun ~t:_ ~state:_ -> 0.);
      tau = 1.;
      init_state = [| 1. |];
      init_output = 0.;
    }
  in
  let sol = Dde.integrate problem ~dt:1e-3 ~t_end:1. in
  let x = Dde.component sol 0 in
  let last = x.(Array.length x - 1) in
  checkb "e^{-1}" true (Float.abs (last -. Stdlib.exp (-1.)) < 1e-6)

let test_dde_harmonic_oscillator () =
  (* x'' = -x as a 2d system; energy conserved by RK4 over a few periods *)
  let problem =
    {
      Dde.dim = 2;
      deriv = (fun ~t:_ ~state ~delayed:_ -> [| state.(1); -.state.(0) |]);
      output = (fun ~t:_ ~state:_ -> 0.);
      tau = 1.;
      init_state = [| 1.; 0. |];
      init_output = 0.;
    }
  in
  let sol = Dde.integrate problem ~dt:1e-3 ~t_end:(4. *. Float.pi) in
  let n = Array.length sol.Dde.times - 1 in
  let x = sol.Dde.states.(n).(0) and v = sol.Dde.states.(n).(1) in
  checkb "energy" true (Float.abs ((x *. x) +. (v *. v) -. 1.) < 1e-6);
  (* after two full periods we are back at the start *)
  checkb "periodic" true (Float.abs (x -. 1.) < 1e-4)

let test_dde_delay_shift () =
  (* x' = y(t - tau) where y(t) = t: x should integrate a ramp delayed by
     tau (zero before tau since init_output = 0). *)
  let problem =
    {
      Dde.dim = 1;
      deriv = (fun ~t:_ ~state:_ ~delayed -> [| delayed |]);
      output = (fun ~t ~state:_ -> t);
      tau = 1.;
      init_state = [| 0. |];
      init_output = 0.;
    }
  in
  let sol = Dde.integrate problem ~dt:1e-3 ~t_end:2. in
  let x = Dde.component sol 0 in
  let last = x.(Array.length x - 1) in
  (* integral of (t-1) over [1,2] = 0.5 *)
  checkb "delayed ramp" true (Float.abs (last -. 0.5) < 1e-3)

let test_dde_validation () =
  let p =
    {
      Dde.dim = 1;
      deriv = (fun ~t:_ ~state:_ ~delayed:_ -> [| 0. |]);
      output = (fun ~t:_ ~state:_ -> 0.);
      tau = 1.;
      init_state = [| 0. |];
      init_output = 0.;
    }
  in
  checkb "bad dt" true
    (match Dde.integrate p ~dt:0. ~t_end:1. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad tau" true
    (match Dde.integrate { p with Dde.tau = -1. } ~dt:0.1 ~t_end:1. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "dim mismatch" true
    (match Dde.integrate { p with Dde.init_state = [||] } ~dt:0.1 ~t_end:1. with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Dctcp_fluid --- *)

let paper_fluid ?(n = 10) ?(marking = Fm.Single 40.) () =
  Fm.make ~n ~c:(10e9 /. 12000.) ~r0:1e-4 ~g:(1. /. 16.) ~marking ()

let test_fluid_equilibrium_values () =
  let p = paper_fluid () in
  checkf ~eps:1e-2 "w0" 8.33 (Fm.w0 p);
  checkf ~eps:1e-3 "alpha0" (sqrt (2. /. (1e-4 *. (10e9 /. 12000.) /. 10.)))
    (Fm.alpha0 p);
  (* alpha0 capped at 1 when the operating point degenerates *)
  let p100 = paper_fluid ~n:100 () in
  checkf "alpha0 capped" 1. (Fm.alpha0 p100)

let test_fluid_reaches_capacity () =
  let p = paper_fluid () in
  let traj = Fm.simulate p ~t_end:0.2 () in
  (* In steady state N W / R0 ~ C: per-flow window near W0. *)
  let n = Array.length traj.Fm.w in
  let w_tail = traj.Fm.w.(n - 1) in
  checkb "window near equilibrium" true
    (Float.abs (w_tail -. Fm.w0 p) /. Fm.w0 p < 0.5)

let test_fluid_queue_near_k () =
  let p = paper_fluid () in
  let traj = Fm.simulate p ~t_end:0.3 () in
  let mean, _ = Fm.queue_stats traj ~discard:0.1 in
  checkb
    (Printf.sprintf "queue mean %.1f around K=40" mean)
    true
    (mean > 10. && mean < 80.)

let test_fluid_queue_nonnegative () =
  let p = paper_fluid () in
  let traj = Fm.simulate p ~t_end:0.2 () in
  Array.iter (fun q -> checkb "q >= 0" true (q >= -1e-9)) traj.Fm.q

let test_fluid_alpha_in_range () =
  let p = paper_fluid () in
  let traj = Fm.simulate p ~t_end:0.2 () in
  Array.iter
    (fun a -> checkb "alpha in [0,1]" true (a >= -1e-9 && a <= 1.0 +. 1e-9))
    traj.Fm.alpha

let test_fluid_marking_indicator_consistent () =
  let p = paper_fluid () in
  let traj = Fm.simulate p ~t_end:0.05 () in
  (* Wherever p = 1 the queue must be above K at that instant (relay). *)
  Array.iteri
    (fun i pi ->
      if pi > 0.5 then checkb "relay consistency" true (traj.Fm.q.(i) > 40.))
    traj.Fm.p

let test_fluid_dt_variant_runs () =
  let p = paper_fluid ~marking:(Fm.Double (30., 50.)) () in
  let traj = Fm.simulate p ~t_end:0.3 () in
  let mean, std = Fm.queue_stats traj ~discard:0.1 in
  checkb "dt queue bounded" true (mean > 5. && mean < 100.);
  checkb "std finite" true (Float.is_finite std)

let test_fluid_dt_hysteresis_marks_above_hi () =
  (* With Double(30,50), any instant with q > 50 must be marking. *)
  let p = paper_fluid ~marking:(Fm.Double (30., 50.)) () in
  let traj = Fm.simulate p ~t_end:0.1 () in
  Array.iteri
    (fun i pi ->
      if traj.Fm.q.(i) > 50.5 then
        checkb "above hi marks" true (pi > 0.5))
    traj.Fm.p

let test_fluid_oscillation_amplitude () =
  let p = paper_fluid () in
  let traj = Fm.simulate p ~t_end:0.3 () in
  let amp = Fm.oscillation_amplitude traj ~discard:0.1 in
  checkb "positive amplitude" true (amp > 0.)

let test_fluid_more_flows_higher_alpha () =
  let run n =
    let traj = Fm.simulate (paper_fluid ~n ()) ~t_end:0.3 () in
    let start = Array.length traj.Fm.alpha / 2 in
    let sum = ref 0. in
    for i = start to Array.length traj.Fm.alpha - 1 do
      sum := !sum +. traj.Fm.alpha.(i)
    done;
    !sum /. float_of_int (Array.length traj.Fm.alpha - start)
  in
  checkb "alpha grows with N" true (run 50 > run 5)

let test_fluid_validation () =
  checkb "bad n" true
    (match Fm.make ~n:0 ~c:1. ~r0:1. ~g:0.5 ~marking:(Fm.Single 1.) () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad threshold" true
    (match
       Fm.make ~n:1 ~c:1. ~r0:1. ~g:0.5 ~marking:(Fm.Double (-1., 2.)) ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let p = paper_fluid () in
  let traj = Fm.simulate p ~t_end:0.01 () in
  checkb "discard beyond end raises" true
    (match Fm.queue_stats traj ~discard:1. with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Limit_cycle --- *)

let synthetic_sine ~amp ~freq ~offset ~t_end ~dt =
  let n = int_of_float (t_end /. dt) in
  let times = Array.init n (fun i -> float_of_int i *. dt) in
  let values =
    Array.map (fun t -> offset +. (amp *. sin (2. *. Float.pi *. freq *. t)))
      times
  in
  (times, values)

let test_limit_cycle_sine () =
  let times, values =
    synthetic_sine ~amp:25. ~freq:140. ~offset:60. ~t_end:0.2 ~dt:1e-5
  in
  match Fluid.Limit_cycle.measure ~times ~values ~discard:0.05 with
  | Some lc ->
      checkb "amplitude" true (Float.abs (lc.Fluid.Limit_cycle.amplitude -. 25.) < 0.5);
      checkb "frequency" true
        (Float.abs ((1. /. lc.Fluid.Limit_cycle.period) -. 140.) < 2.);
      checkb "omega consistent" true
        (Float.abs
           (lc.Fluid.Limit_cycle.omega
           -. (2. *. Float.pi /. lc.Fluid.Limit_cycle.period))
        < 1e-6);
      checkb "mean" true (Float.abs (lc.Fluid.Limit_cycle.mean -. 60.) < 0.5);
      checkb "cycles counted" true (lc.Fluid.Limit_cycle.cycles >= 15)
  | None -> Alcotest.fail "expected a limit cycle"

let test_limit_cycle_flat_signal () =
  let times = Array.init 1000 (fun i -> float_of_int i *. 1e-4) in
  let values = Array.make 1000 42. in
  checkb "no cycle on flat" true
    (Fluid.Limit_cycle.measure ~times ~values ~discard:0.01 = None)

let test_limit_cycle_too_few_cycles () =
  (* half a period only *)
  let times, values =
    synthetic_sine ~amp:10. ~freq:1. ~offset:0. ~t_end:0.5 ~dt:1e-3
  in
  checkb "needs 3 cycles" true
    (Fluid.Limit_cycle.measure ~times ~values ~discard:0.0 = None)

let test_limit_cycle_validation () =
  let times = [| 0.; 1. |] in
  checkb "length mismatch" true
    (match Fluid.Limit_cycle.measure ~times ~values:[| 0. |] ~discard:0. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "discard too large" true
    (match
       Fluid.Limit_cycle.measure ~times ~values:[| 0.; 1. |] ~discard:10.
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_limit_cycle_of_fluid_oscillation () =
  (* Long-RTT fixed-R0 configuration: the relay loop produces a sustained
     oscillation whose DT amplitude is below DCTCP's (paper's ordering). *)
  let c = 10e9 /. 12000. and r0 = 1e-3 and g = 1. /. 16. in
  let cycle marking =
    let p =
      Fm.make ~variable_rtt:false ~n:100 ~c ~r0 ~g ~marking
        ~init_w:(r0 *. c /. 100.) ~init_alpha:0.3 ~init_q:20. ()
    in
    let traj = Fm.simulate p ~t_end:0.6 () in
    Fluid.Limit_cycle.of_queue traj ~discard:0.3
  in
  match (cycle (Fm.Single 40.), cycle (Fm.Double (30., 50.))) with
  | Some dc, Some dt ->
      checkb "dctcp oscillates substantially" true
        (dc.Fluid.Limit_cycle.amplitude > 40.);
      checkb
        (Printf.sprintf "dt amplitude %.1f < dctcp amplitude %.1f"
           dt.Fluid.Limit_cycle.amplitude dc.Fluid.Limit_cycle.amplitude)
        true
        (dt.Fluid.Limit_cycle.amplitude < dc.Fluid.Limit_cycle.amplitude)
  | _ -> Alcotest.fail "expected oscillation in both systems"

let suites =
  [
    ( "fluid.dde",
      [
        Alcotest.test_case "exponential decay" `Quick test_dde_exponential_decay;
        Alcotest.test_case "harmonic oscillator" `Quick
          test_dde_harmonic_oscillator;
        Alcotest.test_case "delay shift" `Quick test_dde_delay_shift;
        Alcotest.test_case "validation" `Quick test_dde_validation;
      ] );
    ( "fluid.dctcp",
      [
        Alcotest.test_case "equilibrium values" `Quick
          test_fluid_equilibrium_values;
        Alcotest.test_case "reaches capacity" `Quick test_fluid_reaches_capacity;
        Alcotest.test_case "queue near K" `Quick test_fluid_queue_near_k;
        Alcotest.test_case "queue non-negative" `Quick
          test_fluid_queue_nonnegative;
        Alcotest.test_case "alpha in range" `Quick test_fluid_alpha_in_range;
        Alcotest.test_case "relay indicator consistent" `Quick
          test_fluid_marking_indicator_consistent;
        Alcotest.test_case "double-threshold variant" `Quick
          test_fluid_dt_variant_runs;
        Alcotest.test_case "hysteresis marks above hi" `Quick
          test_fluid_dt_hysteresis_marks_above_hi;
        Alcotest.test_case "oscillation amplitude" `Quick
          test_fluid_oscillation_amplitude;
        Alcotest.test_case "alpha grows with N" `Quick
          test_fluid_more_flows_higher_alpha;
        Alcotest.test_case "validation" `Quick test_fluid_validation;
      ] );
    ( "fluid.limit_cycle",
      [
        Alcotest.test_case "synthetic sine" `Quick test_limit_cycle_sine;
        Alcotest.test_case "flat signal" `Quick test_limit_cycle_flat_signal;
        Alcotest.test_case "too few cycles" `Quick
          test_limit_cycle_too_few_cycles;
        Alcotest.test_case "validation" `Quick test_limit_cycle_validation;
        Alcotest.test_case "fluid oscillation ordering" `Slow
          test_limit_cycle_of_fluid_oscillation;
      ] );
  ]
