(* Fluid trajectories: integrate the paper's delay-differential fluid model
   (Eqs. 1-3) for both marking mechanisms and render the queue paths.

   Run with: dune exec examples/fluid_trajectories.exe
   Also writes fluid_dctcp.csv / fluid_dt.csv in the current directory. *)

module Fm = Fluid.Dctcp_fluid

let simulate name marking csv_file =
  let params =
    Fm.make ~n:20 ~c:(10e9 /. 12000.) ~r0:1e-4 ~g:(1. /. 16.) ~marking ()
  in
  let traj = Fm.simulate params ~t_end:0.05 () in
  let mean, std = Fm.queue_stats traj ~discard:0.02 in
  Printf.printf "%-22s queue mean %.1f pkts, stddev %.2f, swing %.1f\n" name
    mean std
    (Fm.oscillation_amplitude traj ~discard:0.02);
  let oc = open_out csv_file in
  output_string oc "t_s,w_pkts,alpha,q_pkts,p\n";
  Array.iteri
    (fun i t ->
      Printf.fprintf oc "%g,%g,%g,%g,%g\n" t traj.Fm.w.(i) traj.Fm.alpha.(i)
        traj.Fm.q.(i) traj.Fm.p.(i))
    traj.Fm.times;
  close_out oc;
  (* Down-sample the tail of the queue trajectory for the terminal plot. *)
  let n = Array.length traj.Fm.q in
  let tail = Array.sub traj.Fm.q (n / 2) (n / 2) in
  let step = Stdlib.max 1 (Array.length tail / 400) in
  Array.init (Array.length tail / step) (fun i -> tail.(i * step))

let () =
  print_endline "DCTCP fluid model, N=20 flows, C=10 Gbps, R0=100 us, g=1/16";
  let q_dc = simulate "single threshold K=40" (Fm.Single 40.) "fluid_dctcp.csv" in
  let q_dt =
    simulate "double threshold (30,50)" (Fm.Double (30., 50.)) "fluid_dt.csv"
  in
  print_newline ();
  print_string
    (Stats.Ascii_plot.render ~height:14 ~y_label:"queue (packets), last 25 ms"
       ~series:[ ("DCTCP", q_dc); ("DT-DCTCP", q_dt) ]
       ());
  print_endline "\nFull trajectories: fluid_dctcp.csv, fluid_dt.csv"
