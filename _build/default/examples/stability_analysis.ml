(* Stability analysis: apply the paper's describing-function method
   (Section IV-V) programmatically — compute the plant, the DFs, the gain
   margins, and the predicted oscillation onset.

   Run with: dune exec examples/stability_analysis.exe *)

module Plant = Control.Plant
module St = Control.Stability
module Df = Control.Df
module C = Control.Cplx

let grids = { St.default_grids with St.w_points = 1200; x_points = 600 }

let () =
  (* The paper's parameters: C = 10 Gbps of 1500 B packets, R0 = 100 us,
     g = 1/16, K = 40 pkts, (K1, K2) = (30, 50). *)
  let params = Plant.paper_params ~n:60 () in
  Printf.printf "Operating point at N=60: W0 = %.2f pkts, alpha0 = %.3f\n"
    (Plant.w0 params) (Plant.alpha0 params);

  (* The describing functions themselves (Eqs. 22 and 27). *)
  let x = 80. in
  Printf.printf "\nDF at amplitude X = %.0f pkts:\n" x;
  Printf.printf "  relay (DCTCP)      N(X) = %s\n"
    (C.to_string (Df.relay ~k:40. ~x));
  Printf.printf "  hysteresis (DT)    N(X) = %s   <- positive Im = phase lead\n"
    (C.to_string (Df.hysteresis ~k1:30. ~k2:50. ~x));

  (* Gain margins across the flow-count sweep. *)
  Printf.printf "\nGain margin to oscillation onset (1.0 = limit cycle):\n";
  Printf.printf "  %4s  %8s  %8s\n" "N" "DCTCP" "DT-DCTCP";
  List.iter
    (fun n ->
      let p = Plant.paper_params ~n () in
      Printf.printf "  %4d  %8.3f  %8.3f\n%!" n
        (St.dctcp_margin ~grids p ~k:40.)
        (St.dt_dctcp_margin ~grids p ~k1:30. ~k2:50.))
    [ 10; 30; 50; 60; 70; 100 ];

  (* A configuration where the loci really intersect: scale the RTT up. *)
  let c = 10e9 /. 12000. and g = 1. /. 16. and r0 = 1e-3 in
  let crit verdict_at = St.critical_n ~c ~r0 ~g ~n_max:200 ~verdict_at () in
  let show = function Some n -> string_of_int n | None -> "> 200" in
  Printf.printf "\nWith R0 = 1 ms the loci intersect (Theorems 1-2 verdicts):\n";
  Printf.printf "  DCTCP oscillates from    N = %s\n"
    (show (crit (fun p -> St.dctcp ~grids p ~k:40.)));
  Printf.printf "  DT-DCTCP oscillates from N = %s\n"
    (show (crit (fun p -> St.dt_dctcp ~grids p ~k1:30. ~k2:50.)));
  let p100 = Plant.params ~c ~n:100 ~r0 ~g in
  Format.printf "  predicted DCTCP limit cycle at N=100: %a@."
    St.pp_verdict (St.dctcp ~grids p100 ~k:40.)
