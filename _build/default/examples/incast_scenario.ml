(* Incast scenario: sweep the number of synchronized senders on the 1 Gbps
   testbed star and find where each protocol's goodput collapses — the
   paper's Figure 14 experiment as a library-use example.

   Run with: dune exec examples/incast_scenario.exe *)

module I = Workloads.Incast

let sweep name proto =
  Printf.printf "\n%s\n" name;
  Printf.printf "  flows  goodput(Mbps)  timeouts/run\n";
  let collapse = ref None in
  List.iter
    (fun n ->
      let cfg = { I.default_config with I.n_flows = n; repeats = 10 } in
      let r = I.run proto cfg in
      let mbps = r.I.mean_goodput_bps /. 1e6 in
      if mbps < 500. && !collapse = None then collapse := Some n;
      Printf.printf "  %5d  %13.1f  %12.1f\n%!" n mbps r.I.timeouts_per_run)
    [ 8; 16; 24; 30; 32; 34; 36; 38; 40 ];
  match !collapse with
  | Some n -> Printf.printf "  -> goodput collapses at %d flows\n" n
  | None -> Printf.printf "  -> no collapse in this range\n"

let () =
  print_endline
    "Incast: n workers each answer a query with 64 KB simultaneously";
  print_endline
    "(1 Gbps links, 128 KB bottleneck buffer, 200 ms min RTO, 300 us jitter)";
  sweep "DCTCP, K = 32 KB" (Dctcp.Protocol.dctcp ~k_bytes:(32 * 1024) ());
  sweep "DT-DCTCP, start 28 KB / stop 34 KB"
    (Dctcp.Protocol.dt_dctcp ~k1_bytes:(28 * 1024) ~k2_bytes:(34 * 1024) ());
  print_endline
    "\nDT-DCTCP's smaller queue swings keep the shallow buffer from\n\
     overflowing a few flows longer, postponing the collapse (paper: 32 vs 37)."
