(* Quickstart: build the paper's dumbbell by hand, run DCTCP and DT-DCTCP
   over it, and print the queue statistics the whole paper is about.

   Run with: dune exec examples/quickstart.exe *)

module Sim = Engine.Sim
module Time = Engine.Time

let run_protocol (proto : Dctcp.Protocol.t) =
  (* A fresh simulator per run keeps experiments independent and
     reproducible. *)
  let sim = Sim.create ~seed:7L () in

  (* 10 senders -> one 10 Gbps bottleneck -> one receiver; 100 us RTT.
     The marking policy (single vs double threshold) is the only thing
     that differs between the two protocols. *)
  let net =
    Net.Topology.dumbbell sim ~n_senders:10 ~bottleneck_rate_bps:10e9
      ~rtt:(Time.span_of_us 100.) ~buffer_bytes:(1000 * 1500)
      ~marking:(proto.Dctcp.Protocol.marking ())
      ()
  in

  (* One long-lived flow per sender, all using the protocol's congestion
     control and receiver echo policy. *)
  let flows =
    Array.mapi
      (fun i src ->
        Tcp.Flow.create sim ~src ~dst:net.Net.Topology.receiver ~flow:i
          ~cc:proto.Dctcp.Protocol.cc ~echo:proto.Dctcp.Protocol.echo ())
      net.Net.Topology.senders
  in
  Array.iteri
    (fun i f -> Tcp.Flow.start_at f (Time.of_us (float_of_int i *. 10.)))
    flows;

  (* Warm up 50 ms, then measure the bottleneck queue for 100 ms. *)
  let bottleneck = Net.Port.queue net.Net.Topology.bottleneck in
  Sim.run ~until:(Time.of_ms 50.) sim;
  Net.Queue_disc.reset_stats bottleneck;
  Net.Port.reset_counters net.Net.Topology.bottleneck;
  Sim.run ~until:(Time.of_ms 150.) sim;

  let throughput =
    float_of_int (Net.Port.bytes_sent net.Net.Topology.bottleneck * 8) /. 0.1
  in
  Printf.printf "%-10s mean queue %5.1f pkts  stddev %5.2f  throughput %.2f Gbps  alpha %.3f\n"
    proto.Dctcp.Protocol.name
    (Net.Queue_disc.mean_occupancy_packets bottleneck)
    (Net.Queue_disc.stddev_occupancy_packets bottleneck)
    (throughput /. 1e9)
    (match Tcp.Flow.alpha flows.(0) with Some a -> a | None -> nan)

let () =
  print_endline "DT-DCTCP quickstart: 10 flows, 10 Gbps dumbbell, 100 us RTT";
  run_protocol (Dctcp.Protocol.dctcp_pkts ~k:40 ());
  run_protocol (Dctcp.Protocol.dt_dctcp_pkts ~k1:30 ~k2:50 ());
  print_endline
    "Both hold the queue near the thresholds at full throughput; DT-DCTCP\n\
     does it with a smaller standard deviation (the paper's core claim)."
