(* Deadline scenario: the D2TCP extension in action — the same fan-in, once
   with plain DCTCP senders and once with deadline-aware backoff, scored by
   the fraction of per-flow deadlines met.

   Run with: dune exec examples/deadline_scenario.exe *)

module Time = Engine.Time
module D = Workloads.Deadline

let config n =
  {
    D.default_config with
    D.n_flows = n;
    repeats = 10;
    rate_bps = 10e9;
    buffer_bytes = 512 * 1024;
    bytes_per_flow = 300 * 1024;
    min_rto = Time.span_of_ms 10.;
    deadline = Time.span_of_ms 2.;
    deadline_spread = Time.span_of_ms 4.;
  }

let marking () = Dctcp.Marking_policies.single_threshold ~k_bytes:(40 * 1500)

let () =
  print_endline
    "Deadline fan-in: n workers send 300 KB each; deadlines uniform in\n\
     [2 ms, 6 ms]; 10 Gbps star, K = 40 packets.";
  Printf.printf "\n  %5s  %12s  %12s\n" "flows" "DCTCP met" "D2TCP met";
  List.iter
    (fun n ->
      let dctcp = D.run ~marking (D.Plain (Dctcp.Dctcp_cc.cc ())) (config n) in
      let d2tcp =
        D.run ~marking
          (D.Deadline_aware
             (fun ~total_segments ~deadline ->
               Dctcp.D2tcp_cc.cc ~total_segments ~deadline ()))
          (config n)
      in
      Printf.printf "  %5d  %11.0f%%  %11.0f%%\n%!" n
        (100. *. dctcp.D.met_fraction)
        (100. *. d2tcp.D.met_fraction))
    [ 8; 10; 12; 16 ];
  print_endline
    "\nD2TCP gates DCTCP's backoff by deadline imminence (p = alpha^d):\n\
     far-deadline flows yield bandwidth, near-deadline flows keep it."
