examples/fluid_trajectories.ml: Array Fluid Printf Stats Stdlib
