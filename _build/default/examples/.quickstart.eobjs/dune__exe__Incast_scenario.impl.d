examples/incast_scenario.ml: Dctcp List Printf Workloads
