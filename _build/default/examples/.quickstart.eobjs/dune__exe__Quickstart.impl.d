examples/quickstart.ml: Array Dctcp Engine Net Printf Tcp
