examples/stability_analysis.ml: Control Format List Printf
