examples/fluid_trajectories.mli:
