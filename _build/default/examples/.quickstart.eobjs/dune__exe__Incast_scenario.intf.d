examples/incast_scenario.mli:
