examples/deadline_scenario.mli:
