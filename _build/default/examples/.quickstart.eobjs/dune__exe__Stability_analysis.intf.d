examples/stability_analysis.mli:
