examples/quickstart.mli:
