examples/deadline_scenario.ml: Dctcp Engine List Printf Workloads
