lib/engine/heap.ml: Array List Obj Stdlib
