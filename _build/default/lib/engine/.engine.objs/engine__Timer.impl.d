lib/engine/timer.ml: Option Sim Time
