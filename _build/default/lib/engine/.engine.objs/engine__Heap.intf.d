lib/engine/heap.mli:
