lib/engine/rng.mli: Time
