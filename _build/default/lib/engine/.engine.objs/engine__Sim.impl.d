lib/engine/sim.ml: Heap Int64 Printf Rng Time
