lib/engine/sim.mli: Rng Time
