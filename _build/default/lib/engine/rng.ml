type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create ~seed:(int64 t)

let float t =
  (* 53 high-quality bits -> [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine for simulation purposes given 64 bits of
     state entropy against small bounds. *)
  let v = Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound) in
  Int64.to_int v

let bool t = Int64.logand (int64 t) 1L = 1L
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1. -. float t in
  -.mean *. log u

let jitter_span t ~max =
  if Int64.compare max 0L <= 0 then 0L
  else Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.add max 1L)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
