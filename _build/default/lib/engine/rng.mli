(** Deterministic pseudo-random numbers (SplitMix64).

    Each simulation owns its own generator so runs are reproducible from a
    seed and independent of any global state. [split] derives statistically
    independent child generators, used to give each flow/host its own
    stream without cross-coupling. *)

type t

val create : seed:int64 -> t

val split : t -> t
(** Derives an independent child generator; advances the parent. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> bound:int -> int
(** Uniform in [0, bound). @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (> 0). *)

val jitter_span : t -> max:Time.span -> Time.span
(** Uniform duration in [0, max]. Used to de-synchronise flow starts. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
