type t = {
  sim : Sim.t;
  action : unit -> unit;
  mutable pending : (Sim.event_id * Time.t) option;
}

let create sim ~action = { sim; action; pending = None }

let cancel t =
  match t.pending with
  | None -> ()
  | Some (ev, _) ->
      Sim.cancel t.sim ev;
      t.pending <- None

let set_at t ~at =
  cancel t;
  let ev =
    Sim.schedule_at t.sim at (fun () ->
        t.pending <- None;
        t.action ())
  in
  t.pending <- Some (ev, at)

let set t ~after = set_at t ~at:(Time.add (Sim.now t.sim) after)
let is_pending t = t.pending <> None
let deadline t = Option.map snd t.pending
