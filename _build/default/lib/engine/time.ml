type t = int64

and span = int64

let zero = 0L

let of_ns n =
  if Int64.compare n 0L < 0 then invalid_arg "Time.of_ns: negative";
  n

let to_ns t = t

let ns_per_sec = 1_000_000_000.

let span_of_sec s =
  if not (Float.is_finite s) || s < 0. then
    invalid_arg "Time.span_of_sec: negative or non-finite";
  Int64.of_float (Float.round (s *. ns_per_sec))

let span_of_us us = span_of_sec (us *. 1e-6)
let span_of_ms ms = span_of_sec (ms *. 1e-3)
let span_to_sec d = Int64.to_float d /. ns_per_sec
let of_sec s = of_ns (span_of_sec s)
let to_sec t = Int64.to_float t /. ns_per_sec
let of_us us = of_sec (us *. 1e-6)
let of_ms ms = of_sec (ms *. 1e-3)
let add t d = Int64.add t d
let diff a b = Int64.sub a b
let compare = Int64.compare
let equal = Int64.equal
let ( <= ) a b = compare a b <= 0
let ( < ) a b = compare a b < 0
let ( >= ) a b = compare a b >= 0
let ( > ) a b = compare a b > 0
let min a b = if a <= b then a else b
let max a b = if a >= b then a else b

let pp ppf t =
  let ns = Int64.to_float t in
  if Stdlib.( < ) ns 1e3 then Format.fprintf ppf "%.0fns" ns
  else if Stdlib.( < ) ns 1e6 then Format.fprintf ppf "%.3fus" (ns /. 1e3)
  else if Stdlib.( < ) ns 1e9 then Format.fprintf ppf "%.3fms" (ns /. 1e6)
  else Format.fprintf ppf "%.6fs" (ns /. 1e9)

let to_string t = Format.asprintf "%a" pp t
