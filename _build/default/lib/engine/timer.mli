(** Restartable one-shot timers.

    A thin convenience layer over {!Sim} used for protocol timers (e.g. TCP
    retransmission timeouts): setting a timer that is already pending
    replaces its deadline. *)

type t

val create : Sim.t -> action:(unit -> unit) -> t
(** An idle timer that runs [action] when it fires. *)

val set : t -> after:Time.span -> unit
(** Arms (or re-arms) the timer to fire [after] from now. *)

val set_at : t -> at:Time.t -> unit
(** Arms (or re-arms) the timer to fire at an absolute instant. *)

val cancel : t -> unit
(** Disarms the timer; no-op if idle. *)

val is_pending : t -> bool

val deadline : t -> Time.t option
(** Instant at which the timer will fire, if armed. *)
