(** Flow-level instrumentation: periodic samplers of sender state.

    Attach a sampler to a flow to record its congestion window, DCTCP
    alpha, and smoothed RTT as time series — the sender-side counterpart
    of {!Net.Trace} for queues. Used by the CLI's trace dumps and by
    examples that plot cwnd sawtooths. *)

type t

val attach :
  Engine.Sim.t ->
  Tcp.Flow.t ->
  period:Engine.Time.span ->
  stop_at:Engine.Time.t ->
  t
(** Samples immediately and then every [period] until [stop_at] (bounded,
    so the sampler cannot keep the simulation alive).
    @raise Invalid_argument on a non-positive period. *)

val cwnd_series : t -> Stats.Timeseries.t
(** Congestion window, segments. *)

val alpha_series : t -> Stats.Timeseries.t
(** DCTCP congestion estimate; empty for algorithms without one. *)

val srtt_series : t -> Stats.Timeseries.t
(** Smoothed RTT in seconds; empty until the first RTT sample. *)

val detach : t -> unit
(** Stops sampling early. *)

val to_csv : t -> out_channel -> unit
(** Writes "time_s,cwnd_segments,alpha,srtt_s" rows (missing values as
    empty cells), joined on the sampling instants. *)
