lib/workloads/completion.ml: Array Engine Incast Int64 Stats
