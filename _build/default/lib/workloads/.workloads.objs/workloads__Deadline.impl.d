lib/workloads/deadline.ml: Array Engine Int64 Net Stats Tcp
