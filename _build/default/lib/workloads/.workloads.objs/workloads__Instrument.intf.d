lib/workloads/instrument.mli: Engine Stats Tcp
