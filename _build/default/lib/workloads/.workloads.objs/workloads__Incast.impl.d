lib/workloads/incast.ml: Array Dctcp Engine Int64 Net Stats Tcp
