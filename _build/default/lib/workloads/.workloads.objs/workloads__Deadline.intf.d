lib/workloads/deadline.mli: Engine Net Tcp
