lib/workloads/convergence.ml: Array Dctcp Engine Float Int64 List Net Stdlib Tcp
