lib/workloads/convergence.mli: Dctcp Engine
