lib/workloads/longlived.mli: Dctcp Engine
