lib/workloads/instrument.ml: Engine Int64 List Option Printf Stats Tcp
