lib/workloads/completion.mli: Dctcp Engine
