lib/workloads/dynamic.ml: Array Dctcp Engine List Net Stats Tcp
