lib/workloads/incast.mli: Dctcp Engine
