lib/workloads/dynamic.mli: Dctcp Engine
