lib/workloads/longlived.ml: Array Dctcp Engine Net Option Stats Tcp
