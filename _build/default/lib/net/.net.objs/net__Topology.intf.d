lib/net/topology.mli: Engine Host Marking Port Switch
