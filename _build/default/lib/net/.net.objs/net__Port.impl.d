lib/net/port.ml: Engine Int64 Packet Queue_disc
