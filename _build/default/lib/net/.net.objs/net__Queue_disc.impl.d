lib/net/queue_disc.ml: Engine Marking Packet Queue Stdlib
