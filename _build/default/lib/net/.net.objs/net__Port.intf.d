lib/net/port.mli: Engine Packet Queue_disc
