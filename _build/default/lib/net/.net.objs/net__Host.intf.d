lib/net/host.mli: Engine Packet Port
