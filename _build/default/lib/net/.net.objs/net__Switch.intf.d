lib/net/switch.mli: Engine Packet Port
