lib/net/host.ml: Engine Hashtbl Packet Port
