lib/net/marking.ml: Engine
