lib/net/trace.mli: Engine Queue_disc Stats
