lib/net/marking.mli: Engine
