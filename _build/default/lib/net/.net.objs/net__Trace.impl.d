lib/net/trace.ml: Engine Int64 Queue_disc Stats
