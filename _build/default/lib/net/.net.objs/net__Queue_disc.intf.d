lib/net/queue_disc.mli: Engine Marking Packet
