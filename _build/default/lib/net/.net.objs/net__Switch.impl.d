lib/net/switch.ml: Array Engine Hashtbl Packet Port Stdlib
