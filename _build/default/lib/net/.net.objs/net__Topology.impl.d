lib/net/topology.ml: Array Engine Hashtbl Host Int64 Marking Port Printf Queue_disc Switch
