module Sim = Engine.Sim
module Time = Engine.Time

type t = {
  sim : Sim.t;
  rate_bps : float;
  delay : Time.span;
  queue : Queue_disc.t;
  deliver : Packet.t -> unit;
  mutable busy : bool;
  mutable bytes_sent : int;
  mutable packets_sent : int;
}

let create sim ~rate_bps ~delay ~queue ~deliver =
  if rate_bps <= 0. then invalid_arg "Port.create: rate must be positive";
  if Int64.compare delay 0L < 0 then
    invalid_arg "Port.create: negative delay";
  {
    sim;
    rate_bps;
    delay;
    queue;
    deliver;
    busy = false;
    bytes_sent = 0;
    packets_sent = 0;
  }

let tx_time t ~bytes =
  Time.span_of_sec (float_of_int (bytes * 8) /. t.rate_bps)

let rec start_tx t =
  match Queue_disc.dequeue t.queue with
  | None -> t.busy <- false
  | Some pkt ->
      t.busy <- true;
      let tx = tx_time t ~bytes:pkt.Packet.size in
      ignore
        (Sim.schedule_after t.sim tx (fun () ->
             t.bytes_sent <- t.bytes_sent + pkt.Packet.size;
             t.packets_sent <- t.packets_sent + 1;
             ignore
               (Sim.schedule_after t.sim t.delay (fun () -> t.deliver pkt));
             start_tx t))

let send t pkt =
  match Queue_disc.enqueue t.queue pkt with
  | `Dropped -> ()
  | `Enqueued -> if not t.busy then start_tx t

let queue t = t.queue
let rate_bps t = t.rate_bps
let bytes_sent t = t.bytes_sent
let packets_sent t = t.packets_sent

let reset_counters t =
  t.bytes_sent <- 0;
  t.packets_sent <- 0

let is_busy t = t.busy
