(** Output port: queue + serializer + propagation.

    A port drains its {!Queue_disc} at the line rate, then delivers each
    packet to the remote end after the link's propagation delay. Ports are
    unidirectional; a full-duplex cable is a pair of ports. *)

type t

val create :
  Engine.Sim.t ->
  rate_bps:float ->
  delay:Engine.Time.span ->
  queue:Queue_disc.t ->
  deliver:(Packet.t -> unit) ->
  t
(** [deliver] is invoked at the remote end, [delay] after serialization
    completes. @raise Invalid_argument if [rate_bps <= 0]. *)

val send : t -> Packet.t -> unit
(** Enqueues (possibly tail-dropping) and starts transmitting if idle. *)

val queue : t -> Queue_disc.t
val rate_bps : t -> float

val tx_time : t -> bytes:int -> Engine.Time.span
(** Serialization time of [bytes] at the port's rate. *)

val bytes_sent : t -> int
(** Payload bytes fully serialized since creation or {!reset_counters}. *)

val packets_sent : t -> int

val reset_counters : t -> unit

val is_busy : t -> bool
