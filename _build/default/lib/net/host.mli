(** End host.

    A host owns one NIC (an output {!Port}) and demultiplexes received
    packets to per-flow handlers registered by the transport layer. *)

type t

val create : Engine.Sim.t -> id:int -> t

val id : t -> int
val sim : t -> Engine.Sim.t

val attach_nic : t -> Port.t -> unit
(** Wires the host's uplink. @raise Invalid_argument if already wired. *)

val nic : t -> Port.t
(** @raise Invalid_argument if no NIC is attached yet. *)

val send : t -> Packet.t -> unit
(** Transmits via the NIC. *)

val receive : t -> Packet.t -> unit
(** Entry point called by the network when a packet arrives. Dispatches on
    [pkt.flow]; packets with no registered handler are counted and
    dropped. *)

val bind_flow : t -> flow:int -> (Packet.t -> unit) -> unit
(** @raise Invalid_argument if the flow is already bound. *)

val unbind_flow : t -> flow:int -> unit

val unclaimed : t -> int
(** Packets that arrived with no handler. *)
