(** Queue-occupancy tracing.

    Attaches to a {!Queue_disc} and records its occupancy as a
    {!Stats.Timeseries.t}, either on every occupancy change (exact, heavier)
    or sampled on a fixed period (bounded memory, what the figures use). *)

type mode =
  | Every_change
  | Sampled of Engine.Time.span
      (** Periodic point samples; the sampler runs until [stop_at]. *)

type t

val on_queue :
  Engine.Sim.t -> Queue_disc.t -> mode:mode -> ?stop_at:Engine.Time.t ->
  unit -> t
(** Starts recording immediately. [stop_at] bounds a [Sampled] recorder
    (mandatory for it — otherwise the sampler would keep the simulation
    alive forever).
    @raise Invalid_argument if [Sampled] is used without [stop_at]. *)

val series_packets : t -> Stats.Timeseries.t
(** Occupancy in packets over time. *)

val series_bytes : t -> Stats.Timeseries.t

val detach : t -> unit
(** Stops recording. *)
