module Time = Engine.Time

type deadline_params = {
  base : Dctcp_cc.params;
  d_min : float;
  d_max : float;
  fallback_rtt : Time.span;
}

let default_deadline_params =
  {
    base = Dctcp_cc.default_params;
    d_min = 0.5;
    d_max = 2.0;
    fallback_rtt = Time.span_of_us 300.;
  }

let imminence ~params ~remaining_segments ~cwnd ~rtt ~time_left =
  let d_left = Time.span_to_sec time_left in
  if d_left <= 0. then params.d_max
  else begin
    let tc =
      float_of_int remaining_segments *. Time.span_to_sec rtt
      /. Float.max cwnd 1.
    in
    Float.min params.d_max (Float.max params.d_min (tc /. d_left))
  end

let cc ?(params = default_deadline_params) ~total_segments ~deadline () =
  if total_segments <= 0 then
    invalid_arg "D2tcp_cc.cc: total_segments must be positive";
  if params.d_min <= 0. || params.d_min > params.d_max then
    invalid_arg "D2tcp_cc.cc: need 0 < d_min <= d_max";
  let penalty (ctx : Dctcp_cc.reduction_context) =
    let remaining = total_segments - ctx.Dctcp_cc.snd_una in
    if remaining <= 0 then ctx.Dctcp_cc.alpha
    else begin
      let rtt =
        match ctx.Dctcp_cc.rtt_estimate with
        | Some r -> r
        | None -> params.fallback_rtt
      in
      let d =
        imminence ~params ~remaining_segments:remaining
          ~cwnd:ctx.Dctcp_cc.cwnd ~rtt
          ~time_left:(Time.diff deadline ctx.Dctcp_cc.now)
      in
      (* alpha in [0,1]: alpha^d < alpha for d > 1 (gentler backoff when
         the deadline is close), > alpha for d < 1. *)
      Float.pow ctx.Dctcp_cc.alpha d
    end
  in
  Dctcp_cc.cc_with_penalty ~params:params.base ~penalty ()
