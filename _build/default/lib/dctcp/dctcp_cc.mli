(** DCTCP congestion control (sender side).

    The sender maintains alpha, an EWMA of the fraction of acknowledged
    segments whose ACKs carried ECN-Echo, updated once per window of data
    (Eq. "alpha <- (1-g) alpha + g F"); on congestion it backs off
    proportionally, [cwnd <- cwnd * (1 - alpha/2)], at most once per window.
    Loss handling is standard TCP (halve on fast retransmit, collapse to 1
    on timeout). Both DCTCP and DT-DCTCP use this identical sender; the two
    protocols differ only in the switch marking policy
    ({!Marking_policies}). *)

type params = {
  g : float;  (** EWMA gain, the paper uses 1/16. *)
  init_alpha : float;
      (** Initial congestion estimate; 1.0 (conservative, as in Linux)
          unless overridden. *)
}

val default_params : params
(** [g = 1/16], [init_alpha = 1.0]. *)

val cc : ?params:params -> unit -> Tcp.Cc.factory
(** A fresh factory; each flow built from it gets independent state.
    @raise Invalid_argument if [g] is outside (0, 1] or [init_alpha]
    outside [0, 1]. *)

(** {2 Penalty hook (for deadline-aware derivatives)}

    D2TCP and similar schemes keep DCTCP's alpha machinery but gate the
    backoff through a penalty function [p] of alpha and flow state:
    [cwnd <- cwnd * (1 - p/2)]. The hook receives a snapshot at the moment
    an ECE-triggered reduction is due. *)

type reduction_context = {
  alpha : float;  (** Current congestion estimate. *)
  cwnd : float;  (** Window before the reduction, segments. *)
  now : Engine.Time.t;
  rtt_estimate : Engine.Time.span option;
      (** Duration of the last completed observation window (~1 RTT), if
          one has completed. *)
  snd_una : int;  (** Cumulative segments acknowledged. *)
}

val cc_with_penalty :
  ?params:params -> penalty:(reduction_context -> float) -> unit ->
  Tcp.Cc.factory
(** Like {!cc} but backs off by [penalty ctx] instead of [ctx.alpha]; the
    returned penalty is clamped to [0, 1]. [cc] is
    [cc_with_penalty ~penalty:(fun ctx -> ctx.alpha)]. *)
