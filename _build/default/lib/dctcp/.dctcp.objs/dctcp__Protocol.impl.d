lib/dctcp/protocol.ml: Dctcp_cc Marking_policies Net Option Tcp
