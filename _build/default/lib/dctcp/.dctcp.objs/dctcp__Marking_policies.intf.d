lib/dctcp/marking_policies.mli: Net
