lib/dctcp/d2tcp_cc.mli: Dctcp_cc Engine Tcp
