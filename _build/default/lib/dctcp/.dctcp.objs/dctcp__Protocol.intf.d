lib/dctcp/protocol.mli: Net Tcp
