lib/dctcp/dctcp_cc.mli: Engine Tcp
