lib/dctcp/d2tcp_cc.ml: Dctcp_cc Engine Float
