lib/dctcp/marking_policies.ml: Net Printf Stdlib
