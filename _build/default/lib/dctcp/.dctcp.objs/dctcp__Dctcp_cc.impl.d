lib/dctcp/dctcp_cc.ml: Engine Float Int64 Tcp
