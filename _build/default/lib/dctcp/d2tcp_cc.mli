(** D2TCP: deadline-aware DCTCP (Vamanan et al., SIGCOMM 2012).

    The paper under reproduction cites D2TCP as the flagship protocol
    "built on top of DCTCP"; this module implements it as an extension, on
    the {!Dctcp_cc.cc_with_penalty} hook, so it can be evaluated over
    either marking mechanism.

    D2TCP keeps DCTCP's alpha but gates the backoff by a deadline
    imminence factor [d]: the penalty is [p = alpha^d] and
    [cwnd <- cwnd (1 - p/2)]. With [d = Tc / D] — [Tc] the time the flow
    still needs at its current rate, [D] the time left to its deadline —
    far-deadline flows ([d < 1]) back off more than DCTCP and
    near-deadline flows ([d > 1]) back off less, trading bandwidth toward
    urgent flows. [d] is clamped to [[d_min, d_max]] (0.5 and 2.0 in the
    D2TCP paper); flows without progress information or with an expired
    deadline use [d_max] (maximum urgency). *)

type deadline_params = {
  base : Dctcp_cc.params;
  d_min : float;  (** Default 0.5. *)
  d_max : float;  (** Default 2.0. *)
  fallback_rtt : Engine.Time.span;
      (** Used for [Tc] before the first RTT estimate exists (default
          300 us). *)
}

val default_deadline_params : deadline_params

val cc :
  ?params:deadline_params ->
  total_segments:int ->
  deadline:Engine.Time.t ->
  unit ->
  Tcp.Cc.factory
(** Congestion control for one flow that must deliver [total_segments] by
    [deadline].
    @raise Invalid_argument if [total_segments <= 0] or the clamp bounds
    are not [0 < d_min <= d_max]. *)

val imminence :
  params:deadline_params ->
  remaining_segments:int ->
  cwnd:float ->
  rtt:Engine.Time.span ->
  time_left:Engine.Time.span ->
  float
(** The clamped deadline factor [d] (exposed for tests):
    [Tc = remaining * rtt / cwnd], [d = clamp (Tc / D)]; [d_max] if the
    deadline has passed. *)
