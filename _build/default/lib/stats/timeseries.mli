(** Piecewise-constant time series.

    Records [(t, v)] samples where [v] holds from [t] until the next sample
    (a step function — the natural shape for queue-occupancy traces).
    Provides time-weighted statistics, which is what "average queue length"
    means for a fluctuating queue. *)

type t

val create : unit -> t

val add : t -> Engine.Time.t -> float -> unit
(** Appends a sample. Samples must be added in non-decreasing time order.
    @raise Invalid_argument on out-of-order samples. *)

val length : t -> int
val is_empty : t -> bool

val time_weighted_mean : ?from:Engine.Time.t -> ?until:Engine.Time.t -> t -> float
(** Mean of the step function over [[from, until]] (defaults: first sample
    to last sample). 0 for an empty series or an empty interval. *)

val time_weighted_stddev :
  ?from:Engine.Time.t -> ?until:Engine.Time.t -> t -> float
(** Standard deviation of the step function over the window. *)

val min_value : t -> float
(** @raise Invalid_argument if empty. *)

val max_value : t -> float
(** @raise Invalid_argument if empty. *)

val value_at : t -> Engine.Time.t -> float
(** Value of the step function at an instant (last sample at or before it).
    @raise Invalid_argument if the instant precedes the first sample. *)

val resample :
  t -> from:Engine.Time.t -> until:Engine.Time.t -> n:int
  -> (Engine.Time.t * float) array
(** [n] evenly spaced point samples over the window, for plotting. *)

val samples : t -> (Engine.Time.t * float) array
(** All raw samples, in order. Copies. *)

val to_csv : t -> out_channel -> unit
(** Writes "time_s,value" lines. *)
