(** Streaming descriptive statistics (Welford's algorithm).

    An accumulator tracks count, mean, variance, min and max of a stream of
    observations in O(1) memory, numerically stably. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

val mean : t -> float
(** 0 if no observations. *)

val variance : t -> float
(** Population variance; 0 with fewer than two observations. *)

val sample_variance : t -> float
(** Unbiased (n-1) variance; 0 with fewer than two observations. *)

val stddev : t -> float
(** Square root of the population {!variance}. *)

val min : t -> float
(** @raise Invalid_argument if empty. *)

val max : t -> float
(** @raise Invalid_argument if empty. *)

val sum : t -> float

val merge : t -> t -> t
(** Combines two accumulators as if their streams were concatenated. *)

val of_array : float array -> t
val of_list : float list -> t
