(** ASCII tables for the benchmark harness.

    Every figure/table reproduction prints through this module so the bench
    output has one consistent, diffable format. *)

type align = Left | Right

type column

val column : ?align:align -> string -> column
(** A column with a header. Numbers usually read better right-aligned. *)

type t

val create : title:string -> columns:column list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the column count. *)

val add_float_row : t -> ?fmt:(float -> string) -> float list -> unit
(** Convenience: formats every cell with [fmt] (default ["%.4g"]). *)

val print : ?oc:out_channel -> t -> unit
(** Renders with a title line, a header, and column-width padding. *)

val fmt_f : int -> float -> string
(** [fmt_f digits] is a fixed-point formatter, e.g. [fmt_f 2 3.14159 = "3.14"]. *)

val fmt_g : float -> string
(** Short general-purpose float formatter ("%.4g"). *)
