let glyphs = [| '*'; '+'; 'o'; 'x'; '~'; '#' |]

let render ?(width = 72) ?(height = 16) ?(y_label = "") ~series () =
  let all_values = List.concat_map (fun (_, vs) -> Array.to_list vs) series in
  match all_values with
  | [] -> "(empty plot)\n"
  | _ :: _ ->
      let y_min = List.fold_left Stdlib.min infinity all_values in
      let y_max = List.fold_left Stdlib.max neg_infinity all_values in
      let y_min, y_max =
        if y_max > y_min then (y_min, y_max) else (y_min -. 1., y_max +. 1.)
      in
      let grid = Array.make_matrix height width ' ' in
      let plot_series idx (_, values) =
        let n = Array.length values in
        if n > 0 then begin
          let glyph = glyphs.(idx mod Array.length glyphs) in
          for col = 0 to width - 1 do
            (* Nearest-sample mapping from column to series index. *)
            let i =
              if n = 1 then 0
              else
                int_of_float
                  (Float.round
                     (float_of_int col /. float_of_int (width - 1)
                     *. float_of_int (n - 1)))
            in
            let v = values.(i) in
            let row_f = (v -. y_min) /. (y_max -. y_min) *. float_of_int (height - 1) in
            let row = height - 1 - int_of_float (Float.round row_f) in
            let row = Stdlib.max 0 (Stdlib.min (height - 1) row) in
            grid.(row).(col) <- glyph
          done
        end
      in
      List.iteri plot_series series;
      let buf = Buffer.create 1024 in
      if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
      Array.iteri
        (fun r line ->
          let label =
            if r = 0 then Printf.sprintf "%10.2f |" y_max
            else if r = height - 1 then Printf.sprintf "%10.2f |" y_min
            else Printf.sprintf "%10s |" ""
          in
          Buffer.add_string buf label;
          Buffer.add_string buf (String.init width (fun c -> line.(c)));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
      List.iteri
        (fun idx (name, _) ->
          Buffer.add_string buf
            (Printf.sprintf "%12s %s\n"
               (String.make 1 glyphs.(idx mod Array.length glyphs))
               name))
        series;
      Buffer.contents buf

let blocks = [| " "; "_"; "."; "-"; "="; "+"; "*"; "#" |]

let sparkline values =
  match Array.length values with
  | 0 -> ""
  | _ ->
      let vmin = Array.fold_left Stdlib.min infinity values in
      let vmax = Array.fold_left Stdlib.max neg_infinity values in
      let range = if vmax > vmin then vmax -. vmin else 1. in
      String.concat ""
        (Array.to_list
           (Array.map
              (fun v ->
                let level =
                  int_of_float ((v -. vmin) /. range *. 7.)
                in
                blocks.(Stdlib.max 0 (Stdlib.min 7 level)))
              values))
