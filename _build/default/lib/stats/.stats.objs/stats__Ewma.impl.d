lib/stats/ewma.ml:
