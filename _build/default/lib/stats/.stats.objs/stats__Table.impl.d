lib/stats/table.ml: Array List Printf Stdlib String
