lib/stats/timeseries.mli: Engine
