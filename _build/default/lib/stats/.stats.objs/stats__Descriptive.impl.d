lib/stats/descriptive.ml: Array List Stdlib
