lib/stats/ewma.mli:
