lib/stats/percentile.ml: Array Float Stdlib
