lib/stats/table.mli:
