lib/stats/spectrum.ml: Array Complex Float
