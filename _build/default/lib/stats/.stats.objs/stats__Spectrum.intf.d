lib/stats/spectrum.mli: Complex
