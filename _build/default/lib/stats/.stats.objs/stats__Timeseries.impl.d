lib/stats/timeseries.ml: Array Engine Int64 Printf Stdlib
