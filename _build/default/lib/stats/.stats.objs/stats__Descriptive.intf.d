lib/stats/descriptive.mli:
