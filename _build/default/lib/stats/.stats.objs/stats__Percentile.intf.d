lib/stats/percentile.mli:
