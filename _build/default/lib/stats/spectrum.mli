(** Spectral analysis of evenly-sampled series.

    Used to extract the dominant oscillation frequency of a queue trace so
    the packet simulator's limit cycle can be compared against the
    describing-function prediction (which yields an angular frequency). *)

val fft : Complex.t array -> Complex.t array
(** In-order radix-2 Cooley-Tukey FFT.
    @raise Invalid_argument if the length is not a power of two. *)

val power_spectrum : float array -> float array
(** Magnitude-squared spectrum of a real series (mean removed, Hann
    window applied, zero-padded to the next power of two). Index [k] is
    frequency [k * fs / n_fft]; only the first half (positive
    frequencies) is returned. *)

type peak = {
  frequency_hz : float;
  power : float;
  total_power : float;
}

val dominant_frequency :
  samples:float array -> sample_rate_hz:float -> peak option
(** The strongest non-DC spectral peak. [None] when the series is too
    short (< 16 samples) or has no variation. *)
