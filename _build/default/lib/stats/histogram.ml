type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  { lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0; total = 0 }

let bins t = Array.length t.counts

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then
    if x = t.hi then
      (* Closed upper edge: count hi itself in the last bin. *)
      t.counts.(bins t - 1) <- t.counts.(bins t - 1) + 1
    else t.overflow <- t.overflow + 1
  else begin
    let width = (t.hi -. t.lo) /. float_of_int (bins t) in
    let i = int_of_float ((x -. t.lo) /. width) in
    let i = Stdlib.min i (bins t - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total

let bin_count t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_count: bad index";
  t.counts.(i)

let underflow t = t.underflow
let overflow t = t.overflow

let bin_bounds t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_bounds: bad index";
  let width = (t.hi -. t.lo) /. float_of_int (bins t) in
  (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))

let mode_bin t =
  let best = ref (-1) and best_count = ref 0 in
  Array.iteri
    (fun i c -> if c > !best_count then begin best := i; best_count := c end)
    t.counts;
  if !best < 0 then invalid_arg "Histogram.mode_bin: empty histogram";
  !best

let pp ppf t =
  let max_count = Array.fold_left Stdlib.max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_bounds t i in
      let bar = String.make (c * 40 / max_count) '#' in
      Format.fprintf ppf "[%8.2f, %8.2f) %6d %s@." lo hi c bar)
    t.counts
