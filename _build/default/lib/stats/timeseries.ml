module Time = Engine.Time

type t = {
  mutable times : Time.t array;
  mutable values : float array;
  mutable size : int;
}

let create () = { times = Array.make 256 Time.zero; values = Array.make 256 0.; size = 0 }

let grow t =
  let cap = 2 * Array.length t.times in
  let times = Array.make cap Time.zero in
  let values = Array.make cap 0. in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.values 0 values 0 t.size;
  t.times <- times;
  t.values <- values

let add t time v =
  if t.size > 0 && Time.(time < t.times.(t.size - 1)) then
    invalid_arg "Timeseries.add: out-of-order sample";
  if t.size = Array.length t.times then grow t;
  t.times.(t.size) <- time;
  t.values.(t.size) <- v;
  t.size <- t.size + 1

let length t = t.size
let is_empty t = t.size = 0

(* Index of the last sample at or before [time]; -1 if none. *)
let index_at t time =
  let rec bsearch lo hi =
    (* invariant: samples before lo are <= time, samples from hi on are > time *)
    if lo >= hi then lo - 1
    else begin
      let mid = (lo + hi) / 2 in
      if Time.(t.times.(mid) <= time) then bsearch (mid + 1) hi
      else bsearch lo mid
    end
  in
  bsearch 0 t.size

let value_at t time =
  let i = index_at t time in
  if i < 0 then invalid_arg "Timeseries.value_at: before first sample";
  t.values.(i)

let fold_window t ~from ~until ~init ~f =
  (* Folds over constant segments [seg_start, seg_end) clipped to the
     window, passing the segment duration in seconds and its value. *)
  if t.size = 0 || Time.(until <= from) then init
  else begin
    let acc = ref init in
    let start_idx = Stdlib.max (index_at t from) 0 in
    let i = ref start_idx in
    let continue = ref true in
    while !continue && !i < t.size do
      let seg_start = Time.max t.times.(!i) from in
      let seg_end =
        if !i + 1 < t.size then Time.min t.times.(!i + 1) until else until
      in
      if Time.(seg_start >= until) then continue := false
      else begin
        if Time.(seg_end > seg_start) then begin
          let dt = Time.span_to_sec (Time.diff seg_end seg_start) in
          acc := f !acc dt t.values.(!i)
        end;
        incr i
      end
    done;
    !acc
  end

let default_window ?from ?until t =
  let from = match from with Some f -> f | None -> t.times.(0) in
  let until = match until with Some u -> u | None -> t.times.(t.size - 1) in
  (from, until)

let time_weighted_mean ?from ?until t =
  if t.size = 0 then 0.
  else begin
    let from, until = default_window ?from ?until t in
    let total, weighted =
      fold_window t ~from ~until ~init:(0., 0.) ~f:(fun (tot, w) dt v ->
          (tot +. dt, w +. (dt *. v)))
    in
    if total <= 0. then 0. else weighted /. total
  end

let time_weighted_stddev ?from ?until t =
  if t.size = 0 then 0.
  else begin
    let from, until = default_window ?from ?until t in
    let mean = time_weighted_mean ~from ~until t in
    let total, weighted_sq =
      fold_window t ~from ~until ~init:(0., 0.) ~f:(fun (tot, w) dt v ->
          let d = v -. mean in
          (tot +. dt, w +. (dt *. d *. d)))
    in
    if total <= 0. then 0. else sqrt (weighted_sq /. total)
  end

let min_value t =
  if t.size = 0 then invalid_arg "Timeseries.min_value: empty";
  let m = ref t.values.(0) in
  for i = 1 to t.size - 1 do
    if t.values.(i) < !m then m := t.values.(i)
  done;
  !m

let max_value t =
  if t.size = 0 then invalid_arg "Timeseries.max_value: empty";
  let m = ref t.values.(0) in
  for i = 1 to t.size - 1 do
    if t.values.(i) > !m then m := t.values.(i)
  done;
  !m

let resample t ~from ~until ~n =
  if n <= 0 then invalid_arg "Timeseries.resample: n must be positive";
  let span = Time.diff until from in
  Array.init n (fun i ->
      let frac = if n = 1 then 0. else float_of_int i /. float_of_int (n - 1) in
      let offset = Int64.of_float (Int64.to_float span *. frac) in
      let time = Time.add from offset in
      let v = if index_at t time < 0 then 0. else value_at t time in
      (time, v))

let samples t =
  Array.init t.size (fun i -> (t.times.(i), t.values.(i)))

let to_csv t oc =
  output_string oc "time_s,value\n";
  for i = 0 to t.size - 1 do
    Printf.fprintf oc "%.9f,%g\n" (Time.to_sec t.times.(i)) t.values.(i)
  done
