(** Fixed-width-bin histogram over a closed range. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument if [hi <= lo] or [bins <= 0]. *)

val add : t -> float -> unit
(** Values outside [lo, hi] are counted in underflow/overflow buckets. *)

val count : t -> int
(** Total observations including under/overflow. *)

val bin_count : t -> int -> int
(** @raise Invalid_argument on an out-of-range bin index. *)

val underflow : t -> int
val overflow : t -> int

val bin_bounds : t -> int -> float * float
(** Lower and upper edge of a bin. *)

val mode_bin : t -> int
(** Index of the most populated bin (ties: lowest index).
    @raise Invalid_argument if no in-range observation was recorded. *)

val pp : Format.formatter -> t -> unit
(** Compact textual rendering with bar lengths proportional to counts. *)
