(** Exponentially weighted moving average,
    [avg <- (1 - g) * avg + g * sample].

    This is exactly the estimator DCTCP uses for its congestion parameter
    alpha; exposed here so the estimator used by the protocol and the one
    used by analysis code are a single implementation. *)

type t

val create : ?init:float -> gain:float -> unit -> t
(** [gain] must lie in (0, 1]. [init] (default 0) seeds the average. *)

val update : t -> float -> unit
val value : t -> float
val gain : t -> float
val observations : t -> int
