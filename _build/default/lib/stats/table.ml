type align = Left | Right

type column = { header : string; align : align }

let column ?(align = Right) header = { header; align }

type t = {
  title : string;
  columns : column array;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns = Array.of_list columns; rows = [] }

let add_row t row =
  if List.length row <> Array.length t.columns then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- row :: t.rows

let fmt_f digits v = Printf.sprintf "%.*f" digits v
let fmt_g v = Printf.sprintf "%.4g" v

let add_float_row t ?(fmt = fmt_g) row = add_row t (List.map fmt row)

let print ?(oc = stdout) t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.columns in
  let widths = Array.map (fun c -> String.length c.header) t.columns in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
        row)
    rows;
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let total_width =
    Array.fold_left (fun acc w -> acc + w + 2) 0 widths - 2
  in
  Printf.fprintf oc "\n== %s ==\n" t.title;
  for i = 0 to ncols - 1 do
    if i > 0 then output_string oc "  ";
    output_string oc (pad t.columns.(i).align widths.(i) t.columns.(i).header)
  done;
  output_char oc '\n';
  output_string oc (String.make (Stdlib.max total_width 1) '-');
  output_char oc '\n';
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i > 0 then output_string oc "  ";
          output_string oc (pad t.columns.(i).align widths.(i) cell))
        row;
      output_char oc '\n')
    rows;
  flush oc
