(** Terminal line plots.

    Used by the bench harness to render queue-trace "figures" directly in
    the terminal output so the oscillation shape is visible without a
    plotting stack. *)

val render :
  ?width:int ->
  ?height:int ->
  ?y_label:string ->
  series:(string * float array) list ->
  unit ->
  string
(** Plots each named series over its index (series are expected to share a
    common x sampling). Distinct series use distinct glyphs; a legend and a
    y-axis scale are included. [width]/[height] are the plot area in
    characters (defaults 72x16). *)

val sparkline : float array -> string
(** One-line miniature plot using block characters. *)
