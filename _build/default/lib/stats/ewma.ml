type t = { gain : float; mutable value : float; mutable n : int }

let create ?(init = 0.) ~gain () =
  if gain <= 0. || gain > 1. then invalid_arg "Ewma.create: gain out of (0,1]";
  { gain; value = init; n = 0 }

let update t x =
  t.value <- ((1. -. t.gain) *. t.value) +. (t.gain *. x);
  t.n <- t.n + 1

let value t = t.value
let gain t = t.gain
let observations t = t.n
