(** Percentiles over finite samples (linear interpolation between ranks). *)

val of_sorted : float array -> float -> float
(** [of_sorted sorted p] is the [p]-th percentile ([0 <= p <= 100]) of a
    sorted array.
    @raise Invalid_argument if the array is empty or [p] out of range. *)

val of_array : float array -> float -> float
(** Copies and sorts, then {!of_sorted}. *)

val of_list : float list -> float -> float

val median : float array -> float

val summary : float array -> (string * float) list
(** min / p25 / median / p75 / p90 / p99 / max, for report tables. *)
