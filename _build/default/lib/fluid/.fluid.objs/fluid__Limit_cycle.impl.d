lib/fluid/limit_cycle.ml: Array Dctcp_fluid Float List
