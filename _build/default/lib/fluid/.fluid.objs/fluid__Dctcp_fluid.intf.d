lib/fluid/dctcp_fluid.mli:
