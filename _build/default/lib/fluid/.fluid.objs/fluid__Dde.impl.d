lib/fluid/dde.ml: Array Float Stdlib
