lib/fluid/dde.mli:
