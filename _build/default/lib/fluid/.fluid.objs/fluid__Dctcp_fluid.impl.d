lib/fluid/dctcp_fluid.ml: Array Dde Float
