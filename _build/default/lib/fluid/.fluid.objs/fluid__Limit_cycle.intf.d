lib/fluid/limit_cycle.mli: Dctcp_fluid
