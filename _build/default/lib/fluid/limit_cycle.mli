(** Limit-cycle extraction from fluid trajectories.

    The describing-function analysis (lib/control) predicts oscillation
    amplitude [X] and angular frequency [w] for the queue; this module
    measures both on an integrated trajectory so the prediction can be
    validated quantitatively: amplitude from the mean peak-to-peak swing,
    frequency from mean-crossing periods. *)

type t = {
  amplitude : float;
      (** Half the mean peak-to-peak swing over the measured cycles. *)
  omega : float;  (** Mean angular frequency, rad/s. *)
  period : float;  (** Mean period, seconds. *)
  cycles : int;  (** Number of full cycles measured. *)
  mean : float;  (** Mean level the signal oscillates about. *)
}

val measure :
  times:float array -> values:float array -> discard:float -> t option
(** Measures the steady oscillation of [values] after dropping the first
    [discard] seconds. Cycles are delimited by upward crossings of the
    signal mean; [None] if fewer than three full cycles are present (no
    sustained oscillation).
    @raise Invalid_argument on mismatched array lengths or if [discard]
    exceeds the trajectory. *)

val of_queue : Dctcp_fluid.trajectory -> discard:float -> t option
(** {!measure} applied to the queue component. *)
