type problem = {
  dim : int;
  deriv : t:float -> state:float array -> delayed:float -> float array;
  output : t:float -> state:float array -> float;
  tau : float;
  init_state : float array;
  init_output : float;
}

type solution = {
  times : float array;
  states : float array array;
  outputs : float array;
}

let integrate p ~dt ~t_end =
  if dt <= 0. then invalid_arg "Dde.integrate: dt must be positive";
  if t_end <= 0. then invalid_arg "Dde.integrate: t_end must be positive";
  if p.tau < 0. then invalid_arg "Dde.integrate: negative delay";
  if Array.length p.init_state <> p.dim then
    invalid_arg "Dde.integrate: init_state dimension mismatch";
  let steps = int_of_float (Float.ceil (t_end /. dt)) in
  let times = Array.make (steps + 1) 0. in
  let states = Array.make (steps + 1) [||] in
  let outputs = Array.make (steps + 1) 0. in
  states.(0) <- Array.copy p.init_state;
  outputs.(0) <- p.output ~t:0. ~state:states.(0);
  (* Delayed lookup from the committed history; index i holds t = i*dt. *)
  let delayed_at filled t =
    let td = t -. p.tau in
    if td <= 0. then p.init_output
    else begin
      let fi = td /. dt in
      let i0 = int_of_float fi in
      let i0 = Stdlib.min i0 filled in
      let i1 = Stdlib.min (i0 + 1) filled in
      let frac = fi -. float_of_int i0 in
      outputs.(i0) +. (frac *. (outputs.(i1) -. outputs.(i0)))
    end
  in
  let axpy y a x =
    Array.mapi (fun i yi -> yi +. (a *. x.(i))) y
  in
  for step = 0 to steps - 1 do
    let t = float_of_int step *. dt in
    let x = states.(step) in
    let f tt xx = p.deriv ~t:tt ~state:xx ~delayed:(delayed_at step tt) in
    let k1 = f t x in
    let k2 = f (t +. (dt /. 2.)) (axpy x (dt /. 2.) k1) in
    let k3 = f (t +. (dt /. 2.)) (axpy x (dt /. 2.) k2) in
    let k4 = f (t +. dt) (axpy x dt k3) in
    let next =
      Array.init p.dim (fun i ->
          x.(i)
          +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))
    in
    times.(step + 1) <- t +. dt;
    states.(step + 1) <- next;
    outputs.(step + 1) <- p.output ~t:(t +. dt) ~state:next
  done;
  { times; states; outputs }

let component sol i = Array.map (fun s -> s.(i)) sol.states
