type t = {
  amplitude : float;
  omega : float;
  period : float;
  cycles : int;
  mean : float;
}

let measure ~times ~values ~discard =
  let n = Array.length times in
  if Array.length values <> n then
    invalid_arg "Limit_cycle.measure: array length mismatch";
  let start = ref 0 in
  while !start < n && times.(!start) < discard do
    incr start
  done;
  if !start >= n - 2 then
    invalid_arg "Limit_cycle.measure: discard exceeds trajectory";
  let start = !start in
  let count = n - start in
  let mean = ref 0. in
  for i = start to n - 1 do
    mean := !mean +. values.(i)
  done;
  let mean = !mean /. float_of_int count in
  (* Upward mean-crossings delimit cycles; within each cycle record the
     extremes. *)
  let crossings = ref [] in
  for i = start to n - 2 do
    if values.(i) < mean && values.(i + 1) >= mean then begin
      (* linear interpolation of the crossing instant *)
      let frac =
        if values.(i + 1) = values.(i) then 0.
        else (mean -. values.(i)) /. (values.(i + 1) -. values.(i))
      in
      crossings := (times.(i) +. (frac *. (times.(i + 1) -. times.(i)))) :: !crossings
    end
  done;
  let crossings = Array.of_list (List.rev !crossings) in
  let cycles = Array.length crossings - 1 in
  if cycles < 3 then None
  else begin
    let periods =
      Array.init cycles (fun i -> crossings.(i + 1) -. crossings.(i))
    in
    let period = Array.fold_left ( +. ) 0. periods /. float_of_int cycles in
    (* Peak-to-peak per cycle. *)
    let amp_sum = ref 0. in
    let idx = ref start in
    for c = 0 to cycles - 1 do
      let t_start = crossings.(c) and t_end = crossings.(c + 1) in
      while !idx < n && times.(!idx) < t_start do
        incr idx
      done;
      let lo = ref infinity and hi = ref neg_infinity in
      let j = ref !idx in
      while !j < n && times.(!j) < t_end do
        if values.(!j) < !lo then lo := values.(!j);
        if values.(!j) > !hi then hi := values.(!j);
        incr j
      done;
      if Float.is_finite !lo && Float.is_finite !hi then
        amp_sum := !amp_sum +. ((!hi -. !lo) /. 2.)
    done;
    Some
      {
        amplitude = !amp_sum /. float_of_int cycles;
        omega = 2. *. Float.pi /. period;
        period;
        cycles;
        mean;
      }
  end

let of_queue (traj : Dctcp_fluid.trajectory) ~discard =
  measure ~times:traj.Dctcp_fluid.times ~values:traj.Dctcp_fluid.q ~discard
