(** Fixed-step integrator for delay-differential systems.

    Integrates [x'(t) = f(t, x(t), y(t - tau))] where [y] is a scalar
    "output" channel computed from the trajectory as it is produced
    ([y(t) = output(t, x(t))]). The output function may be stateful (the
    hysteresis marking of DT-DCTCP is), so it is evaluated exactly once
    per accepted step, in time order; the delayed value is linearly
    interpolated from the recorded history ([init_output] before t = 0).

    The stepper is classic RK4 with the delayed input held per-stage from
    the history buffer — adequate because [tau >> dt] and the interesting
    right-hand sides here are discontinuous anyway. *)

type problem = {
  dim : int;
  deriv : t:float -> state:float array -> delayed:float -> float array;
  output : t:float -> state:float array -> float;
  tau : float;  (** Delay on the output channel, seconds; must be >= 0. *)
  init_state : float array;
  init_output : float;  (** Output history for t < 0. *)
}

type solution = {
  times : float array;
  states : float array array;  (** [states.(i)] is the state at [times.(i)]. *)
  outputs : float array;  (** Output channel at each instant. *)
}

val integrate : problem -> dt:float -> t_end:float -> solution
(** @raise Invalid_argument on non-positive [dt]/[t_end], a negative
    [tau], or an [init_state] whose length differs from [dim]. *)

val component : solution -> int -> float array
(** Column extraction, e.g. [component sol 2] is the queue trajectory. *)
