(** The DCTCP fluid model (paper Eqs. 1-3) and its DT-DCTCP variant.

    N flows over one bottleneck of capacity [c] (packets/second) with
    base round-trip time [r0] (seconds):

    {v
    dW/dt     = 1/R - W(t) alpha(t) / (2 R) * p(t - R0)
    dalpha/dt = g/R * (p(t - R0) - alpha(t))
    dq/dt     = N W(t)/R - C          (clamped at q = 0)
    v}

    With [variable_rtt] (the default, as in Alizadeh et al.'s original
    fluid model) [R = r0 + q/C], which keeps the system self-regulating
    when the per-flow window hits its 1-packet floor; with
    [variable_rtt = false] the paper's fixed-[R0] simplification is used
    (adequate only while [W0 = R0 C / N >> 1]).

    where [p] is the marking indicator produced by the switch: a relay
    [q > K] for DCTCP, the hysteresis zone machine for DT-DCTCP (identical
    semantics to {!Dctcp.Marking_policies.double_threshold}, re-stated
    here on real-valued queue lengths so the [fluid] library stays free of
    simulator dependencies).

    Window and queue are in packets. *)

type params = {
  n : int;
  c : float;  (** packets/second *)
  r0 : float;  (** seconds *)
  g : float;
  marking : marking;
  variable_rtt : bool;
  init_w : float;
  init_alpha : float;
  init_q : float;
}

and marking = Single of float | Double of float * float
    (** [Single k] | [Double (k1, k2)], thresholds in packets. *)

val make :
  ?variable_rtt:bool ->
  ?init_w:float ->
  ?init_alpha:float ->
  ?init_q:float ->
  n:int ->
  c:float ->
  r0:float ->
  g:float ->
  marking:marking ->
  unit ->
  params
(** Defaults: [W = 1], [alpha = 0], [q = 0] (cold start).
    @raise Invalid_argument on non-positive [n], [c], [r0], [g] outside
    (0,1], or negative thresholds. *)

val w0 : params -> float
(** Equilibrium window [R0 C / N]. *)

val alpha0 : params -> float
(** Equilibrium marking estimate [sqrt (2 / W0)] (capped at 1). *)

type trajectory = {
  times : float array;
  w : float array;
  alpha : float array;
  q : float array;
  p : float array;  (** Marking indicator over time. *)
}

val simulate : params -> ?dt:float -> t_end:float -> unit -> trajectory
(** Integrates with RK4 at step [dt] (default [r0 / 50]). *)

val queue_stats : trajectory -> discard:float -> float * float
(** [(mean, stddev)] of the queue after discarding the first [discard]
    seconds as transient. *)

val oscillation_amplitude : trajectory -> discard:float -> float
(** Half the peak-to-peak queue swing in the measurement window. *)
