type marking = Single of float | Double of float * float

type params = {
  n : int;
  c : float;
  r0 : float;
  g : float;
  marking : marking;
  variable_rtt : bool;
  init_w : float;
  init_alpha : float;
  init_q : float;
}

let make ?(variable_rtt = true) ?(init_w = 1.) ?(init_alpha = 0.)
    ?(init_q = 0.) ~n ~c ~r0 ~g ~marking () =
  if n <= 0 then invalid_arg "Dctcp_fluid.make: n must be positive";
  if c <= 0. then invalid_arg "Dctcp_fluid.make: c must be positive";
  if r0 <= 0. then invalid_arg "Dctcp_fluid.make: r0 must be positive";
  if g <= 0. || g > 1. then invalid_arg "Dctcp_fluid.make: g out of (0,1]";
  (match marking with
  | Single k when k < 0. -> invalid_arg "Dctcp_fluid.make: negative K"
  | Double (k1, k2) when k1 < 0. || k2 < 0. ->
      invalid_arg "Dctcp_fluid.make: negative threshold"
  | Single _ | Double _ -> ());
  { n; c; r0; g; marking; variable_rtt; init_w; init_alpha; init_q }

let w0 p = p.r0 *. p.c /. float_of_int p.n
let alpha0 p = Float.min 1. (sqrt (2. /. w0 p))

type trajectory = {
  times : float array;
  w : float array;
  alpha : float array;
  q : float array;
  p : float array;
}

(* Continuous version of the double-threshold zone machine; see
   Dctcp.Marking_policies for the discrete twin and DESIGN.md for the
   semantics. *)
let make_indicator = function
  | Single k -> fun q -> q > k
  | Double (k1, k2) ->
      let lo = Float.min k1 k2 and hi = Float.max k1 k2 in
      let marking = ref false in
      let prev = ref 0. in
      fun q ->
        if q > hi then marking := true
        else if q <= lo then marking := false
        else if k1 < k2 then begin
          if !prev <= lo then marking := true
          else if !prev > hi then marking := false
        end;
        prev := q;
        !marking

let simulate params ?dt ~t_end () =
  let dt = match dt with Some d -> d | None -> params.r0 /. 50. in
  let indicator = make_indicator params.marking in
  let nf = float_of_int params.n in
  let deriv ~t:_ ~state ~delayed =
    let w = state.(0) and alpha = state.(1) and q = state.(2) in
    let r =
      if params.variable_rtt then params.r0 +. (Float.max 0. q /. params.c)
      else params.r0
    in
    let dw = (1. /. r) -. (w *. alpha /. (2. *. r) *. delayed) in
    (* Window floor: a real sender never goes below one segment. *)
    let dw = if w <= 1. && dw < 0. then 0. else dw in
    let dalpha = params.g /. r *. (delayed -. alpha) in
    let dq = (nf *. w /. r) -. params.c in
    let dq = if q <= 0. && dq < 0. then 0. else dq in
    [| dw; dalpha; dq |]
  in
  let output ~t:_ ~state = if indicator state.(2) then 1. else 0. in
  let problem =
    {
      Dde.dim = 3;
      deriv;
      output;
      tau = params.r0;
      init_state = [| params.init_w; params.init_alpha; params.init_q |];
      init_output = 0.;
    }
  in
  let sol = Dde.integrate problem ~dt ~t_end in
  {
    times = sol.Dde.times;
    w = Dde.component sol 0;
    alpha = Dde.component sol 1;
    (* RK4 stages can momentarily undershoot the q >= 0 clamp applied in
       the derivative; report the physical (non-negative) queue. *)
    q = Array.map (Float.max 0.) (Dde.component sol 2);
    p = sol.Dde.outputs;
  }

let measurement_slice traj ~discard =
  let n = Array.length traj.times in
  let start = ref 0 in
  while !start < n && traj.times.(!start) < discard do
    incr start
  done;
  if !start >= n then invalid_arg "Dctcp_fluid: discard exceeds trajectory";
  !start

let queue_stats traj ~discard =
  let start = measurement_slice traj ~discard in
  let n = Array.length traj.q - start in
  let mean = ref 0. in
  for i = start to Array.length traj.q - 1 do
    mean := !mean +. traj.q.(i)
  done;
  let mean = !mean /. float_of_int n in
  let var = ref 0. in
  for i = start to Array.length traj.q - 1 do
    let d = traj.q.(i) -. mean in
    var := !var +. (d *. d)
  done;
  (mean, sqrt (!var /. float_of_int n))

let oscillation_amplitude traj ~discard =
  let start = measurement_slice traj ~discard in
  let lo = ref infinity and hi = ref neg_infinity in
  for i = start to Array.length traj.q - 1 do
    if traj.q.(i) < !lo then lo := traj.q.(i);
    if traj.q.(i) > !hi then hi := traj.q.(i)
  done;
  (!hi -. !lo) /. 2.
