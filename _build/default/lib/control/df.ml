open Cplx

let check_k k = if k <= 0. then invalid_arg "Df: threshold must be positive"
let check_x x = if x <= 0. then invalid_arg "Df: amplitude must be positive"

let relay ~k ~x =
  check_k k;
  check_x x;
  if x < k then zero
  else begin
    let r = k /. x in
    re (2. /. (Float.pi *. x) *. sqrt (1. -. (r *. r)))
  end

let hysteresis ~k1 ~k2 ~x =
  check_k k1;
  check_x x;
  if k2 < k1 then invalid_arg "Df.hysteresis: needs k1 <= k2";
  if x < k1 then zero
  else if x < k2 then relay ~k:k1 ~x
  else begin
    let r1 = k1 /. x and r2 = k2 /. x in
    let b1 = (sqrt (1. -. (r1 *. r1)) +. sqrt (1. -. (r2 *. r2))) /. Float.pi in
    let a1 = (k2 -. k1) /. (Float.pi *. x) in
    make (b1 /. x) (a1 /. x)
  end

let relay_relative ~k ~x = scale k (relay ~k ~x)
let hysteresis_relative ~k1 ~k2 ~x = scale k2 (hysteresis ~k1 ~k2 ~x)
let neg_recip n = neg (inv n)
let relay_max_relative = 1. /. Float.pi

let relay_indicator ~k ~x ~theta =
  check_k k;
  check_x x;
  x *. sin theta >= k

let hysteresis_indicator ~k1 ~k2 ~x ~theta =
  check_k k1;
  check_x x;
  if k2 < k1 then invalid_arg "Df.hysteresis_indicator: needs k1 <= k2";
  let q = x *. sin theta in
  if x < k1 then false
  else if x < k2 then q >= k1
  else begin
    (* Marking between the K1 up-crossing and the K2 down-crossing. *)
    let phi1 = asin (k1 /. x) in
    let phi2 = Float.pi -. asin (k2 /. x) in
    let theta = Float.rem theta (2. *. Float.pi) in
    let theta = if theta < 0. then theta +. (2. *. Float.pi) else theta in
    theta >= phi1 && theta <= phi2
  end

let fundamental_of_indicator indicator ~x ~n =
  check_x x;
  if n <= 0 then invalid_arg "Df.fundamental_of_indicator: n <= 0";
  let h = 2. *. Float.pi /. float_of_int n in
  let a1 = ref 0. and b1 = ref 0. in
  for i = 0 to n - 1 do
    let theta = (float_of_int i +. 0.5) *. h in
    if indicator theta then begin
      a1 := !a1 +. (cos theta *. h);
      b1 := !b1 +. (sin theta *. h)
    end
  done;
  let a1 = !a1 /. Float.pi and b1 = !b1 /. Float.pi in
  make (b1 /. x) (a1 /. x)
