(** Complex-number helpers over [Stdlib.Complex]. *)

type t = Complex.t = { re : float; im : float }

val make : float -> float -> t
val re : float -> t
val im : float -> t
val zero : t
val one : t
val j : t

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t

val scale : float -> t -> t
val neg : t -> t
val inv : t -> t
val conj : t -> t
val exp : t -> t
val modulus : t -> float
val arg : t -> float
val of_polar : r:float -> theta:float -> t

val dist : t -> t -> float
(** Euclidean distance. *)

val is_finite : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
