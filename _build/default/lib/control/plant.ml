open Cplx

type params = { c : float; n : int; r0 : float; g : float }

let params ~c ~n ~r0 ~g =
  if c <= 0. then invalid_arg "Plant.params: c must be positive";
  if n <= 0 then invalid_arg "Plant.params: n must be positive";
  if r0 <= 0. then invalid_arg "Plant.params: r0 must be positive";
  if g <= 0. || g > 1. then invalid_arg "Plant.params: g out of (0,1]";
  { c; n; r0; g }

let paper_params ?(n = 10) () =
  params ~c:(10e9 /. (1500. *. 8.)) ~n ~r0:1e-4 ~g:(1. /. 16.)

let w0 p = p.r0 *. p.c /. float_of_int p.n
let alpha0 p = sqrt (2. /. w0 p)

let p_alpha p s =
  let gr = re (p.g /. p.r0) in
  gr /: (s +: gr)

let p_queue p s =
  re (float_of_int p.n /. p.r0) /: (s +: re (1. /. p.r0))

let p_dctcp p s =
  (* Eq. 15:
     P_dctcp(s) = - sqrt(C / 2NR0) * (1 + (s + g/R0) / (g/R0)) / (s + N/(R0^2 C)) *)
  let gain = sqrt (p.c /. (2. *. float_of_int p.n *. p.r0)) in
  let gr = p.g /. p.r0 in
  let numer = one +: ((s +: re gr) /: re gr) in
  let denom = s +: re (float_of_int p.n /. (p.r0 *. p.r0 *. p.c)) in
  neg (scale gain (numer /: denom))

let p params s = neg (p_alpha params s *: p_dctcp params s *: p_queue params s)

let g_jw params w =
  let s = im w in
  p params s *: exp (im (-.w *. params.r0))
