(** The linearized DCTCP plant (paper Section V-A).

    The fluid model (Eqs. 1-3) linearized about its operating point yields
    the blocks of Figure 5 (Eqs. 13-15); their product with the feedback
    sign gives the plant [P(s)] (Eq. 17) and, adding the round-trip delay,
    the open-loop frequency response [G(jw)] (Eq. 18):

    {v
                sqrt(C/2NR0) (2g/R0 + jw) N/R0 e^{-jw R0}
    G(jw) = -------------------------------------------------
            (jw + g/R0) (jw + N/(R0^2 C)) (jw + 1/R0)
    v}

    Units: [c] in packets/second, [r0] in seconds, [n] dimensionless flows,
    [g] the DCTCP gain. *)

type params = {
  c : float;  (** Bottleneck capacity, packets/second. *)
  n : int;  (** Number of long-lived flows. *)
  r0 : float;  (** Round-trip time, seconds. *)
  g : float;  (** DCTCP EWMA gain. *)
}

val params : c:float -> n:int -> r0:float -> g:float -> params
(** @raise Invalid_argument on non-positive [c], [n], [r0], or [g] outside
    (0, 1]. *)

val paper_params : ?n:int -> unit -> params
(** The configuration of the paper's Section V-D: C = 10 Gbps of 1500-byte
    packets (833,333 pkt/s), R0 = 100 us, g = 1/16, [n] defaulting to 10. *)

(** {2 Operating point (the fluid model's equilibrium)} *)

val w0 : params -> float
(** Per-flow window at equilibrium, [R0 * C / N] packets. *)

val alpha0 : params -> float
(** Equilibrium marking estimate, [sqrt (2 / W0)]. *)

(** {2 Blocks of Figure 5} *)

val p_alpha : params -> Cplx.t -> Cplx.t
(** Eq. 13, evaluated at [s]. *)

val p_dctcp : params -> Cplx.t -> Cplx.t
(** Eq. 15. *)

val p_queue : params -> Cplx.t -> Cplx.t
(** Eq. 14. *)

val p : params -> Cplx.t -> Cplx.t
(** Eq. 16/17: [- p_alpha * p_dctcp * p_queue]. *)

val g_jw : params -> float -> Cplx.t
(** Eq. 18: [p] at [s = jw] with the [e^{-jw R0}] delay factor. *)
