type limit_cycle = { amplitude : float; omega : float }

type verdict = Stable | Oscillatory of limit_cycle

let pp_verdict ppf = function
  | Stable -> Format.fprintf ppf "stable"
  | Oscillatory { amplitude; omega } ->
      Format.fprintf ppf "oscillatory (X=%.2f, w=%.0f rad/s, f=%.0f Hz)"
        amplitude omega
        (omega /. (2. *. Float.pi))

type grids = {
  w_lo : float;
  w_hi : float;
  w_points : int;
  x_factor_hi : float;
  x_points : int;
}

let default_grids =
  { w_lo = 1e2; w_hi = 1e7; w_points = 3000; x_factor_hi = 60.; x_points = 4000 }

let dctcp ?(grids = default_grids) params ~k =
  if k <= 0. then invalid_arg "Stability.dctcp: k must be positive";
  let w = Nyquist.log_space ~lo:grids.w_lo ~hi:grids.w_hi ~n:grids.w_points in
  let locus = Nyquist.plant_locus params ~k0:(1. /. k) ~w in
  (* Candidate oscillations live where the plant locus crosses the real
     axis left of max(-1/N0_dc) = -pi. Take the leftmost such crossing:
     it corresponds to the outermost (stable) limit cycle. *)
  let crossings =
    Nyquist.real_axis_crossings locus
    |> List.filter (fun (_, re) -> re < -.Float.pi)
  in
  match crossings with
  | [] -> Stable
  | _ :: _ ->
      let w_star, c =
        List.fold_left
          (fun ((_, best_re) as best) ((_, re) as cand) ->
            if re < best_re then cand else best)
          (List.hd crossings) crossings
      in
      (* Solve N0_dc(X) = -1/c: with u = (K/X)^2, u(1-u) = (pi v / 2)^2,
         v = -1/c. The stable (outer) limit cycle is the smaller root u. *)
      let v = -1. /. c in
      let disc = 1. -. (Float.pi *. v *. Float.pi *. v) in
      if disc < 0. then Stable
      else begin
        let u = (1. -. sqrt disc) /. 2. in
        let amplitude = k /. sqrt u in
        Oscillatory { amplitude; omega = w_star }
      end

let dt_dctcp ?(grids = default_grids) params ~k1 ~k2 =
  if k1 <= 0. || k2 < k1 then
    invalid_arg "Stability.dt_dctcp: need 0 < k1 <= k2";
  let w = Nyquist.log_space ~lo:grids.w_lo ~hi:grids.w_hi ~n:grids.w_points in
  let locus = Nyquist.plant_locus params ~k0:(1. /. k2) ~w in
  let x =
    Nyquist.log_space ~lo:(k2 *. 1.0005) ~hi:(k2 *. grids.x_factor_hi)
      ~n:grids.x_points
  in
  let df_locus = Nyquist.hysteresis_neg_recip_locus ~k1 ~k2 ~x in
  match Nyquist.intersections df_locus locus with
  | [] -> Stable
  | crossings ->
      (* The outermost intersection (largest amplitude) is the stable
         limit cycle, as in the relay case. *)
      let best =
        List.fold_left
          (fun best c ->
            if c.Nyquist.param_a > best.Nyquist.param_a then c else best)
          (List.hd crossings) crossings
      in
      Oscillatory
        { amplitude = best.Nyquist.param_a; omega = best.Nyquist.param_b }

let dctcp_margin ?(grids = default_grids) params ~k =
  if k <= 0. then invalid_arg "Stability.dctcp_margin: k must be positive";
  let w = Nyquist.log_space ~lo:grids.w_lo ~hi:grids.w_hi ~n:grids.w_points in
  let locus = Nyquist.plant_locus params ~k0:(1. /. k) ~w in
  let neg_crossings =
    Nyquist.real_axis_crossings locus
    |> List.filter_map (fun (_, re) -> if re < 0. then Some re else None)
  in
  match neg_crossings with
  | [] -> infinity
  | res ->
      let leftmost = List.fold_left Float.min 0. res in
      Float.pi /. Float.abs leftmost

let dt_dctcp_margin ?(grids = default_grids) params ~k1 ~k2 =
  if k1 <= 0. || k2 < k1 then
    invalid_arg "Stability.dt_dctcp_margin: need 0 < k1 <= k2";
  let w = Nyquist.log_space ~lo:grids.w_lo ~hi:grids.w_hi ~n:grids.w_points in
  let locus = Nyquist.plant_locus params ~k0:(1. /. k2) ~w in
  let x =
    Nyquist.log_space ~lo:(k2 *. 1.0005) ~hi:(k2 *. grids.x_factor_hi)
      ~n:grids.x_points
  in
  let df = Nyquist.hysteresis_neg_recip_locus ~k1 ~k2 ~x in
  (* For each DF point z, phase-match against the plant locus: find
     adjacent samples where the locus direction rotates across z's ray
     (cross product sign change with positive alignment), interpolate the
     modulus, and take |z| / |G| — the radial blow-up factor needed for
     the loci to touch at that z. *)
  let margin = ref infinity in
  Array.iter
    (fun (dfp : Nyquist.point) ->
      let z = dfp.Nyquist.z in
      let zr = z.Cplx.re and zi = z.Cplx.im in
      for i = 0 to Array.length locus - 2 do
        let (a : Nyquist.point) = locus.(i)
        and (b : Nyquist.point) = locus.(i + 1) in
        let cross p = (zr *. p.Cplx.im) -. (zi *. p.Cplx.re) in
        let dot p = (zr *. p.Cplx.re) +. (zi *. p.Cplx.im) in
        let ca = cross a.Nyquist.z and cb = cross b.Nyquist.z in
        if
          ((ca <= 0. && cb > 0.) || (ca >= 0. && cb < 0.))
          && dot a.Nyquist.z > 0.
        then begin
          let t = if cb = ca then 0. else -.ca /. (cb -. ca) in
          let gm =
            Cplx.modulus a.Nyquist.z
            +. (t *. (Cplx.modulus b.Nyquist.z -. Cplx.modulus a.Nyquist.z))
          in
          if gm > 0. then begin
            let lambda = Cplx.modulus z /. gm in
            if lambda < !margin then margin := lambda
          end
        end
      done)
    df;
  !margin

let critical_n ?grids:_ ?(n_max = 500) ~c ~r0 ~g ~verdict_at () =
  let rec scan n =
    if n > n_max then None
    else begin
      let params = Plant.params ~c ~n ~r0 ~g in
      match verdict_at params with
      | Oscillatory _ -> Some n
      | Stable -> scan (n + 1)
    end
  in
  scan 1
