(** Nyquist-plane machinery: locus sampling and curve intersection.

    The stability question of Section V reduces to whether the open-loop
    locus [K0 G(jw)] intersects the negative-reciprocal-DF locus
    [-1/N0(X)] (Eq. 9, Figure 9). Both curves are sampled as polylines
    tagged with their parameter value, and intersections are found by
    exact segment-segment tests with linear parameter interpolation. *)

type point = { param : float; z : Cplx.t }
(** A locus sample: the parameter ([w] for the plant, [X] for a DF) and
    its position. *)

val log_space : lo:float -> hi:float -> n:int -> float array
(** [n] logarithmically spaced values over [lo, hi] (both > 0). *)

val lin_space : lo:float -> hi:float -> n:int -> float array

val plant_locus : Plant.params -> k0:float -> w:float array -> point array
(** Samples [K0 G(jw)]. *)

val relay_neg_recip_locus : k:float -> x:float array -> point array
(** Samples [-1/N0_dc(X)]; amplitudes with zero DF are skipped. *)

val hysteresis_neg_recip_locus :
  k1:float -> k2:float -> x:float array -> point array
(** Samples [-1/N0_dt(X)]. *)

type crossing = {
  z : Cplx.t;  (** Intersection point. *)
  param_a : float;  (** Interpolated parameter on the first curve. *)
  param_b : float;  (** Interpolated parameter on the second curve. *)
}

val segment_intersection :
  Cplx.t -> Cplx.t -> Cplx.t -> Cplx.t -> (Cplx.t * float * float) option
(** [segment_intersection p0 p1 q0 q1] is the proper intersection of the
    two closed segments with the fractional positions along each, if any
    (parallel/collinear overlaps count as no proper intersection). *)

val intersections : point array -> point array -> crossing list
(** All intersections of two polylines, with interpolated parameters,
    ordered along the first curve. *)

val real_axis_crossings : point array -> (float * float) list
(** Points where a locus crosses the real axis, as
    [(interpolated param, real coordinate)] pairs, in curve order. Used
    for Theorem 1, where [-1/N0_dc] lives on the real axis. *)
