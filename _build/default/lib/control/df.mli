(** Describing functions of the two marking mechanisms (paper Section IV-V).

    The describing function (DF) of a nonlinearity driven by [x = X sin wt]
    is [N(X) = (B1 + j A1) / X] where [A1], [B1] are the fundamental
    Fourier coefficients of the output (Eq. 5). For the marking mechanisms
    the output is the 0/1 marking indicator.

    - DCTCP's relay (Eq. 22):
      [N_dc(X) = 2/(pi X) sqrt(1 - (K/X)^2)] for [X >= K].
    - DT-DCTCP's hysteresis (Eq. 27): for [X >= K2 >= K1],
      [N_dt(X) = 1/(pi X) (sqrt(1-(K1/X)^2) + sqrt(1-(K2/X)^2))
                 + j (K2 - K1)/(pi X^2)].

    Below the paper's validity range we extend piecewise to match the
    implemented policy ({!Dctcp.Marking_policies.double_threshold}): for
    [K1 <= X < K2] a swing turns around inside the band, so the mechanism
    acts as a relay at [K1]; below the lowest threshold nothing marks and
    the DF is zero.

    The relative DFs factor out the characteristic parameter [K0]
    (Eq. 8-9): [N = K0 N0] with [K0 = 1/K] (DCTCP) or [1/K2] (DT-DCTCP). *)

val relay : k:float -> x:float -> Cplx.t
(** [N_dc(X)]; zero for [x < k]. @raise Invalid_argument if [k <= 0] or
    [x <= 0]. *)

val hysteresis : k1:float -> k2:float -> x:float -> Cplx.t
(** [N_dt(X)] with the piecewise extension above. Requires [0 < k1 <= k2]. *)

val relay_relative : k:float -> x:float -> Cplx.t
(** Eq. 23: [N0_dc = K * N_dc]. *)

val hysteresis_relative : k1:float -> k2:float -> x:float -> Cplx.t
(** Eq. 28: [N0_dt = K2 * N_dt]. *)

val neg_recip : Cplx.t -> Cplx.t
(** [-1/N]; [infinity + 0j]-free: returns a non-finite complex if [N] is
    zero (callers filter with {!Cplx.is_finite}). *)

val relay_max_relative : float
(** [max_X N0_dc(X) = 1/pi], attained at [X = K sqrt 2]; so
    [max(-1/N0_dc) = -pi] (used by Theorem 1). *)

(** {2 Numerical cross-checks} *)

val relay_indicator : k:float -> x:float -> theta:float -> bool
(** Marking indicator of the ideal relay at phase [theta] of the sine. *)

val hysteresis_indicator :
  k1:float -> k2:float -> x:float -> theta:float -> bool
(** Ideal hysteresis indicator (marking from the K1 up-crossing to the K2
    down-crossing; relay at K1 when the swing stays below K2). *)

val fundamental_of_indicator : (float -> bool) -> x:float -> n:int -> Cplx.t
(** Numerically integrates the fundamental Fourier coefficients of an
    indicator sampled at [n] midpoints of [0, 2pi) and returns
    [(B1 + j A1)/X] — should agree with the closed forms (property
    tested). *)
