type point = { param : float; z : Cplx.t }

let log_space ~lo ~hi ~n =
  if lo <= 0. || hi <= lo then invalid_arg "Nyquist.log_space: bad range";
  if n < 2 then invalid_arg "Nyquist.log_space: need n >= 2";
  let llo = log lo and lhi = log hi in
  Array.init n (fun i ->
      Stdlib.exp (llo +. ((lhi -. llo) *. float_of_int i /. float_of_int (n - 1))))

let lin_space ~lo ~hi ~n =
  if n < 2 then invalid_arg "Nyquist.lin_space: need n >= 2";
  Array.init n (fun i ->
      lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)))

let plant_locus params ~k0 ~w =
  Array.map (fun w -> { param = w; z = Cplx.scale k0 (Plant.g_jw params w) }) w

let df_locus ~df ~x =
  let points =
    Array.to_list x
    |> List.filter_map (fun x ->
           let n = df x in
           let z = Df.neg_recip n in
           if Cplx.is_finite z then Some { param = x; z } else None)
  in
  Array.of_list points

let relay_neg_recip_locus ~k ~x =
  df_locus ~df:(fun x -> Df.relay_relative ~k ~x) ~x

let hysteresis_neg_recip_locus ~k1 ~k2 ~x =
  df_locus ~df:(fun x -> Df.hysteresis_relative ~k1 ~k2 ~x) ~x

type crossing = { z : Cplx.t; param_a : float; param_b : float }

let segment_intersection p0 p1 q0 q1 =
  (* Solve p0 + t (p1 - p0) = q0 + u (q1 - q0) for t, u in [0, 1]. *)
  let rx = p1.Cplx.re -. p0.Cplx.re and ry = p1.Cplx.im -. p0.Cplx.im in
  let sx = q1.Cplx.re -. q0.Cplx.re and sy = q1.Cplx.im -. q0.Cplx.im in
  let denom = (rx *. sy) -. (ry *. sx) in
  if Float.abs denom < 1e-300 then None
  else begin
    let qpx = q0.Cplx.re -. p0.Cplx.re and qpy = q0.Cplx.im -. p0.Cplx.im in
    let t = ((qpx *. sy) -. (qpy *. sx)) /. denom in
    let u = ((qpx *. ry) -. (qpy *. rx)) /. denom in
    if t >= 0. && t <= 1. && u >= 0. && u <= 1. then
      Some
        ( Cplx.make (p0.Cplx.re +. (t *. rx)) (p0.Cplx.im +. (t *. ry)),
          t,
          u )
    else None
  end

let interp a b t = a +. ((b -. a) *. t)

let intersections curve_a curve_b =
  let found = ref [] in
  for i = 0 to Array.length curve_a - 2 do
    let a0 : point = curve_a.(i) and a1 : point = curve_a.(i + 1) in
    for jdx = 0 to Array.length curve_b - 2 do
      let b0 : point = curve_b.(jdx) and b1 : point = curve_b.(jdx + 1) in
      match segment_intersection a0.z a1.z b0.z b1.z with
      | None -> ()
      | Some (z, t, u) ->
          found :=
            {
              z;
              param_a = interp a0.param a1.param t;
              param_b = interp b0.param b1.param u;
            }
            :: !found
    done
  done;
  List.rev !found

let real_axis_crossings curve =
  let out = ref [] in
  for i = 0 to Array.length curve - 2 do
    let a : point = curve.(i) and b : point = curve.(i + 1) in
    let ia = a.z.Cplx.im and ib = b.z.Cplx.im in
    if (ia <= 0. && ib > 0.) || (ia >= 0. && ib < 0.) then begin
      let t = if ib = ia then 0. else -.ia /. (ib -. ia) in
      if t >= 0. && t <= 1. then
        out :=
          ( interp a.param b.param t,
            interp a.z.Cplx.re b.z.Cplx.re t )
          :: !out
    end
  done;
  List.rev !out
