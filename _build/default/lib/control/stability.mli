(** Theorems 1 and 2: stability verdicts and limit-cycle prediction.

    For DCTCP (Theorem 1) the locus [-1/N0_dc(X)] is the real ray
    [(-inf, -pi]]; the system can oscillate only if the plant locus
    [K0 G(jw)] crosses the negative real axis left of [-pi]. The crossing
    real coordinate [c] then gives the limit-cycle amplitude in closed
    form: [N0_dc(X) = -1/c] has two roots, and the outer (larger-X) root
    is the stable limit cycle.

    For DT-DCTCP (Theorem 2) the locus [-1/N0_dt(X)] is a genuine curve in
    the upper half plane and the verdict comes from polyline intersection
    with [K0 G(jw)].

    Amplitudes are in the same unit as the thresholds (packets for the
    paper's parameters); frequencies in rad/s. *)

type limit_cycle = {
  amplitude : float;  (** X of the stable limit cycle. *)
  omega : float;  (** Oscillation frequency, rad/s. *)
}

type verdict =
  | Stable
  | Oscillatory of limit_cycle

val pp_verdict : Format.formatter -> verdict -> unit

type grids = {
  w_lo : float;
  w_hi : float;
  w_points : int;
  x_factor_hi : float;  (** DF amplitudes sampled up to [x_factor_hi * K]. *)
  x_points : int;
}

val default_grids : grids
(** w in [1e2, 1e7] rad/s (3000 log points), X up to 60 K (4000 points). *)

val dctcp : ?grids:grids -> Plant.params -> k:float -> verdict
(** Theorem 1 for threshold [k] (in packets). *)

val dt_dctcp : ?grids:grids -> Plant.params -> k1:float -> k2:float -> verdict
(** Theorem 2 for thresholds [k1 <= k2] (in packets). *)

(** {2 Gain margins}

    With the paper's stated parameters the printed [G(jw)] never reaches
    the DF loci (see EXPERIMENTS.md), so the binary verdicts above are all
    "stable"; the quantitative content of Figure 9 is then the {e margin}:
    the factor by which the loop gain would have to grow before the loci
    touch. A margin of 1 is the oscillation onset; below 1 a limit cycle
    is predicted. DT-DCTCP's DF locus sits strictly above the real axis
    (positive imaginary part of [N0_dt]), so its margin is systematically
    larger — the paper's Section V-D conclusion in quantitative form. *)

val dctcp_margin : ?grids:grids -> Plant.params -> k:float -> float
(** [pi / |Re crossing|] of the plant locus on the negative real axis;
    [infinity] if the locus never crosses it. *)

val dt_dctcp_margin :
  ?grids:grids -> Plant.params -> k1:float -> k2:float -> float
(** Minimal over the DF curve of [|z| / |K0 G(jw)|] where [w] is
    phase-matched to [z] — the radial scaling of the plant locus needed to
    touch [-1/N0_dt(X)]. *)

val critical_n :
  ?grids:grids ->
  ?n_max:int ->
  c:float ->
  r0:float ->
  g:float ->
  verdict_at:(Plant.params -> verdict) ->
  unit ->
  int option
(** Smallest number of flows in [1, n_max] (default 500) for which
    [verdict_at] reports oscillation — the paper's "intersection occurs at
    N = ..." quantity. Monotone bisection is not assumed; a linear scan is
    used. *)
