lib/control/nyquist.ml: Array Cplx Df Float List Plant Stdlib
