lib/control/stability.mli: Format Plant
