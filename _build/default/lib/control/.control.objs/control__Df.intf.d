lib/control/df.mli: Cplx
