lib/control/nyquist.mli: Cplx Plant
