lib/control/plant.ml: Cplx
