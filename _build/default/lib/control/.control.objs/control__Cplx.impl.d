lib/control/cplx.ml: Complex Float Format
