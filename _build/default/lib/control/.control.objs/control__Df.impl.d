lib/control/df.ml: Cplx Float
