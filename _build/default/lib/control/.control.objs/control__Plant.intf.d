lib/control/plant.mli: Cplx
