lib/control/cplx.mli: Complex Format
