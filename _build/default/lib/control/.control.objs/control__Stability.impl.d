lib/control/stability.ml: Array Cplx Float Format List Nyquist Plant
