type t = Complex.t = { re : float; im : float }

let make re im = { re; im }
let re x = { re = x; im = 0. }
let im y = { re = 0.; im = y }
let zero = Complex.zero
let one = Complex.one
let j = Complex.i
let ( +: ) = Complex.add
let ( -: ) = Complex.sub
let ( *: ) = Complex.mul
let ( /: ) = Complex.div
let scale k z = { re = k *. z.re; im = k *. z.im }
let neg = Complex.neg
let inv = Complex.inv
let conj = Complex.conj
let exp = Complex.exp
let modulus = Complex.norm
let arg = Complex.arg
let of_polar ~r ~theta = Complex.polar r theta

let dist a b =
  let dr = a.re -. b.re and di = a.im -. b.im in
  Float.hypot dr di

let is_finite z = Float.is_finite z.re && Float.is_finite z.im
let pp ppf z = Format.fprintf ppf "%.6g%+.6gj" z.re z.im
let to_string z = Format.asprintf "%a" pp z
