(** Transport segments carried in {!Net.Packet.t} payloads.

    Sequence and acknowledgement numbers count whole segments (MSS units),
    the standard simplification in congestion-control simulators: window
    arithmetic is identical, byte bookkeeping is not needed. *)

type Net.Packet.payload +=
  | Data of { seq : int }
      (** Data segment number [seq] (0-based). Its wire size is the flow's
          configured per-segment size. *)
  | Ack of { ack : int; ece : bool; sack : (int * int) list }
      (** Cumulative ACK: all segments below [ack] received. [ece] echoes
          congestion per the receiver's echo policy. [sack] lists up to
          three [(first, last_exclusive)] ranges of out-of-order segments
          held above [ack] (empty when SACK is off or nothing is held). *)

val data : seq:int -> Net.Packet.payload

val ack :
  ack:int -> ece:bool -> ?sack:(int * int) list -> unit -> Net.Packet.payload

val describe : Net.Packet.payload -> string
(** For logs and debugging; other payload kinds render as ["other"]. *)
