type Net.Packet.payload +=
  | Data of { seq : int }
  | Ack of { ack : int; ece : bool; sack : (int * int) list }

let data ~seq = Data { seq }
let ack ~ack ~ece ?(sack = []) () = Ack { ack; ece; sack }

let describe = function
  | Data { seq } -> Printf.sprintf "data seq=%d" seq
  | Ack { ack; ece; sack = [] } -> Printf.sprintf "ack=%d ece=%b" ack ece
  | Ack { ack; ece; sack } ->
      Printf.sprintf "ack=%d ece=%b sack=[%s]" ack ece
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) sack))
  | _ -> "other"
