(** TCP receiver: cumulative ACK generation with a pluggable ECN echo.

    The receiver tracks in-order delivery ([rcv_nxt]), buffers out-of-order
    segments, and answers every data segment according to its echo policy:

    - [Per_packet]: one ACK per data segment, ECE mirroring that segment's
      CE bit. This gives the DCTCP sender an exact per-packet mark stream
      (the configuration the paper's simulations use).
    - [Dctcp_delayed m]: the DCTCP receiver state machine from Alizadeh et
      al.: ACKs are coalesced up to [m] segments, but a change in the CE
      run forces an immediate ACK so the sender can still reconstruct the
      marked fraction.

    Genuinely out-of-order segments (beyond [rcv_nxt] and not yet
    buffered) trigger an immediate ACK — the sender's fast retransmit
    depends on those duplicate ACKs. Stale duplicates (data already
    delivered or already buffered, i.e. go-back-N resends) are {e not}
    acknowledged again: without SACK the sender cannot distinguish such
    ACKs from loss-indicating duplicates, and re-acknowledging them causes
    spurious retransmission storms. Since ACK loss is the only case that
    silence could hurt, the sender's RTO covers it. *)

type echo_policy = Per_packet | Dctcp_delayed of int

type t

val create :
  Engine.Sim.t ->
  host:Net.Host.t ->
  flow:int ->
  peer:int ->
  ?echo:echo_policy ->
  ?sack:bool ->
  ?ack_bytes:int ->
  unit ->
  t
(** Binds the flow on [host] and starts ACKing. [peer] is the sender's host
    id. With [sack] (default off) every ACK carries up to three ranges of
    buffered out-of-order segments, enabling selective retransmission at
    the sender. [ack_bytes] defaults to 40. *)

val segments_delivered : t -> int
(** In-order segments delivered so far ([rcv_nxt]). *)

val segments_received : t -> int
(** Total data segments seen, including duplicates and out-of-order. *)

val ce_segments : t -> int
(** Data segments that arrived CE-marked. *)

val acks_sent : t -> int

val close : t -> unit
(** Unbinds from the host. *)
