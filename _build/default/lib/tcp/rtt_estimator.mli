(** RTT estimation and retransmission timeout per RFC 6298.

    [srtt]/[rttvar] use the standard gains (1/8, 1/4); the resulting RTO is
    clamped to [[min_rto, max_rto]]. The minimum RTO is the parameter that
    dominates Incast behaviour (200 ms in the Linux stacks the paper's
    testbed ran), so it is explicit here. *)

type t

val create :
  min_rto:Engine.Time.span ->
  max_rto:Engine.Time.span ->
  initial_rto:Engine.Time.span ->
  unit ->
  t

val sample : t -> Engine.Time.span -> unit
(** Feed a new RTT measurement (only for segments that were not
    retransmitted — Karn's rule is the caller's duty). *)

val rto : t -> Engine.Time.span
(** Current timeout value. *)

val backoff : t -> unit
(** Doubles the RTO (exponential backoff on retransmission timeout),
    clamped at [max_rto]. *)

val srtt : t -> Engine.Time.span option
(** Smoothed RTT, if at least one sample was taken. *)

val samples : t -> int
