lib/tcp/segment.mli: Net
