lib/tcp/rtt_estimator.mli: Engine
