lib/tcp/sender.ml: Cc Engine Float Hashtbl List Net Rtt_estimator Segment Stdlib
