lib/tcp/receiver.mli: Engine Net
