lib/tcp/receiver.ml: Engine Hashtbl List Net Option Segment
