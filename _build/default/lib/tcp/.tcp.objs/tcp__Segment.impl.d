lib/tcp/segment.ml: List Net Printf String
