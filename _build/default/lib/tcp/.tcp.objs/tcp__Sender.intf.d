lib/tcp/sender.mli: Cc Engine Net
