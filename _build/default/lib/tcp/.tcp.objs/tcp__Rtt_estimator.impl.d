lib/tcp/rtt_estimator.ml: Engine Float Int64 Stdlib
