lib/tcp/flow.mli: Cc Engine Net Receiver Sender
