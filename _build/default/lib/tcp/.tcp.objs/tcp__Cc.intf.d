lib/tcp/cc.mli: Engine
