lib/tcp/cc.ml: Engine Printf Stdlib
