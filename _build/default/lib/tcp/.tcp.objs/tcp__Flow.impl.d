lib/tcp/flow.ml: Engine Lazy Net Receiver Sender
