(* Shared-buffer sizing study: amplitude and loss vs switch memory.

   One Dynamic-Threshold pool (alpha = 1) is swept from well under a
   bandwidth-delay product (10 KB against a 125 KB BDP) to deep
   buffering, under three transports: DCTCP and DT-DCTCP marking at
   fractions of the moving effective limit (the scaled policies), and
   loss-based NewReno, which only notices the buffer when admission
   fails. The tracked BENCH_buffer.json claim mirrors the oscillation
   section's: at every swept pool size the hysteresis band keeps
   DT-DCTCP's oscillation at or below DCTCP's — easing the queue
   oscillation does not stop working when the walls move.

   The gated quantity is the TRIMMED mean amplitude — the per-cycle
   mean with the single largest cycle dropped. The analyzer sees the
   run from t = 0, so the warmup slow-start fill counts as one giant
   full-band cycle; for a transport so stable it produces no further
   cycles, that transient IS the untrimmed mean (at B = 2 BDP the
   DT-DCTCP run's only "cycle" is the 83-packet warmup spike, after
   which hysteresis holds the queue inside the band for the whole
   measurement). Dropping the max removes exactly that one-off from
   both protocols alike while leaving genuine saw-tooth statistics
   essentially untouched. *)

module Spec = Exp.Spec
module Json = Obs.Json

let alpha = 1.0
let pool_sizes = Exp.Registry.buffer_pool_sizes
let ecn_labels = [ "dctcp"; "dt-dctcp" ]

let specs () =
  Exp.Registry.fig_buffer_specs ~pool_sizes ~alphas:[ alpha ]
    ~warmup:(Bench_common.warmup ()) ~measure:(Bench_common.measure ()) ()

(* Navigate the manifest's analysis block; a missing path is a harness
   bug, not a data point. *)
let afloat name analysis path =
  let rec go j = function
    | [] -> (
        match j with
        | Json.Float f -> f
        | Json.Int i -> float_of_int i
        | _ -> Bench_common.bad_outcome name "analysis field is not a number")
    | k :: rest -> (
        match Json.member k j with
        | Some v -> go v rest
        | None ->
            Bench_common.bad_outcome name ("analysis block lacks " ^ k))
  in
  go analysis path

let analysis_of (o : Exp.Runner.outcome) =
  let name = o.Exp.Runner.spec.Spec.name in
  match o.Exp.Runner.manifest.Obs.Manifest.analysis with
  | Some a -> a
  | None -> Bench_common.bad_outcome name "manifest has no analysis block"

let manifest_metric (o : Exp.Runner.outcome) key =
  let m = o.Exp.Runner.manifest.Obs.Manifest.metrics in
  match List.find_opt (fun (k, _) -> String.equal k key) m with
  | Some (_, v) -> v
  | None -> 0.

let run () =
  Bench_common.section_header
    "Buffer sizing: shared Dynamic-Threshold pool (alpha = 1)";
  let specs = specs () in
  let outcomes, wall_s =
    Obs.Profile.time (fun () -> Bench_common.run_specs_analyzed specs)
  in
  let t =
    Stats.Table.create ~title:"amplitude and loss vs shared pool size"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "protocol";
          Stats.Table.column "pool (KB)";
          Stats.Table.column "BDP";
          Stats.Table.column "cycles";
          Stats.Table.column "amp mean (pkts)";
          Stats.Table.column "amp trim (pkts)";
          Stats.Table.column "occ std (pkts)";
          Stats.Table.column "drops";
          Stats.Table.column "rejects";
          Stats.Table.column "util";
        ]
  in
  let metrics = ref [] in
  let events = ref 0 in
  let amp = Hashtbl.create 16 in
  let slugs = List.map fst Exp.Registry.buffer_protocols in
  let n_protos = List.length slugs in
  Array.iteri
    (fun i (o : Exp.Runner.outcome) ->
      let pool_bytes = List.nth pool_sizes (i / n_protos) in
      let label = List.nth slugs (i mod n_protos) in
      let name = o.Exp.Runner.spec.Spec.name in
      let r = Bench_common.longlived_of o in
      let a = analysis_of o in
      let amp_mean = afloat name a [ "cycles"; "amp_mean_pkts" ] in
      let amp_max = afloat name a [ "cycles"; "amp_max_pkts" ] in
      let cycles = afloat name a [ "cycles"; "count" ] in
      let amp_trim =
        if cycles >= 2. then
          ((amp_mean *. cycles) -. amp_max) /. (cycles -. 1.)
        else 0.
      in
      let occ_std = afloat name a [ "occupancy"; "std_pkts" ] in
      let rejects = manifest_metric o "buffer.pool_rejects" in
      let high_water = manifest_metric o "buffer.pool_high_water" in
      let ecn = List.mem label ecn_labels in
      if ecn then Hashtbl.replace amp (label, pool_bytes) amp_trim;
      events := !events + o.Exp.Runner.manifest.Obs.Manifest.events;
      Stats.Table.add_row t
        [
          label;
          Printf.sprintf "%.1f" (float_of_int pool_bytes /. 1e3);
          Printf.sprintf "%.2f"
            (float_of_int pool_bytes
            /. float_of_int Exp.Registry.bdp_bytes);
          (* The loss-based run has no marking band, so the cycle
             detector is off and amplitude is not a number for it. *)
          (if ecn then Printf.sprintf "%.0f" cycles else "-");
          (if ecn then Printf.sprintf "%.1f" amp_mean else "-");
          (if ecn then Printf.sprintf "%.1f" amp_trim else "-");
          Printf.sprintf "%.1f" r.Workloads.Longlived.std_queue_pkts;
          string_of_int r.Workloads.Longlived.drops;
          Printf.sprintf "%.0f" rejects;
          Printf.sprintf "%.3f" r.Workloads.Longlived.utilization;
        ];
      let key fmt = Printf.sprintf "%s.%s.B%d" fmt label pool_bytes in
      metrics :=
        (if ecn then
           [
             (key "amp_mean_pkts", amp_mean);
             (key "amp_trim_pkts", amp_trim);
             (key "cycles", cycles);
           ]
         else [])
        @ [
            (key "occ_std_pkts", occ_std);
            ( key "drops",
              float_of_int r.Workloads.Longlived.drops );
            (key "pool_rejects", rejects);
            (key "pool_high_water", high_water);
            (key "util", r.Workloads.Longlived.utilization);
          ]
        @ !metrics)
    outcomes;
  Stats.Table.print t;
  List.iter
    (fun b ->
      let d = Hashtbl.find amp ("dctcp", b) in
      let dt = Hashtbl.find amp ("dt-dctcp", b) in
      Printf.printf
        "  B=%-8d trimmed amplitude: DCTCP %.1f pkts vs DT %.1f pkts %s\n" b
        d dt
        (if dt <= d then "(eased)" else "(NOT eased)"))
    pool_sizes;
  Bench_common.write_manifest ~section:"buffer" ~wall_s ~seed:1L
    ~events:!events
    ~params:
      [
        ( "pool_sizes",
          Json.List (List.map (fun b -> Json.Int b) pool_sizes) );
        ("alpha", Json.Float alpha);
        ("bdp_bytes", Json.Int Exp.Registry.bdp_bytes);
        ("protocols", Json.List (List.map (fun s -> Json.String s) slugs));
      ]
    ~metrics:!metrics ()
