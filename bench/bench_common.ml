(* Shared configuration and helpers for the figure-reproduction harness.

   Sections that measure simulation runs declare Exp.Spec lists (usually
   via the Exp.Registry builders, handing them the --quick scaling) and
   execute them through [run_specs], which fans runs across domains when
   the harness is invoked with -j N. Analysis-only sections (fluid model,
   describing function, fig2's synthetic swing) bypass the experiment
   layer. *)

module Time = Engine.Time

(* Scaled run lengths: --quick halves the simulated windows and repeats so
   the whole harness stays interactive during development. *)
let quick = ref false

let scale_span s = if !quick then Int64.div s 2L else s
let scale_int n = if !quick then Stdlib.max 1 (n / 2) else n

(* Longlived sections all share the paper's 100/200 ms windows. *)
let warmup () = scale_span (Time.span_of_ms 100.)
let measure () = scale_span (Time.span_of_ms 200.)

(* -j N: domains for Exp.Runner sweeps (1 = serial). *)
let jobs = ref 1

let run_specs specs = Exp.Runner.run ~jobs:!jobs specs

(* Same, with the streaming oscillation analyzer teed into every run
   (its JSON block lands in each outcome's manifest). *)
let run_specs_analyzed specs = Exp.Runner.run ~jobs:!jobs ~analyze:true specs

(* The protocol operating points now live in Exp.Registry; the two the
   analysis sections (spectrum, parking lot) instantiate directly: *)
let dctcp_sim () = Exp.Spec.protocol_of Exp.Registry.sim_dctcp
let dt_sim () = Exp.Spec.protocol_of Exp.Registry.sim_dt

(* Payload extractors: a bench section feeding a table cannot render a
   failed or wrong-kinded run, so these exit loudly instead. *)
let bad_outcome name msg : 'a =
  Printf.eprintf "bench: run %s: %s\n" name msg;
  exit 1

let longlived_of (o : Exp.Runner.outcome) =
  match o.Exp.Runner.result with
  | Exp.Outcome.Done (Exp.Outcome.Longlived r) -> r
  | Exp.Outcome.Failed { error; _ } ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name error
  | Exp.Outcome.Done p ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name
        ("unexpected payload " ^ Exp.Outcome.payload_kind p)

let incast_of (o : Exp.Runner.outcome) =
  match o.Exp.Runner.result with
  | Exp.Outcome.Done (Exp.Outcome.Incast r) -> r
  | Exp.Outcome.Failed { error; _ } ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name error
  | Exp.Outcome.Done p ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name
        ("unexpected payload " ^ Exp.Outcome.payload_kind p)

let completion_of (o : Exp.Runner.outcome) =
  match o.Exp.Runner.result with
  | Exp.Outcome.Done (Exp.Outcome.Completion r) -> r
  | Exp.Outcome.Failed { error; _ } ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name error
  | Exp.Outcome.Done p ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name
        ("unexpected payload " ^ Exp.Outcome.payload_kind p)

let deadline_of (o : Exp.Runner.outcome) =
  match o.Exp.Runner.result with
  | Exp.Outcome.Done (Exp.Outcome.Deadline r) -> r
  | Exp.Outcome.Failed { error; _ } ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name error
  | Exp.Outcome.Done p ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name
        ("unexpected payload " ^ Exp.Outcome.payload_kind p)

let dynamic_of (o : Exp.Runner.outcome) =
  match o.Exp.Runner.result with
  | Exp.Outcome.Done (Exp.Outcome.Dynamic r) -> r
  | Exp.Outcome.Failed { error; _ } ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name error
  | Exp.Outcome.Done p ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name
        ("unexpected payload " ^ Exp.Outcome.payload_kind p)

let convergence_of (o : Exp.Runner.outcome) =
  match o.Exp.Runner.result with
  | Exp.Outcome.Done (Exp.Outcome.Convergence r) -> r
  | Exp.Outcome.Failed { error; _ } ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name error
  | Exp.Outcome.Done p ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name
        ("unexpected payload " ^ Exp.Outcome.payload_kind p)

let fattree_of (o : Exp.Runner.outcome) =
  match o.Exp.Runner.result with
  | Exp.Outcome.Done (Exp.Outcome.Fattree r) -> r
  | Exp.Outcome.Failed { error; _ } ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name error
  | Exp.Outcome.Done p ->
      bad_outcome o.Exp.Runner.spec.Exp.Spec.name
        ("unexpected payload " ^ Exp.Outcome.payload_kind p)

let section_header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Every section leaves a run-provenance record behind, so BENCH_*.json
   results are comparable across PRs. Sections that write their own
   manifest (with real metrics) are recorded here so the harness driver
   does not clobber them with its generic wall-clock-only record. *)
let manifest_written : (string, unit) Hashtbl.t = Hashtbl.create 8

let wrote_manifest section = Hashtbl.mem manifest_written section

let write_manifest ~section ~wall_s ?(seed = 0L) ?(events = 0) ?(params = [])
    ?(metrics = []) () =
  Hashtbl.replace manifest_written section ();
  let manifest =
    Obs.Manifest.make
      ~name:("bench." ^ section)
      ~seed
      ~params:(("quick", Obs.Json.Bool !quick) :: params)
      ~wall_clock_s:wall_s ~events ~metrics ()
  in
  let file = Printf.sprintf "BENCH_%s.json" section in
  let oc = open_out file in
  Obs.Manifest.write oc manifest;
  close_out oc;
  Printf.printf "[manifest %s]\n%!" file

let mbps bps = bps /. 1e6
let gbps bps = bps /. 1e9
