(* Shared configuration and helpers for the figure-reproduction harness. *)

module Time = Engine.Time

(* Scaled run lengths: --quick halves the simulated windows and repeats so
   the whole harness stays interactive during development. *)
let quick = ref false

let scale_span s = if !quick then Int64.div s 2L else s
let scale_int n = if !quick then Stdlib.max 1 (n / 2) else n

(* The paper's simulation protocols (Section VI-A): 10 Gbps, 100 us RTT,
   K = 40 pkt, g = 1/16; DT-DCTCP splits K into (30, 50). *)
let dctcp_sim () = Dctcp.Protocol.dctcp_pkts ~k:40 ()
let dt_sim () = Dctcp.Protocol.dt_dctcp_pkts ~k1:30 ~k2:50 ()

(* The paper's testbed protocols (Section VI-B): 1 Gbps, K = 32 KB; the
   two DT parameter groups, read as (start, stop) thresholds — see
   EXPERIMENTS.md for why the paper's K1/K2 labels are swapped there. *)
let dctcp_testbed () = Dctcp.Protocol.dctcp ~k_bytes:(32 * 1024) ()

let dt_testbed_a () =
  Dctcp.Protocol.dt_dctcp ~k1_bytes:(28 * 1024) ~k2_bytes:(34 * 1024) ()

let dt_testbed_b () =
  Dctcp.Protocol.dt_dctcp ~k1_bytes:(30 * 1024) ~k2_bytes:(34 * 1024) ()

let longlived_config ~n ?(trace = false) () =
  {
    Workloads.Longlived.default_config with
    Workloads.Longlived.n_flows = n;
    warmup = scale_span (Time.span_of_ms 100.);
    measure = scale_span (Time.span_of_ms 200.);
    trace_sampling =
      (if trace then Some (Time.span_of_us 20.) else None);
  }

let section_header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Every section leaves a run-provenance record behind, so BENCH_*.json
   results are comparable across PRs. *)
let write_manifest ~section ~wall_s ?(seed = 0L) ?(events = 0) ?(params = [])
    ?(metrics = []) () =
  let manifest =
    Obs.Manifest.make
      ~name:("bench." ^ section)
      ~seed
      ~params:(("quick", Obs.Json.Bool !quick) :: params)
      ~wall_clock_s:wall_s ~events ~metrics
  in
  let file = Printf.sprintf "BENCH_%s.json" section in
  let oc = open_out file in
  Obs.Manifest.write oc manifest;
  close_out oc;
  Printf.printf "[manifest %s]\n%!" file

let mbps bps = bps /. 1e6
let gbps bps = bps /. 1e9
