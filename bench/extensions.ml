(* Extension benches beyond the reproduced paper: D2TCP (the deadline-aware
   DCTCP derivative the paper's introduction cites) and the queue-buildup
   mixed-traffic experiment from the original DCTCP paper.

   All sections but parking_lot (custom multi-hop topology wiring) run
   their Exp.Registry spec lists through Bench_common.run_specs. *)

module Time = Engine.Time
module D = Workloads.Deadline
module Dy = Workloads.Dynamic

let d2tcp () =
  Bench_common.section_header
    "Extension: D2TCP (deadline-aware backoff) vs DCTCP";
  let repeats = Bench_common.scale_int 10 in
  let flow_counts = [ 6; 8; 10; 12; 16; 20 ] in
  (* Registry order: per flow count, a (dctcp, d2tcp) pair. *)
  let outcomes =
    Bench_common.run_specs (Exp.Registry.d2tcp_specs ~flow_counts ~repeats ())
  in
  let t =
    Stats.Table.create
      ~title:
        "fraction of deadlines met (300 KB flows, deadlines uniform 2-6 ms, \
         10 Gbps star)"
      ~columns:
        [
          Stats.Table.column "flows";
          Stats.Table.column "DCTCP met";
          Stats.Table.column "D2TCP met";
          Stats.Table.column "DCTCP p99 (ms)";
          Stats.Table.column "D2TCP p99 (ms)";
        ]
  in
  List.iteri
    (fun i n ->
      let dctcp = Bench_common.deadline_of outcomes.(2 * i) in
      let d2tcp = Bench_common.deadline_of outcomes.((2 * i) + 1) in
      Stats.Table.add_row t
        [
          string_of_int n;
          Stats.Table.fmt_f 3 dctcp.D.met_fraction;
          Stats.Table.fmt_f 3 d2tcp.D.met_fraction;
          Stats.Table.fmt_f 2 (dctcp.D.p99_completion_s *. 1e3);
          Stats.Table.fmt_f 2 (d2tcp.D.p99_completion_s *. 1e3);
        ])
    flow_counts;
  Stats.Table.print t;
  Printf.printf
    "\nD2TCP's imminence-gated backoff (p = alpha^d) trades bandwidth toward\n\
     near-deadline flows; the gain concentrates in the mid fan-in range\n\
     where windows are still several segments (at high fan-in every window\n\
     is pinned at ~1 segment and no backoff policy can shift bandwidth).\n\
     This implementation omits the original's hardware pacing.\n"

let sack () =
  Bench_common.section_header
    "Extension: SACK vs go-back-N recovery in the Incast regime";
  let repeats = Bench_common.scale_int 10 in
  let flow_counts = [ 28; 32; 34; 36; 40; 44 ] in
  (* Registry order: per flow count, a (go-back-n, sack) pair. *)
  let outcomes =
    Bench_common.run_specs (Exp.Registry.sack_specs ~flow_counts ~repeats ())
  in
  let t =
    Stats.Table.create
      ~title:"DCTCP Incast goodput (Mbps) and timeouts with each recovery"
      ~columns:
        [
          Stats.Table.column "flows";
          Stats.Table.column "go-back-N";
          Stats.Table.column "to/run";
          Stats.Table.column "SACK";
          Stats.Table.column "to/run";
        ]
  in
  List.iteri
    (fun i n ->
      let cell j =
        let r = Bench_common.incast_of outcomes.((2 * i) + j) in
        ( Stats.Table.fmt_f 1
            (Bench_common.mbps r.Workloads.Incast.mean_goodput_bps),
          Stats.Table.fmt_f 1 r.Workloads.Incast.timeouts_per_run )
      in
      let g_gbn, t_gbn = cell 0 in
      let g_sack, t_sack = cell 1 in
      Stats.Table.add_row t [ string_of_int n; g_gbn; t_gbn; g_sack; t_sack ])
    flow_counts;
  Stats.Table.print t;
  Printf.printf
    "\nA negative result worth keeping: the columns are identical. Incast\n\
     losses here are whole-window tail losses on 1-2 segment windows, so\n\
     triple duplicate ACKs never occur, fast retransmit (where SACK acts)\n\
     never engages, and every recovery is a min-RTO wait. SACK's benefit\n\
     shows on partial window losses instead (see the lossy-transfer tests:\n\
     ~5x less resend overhead than go-back-N).\n"

let convergence () =
  Bench_common.section_header
    "Extension: convergence under flow churn (DCTCP paper's convergence test)";
  let interval = Bench_common.scale_span (Engine.Time.span_of_ms 400.) in
  let outcomes =
    Bench_common.run_specs
      (Exp.Registry.convergence_specs ~join_interval:interval ~hold:interval ())
  in
  Array.iter
    (fun (o : Exp.Runner.outcome) ->
      let r = Bench_common.convergence_of o in
      let module C = Workloads.Convergence in
      Printf.printf "\n%s: per-flow share over time (Mbps)\n"
        o.Exp.Runner.spec.Exp.Spec.name;
      let series =
        List.init 5 (fun i ->
            ( Printf.sprintf "flow %d" i,
              Array.map (fun w -> w.(i) /. 1e6) r.C.shares ))
      in
      print_string
        (Stats.Ascii_plot.render ~height:11 ~series ());
      Printf.printf
        "  convergence times (ms): %s\n  Jain (all active): %.3f   \
         utilization: %.3f\n"
        (String.concat ", "
           (Array.to_list
              (Array.map
                 (fun t ->
                   if Float.is_nan t then "-" else Printf.sprintf "%.0f" (t *. 1e3))
                 r.C.convergence_times_s)))
        r.C.jain_steady r.C.utilization_steady)
    outcomes;
  Printf.printf
    "\nFlows join every 400 ms then leave in join order; both protocols\n\
     converge each newcomer to its fair share within tens of ms (tens to\n\
     hundreds of RTTs) and keep near-1 Jain fairness while all five are\n\
     active.\n"

let parking_lot () =
  Bench_common.section_header
    "Extension: multi-bottleneck fairness (parking lot, 3 hops)";
  let t =
    Stats.Table.create
      ~title:
        "goodput (Mbps): one long flow across 3 marked trunks vs one cross \
         flow per hop (1 Gbps trunks)"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "protocol";
          Stats.Table.column "long flow";
          Stats.Table.column "cross 0";
          Stats.Table.column "cross 1";
          Stats.Table.column "cross 2";
          Stats.Table.column "long/fair";
        ]
  in
  List.iter
    (fun (name, proto) ->
      let sim = Engine.Sim.create ~seed:11L () in
      let pl =
        Net.Topology.parking_lot sim ~hops:3 ~rate_bps:1e9
          ~buffer_bytes:(300 * 1500)
          ~marking:(fun () -> proto.Dctcp.Protocol.marking ()) ()
      in
      let tcp_config =
        { Tcp.Sender.default_config with min_rto = Time.span_of_ms 10. }
      in
      let mk ~flow src dst =
        Tcp.Flow.create sim ~src ~dst ~flow ~cc:proto.Dctcp.Protocol.cc
          ~config:tcp_config ~echo:proto.Dctcp.Protocol.echo ()
      in
      let long = mk ~flow:0 pl.Net.Topology.long_src pl.Net.Topology.long_dst in
      let crosses =
        Array.init 3 (fun i ->
            mk ~flow:(1 + i)
              pl.Net.Topology.cross_srcs.(i)
              pl.Net.Topology.cross_dsts.(i))
      in
      Tcp.Flow.start long;
      Array.iter Tcp.Flow.start crosses;
      let warm = Bench_common.scale_span (Time.span_of_ms 100.) in
      let measure = Bench_common.scale_span (Time.span_of_ms 300.) in
      Engine.Sim.run ~until:(Time.of_ns warm) sim;
      let base_long = Tcp.Flow.segments_delivered long in
      let base_cross = Array.map Tcp.Flow.segments_delivered crosses in
      Engine.Sim.run ~until:(Time.add (Time.of_ns warm) measure) sim;
      let window = Time.span_to_sec measure in
      let rate base f =
        float_of_int ((Tcp.Flow.segments_delivered f - base) * 1500 * 8)
        /. window /. 1e6
      in
      let long_rate = rate base_long long in
      let cross_rates = Array.mapi (fun i f -> rate base_cross.(i) f) crosses in
      Stats.Table.add_row t
        [
          name;
          Stats.Table.fmt_f 1 long_rate;
          Stats.Table.fmt_f 1 cross_rates.(0);
          Stats.Table.fmt_f 1 cross_rates.(1);
          Stats.Table.fmt_f 1 cross_rates.(2);
          Stats.Table.fmt_f 2 (long_rate /. 500.);
        ])
    [
      ("DCTCP", Bench_common.dctcp_sim ());
      ("DT-DCTCP", Bench_common.dt_sim ());
      ("Reno", Dctcp.Protocol.reno ());
    ];
  Stats.Table.print t;
  Printf.printf
    "\nThe long flow crosses three marked queues, so it sees roughly the\n\
     union of the marks and falls below the per-link fair share of 500 Mbps\n\
     (the classic multi-bottleneck beat-down); cross flows absorb the rest.\n"

let queue_buildup () =
  Bench_common.section_header
    "Extension: queue buildup under mixed traffic (DCTCP paper sec. 3.3)";
  let outcomes =
    Bench_common.run_specs
      (Exp.Registry.queue_buildup_specs
         ~duration:(Bench_common.scale_span (Time.span_of_ms 200.)) ())
  in
  let t =
    Stats.Table.create
      ~title:
        "2 background long flows + Poisson 21 KB short flows (5k/s), 10 Gbps"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "protocol";
          Stats.Table.column "short FCT p50 (us)";
          Stats.Table.column "p99 (us)";
          Stats.Table.column "max (us)";
          Stats.Table.column "bg tput (Gbps)";
          Stats.Table.column "queue (pkts)";
        ]
  in
  Array.iter
    (fun (o : Exp.Runner.outcome) ->
      let r = Bench_common.dynamic_of o in
      Stats.Table.add_row t
        [
          o.Exp.Runner.spec.Exp.Spec.name;
          Stats.Table.fmt_f 0 (r.Dy.fct_p50_s *. 1e6);
          Stats.Table.fmt_f 0 (r.Dy.fct_p99_s *. 1e6);
          Stats.Table.fmt_f 0 (r.Dy.fct_max_s *. 1e6);
          Stats.Table.fmt_f 2 (r.Dy.background_throughput_bps /. 1e9);
          Printf.sprintf "%.1f +- %.1f" r.Dy.mean_queue_pkts
            r.Dy.std_queue_pkts;
        ])
    outcomes;
  Stats.Table.print t;
  Printf.printf
    "\nReno's standing queue inflates every short flow's completion by the\n\
     queueing delay (~6x at the median here); the DCTCP family keeps the\n\
     queue at the marking threshold so short flows cut through, and\n\
     DT-DCTCP's lower queue floor shaves latency further - the paper's\n\
     motivation for low, stable queues in one table.\n"
