(* Figure 14 (Incast goodput collapse) and Figure 15 (scatter-gather
   completion time) on the simulated 1 Gbps testbed star.

   Both figures sweep flow count x testbed protocol; the spec lists come
   from Exp.Registry, which emits per-N triples in [proto_labels] order. *)

module I = Workloads.Incast
module Cm = Workloads.Completion

let proto_labels = [ "DCTCP K=32KB"; "DT (28,34)KB"; "DT (30,34)KB" ]
let flow_counts = Exp.Registry.incast_flow_counts

(* outcomes.(3i + j): flow count i, protocol j. *)
let triple outcomes i = List.init 3 (fun j -> outcomes.((3 * i) + j))

let fig14 () =
  Bench_common.section_header
    "Figure 14: Incast, 64KB per worker, 1 Gbps star, 128KB buffer";
  let repeats = Bench_common.scale_int 20 in
  let outcomes =
    Bench_common.run_specs (Exp.Registry.fig_incast_specs ~flow_counts ~repeats ())
  in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf "goodput (Mbps), mean of %d synchronized queries"
           repeats)
      ~columns:
        (Stats.Table.column "flows"
        :: List.concat_map
             (fun name ->
               [
                 Stats.Table.column name;
                 Stats.Table.column ("to/run " ^ String.sub name 0 2);
               ])
             proto_labels)
  in
  let collapse = Hashtbl.create 8 in
  List.iteri
    (fun i n ->
      let row =
        List.concat_map
          (fun (name, o) ->
            let r = Bench_common.incast_of o in
            let g = Bench_common.mbps r.I.mean_goodput_bps in
            if g < 500. && not (Hashtbl.mem collapse name) then
              Hashtbl.replace collapse name n;
            [ Stats.Table.fmt_f 1 g; Stats.Table.fmt_f 1 r.I.timeouts_per_run ])
          (List.combine proto_labels (triple outcomes i))
      in
      Stats.Table.add_row t (string_of_int n :: row))
    flow_counts;
  Stats.Table.print t;
  Printf.printf "\ncollapse onset (first n with goodput < 500 Mbps):\n";
  List.iter
    (fun name ->
      Printf.printf "  %-14s %s\n" name
        (match Hashtbl.find_opt collapse name with
        | Some n -> string_of_int n
        | None -> "none up to 48"))
    proto_labels;
  Printf.printf
    "\nPaper: DCTCP collapses at 32 synchronized flows, DT-DCTCP holds until\n\
     37 — a ~5-flow postponement. The reproduction shows the same ordering\n\
     and a similar gap (absolute onsets shift with min-RTO and jitter).\n"

let fig15 () =
  Bench_common.section_header
    "Figure 15: completion time of 1MB scattered over n workers";
  let repeats = Bench_common.scale_int 20 in
  let outcomes =
    Bench_common.run_specs
      (Exp.Registry.fig_completion_specs ~flow_counts ~repeats ())
  in
  let t =
    Stats.Table.create
      ~title:
        (Printf.sprintf "query completion time (ms), mean of %d queries"
           repeats)
      ~columns:
        (Stats.Table.column "flows"
        :: List.concat_map
             (fun name -> [ Stats.Table.column name; Stats.Table.column "max" ])
             proto_labels)
  in
  List.iteri
    (fun i n ->
      let row =
        List.concat_map
          (fun o ->
            let r = Bench_common.completion_of o in
            [
              Stats.Table.fmt_f 2 (r.Cm.mean_completion_s *. 1e3);
              Stats.Table.fmt_f 2 (r.Cm.max_completion_s *. 1e3);
            ])
          (triple outcomes i)
      in
      Stats.Table.add_row t (string_of_int n :: row))
    flow_counts;
  Stats.Table.print t;
  Printf.printf
    "\nPaper: floor ~10 ms (1MB at 1 Gbps); a ~20x jump once Incast begins.\n\
     DCTCP's completion oscillates from 34 flows and jumps at 40; DT-DCTCP\n\
     climbs smoothly and jumps later (42). Look for the later, cleaner\n\
     transition in the DT (28,34) column.\n"
