(* Oscillation observatory: the paper's central claim, measured by the
   streaming trace analyzer instead of coarse queue statistics.

   An N-sweep of long-lived flows runs DCTCP and DT-DCTCP at their
   standard operating points with the analyzer teed into each run's
   trace stream; the table compares full-band peak-trough cycles (the
   analyzer's hysteresis detector), oscillation amplitude, occupancy
   spread, marking-flip rate, and the flow-synchronization index. The
   paper's prediction — and the tracked BENCH_oscillation.json claim —
   is that DT-DCTCP's amplitude stays strictly below DCTCP's at every N:
   DCTCP's queue saws across its single threshold while the hysteresis
   band absorbs the excursion. *)

module Spec = Exp.Spec
module Json = Obs.Json

let flow_counts = [ 10; 30; 60 ]

let spec_of ~label ~protocol ~n =
  let config =
    {
      Workloads.Longlived.default_config with
      Workloads.Longlived.n_flows = n;
      warmup = Bench_common.warmup ();
      measure = Bench_common.measure ();
      seed = 42L;
    }
  in
  {
    Spec.name = Printf.sprintf "oscillation.%s.n%d" label n;
    protocol;
    workload = Spec.Longlived config;
    faults = None;
    buffer = Net.Buffer_mgr.Static;
  }

(* Navigate the manifest's analysis block; a missing path is a harness
   bug, not a data point. *)
let afloat name analysis path =
  let rec go j = function
    | [] -> (
        match j with
        | Json.Float f -> f
        | Json.Int i -> float_of_int i
        | _ -> Bench_common.bad_outcome name "analysis field is not a number")
    | k :: rest -> (
        match Json.member k j with
        | Some v -> go v rest
        | None ->
            Bench_common.bad_outcome name ("analysis block lacks " ^ k))
  in
  go analysis path

let analysis_of (o : Exp.Runner.outcome) =
  let name = o.Exp.Runner.spec.Spec.name in
  (* run_one only skips the analyzer for non-longlived workloads *)
  ignore (Bench_common.longlived_of o);
  match o.Exp.Runner.manifest.Obs.Manifest.analysis with
  | Some a -> a
  | None -> Bench_common.bad_outcome name "manifest has no analysis block"

let run () =
  Bench_common.section_header
    "Oscillation: streaming-analyzer N-sweep (DCTCP vs DT-DCTCP)";
  let protos =
    [ ("dctcp", Exp.Registry.sim_dctcp); ("dt", Exp.Registry.sim_dt) ]
  in
  let specs =
    List.concat_map
      (fun (label, protocol) ->
        List.map (fun n -> spec_of ~label ~protocol ~n) flow_counts)
      protos
  in
  let outcomes, wall_s =
    Obs.Profile.time (fun () -> Bench_common.run_specs_analyzed specs)
  in
  let t =
    Stats.Table.create ~title:"whole-trace streaming analysis"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "protocol";
          Stats.Table.column "N";
          Stats.Table.column "cycles";
          Stats.Table.column "amp mean (pkts)";
          Stats.Table.column "period (ms)";
          Stats.Table.column "occ std (pkts)";
          Stats.Table.column "flips/s";
          Stats.Table.column "sync idx";
        ]
  in
  let metrics = ref [] in
  let events = ref 0 in
  let amp = Hashtbl.create 16 in
  Array.iteri
    (fun i (o : Exp.Runner.outcome) ->
      let label, n =
        let label, _ = List.nth protos (i / List.length flow_counts) in
        (label, List.nth flow_counts (i mod List.length flow_counts))
      in
      let name = o.Exp.Runner.spec.Spec.name in
      let a = analysis_of o in
      let f path = afloat name a path in
      let cycles = f [ "cycles"; "count" ] in
      let amp_mean = f [ "cycles"; "amp_mean_pkts" ] in
      let period_ms = f [ "cycles"; "period_mean_s" ] *. 1e3 in
      let occ_std = f [ "occupancy"; "std_pkts" ] in
      let flips = f [ "marking"; "flip_rate_hz" ] in
      let sync = f [ "sync"; "index_mean" ] in
      Hashtbl.replace amp (label, n) amp_mean;
      events := !events + o.Exp.Runner.manifest.Obs.Manifest.events;
      Stats.Table.add_row t
        [
          label;
          string_of_int n;
          Printf.sprintf "%.0f" cycles;
          Printf.sprintf "%.1f" amp_mean;
          Printf.sprintf "%.3f" period_ms;
          Printf.sprintf "%.1f" occ_std;
          Printf.sprintf "%.0f" flips;
          Printf.sprintf "%.3f" sync;
        ];
      metrics :=
        [
          (Printf.sprintf "cycles.%s.n%d" label n, cycles);
          (Printf.sprintf "amp_mean_pkts.%s.n%d" label n, amp_mean);
          (Printf.sprintf "period_ms.%s.n%d" label n, period_ms);
          (Printf.sprintf "occ_std_pkts.%s.n%d" label n, occ_std);
          (Printf.sprintf "flip_rate_hz.%s.n%d" label n, flips);
          (Printf.sprintf "sync_mean.%s.n%d" label n, sync);
        ]
        @ !metrics)
    outcomes;
  Stats.Table.print t;
  List.iter
    (fun n ->
      let d = Hashtbl.find amp ("dctcp", n) in
      let dt = Hashtbl.find amp ("dt", n) in
      Printf.printf "  N=%-3d amplitude: DCTCP %.1f pkts vs DT %.1f pkts %s\n"
        n d dt
        (if dt < d then "(eased)" else "(NOT eased)"))
    flow_counts;
  Bench_common.write_manifest ~section:"oscillation" ~wall_s ~seed:42L
    ~events:!events
    ~params:
      [
        ( "flow_counts",
          Json.List (List.map (fun n -> Json.Int n) flow_counts) );
        ("protocols", Json.List [ Json.String "dctcp"; Json.String "dt" ]);
      ]
    ~metrics:!metrics ()
