(* Figure-reproduction harness: one section per table/figure of the paper's
   evaluation, plus ablations and substrate micro-benchmarks.

   Usage: main.exe [--quick] [-j N] [section ...]
   Sections: fig1 fig2 fig_df fig9 sweep fig14 fig15 ablations fluid
   robustness oscillation buffer fattree perf
   (default: all). -j N fans each section's Exp.Runner sweep across N
   domains; results are bit-identical to -j 1 by construction. *)

let sections =
  [
    ("fig1", Fig_queue.fig1);
    ("fig2", Fig_queue.fig2);
    ("fig_df", Fig_stability.fig_df);
    ("fig9", Fig_stability.fig9);
    ("sweep", Fig_sweep.figs_10_11_12);
    ("fig14", Fig_incast.fig14);
    ("fig15", Fig_incast.fig15);
    ( "ablations",
      fun () ->
        Ablations.ablation_thresholds ();
        Ablations.ablation_g ();
        Ablations.ablation_policies ();
        Ablations.ablation_testbed_labels () );
    ("fluid", Ablations.fluid_vs_sim);
    ("df_vs_fluid", Ablations.df_vs_fluid);
    ("spectrum", Fig_spectrum.run);
    ( "extensions",
      fun () ->
        Extensions.d2tcp ();
        Extensions.sack ();
        Extensions.queue_buildup ();
        Extensions.convergence ();
        Extensions.parking_lot () );
    ("robustness", Robustness.run);
    ("oscillation", Oscillation.run);
    ("buffer", Buffer.run);
    ("fattree", Fattree.run);
    ("perf", Perf.run);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--quick" :: rest ->
        Bench_common.quick := true;
        parse acc rest
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            Bench_common.jobs := n;
            parse acc rest
        | _ ->
            Printf.eprintf "-j expects a positive integer, got %S\n" n;
            exit 2)
    | [ ("-j" | "--jobs") ] ->
        Printf.eprintf "-j expects an argument\n";
        exit 2
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  let selected =
    match args with
    | [] -> sections
    | names ->
        List.map
          (fun name ->
            match List.assoc_opt name sections with
            | Some f -> (name, f)
            | None ->
                Printf.eprintf "unknown section %S; known: %s\n" name
                  (String.concat ", " (List.map fst sections));
                exit 2)
          names
  in
  Printf.printf
    "DT-DCTCP reproduction harness (%s mode)\n\
     Paper: Ease the Queue Oscillation: Analysis and Enhancement of DCTCP \
     (ICDCS 2013)\n"
    (if !Bench_common.quick then "quick" else "full");
  let t0 = Obs.Profile.wall_clock () in
  List.iter
    (fun (name, f) ->
      let s0 = Obs.Profile.wall_clock () in
      f ();
      let wall_s = Obs.Profile.wall_clock () -. s0 in
      if not (Bench_common.wrote_manifest name) then
        Bench_common.write_manifest ~section:name ~wall_s ();
      Printf.printf "\n[%s done in %.1fs]\n%!" name wall_s)
    selected;
  Printf.printf "\nTotal: %.1fs\n" (Obs.Profile.wall_clock () -. t0)
