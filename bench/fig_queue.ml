(* Figure 1 (queue oscillation traces) and Figure 2 (marking strategies). *)

module L = Workloads.Longlived

let fig1 () =
  Bench_common.section_header
    "Figure 1: queue at the switch, DCTCP vs DT-DCTCP, N=10 and N=100";
  let specs =
    Exp.Registry.fig_queue_specs ~warmup:(Bench_common.warmup ())
      ~measure:(Bench_common.measure ()) ()
  in
  let outcomes = Bench_common.run_specs specs in
  let results =
    Array.to_list
      (Array.map
         (fun (o : Exp.Runner.outcome) ->
           let r = Bench_common.longlived_of o in
           let series =
             match r.L.queue_series with
             | Some s -> Array.map snd s
             | None -> [||]
           in
           (o.Exp.Runner.spec.Exp.Spec.name, (r, series)))
         outcomes)
  in
  let t =
    Stats.Table.create ~title:"queue statistics (packets)"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "case";
          Stats.Table.column "mean";
          Stats.Table.column "stddev";
          Stats.Table.column "max";
          Stats.Table.column "peak-to-peak";
          Stats.Table.column "util";
        ]
  in
  List.iter
    (fun (name, (r, series)) ->
      let lo = Array.fold_left Float.min infinity series in
      let hi = Array.fold_left Float.max neg_infinity series in
      Stats.Table.add_row t
        [
          name;
          Stats.Table.fmt_f 1 r.L.mean_queue_pkts;
          Stats.Table.fmt_f 2 r.L.std_queue_pkts;
          Stats.Table.fmt_f 0 r.L.max_queue_pkts;
          Stats.Table.fmt_f 0 (hi -. lo);
          Stats.Table.fmt_f 3 r.L.utilization;
        ])
    results;
  Stats.Table.print t;
  List.iter
    (fun (name, (_, series)) ->
      (* Plot a 4 ms excerpt so individual oscillation periods resolve. *)
      let n = Array.length series in
      let excerpt = Array.sub series (n / 2) (Stdlib.min 200 (n / 2)) in
      Printf.printf "\n%s (4 ms excerpt, queue in packets):\n%s" name
        (Stats.Ascii_plot.render ~height:10 ~series:[ (name, excerpt) ] ()))
    results;
  Printf.printf
    "\nPaper's claim: DCTCP's swing at N=100 is ~3-4x its N=10 swing, and\n\
     DT-DCTCP swings less at equal N. Compare the stddev/peak-to-peak rows.\n"

(* Figure 2: drive both policies over one synthetic queue swing and show
   where each marks. *)
let fig2 () =
  Bench_common.section_header
    "Figure 2: marking strategies on one synthetic queue swing";
  let pkt = 1500 in
  let swing =
    (* occupancy in packets: up 0..60, down 60..0 *)
    List.init 121 (fun i -> if i <= 60 then i else 120 - i)
  in
  let run name policy =
    let prev = ref 0 in
    let cells =
      List.map
        (fun occ_pkts ->
          let bytes = occ_pkts * pkt in
          let mark =
            if occ_pkts >= !prev then
              policy.Net.Marking.on_enqueue ~bytes ~packets:occ_pkts
            else begin
              policy.Net.Marking.on_dequeue ~bytes ~packets:occ_pkts;
              (* probe the marking state without a crossing *)
              policy.Net.Marking.on_enqueue ~bytes ~packets:occ_pkts
            end
          in
          prev := occ_pkts;
          if mark then '#' else '.')
        swing
    in
    Printf.printf "%-22s %s\n" name
      (String.init (List.length cells) (List.nth cells))
  in
  Printf.printf
    "queue rises 0->60 pkts then falls 60->0; '#' = marking active\n\n";
  Printf.printf "%-22s %s\n" "queue (pkts)"
    "0.........1.........2.........3.........4.........5.........6<peak>5.........4.........3.........2.........1.........0";
  run "DCTCP (K=40)" (Dctcp.Marking_policies.single_threshold ~k_bytes:(40 * pkt));
  run "DT-DCTCP (K1=30,K2=50)"
    (Dctcp.Marking_policies.double_threshold ~k1_bytes:(30 * pkt)
       ~k2_bytes:(50 * pkt) ());
  Printf.printf
    "\nDCTCP marks exactly while the queue exceeds K=40 (both directions).\n\
     DT-DCTCP starts earlier on the rise (K1=30) and, once past K2, keeps\n\
     marking on the fall only until the queue drops back to K2=50.\n"
