(* Fat-tree fabric study: FCT slowdown over ECMP multi-path routing.

   Per-rack incast victims plus cross-pod long flows on the k-ary fat
   tree (k = 4 and 8; 16 and 128 hosts), under the testbed 1 Gbps
   protocol points plus loss-based NewReno. Every flow's completion
   time is scored against its idle-network ideal, so short incast
   bursts and half-megabyte long flows share one slowdown scale and
   the tail percentiles are meaningful across the mix.

   The tracked BENCH_fattree.json claim extends the paper's story to a
   multi-path fabric: at every swept arity DT-DCTCP's p99 slowdown is
   at or below DCTCP's — with the 128 KB per-port buffers DCTCP's
   wider queue excursions cost it overflow drops and RTOs that the
   hysteresis band avoids (at k = 8 DCTCP takes three times the
   timeouts DT does), even when the congestion is spread across ECMP
   paths rather than parked at one bottleneck. NewReno rides along as
   the loss-based competitor; its tail is reported, not gated.

   --quick keeps the same fabric and transfer sizes but caps simulated
   time at 1 s instead of 5 s — the cap only truncates RTO-dominated
   stragglers (censored flows score at the cap), which in practice
   means NewReno's, so the gated ECN percentiles are identical to full
   mode while CI skips simulating seconds of retransmission spam. *)

module Spec = Exp.Spec
module Json = Obs.Json

let ks () = Exp.Registry.fattree_ks

let specs () =
  if !Bench_common.quick then
    Exp.Registry.fig_fattree_specs ~time_cap:(Engine.Time.span_of_sec 1.) ()
  else Exp.Registry.fig_fattree_specs ()

let run () =
  Bench_common.section_header "Fat-tree fabric: FCT slowdown over ECMP";
  let specs = specs () in
  let outcomes, wall_s =
    Obs.Profile.time (fun () -> Bench_common.run_specs specs)
  in
  let t =
    Stats.Table.create ~title:"FCT slowdown on the k-ary fat tree"
      ~columns:
        [
          Stats.Table.column "k";
          Stats.Table.column ~align:Stats.Table.Left "protocol";
          Stats.Table.column "flows";
          Stats.Table.column "p50";
          Stats.Table.column "p95";
          Stats.Table.column "p99";
          Stats.Table.column "p99.9";
          Stats.Table.column "mean";
          Stats.Table.column "timeouts";
          Stats.Table.column "incomplete";
        ]
  in
  let ks = ks () in
  let slugs = List.map fst Exp.Registry.fattree_protocols in
  let n_protos = List.length slugs in
  let metrics = ref [] in
  let events = ref 0 in
  let p99 = Hashtbl.create 8 in
  Array.iteri
    (fun i (o : Exp.Runner.outcome) ->
      let k = List.nth ks (i / n_protos) in
      let slug = List.nth slugs (i mod n_protos) in
      let name = o.Exp.Runner.spec.Spec.name in
      let r = Bench_common.fattree_of o in
      if r.Workloads.Fattree.no_route_drops > 0 then
        Bench_common.bad_outcome name
          (Printf.sprintf "%d no-route drops (fabric miswired)"
             r.Workloads.Fattree.no_route_drops);
      Hashtbl.replace p99 (slug, k) r.Workloads.Fattree.slowdown_p99;
      events := !events + o.Exp.Runner.manifest.Obs.Manifest.events;
      Stats.Table.add_row t
        [
          string_of_int k;
          slug;
          string_of_int r.Workloads.Fattree.flows_total;
          Printf.sprintf "%.2f" r.Workloads.Fattree.slowdown_p50;
          Printf.sprintf "%.2f" r.Workloads.Fattree.slowdown_p95;
          Printf.sprintf "%.2f" r.Workloads.Fattree.slowdown_p99;
          Printf.sprintf "%.2f" r.Workloads.Fattree.slowdown_p999;
          Printf.sprintf "%.2f" r.Workloads.Fattree.slowdown_mean;
          string_of_int r.Workloads.Fattree.timeouts;
          string_of_int r.Workloads.Fattree.incomplete;
        ];
      let key field = Printf.sprintf "%s.%s.k%d" field slug k in
      metrics :=
        [
          (key "slowdown_p50", r.Workloads.Fattree.slowdown_p50);
          (key "slowdown_p95", r.Workloads.Fattree.slowdown_p95);
          (key "slowdown_p99", r.Workloads.Fattree.slowdown_p99);
          (key "slowdown_p999", r.Workloads.Fattree.slowdown_p999);
          (key "slowdown_mean", r.Workloads.Fattree.slowdown_mean);
          (key "slowdown_max", r.Workloads.Fattree.slowdown_max);
          (key "flows", float_of_int r.Workloads.Fattree.flows_total);
          (key "timeouts", float_of_int r.Workloads.Fattree.timeouts);
          (key "incomplete", float_of_int r.Workloads.Fattree.incomplete);
        ]
        @ !metrics)
    outcomes;
  Stats.Table.print t;
  List.iter
    (fun k ->
      let d = Hashtbl.find p99 ("dctcp", k) in
      let dt = Hashtbl.find p99 ("dt-dctcp", k) in
      Printf.printf "  k=%d p99 slowdown: DCTCP %.2f vs DT %.2f %s\n" k d dt
        (if dt <= d then "(eased)" else "(NOT eased)"))
    ks;
  Bench_common.write_manifest ~section:"fattree" ~wall_s ~seed:1L
    ~events:!events
    ~params:
      [
        ("ks", Json.List (List.map (fun k -> Json.Int k) ks));
        ("protocols", Json.List (List.map (fun s -> Json.String s) slugs));
      ]
    ~metrics:!metrics ()
