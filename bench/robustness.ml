(* Robustness under injected faults: the paper's claims are all made on a
   clean fabric, so this section stresses them — random loss, a
   bottleneck flap, a half-rate brownout, and a switch that drops half
   its ECN marks — and tabulates how far DCTCP and DT-DCTCP drift from
   their fault-free operating points. All fault realizations are seeded,
   so the tables are bit-stable across runs and -j levels. *)

module L = Workloads.Longlived
module Spec = Exp.Spec
module Registry = Exp.Registry

let pair_rows specs =
  (* Registry robustness builders emit (dctcp, dt-dctcp) pairs per sweep
     point, in order. *)
  let outcomes = Bench_common.run_specs specs in
  List.init
    (Array.length outcomes / 2)
    (fun i ->
      ( Bench_common.longlived_of outcomes.(2 * i),
        Bench_common.longlived_of outcomes.((2 * i) + 1) ))

let loss_sweep () =
  let rates = Registry.robust_loss_rates in
  let rows =
    pair_rows
      (Registry.robust_loss_specs ~loss_rates:rates
         ~warmup:(Bench_common.warmup ()) ~measure:(Bench_common.measure ())
         ())
  in
  let t =
    Stats.Table.create
      ~title:"Queue and goodput vs random loss rate (N=40 dumbbell)"
      ~columns:
        [
          Stats.Table.column "loss p";
          Stats.Table.column "DCTCP q (pkts)";
          Stats.Table.column "DT q (pkts)";
          Stats.Table.column "DCTCP util";
          Stats.Table.column "DT util";
          Stats.Table.column "DCTCP timeouts";
          Stats.Table.column "DT timeouts";
        ]
  in
  List.iter2
    (fun p ((dc : L.result), (dt : L.result)) ->
      Stats.Table.add_row t
        [
          Printf.sprintf "%g" p;
          Printf.sprintf "%.1f±%.1f" dc.L.mean_queue_pkts dc.L.std_queue_pkts;
          Printf.sprintf "%.1f±%.1f" dt.L.mean_queue_pkts dt.L.std_queue_pkts;
          Stats.Table.fmt_f 3 dc.L.utilization;
          Stats.Table.fmt_f 3 dt.L.utilization;
          string_of_int dc.L.timeouts;
          string_of_int dt.L.timeouts;
        ])
    rates rows;
  Stats.Table.print t;
  Printf.printf
    "Expectation: both transports degrade gracefully to ~1%% loss; DT-DCTCP \
     keeps\nthe lower queue stddev at every loss rate.\n";
  List.concat
    (List.map2
       (fun p ((dc : L.result), (dt : L.result)) ->
         [
           (Printf.sprintf "loss.p%g.dctcp.std_queue" p, dc.L.std_queue_pkts);
           (Printf.sprintf "loss.p%g.dt.std_queue" p, dt.L.std_queue_pkts);
           (Printf.sprintf "loss.p%g.dctcp.util" p, dc.L.utilization);
           (Printf.sprintf "loss.p%g.dt.util" p, dt.L.utilization);
         ])
       rates rows)

(* The flap plan's event times are anchored inside the registry's default
   100/200 ms windows, so this section keeps full-length runs even under
   --quick (scaled windows would move the fault outside the run). *)
let flap_recovery () =
  let rows = pair_rows (Registry.robust_flap_specs ()) in
  let variants = [ "flap (20ms down)"; "brownout (50ms at half rate)" ] in
  let t =
    Stats.Table.create
      ~title:"Oscillation recovery after a bottleneck fault (N=40)"
      ~columns:
        [
          Stats.Table.column "fault";
          Stats.Table.column "DCTCP q (pkts)";
          Stats.Table.column "DT q (pkts)";
          Stats.Table.column "DCTCP max q";
          Stats.Table.column "DT max q";
          Stats.Table.column "DCTCP util";
          Stats.Table.column "DT util";
        ]
  in
  List.iter2
    (fun label ((dc : L.result), (dt : L.result)) ->
      Stats.Table.add_row t
        [
          label;
          Printf.sprintf "%.1f±%.1f" dc.L.mean_queue_pkts dc.L.std_queue_pkts;
          Printf.sprintf "%.1f±%.1f" dt.L.mean_queue_pkts dt.L.std_queue_pkts;
          Stats.Table.fmt_f 0 dc.L.max_queue_pkts;
          Stats.Table.fmt_f 0 dt.L.max_queue_pkts;
          Stats.Table.fmt_f 3 dc.L.utilization;
          Stats.Table.fmt_f 3 dt.L.utilization;
        ])
    variants rows;
  Stats.Table.print t;
  (match rows with
  | ((dc : L.result), (dt : L.result)) :: _ -> (
      match (dc.L.queue_series, dt.L.queue_series) with
      | Some dc_series, Some dt_series ->
          let pkts s = Array.map snd s in
          Printf.printf
            "\nqueue occupancy through the flap (down 150ms, up 170ms):\n%s"
            (Stats.Ascii_plot.render ~height:12
               ~series:
                 [ ("DCTCP", pkts dc_series); ("DT-DCTCP", pkts dt_series) ]
               ())
      | _ -> ())
  | [] -> ());
  Printf.printf
    "Expectation: the queue drains during the outage, spikes on recovery, \
     and\nre-converges; DT-DCTCP's post-fault oscillation stays the narrower \
     one.\n";
  List.concat
    (List.map2
       (fun slug ((dc : L.result), (dt : L.result)) ->
         [
           (Printf.sprintf "%s.dctcp.max_queue" slug, dc.L.max_queue_pkts);
           (Printf.sprintf "%s.dt.max_queue" slug, dt.L.max_queue_pkts);
           (Printf.sprintf "%s.dctcp.util" slug, dc.L.utilization);
           (Printf.sprintf "%s.dt.util" slug, dt.L.utilization);
         ])
       [ "flap"; "brownout" ]
       rows)

let suppression_sweep () =
  let ns = [ 10; 40; 70; 100 ] in
  let rows =
    pair_rows
      (Registry.robust_suppress_specs ~ns ~warmup:(Bench_common.warmup ())
         ~measure:(Bench_common.measure ()) ())
  in
  let t =
    Stats.Table.create
      ~title:"Stability vs N when the switch drops 50% of ECN marks"
      ~columns:
        [
          Stats.Table.column "N";
          Stats.Table.column "DCTCP q (pkts)";
          Stats.Table.column "DT q (pkts)";
          Stats.Table.column "DCTCP drops";
          Stats.Table.column "DT drops";
          Stats.Table.column "DCTCP marked";
          Stats.Table.column "DT marked";
        ]
  in
  List.iter2
    (fun n ((dc : L.result), (dt : L.result)) ->
      Stats.Table.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.1f±%.1f" dc.L.mean_queue_pkts dc.L.std_queue_pkts;
          Printf.sprintf "%.1f±%.1f" dt.L.mean_queue_pkts dt.L.std_queue_pkts;
          string_of_int dc.L.drops;
          string_of_int dt.L.drops;
          Stats.Table.fmt_f 3 dc.L.marked_fraction;
          Stats.Table.fmt_f 3 dt.L.marked_fraction;
        ])
    ns rows;
  Stats.Table.print t;
  Printf.printf
    "Expectation: queues sit higher than the fault-free sweep at every N \
     (half\nthe congestion signal is gone) but both transports remain \
     drop-free longer\nthan plain ECN would suggest; DT-DCTCP's double \
     threshold still damps swings.\n";
  List.concat
    (List.map2
       (fun n ((dc : L.result), (dt : L.result)) ->
         [
           (Printf.sprintf "suppress.n%d.dctcp.std_queue" n, dc.L.std_queue_pkts);
           (Printf.sprintf "suppress.n%d.dt.std_queue" n, dt.L.std_queue_pkts);
         ])
       ns rows)

let run () =
  Bench_common.section_header
    "Robustness: fault injection (loss, flaps, ECN degradation)";
  let metrics, wall_s =
    Obs.Profile.time (fun () ->
        let m_loss = loss_sweep () in
        let m_flap = flap_recovery () in
        let m_sup = suppression_sweep () in
        m_loss @ m_flap @ m_sup)
  in
  Bench_common.write_manifest ~section:"robustness" ~wall_s ~seed:1L
    ~params:
      [ ("scenario", Obs.Json.String "faulted dumbbell, N=40 unless swept") ]
    ~metrics ()
