(* Figures 10, 11, 12: one flow-count sweep of the dumbbell collects the
   normalized mean queue, the queue stddev, and the mean alpha for both
   protocols. *)

module L = Workloads.Longlived

type point = {
  n : int;
  dc : L.result;
  dt : L.result;
}

(* One spec per (N, protocol); the registry emits them as per-N
   (dctcp, dt-dctcp) pairs, so outcome 2i / 2i+1 belong to ns.(i). *)
let sweep () =
  let ns = Exp.Registry.sweep_ns in
  let specs =
    Exp.Registry.fig_sweep_specs ~ns ~warmup:(Bench_common.warmup ())
      ~measure:(Bench_common.measure ()) ()
  in
  let outcomes = Bench_common.run_specs specs in
  List.mapi
    (fun i n ->
      {
        n;
        dc = Bench_common.longlived_of outcomes.(2 * i);
        dt = Bench_common.longlived_of outcomes.((2 * i) + 1);
      })
    ns

let figs_10_11_12 () =
  Bench_common.section_header
    "Figures 10-12: dumbbell sweep N=10..100 (10 Gbps, RTT 100us, g=1/16)";
  let points = sweep () in
  Printf.printf "%40s\n" "";
  let base = List.hd points in
  let t10 =
    Stats.Table.create
      ~title:
        "Figure 10: average queue length, normalized to each protocol's \
         N=10 baseline"
      ~columns:
        [
          Stats.Table.column "N";
          Stats.Table.column "DCTCP (pkts)";
          Stats.Table.column "DCTCP (xN=10)";
          Stats.Table.column "DT (pkts)";
          Stats.Table.column "DT (xN=10)";
        ]
  in
  List.iter
    (fun p ->
      Stats.Table.add_row t10
        [
          string_of_int p.n;
          Stats.Table.fmt_f 1 p.dc.L.mean_queue_pkts;
          Stats.Table.fmt_f 2 (p.dc.L.mean_queue_pkts /. base.dc.L.mean_queue_pkts);
          Stats.Table.fmt_f 1 p.dt.L.mean_queue_pkts;
          Stats.Table.fmt_f 2 (p.dt.L.mean_queue_pkts /. base.dt.L.mean_queue_pkts);
        ])
    points;
  Stats.Table.print t10;
  let ratio_series which =
    Array.of_list
      (List.map
         (fun p ->
           match which with
           | `Dc -> p.dc.L.mean_queue_pkts /. base.dc.L.mean_queue_pkts
           | `Dt -> p.dt.L.mean_queue_pkts /. base.dt.L.mean_queue_pkts)
         points)
  in
  Printf.printf "\nnormalized mean queue vs N (both series):\n%s"
    (Stats.Ascii_plot.render ~height:12
       ~series:[ ("DCTCP", ratio_series `Dc); ("DT-DCTCP", ratio_series `Dt) ]
       ());
  Printf.printf
    "Paper: DCTCP strays from ~N=35 (up to 1.8x baseline, local max near \
     N=60);\nDT-DCTCP stays near 1.0x until ~N=70.\n";
  let t11 =
    Stats.Table.create ~title:"Figure 11: queue standard deviation (packets)"
      ~columns:
        [
          Stats.Table.column "N";
          Stats.Table.column "DCTCP";
          Stats.Table.column "DT-DCTCP";
          Stats.Table.column "DT/DCTCP";
        ]
  in
  List.iter
    (fun p ->
      Stats.Table.add_row t11
        [
          string_of_int p.n;
          Stats.Table.fmt_f 2 p.dc.L.std_queue_pkts;
          Stats.Table.fmt_f 2 p.dt.L.std_queue_pkts;
          Stats.Table.fmt_f 2 (p.dt.L.std_queue_pkts /. p.dc.L.std_queue_pkts);
        ])
    points;
  Stats.Table.print t11;
  let std_series f = Array.of_list (List.map f points) in
  Printf.printf "\nqueue stddev vs N:\n%s"
    (Stats.Ascii_plot.render ~height:12
       ~series:
         [
           ("DCTCP", std_series (fun p -> p.dc.L.std_queue_pkts));
           ("DT-DCTCP", std_series (fun p -> p.dt.L.std_queue_pkts));
         ]
       ());
  Printf.printf
    "Paper: both grow with N; DT-DCTCP below DCTCP at every N.\n";
  let t12 =
    Stats.Table.create ~title:"Figure 12: mean congestion estimate alpha"
      ~columns:
        [
          Stats.Table.column "N";
          Stats.Table.column "alpha DCTCP";
          Stats.Table.column "alpha DT";
          Stats.Table.column "DCTCP - DT";
          Stats.Table.column "util DCTCP";
          Stats.Table.column "util DT";
        ]
  in
  List.iter
    (fun p ->
      Stats.Table.add_row t12
        [
          string_of_int p.n;
          Stats.Table.fmt_f 3 p.dc.L.mean_alpha;
          Stats.Table.fmt_f 3 p.dt.L.mean_alpha;
          Stats.Table.fmt_f 3 (p.dc.L.mean_alpha -. p.dt.L.mean_alpha);
          Stats.Table.fmt_f 3 p.dc.L.utilization;
          Stats.Table.fmt_f 3 p.dt.L.utilization;
        ])
    points;
  Stats.Table.print t12;
  Printf.printf
    "Paper: both alphas grow with N; DT-DCTCP's stays below DCTCP's \
     (by ~0.1)\nwhile throughput stays at line rate.\n"
