(* Bechamel micro-benchmarks of the simulator substrate: these are the
   performance tables (events/second) rather than paper figures. *)

open Bechamel
open Toolkit

let heap_churn () =
  let h = Engine.Heap.create ~cmp:Int.compare () in
  for i = 0 to 255 do
    Engine.Heap.push h ((i * 2_654_435_761) land 0xFFFF)
  done;
  for _ = 0 to 255 do
    ignore (Engine.Heap.pop h)
  done

let sim_event_churn () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 1024 then
      ignore (Engine.Sim.schedule_after sim 100L tick)
  in
  ignore (Engine.Sim.schedule_after sim 100L tick);
  Engine.Sim.run sim

let queue_churn () =
  let sim = Engine.Sim.create () in
  let q = Net.Queue_disc.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  let st = Net.Packet.store_of sim in
  for _ = 0 to 127 do
    ignore
      (Net.Queue_disc.enqueue q
         (Net.Packet.make st ~src:0 ~dst:1 ~flow:0 ~size:1500
            ~ecn:Net.Packet.Ect Net.Packet.No_payload))
  done;
  let rec drain () =
    match Net.Queue_disc.dequeue q with
    | None -> ()
    | Some pkt ->
        Net.Packet.free st pkt;
        drain ()
  in
  drain ()

let small_transfer () =
  let sim = Engine.Sim.create () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:1 ~bottleneck_rate_bps:10e9
      ~rtt:(Engine.Time.span_of_us 100.) ~buffer_bytes:(100 * 1500)
      ~marking:(Dctcp.Marking_policies.single_threshold ~k_bytes:(40 * 1500))
      ()
  in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0
      ~cc:(Dctcp.Dctcp_cc.cc ()) ~limit_segments:100 ()
  in
  Tcp.Flow.start flow;
  Engine.Sim.run ~until:(Engine.Time.of_ms 50.) sim

let tests =
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"heap 256 push+pop" (Staged.stage heap_churn);
      Test.make ~name:"sim 1k chained events" (Staged.stage sim_event_churn);
      Test.make ~name:"queue 128 enq+deq" (Staged.stage queue_churn);
      Test.make ~name:"dctcp 100-segment transfer" (Staged.stage small_transfer);
    ]

(* --- tracing overhead: events/s with the observability layer in each of
   its sink configurations, on a fixed DT-DCTCP dumbbell scenario. The
   null-tracer row is the "<2% regression with sinks disabled" guard. --- *)

let tracing_scenario ?profiler tracer =
  let sim = Engine.Sim.create ~seed:7L () in
  (match profiler with
  | None -> ()
  | Some p -> Obs.Selfprof.attach p sim);
  let d =
    Net.Topology.dumbbell sim ~n_senders:4 ~bottleneck_rate_bps:10e9
      ~rtt:(Engine.Time.span_of_us 100.) ~buffer_bytes:(100 * 1500)
      ~marking:
        (Dctcp.Marking_policies.double_threshold ~k1_bytes:(30 * 1500)
           ~k2_bytes:(50 * 1500) ())
      ~tracer ()
  in
  let flows =
    Array.mapi
      (fun i src ->
        Tcp.Flow.create sim ~src ~dst:d.Net.Topology.receiver ~flow:i
          ~cc:(Dctcp.Dctcp_cc.cc ()) ~tracer ())
      d.Net.Topology.senders
  in
  Array.iter Tcp.Flow.start flows;
  let until =
    Engine.Time.of_ns
      (Bench_common.scale_span (Engine.Time.span_of_ms 200.))
  in
  Obs.Profile.run_sim ~until sim

let tracing_overhead () =
  Bench_common.section_header "Performance: tracing overhead (events/s)";
  let untraced = tracing_scenario Obs.Trace.null in
  let ring_buf = Obs.Trace.ring ~capacity:65536 in
  let ring = tracing_scenario (Obs.Trace.create (Obs.Trace.Ring ring_buf)) in
  let tmp = Filename.temp_file "dtsim_trace" ".csv" in
  let oc = open_out tmp in
  let csv = tracing_scenario (Obs.Trace.create (Obs.Trace.Csv oc)) in
  close_out oc;
  Sys.remove tmp;
  let t =
    Stats.Table.create ~title:"DT-DCTCP dumbbell, 4 flows"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "sink";
          Stats.Table.column "events/s";
          Stats.Table.column "vs null";
        ]
  in
  let row name (r : Obs.Profile.run) =
    Stats.Table.add_row t
      [
        name;
        Printf.sprintf "%.0f" r.Obs.Profile.events_per_s;
        Printf.sprintf "%.2fx"
          (r.Obs.Profile.events_per_s /. untraced.Obs.Profile.events_per_s);
      ]
  in
  (* Self-profiler axis on the same scenario: attached (counts every
     event, wall-times 1 in 32) vs the detached single-branch path. The
     attached row is the "<2% with profiling off, bounded when on"
     guard's measured half; the null row above doubles as its off half
     (no profiler is ever constructed there). *)
  let prof = Obs.Selfprof.create () in
  let profiled = tracing_scenario ~profiler:prof Obs.Trace.null in
  row "null (disabled)" untraced;
  row "ring (64k records)" ring;
  row "csv (tempfile)" csv;
  row "self-profiler (1/32 timed)" profiled;
  Stats.Table.print t;
  Printf.printf "  profiler observed %d events, timed %d\n"
    (Obs.Selfprof.total prof)
    (Obs.Selfprof.sampled_total prof);
  Bench_common.write_manifest ~section:"obs"
    ~wall_s:
      (untraced.Obs.Profile.wall_s +. ring.Obs.Profile.wall_s
     +. csv.Obs.Profile.wall_s +. profiled.Obs.Profile.wall_s)
    ~seed:7L ~events:untraced.Obs.Profile.events
    ~params:
      [
        ("scenario", Obs.Json.String "dt-dctcp dumbbell, 4 flows");
        ("ring_capacity", Obs.Json.Int 65536);
        ("selfprof_sample_every", Obs.Json.Int 32);
      ]
    ~metrics:
      [
        ("events_per_s.null", untraced.Obs.Profile.events_per_s);
        ("events_per_s.ring", ring.Obs.Profile.events_per_s);
        ("events_per_s.csv", csv.Obs.Profile.events_per_s);
        ("events_per_s.selfprof", profiled.Obs.Profile.events_per_s);
        ( "selfprof.events_observed",
          float_of_int (Obs.Selfprof.total prof) );
        ( "selfprof.events_timed",
          float_of_int (Obs.Selfprof.sampled_total prof) );
        ("ring.records_kept", float_of_int (Obs.Trace.ring_length ring_buf));
        ("ring.records_total", float_of_int (Obs.Trace.ring_total ring_buf));
      ]
    ()

(* --- macro events/s: the repo's tracked engine-throughput baseline.
   A DT-DCTCP dumbbell (the paper's operating point) at N ∈ {4, 32, 128}
   long-lived flows, run untraced; the per-N events/s land in
   BENCH_perf.json so every PR can be compared against the last recorded
   baseline on the same machine. --- *)

let macro_ns = [ 4; 32; 128; 512 ]

let macro_scenario ?profiler ~n () =
  let sim = Engine.Sim.create ~seed:11L () in
  (match profiler with
  | None -> ()
  | Some p -> Obs.Selfprof.attach p sim);
  (* The high-fan-in point needs incast handling the tracked N <= 128
     points must not get (so their workloads stay comparable across
     baselines): with the fixed 250-packet buffer, 512 simultaneous
     initial windows overflow the port outright and every flow parks in
     RTO within the quick horizon — ~4k events that benchmark the timer
     wheel, not the packet hot path. Scaling the buffer with fan-in and
     pacing connection starts across one RTT keeps the point a live
     steady-state dumbbell. *)
  let incast = n > 128 in
  let buffer_pkts = if incast then 4 * n else 250 in
  let d =
    Net.Topology.dumbbell sim ~n_senders:n ~bottleneck_rate_bps:10e9
      ~rtt:(Engine.Time.span_of_us 100.) ~buffer_bytes:(buffer_pkts * 1500)
      ~marking:
        (Dctcp.Marking_policies.double_threshold ~k1_bytes:(30 * 1500)
           ~k2_bytes:(50 * 1500) ())
      ()
  in
  let flows =
    Array.mapi
      (fun i src ->
        Tcp.Flow.create sim ~src ~dst:d.Net.Topology.receiver ~flow:i
          ~cc:(Dctcp.Dctcp_cc.cc ()) ())
      d.Net.Topology.senders
  in
  if incast then
    Array.iteri
      (fun i f ->
        Tcp.Flow.start_at f
          (Engine.Time.of_ns (Int64.of_int (i * 100_000 / n))))
      flows
  else Array.iter Tcp.Flow.start flows;
  let until =
    Engine.Time.of_ns (Bench_common.scale_span (Engine.Time.span_of_ms 200.))
  in
  Obs.Profile.run_sim ~until sim

(* Per-event-class cost breakdown on the N=32 operating point: exact
   event counts plus sampled mean wall-clock per class, from the engine
   self-profiler. Shows where an events/s regression lives (timer churn
   vs link transmit vs delivery) rather than just that one exists. *)
let macro_class_breakdown () =
  let prof = Obs.Selfprof.create () in
  let r = macro_scenario ~profiler:prof ~n:32 () in
  let t =
    Stats.Table.create ~title:"per-event-class breakdown (N=32, 1/32 timed)"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "class";
          Stats.Table.column "count";
          Stats.Table.column "share";
          Stats.Table.column "mean us";
        ]
  in
  Array.iter
    (fun cls ->
      let count = Obs.Selfprof.count prof cls in
      if count > 0 then
        Stats.Table.add_row t
          [
            Engine.Event_class.name cls;
            string_of_int count;
            Printf.sprintf "%.1f%%"
              (100. *. float_of_int count
              /. float_of_int (Obs.Selfprof.total prof));
            Printf.sprintf "%.3f" (Obs.Selfprof.mean_us prof cls);
          ])
    Engine.Event_class.all;
  Stats.Table.print t;
  Printf.printf "  profiled %d events, timed %d (profiled run: %.0f events/s)\n"
    (Obs.Selfprof.total prof)
    (Obs.Selfprof.sampled_total prof)
    r.Obs.Profile.events_per_s;
  (* The per-class breakdown rides along as a perf artifact for CI (not
     a manifest: wall-clock means are not deterministic). *)
  let oc = open_out "BENCH_perf_classes.json" in
  output_string oc (Obs.Json.to_string (Obs.Selfprof.to_json prof));
  output_char oc '\n';
  close_out oc;
  print_endline "[artifact BENCH_perf_classes.json]"

let macro_events_per_s () =
  Bench_common.section_header "Performance: macro events/s (DT-DCTCP dumbbell)";
  let runs = List.map (fun n -> (n, macro_scenario ~n ())) macro_ns in
  let t =
    Stats.Table.create ~title:"events/s by flow count"
      ~columns:
        [
          Stats.Table.column "N";
          Stats.Table.column "events";
          Stats.Table.column "events/s";
        ]
  in
  List.iter
    (fun (n, (r : Obs.Profile.run)) ->
      Stats.Table.add_row t
        [
          string_of_int n;
          string_of_int r.Obs.Profile.events;
          Printf.sprintf "%.0f" r.Obs.Profile.events_per_s;
        ])
    runs;
  Stats.Table.print t;
  let wall_s =
    List.fold_left (fun acc (_, r) -> acc +. r.Obs.Profile.wall_s) 0. runs
  in
  let events =
    List.fold_left (fun acc (_, r) -> acc + r.Obs.Profile.events) 0 runs
  in
  Bench_common.write_manifest ~section:"perf" ~wall_s ~seed:11L ~events
    ~params:
      [
        ("scenario", Obs.Json.String "dt-dctcp dumbbell, long-lived flows");
        ( "flow_counts",
          Obs.Json.List (List.map (fun n -> Obs.Json.Int n) macro_ns) );
      ]
    ~metrics:
      (List.concat_map
         (fun (n, (r : Obs.Profile.run)) ->
           [
             (Printf.sprintf "events_per_s.n%d" n, r.Obs.Profile.events_per_s);
             ( Printf.sprintf "events.n%d" n,
               float_of_int r.Obs.Profile.events );
           ])
         runs)
    ()

let run () =
  macro_events_per_s ();
  macro_class_breakdown ();
  tracing_overhead ();
  Bench_common.section_header "Performance: simulator micro-benchmarks";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if !Bench_common.quick then 0.25 else 1.0))
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t =
    Stats.Table.create ~title:"time per call (OLS fit on monotonic clock)"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "benchmark";
          Stats.Table.column "ns/call";
        ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.0f" x
        | Some [] | None -> "n/a"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Stats.Table.add_row t [ name; est ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows);
  Stats.Table.print t
