(* Bechamel micro-benchmarks of the simulator substrate: these are the
   performance tables (events/second) rather than paper figures. *)

open Bechamel
open Toolkit

let heap_churn () =
  let h = Engine.Heap.create ~cmp:Int.compare () in
  for i = 0 to 255 do
    Engine.Heap.push h ((i * 2_654_435_761) land 0xFFFF)
  done;
  for _ = 0 to 255 do
    ignore (Engine.Heap.pop h)
  done

let sim_event_churn () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 1024 then
      ignore (Engine.Sim.schedule_after sim 100L tick)
  in
  ignore (Engine.Sim.schedule_after sim 100L tick);
  Engine.Sim.run sim

let queue_churn () =
  let sim = Engine.Sim.create () in
  let q = Net.Queue_disc.create sim ~capacity_bytes:1_000_000 () in
  for _ = 0 to 127 do
    ignore
      (Net.Queue_disc.enqueue q
         (Net.Packet.make ~src:0 ~dst:1 ~flow:0 ~size:1500 ~ecn:Net.Packet.Ect
            Net.Packet.No_payload))
  done;
  while Net.Queue_disc.dequeue q <> None do
    ()
  done

let small_transfer () =
  let sim = Engine.Sim.create () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:1 ~bottleneck_rate_bps:10e9
      ~rtt:(Engine.Time.span_of_us 100.) ~buffer_bytes:(100 * 1500)
      ~marking:(Dctcp.Marking_policies.single_threshold ~k_bytes:(40 * 1500))
      ()
  in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0
      ~cc:(Dctcp.Dctcp_cc.cc ()) ~limit_segments:100 ()
  in
  Tcp.Flow.start flow;
  Engine.Sim.run ~until:(Engine.Time.of_ms 50.) sim

let tests =
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"heap 256 push+pop" (Staged.stage heap_churn);
      Test.make ~name:"sim 1k chained events" (Staged.stage sim_event_churn);
      Test.make ~name:"queue 128 enq+deq" (Staged.stage queue_churn);
      Test.make ~name:"dctcp 100-segment transfer" (Staged.stage small_transfer);
    ]

let run () =
  Bench_common.section_header "Performance: simulator micro-benchmarks";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if !Bench_common.quick then 0.25 else 1.0))
      ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let t =
    Stats.Table.create ~title:"time per call (OLS fit on monotonic clock)"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "benchmark";
          Stats.Table.column "ns/call";
        ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%.0f" x
        | Some [] | None -> "n/a"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Stats.Table.add_row t [ name; est ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows);
  Stats.Table.print t
