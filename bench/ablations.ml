(* Ablation benches for the design choices DESIGN.md calls out: threshold
   placement, the EWMA gain g, the marking-policy family, and the fluid
   model as a cross-check of the packet simulator.

   Simulation-driven ablations run their Exp.Registry spec lists through
   Bench_common.run_specs; the fluid/describing-function halves are
   closed-form and stay outside the experiment layer. *)

module L = Workloads.Longlived
module Fm = Fluid.Dctcp_fluid

let queue_row t (o : Exp.Runner.outcome) =
  let r = Bench_common.longlived_of o in
  Stats.Table.add_row t
    [
      o.Exp.Runner.spec.Exp.Spec.name;
      Stats.Table.fmt_f 1 r.L.mean_queue_pkts;
      Stats.Table.fmt_f 2 r.L.std_queue_pkts;
      Stats.Table.fmt_f 3 r.L.mean_alpha;
      Stats.Table.fmt_f 3 r.L.utilization;
    ]

let ablation_thresholds () =
  Bench_common.section_header
    "Ablation A: DT-DCTCP threshold placement at N=60 (K=40 equivalent)";
  let outcomes =
    Bench_common.run_specs
      (Exp.Registry.threshold_ablation_specs ~warmup:(Bench_common.warmup ())
         ~measure:(Bench_common.measure ()) ())
  in
  let t =
    Stats.Table.create ~title:"queue statistics vs (K1, K2), packets"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "policy";
          Stats.Table.column "mean q";
          Stats.Table.column "std q";
          Stats.Table.column "alpha";
          Stats.Table.column "util";
        ]
  in
  Array.iter (queue_row t) outcomes;
  Stats.Table.print t;
  Printf.printf
    "\nWider splits start marking earlier (lower mean queue) and stop\n\
     earlier on descents; too wide a split costs utilization headroom.\n"

let ablation_g () =
  Bench_common.section_header "Ablation B: EWMA gain g at N=60";
  (* Registry order: per gain (1/4, 1/16, 1/64), a (dctcp, dt) pair. *)
  let outcomes =
    Bench_common.run_specs
      (Exp.Registry.g_ablation_specs ~warmup:(Bench_common.warmup ())
         ~measure:(Bench_common.measure ()) ())
  in
  let t =
    Stats.Table.create ~title:"queue statistics vs g"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "g";
          Stats.Table.column "DCTCP mean q";
          Stats.Table.column "DCTCP std q";
          Stats.Table.column "DT mean q";
          Stats.Table.column "DT std q";
        ]
  in
  List.iteri
    (fun i label ->
      let rdc = Bench_common.longlived_of outcomes.(2 * i) in
      let rdt = Bench_common.longlived_of outcomes.((2 * i) + 1) in
      Stats.Table.add_row t
        [
          label;
          Stats.Table.fmt_f 1 rdc.L.mean_queue_pkts;
          Stats.Table.fmt_f 2 rdc.L.std_queue_pkts;
          Stats.Table.fmt_f 1 rdt.L.mean_queue_pkts;
          Stats.Table.fmt_f 2 rdt.L.std_queue_pkts;
        ])
    [ "1/4"; "1/16"; "1/64" ];
  Stats.Table.print t;
  Printf.printf
    "\nThe paper fixes g=1/16; the DT advantage in stddev persists across\n\
     gains (slower gains smooth alpha but react later).\n"

let ablation_policies () =
  Bench_common.section_header
    "Ablation C: marking-policy family at N=60 (same sender where applicable)";
  let outcomes =
    Bench_common.run_specs
      (Exp.Registry.policy_ablation_specs ~warmup:(Bench_common.warmup ())
         ~measure:(Bench_common.measure ()) ())
  in
  let t =
    Stats.Table.create ~title:"protocol family comparison"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "protocol";
          Stats.Table.column "mean q";
          Stats.Table.column "std q";
          Stats.Table.column "util";
          Stats.Table.column "drops";
        ]
  in
  Array.iter
    (fun (o : Exp.Runner.outcome) ->
      let r = Bench_common.longlived_of o in
      Stats.Table.add_row t
        [
          o.Exp.Runner.spec.Exp.Spec.name;
          Stats.Table.fmt_f 1 r.L.mean_queue_pkts;
          Stats.Table.fmt_f 2 r.L.std_queue_pkts;
          Stats.Table.fmt_f 3 r.L.utilization;
          string_of_int r.L.drops;
        ])
    outcomes;
  Stats.Table.print t;
  Printf.printf
    "\nThe paper's background claim: plain ECN (on/off halving) wastes the\n\
     queue headroom and Reno fills the buffer; DCTCP holds the queue near K\n\
     and DT-DCTCP holds it with less variance.\n"

let df_vs_fluid () =
  Bench_common.section_header
    "Validation: DF-predicted limit cycle vs integrated fluid model \
     (long-RTT configuration, R0=1ms, fixed-RTT fluid as in the analysis)";
  let c = 10e9 /. 12000. and r0 = 1e-3 and g = 1. /. 16. in
  let grids =
    { Control.Stability.default_grids with
      Control.Stability.w_points = 1200; x_points = 600 }
  in
  let t =
    Stats.Table.create
      ~title:"amplitude X (pkts) and frequency w (rad/s): prediction vs fluid"
      ~columns:
        [
          Stats.Table.column ~align:Stats.Table.Left "protocol";
          Stats.Table.column "N";
          Stats.Table.column "DF X";
          Stats.Table.column "fluid X";
          Stats.Table.column "DF w";
          Stats.Table.column "fluid w";
        ]
  in
  let fluid_cycle marking n =
    let p =
      Fm.make ~variable_rtt:false ~n ~c ~r0 ~g ~marking
        ~init_w:(r0 *. c /. float_of_int n)
        ~init_alpha:0.3 ~init_q:20. ()
    in
    let traj = Fm.simulate p ~t_end:1.0 () in
    Fluid.Limit_cycle.of_queue traj ~discard:0.5
  in
  List.iter
    (fun n ->
      let params = Control.Plant.params ~c ~n ~r0 ~g in
      let add name verdict cycle =
        let df_x, df_w =
          match verdict with
          | Control.Stability.Oscillatory o ->
              ( Stats.Table.fmt_f 1 o.Control.Stability.amplitude,
                Stats.Table.fmt_f 0 o.Control.Stability.omega )
          | Control.Stability.Stable -> ("stable", "-")
        in
        let fl_x, fl_w =
          match cycle with
          | Some (lc : Fluid.Limit_cycle.t) ->
              ( Stats.Table.fmt_f 1 lc.Fluid.Limit_cycle.amplitude,
                Stats.Table.fmt_f 0 lc.Fluid.Limit_cycle.omega )
          | None -> ("none", "-")
        in
        Stats.Table.add_row t [ name; string_of_int n; df_x; fl_x; df_w; fl_w ]
      in
      add "DCTCP"
        (Control.Stability.dctcp ~grids params ~k:40.)
        (fluid_cycle (Fm.Single 40.) n);
      add "DT-DCTCP"
        (Control.Stability.dt_dctcp ~grids params ~k1:30. ~k2:50.)
        (fluid_cycle (Fm.Double (30., 50.)) n))
    [ 60; 100; 150 ];
  Stats.Table.print t;
  Printf.printf
    "\nThe DF is a first-harmonic approximation of a saw-like waveform, so\n\
     factor-<2 agreement is the expected accuracy; the ordering it predicts\n\
     (DT-DCTCP oscillates with smaller amplitude and higher frequency than\n\
     DCTCP at every N) holds exactly in the integrated model.\n"

let ablation_testbed_labels () =
  Bench_common.section_header
    "Ablation E: the two readings of the testbed's (K1=34KB, K2=28KB)";
  let repeats = Bench_common.scale_int 10 in
  let flow_counts = [ 28; 30; 32; 34; 36; 38; 40 ] in
  (* Registry order: per flow count, (dctcp-32KB, start28-stop34,
     thermostat34-28). *)
  let outcomes =
    Bench_common.run_specs
      (Exp.Registry.testbed_label_specs ~flow_counts ~repeats ())
  in
  let t =
    Stats.Table.create
      ~title:"Incast goodput (Mbps) under both label readings"
      ~columns:
        [
          Stats.Table.column "flows";
          Stats.Table.column "DCTCP 32KB";
          Stats.Table.column "start28/stop34";
          Stats.Table.column "thermostat 34/28";
        ]
  in
  List.iteri
    (fun i n ->
      let cell j =
        let r = Bench_common.incast_of outcomes.((3 * i) + j) in
        Stats.Table.fmt_f 1
          (Bench_common.mbps r.Workloads.Incast.mean_goodput_bps)
      in
      Stats.Table.add_row t [ string_of_int n; cell 0; cell 1; cell 2 ])
    flow_counts;
  Stats.Table.print t;
  Printf.printf
    "\nRead literally (thermostat: start 34KB, stop 28KB) the DT thresholds\n\
     collapse no later than DCTCP; read as (start=lower, stop=higher) they\n\
     postpone the collapse as the paper's Figure 14 reports — the basis for\n\
     the label-swap conclusion in DESIGN.md.\n"

let fluid_vs_sim () =
  Bench_common.section_header
    "Ablation D: fluid model (Eqs. 1-3) vs packet simulation";
  let c = 10e9 /. 12000. in
  let ns = [ 10; 30; 60; 100 ] in
  let specs =
    List.concat_map
      (fun n ->
        let config =
          Exp.Registry.longlived_config ~warmup:(Bench_common.warmup ())
            ~measure:(Bench_common.measure ()) ~n ()
        in
        List.map
          (fun proto ->
            {
              Exp.Spec.name =
                Printf.sprintf "fluid_vs_sim/%s/n=%d"
                  (Exp.Spec.protocol_name proto) n;
              protocol = proto;
              workload = Exp.Spec.Longlived config;
              faults = None;
              buffer = Net.Buffer_mgr.Static;
            })
          [ Exp.Registry.sim_dctcp; Exp.Registry.sim_dt ])
      ns
  in
  let outcomes = Bench_common.run_specs specs in
  let t =
    Stats.Table.create ~title:"mean queue (packets), fluid vs packet-level"
      ~columns:
        [
          Stats.Table.column "N";
          Stats.Table.column "fluid DCTCP";
          Stats.Table.column "sim DCTCP";
          Stats.Table.column "fluid DT";
          Stats.Table.column "sim DT";
        ]
  in
  List.iteri
    (fun i n ->
      let fluid marking =
        let p = Fm.make ~n ~c ~r0:1e-4 ~g:(1. /. 16.) ~marking () in
        let traj = Fm.simulate p ~t_end:0.15 () in
        fst (Fm.queue_stats traj ~discard:0.05)
      in
      let sim_dc = Bench_common.longlived_of outcomes.(2 * i) in
      let sim_dt = Bench_common.longlived_of outcomes.((2 * i) + 1) in
      Stats.Table.add_row t
        [
          string_of_int n;
          Stats.Table.fmt_f 1 (fluid (Fm.Single 40.));
          Stats.Table.fmt_f 1 sim_dc.L.mean_queue_pkts;
          Stats.Table.fmt_f 1 (fluid (Fm.Double (30., 50.)));
          Stats.Table.fmt_f 1 sim_dt.L.mean_queue_pkts;
        ])
    ns;
  Stats.Table.print t;
  Printf.printf
    "\nThe deterministic fluid model sits near the thresholds by\n\
     construction; the packet simulator adds ACK-clocking burstiness and\n\
     window quantization, which lift the mean at large N (the oscillation\n\
     the paper studies).\n"
