module Sim = Engine.Sim

type echo_policy = Per_packet | Dctcp_delayed of int

type t = {
  sim : Sim.t;
  st : Net.Packet.store;
  host : Net.Host.t;
  flow : int;
  peer : int;
  echo : echo_policy;
  sack : bool;
  ack_bytes : int;
  mutable rcv_nxt : int;
  ooo : (int, unit) Hashtbl.t;
  mutable received : int;
  mutable ce_segments : int;
  mutable acks_sent : int;
  (* DCTCP delayed-ACK echo state *)
  mutable ce_state : bool;
  mutable pending : int;
}

(* Up to three maximal runs of buffered out-of-order segments, ascending. *)
let sack_blocks t =
  if (not t.sack) || Hashtbl.length t.ooo = 0 then []
  else begin
    let seqs =
      Hashtbl.fold (fun seq () acc -> seq :: acc) t.ooo []
      |> List.sort Int.compare
    in
    let rec runs acc cur = function
      | [] -> List.rev (Option.to_list cur @ acc)
      | seq :: rest -> (
          match cur with
          | Some (first, next) when seq = next -> runs acc (Some (first, seq + 1)) rest
          | Some block -> runs (block :: acc) (Some (seq, seq + 1)) rest
          | None -> runs acc (Some (seq, seq + 1)) rest)
    in
    let blocks = runs [] None seqs in
    List.filteri (fun i _ -> i < 3) blocks
  end

let send_ack t ~ece =
  let pkt =
    Net.Packet.make t.st ~src:(Net.Host.id t.host) ~dst:t.peer ~flow:t.flow
      ~size:t.ack_bytes ~ecn:Net.Packet.Not_ect
      (Segment.ack ~ack:t.rcv_nxt ~ece ~sack:(sack_blocks t) ())
  in
  t.acks_sent <- t.acks_sent + 1;
  Net.Host.send t.host pkt

let flush_pending t =
  if t.pending > 0 then begin
    send_ack t ~ece:t.ce_state;
    t.pending <- 0
  end

let handle_data t ~seq ~ce =
  t.received <- t.received + 1;
  if ce then t.ce_segments <- t.ce_segments + 1;
  let in_order = seq = t.rcv_nxt in
  let stale = seq < t.rcv_nxt || (seq > t.rcv_nxt && Hashtbl.mem t.ooo seq) in
  if in_order then begin
    t.rcv_nxt <- t.rcv_nxt + 1;
    while Hashtbl.mem t.ooo t.rcv_nxt do
      Hashtbl.remove t.ooo t.rcv_nxt;
      t.rcv_nxt <- t.rcv_nxt + 1
    done
  end
  else if seq > t.rcv_nxt then Hashtbl.replace t.ooo seq ();
  if stale then
    (* Already-delivered data (a go-back-N resend): acknowledging it again
       would read as a duplicate ACK at the sender and trigger spurious
       fast retransmits; without SACK the sender cannot tell the
       difference, so stay silent and let the RTO cover the (simulated)
       impossibility of a lost ACK. *)
    ()
  else
  match t.echo with
  | Per_packet -> send_ack t ~ece:ce
  | Dctcp_delayed m ->
      if not in_order then begin
        (* Duplicate ACK needed immediately for fast retransmit; flush any
           coalesced state first so ACK ordering stays monotone. *)
        flush_pending t;
        send_ack t ~ece:ce
      end
      else if ce <> t.ce_state then begin
        flush_pending t;
        t.ce_state <- ce;
        t.pending <- 1;
        if t.pending >= m then flush_pending t
      end
      else begin
        t.pending <- t.pending + 1;
        if t.pending >= m then flush_pending t
      end

let create sim ~host ~flow ~peer ?(echo = Per_packet) ?(sack = false)
    ?(ack_bytes = 40) () =
  (match echo with
  | Dctcp_delayed m when m <= 0 ->
      invalid_arg "Receiver.create: delayed-ACK factor must be positive"
  | Dctcp_delayed _ | Per_packet -> ());
  let t =
    {
      sim;
      st = Net.Packet.store_of sim;
      host;
      flow;
      peer;
      echo;
      sack;
      ack_bytes;
      rcv_nxt = 0;
      ooo = Hashtbl.create 64;
      received = 0;
      ce_segments = 0;
      acks_sent = 0;
      ce_state = false;
      pending = 0;
    }
  in
  Net.Host.bind_flow host ~flow (fun pkt ->
      let payload = Net.Packet.payload t.st pkt in
      let ce = Net.Packet.is_ce t.st pkt in
      (* Terminal consumer: extract fields, recycle, then process. *)
      Net.Packet.free t.st pkt;
      match payload with
      | Segment.Data { seq } -> handle_data t ~seq ~ce
      | _ -> ());
  t

let segments_delivered t = t.rcv_nxt
let segments_received t = t.received
let ce_segments t = t.ce_segments
let acks_sent t = t.acks_sent
let close t = Net.Host.unbind_flow t.host ~flow:t.flow
