(** TCP sender: window-based transmission with NewReno-style loss recovery.

    The sender transmits fixed-size segments under a congestion window
    (counted in segments, floored at 1). Loss recovery is go-back-N by
    default, both on triple-dupack fast retransmit and on retransmission
    timeout (RFC 6298 timer with Karn's rule on RTT samples): without
    SACK, resending the whole window from the hole is the classic ARQ
    simplification; it wastes some retransmissions but leaves the
    congestion-window trajectory — what the experiments in this
    repository measure — identical. Enabling [config.sack] (with a
    SACK-enabled receiver) switches fast-retransmit recovery to selective
    hole repair. Window adjustment is delegated to a pluggable
    {!Cc.factory}. *)

type config = {
  segment_bytes : int;  (** Wire size of a data segment (default 1500). *)
  ack_bytes : int;  (** Wire size of an ACK (default 40). *)
  initial_cwnd : float;  (** Segments (default 2). *)
  initial_ssthresh : float;  (** Default: effectively unbounded. *)
  dupack_threshold : int;  (** Default 3. *)
  min_rto : Engine.Time.span;  (** Default 200 ms, as in the paper-era Linux. *)
  max_rto : Engine.Time.span;  (** Default 60 s. *)
  initial_rto : Engine.Time.span;  (** Default 1 s before any RTT sample. *)
  max_cwnd : float;  (** Cap in segments (default 1e9). *)
  ecn_capable : bool;  (** Send data as ECT (default true). *)
  sack : bool;
      (** Selective-acknowledgment recovery (default off): instead of
          go-back-N on fast retransmit, keep a scoreboard from the
          receiver's SACK blocks and retransmit only the holes, one per
          arriving ACK. The receiver must be created with [~sack:true]
          too. RTO recovery remains go-back-N. *)
}

val default_config : config

type t

val create :
  Engine.Sim.t ->
  host:Net.Host.t ->
  peer:int ->
  flow:int ->
  cc:Cc.factory ->
  ?tracer:Obs.Trace.t ->
  ?config:config ->
  ?limit_segments:int ->
  ?on_complete:(unit -> unit) ->
  unit ->
  t
(** Binds the flow's ACK handler on [host]. Without [limit_segments] the
    flow is long-lived (infinite backlog); with it, [on_complete] fires
    when the last segment is cumulatively acknowledged. Transmission starts
    only on {!start}. [tracer] (default {!Obs.Trace.null}) receives
    [Flow_start] / [Flow_done] / [Fast_retransmit] / [Rto] events with
    component ["flow<i>"], and is exposed to the congestion-control
    algorithm through {!Cc.flow_api}. *)

val start : t -> unit
(** Begins transmitting at the current simulation instant. *)

(** {2 Introspection} *)

val cwnd : t -> float
val ssthresh : t -> float
val snd_una : t -> int
val snd_nxt : t -> int
val alpha : t -> float option
(** The congestion-control algorithm's congestion estimate, if any. *)

val in_recovery : t -> bool
val completed : t -> bool
val completion_time : t -> Engine.Time.t option
val retransmissions : t -> int
val timeouts : t -> int
val fast_retransmits : t -> int
val acks_received : t -> int
val ece_acks : t -> int
val srtt : t -> Engine.Time.span option

val close : t -> unit
(** Stops the timer and unbinds from the host. *)
