(** A TCP flow: sender and receiver wired across the network.

    Convenience layer that allocates the two endpoints, binds them to their
    hosts under a shared flow id, and exposes the statistics experiments
    need. *)

type t

val create :
  Engine.Sim.t ->
  src:Net.Host.t ->
  dst:Net.Host.t ->
  flow:int ->
  cc:Cc.factory ->
  ?tracer:Obs.Trace.t ->
  ?config:Sender.config ->
  ?echo:Receiver.echo_policy ->
  ?limit_segments:int ->
  ?on_complete:(t -> unit) ->
  unit ->
  t
(** The flow does not transmit until {!start} (or {!start_at}). [tracer]
    is forwarded to {!Sender.create}. *)

val start : t -> unit

val start_at : t -> Engine.Time.t -> unit
(** Schedules {!start} at an absolute instant. *)

val flow_id : t -> int
val sender : t -> Sender.t
val receiver : t -> Receiver.t

val cwnd : t -> float
val alpha : t -> float option
val completed : t -> bool

val completion_time : t -> Engine.Time.t option
(** Time at which the last segment was cumulatively acknowledged. *)

val segments_delivered : t -> int
(** In-order segments at the receiver. *)

val goodput_bps : t -> since:Engine.Time.t -> until:Engine.Time.t -> float
(** Application goodput over a window: in-order delivered bytes divided by
    the window (segment wire size is used, as the paper's figures do). *)

val close : t -> unit
