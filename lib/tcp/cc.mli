(** Pluggable congestion control.

    A congestion-control algorithm is a per-flow stateful value built from a
    {!factory}. The sender gives the factory a {!flow_api} through which the
    algorithm reads and writes [cwnd]/[ssthresh] (the sender clamps [cwnd]
    to at least one segment), then notifies it of protocol events:

    - {!t.on_ack} for {e every} ACK (new or duplicate) with the echoed ECE
      bit — DCTCP's alpha estimator needs the per-ACK stream;
    - {!t.on_fast_retransmit} when a triple-dupack retransmission fires;
    - {!t.on_timeout} when the RTO fires.

    Baselines [reno] and [ecn_reno] live here; the DCTCP algorithm is in
    [lib/dctcp] (the layer under study). *)

type flow_api = {
  now : unit -> Engine.Time.t;
  flow : int;  (** Flow id, for trace records. *)
  tracer : Obs.Trace.t;
      (** The sender's tracer ({!Obs.Trace.null} when untraced), so
          algorithms can emit events such as [Cwnd_cut]. *)
  get_cwnd : unit -> float;  (** In segments. *)
  set_cwnd : float -> unit;  (** Clamped to >= 1 segment by the sender. *)
  get_ssthresh : unit -> float;
  set_ssthresh : float -> unit;
}

type t = {
  name : string;
  on_ack : newly_acked:int -> ece:bool -> snd_una:int -> snd_nxt:int -> unit;
      (** [newly_acked] is 0 for duplicate ACKs. [snd_una] is the value
          after the ACK was applied; sequence numbers let window-grained
          algorithms delimit RTT epochs. *)
  on_fast_retransmit : unit -> unit;
  on_timeout : unit -> unit;
  alpha : unit -> float option;
      (** DCTCP-style congestion-extent estimate, if the algorithm keeps
          one (for instrumentation; [None] for Reno). *)
}

type factory = flow_api -> t

val reno : factory
(** NewReno-style growth: slow start below [ssthresh], +1/cwnd per ACK
    above; halve on fast retransmit; collapse to 1 on timeout. Ignores
    ECE. *)

val ecn_reno : factory
(** {!reno} plus classic ECN (RFC 3168) reaction: on an ECE ACK, halve the
    window, at most once per window of data. *)

val ai_md : increase:float -> decrease:float -> factory
(** Generic AIMD with additive increase [increase] segments per RTT and
    multiplicative [decrease] on any congestion event; used by ablation
    benches. *)
