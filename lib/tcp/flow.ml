module Sim = Engine.Sim
module Time = Engine.Time

type t = {
  sim : Sim.t;
  id : int;
  sender : Sender.t;
  receiver : Receiver.t;
  segment_bytes : int;
}

let create sim ~src ~dst ~flow ~cc ?tracer ?(config = Sender.default_config)
    ?echo ?limit_segments ?on_complete () =
  let receiver =
    Receiver.create sim ~host:dst ~flow ~peer:(Net.Host.id src) ?echo
      ~sack:config.Sender.sack ~ack_bytes:config.Sender.ack_bytes ()
  in
  let rec t =
    lazy
      (let on_complete () =
         match on_complete with
         | Some f -> f (Lazy.force t)
         | None -> ()
       in
       let sender =
         Sender.create sim ~host:src ~peer:(Net.Host.id dst) ~flow ~cc
           ?tracer ~config ?limit_segments ~on_complete ()
       in
       {
         sim;
         id = flow;
         sender;
         receiver;
         segment_bytes = config.Sender.segment_bytes;
       })
  in
  Lazy.force t

let start t = Sender.start t.sender

let cls_protocol = Engine.Event_class.(index Protocol)

let start_at t at =
  ignore
    (Sim.schedule_at_cls t.sim at ~cls:cls_protocol (fun () ->
         Sender.start t.sender))

let flow_id t = t.id
let sender t = t.sender
let receiver t = t.receiver
let cwnd t = Sender.cwnd t.sender
let alpha t = Sender.alpha t.sender
let completed t = Sender.completed t.sender
let completion_time t = Sender.completion_time t.sender
let segments_delivered t = Receiver.segments_delivered t.receiver

let goodput_bps t ~since ~until =
  let dt = Time.span_to_sec (Time.diff until since) in
  if dt <= 0. then 0.
  else
    float_of_int (segments_delivered t * t.segment_bytes * 8) /. dt

let close t =
  Sender.close t.sender;
  Receiver.close t.receiver
