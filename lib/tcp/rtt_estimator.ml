(* srtt (slot 0, seconds) and rttvar (slot 1) live in a flat float array:
   as mutable float fields of this mixed record every RTT sample — one per
   timed segment — would box both stores. *)
type t = {
  min_rto : Engine.Time.span;
  max_rto : Engine.Time.span;
  est : float array;
  mutable rto : Engine.Time.span;
  mutable samples : int;
}

let clamp t rto_s =
  let ns = Engine.Time.span_of_sec rto_s in
  if Int64.compare ns t.min_rto < 0 then t.min_rto
  else if Int64.compare ns t.max_rto > 0 then t.max_rto
  else ns

let create ~min_rto ~max_rto ~initial_rto () =
  if Int64.compare min_rto max_rto > 0 then
    invalid_arg "Rtt_estimator.create: min_rto > max_rto";
  { min_rto; max_rto; est = [| 0.; 0. |]; rto = initial_rto; samples = 0 }

let sample t span =
  let r = Engine.Time.span_to_sec span in
  if t.samples = 0 then begin
    t.est.(0) <- r;
    t.est.(1) <- r /. 2.
  end
  else begin
    t.est.(1) <- (0.75 *. t.est.(1)) +. (0.25 *. Float.abs (t.est.(0) -. r));
    t.est.(0) <- (0.875 *. t.est.(0)) +. (0.125 *. r)
  end;
  t.samples <- t.samples + 1;
  t.rto <- clamp t (t.est.(0) +. Stdlib.max (4. *. t.est.(1)) 1e-6)

let rto t = t.rto

let backoff t =
  let doubled = Int64.mul t.rto 2L in
  t.rto <-
    (if Int64.compare doubled t.max_rto > 0 then t.max_rto else doubled)

let srtt t =
  if t.samples = 0 then None else Some (Engine.Time.span_of_sec t.est.(0))
let samples t = t.samples
