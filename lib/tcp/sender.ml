module Sim = Engine.Sim
module Time = Engine.Time
module Timer = Engine.Timer

type config = {
  segment_bytes : int;
  ack_bytes : int;
  initial_cwnd : float;
  initial_ssthresh : float;
  dupack_threshold : int;
  min_rto : Time.span;
  max_rto : Time.span;
  initial_rto : Time.span;
  max_cwnd : float;
  ecn_capable : bool;
  sack : bool;
}

let default_config =
  {
    segment_bytes = 1500;
    ack_bytes = 40;
    initial_cwnd = 2.;
    initial_ssthresh = 1e9;
    dupack_threshold = 3;
    min_rto = Time.span_of_ms 200.;
    max_rto = Time.span_of_sec 60.;
    initial_rto = Time.span_of_sec 1.;
    max_cwnd = 1e9;
    ecn_capable = true;
    sack = false;
  }

type t = {
  sim : Sim.t;
  st : Net.Packet.store;
  host : Net.Host.t;
  peer : int;
  flow : int;
  tracer : Obs.Trace.t;
  config : config;
  mutable cc : Cc.t;
  (* cwnd (slot 0) and ssthresh (slot 1) live in a flat float array: as
     mutable float fields of this mixed record every window update would
     box, and the ACK path updates cwnd constantly. *)
  w : float array;
  mutable snd_una : int;
  mutable snd_nxt : int;
  limit : int option;
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  rtt : Rtt_estimator.t;
  mutable rto_timer : Timer.t option;
  (* One in-flight RTT sample, flattened from [(int * Time.t) option] so
     (re)starting a sample does not allocate; [sample_seq < 0] = none. *)
  mutable sample_seq : int;
  mutable sample_sent : Time.t;
  scoreboard : (int, unit) Hashtbl.t;
  rtx_done : (int, unit) Hashtbl.t;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable acks_received : int;
  mutable ece_acks : int;
  mutable completed_at : Time.t option;
  on_complete : unit -> unit;
  mutable started : bool;
}

let dummy_cc =
  {
    Cc.name = "uninitialised";
    on_ack = (fun ~newly_acked:_ ~ece:_ ~snd_una:_ ~snd_nxt:_ -> ());
    on_fast_retransmit = (fun () -> ());
    on_timeout = (fun () -> ());
    alpha = (fun () -> None);
  }

let clamp_cwnd t c = Float.min (Float.max c 1.) t.config.max_cwnd

let emit t event =
  Obs.Trace.emit t.tracer
    {
      Obs.Trace.time = Sim.now t.sim;
      component = Printf.sprintf "flow%d" t.flow;
      event;
    }

let effective_window t = Stdlib.max 1 (int_of_float t.w.(0))

let outstanding t = t.snd_nxt - t.snd_una

let completed t = match t.completed_at with None -> false | Some _ -> true

let rto_timer t =
  match t.rto_timer with
  | Some timer -> timer
  | None -> invalid_arg "Sender: timer not initialised"

let arm_rto t = Timer.set (rto_timer t) ~after:(Rtt_estimator.rto t.rtt)

let send_segment t ~seq ~retransmission =
  let ecn =
    if t.config.ecn_capable then Net.Packet.Ect else Net.Packet.Not_ect
  in
  let pkt =
    Net.Packet.make t.st ~src:(Net.Host.id t.host) ~dst:t.peer ~flow:t.flow
      ~size:t.config.segment_bytes ~ecn (Segment.data ~seq)
  in
  if retransmission then begin
    t.retransmissions <- t.retransmissions + 1;
    (* Karn's rule: a retransmission at or below the sampled sequence
       invalidates the sample. *)
    if t.sample_seq >= 0 && seq <= t.sample_seq then t.sample_seq <- -1
  end
  else if t.sample_seq < 0 && seq >= t.recover then begin
    (* Sequences below [recover] may be go-back-N resends of data already
       transmitted once; Karn's rule forbids timing those. *)
    t.sample_seq <- seq;
    t.sample_sent <- Sim.now t.sim
  end;
  Net.Host.send t.host pkt;
  if not (Timer.is_pending (rto_timer t)) then arm_rto t

let pump t =
  if t.started && not (completed t) then begin
    let window_limit = t.snd_una + effective_window t in
    let data_limit =
      match t.limit with Some n -> n | None -> max_int
    in
    while t.snd_nxt < window_limit && t.snd_nxt < data_limit do
      send_segment t ~seq:t.snd_nxt ~retransmission:false;
      t.snd_nxt <- t.snd_nxt + 1
    done
  end

let check_complete t =
  match t.limit with
  | Some n when t.snd_una >= n && not (completed t) ->
      t.completed_at <- Some (Sim.now t.sim);
      Timer.cancel (rto_timer t);
      if Obs.Trace.enabled t.tracer Obs.Trace.C_flow_done then
        emit t (Obs.Trace.Flow_done { flow = t.flow; segments = n });
      t.on_complete ();
      true
  | Some _ | None -> false

let record_sack t blocks =
  if t.config.sack then
    List.iter
      (fun (first, last) ->
        for seq = first to last - 1 do
          if seq >= t.snd_una then Hashtbl.replace t.scoreboard seq ()
        done)
      blocks

let prune_scoreboard t =
  (* Runs on every new ACK; without SACK the scoreboard is always empty,
     so check before doing any work (a [Hashtbl.copy] here measurably
     dominated non-SACK ACK processing). *)
  if Hashtbl.length t.scoreboard > 0 then begin
    let stale =
      Hashtbl.fold
        (fun seq () acc -> if seq < t.snd_una then seq :: acc else acc)
        t.scoreboard []
    in
    List.iter (Hashtbl.remove t.scoreboard) stale
  end

(* Lowest hole in [snd_una, recover) that is neither SACKed nor already
   retransmitted in this recovery episode. *)
let next_hole t =
  let rec scan seq =
    if seq >= t.recover then None
    else if Hashtbl.mem t.scoreboard seq || Hashtbl.mem t.rtx_done seq then
      scan (seq + 1)
    else Some seq
  in
  scan t.snd_una

let retransmit_hole t =
  match next_hole t with
  | Some seq ->
      Hashtbl.replace t.rtx_done seq ();
      send_segment t ~seq ~retransmission:true
  | None -> ()

let handle_new_ack t ~ack ~ece =
  let newly = ack - t.snd_una in
  t.snd_una <- ack;
  if t.sample_seq >= 0 && ack > t.sample_seq then begin
    Rtt_estimator.sample t.rtt (Time.diff (Sim.now t.sim) t.sample_sent);
    t.sample_seq <- -1
  end;
  t.dupacks <- 0;
  prune_scoreboard t;
  if t.in_recovery then begin
    if t.snd_una >= t.recover then begin
      t.in_recovery <- false;
      Hashtbl.reset t.rtx_done
    end
    else if t.config.sack then
      (* Partial ACK: the next hole is lost too; repair it now. *)
      retransmit_hole t
  end;
  t.cc.Cc.on_ack ~newly_acked:newly ~ece ~snd_una:t.snd_una
    ~snd_nxt:t.snd_nxt;
  if not (check_complete t) then begin
    if outstanding t > 0 then arm_rto t else Timer.cancel (rto_timer t);
    pump t;
    if outstanding t > 0 && not (Timer.is_pending (rto_timer t)) then
      arm_rto t
  end

let handle_dup_ack t ~ece =
  t.cc.Cc.on_ack ~newly_acked:0 ~ece ~snd_una:t.snd_una ~snd_nxt:t.snd_nxt;
  t.dupacks <- t.dupacks + 1;
  if t.dupacks = t.config.dupack_threshold && not t.in_recovery then begin
    t.in_recovery <- true;
    t.recover <- t.snd_nxt;
    t.fast_retransmits <- t.fast_retransmits + 1;
    if Obs.Trace.enabled t.tracer Obs.Trace.C_fast_retransmit then
      emit t (Obs.Trace.Fast_retransmit { flow = t.flow; snd_una = t.snd_una });
    t.cc.Cc.on_fast_retransmit ();
    t.sample_seq <- -1;
    if t.config.sack then begin
      (* Selective repair: retransmit only the holes the scoreboard shows. *)
      Hashtbl.reset t.rtx_done;
      retransmit_hole t
    end
    else begin
      (* Go-back-N recovery: rewind to the hole and let the (now reduced)
         window pump resend from there. Wasteful against SACK but robust,
         and the cwnd trajectory — what the experiments measure — is the
         same. *)
      t.retransmissions <- t.retransmissions + 1;
      t.snd_nxt <- t.snd_una
    end;
    arm_rto t
  end
  else if t.in_recovery && t.config.sack then
    (* Each further dupack clocks out one more hole repair. *)
    retransmit_hole t;
  pump t

let handle_ack t ~ack ~ece ~sack =
  if not (completed t) then begin
    t.acks_received <- t.acks_received + 1;
    if ece then t.ece_acks <- t.ece_acks + 1;
    record_sack t sack;
    if ack > t.snd_una then handle_new_ack t ~ack ~ece
    else if outstanding t > 0 then handle_dup_ack t ~ece
  end

let handle_rto t =
  if not (completed t) && outstanding t > 0 then begin
    t.timeouts <- t.timeouts + 1;
    if Obs.Trace.enabled t.tracer Obs.Trace.C_rto then
      emit t
        (Obs.Trace.Rto
           { flow = t.flow; snd_una = t.snd_una; timeouts = t.timeouts });
    Rtt_estimator.backoff t.rtt;
    t.cc.Cc.on_timeout ();
    t.in_recovery <- false;
    t.dupacks <- 0;
    t.sample_seq <- -1;
    Hashtbl.reset t.scoreboard;
    Hashtbl.reset t.rtx_done;
    (* Go-back-N: rewind and let the window pump resend from snd_una. *)
    t.recover <- t.snd_nxt;
    t.snd_nxt <- t.snd_una;
    t.retransmissions <- t.retransmissions + 1;
    arm_rto t;
    pump t
  end

let clamp_cwnd_raw config c = Float.min (Float.max c 1.) config.max_cwnd

let create sim ~host ~peer ~flow ~cc ?(tracer = Obs.Trace.null)
    ?(config = default_config) ?limit_segments ?(on_complete = fun () -> ())
    () =
  if config.segment_bytes <= 0 || config.ack_bytes <= 0 then
    invalid_arg "Sender.create: bad segment sizes";
  (match limit_segments with
  | Some n when n <= 0 -> invalid_arg "Sender.create: empty flow"
  | Some _ | None -> ());
  let t =
    {
      sim;
      st = Net.Packet.store_of sim;
      host;
      peer;
      flow;
      tracer;
      config;
      cc = dummy_cc;
      w =
        [| clamp_cwnd_raw config config.initial_cwnd;
           config.initial_ssthresh |];
      snd_una = 0;
      snd_nxt = 0;
      limit = limit_segments;
      dupacks = 0;
      in_recovery = false;
      recover = 0;
      rtt =
        Rtt_estimator.create ~min_rto:config.min_rto ~max_rto:config.max_rto
          ~initial_rto:config.initial_rto ();
      rto_timer = None;
      sample_seq = -1;
      sample_sent = Time.zero;
      scoreboard = Hashtbl.create 64;
      rtx_done = Hashtbl.create 64;
      retransmissions = 0;
      timeouts = 0;
      fast_retransmits = 0;
      acks_received = 0;
      ece_acks = 0;
      completed_at = None;
      on_complete;
      started = false;
    }
  in
  t.rto_timer <- Some (Timer.create sim ~action:(fun () -> handle_rto t));
  let api =
    {
      Cc.now = (fun () -> Sim.now sim);
      flow;
      tracer;
      get_cwnd = (fun () -> t.w.(0));
      set_cwnd = (fun c -> t.w.(0) <- clamp_cwnd t c);
      get_ssthresh = (fun () -> t.w.(1));
      set_ssthresh = (fun s -> t.w.(1) <- Float.max s 1.);
    }
  in
  t.cc <- cc api;
  Net.Host.bind_flow host ~flow (fun pkt ->
      let payload = Net.Packet.payload t.st pkt in
      (* The sender is this flow's terminal consumer of ACKs: extract
         the fields, recycle the handle, then run the ACK machinery. *)
      Net.Packet.free t.st pkt;
      match payload with
      | Segment.Ack { ack; ece; sack } -> handle_ack t ~ack ~ece ~sack
      | _ -> ());
  t

let start t =
  if not t.started then begin
    t.started <- true;
    if Obs.Trace.enabled t.tracer Obs.Trace.C_flow_start then
      emit t (Obs.Trace.Flow_start { flow = t.flow });
    pump t
  end

let cwnd t = t.w.(0)
let ssthresh t = t.w.(1)
let snd_una t = t.snd_una
let snd_nxt t = t.snd_nxt
let alpha t = t.cc.Cc.alpha ()
let in_recovery t = t.in_recovery
let completion_time t = t.completed_at
let retransmissions t = t.retransmissions
let timeouts t = t.timeouts
let fast_retransmits t = t.fast_retransmits
let acks_received t = t.acks_received
let ece_acks t = t.ece_acks
let srtt t = Rtt_estimator.srtt t.rtt

let close t =
  Timer.cancel (rto_timer t);
  Net.Host.unbind_flow t.host ~flow:t.flow
