type flow_api = {
  now : unit -> Engine.Time.t;
  flow : int;
  tracer : Obs.Trace.t;
  get_cwnd : unit -> float;
  set_cwnd : float -> unit;
  get_ssthresh : unit -> float;
  set_ssthresh : float -> unit;
}

type t = {
  name : string;
  on_ack : newly_acked:int -> ece:bool -> snd_una:int -> snd_nxt:int -> unit;
  on_fast_retransmit : unit -> unit;
  on_timeout : unit -> unit;
  alpha : unit -> float option;
}

type factory = flow_api -> t

(* Shared Reno-style window growth. *)
let grow api newly_acked =
  if newly_acked > 0 then begin
    let cwnd = api.get_cwnd () in
    if cwnd < api.get_ssthresh () then
      api.set_cwnd (cwnd +. float_of_int newly_acked)
    else api.set_cwnd (cwnd +. (float_of_int newly_acked /. cwnd))
  end

let halve_on_loss api =
  let cwnd = api.get_cwnd () in
  let target = Stdlib.max (cwnd /. 2.) 1. in
  api.set_ssthresh target;
  api.set_cwnd target

let collapse_on_timeout api =
  let cwnd = api.get_cwnd () in
  api.set_ssthresh (Stdlib.max (cwnd /. 2.) 1.);
  api.set_cwnd 1.

let reno api =
  {
    name = "reno";
    on_ack =
      (fun ~newly_acked ~ece:_ ~snd_una:_ ~snd_nxt:_ -> grow api newly_acked);
    on_fast_retransmit = (fun () -> halve_on_loss api);
    on_timeout = (fun () -> collapse_on_timeout api);
    alpha = (fun () -> None);
  }

let ecn_reno api =
  (* One multiplicative decrease per window of data: after reacting to ECE
     we ignore further ECE until snd_una passes the snd_nxt recorded at
     reaction time. *)
  let cwr_end = ref 0 in
  {
    name = "ecn-reno";
    on_ack =
      (fun ~newly_acked ~ece ~snd_una ~snd_nxt ->
        if ece then begin
          (* No growth on congestion-echo ACKs. *)
          if snd_una > !cwr_end then begin
            halve_on_loss api;
            cwr_end := snd_nxt
          end
        end
        else grow api newly_acked);
    on_fast_retransmit = (fun () -> halve_on_loss api);
    on_timeout = (fun () -> collapse_on_timeout api);
    alpha = (fun () -> None);
  }

let ai_md ~increase ~decrease api =
  if increase <= 0. then invalid_arg "Cc.ai_md: increase must be positive";
  if decrease <= 0. || decrease >= 1. then
    invalid_arg "Cc.ai_md: decrease must be in (0,1)";
  let cwr_end = ref 0 in
  let reduce () =
    let cwnd = api.get_cwnd () in
    let target = Stdlib.max (cwnd *. (1. -. decrease)) 1. in
    api.set_ssthresh target;
    api.set_cwnd target
  in
  {
    name = Printf.sprintf "aimd(%.2f,%.2f)" increase decrease;
    on_ack =
      (fun ~newly_acked ~ece ~snd_una ~snd_nxt ->
        if ece && snd_una > !cwr_end then begin
          reduce ();
          cwr_end := snd_nxt
        end
        else if newly_acked > 0 then begin
          let cwnd = api.get_cwnd () in
          if cwnd < api.get_ssthresh () then
            api.set_cwnd (cwnd +. float_of_int newly_acked)
          else
            api.set_cwnd
              (cwnd +. (increase *. float_of_int newly_acked /. cwnd))
        end);
    on_fast_retransmit = reduce;
    on_timeout = (fun () -> collapse_on_timeout api);
    alpha = (fun () -> None);
  }
