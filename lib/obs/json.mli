(** Minimal JSON tree with a writer and a strict parser.

    Just enough JSON for {!Manifest} records and JSONL trace sinks — no
    dependency on an external JSON package (the container's toolchain is
    fixed). The writer emits round-trippable floats (shortest decimal that
    restores the same bits, always containing ['.'], ['e'] or ['E'] so a
    [Float] never reparses as an [Int]); non-finite floats degrade to
    [null] because JSON has no literal for them. The parser handles the
    full escape set including [\uXXXX] (encoded to UTF-8; surrogate pairs
    are not recombined). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One-line rendering (no pretty-printing), valid JSON. *)

val to_buffer : Buffer.t -> t -> unit

val write : out_channel -> t -> unit
(** [to_string] into a caller-owned channel (dtlint R4: the library never
    writes to stdout). *)

val parse : string -> (t, string) result
(** Strict parse of one complete JSON value; trailing non-whitespace input
    is an error. The error string carries a byte offset. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val equal : t -> t -> bool
(** Structural equality; floats compare by bit pattern (so [nan] equals
    itself and [0.] differs from [-0.]), object fields by order. *)
