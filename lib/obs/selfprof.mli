(** Sampled per-event-class engine self-profiler.

    Attaches to {!Engine.Sim}'s profiler hooks and maintains, per
    {!Engine.Event_class}:

    - an exact count of every executed event (two array stores per
      event — cheap enough to leave on for a whole run);
    - wall-clock durations of a 1-in-[sample_every] subset (sum, count,
      and a log2-binned nanosecond histogram). Timing is sampled because
      {!Profile.wall_clock} has microsecond resolution — most events
      execute faster than one tick, so per-event timing would measure
      mostly clock noise while doubling the hook cost.

    When no profiler is attached the engine's dispatch loop takes a
    single predicted-false branch per event ({!Engine.Sim.set_profiler});
    the whole subsystem costs nothing on an unprofiled run and is
    allocation-free either way.

    Counts are deterministic (a property the tests pin against trace
    event counts); durations are wall-clock and therefore not — profiles
    belong in perf reports, never in manifests. *)

type t

val create : ?sample_every:int -> unit -> t
(** [sample_every] (default 32): time one event in this many.
    @raise Invalid_argument if [sample_every <= 0]. *)

val attach : t -> Engine.Sim.t -> unit
(** Install this profiler's hooks on [sim]. One profiler can observe
    several sims sequentially; counts accumulate. *)

val detach : Engine.Sim.t -> unit
(** Remove whatever profiler is installed on [sim]. *)

val total : t -> int
(** Events observed across all classes. *)

val count : t -> Engine.Event_class.t -> int

val sampled : t -> Engine.Event_class.t -> int
(** Events of this class that were wall-clock timed. *)

val mean_us : t -> Engine.Event_class.t -> float
(** Mean wall-clock microseconds over this class's timed sample; [0.]
    when nothing of the class was sampled. Wall-clock, so not
    deterministic — report material, never manifest material. *)

val sampled_total : t -> int
(** Events that were wall-clock timed. *)

val to_json : t -> Json.t
(** [{sample_every, events_total, events_sampled, classes: [{class,
    count, sampled, time_s, mean_us, hist_ns_log2}, ...]}] with one
    entry per class in {!Engine.Event_class.all} order. *)
