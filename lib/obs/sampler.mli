(** Periodic sampling loop on simulation time.

    The one fixed-period polling pattern the repo needs, extracted from
    [Net.Trace] and [Workloads.Instrument] (which previously each
    reimplemented it): call [f now] every [period] until the {e next}
    tick would land after [stop_at]. The [stop_at] bound is mandatory —
    an unbounded self-rescheduling loop would keep the simulation alive
    forever. *)

type t

val start :
  Engine.Sim.t ->
  period:Engine.Time.span ->
  stop_at:Engine.Time.t ->
  ?immediate:bool ->
  (Engine.Time.t -> unit) ->
  t
(** Start sampling. With [~immediate:true] the first call to [f] happens
    synchronously at the current simulation time; otherwise the first
    tick fires one [period] from now (and that first tick is
    unconditional even if it lands past [stop_at], matching the historic
    [Net.Trace] behaviour).
    @raise Invalid_argument if [period <= 0]. *)

val stop : t -> unit
(** Detach: pending ticks become no-ops. Idempotent. *)

val active : t -> bool
