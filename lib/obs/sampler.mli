(** Periodic sampling loop on simulation time.

    The one fixed-period polling pattern the repo needs, extracted from
    [Net.Trace] and [Workloads.Instrument] (which previously each
    reimplemented it): call [f now] every [period] until the {e next}
    tick would land after [stop_at]. The [stop_at] bound is mandatory —
    an unbounded self-rescheduling loop would keep the simulation alive
    forever. Ticks are scheduled with the {!Engine.Event_class.Sample}
    profiler tag. *)

type t

val start :
  Engine.Sim.t ->
  period:Engine.Time.span ->
  stop_at:Engine.Time.t ->
  ?immediate:bool ->
  ?clamp_first:bool ->
  (Engine.Time.t -> unit) ->
  t
(** Start sampling. With [~immediate:true] the first call to [f] happens
    synchronously at the current simulation time; otherwise the first
    tick fires one [period] from now.

    By default that first deferred tick is {e unconditional} even if it
    lands past [stop_at] — the historic [Net.Trace] behaviour, preserved
    because existing runs' manifests are bit-identical to it. Pass
    [~clamp_first:true] to skip the first tick when it would land past
    [stop_at], making the bound uniform across all ticks. Both
    behaviours are pinned by regression tests.
    @raise Invalid_argument if [period <= 0]. *)

val stop : t -> unit
(** Detach: pending ticks become no-ops. Idempotent. *)

val active : t -> bool
