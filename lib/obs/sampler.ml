module Sim = Engine.Sim
module Time = Engine.Time

type t = { mutable active : bool }

let cls_sample = Engine.Event_class.(index Sample)

let start sim ~period ~stop_at ?(immediate = false) ?(clamp_first = false) f =
  if Int64.compare period 0L <= 0 then
    invalid_arg "Obs.Sampler.start: period must be positive";
  let t = { active = true } in
  let rec tick () =
    if t.active then begin
      f (Sim.now sim);
      let next = Time.add (Sim.now sim) period in
      if Time.(next <= stop_at) then
        ignore (Sim.schedule_at_cls sim next ~cls:cls_sample tick)
    end
  in
  if immediate then tick ()
  else begin
    (* Historic wart, kept as the default for bit-identical manifests:
       the first deferred tick fires unconditionally, even when it lands
       past [stop_at]. [clamp_first] opts into the bounded behaviour. *)
    let first = Time.add (Sim.now sim) period in
    if (not clamp_first) || Time.(first <= stop_at) then
      ignore (Sim.schedule_at_cls sim first ~cls:cls_sample tick)
  end;
  t

let stop t = t.active <- false
let active t = t.active
