module Sim = Engine.Sim
module Time = Engine.Time

type t = { mutable active : bool }

let start sim ~period ~stop_at ?(immediate = false) f =
  if Int64.compare period 0L <= 0 then
    invalid_arg "Obs.Sampler.start: period must be positive";
  let t = { active = true } in
  let rec tick () =
    if t.active then begin
      f (Sim.now sim);
      let next = Time.add (Sim.now sim) period in
      if Time.(next <= stop_at) then ignore (Sim.schedule_at sim next tick)
    end
  in
  if immediate then tick () else ignore (Sim.schedule_after sim period tick);
  t

let stop t = t.active <- false
let active t = t.active
