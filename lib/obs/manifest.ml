type t = {
  name : string;
  seed : int64;
  params : (string * Json.t) list;
  wall_clock_s : float;
  events : int;
  events_per_s : float;
  metrics : (string * float) list;
  analysis : Json.t option;
}

let make ?analysis ~name ~seed ~params ~wall_clock_s ~events ~metrics () =
  let events_per_s =
    if wall_clock_s > 0. then float_of_int events /. wall_clock_s else 0.
  in
  {
    name;
    seed;
    params;
    wall_clock_s;
    events;
    events_per_s;
    metrics = List.sort (fun (a, _) (b, _) -> String.compare a b) metrics;
    analysis;
  }

let to_json m =
  let base =
    [
      ("name", Json.String m.name);
      (* int64 seeds can exceed a JSON reader's integer range; a string
         survives any consumer. *)
      ("seed", Json.String (Int64.to_string m.seed));
      ("params", Json.Obj m.params);
      ("wall_clock_s", Json.Float m.wall_clock_s);
      ("events", Json.Int m.events);
      ("events_per_s", Json.Float m.events_per_s);
      ("metrics", Metrics.snapshot_to_json m.metrics);
    ]
  in
  (* Appended after the historic fields, and only when present: a run
     without analysis serializes byte-identically to pre-analysis
     builds. *)
  match m.analysis with
  | None -> Json.Obj base
  | Some a -> Json.Obj (base @ [ ("analysis", a) ])

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "manifest: missing field %S" name)
  in
  let str name =
    let* v = field name in
    match v with
    | Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "manifest: field %S is not a string" name)
  in
  let num name =
    let* v = field name in
    match v with
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "manifest: field %S is not a number" name)
  in
  let* name = str "name" in
  let* seed_s = str "seed" in
  let* seed =
    match Int64.of_string_opt seed_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "manifest: bad seed %S" seed_s)
  in
  let* params =
    let* v = field "params" in
    match v with
    | Json.Obj kvs -> Ok kvs
    | _ -> Error "manifest: field \"params\" is not an object"
  in
  let* wall_clock_s = num "wall_clock_s" in
  let* events =
    let* v = field "events" in
    match v with
    | Json.Int i -> Ok i
    | _ -> Error "manifest: field \"events\" is not an integer"
  in
  let* events_per_s = num "events_per_s" in
  let* metrics =
    let* v = field "metrics" in
    match v with
    | Json.Obj kvs ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (k, Json.Float f) :: rest -> go ((k, f) :: acc) rest
          | (k, Json.Int i) :: rest -> go ((k, float_of_int i) :: acc) rest
          | (k, _) :: _ ->
              Error (Printf.sprintf "manifest: metric %S is not a number" k)
        in
        go [] kvs
    | _ -> Error "manifest: field \"metrics\" is not an object"
  in
  let analysis = Json.member "analysis" j in
  Ok { name; seed; params; wall_clock_s; events; events_per_s; metrics; analysis }

let write oc m =
  Json.write oc (to_json m);
  output_char oc '\n'
