module Time = Engine.Time

type config = {
  sample_period : Time.span;
  band_bytes : (int * int) option;
  n_flows : int;
  rtt : Time.span;
  segment_bytes : int;
}

let max_lag = 512

let required_classes =
  [
    Trace.C_enqueue;
    Trace.C_dequeue;
    Trace.C_drop;
    Trace.C_mark;
    Trace.C_mark_state_flip;
    Trace.C_cwnd_cut;
  ]

(* Log2 histogram bin of a positive int: values in [2^b, 2^(b+1)) land
   in bin b; 0 shares bin 0 with 1. 63 bins cover any int. *)
let log2_bin v =
  let rec go b v = if v <= 1 then b else go (b + 1) (v lsr 1) in
  go 0 v

let hist_bins = 63

(* Hysteresis cycle-detector zones. *)
let zone_unknown = 0
let zone_low = 1
let zone_high = 2

type t = {
  cfg : config;
  period_ns : int;
  rtt_ns : int;
  on_sample : float -> unit;
  (* record bookkeeping *)
  mutable records : int;
  mutable first_t_ns : int;
  mutable last_t_ns : int;
  mutable finalized : bool;
  (* zero-order-hold occupancy resampling *)
  mutable occ : int;  (* current occupancy in bytes *)
  mutable next_grid_ns : int;
  (* Welford accumulator over grid samples *)
  mutable n_samples : int;
  mutable mean : float;
  mutable m2 : float;
  (* event-level occupancy extremes *)
  mutable min_occ : int;
  mutable max_occ : int;
  (* bounded-lag autocorrelation: ring of the last [max_lag] samples
     and one running product sum per lag *)
  lagbuf : float array;
  acc : float array;  (* acc.(l-1) = sum over n of x_n * x_(n-l) *)
  (* cycle detector against the hysteresis band *)
  band_low : int;  (* min_int when no band *)
  band_high : int;
  mutable zone : int;
  mutable cycle_start_ns : int;  (* last up-crossing instant, -1 = none *)
  mutable cyc_min : int;
  mutable cyc_max : int;
  mutable cycles : int;
  mutable amp_sum : float;  (* bytes *)
  mutable amp_max : int;
  mutable period_sum_ns : float;
  amp_hist : int array;
  period_hist : int array;
  (* marking flips *)
  mutable flips : int;
  mutable flips_up : int;
  (* flow-synchronization index over RTT windows *)
  seen : bool array;
  mutable seen_count : int;
  mutable cur_window : int;
  mutable active_windows : int;
  mutable sync_sum : float;
  mutable sync_max : float;
}

let ignore_sample (_ : float) = ()

let create ?(on_sample = ignore_sample) cfg =
  if Int64.compare cfg.sample_period 0L <= 0 then
    invalid_arg "Obs.Analyze.create: sample_period must be positive";
  if cfg.n_flows <= 0 then
    invalid_arg "Obs.Analyze.create: n_flows must be positive";
  if Int64.compare cfg.rtt 0L <= 0 then
    invalid_arg "Obs.Analyze.create: rtt must be positive";
  if cfg.segment_bytes <= 0 then
    invalid_arg "Obs.Analyze.create: segment_bytes must be positive";
  let band_low, band_high =
    match cfg.band_bytes with
    | None -> (min_int, min_int)
    | Some (lo, hi) ->
        if lo > hi then invalid_arg "Obs.Analyze.create: inverted band";
        (lo, hi)
  in
  {
    cfg;
    period_ns = Int64.to_int cfg.sample_period;
    rtt_ns = Int64.to_int cfg.rtt;
    on_sample;
    records = 0;
    first_t_ns = 0;
    last_t_ns = 0;
    finalized = false;
    occ = 0;
    next_grid_ns = 0;
    n_samples = 0;
    mean = 0.;
    m2 = 0.;
    min_occ = max_int;
    max_occ = 0;
    lagbuf = Array.make max_lag 0.;
    acc = Array.make max_lag 0.;
    band_low;
    band_high;
    zone = zone_unknown;
    cycle_start_ns = -1;
    cyc_min = max_int;
    cyc_max = 0;
    cycles = 0;
    amp_sum = 0.;
    amp_max = 0;
    period_sum_ns = 0.;
    amp_hist = Array.make hist_bins 0;
    period_hist = Array.make hist_bins 0;
    flips = 0;
    flips_up = 0;
    seen = Array.make cfg.n_flows false;
    seen_count = 0;
    cur_window = -1;
    active_windows = 0;
    sync_sum = 0.;
    sync_max = 0.;
  }

(* --- uniform-grid resampling + Welford + autocorrelation ----------- *)

let push_sample t =
  let x = float_of_int t.occ in
  let n = t.n_samples in
  (* running products against the previous [max_lag] samples *)
  let maxl = if n < max_lag then n else max_lag in
  let pos = n mod max_lag in
  for l = 1 to maxl do
    let i = pos - l in
    let i = if i < 0 then i + max_lag else i in
    t.acc.(l - 1) <- t.acc.(l - 1) +. (x *. t.lagbuf.(i))
  done;
  t.lagbuf.(pos) <- x;
  t.n_samples <- n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n_samples);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  t.on_sample x

let flush_grid t ~upto_ns ~inclusive =
  let stop = if inclusive then upto_ns + 1 else upto_ns in
  while t.next_grid_ns < stop do
    push_sample t;
    t.next_grid_ns <- t.next_grid_ns + t.period_ns
  done

(* --- cycle detector ------------------------------------------------ *)

let record_cycle t ~now_ns =
  t.cycles <- t.cycles + 1;
  let amp = t.cyc_max - t.cyc_min in
  t.amp_sum <- t.amp_sum +. float_of_int amp;
  if amp > t.amp_max then t.amp_max <- amp;
  t.amp_hist.(log2_bin amp) <- t.amp_hist.(log2_bin amp) + 1;
  let period = now_ns - t.cycle_start_ns in
  t.period_sum_ns <- t.period_sum_ns +. float_of_int period;
  t.period_hist.(log2_bin period) <- t.period_hist.(log2_bin period) + 1

let occ_event t ~now_ns ~occ =
  t.occ <- occ;
  if occ < t.min_occ then t.min_occ <- occ;
  if occ > t.max_occ then t.max_occ <- occ;
  if t.band_low <> min_int then begin
    if t.cycle_start_ns >= 0 then begin
      if occ < t.cyc_min then t.cyc_min <- occ;
      if occ > t.cyc_max then t.cyc_max <- occ
    end;
    if occ >= t.band_high then begin
      if t.zone = zone_low then begin
        (* up-crossing: one full peak–trough cycle ends here *)
        if t.cycle_start_ns >= 0 then record_cycle t ~now_ns;
        t.cycle_start_ns <- now_ns;
        t.cyc_min <- occ;
        t.cyc_max <- occ
      end;
      t.zone <- zone_high
    end
    else if occ <= t.band_low then t.zone <- zone_low
  end

(* --- synchronization index ----------------------------------------- *)

let close_window t =
  if t.seen_count > 0 then begin
    let frac = float_of_int t.seen_count /. float_of_int t.cfg.n_flows in
    t.active_windows <- t.active_windows + 1;
    t.sync_sum <- t.sync_sum +. frac;
    if frac > t.sync_max then t.sync_max <- frac;
    Array.fill t.seen 0 (Array.length t.seen) false;
    t.seen_count <- 0
  end

let cut_event t ~now_ns ~flow =
  let w = (now_ns - t.first_t_ns) / t.rtt_ns in
  if w <> t.cur_window then begin
    close_window t;
    t.cur_window <- w
  end;
  if flow >= 0 && flow < t.cfg.n_flows && not t.seen.(flow) then begin
    t.seen.(flow) <- true;
    t.seen_count <- t.seen_count + 1
  end

(* --- feeding ------------------------------------------------------- *)

let feed t (r : Trace.record) =
  if t.finalized then invalid_arg "Obs.Analyze.feed: already finalized";
  let now_ns = Int64.to_int (Time.to_ns r.Trace.time) in
  if t.records = 0 then begin
    t.first_t_ns <- now_ns;
    t.next_grid_ns <- now_ns
  end
  else if now_ns < t.last_t_ns then
    invalid_arg "Obs.Analyze.feed: records out of time order";
  (* Grid instants strictly before this record sample the pre-record
     occupancy: a sample at instant g reflects every event with time
     <= g, exactly as a zero-order hold of the event stream. *)
  flush_grid t ~upto_ns:now_ns ~inclusive:false;
  t.records <- t.records + 1;
  t.last_t_ns <- now_ns;
  match r.Trace.event with
  | Trace.Enqueue { occ_bytes; _ }
  | Trace.Dequeue { occ_bytes; _ }
  | Trace.Mark { occ_bytes; _ }
  | Trace.Drop { occ_bytes; _ } ->
      occ_event t ~now_ns ~occ:occ_bytes
  | Trace.Mark_state_flip { marking; occ_bytes } ->
      t.flips <- t.flips + 1;
      if marking then t.flips_up <- t.flips_up + 1;
      occ_event t ~now_ns ~occ:occ_bytes
  | Trace.Cwnd_cut { flow; _ } -> cut_event t ~now_ns ~flow
  | _ -> ()

let tracer t =
  Trace.create ~classes:required_classes (Trace.Fn (fun r -> feed t r))

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    if t.records > 0 then flush_grid t ~upto_ns:t.last_t_ns ~inclusive:true;
    close_window t
  end

(* --- dominant frequency from the autocorrelation --------------------- *)

(* Minimum samples before the estimate means anything, and the minimum
   number of product pairs a lag must have accumulated to be usable. *)
let min_samples = 32
let min_pairs = 16
let rho_threshold = 0.1

type spectral =
  | Peak of { freq_hz : float; lag : int; rho : float }
  | No_peak of string

let spectral t =
  finalize t;
  let n = t.n_samples in
  if n < min_samples then
    No_peak
      (Printf.sprintf "series too short: %d samples (need >= %d)" n
         min_samples)
  else begin
    let var = t.m2 /. float_of_int n in
    if var <= 0. then No_peak "no variation: occupancy series is flat"
    else begin
      let mean2 = t.mean *. t.mean in
      let usable = Stdlib.min max_lag (n - min_pairs) in
      let rho l =
        ((t.acc.(l - 1) /. float_of_int (n - l)) -. mean2) /. var
      in
      (* First lag where the autocorrelation goes negative ... *)
      let l0 = ref 0 in
      let l = ref 1 in
      while !l0 = 0 && !l <= usable do
        if rho !l < 0. then l0 := !l;
        incr l
      done;
      if !l0 = 0 then
        No_peak
          (Printf.sprintf
             "no oscillation: autocorrelation never goes negative within \
              %d lags"
             usable)
      else begin
        (* ... then the strongest positive recurrence beyond it. *)
        let best = ref 0 in
        let best_rho = ref neg_infinity in
        for l = !l0 + 1 to usable do
          let r = rho l in
          if r > !best_rho then begin
            best_rho := r;
            best := l
          end
        done;
        if !best = 0 || !best_rho < rho_threshold then
          No_peak
            (Printf.sprintf
               "no dominant period: peak autocorrelation %.3f below %.1f"
               (if !best = 0 then 0. else !best_rho)
               rho_threshold)
        else
          Peak
            {
              freq_hz = 1e9 /. float_of_int (!best * t.period_ns);
              lag = !best;
              rho = !best_rho;
            }
      end
    end
  end

let spectrum_note t =
  match spectral t with Peak _ -> None | No_peak note -> Some note

(* --- output -------------------------------------------------------- *)

let duration_s t =
  if t.records < 2 then 0.
  else float_of_int (t.last_t_ns - t.first_t_ns) /. 1e9

let summary_occ_std t =
  if t.n_samples = 0 then 0. else sqrt (t.m2 /. float_of_int t.n_samples)

type summary = {
  records : int;
  duration_s : float;
  occ_mean_pkts : float;
  occ_std_pkts : float;
  cycles : int;
  amp_mean_pkts : float;
  amp_max_pkts : float;
  period_mean_s : float;
  flip_rate_hz : float;
  sync_mean : float;
  sync_max : float;
  dominant_freq_hz : float option;
}

let summary t =
  finalize t;
  let seg = float_of_int t.cfg.segment_bytes in
  let dur = duration_s t in
  let cyc = float_of_int t.cycles in
  {
    records = t.records;
    duration_s = dur;
    occ_mean_pkts = t.mean /. seg;
    occ_std_pkts = summary_occ_std t /. seg;
    cycles = t.cycles;
    amp_mean_pkts = (if t.cycles = 0 then 0. else t.amp_sum /. cyc /. seg);
    amp_max_pkts = float_of_int t.amp_max /. seg;
    period_mean_s =
      (if t.cycles = 0 then 0. else t.period_sum_ns /. cyc /. 1e9);
    flip_rate_hz = (if dur > 0. then float_of_int t.flips /. dur else 0.);
    sync_mean =
      (if t.active_windows = 0 then 0.
       else t.sync_sum /. float_of_int t.active_windows);
    sync_max = t.sync_max;
    dominant_freq_hz =
      (match spectral t with
      | Peak { freq_hz; _ } -> Some freq_hz
      | No_peak _ -> None);
  }

let hist_to_json h =
  let entries = ref [] in
  for b = hist_bins - 1 downto 0 do
    if h.(b) > 0 then
      entries := Json.List [ Json.Int (1 lsl b); Json.Int h.(b) ] :: !entries
  done;
  Json.List !entries

let config_to_fields cfg =
  [
    ("sample_period_ns", Json.Int (Int64.to_int cfg.sample_period));
    ( "band_low_bytes",
      match cfg.band_bytes with
      | Some (lo, _) -> Json.Int lo
      | None -> Json.Null );
    ( "band_high_bytes",
      match cfg.band_bytes with
      | Some (_, hi) -> Json.Int hi
      | None -> Json.Null );
    ("n_flows", Json.Int cfg.n_flows);
    ("rtt_ns", Json.Int (Int64.to_int cfg.rtt));
    ("segment_bytes", Json.Int cfg.segment_bytes);
  ]

let to_json t =
  finalize t;
  let s = summary t in
  let windows =
    if t.records = 0 then 0
    else ((t.last_t_ns - t.first_t_ns) / t.rtt_ns) + 1
  in
  let freq, period_s, rho, lag, note =
    match spectral t with
    | Peak { freq_hz; lag; rho } ->
        ( Json.Float freq_hz,
          Json.Float (1. /. freq_hz),
          Json.Float rho,
          Json.Int lag,
          Json.Null )
    | No_peak n -> (Json.Null, Json.Null, Json.Null, Json.Null, Json.String n)
  in
  Json.Obj
    [
      ("config", Json.Obj (config_to_fields t.cfg));
      ("records", Json.Int t.records);
      ("duration_s", Json.Float s.duration_s);
      ( "occupancy",
        Json.Obj
          [
            ("samples", Json.Int t.n_samples);
            ("mean_bytes", Json.Float t.mean);
            ("std_bytes", Json.Float (summary_occ_std t));
            ( "min_bytes",
              Json.Int (if t.min_occ = max_int then 0 else t.min_occ) );
            ("max_bytes", Json.Int t.max_occ);
            ("mean_pkts", Json.Float s.occ_mean_pkts);
            ("std_pkts", Json.Float s.occ_std_pkts);
          ] );
      ( "cycles",
        Json.Obj
          [
            ("count", Json.Int t.cycles);
            ("amp_mean_pkts", Json.Float s.amp_mean_pkts);
            ("amp_max_pkts", Json.Float s.amp_max_pkts);
            ("period_mean_s", Json.Float s.period_mean_s);
            ("amp_hist_bytes_log2", hist_to_json t.amp_hist);
            ("period_hist_ns_log2", hist_to_json t.period_hist);
          ] );
      ( "marking",
        Json.Obj
          [
            ("flips", Json.Int t.flips);
            ("flips_up", Json.Int t.flips_up);
            ("flip_rate_hz", Json.Float s.flip_rate_hz);
          ] );
      ( "sync",
        Json.Obj
          [
            ("windows", Json.Int windows);
            ("active_windows", Json.Int t.active_windows);
            ("index_mean", Json.Float s.sync_mean);
            ("index_max", Json.Float s.sync_max);
          ] );
      ( "spectrum",
        Json.Obj
          [
            ("method", Json.String "autocorr");
            ("samples", Json.Int t.n_samples);
            ("max_lag", Json.Int max_lag);
            ("dominant_freq_hz", freq);
            ("dominant_period_s", period_s);
            ("peak_rho", rho);
            ("lag", lag);
            ("note", note);
          ] );
    ]

(* --- trace-file header --------------------------------------------- *)

module Header = struct
  type header = { config : config; classes : Trace.cls list }

  let version = 1

  let is_header j =
    match Json.member "trace_header" j with Some _ -> true | None -> false

  let to_json h =
    Json.Obj
      (("trace_header", Json.Int version)
      :: config_to_fields h.config
      @ [
          ( "classes",
            Json.List
              (List.map
                 (fun c -> Json.String (Trace.cls_name c))
                 h.classes) );
        ])

  let of_json j =
    let ( let* ) = Result.bind in
    let field name =
      match Json.member name j with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "trace header: missing field %S" name)
    in
    let int name =
      let* v = field name in
      match v with
      | Json.Int i -> Ok i
      | _ ->
          Error (Printf.sprintf "trace header: field %S is not an integer" name)
    in
    let opt_int name =
      let* v = field name in
      match v with
      | Json.Int i -> Ok (Some i)
      | Json.Null -> Ok None
      | _ ->
          Error
            (Printf.sprintf "trace header: field %S is not an integer or null"
               name)
    in
    let* v = int "trace_header" in
    let* () =
      if v = version then Ok ()
      else Error (Printf.sprintf "trace header: unsupported version %d" v)
    in
    let* sample_period_ns = int "sample_period_ns" in
    let* band_low = opt_int "band_low_bytes" in
    let* band_high = opt_int "band_high_bytes" in
    let* band_bytes =
      match (band_low, band_high) with
      | Some lo, Some hi -> Ok (Some (lo, hi))
      | None, None -> Ok None
      | _ -> Error "trace header: half-open band"
    in
    let* n_flows = int "n_flows" in
    let* rtt_ns = int "rtt_ns" in
    let* segment_bytes = int "segment_bytes" in
    let* classes =
      let* v = field "classes" in
      match v with
      | Json.List items ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | Json.String s :: rest -> (
                match Trace.cls_of_name s with
                | Some c -> go (c :: acc) rest
                | None ->
                    Error
                      (Printf.sprintf "trace header: unknown class %S" s))
            | _ -> Error "trace header: classes must be strings"
          in
          go [] items
      | _ -> Error "trace header: field \"classes\" is not a list"
    in
    Ok
      {
        config =
          {
            sample_period = Int64.of_int sample_period_ns;
            band_bytes;
            n_flows;
            rtt = Int64.of_int rtt_ns;
            segment_bytes;
          };
        classes;
      }
end
