type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- writer --- *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Shortest decimal form that parses back to the same bits, kept
   recognisably float (so Float never round-trips into Int). *)
let float_repr f =
  let bits = Int64.bits_of_float f in
  let short = Printf.sprintf "%.15g" f in
  let s =
    match float_of_string_opt short with
    | Some back when Int64.equal (Int64.bits_of_float back) bits -> short
    | Some _ | None -> Printf.sprintf "%.17g" f
  in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec to_buffer b v =
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* JSON has no inf/nan literals; degrade to null rather than emit an
         unparseable document. *)
      if Float.is_finite f then Buffer.add_string b (float_repr f)
      else Buffer.add_string b "null"
  | String s ->
      Buffer.add_char b '"';
      add_escaped b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          add_escaped b k;
          Buffer.add_string b "\":";
          to_buffer b x)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

let write oc v = output_string oc (to_string v)

(* --- parser --- *)

exception Fail of string * int

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let cur () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match cur () with
    | Some c' when Char.equal c c' -> incr pos
    | Some _ | None -> fail (Printf.sprintf "expected %C" c)
  in
  let lit word v =
    let m = String.length word in
    if !pos + m <= n && String.equal (String.sub s !pos m) word then begin
      pos := !pos + m;
      v
    end
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            incr pos;
            Buffer.contents b
        | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                (match int_of_string_opt ("0x" ^ hex) with
                | Some code ->
                    add_utf8 b code;
                    pos := !pos + 4
                | None -> fail "bad \\u escape")
            | c -> fail (Printf.sprintf "bad escape %C" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    (match cur () with Some '-' -> incr pos | Some _ | None -> ());
    let continue = ref true in
    while !continue && !pos < n do
      (match s.[!pos] with
      | '0' .. '9' -> incr pos
      | '.' | 'e' | 'E' ->
          is_float := true;
          incr pos
      | '+' | '-' when !is_float -> incr pos
      | _ -> continue := false);
      ()
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec value () =
    skip_ws ();
    match cur () with
    | None -> fail "unexpected end of input"
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> String (string_lit ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  and arr () =
    expect '[';
    skip_ws ();
    match cur () with
    | Some ']' ->
        incr pos;
        List []
    | _ ->
        let rec items acc =
          let v = value () in
          skip_ws ();
          match cur () with
          | Some ',' ->
              incr pos;
              items (v :: acc)
          | Some ']' ->
              incr pos;
              List (List.rev (v :: acc))
          | Some _ | None -> fail "expected ',' or ']'"
        in
        items []
  and obj () =
    expect '{';
    skip_ws ();
    match cur () with
    | Some '}' ->
        incr pos;
        Obj []
    | _ ->
        let rec fields acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match cur () with
          | Some ',' ->
              incr pos;
              fields ((k, v) :: acc)
          | Some '}' ->
              incr pos;
              Obj (List.rev ((k, v) :: acc))
          | Some _ | None -> fail "expected ',' or '}'"
        in
        fields []
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing input after value";
    v
  with
  | v -> Ok v
  | exception Fail (msg, p) -> Error (Printf.sprintf "offset %d: %s" p msg)

(* --- accessors and equality --- *)

let member key v =
  match v with Obj kvs -> List.assoc_opt key kvs | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | String x, String y -> String.equal x y
  | List xs, List ys -> List.equal equal xs ys
  | Obj xs, Obj ys ->
      List.equal
        (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
        xs ys
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false
