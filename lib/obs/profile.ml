module Sim = Engine.Sim

let wall_clock () = Unix.gettimeofday ()

type run = { wall_s : float; events : int; events_per_s : float }

let finish ~t0 ~e0 sim =
  let wall_s = wall_clock () -. t0 in
  let events = Sim.events_processed sim - e0 in
  let events_per_s =
    if wall_s > 0. then float_of_int events /. wall_s else 0.
  in
  { wall_s; events; events_per_s }

let run_sim ?until sim =
  let t0 = wall_clock () in
  let e0 = Sim.events_processed sim in
  Sim.run ?until sim;
  finish ~t0 ~e0 sim

let time f =
  let t0 = wall_clock () in
  let v = f () in
  (v, wall_clock () -. t0)
