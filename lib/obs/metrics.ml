type counter = { mutable count : int }
type gauge = { mutable value : float }

type source =
  | Counter of counter
  | Gauge of gauge
  | Probe of (unit -> float)

type t = { tbl : (string, source) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let register t name src =
  if Hashtbl.mem t.tbl name then
    invalid_arg (Printf.sprintf "Obs.Metrics: duplicate metric %S" name);
  Hashtbl.replace t.tbl name src

let counter t name =
  let c = { count = 0 } in
  register t name (Counter c);
  c

let gauge t name =
  let g = { value = 0. } in
  register t name (Gauge g);
  g

let probe t name f = register t name (Probe f)
let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let count c = c.count
let set g v = g.value <- v
let value g = g.value

let read = function
  | Counter c -> float_of_int c.count
  | Gauge g -> g.value
  | Probe f -> f ()

let snapshot t =
  Hashtbl.fold (fun name src acc -> (name, read src) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_to_json snap =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Float v)) snap)

let to_json t = snapshot_to_json (snapshot t)
