(** Registry of named counters, gauges, and probes.

    Components register metrics under dotted names
    (["queue.bottleneck.drops"], ["engine.events_processed"]) and bump
    them directly — a counter increment is one mutable-field write, cheap
    enough for hot paths. {!snapshot} reads everything in name-sorted
    order so output is deterministic regardless of registration or
    hashing order. *)

type t

type counter
(** Monotonic integer count. *)

type gauge
(** Arbitrary float, last-write-wins. *)

val create : unit -> t

val counter : t -> string -> counter
(** Register a counter starting at 0.
    @raise Invalid_argument if the name is already registered. *)

val gauge : t -> string -> gauge
(** Register a gauge starting at 0.
    @raise Invalid_argument if the name is already registered. *)

val probe : t -> string -> (unit -> float) -> unit
(** Register a read-on-snapshot metric backed by a closure — use when the
    value already lives in a component (e.g. the engine's event count)
    and duplicating it would risk drift.
    @raise Invalid_argument if the name is already registered. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int
val set : gauge -> float -> unit
val value : gauge -> float

val snapshot : t -> (string * float) list
(** All metrics, sorted by name. Counters widen to float ([int] counts in
    a simulation fit a float mantissa). *)

val snapshot_to_json : (string * float) list -> Json.t
val to_json : t -> Json.t
