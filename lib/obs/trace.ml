module Time = Engine.Time

type event =
  | Enqueue of { flow : int; occ_bytes : int; occ_pkts : int }
  | Dequeue of { flow : int; occ_bytes : int; occ_pkts : int }
  | Drop of { flow : int; occ_bytes : int }
  | Mark of { flow : int; occ_bytes : int; occ_pkts : int }
  | Mark_state_flip of { marking : bool; occ_bytes : int }
  | Cwnd_cut of {
      flow : int;
      cwnd_before : float;
      cwnd_after : float;
      alpha : float;
    }
  | Fast_retransmit of { flow : int; snd_una : int }
  | Rto of { flow : int; snd_una : int; timeouts : int }
  | Flow_start of { flow : int }
  | Flow_done of { flow : int; segments : int }
  | Link_down of { occ_bytes : int }
  | Link_up of { occ_bytes : int }
  | Pkt_lost of { flow : int; size : int }
  | Mark_suppressed of { occ_bytes : int; occ_pkts : int }
  | Rate_changed of { rate_bps : float }
  | Pool_reject of {
      flow : int;
      occ_bytes : int;
      pool_used : int;
      limit_bytes : int;
    }
  | Pool_high_water of { pool_used : int }
  | No_route_drop of { flow : int; dst : int }

type record = { time : Time.t; component : string; event : event }

type cls =
  | C_enqueue
  | C_dequeue
  | C_drop
  | C_mark
  | C_mark_state_flip
  | C_cwnd_cut
  | C_fast_retransmit
  | C_rto
  | C_flow_start
  | C_flow_done
  | C_link_down
  | C_link_up
  | C_pkt_lost
  | C_mark_suppressed
  | C_rate_changed
  | C_pool_reject
  | C_pool_high_water
  | C_no_route_drop

let all_classes =
  [
    C_enqueue;
    C_dequeue;
    C_drop;
    C_mark;
    C_mark_state_flip;
    C_cwnd_cut;
    C_fast_retransmit;
    C_rto;
    C_flow_start;
    C_flow_done;
    C_link_down;
    C_link_up;
    C_pkt_lost;
    C_mark_suppressed;
    C_rate_changed;
    C_pool_reject;
    C_pool_high_water;
    C_no_route_drop;
  ]

let cls_index = function
  | C_enqueue -> 0
  | C_dequeue -> 1
  | C_drop -> 2
  | C_mark -> 3
  | C_mark_state_flip -> 4
  | C_cwnd_cut -> 5
  | C_fast_retransmit -> 6
  | C_rto -> 7
  | C_flow_start -> 8
  | C_flow_done -> 9
  | C_link_down -> 10
  | C_link_up -> 11
  | C_pkt_lost -> 12
  | C_mark_suppressed -> 13
  | C_rate_changed -> 14
  | C_pool_reject -> 15
  | C_pool_high_water -> 16
  | C_no_route_drop -> 17

let cls_of_event = function
  | Enqueue _ -> C_enqueue
  | Dequeue _ -> C_dequeue
  | Drop _ -> C_drop
  | Mark _ -> C_mark
  | Mark_state_flip _ -> C_mark_state_flip
  | Cwnd_cut _ -> C_cwnd_cut
  | Fast_retransmit _ -> C_fast_retransmit
  | Rto _ -> C_rto
  | Flow_start _ -> C_flow_start
  | Flow_done _ -> C_flow_done
  | Link_down _ -> C_link_down
  | Link_up _ -> C_link_up
  | Pkt_lost _ -> C_pkt_lost
  | Mark_suppressed _ -> C_mark_suppressed
  | Rate_changed _ -> C_rate_changed
  | Pool_reject _ -> C_pool_reject
  | Pool_high_water _ -> C_pool_high_water
  | No_route_drop _ -> C_no_route_drop

let cls_name = function
  | C_enqueue -> "enqueue"
  | C_dequeue -> "dequeue"
  | C_drop -> "drop"
  | C_mark -> "mark"
  | C_mark_state_flip -> "mark_state_flip"
  | C_cwnd_cut -> "cwnd_cut"
  | C_fast_retransmit -> "fast_retransmit"
  | C_rto -> "rto"
  | C_flow_start -> "flow_start"
  | C_flow_done -> "flow_done"
  | C_link_down -> "link_down"
  | C_link_up -> "link_up"
  | C_pkt_lost -> "pkt_lost"
  | C_mark_suppressed -> "mark_suppressed"
  | C_rate_changed -> "rate_changed"
  | C_pool_reject -> "pool_reject"
  | C_pool_high_water -> "pool_high_water"
  | C_no_route_drop -> "no_route_drop"

let cls_of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "enqueue" -> Some C_enqueue
  | "dequeue" -> Some C_dequeue
  | "drop" -> Some C_drop
  | "mark" -> Some C_mark
  | "mark_state_flip" -> Some C_mark_state_flip
  | "cwnd_cut" -> Some C_cwnd_cut
  | "fast_retransmit" -> Some C_fast_retransmit
  | "rto" -> Some C_rto
  | "flow_start" -> Some C_flow_start
  | "flow_done" -> Some C_flow_done
  | "link_down" -> Some C_link_down
  | "link_up" -> Some C_link_up
  | "pkt_lost" -> Some C_pkt_lost
  | "mark_suppressed" -> Some C_mark_suppressed
  | "rate_changed" -> Some C_rate_changed
  | "pool_reject" -> Some C_pool_reject
  | "pool_high_water" -> Some C_pool_high_water
  | "no_route_drop" -> Some C_no_route_drop
  | _ -> None

(* --- serialization --- *)

let record_to_json r =
  let fields =
    match r.event with
    | Enqueue { flow; occ_bytes; occ_pkts } | Dequeue { flow; occ_bytes; occ_pkts }
      ->
        [
          ("flow", Json.Int flow);
          ("occ_bytes", Json.Int occ_bytes);
          ("occ_pkts", Json.Int occ_pkts);
        ]
    | Drop { flow; occ_bytes } ->
        [ ("flow", Json.Int flow); ("occ_bytes", Json.Int occ_bytes) ]
    | Mark { flow; occ_bytes; occ_pkts } ->
        [
          ("flow", Json.Int flow);
          ("occ_bytes", Json.Int occ_bytes);
          ("occ_pkts", Json.Int occ_pkts);
        ]
    | Mark_state_flip { marking; occ_bytes } ->
        [ ("marking", Json.Bool marking); ("occ_bytes", Json.Int occ_bytes) ]
    | Cwnd_cut { flow; cwnd_before; cwnd_after; alpha } ->
        [
          ("flow", Json.Int flow);
          ("cwnd_before", Json.Float cwnd_before);
          ("cwnd_after", Json.Float cwnd_after);
          ("alpha", Json.Float alpha);
        ]
    | Fast_retransmit { flow; snd_una } ->
        [ ("flow", Json.Int flow); ("snd_una", Json.Int snd_una) ]
    | Rto { flow; snd_una; timeouts } ->
        [
          ("flow", Json.Int flow);
          ("snd_una", Json.Int snd_una);
          ("timeouts", Json.Int timeouts);
        ]
    | Flow_start { flow } -> [ ("flow", Json.Int flow) ]
    | Flow_done { flow; segments } ->
        [ ("flow", Json.Int flow); ("segments", Json.Int segments) ]
    | Link_down { occ_bytes } | Link_up { occ_bytes } ->
        [ ("occ_bytes", Json.Int occ_bytes) ]
    | Pkt_lost { flow; size } ->
        [ ("flow", Json.Int flow); ("size", Json.Int size) ]
    | Mark_suppressed { occ_bytes; occ_pkts } ->
        [ ("occ_bytes", Json.Int occ_bytes); ("occ_pkts", Json.Int occ_pkts) ]
    | Rate_changed { rate_bps } -> [ ("rate_bps", Json.Float rate_bps) ]
    | Pool_reject { flow; occ_bytes; pool_used; limit_bytes } ->
        [
          ("flow", Json.Int flow);
          ("occ_bytes", Json.Int occ_bytes);
          ("pool_used", Json.Int pool_used);
          ("limit_bytes", Json.Int limit_bytes);
        ]
    | Pool_high_water { pool_used } -> [ ("pool_used", Json.Int pool_used) ]
    | No_route_drop { flow; dst } ->
        [ ("flow", Json.Int flow); ("dst", Json.Int dst) ]
  in
  Json.Obj
    (("t_ns", Json.Int (Int64.to_int (Time.to_ns r.time)))
    :: ("event", Json.String (cls_name (cls_of_event r.event)))
    :: ("component", Json.String r.component)
    :: fields)

let record_of_json j =
  let ( let* ) = Result.bind in
  let field name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace record: missing field %S" name)
  in
  let int name =
    let* v = field name in
    match v with
    | Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "trace record: field %S is not an integer" name)
  in
  let num name =
    let* v = field name in
    match v with
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "trace record: field %S is not a number" name)
  in
  let bool name =
    let* v = field name in
    match v with
    | Json.Bool b -> Ok b
    | _ -> Error (Printf.sprintf "trace record: field %S is not a boolean" name)
  in
  let str name =
    let* v = field name in
    match v with
    | Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "trace record: field %S is not a string" name)
  in
  let* t_ns = int "t_ns" in
  let* ev = str "event" in
  let* component = str "component" in
  let* event =
    match ev with
    | "enqueue" ->
        let* flow = int "flow" in
        let* occ_bytes = int "occ_bytes" in
        let* occ_pkts = int "occ_pkts" in
        Ok (Enqueue { flow; occ_bytes; occ_pkts })
    | "dequeue" ->
        let* flow = int "flow" in
        let* occ_bytes = int "occ_bytes" in
        let* occ_pkts = int "occ_pkts" in
        Ok (Dequeue { flow; occ_bytes; occ_pkts })
    | "drop" ->
        let* flow = int "flow" in
        let* occ_bytes = int "occ_bytes" in
        Ok (Drop { flow; occ_bytes })
    | "mark" ->
        let* flow = int "flow" in
        let* occ_bytes = int "occ_bytes" in
        let* occ_pkts = int "occ_pkts" in
        Ok (Mark { flow; occ_bytes; occ_pkts })
    | "mark_state_flip" ->
        let* marking = bool "marking" in
        let* occ_bytes = int "occ_bytes" in
        Ok (Mark_state_flip { marking; occ_bytes })
    | "cwnd_cut" ->
        let* flow = int "flow" in
        let* cwnd_before = num "cwnd_before" in
        let* cwnd_after = num "cwnd_after" in
        let* alpha = num "alpha" in
        Ok (Cwnd_cut { flow; cwnd_before; cwnd_after; alpha })
    | "fast_retransmit" ->
        let* flow = int "flow" in
        let* snd_una = int "snd_una" in
        Ok (Fast_retransmit { flow; snd_una })
    | "rto" ->
        let* flow = int "flow" in
        let* snd_una = int "snd_una" in
        let* timeouts = int "timeouts" in
        Ok (Rto { flow; snd_una; timeouts })
    | "flow_start" ->
        let* flow = int "flow" in
        Ok (Flow_start { flow })
    | "flow_done" ->
        let* flow = int "flow" in
        let* segments = int "segments" in
        Ok (Flow_done { flow; segments })
    | "link_down" ->
        let* occ_bytes = int "occ_bytes" in
        Ok (Link_down { occ_bytes })
    | "link_up" ->
        let* occ_bytes = int "occ_bytes" in
        Ok (Link_up { occ_bytes })
    | "pkt_lost" ->
        let* flow = int "flow" in
        let* size = int "size" in
        Ok (Pkt_lost { flow; size })
    | "mark_suppressed" ->
        let* occ_bytes = int "occ_bytes" in
        let* occ_pkts = int "occ_pkts" in
        Ok (Mark_suppressed { occ_bytes; occ_pkts })
    | "rate_changed" ->
        let* rate_bps = num "rate_bps" in
        Ok (Rate_changed { rate_bps })
    | "pool_reject" ->
        let* flow = int "flow" in
        let* occ_bytes = int "occ_bytes" in
        let* pool_used = int "pool_used" in
        let* limit_bytes = int "limit_bytes" in
        Ok (Pool_reject { flow; occ_bytes; pool_used; limit_bytes })
    | "pool_high_water" ->
        let* pool_used = int "pool_used" in
        Ok (Pool_high_water { pool_used })
    | "no_route_drop" ->
        let* flow = int "flow" in
        let* dst = int "dst" in
        Ok (No_route_drop { flow; dst })
    | other -> Error (Printf.sprintf "trace record: unknown event %S" other)
  in
  Ok { time = Time.of_ns (Int64.of_int t_ns); component; event }

let csv_header = "time_ns,event,component,flow,occ_bytes,occ_pkts,detail"

let record_to_csv r =
  let flow, occ_bytes, occ_pkts, detail =
    match r.event with
    | Enqueue { flow; occ_bytes; occ_pkts }
    | Dequeue { flow; occ_bytes; occ_pkts }
    | Mark { flow; occ_bytes; occ_pkts } ->
        (Some flow, Some occ_bytes, Some occ_pkts, "")
    | Drop { flow; occ_bytes } -> (Some flow, Some occ_bytes, None, "")
    | Mark_state_flip { marking; occ_bytes } ->
        ( None,
          Some occ_bytes,
          None,
          Printf.sprintf "marking=%d" (if marking then 1 else 0) )
    | Cwnd_cut { flow; cwnd_before; cwnd_after; alpha } ->
        ( Some flow,
          None,
          None,
          Printf.sprintf "cwnd_before=%g;cwnd_after=%g;alpha=%g" cwnd_before
            cwnd_after alpha )
    | Fast_retransmit { flow; snd_una } ->
        (Some flow, None, None, Printf.sprintf "snd_una=%d" snd_una)
    | Rto { flow; snd_una; timeouts } ->
        ( Some flow,
          None,
          None,
          Printf.sprintf "snd_una=%d;timeouts=%d" snd_una timeouts )
    | Flow_start { flow } -> (Some flow, None, None, "")
    | Flow_done { flow; segments } ->
        (Some flow, None, None, Printf.sprintf "segments=%d" segments)
    | Link_down { occ_bytes } | Link_up { occ_bytes } ->
        (None, Some occ_bytes, None, "")
    | Pkt_lost { flow; size } ->
        (Some flow, None, None, Printf.sprintf "size=%d" size)
    | Mark_suppressed { occ_bytes; occ_pkts } ->
        (None, Some occ_bytes, Some occ_pkts, "")
    | Rate_changed { rate_bps } ->
        (None, None, None, Printf.sprintf "rate_bps=%g" rate_bps)
    | Pool_reject { flow; occ_bytes; pool_used; limit_bytes } ->
        ( Some flow,
          Some occ_bytes,
          None,
          Printf.sprintf "pool_used=%d;limit_bytes=%d" pool_used limit_bytes )
    | Pool_high_water { pool_used } ->
        (None, None, None, Printf.sprintf "pool_used=%d" pool_used)
    | No_route_drop { flow; dst } ->
        (Some flow, None, None, Printf.sprintf "dst=%d" dst)
  in
  let opt = function Some v -> string_of_int v | None -> "" in
  Printf.sprintf "%Ld,%s,%s,%s,%s,%s,%s"
    (Time.to_ns r.time)
    (cls_name (cls_of_event r.event))
    r.component (opt flow) (opt occ_bytes) (opt occ_pkts) detail

(* --- ring buffer --- *)

let dummy_record =
  { time = Time.zero; component = ""; event = Flow_start { flow = -1 } }

type ring = {
  buf : record array;
  cap : int;
  mutable next : int;
  mutable len : int;
  mutable total : int;
}

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Obs.Trace.ring: capacity must be positive";
  {
    buf = Array.make capacity dummy_record;
    cap = capacity;
    next = 0;
    len = 0;
    total = 0;
  }

let ring_push r x =
  r.buf.(r.next) <- x;
  r.next <- (r.next + 1) mod r.cap;
  if r.len < r.cap then r.len <- r.len + 1;
  r.total <- r.total + 1

let ring_length r = r.len
let ring_total r = r.total

let ring_records r =
  List.init r.len (fun i ->
      r.buf.(((r.next - r.len + i) mod r.cap + r.cap) mod r.cap))

(* --- sinks and tracers --- *)

type sink =
  | Null
  | Ring of ring
  | Csv of out_channel
  | Jsonl of out_channel
  | Fn of (record -> unit)

type t = { mutable mask : int; sink : sink }

let full_mask = (1 lsl List.length all_classes) - 1
let mask_of = List.fold_left (fun m c -> m lor (1 lsl cls_index c)) 0
let null = { mask = 0; sink = Null }

let create ?classes sink =
  (match sink with
  | Csv oc ->
      output_string oc csv_header;
      output_char oc '\n'
  | Null | Ring _ | Jsonl _ | Fn _ -> ());
  let mask =
    match classes with None -> full_mask | Some cs -> mask_of cs
  in
  { mask; sink }

let is_null t = match t.sink with Null -> true | _ -> false

let set_classes t cs =
  if is_null t then
    invalid_arg "Obs.Trace.set_classes: the null tracer is shared and immutable"
  else t.mask <- mask_of cs

let enabled t c = t.mask land (1 lsl cls_index c) <> 0

let dispatch sink r =
  match sink with
  | Null -> ()
  | Ring ring -> ring_push ring r
  | Csv oc ->
      output_string oc (record_to_csv r);
      output_char oc '\n'
  | Jsonl oc ->
      Json.write oc (record_to_json r);
      output_char oc '\n'
  | Fn f -> f r

let emit t r = if enabled t (cls_of_event r.event) then dispatch t.sink r

let enabled_classes t = List.filter (enabled t) all_classes

(* The tee accepts the union of both masks and lets each branch
   re-filter in its own [emit], so a record flows to exactly the
   tracers whose class sets admit it. The union mask is computed at
   tee time; widening a branch's classes afterwards requires a new
   tee. *)
let tee a b =
  { mask = a.mask lor b.mask; sink = Fn (fun r -> emit a r; emit b r) }
