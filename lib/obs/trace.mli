(** Structured event tracing with pluggable sinks.

    Components emit typed {!event}s through a {!t} (tracer). The tracer
    filters by event class (a bitmask) and forwards surviving records to
    its sink. The {!null} tracer has an empty mask, so the recommended
    guard

    {[
      if Obs.Trace.enabled tr Obs.Trace.C_drop then
        Obs.Trace.emit tr { time; component; event = Drop ... }
    ]}

    allocates nothing on an untraced run — [enabled] is one [land].

    File sinks take a caller-owned [out_channel]; this module never opens
    files or writes to stdout (dtlint R4). *)

(** A simulation micro-event. Occupancy fields record the queue state
    {e after} the event took effect. *)
type event =
  | Enqueue of { flow : int; occ_bytes : int; occ_pkts : int }
  | Dequeue of { flow : int; occ_bytes : int; occ_pkts : int }
  | Drop of { flow : int; occ_bytes : int }
      (** Tail drop; [occ_bytes] is the occupancy that refused the packet. *)
  | Mark of { flow : int; occ_bytes : int; occ_pkts : int }
      (** CE mark applied on enqueue. *)
  | Mark_state_flip of { marking : bool; occ_bytes : int }
      (** Hysteresis zone machine changed state (DT-DCTCP, PAPER §IV). *)
  | Cwnd_cut of {
      flow : int;
      cwnd_before : float;
      cwnd_after : float;
      alpha : float;
    }  (** DCTCP alpha-proportional window reduction. *)
  | Fast_retransmit of { flow : int; snd_una : int }
  | Rto of { flow : int; snd_una : int; timeouts : int }
  | Flow_start of { flow : int }
  | Flow_done of { flow : int; segments : int }
  | Link_down of { occ_bytes : int }
      (** Fault injection took the link down; [occ_bytes] is the queue
          occupancy at that instant. *)
  | Link_up of { occ_bytes : int }
  | Pkt_lost of { flow : int; size : int }
      (** Fault injection dropped an in-flight packet on the wire. *)
  | Mark_suppressed of { occ_bytes : int; occ_pkts : int }
      (** The marking policy asked for a CE mark but fault injection
          suppressed it ("non-ECN switch" degradation). *)
  | Rate_changed of { rate_bps : float }
      (** Fault injection changed the link rate mid-run. *)
  | Pool_reject of {
      flow : int;
      occ_bytes : int;
      pool_used : int;
      limit_bytes : int;
    }
      (** A shared {!Net.Buffer_mgr} pool refused the packet: the port sat
          at [occ_bytes] against an effective limit of [limit_bytes] with
          [pool_used] bytes committed pool-wide. Emitted alongside the
          plain [Drop] so occupancy-only consumers keep working. *)
  | Pool_high_water of { pool_used : int }
      (** The shared pool reached a new occupancy peak. *)
  | No_route_drop of { flow : int; dst : int }
      (** A switch received a packet whose destination has no routing
          entry and dropped it — almost always a topology wiring bug. *)

type record = { time : Engine.Time.t; component : string; event : event }

(** {1 Event classes} *)

(** One class per [event] constructor; the unit of filtering. *)
type cls =
  | C_enqueue
  | C_dequeue
  | C_drop
  | C_mark
  | C_mark_state_flip
  | C_cwnd_cut
  | C_fast_retransmit
  | C_rto
  | C_flow_start
  | C_flow_done
  | C_link_down
  | C_link_up
  | C_pkt_lost
  | C_mark_suppressed
  | C_rate_changed
  | C_pool_reject
  | C_pool_high_water
  | C_no_route_drop

val all_classes : cls list
val cls_of_event : event -> cls

val cls_name : cls -> string
(** Stable lowercase identifier, e.g. ["mark_state_flip"]; used in JSON,
    CSV, and the [--trace-events] CLI flag. *)

val cls_of_name : string -> cls option
(** Inverse of {!cls_name}; trims and lowercases first. *)

(** {1 Ring buffer} *)

type ring

val ring : capacity:int -> ring
(** Bounded in-memory sink keeping the most recent [capacity] records.
    @raise Invalid_argument if [capacity <= 0]. *)

val ring_length : ring -> int
(** Records currently held ([<= capacity]). *)

val ring_total : ring -> int
(** Records ever pushed, including overwritten ones. *)

val ring_records : ring -> record list
(** Held records, oldest first. *)

(** {1 Tracers} *)

type sink =
  | Null
  | Ring of ring
  | Csv of out_channel  (** One header line, then one CSV row per record. *)
  | Jsonl of out_channel  (** One JSON object per line. *)
  | Fn of (record -> unit)

type t

val null : t
(** Shared no-op tracer: every class disabled, sink [Null]. Safe as a
    default argument everywhere. *)

val create : ?classes:cls list -> sink -> t
(** New tracer accepting [classes] (default: all). A [Csv] sink gets its
    header line written immediately. *)

val enabled : t -> cls -> bool
val set_classes : t -> cls list -> unit
(** @raise Invalid_argument on the shared {!null} tracer. *)

val emit : t -> record -> unit
(** Forward to the sink if the record's class is enabled. Callers on hot
    paths should guard with {!enabled} to avoid constructing the record. *)

val enabled_classes : t -> cls list
(** The classes the tracer currently accepts, in {!all_classes} order.
    Used by the trace-file header so an offline consumer knows which
    classes the file can possibly contain. *)

val tee : t -> t -> t
(** [tee a b] forwards each record to both [a] and [b]. Its own mask is
    the union of the two masks {e at tee time}, and each branch
    re-filters with its own mask on delivery — so emit-site [enabled]
    guards fire when either branch wants the class, and each branch
    still receives exactly its own class set. This is how analysis
    attaches alongside a file sink without disturbing what the file
    records. *)

(** {1 Serialization} *)

val csv_header : string

val record_to_csv : record -> string
(** One row matching {!csv_header}; event-specific extras go in the
    [detail] column as [k=v;k=v]. *)

val record_to_json : record -> Json.t
(** Object with [t_ns], [event], [component], plus per-event fields. *)

val record_of_json : Json.t -> (record, string) result
(** Strict inverse of {!record_to_json}: every field the constructor
    carries is required (numbers tolerate int-vs-float spelling). This
    is what lets [dtsim analyze] replay a JSONL trace through the same
    streaming analyzers a live run uses. *)
