(** Run-provenance records.

    One JSON object per run capturing what would be needed to reproduce
    and compare it: scenario name, RNG seed, parameters, wall-clock
    duration, engine event count and throughput, and the final metrics
    snapshot. [dtsim] emits one per run ([--metrics-out]) and every bench
    section emits one ([BENCH_*.json]), so results are comparable across
    PRs. *)

type t = {
  name : string;  (** Scenario identifier, e.g. ["dtsim.longlived"]. *)
  seed : int64;
  params : (string * Json.t) list;
  wall_clock_s : float;
  events : int;  (** Engine events processed. *)
  events_per_s : float;
  metrics : (string * float) list;  (** Name-sorted. *)
  analysis : Json.t option;
      (** Streaming-analysis block ({!Analyze.to_json}), present only
          when the run was executed with analysis enabled. [None]
          serializes to the historic manifest shape, byte for byte. *)
}

val make :
  ?analysis:Json.t ->
  name:string ->
  seed:int64 ->
  params:(string * Json.t) list ->
  wall_clock_s:float ->
  events:int ->
  metrics:(string * float) list ->
  unit ->
  t
(** Computes [events_per_s] (0 when [wall_clock_s <= 0]) and sorts
    [metrics] by name. *)

val to_json : t -> Json.t
(** The seed is serialized as a decimal {e string}: int64 values can
    exceed the exact-integer range of common JSON readers. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; tolerates numbers written as ints or floats. *)

val write : out_channel -> t -> unit
(** [to_json] plus a trailing newline, into a caller-owned channel. *)
