(** Streaming trace analytics — the paper's oscillation quantities,
    computed online and offline from the same code.

    An analyzer consumes {!Trace.record}s in time order and maintains,
    with no full-series buffer:

    - Welford mean/variance of bottleneck occupancy, resampled onto a
      uniform grid (zero-order hold between occupancy-carrying events);
    - a peak–trough cycle detector against the (K1, K2) hysteresis band,
      yielding oscillation amplitude and period (means, maxima, and
      log2-binned histograms);
    - the marking-flip rate from [Mark_state_flip] events;
    - a flow-synchronization index: the fraction of flows that suffered
      a [Cwnd_cut] within the same RTT window (the paper's
      synchronized-backoff signature);
    - a dominant-frequency estimate from bounded-lag online
      autocorrelation ({!max_lag} grid samples of state, not the
      series), with {!Stats.Spectrum}'s FFT available offline as a
      cross-check.

    Everything the analyzer computes is a deterministic function of the
    record stream alone — no simulator clock, no wall clock — which is
    what makes the online path (analyzer teed into a live tracer) and
    the offline path ([dtsim analyze] replaying a JSONL file) produce
    {e bit-identical} analysis blocks. *)

type config = {
  sample_period : Engine.Time.span;
      (** Occupancy resampling grid period (also the spectral
          resolution: detectable periods are multiples of it). *)
  band_bytes : (int * int) option;
      (** Hysteresis band (low, high) in bytes — (K1, K2) for DT-DCTCP.
          Single-threshold protocols use a degenerate band widened by
          one segment either side of K; [None] (no marking threshold)
          disables the cycle detector. *)
  n_flows : int;
  rtt : Engine.Time.span;  (** Synchronization-index window length. *)
  segment_bytes : int;  (** For byte → packet conversions in output. *)
}

type t

val max_lag : int
(** Autocorrelation depth in grid samples (512): the longest detectable
    oscillation period is [max_lag * sample_period]. *)

val required_classes : Trace.cls list
(** The event classes the analyzer consumes. A trace file that filtered
    any of these out cannot reproduce the online analysis. *)

val create : ?on_sample:(float -> unit) -> config -> t
(** [on_sample] observes each grid sample (occupancy in bytes) as it is
    taken; it must not feed back into the analyzer. Used offline to
    collect the series for the FFT cross-check without giving the
    analyzer itself a buffer.
    @raise Invalid_argument if [sample_period <= 0], [n_flows <= 0],
    [rtt <= 0], [segment_bytes <= 0], or the band is inverted. *)

val feed : t -> Trace.record -> unit
(** Consume one record. Records must arrive in non-decreasing time
    order (the order any tracer emits them and any JSONL file stores
    them).
    @raise Invalid_argument if time goes backwards. *)

val tracer : t -> Trace.t
(** A tracer accepting exactly {!required_classes} whose sink is
    {!feed}. Tee it with a run's primary tracer to analyze online, or
    emit parsed file records through it to analyze offline — both paths
    then filter identically. *)

val finalize : t -> unit
(** Flush trailing grid samples and close the open synchronization
    window. Idempotent; {!to_json} and {!summary} call it. Feeding
    after finalization raises. *)

type summary = {
  records : int;
  duration_s : float;
  occ_mean_pkts : float;
  occ_std_pkts : float;
  cycles : int;
  amp_mean_pkts : float;  (** 0 when no complete cycle was seen. *)
  amp_max_pkts : float;
  period_mean_s : float;
  flip_rate_hz : float;
  sync_mean : float;  (** Mean over RTT windows with at least one cut. *)
  sync_max : float;
  dominant_freq_hz : float option;
}

val summary : t -> summary

val to_json : t -> Json.t
(** The [analysis] block: a deterministic JSON object (fixed field
    order, floats bit-exact) embedded into {!Manifest} by [Exp.Runner]
    and printed by [dtsim analyze]. *)

val spectrum_note : t -> string option
(** Why [dominant_freq_hz] is absent — ["series too short ..."],
    ["no variation ..."], ... — or [None] when a peak was found. *)

(** First record of a JSONL trace file: carries the analyzer config and
    the writing tracer's enabled classes, so [dtsim analyze] is
    self-contained. *)
module Header : sig
  type header = { config : config; classes : Trace.cls list }

  val is_header : Json.t -> bool
  (** Distinguishes a header object from an ordinary trace record. *)

  val to_json : header -> Json.t
  val of_json : Json.t -> (header, string) result
end
