(** Wall-clock profiling — the only sanctioned wall-clock read site.

    dtlint rule R7 forbids [Sys.time] / [Unix.gettimeofday] / [Unix.time]
    everywhere outside [lib/obs]: a wall-clock read leaking into
    simulation logic would silently break determinism (same hazard family
    as R1's ambient [Random]). Code that legitimately needs elapsed real
    time — bench sections, dtsim throughput reporting — goes through this
    module. *)

val wall_clock : unit -> float
(** Seconds since the epoch ([Unix.gettimeofday]). Never feed this into
    simulation state. *)

type run = {
  wall_s : float;  (** Elapsed real time. *)
  events : int;  (** Engine events executed during the run. *)
  events_per_s : float;  (** [0.] when [wall_s] is not positive. *)
}

val run_sim : ?until:Engine.Time.t -> Engine.Sim.t -> run
(** [Sim.run] bracketed with wall-clock and event-count accounting. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), elapsed_seconds)]. *)
