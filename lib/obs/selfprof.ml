module Event_class = Engine.Event_class

let default_sample_every = 32
let hist_bins = 63

let log2_bin v =
  let rec go b v = if v <= 1 then b else go (b + 1) (v lsr 1) in
  go 0 v

type t = {
  sample_every : int;
  counts : int array;  (* every executed event, per class *)
  mutable total : int;
  sampled : int array;  (* timed events, per class *)
  time_s : float array;  (* summed wall-clock of timed events *)
  hist : int array array;  (* per class, log2-binned duration in ns *)
  (* in-flight sample: wall-clock at [before], the class it was taken
     for, and whether one is pending. Events never nest (the engine
     executes actions sequentially), so one slot suffices. [t0] lives in
     a float array so storing a reading never re-boxes it. *)
  t0 : float array;
  mutable pending_cls : int;
  mutable pending : bool;
}

let create ?(sample_every = default_sample_every) () =
  if sample_every <= 0 then
    invalid_arg "Obs.Selfprof.create: sample_every must be positive";
  {
    sample_every;
    counts = Array.make Event_class.count 0;
    total = 0;
    sampled = Array.make Event_class.count 0;
    time_s = Array.make Event_class.count 0.;
    hist = Array.init Event_class.count (fun _ -> Array.make hist_bins 0);
    t0 = [| 0. |];
    pending_cls = 0;
    pending = false;
  }

let before t cls =
  t.counts.(cls) <- t.counts.(cls) + 1;
  t.total <- t.total + 1;
  if t.total mod t.sample_every = 0 then begin
    t.pending_cls <- cls;
    t.pending <- true;
    t.t0.(0) <- Profile.wall_clock ()
  end

let after t cls =
  if t.pending && cls = t.pending_cls then begin
    let dt = Profile.wall_clock () -. t.t0.(0) in
    t.pending <- false;
    if dt >= 0. then begin
      t.sampled.(cls) <- t.sampled.(cls) + 1;
      t.time_s.(cls) <- t.time_s.(cls) +. dt;
      let ns = int_of_float (dt *. 1e9) in
      t.hist.(cls).(log2_bin ns) <- t.hist.(cls).(log2_bin ns) + 1
    end
  end

let attach t sim =
  Engine.Sim.set_profiler sim
    ~before:(fun cls -> before t cls)
    ~after:(fun cls -> after t cls)

let detach sim = Engine.Sim.clear_profiler sim

let total t = t.total
let count t cls = t.counts.(Event_class.index cls)
let sampled t cls = t.sampled.(Event_class.index cls)

let mean_us t cls =
  let i = Event_class.index cls in
  if t.sampled.(i) = 0 then 0.
  else t.time_s.(i) /. float_of_int t.sampled.(i) *. 1e6

let sampled_total t = Array.fold_left ( + ) 0 t.sampled

let hist_to_json h =
  let entries = ref [] in
  for b = hist_bins - 1 downto 0 do
    if h.(b) > 0 then
      entries := Json.List [ Json.Int (1 lsl b); Json.Int h.(b) ] :: !entries
  done;
  Json.List !entries

let to_json t =
  let classes =
    Array.to_list
      (Array.map
         (fun cls ->
           let i = Event_class.index cls in
           let mean_us =
             if t.sampled.(i) = 0 then 0.
             else t.time_s.(i) /. float_of_int t.sampled.(i) *. 1e6
           in
           Json.Obj
             [
               ("class", Json.String (Event_class.name cls));
               ("count", Json.Int t.counts.(i));
               ("sampled", Json.Int t.sampled.(i));
               ("time_s", Json.Float t.time_s.(i));
               ("mean_us", Json.Float mean_us);
               ("hist_ns_log2", hist_to_json t.hist.(i));
             ])
         Event_class.all)
  in
  Json.Obj
    [
      ("sample_every", Json.Int t.sample_every);
      ("events_total", Json.Int t.total);
      ("events_sampled", Json.Int (sampled_total t));
      ("classes", Json.List classes);
    ]
