module Sim = Engine.Sim
module Time = Engine.Time

type mode = Every_change | Sampled of Time.span

type t = {
  queue : Queue_disc.t;
  pkts : Stats.Timeseries.t;
  bytes : Stats.Timeseries.t;
  mutable active : bool;
  mutable sampler : Obs.Sampler.t option;
}

let record t now =
  Stats.Timeseries.add t.pkts now
    (float_of_int (Queue_disc.occupancy_packets t.queue));
  Stats.Timeseries.add t.bytes now
    (float_of_int (Queue_disc.occupancy_bytes t.queue))

let on_queue sim queue ~mode ?stop_at () =
  let t =
    {
      queue;
      pkts = Stats.Timeseries.create ();
      bytes = Stats.Timeseries.create ();
      active = true;
      sampler = None;
    }
  in
  record t (Sim.now sim);
  (match mode with
  | Every_change ->
      Queue_disc.set_observer queue (fun () ->
          if t.active then record t (Sim.now sim))
  | Sampled period ->
      if Int64.compare period 0L <= 0 then
        invalid_arg "Trace.on_queue: non-positive sampling period";
      let stop =
        match stop_at with
        | Some s -> s
        | None -> invalid_arg "Trace.on_queue: Sampled requires stop_at"
      in
      t.sampler <-
        Some (Obs.Sampler.start sim ~period ~stop_at:stop (record t)));
  t

let series_packets t = t.pkts
let series_bytes t = t.bytes

let detach t =
  t.active <- false;
  Option.iter Obs.Sampler.stop t.sampler
