type t = {
  sim : Engine.Sim.t;
  id : int;
  mutable nic : Port.t option;
  handlers : (int, Packet.t -> unit) Hashtbl.t;
  mutable unclaimed : int;
}

let create sim ~id = { sim; id; nic = None; handlers = Hashtbl.create 16; unclaimed = 0 }

let id t = t.id
let sim t = t.sim

let attach_nic t port =
  match t.nic with
  | Some _ -> invalid_arg "Host.attach_nic: NIC already attached"
  | None -> t.nic <- Some port

let nic t =
  match t.nic with
  | Some p -> p
  | None -> invalid_arg "Host.nic: no NIC attached"

let send t pkt = Port.send (nic t) pkt

let receive t pkt =
  (* [find], not [find_opt]: this runs per delivered packet and the
     option would be a per-packet allocation. *)
  match Hashtbl.find t.handlers pkt.Packet.flow with
  | handler -> handler pkt
  | exception Not_found -> t.unclaimed <- t.unclaimed + 1

let bind_flow t ~flow handler =
  if Hashtbl.mem t.handlers flow then
    invalid_arg "Host.bind_flow: flow already bound";
  Hashtbl.replace t.handlers flow handler

let unbind_flow t ~flow = Hashtbl.remove t.handlers flow
let unclaimed t = t.unclaimed
