type t = {
  sim : Engine.Sim.t;
  st : Packet.store;
  id : int;
  mutable nic : Port.t option;
  (* Dense flow-id -> handler table; flow ids are small and dense in
     every topology the builders produce, so demultiplexing a delivered
     packet is one array load instead of a [Hashtbl.find]. Unbound slots
     hold [unbound] (compared by [==]) rather than an option, which
     would box every bound handler lookup. *)
  mutable handlers : (Packet.t -> unit) array;
  unbound : Packet.t -> unit;
  mutable unclaimed : int;
}

let create sim ~id =
  let st = Packet.store_of sim in
  let rec t =
    {
      sim;
      st;
      id;
      nic = None;
      handlers = [||];
      unbound;
      unclaimed = 0;
    }
  and unbound pkt =
    (* No transport claimed this flow: the host consumes the packet. *)
    Packet.free t.st pkt;
    t.unclaimed <- t.unclaimed + 1
  in
  t.handlers <- Array.make 16 unbound;
  t

let id t = t.id
let sim t = t.sim

let attach_nic t port =
  match t.nic with
  | Some _ -> invalid_arg "Host.attach_nic: NIC already attached"
  | None -> t.nic <- Some port

let nic t =
  match t.nic with
  | Some p -> p
  | None -> invalid_arg "Host.nic: no NIC attached"

let send t pkt = Port.send (nic t) pkt

let receive t pkt =
  let flow = Packet.flow t.st pkt in
  if flow >= 0 && flow < Array.length t.handlers then t.handlers.(flow) pkt
  else t.unbound pkt

let bind_flow t ~flow handler =
  if flow < 0 then invalid_arg "Host.bind_flow: negative flow id";
  let cap = Array.length t.handlers in
  if flow >= cap then begin
    let ncap =
      let rec fit c = if flow < c then c else fit (2 * c) in
      fit (2 * cap)
    in
    let handlers = Array.make ncap t.unbound in
    Array.blit t.handlers 0 handlers 0 cap;
    t.handlers <- handlers
  end;
  if t.handlers.(flow) != t.unbound then
    invalid_arg "Host.bind_flow: flow already bound";
  t.handlers.(flow) <- handler

let unbind_flow t ~flow =
  if flow >= 0 && flow < Array.length t.handlers then
    t.handlers.(flow) <- t.unbound

let unclaimed t = t.unclaimed
