module Trace_ev = Obs.Trace

type t = {
  sim : Engine.Sim.t;
  st : Packet.store;
  id : int;
  name : string;
  mutable ports : Port.t array;
  mutable nports : int;
  (* Dense destination -> egress table, indexed by host id. Values
     [>= 0] are single egress-port indices; [-1] marks no route; values
     [<= -2] encode an ECMP group index as [-2 - gidx], so the common
     single-port case keeps its one-load one-compare fast path and
     multi-path routing costs nothing to topologies that never install a
     group. Host ids are small and dense in every topology the builders
     produce, so this replaces a per-forwarded-packet [Hashtbl.find]
     (hashing plus bucket chase) with one array load. *)
  mutable routes : int array;
  mutable groups : Ecmp.group array;
  mutable no_route : int;
  pool : Buffer_mgr.pool option;
  tracer : Trace_ev.t;
}

let create sim ~id ?(buffer = Buffer_mgr.Static) ?(tracer = Trace_ev.null)
    ?metrics () =
  let pool =
    match buffer with
    | Buffer_mgr.Static -> None
    | Buffer_mgr.Dynamic_threshold { pool_bytes; alpha } ->
        Some (Buffer_mgr.create_pool ~pool_bytes ~alpha)
  in
  let t =
    {
      sim;
      st = Packet.store_of sim;
      id;
      name = Printf.sprintf "sw%d" id;
      ports = [||];
      nports = 0;
      routes = Array.make 16 (-1);
      groups = [||];
      no_route = 0;
      pool;
      tracer;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.probe m
        (Printf.sprintf "switch.sw%d.no_route_drops" id)
        (fun () -> float_of_int t.no_route));
  t

let id t = t.id

let port_buffer t ~capacity_bytes =
  match t.pool with
  | None -> Buffer_mgr.solo ~capacity_bytes
  | Some pool -> Buffer_mgr.attach pool

let add_port t port =
  if t.nports = Array.length t.ports then begin
    let cap = Stdlib.max 4 (2 * Array.length t.ports) in
    let ports = Array.make cap port in
    Array.blit t.ports 0 ports 0 t.nports;
    t.ports <- ports
  end;
  t.ports.(t.nports) <- port;
  t.nports <- t.nports + 1;
  t.nports - 1

let port t i =
  if i < 0 || i >= t.nports then invalid_arg "Switch.port: bad index";
  t.ports.(i)

let port_count t = t.nports

let ensure_route_capacity t dst =
  let cap = Array.length t.routes in
  if dst >= cap then begin
    let ncap =
      let rec fit c = if dst < c then c else fit (2 * c) in
      fit (2 * cap)
    in
    let routes = Array.make ncap (-1) in
    Array.blit t.routes 0 routes 0 cap;
    t.routes <- routes
  end

let set_route t ~dst ~port =
  if port < 0 || port >= t.nports then
    invalid_arg "Switch.set_route: bad port index";
  if dst < 0 then invalid_arg "Switch.set_route: negative destination";
  ensure_route_capacity t dst;
  t.routes.(dst) <- port

let add_group t ~salt ~ports =
  Array.iter
    (fun p ->
      if p < 0 || p >= t.nports then
        invalid_arg "Switch.add_group: bad port index")
    ports;
  let g = Ecmp.make_group ~salt ~ports in
  t.groups <- Array.append t.groups [| g |];
  Array.length t.groups - 1

let group_count t = Array.length t.groups

let set_group_route t ~dst ~group =
  if group < 0 || group >= Array.length t.groups then
    invalid_arg "Switch.set_group_route: bad group index";
  if dst < 0 then invalid_arg "Switch.set_group_route: negative destination";
  ensure_route_capacity t dst;
  t.routes.(dst) <- -2 - group

let receive t pkt =
  let dst = Packet.dst t.st pkt in
  let i = if dst < Array.length t.routes then t.routes.(dst) else -1 in
  if i >= 0 then Port.send t.ports.(i) pkt
  else if i < -1 then
    (* ECMP: resolve the group per flow; same 5-tuple, same port. *)
    let p =
      Ecmp.select t.groups.(-2 - i) ~src:(Packet.src t.st pkt) ~dst
        ~flow:(Packet.flow t.st pkt)
    in
    Port.send t.ports.(p) pkt
  else begin
    if Trace_ev.enabled t.tracer Trace_ev.C_no_route_drop then
      Trace_ev.emit t.tracer
        {
          Trace_ev.time = Engine.Sim.now t.sim;
          component = t.name;
          event =
            Trace_ev.No_route_drop { flow = Packet.flow t.st pkt; dst };
        };
    (* The switch consumed the packet by dropping it. *)
    Packet.free t.st pkt;
    t.no_route <- t.no_route + 1
  end

let route_port t ~src ~dst ~flow =
  let i =
    if dst >= 0 && dst < Array.length t.routes then t.routes.(dst) else -1
  in
  if i >= 0 then i
  else if i < -1 then Ecmp.select t.groups.(-2 - i) ~src ~dst ~flow
  else -1

let no_route_drops t = t.no_route
