type t = {
  sim : Engine.Sim.t;
  id : int;
  mutable ports : Port.t array;
  mutable nports : int;
  routes : (int, int) Hashtbl.t;
  mutable no_route : int;
  pool : Buffer_mgr.pool option;
}

let create sim ~id ?(buffer = Buffer_mgr.Static) () =
  let pool =
    match buffer with
    | Buffer_mgr.Static -> None
    | Buffer_mgr.Dynamic_threshold { pool_bytes; alpha } ->
        Some (Buffer_mgr.create_pool ~pool_bytes ~alpha)
  in
  {
    sim;
    id;
    ports = [||];
    nports = 0;
    routes = Hashtbl.create 16;
    no_route = 0;
    pool;
  }

let id t = t.id

let port_buffer t ~capacity_bytes =
  match t.pool with
  | None -> Buffer_mgr.solo ~capacity_bytes
  | Some pool -> Buffer_mgr.attach pool

let add_port t port =
  if t.nports = Array.length t.ports then begin
    let cap = Stdlib.max 4 (2 * Array.length t.ports) in
    let ports = Array.make cap port in
    Array.blit t.ports 0 ports 0 t.nports;
    t.ports <- ports
  end;
  t.ports.(t.nports) <- port;
  t.nports <- t.nports + 1;
  t.nports - 1

let port t i =
  if i < 0 || i >= t.nports then invalid_arg "Switch.port: bad index";
  t.ports.(i)

let port_count t = t.nports

let set_route t ~dst ~port =
  if port < 0 || port >= t.nports then
    invalid_arg "Switch.set_route: bad port index";
  Hashtbl.replace t.routes dst port

let receive t pkt =
  (* [find], not [find_opt]: this runs per forwarded packet and the
     option would be a per-packet allocation. *)
  match Hashtbl.find t.routes pkt.Packet.dst with
  | i -> Port.send t.ports.(i) pkt
  | exception Not_found -> t.no_route <- t.no_route + 1

let no_route_drops t = t.no_route
