type t = {
  sim : Engine.Sim.t;
  st : Packet.store;
  id : int;
  mutable ports : Port.t array;
  mutable nports : int;
  (* Dense destination -> egress-port table, indexed by host id; -1
     marks no route. Host ids are small and dense in every topology the
     builders produce, so this replaces a per-forwarded-packet
     [Hashtbl.find] (hashing plus bucket chase) with one array load. *)
  mutable routes : int array;
  mutable no_route : int;
  pool : Buffer_mgr.pool option;
}

let create sim ~id ?(buffer = Buffer_mgr.Static) () =
  let pool =
    match buffer with
    | Buffer_mgr.Static -> None
    | Buffer_mgr.Dynamic_threshold { pool_bytes; alpha } ->
        Some (Buffer_mgr.create_pool ~pool_bytes ~alpha)
  in
  {
    sim;
    st = Packet.store_of sim;
    id;
    ports = [||];
    nports = 0;
    routes = Array.make 16 (-1);
    no_route = 0;
    pool;
  }

let id t = t.id

let port_buffer t ~capacity_bytes =
  match t.pool with
  | None -> Buffer_mgr.solo ~capacity_bytes
  | Some pool -> Buffer_mgr.attach pool

let add_port t port =
  if t.nports = Array.length t.ports then begin
    let cap = Stdlib.max 4 (2 * Array.length t.ports) in
    let ports = Array.make cap port in
    Array.blit t.ports 0 ports 0 t.nports;
    t.ports <- ports
  end;
  t.ports.(t.nports) <- port;
  t.nports <- t.nports + 1;
  t.nports - 1

let port t i =
  if i < 0 || i >= t.nports then invalid_arg "Switch.port: bad index";
  t.ports.(i)

let port_count t = t.nports

let set_route t ~dst ~port =
  if port < 0 || port >= t.nports then
    invalid_arg "Switch.set_route: bad port index";
  if dst < 0 then invalid_arg "Switch.set_route: negative destination";
  let cap = Array.length t.routes in
  if dst >= cap then begin
    let ncap =
      let rec fit c = if dst < c then c else fit (2 * c) in
      fit (2 * cap)
    in
    let routes = Array.make ncap (-1) in
    Array.blit t.routes 0 routes 0 cap;
    t.routes <- routes
  end;
  t.routes.(dst) <- port

let receive t pkt =
  let dst = Packet.dst t.st pkt in
  let i = if dst < Array.length t.routes then t.routes.(dst) else -1 in
  if i >= 0 then Port.send t.ports.(i) pkt
  else begin
    (* The switch consumed the packet by dropping it. *)
    Packet.free t.st pkt;
    t.no_route <- t.no_route + 1
  end

let no_route_drops t = t.no_route
