module Sim = Engine.Sim
module Time = Engine.Time

let default_access_buffer = 512 * 1024

let connect_host_to_switch sim host switch ~rate_bps ~delay
    ?(host_buffer = default_access_buffer)
    ?(switch_buffer = default_access_buffer)
    ?(switch_marking = Marking.none ()) ?switch_tracer ?switch_metrics () =
  (* Host NICs always own a private buffer; only switch-side queues can
     sit on a shared pool (the switch decides via [port_buffer]). *)
  let host_q =
    Queue_disc.create sim ~buffer:(Buffer_mgr.solo ~capacity_bytes:host_buffer)
      ~name:(Printf.sprintf "host%d-nic" (Host.id host))
      ()
  in
  let nic =
    Port.create sim ~rate_bps ~delay ~queue:host_q ~deliver:(fun pkt ->
        Switch.receive switch pkt)
  in
  Host.attach_nic host nic;
  let sw_q =
    Queue_disc.create sim
      ~buffer:(Switch.port_buffer switch ~capacity_bytes:switch_buffer)
      ~marking:switch_marking ?tracer:switch_tracer ?metrics:switch_metrics
      ~name:(Printf.sprintf "sw%d->host%d" (Switch.id switch) (Host.id host))
      ()
  in
  let sw_port =
    Port.create sim ~rate_bps ~delay ~queue:sw_q ~deliver:(fun pkt ->
        Host.receive host pkt)
  in
  let idx = Switch.add_port switch sw_port in
  Switch.set_route switch ~dst:(Host.id host) ~port:idx;
  idx

let connect_switches sim a b ~rate_bps ~delay
    ?(buffer_ab = default_access_buffer) ?(buffer_ba = default_access_buffer)
    ?(marking_ab = Marking.none ()) ?(marking_ba = Marking.none ())
    ?tracer_ab ?tracer_ba ?metrics_ab ?metrics_ba () =
  let q_ab =
    Queue_disc.create sim
      ~buffer:(Switch.port_buffer a ~capacity_bytes:buffer_ab)
      ~marking:marking_ab ?tracer:tracer_ab ?metrics:metrics_ab
      ~name:(Printf.sprintf "sw%d->sw%d" (Switch.id a) (Switch.id b))
      ()
  in
  let port_ab =
    Port.create sim ~rate_bps ~delay ~queue:q_ab ~deliver:(fun pkt ->
        Switch.receive b pkt)
  in
  let ia = Switch.add_port a port_ab in
  let q_ba =
    Queue_disc.create sim
      ~buffer:(Switch.port_buffer b ~capacity_bytes:buffer_ba)
      ~marking:marking_ba ?tracer:tracer_ba ?metrics:metrics_ba
      ~name:(Printf.sprintf "sw%d->sw%d" (Switch.id b) (Switch.id a))
      ()
  in
  let port_ba =
    Port.create sim ~rate_bps ~delay ~queue:q_ba ~deliver:(fun pkt ->
        Switch.receive a pkt)
  in
  let ib = Switch.add_port b port_ba in
  (ia, ib)

type dumbbell = {
  senders : Host.t array;
  receiver : Host.t;
  switch : Switch.t;
  bottleneck : Port.t;
}

let dumbbell sim ~n_senders ~bottleneck_rate_bps ?access_rate_bps ~rtt
    ~buffer_bytes ?(buffer = Buffer_mgr.Static) ~marking ?tracer ?metrics () =
  if n_senders <= 0 then invalid_arg "Topology.dumbbell: need senders";
  let access_rate_bps =
    match access_rate_bps with Some r -> r | None -> bottleneck_rate_bps
  in
  (* Four propagation traversals per round trip: sender->switch,
     switch->receiver and back. *)
  let leg = Int64.div rtt 4L in
  let switch = Switch.create sim ~id:0 ~buffer () in
  let senders =
    Array.init n_senders (fun i ->
        let host = Host.create sim ~id:i in
        ignore
          (connect_host_to_switch sim host switch ~rate_bps:access_rate_bps
             ~delay:leg ());
        host)
  in
  let receiver = Host.create sim ~id:n_senders in
  let idx =
    connect_host_to_switch sim receiver switch ~rate_bps:bottleneck_rate_bps
      ~delay:leg ~switch_buffer:buffer_bytes ~switch_marking:marking
      ?switch_tracer:tracer ?switch_metrics:metrics ()
  in
  { senders; receiver; switch; bottleneck = Switch.port switch idx }

type parking_lot = {
  chain : Switch.t array;
  long_src : Host.t;
  long_dst : Host.t;
  cross_srcs : Host.t array;
  cross_dsts : Host.t array;
  trunks : Port.t array;
}

let parking_lot sim ~hops ~rate_bps ?access_rate_bps ?link_delay
    ~buffer_bytes ?(buffer = Buffer_mgr.Static) ~marking () =
  if hops <= 0 then invalid_arg "Topology.parking_lot: need hops";
  let access_rate_bps =
    match access_rate_bps with Some r -> r | None -> 4. *. rate_bps
  in
  let delay =
    match link_delay with Some d -> d | None -> Time.span_of_us 12.5
  in
  (* One pool per switch: each chain element models its own ASIC. *)
  let chain =
    Array.init (hops + 1) (fun i -> Switch.create sim ~id:i ~buffer ())
  in
  (* Hosts: ids 0 = long_src, 1 = long_dst, then cross pairs. The location
     of every host (which switch it hangs off) drives the chain routing. *)
  let long_src = Host.create sim ~id:0 in
  let long_dst = Host.create sim ~id:1 in
  let cross_srcs = Array.init hops (fun i -> Host.create sim ~id:(2 + (2 * i))) in
  let cross_dsts =
    Array.init hops (fun i -> Host.create sim ~id:(3 + (2 * i)))
  in
  let location = Hashtbl.create 16 in
  Hashtbl.replace location (Host.id long_src) 0;
  Hashtbl.replace location (Host.id long_dst) hops;
  Array.iteri
    (fun i h -> Hashtbl.replace location (Host.id h) i)
    cross_srcs;
  Array.iteri
    (fun i h -> Hashtbl.replace location (Host.id h) (i + 1))
    cross_dsts;
  let attach host sw =
    ignore
      (connect_host_to_switch sim host sw ~rate_bps:access_rate_bps ~delay ())
  in
  attach long_src chain.(0);
  attach long_dst chain.(hops);
  Array.iteri (fun i h -> attach h chain.(i)) cross_srcs;
  Array.iteri (fun i h -> attach h chain.(i + 1)) cross_dsts;
  (* Trunks with per-hop marking forward, plain drop-tail backward. *)
  let right_port = Array.make (hops + 1) (-1) in
  let left_port = Array.make (hops + 1) (-1) in
  for i = 0 to hops - 1 do
    let fwd, back =
      connect_switches sim chain.(i) chain.(i + 1) ~rate_bps ~delay
        ~buffer_ab:buffer_bytes ~marking_ab:(marking ()) ()
    in
    right_port.(i) <- fwd;
    left_port.(i + 1) <- back
  done;
  let trunks =
    Array.init hops (fun i -> Switch.port chain.(i) right_port.(i))
  in
  (* Chain routing: hosts at other switches go left or right. *)
  Hashtbl.iter
    (fun host_id loc ->
      Array.iteri
        (fun sw_idx sw ->
          if loc > sw_idx then
            Switch.set_route sw ~dst:host_id ~port:right_port.(sw_idx)
          else if loc < sw_idx then
            Switch.set_route sw ~dst:host_id ~port:left_port.(sw_idx))
        chain)
    location;
  { chain; long_src; long_dst; cross_srcs; cross_dsts; trunks }

type star = {
  aggregator : Host.t;
  workers : Host.t array;
  root : Switch.t;
  leaves : Switch.t array;
  star_bottleneck : Port.t;
}

let star_testbed sim ?(n_leaves = 3) ?(workers_per_leaf = 3) ~rate_bps
    ?host_delay ?trunk_delay ~bottleneck_buffer
    ?(leaf_buffer = 512 * 1024) ?(buffer = Buffer_mgr.Static) ~marking () =
  if n_leaves <= 0 || workers_per_leaf <= 0 then
    invalid_arg "Topology.star_testbed: need leaves and workers";
  let host_delay =
    match host_delay with Some d -> d | None -> Time.span_of_us 25.
  in
  let trunk_delay =
    match trunk_delay with Some d -> d | None -> Time.span_of_us 25.
  in
  (* The buffer config applies to the root (the shared-memory ASIC under
     study — it owns the bottleneck port); leaves stay Static. *)
  let root = Switch.create sim ~id:0 ~buffer () in
  let leaves =
    Array.init n_leaves (fun i -> Switch.create sim ~id:(i + 1) ())
  in
  let n_workers = n_leaves * workers_per_leaf in
  let workers =
    Array.init n_workers (fun w ->
        let leaf = leaves.(w / workers_per_leaf) in
        let host = Host.create sim ~id:w in
        ignore
          (connect_host_to_switch sim host leaf ~rate_bps ~delay:host_delay
             ~switch_buffer:leaf_buffer ());
        host)
  in
  let aggregator = Host.create sim ~id:n_workers in
  let agg_port_idx =
    connect_host_to_switch sim aggregator root ~rate_bps ~delay:host_delay
      ~switch_buffer:bottleneck_buffer ~switch_marking:marking ()
  in
  (* Trunks and routing: root knows each worker lives behind its leaf;
     each leaf defaults everything else up to the root. *)
  Array.iteri
    (fun li leaf ->
      let root_port, leaf_uplink =
        connect_switches sim root leaf ~rate_bps ~delay:trunk_delay
          ~buffer_ab:leaf_buffer ~buffer_ba:leaf_buffer ()
      in
      for w = li * workers_per_leaf to ((li + 1) * workers_per_leaf) - 1 do
        Switch.set_route root ~dst:w ~port:root_port
      done;
      Switch.set_route leaf ~dst:(Host.id aggregator) ~port:leaf_uplink;
      (* Workers on other leaves are reachable via the root too. *)
      for w = 0 to n_workers - 1 do
        if w / workers_per_leaf <> li then
          Switch.set_route leaf ~dst:w ~port:leaf_uplink
      done)
    leaves;
  {
    aggregator;
    workers;
    root;
    leaves;
    star_bottleneck = Switch.port root agg_port_idx;
  }

type fat_tree = {
  k : int;
  hosts : Host.t array;
  edges : Switch.t array;
  aggs : Switch.t array;
  cores : Switch.t array;
}

(* Standard k-ary fat tree (Al-Fares et al.): k pods, each with k/2 edge
   and k/2 aggregation switches; k/2 hosts per edge switch; (k/2)^2 core
   switches. Aggregation switch [a] (position within its pod) uplinks to
   cores [a*(k/2) .. a*(k/2)+k/2-1], so every core sees exactly one
   aggregation switch per pod. Downward routing is deterministic (the
   dst's pod, then its rack); upward routing is an ECMP group over the
   switch's uplinks, salted per switch from the sim's Rng stream. *)
let fat_tree sim ~k ?(rate_bps = 1e9) ?link_delay
    ?(queue_bytes = default_access_buffer) ?(edge_buffer = Buffer_mgr.Static)
    ?(agg_buffer = Buffer_mgr.Static) ?(core_buffer = Buffer_mgr.Static)
    ~marking ?tracer ?metrics () =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Topology.fat_tree: k must be even and >= 2";
  let half = k / 2 in
  let n_hosts = k * k * k / 4 in
  let hosts_per_pod = half * half in
  let n_edges = k * half in
  let n_aggs = k * half in
  let n_cores = half * half in
  let delay =
    match link_delay with Some d -> d | None -> Time.span_of_us 5.
  in
  let rng = Sim.rng sim in
  let mk id buffer = Switch.create sim ~id ~buffer ?tracer ?metrics () in
  let edges = Array.init n_edges (fun e -> mk e edge_buffer) in
  let aggs = Array.init n_aggs (fun a -> mk (n_edges + a) agg_buffer) in
  let cores =
    Array.init n_cores (fun c -> mk (n_edges + n_aggs + c) core_buffer)
  in
  (* Hosts, each attached to its rack's edge switch; the primitive
     installs the edge's direct route to the host. *)
  let hosts =
    Array.init n_hosts (fun h ->
        let host = Host.create sim ~id:h in
        ignore
          (connect_host_to_switch sim host edges.(h / half) ~rate_bps ~delay
             ~switch_buffer:queue_bytes ~switch_marking:(marking ()) ());
        host)
  in
  (* Edge <-> aggregation wiring within each pod. *)
  let edge_up = Array.make_matrix n_edges half (-1) in
  let agg_down = Array.make_matrix n_aggs half (-1) in
  for p = 0 to k - 1 do
    for e = 0 to half - 1 do
      for a = 0 to half - 1 do
        let eg = (p * half) + e and ag = (p * half) + a in
        let ie, ia =
          connect_switches sim edges.(eg) aggs.(ag) ~rate_bps ~delay
            ~buffer_ab:queue_bytes ~buffer_ba:queue_bytes
            ~marking_ab:(marking ()) ~marking_ba:(marking ()) ()
        in
        edge_up.(eg).(a) <- ie;
        agg_down.(ag).(e) <- ia
      done
    done
  done;
  (* Aggregation <-> core wiring. *)
  let agg_up = Array.make_matrix n_aggs half (-1) in
  let core_down = Array.make_matrix n_cores k (-1) in
  for p = 0 to k - 1 do
    for a = 0 to half - 1 do
      let ag = (p * half) + a in
      for j = 0 to half - 1 do
        let c = (a * half) + j in
        let ia, ic =
          connect_switches sim aggs.(ag) cores.(c) ~rate_bps ~delay
            ~buffer_ab:queue_bytes ~buffer_ba:queue_bytes
            ~marking_ab:(marking ()) ~marking_ba:(marking ()) ()
        in
        agg_up.(ag).(j) <- ia;
        core_down.(c).(p) <- ic
      done
    done
  done;
  (* Routing. Salts are drawn in a fixed order (all edges, then all
     aggs), so the Rng stream — and with it every ECMP decision — is a
     pure function of the sim's seed. *)
  Array.iteri
    (fun eg edge ->
      let gidx =
        Switch.add_group edge ~salt:(Engine.Rng.int64 rng)
          ~ports:edge_up.(eg)
      in
      for h = 0 to n_hosts - 1 do
        if h / half <> eg then Switch.set_group_route edge ~dst:h ~group:gidx
      done)
    edges;
  Array.iteri
    (fun ag agg ->
      let p = ag / half in
      let gidx =
        Switch.add_group agg ~salt:(Engine.Rng.int64 rng) ~ports:agg_up.(ag)
      in
      for h = 0 to n_hosts - 1 do
        if h / hosts_per_pod = p then
          Switch.set_route agg ~dst:h ~port:agg_down.(ag).(h / half mod half)
        else Switch.set_group_route agg ~dst:h ~group:gidx
      done)
    aggs;
  Array.iteri
    (fun c core ->
      for h = 0 to n_hosts - 1 do
        Switch.set_route core ~dst:h ~port:core_down.(c).(h / hosts_per_pod)
      done)
    cores;
  { k; hosts; edges; aggs; cores }
