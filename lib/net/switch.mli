(** Output-queued store-and-forward switch.

    Each output port has its own queue (and hence its own marking policy);
    forwarding uses a static routing table from destination host id to
    output port index, installed by the topology builder. *)

type t

val create : Engine.Sim.t -> id:int -> ?buffer:Buffer_mgr.config -> unit -> t
(** [buffer] (default {!Buffer_mgr.Static}) selects the switch's memory
    model: [Static] gives every port its private fixed-capacity buffer
    (the historical behavior); [Dynamic_threshold] creates one shared
    pool that all buffers handed out by {!port_buffer} draw from. *)

val id : t -> int

val port_buffer : t -> capacity_bytes:int -> Buffer_mgr.port
(** The admission handle for one of this switch's output queues: a
    private [capacity_bytes] buffer on a [Static] switch, a slice of the
    shared pool (where [capacity_bytes] is ignored — admission is
    governed by the pool's Dynamic Threshold) otherwise. *)

val add_port : t -> Port.t -> int
(** Registers an output port, returning its index. *)

val port : t -> int -> Port.t
(** @raise Invalid_argument on a bad index. *)

val port_count : t -> int

val set_route : t -> dst:int -> port:int -> unit
(** Routes packets destined to host [dst] out of port index [port].
    @raise Invalid_argument on a bad port index. *)

val receive : t -> Packet.t -> unit
(** Forwards according to the routing table. Packets with no route are
    counted and dropped. *)

val no_route_drops : t -> int
