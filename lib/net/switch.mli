(** Output-queued store-and-forward switch.

    Each output port has its own queue (and hence its own marking policy);
    forwarding uses a static routing table from destination host id to
    either a single output port or an {!Ecmp} group (a port set resolved
    per flow by a deterministic hash), installed by the topology
    builder. *)

type t

val create :
  Engine.Sim.t ->
  id:int ->
  ?buffer:Buffer_mgr.config ->
  ?tracer:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  t
(** [buffer] (default {!Buffer_mgr.Static}) selects the switch's memory
    model: [Static] gives every port its private fixed-capacity buffer
    (the historical behavior); [Dynamic_threshold] creates one shared
    pool that all buffers handed out by {!port_buffer} draw from.
    [tracer] receives a {!Obs.Trace.No_route_drop} event for every
    packet dropped for want of a route; [metrics] registers the
    [switch.sw<id>.no_route_drops] probe. Both default to off. *)

val id : t -> int

val port_buffer : t -> capacity_bytes:int -> Buffer_mgr.port
(** The admission handle for one of this switch's output queues: a
    private [capacity_bytes] buffer on a [Static] switch, a slice of the
    shared pool (where [capacity_bytes] is ignored — admission is
    governed by the pool's Dynamic Threshold) otherwise. *)

val add_port : t -> Port.t -> int
(** Registers an output port, returning its index. *)

val port : t -> int -> Port.t
(** @raise Invalid_argument on a bad index. *)

val port_count : t -> int

val set_route : t -> dst:int -> port:int -> unit
(** Routes packets destined to host [dst] out of port index [port].
    @raise Invalid_argument on a bad port index. *)

val add_group : t -> salt:int64 -> ports:int array -> int
(** Registers an ECMP group over existing port indices and returns its
    group index. The salt should come from the simulation's
    {!Engine.Rng} stream so selection stays deterministic per seed.
    @raise Invalid_argument on an empty set or a bad port index. *)

val group_count : t -> int

val set_group_route : t -> dst:int -> group:int -> unit
(** Routes packets destined to host [dst] across the group's port set,
    resolved per flow by {!Ecmp.select}.
    @raise Invalid_argument on a bad group index. *)

val receive : t -> Packet.t -> unit
(** Forwards according to the routing table. Packets with no route are
    counted, traced (class [C_no_route_drop]) and dropped. *)

val route_port : t -> src:int -> dst:int -> flow:int -> int
(** The egress port index [receive] would pick for this flow identity,
    or [-1] if the destination has no route. Pure; for tests and
    topology introspection. *)

val no_route_drops : t -> int
