(** Topology builders.

    These wire hosts, switches and ports into the two networks the paper
    evaluates on: the ns-2 style dumbbell (N senders, one bottleneck, one
    receiver) and the 1 Gbps NetFPGA testbed star (a root switch feeding an
    aggregator host, with leaf switches feeding workers).

    Host ids are assigned densely from 0 by each builder; the receiver /
    aggregator always gets the highest id. *)

(** {2 Primitives} *)

val default_access_buffer : int
(** Buffer for non-bottleneck queues (512 KB, a realistic NIC/leaf queue;
    large enough never to be the bottleneck in the paper's scenarios,
    small enough to avoid unbounded self-inflicted bufferbloat). *)

val connect_host_to_switch :
  Engine.Sim.t ->
  Host.t ->
  Switch.t ->
  rate_bps:float ->
  delay:Engine.Time.span ->
  ?host_buffer:int ->
  ?switch_buffer:int ->
  ?switch_marking:Marking.t ->
  ?switch_tracer:Obs.Trace.t ->
  ?switch_metrics:Obs.Metrics.t ->
  unit ->
  int
(** Creates the full-duplex pair of ports (host NIC and a switch port),
    installs the route to the host on the switch, and returns the switch
    port index. [switch_tracer] / [switch_metrics] instrument the
    switch-side queue only (the host NIC queue stays untraced). *)

val connect_switches :
  Engine.Sim.t ->
  Switch.t ->
  Switch.t ->
  rate_bps:float ->
  delay:Engine.Time.span ->
  ?buffer_ab:int ->
  ?buffer_ba:int ->
  ?marking_ab:Marking.t ->
  ?marking_ba:Marking.t ->
  ?tracer_ab:Obs.Trace.t ->
  ?tracer_ba:Obs.Trace.t ->
  ?metrics_ab:Obs.Metrics.t ->
  ?metrics_ba:Obs.Metrics.t ->
  unit ->
  int * int
(** Full-duplex switch-to-switch cable; returns (port index on a toward b,
    port index on b toward a). Routes are installed by the caller.
    [tracer_ab] / [metrics_ab] instrument the a-toward-b queue (and
    [_ba] the reverse one), mirroring [connect_host_to_switch]'s
    [switch_tracer] / [switch_metrics] so inter-switch bottlenecks (the
    testbed root trunks) need no bespoke wiring. *)

(** {2 Dumbbell (paper Section VI-A)} *)

type dumbbell = {
  senders : Host.t array;
  receiver : Host.t;
  switch : Switch.t;
  bottleneck : Port.t;
      (** The switch-to-receiver port; its queue is "the" queue under
          study. *)
}

val dumbbell :
  Engine.Sim.t ->
  n_senders:int ->
  bottleneck_rate_bps:float ->
  ?access_rate_bps:float ->
  rtt:Engine.Time.span ->
  buffer_bytes:int ->
  ?buffer:Buffer_mgr.config ->
  marking:Marking.t ->
  ?tracer:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  dumbbell
(** N senders share one bottleneck toward a single receiver. [rtt] is the
    two-way propagation delay (split equally across the four link
    traversals); serialization adds on top. [access_rate_bps] defaults to
    the bottleneck rate. [tracer] / [metrics] instrument the bottleneck
    queue only. [buffer] (default [Static]) is the switch's memory
    model: under [Dynamic_threshold] every switch port — the bottleneck
    and the reverse ACK-path queues — draws from one shared pool and
    [buffer_bytes] is ignored. *)

(** {2 Parking lot (multi-bottleneck chain)} *)

type parking_lot = {
  chain : Switch.t array;  (** [hops + 1] switches in a line. *)
  long_src : Host.t;  (** Sends across every hop. *)
  long_dst : Host.t;
  cross_srcs : Host.t array;  (** One per hop, entering at switch [i]. *)
  cross_dsts : Host.t array;  (** Leaving at switch [i+1]. *)
  trunks : Port.t array;
      (** Forward inter-switch ports — the [hops] bottlenecks, each with
          its own fresh marking policy. *)
}

val parking_lot :
  Engine.Sim.t ->
  hops:int ->
  rate_bps:float ->
  ?access_rate_bps:float ->
  ?link_delay:Engine.Time.span ->
  buffer_bytes:int ->
  ?buffer:Buffer_mgr.config ->
  marking:(unit -> Marking.t) ->
  unit ->
  parking_lot
(** The classic multi-bottleneck fairness topology: a long flow traverses
    all [hops] trunk links while each hop also carries a one-hop cross
    flow. Access links run at [access_rate_bps] (default 4x the trunk
    rate) so the trunks are the only bottlenecks. [link_delay] (default
    12.5 us) applies per link traversal. [buffer] (default [Static])
    applies per chain switch — each element models its own shared-memory
    ASIC. *)

(** {2 Star testbed (paper Section VI-B, Figure 13)} *)

type star = {
  aggregator : Host.t;
  workers : Host.t array;
  root : Switch.t;
  leaves : Switch.t array;
  star_bottleneck : Port.t;  (** Root-to-aggregator port. *)
}

val star_testbed :
  Engine.Sim.t ->
  ?n_leaves:int ->
  ?workers_per_leaf:int ->
  rate_bps:float ->
  ?host_delay:Engine.Time.span ->
  ?trunk_delay:Engine.Time.span ->
  bottleneck_buffer:int ->
  ?leaf_buffer:int ->
  ?buffer:Buffer_mgr.config ->
  marking:Marking.t ->
  unit ->
  star
(** The testbed: [n_leaves] (default 3) leaf switches with
    [workers_per_leaf] (default 3) workers each, all joined at a root
    switch that also hosts the aggregator. All links run at [rate_bps]
    (1 Gbps in the paper). Only the root-to-aggregator port carries the
    marking policy and the small [bottleneck_buffer] (128 KB in the
    paper); leaf buffers default to 512 KB drop-tail. [buffer] (default
    [Static]) is the root switch's memory model; leaves stay Static. *)

(** {2 Fat tree (k-ary, 3-tier)} *)

type fat_tree = {
  k : int;
  hosts : Host.t array;  (** [k^3/4] hosts; host [h] sits in rack
                             [h / (k/2)] and pod [h / (k^2/4)]. *)
  edges : Switch.t array;  (** [k^2/2] edge (top-of-rack) switches;
                               pod [p] owns indices [p*(k/2) ..]. *)
  aggs : Switch.t array;  (** [k^2/2] aggregation switches, same pod
                              layout as [edges]. *)
  cores : Switch.t array;  (** [(k/2)^2] core switches. *)
}

val fat_tree :
  Engine.Sim.t ->
  k:int ->
  ?rate_bps:float ->
  ?link_delay:Engine.Time.span ->
  ?queue_bytes:int ->
  ?edge_buffer:Buffer_mgr.config ->
  ?agg_buffer:Buffer_mgr.config ->
  ?core_buffer:Buffer_mgr.config ->
  marking:(unit -> Marking.t) ->
  ?tracer:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  unit ->
  fat_tree
(** Standard k-ary fat tree (k even, >= 2): k pods of k/2 edge and k/2
    aggregation switches, (k/2)^2 cores, k/2 hosts per edge switch —
    k^3/4 hosts and 5k^2/4 switches in all. Every link runs at
    [rate_bps] (default 1 Gbps) with [link_delay] propagation per
    traversal (default 5 us); every switch queue gets [queue_bytes]
    capacity (default {!default_access_buffer}) and a fresh [marking ()]
    policy. Downward routes (core -> agg -> edge -> host) are
    deterministic single ports; upward routes are per-switch ECMP
    groups over the k/2 uplinks, salted from the sim's Rng stream in a
    fixed order, so all path decisions are a pure function of the sim
    seed (see DESIGN §15). [edge_buffer] / [agg_buffer] / [core_buffer]
    select each tier's memory model — a [Dynamic_threshold] tier gives
    {e each} switch of that tier its own shared pool. [tracer] /
    [metrics] reach every switch (no-route drop instrumentation), not
    the queues. *)
