(** Equal-cost multi-path (ECMP) port selection.

    A {!group} is an immutable set of switch port indices plus a salt.
    {!select} deterministically maps a flow's identity (src host id, dst
    host id, flow id — the simulator's 5-tuple) to one port of the set:
    the same tuple always gets the same port, so a flow's packets never
    reorder across paths, while distinct flows spread uniformly. Salts
    come from the simulation's {!Engine.Rng} stream (drawn by the
    topology builder, one per switch), which keeps runs bit-identical
    for a given seed and decorrelates the hash across switches.

    Selection is allocation-free integer arithmetic — this module is on
    the per-packet forwarding path of every multi-path switch (dtlint
    R14 hot root). *)

type group

val make_group : salt:int64 -> ports:int array -> group
(** The port array is copied; later caller mutation cannot affect the
    group. @raise Invalid_argument if [ports] is empty or contains a
    negative index. *)

val select : group -> src:int -> dst:int -> flow:int -> int
(** The port (an element of the group's port set) this flow takes. Pure:
    depends only on the group and the three ids. *)

val hash : group -> src:int -> dst:int -> flow:int -> int
(** The underlying non-negative hash value ([select] is
    [ports.(hash mod width)]); exposed for property tests. *)

val width : group -> int
(** Number of ports in the set. *)

val ports : group -> int array
(** A copy of the port set, in construction order. *)
