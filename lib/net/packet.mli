(** Network packets, stored struct-of-arrays.

    A packet is an immediate handle (an int) into its simulation's
    packet {!store}: size, addressing, ECN codepoint, and the enqueue
    timestamp live in parallel int arrays indexed by the handle, and the
    opaque transport payload (extensible variant, so the transport layer
    can define its own segments without a dependency cycle) in a
    parallel boxed array. The network hot loop — enqueue, dequeue, mark,
    forward — therefore walks flat arrays instead of dereferencing a
    boxed record per packet, handing a packet between components never
    pays a write barrier, and a steady flow of traffic allocates no
    packets at all: handles are pooled through a free-list stack.

    {b Ownership is linear.} [make] transfers the handle to the caller;
    whoever consumes the packet — the terminal flow handler, a dropping
    queue, a routeless switch, a lossy link — must {!free} it, exactly
    once, after reading the fields it needs. A double [free] is detected
    (the slot's uid is cleared) and raises; reads through a stale handle
    are {e not} detected — they see whatever packet recycled the slot —
    which is the usual pooling bargain, kept honest by the qcheck suites
    and the bit-identical-manifest acceptance bar. Components that never
    free (one-shot test harnesses) merely grow the pool. *)

type ecn =
  | Not_ect  (** Sender does not support ECN; congested switches drop. *)
  | Ect  (** ECN-capable transport. *)
  | Ce  (** Congestion experienced (set by a switch). *)

type payload = ..
(** Transport payloads; extended by [lib/tcp]. *)

type payload += No_payload

type t = int
(** Packet handle. Immediate (the equality is public so handles flow
    through int containers like {!Engine.Int_ring} without coercions);
    valid only against the store of the simulation that made it, from
    [make] until [free]. *)

val none : t
(** Sentinel handle ([-1]) matching no packet. Initial value for fields
    that later hold real packets; never [free] it or read through it. *)

type store
(** The per-simulation struct-of-arrays packet pool. *)

val store_of : Engine.Sim.t -> store
(** The simulation's packet store, created on first use and attached to
    the simulation's extension slots ({!Engine.Sim.add_ext}) — every
    component created with the same [sim] shares one store. Resolve at
    component creation and keep the result; the lookup is a list walk. *)

val make :
  store ->
  src:int ->
  dst:int ->
  flow:int ->
  size:int ->
  ecn:ecn ->
  payload ->
  t
(** Allocates a packet from the pool (recycling a freed slot when one
    exists). Ids are drawn from the owning simulation
    ({!Engine.Sim.fresh_id}): 1, 2, 3, ... per run, independent of any
    other simulation in the process.
    @raise Invalid_argument if [size <= 0]. *)

val free : store -> t -> unit
(** Returns the handle to the pool and drops the payload reference.
    @raise Invalid_argument if the handle was already freed. *)

val id : store -> t -> int
(** Unique, deterministic per-simulation id, for debugging; [-1] on a
    freed slot. *)

val src : store -> t -> int
val dst : store -> t -> int

val flow : store -> t -> int
(** Flow id, used by hosts to demultiplex. *)

val size : store -> t -> int
(** Bytes on the wire. *)

val payload : store -> t -> payload
val ecn : store -> t -> ecn

val mark_ce : store -> t -> unit
(** Sets CE; only legal on ECN-capable packets (no-op on [Not_ect], which
    mirrors real switches that cannot mark non-ECT traffic). *)

val is_ce : store -> t -> bool
val is_ect : store -> t -> bool

val set_enq_ns : store -> t -> int -> unit
(** Records the instant (int nanoseconds) the packet was last admitted
    to a queue; written by {!Queue_disc.enqueue}. *)

val enq_ns : store -> t -> int
(** Last recorded admission instant, 0 if never enqueued. The head's
    sojourn time is [now - enq_ns] — the input a delay-based AQM needs. *)

val live_count : store -> int
(** Packets currently allocated (made, not yet freed). *)

val pool_size : store -> int
(** Slots ever allocated (live + free). Steady traffic through
    free-discipline components keeps this constant — the observable
    effect of pooling, asserted by the regression tests. *)

val pp : store -> Format.formatter -> t -> unit
