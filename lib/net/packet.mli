(** Network packets.

    A packet carries an opaque transport payload (extensible variant, so the
    transport layer can define its own segments without a dependency cycle),
    plus the fields the network layer acts on: size, addressing, and the ECN
    codepoint. The ECN field is mutable because switches mark packets in
    flight. *)

type ecn =
  | Not_ect  (** Sender does not support ECN; congested switches drop. *)
  | Ect  (** ECN-capable transport. *)
  | Ce  (** Congestion experienced (set by a switch). *)

type payload = ..
(** Transport payloads; extended by [lib/tcp]. *)

type payload += No_payload

type t = {
  id : int;  (** Unique, deterministic per-simulation id, for debugging. *)
  src : int;  (** Source host id. *)
  dst : int;  (** Destination host id. *)
  flow : int;  (** Flow id, used by hosts to demultiplex. *)
  size : int;  (** Bytes on the wire. *)
  mutable ecn : ecn;
  payload : payload;
}

val make :
  Engine.Sim.t ->
  src:int ->
  dst:int ->
  flow:int ->
  size:int ->
  ecn:ecn ->
  payload ->
  t
(** Ids are drawn from the owning simulation ({!Engine.Sim.fresh_id}):
    1, 2, 3, ... per run, independent of any other simulation in the
    process.
    @raise Invalid_argument if [size <= 0]. *)

val mark_ce : t -> unit
(** Sets CE; only legal on ECN-capable packets (no-op on [Not_ect], which
    mirrors real switches that cannot mark non-ECT traffic). *)

val is_ce : t -> bool
val is_ect : t -> bool

val pp : Format.formatter -> t -> unit
