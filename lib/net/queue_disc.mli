(** Drop-tail FIFO queue with a pluggable ECN marking policy.

    The queue also keeps exact time-weighted occupancy statistics (integral
    of occupancy over time), so experiments can compute the mean and the
    standard deviation of the queue length without recording a full trace. *)

type t

val create :
  Engine.Sim.t ->
  capacity_bytes:int ->
  ?marking:Marking.t ->
  ?tracer:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?name:string ->
  unit ->
  t
(** [tracer] (default {!Obs.Trace.null}) receives [Enqueue] / [Dequeue] /
    [Drop] / [Mark] events with this queue's [name] as the component.
    When [metrics] is given, probes [queue.<name>.drops], [.marks] and
    [.enqueues] are registered against the live counters.
    @raise Invalid_argument if [capacity_bytes <= 0]. *)

val name : t -> string

val enqueue : t -> Packet.t -> [ `Enqueued | `Dropped ]
(** Tail-drops if the packet does not fit. On acceptance the marking policy
    decides whether to set CE on the arriving packet (only effective for
    ECT packets). *)

val dequeue : t -> Packet.t option

val dequeue_exn : t -> Packet.t
(** {!dequeue} without the option box, for the transmit hot path (pair it
    with {!is_empty}).
    @raise Not_found when the queue is empty. *)

val is_empty : t -> bool

val occupancy_bytes : t -> int
val occupancy_packets : t -> int
val capacity_bytes : t -> int

val drops : t -> int
(** Packets tail-dropped since creation. *)

val enqueued : t -> int
(** Packets accepted since creation. *)

val marked : t -> int
(** Packets CE-marked since creation. *)

val set_observer : t -> (unit -> unit) -> unit
(** Invoked after every occupancy change (enqueue, dequeue) and after every
    drop; used by {!Trace}. *)

(** {2 Time-weighted occupancy statistics} *)

val reset_stats : t -> unit
(** Restart the occupancy integrals at the current instant (call at the end
    of a warm-up period). Also resets {!drops}/{!enqueued}/{!marked}. *)

val mean_occupancy_bytes : t -> float
(** Time-weighted mean occupancy since the last {!reset_stats}. *)

val stddev_occupancy_bytes : t -> float

val mean_occupancy_packets : t -> float
(** Mean occupancy measured in packets (time-weighted over the packet
    count, not bytes/MTU). *)

val stddev_occupancy_packets : t -> float

val max_occupancy_bytes : t -> int
(** Peak occupancy since the last {!reset_stats}. *)
