(** Drop-tail FIFO queue with a pluggable ECN marking policy.

    The queue also keeps exact time-weighted occupancy statistics (integral
    of occupancy over time), so experiments can compute the mean and the
    standard deviation of the queue length without recording a full trace. *)

type t

val create :
  Engine.Sim.t ->
  buffer:Buffer_mgr.port ->
  ?marking:Marking.t ->
  ?tracer:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?name:string ->
  unit ->
  t
(** [buffer] is the admission handle the queue borrows capacity from —
    [Buffer_mgr.solo ~capacity_bytes] reproduces the historical private
    fixed-capacity behavior bit-for-bit; a port attached to a shared
    pool admits against the Dynamic Threshold limit instead. [tracer]
    (default {!Obs.Trace.null}) receives [Enqueue] / [Dequeue] / [Drop]
    / [Mark] events with this queue's [name] as the component; shared
    ports additionally emit [Pool_reject] and [Pool_high_water]. When
    [metrics] is given, probes [queue.<name>.drops], [.marks] and
    [.enqueues] are registered against the live counters, plus the
    pool's [buffer.*] probes for shared ports (once per pool). The
    marking policy's [on_limit] hook is invoked once at creation with
    the current effective limit, and on every occupancy change while
    the queue sits on a shared pool. *)

val name : t -> string

val enqueue : t -> Packet.t -> [ `Enqueued | `Dropped ]
(** Tail-drops if the packet does not fit. On acceptance the marking policy
    decides whether to set CE on the arriving packet (only effective for
    ECT packets). *)

val dequeue : t -> Packet.t option

val dequeue_exn : t -> Packet.t
(** {!dequeue} without the option box, for the transmit hot path (pair it
    with {!is_empty}).
    @raise Not_found when the queue is empty. *)

val is_empty : t -> bool

val occupancy_bytes : t -> int
val occupancy_packets : t -> int

val capacity_bytes : t -> int
(** The largest occupancy the buffer can ever grant: the fixed capacity
    for solo ports, the pool size for shared ports. *)

val effective_limit : t -> int
(** The admission limit right now ({!Buffer_mgr.effective_limit}); equals
    {!capacity_bytes} for solo ports, moves with the pool otherwise. *)

val buffer : t -> Buffer_mgr.port
(** The admission handle this queue draws from. *)

val drops : t -> int
(** Packets tail-dropped since creation. *)

val enqueued : t -> int
(** Packets accepted since creation. *)

val marked : t -> int
(** Packets CE-marked since creation. *)

val set_observer : t -> (unit -> unit) -> unit
(** Invoked after every occupancy change (enqueue, dequeue) and after every
    drop; used by {!Trace}. *)

(** {2 Time-weighted occupancy statistics} *)

val reset_stats : t -> unit
(** Restart the occupancy integrals at the current instant (call at the end
    of a warm-up period). Also resets {!drops}/{!enqueued}/{!marked}. *)

val mean_occupancy_bytes : t -> float
(** Time-weighted mean occupancy since the last {!reset_stats}. *)

val stddev_occupancy_bytes : t -> float

val mean_occupancy_packets : t -> float
(** Mean occupancy measured in packets (time-weighted over the packet
    count, not bytes/MTU). *)

val stddev_occupancy_packets : t -> float

val max_occupancy_bytes : t -> int
(** Peak occupancy since the last {!reset_stats}. *)
