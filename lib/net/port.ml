module Sim = Engine.Sim
module Time = Engine.Time

(* The transmit loop is allocation-conscious: the two per-packet closures
   the obvious implementation would build (tx-complete, delivery) are
   replaced by two closures allocated once per port. The packet being
   serialized sits in [tx_pkt]; packets in flight on the propagation-delay
   link sit in a ring. Both hand-offs are safe because each is FIFO: a
   port serializes one packet at a time, and with a constant link delay
   deliveries complete in transmit order. *)
type disposition = Deliver | Lose | Delay of Time.span

(* Profiler class tags: serialization completions vs propagation-delay
   deliveries. Immediate ints bound once at module init. *)
let cls_link_tx = Engine.Event_class.(index Link_tx)
let cls_link_rx = Engine.Event_class.(index Link_rx)

type t = {
  sim : Sim.t;
  st : Packet.store;
  mutable rate_bps : float;
  delay : Time.span;
  queue : Queue_disc.t;
  deliver : Packet.t -> unit;
  mutable busy : bool;
  mutable up : bool;
  (* Fault-injection hook consulted once per delivery; [None] (the
     default) keeps the pre-fault fast path: a single immediate-value
     branch. *)
  mutable fault_hook : (Packet.t -> disposition) option;
  mutable bytes_sent : int;
  mutable packets_sent : int;
  in_flight : Engine.Int_ring.t;
  mutable tx_pkt : Packet.t;  (* currently serializing; [Packet.none] if idle *)
  mutable tx_done : unit -> unit;  (* fires when [tx_pkt] finishes *)
  mutable deliver_head : unit -> unit;  (* delivers front of [in_flight] *)
  (* Memo of the last serialization time by packet size: traffic on a port
     is dominated by one or two packet sizes, so this skips the float
     division (and the boxed span it allocates) almost every time. *)
  mutable memo_size : int;
  mutable memo_tx : Time.span;
}

let tx_time t ~bytes =
  Time.span_of_sec (float_of_int (bytes * 8) /. t.rate_bps)

let tx_span t ~bytes =
  if bytes = t.memo_size then t.memo_tx
  else begin
    let span = tx_time t ~bytes in
    t.memo_size <- bytes;
    t.memo_tx <- span;
    span
  end

let start_tx t =
  if Queue_disc.is_empty t.queue then t.busy <- false
  else begin
    let pkt = Queue_disc.dequeue_exn t.queue in
    t.busy <- true;
    t.tx_pkt <- pkt;
    ignore
      (Sim.schedule_after_cls t.sim
         (tx_span t ~bytes:(Packet.size t.st pkt))
         ~cls:cls_link_tx t.tx_done)
  end

let create sim ~rate_bps ~delay ~queue ~deliver =
  if rate_bps <= 0. then invalid_arg "Port.create: rate must be positive";
  if Int64.compare delay 0L < 0 then
    invalid_arg "Port.create: negative delay";
  let t =
    {
      sim;
      st = Packet.store_of sim;
      rate_bps;
      delay;
      queue;
      deliver;
      busy = false;
      up = true;
      fault_hook = None;
      bytes_sent = 0;
      packets_sent = 0;
      in_flight = Engine.Int_ring.create ~capacity:16 ();
      tx_pkt = Packet.none;
      tx_done = ignore;
      deliver_head = ignore;
      memo_size = -1;
      memo_tx = 0L;
    }
  in
  t.deliver_head <-
    (fun () ->
      let pkt = Engine.Int_ring.pop t.in_flight in
      match t.fault_hook with
      | None -> t.deliver pkt
      | Some hook -> (
          match hook pkt with
          | Deliver -> t.deliver pkt
          | Lose ->
              (* The wire consumed the packet: recycle its handle. *)
              Packet.free t.st pkt
          | Delay span ->
              (* Jittered deliveries leave the FIFO ring discipline: the
                 packet is already popped, so the extra closure (fault
                 mode only) is the whole cost, and reordering past later
                 packets is the point. *)
              ignore
                (Sim.schedule_after_cls t.sim span ~cls:cls_link_rx
                   (fun () -> t.deliver pkt))));
  t.tx_done <-
    (fun () ->
      let pkt = t.tx_pkt in
      t.tx_pkt <- Packet.none;
      t.bytes_sent <- t.bytes_sent + Packet.size t.st pkt;
      t.packets_sent <- t.packets_sent + 1;
      Engine.Int_ring.push t.in_flight pkt;
      ignore (Sim.schedule_after_cls t.sim t.delay ~cls:cls_link_rx t.deliver_head);
      if t.up then start_tx t else t.busy <- false);
  t

let send t pkt =
  match Queue_disc.enqueue t.queue pkt with
  | `Dropped -> ()
  | `Enqueued -> if not t.busy && t.up then start_tx t

let set_up t up =
  if up && not t.up then begin
    t.up <- true;
    if not t.busy then start_tx t
  end
  else if not up then t.up <- false

let is_up t = t.up

let set_rate t rate_bps =
  if rate_bps <= 0. then invalid_arg "Port.set_rate: rate must be positive";
  t.rate_bps <- rate_bps;
  t.memo_size <- -1

let set_fault_hook t hook = t.fault_hook <- Some hook

let queue t = t.queue
let rate_bps t = t.rate_bps
let bytes_sent t = t.bytes_sent
let packets_sent t = t.packets_sent

let reset_counters t =
  t.bytes_sent <- 0;
  t.packets_sent <- 0

let is_busy t = t.busy
