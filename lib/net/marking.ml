type t = {
  name : string;
  on_enqueue : bytes:int -> packets:int -> bool;
  on_dequeue : bytes:int -> packets:int -> unit;
  on_limit : limit_bytes:int -> unit;
}

let no_limit ~limit_bytes:_ = ()

let make ~name ?(on_limit = no_limit) ~on_enqueue ~on_dequeue () =
  { name; on_enqueue; on_dequeue; on_limit }

let suppress ~active ~on_suppress inner =
  let on_enqueue ~bytes ~packets =
    (* Always consult the inner policy first: stateful markers (DT-DCTCP
       hysteresis, RED's EWMA) must keep observing the queue even while
       their verdicts are being discarded — a degraded switch loses the
       marks, not the marker's state. *)
    let mark = inner.on_enqueue ~bytes ~packets in
    if mark && active () then begin
      on_suppress ~bytes ~packets;
      false
    end
    else mark
  in
  {
    name = inner.name ^ "+suppress";
    on_enqueue;
    on_dequeue = inner.on_dequeue;
    on_limit = inner.on_limit;
  }

let none () =
  make ~name:"none"
    ~on_enqueue:(fun ~bytes:_ ~packets:_ -> false)
    ~on_dequeue:(fun ~bytes:_ ~packets:_ -> ())
    ()

let red ?rng ~min_th_bytes ~max_th_bytes ~max_p ~weight ~avg_pkt_size () =
  if max_th_bytes <= min_th_bytes then
    invalid_arg "Marking.red: max_th <= min_th";
  if max_p <= 0. || max_p > 1. then invalid_arg "Marking.red: bad max_p";
  if weight <= 0. || weight > 1. then invalid_arg "Marking.red: bad weight";
  ignore avg_pkt_size;
  let avg = ref 0. in
  let count_since_mark = ref (-1) in
  let on_enqueue ~bytes ~packets:_ =
    avg := ((1. -. weight) *. !avg) +. (weight *. float_of_int bytes);
    if !avg < float_of_int min_th_bytes then begin
      count_since_mark := -1;
      false
    end
    else if !avg >= float_of_int max_th_bytes then begin
      count_since_mark := 0;
      true
    end
    else begin
      incr count_since_mark;
      let pb =
        max_p
        *. (!avg -. float_of_int min_th_bytes)
        /. float_of_int (max_th_bytes - min_th_bytes)
      in
      let pa =
        let denom = 1. -. (float_of_int !count_since_mark *. pb) in
        if denom <= 0. then 1. else pb /. denom
      in
      let mark =
        match rng with
        | Some rng -> Engine.Rng.float rng < pa
        | None -> pa > 0.5
      in
      if mark then count_since_mark := 0;
      mark
    end
  in
  let on_dequeue ~bytes:_ ~packets:_ = () in
  make ~name:"red" ~on_enqueue ~on_dequeue ()
