(** Pluggable buffer admission for {!Queue_disc}.

    Historically every queue disc owned a private [capacity_bytes]; real
    switch ASICs instead share one memory pool across all ports, so the
    effective capacity behind a marking threshold moves as other ports
    fill. A {!port} is the admission handle a queue disc holds: either a
    private fixed-capacity buffer ({!solo}, byte-identical to the old
    behavior) or a slice of a switch-level shared pool ({!attach})
    governed by the Dynamic Threshold algorithm (Choudhury–Hahne): the
    per-port occupancy limit at any instant is [alpha x free pool bytes].

    The admission test is pure integer arithmetic — [alpha] is quantised
    to [floor(alpha * 1024) / 1024] at pool creation — so runs are
    bit-identical across machines and the hot path allocates nothing. *)

type config =
  | Static  (** each queue keeps its private fixed capacity *)
  | Dynamic_threshold of { pool_bytes : int; alpha : float }
      (** one shared pool of [pool_bytes] per switch; per-port limit =
          [alpha] x free pool bytes, [alpha] quantised to 1/1024ths *)

type pool
(** A shared memory pool with per-port accounting. *)

type port
(** A queue disc's admission handle (private buffer or pool slice). *)

val config_equal : config -> config -> bool
(** Structural equality; [alpha] compared by bit pattern (specs with NaN
    alphas never validate, so this is only about -0. vs 0. pedantry). *)

val solo : capacity_bytes:int -> port
(** A private fixed-capacity buffer: admit while
    [occupancy + size <= capacity_bytes].
    @raise Invalid_argument if [capacity_bytes <= 0]. *)

val create_pool : pool_bytes:int -> alpha:float -> pool
(** @raise Invalid_argument if [pool_bytes <= 0] or [alpha < 1/1024]. *)

val attach : pool -> port
(** A fresh port drawing admission from [pool]. *)

val shared : port -> bool
(** [true] iff the port draws from a shared pool. *)

val admit : port -> int -> bool
(** [admit port size] charges [size] bytes and returns [true], or
    rejects and returns [false]. Solo ports test the fixed capacity;
    shared ports test [occupancy + size <= effective_limit] {e and}
    [pool used + size <= pool size] (the limit may exceed free memory
    when [alpha > 1]; the pool itself never overfills). *)

val release : port -> int -> unit
(** Return [size] bytes (on dequeue). *)

val effective_limit : port -> int
(** The port's occupancy limit right now: the fixed capacity for solo
    ports, [alpha x (pool size - pool used)] clamped to the pool size
    for shared ports. Moves as any port of the pool fills or drains. *)

val poll_high_water : port -> int
(** The pool high-water mark if it has risen since the last poll, [-1]
    otherwise (always [-1] for solo ports). Drives trace emission of new
    pool peaks without allocating on the hot path. *)

val occupancy : port -> int
(** Bytes currently charged to this port. *)

val capacity : port -> int
(** Static capacity (solo) or pool size (shared): the largest value
    {!effective_limit} can take. *)

val pool_used : port -> int
(** Total bytes in the pool across all ports (solo: own occupancy). *)

val pool_size : port -> int
val pool_rejects : port -> int
val pool_high_water : port -> int

val register_metrics : port -> Obs.Metrics.t -> unit
(** Register [buffer.pool_used] / [buffer.pool_high_water] /
    [buffer.pool_rejects] probes for the port's pool. No-op for solo
    ports; idempotent per pool (first registration wins), so a switch
    with many observed queues registers its pool once. *)
