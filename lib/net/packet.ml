type ecn = Not_ect | Ect | Ce

type payload = ..

type payload += No_payload

(* A packet is an immediate handle: an index into its simulation's
   struct-of-arrays store. The network hot loop (enqueue, dequeue, mark,
   forward) reads size/flow/ECN straight out of flat int arrays instead
   of chasing a boxed record per packet, and passing packets between
   components costs no write barrier (see [Engine.Int_ring]). *)
type t = int

let none = -1

(* ECN codepoints as ints so the marking loop is integer compares. *)
let ecn_not_ect = 0
let ecn_ect = 1
let ecn_ce = 2

type store = {
  sim : Engine.Sim.t;
  (* Parallel arrays indexed by packet handle. All grown together. *)
  mutable size : int array;  (* bytes on the wire *)
  mutable flow : int array;  (* flow id, for host demux *)
  mutable src : int array;  (* source host id *)
  mutable dst : int array;  (* destination host id *)
  mutable ecn : int array;  (* codepoint, [ecn_*] above *)
  mutable enq_ns : int array;  (* ns instant of last queue admission *)
  mutable uid : int array;  (* per-sim debug id; -1 marks a free slot *)
  mutable payload : payload array;  (* opaque transport payload *)
  (* Free-list stack of recycled handles. *)
  mutable free_stack : int array;
  mutable free_top : int;
  mutable next_slot : int;  (* next never-used handle *)
  mutable live : int;
}

type Engine.Sim.ext += Store of store

let create_store sim =
  let cap = 256 in
  {
    sim;
    size = Array.make cap 0;
    flow = Array.make cap 0;
    src = Array.make cap 0;
    dst = Array.make cap 0;
    ecn = Array.make cap 0;
    enq_ns = Array.make cap 0;
    uid = Array.make cap (-1);
    payload = Array.make cap No_payload;
    free_stack = Array.make cap 0;
    free_top = 0;
    next_slot = 0;
    live = 0;
  }

(* One store per simulation, owned by the simulation itself through its
   extension slots: every component of a topology (created with the same
   [sim]) resolves to the same store, deterministically, with no
   module-level global for a parallel sweep to race on. Components call
   this once at creation and keep the result. *)
let store_of sim =
  match
    Engine.Sim.find_ext sim (function Store s -> Some s | _ -> None)
  with
  | Some s -> s
  | None ->
      let s = create_store sim in
      Engine.Sim.add_ext sim (Store s);
      s

let grow st =
  let cap = Array.length st.size in
  let ncap = 2 * cap in
  let extend a fill =
    let b = Array.make ncap fill in
    Array.blit a 0 b 0 cap;
    b
  in
  st.size <- extend st.size 0;
  st.flow <- extend st.flow 0;
  st.src <- extend st.src 0;
  st.dst <- extend st.dst 0;
  st.ecn <- extend st.ecn 0;
  st.enq_ns <- extend st.enq_ns 0;
  st.uid <- extend st.uid (-1);
  st.payload <- extend st.payload No_payload;
  st.free_stack <- extend st.free_stack 0

let make st ~src ~dst ~flow ~size ~ecn payload =
  if size <= 0 then invalid_arg "Packet.make: size must be positive";
  let p =
    if st.free_top > 0 then begin
      st.free_top <- st.free_top - 1;
      st.free_stack.(st.free_top)
    end
    else begin
      if st.next_slot = Array.length st.size then grow st;
      st.next_slot <- st.next_slot + 1;
      st.next_slot - 1
    end
  in
  st.size.(p) <- size;
  st.flow.(p) <- flow;
  st.src.(p) <- src;
  st.dst.(p) <- dst;
  st.ecn.(p) <-
    (match ecn with Not_ect -> ecn_not_ect | Ect -> ecn_ect | Ce -> ecn_ce);
  st.enq_ns.(p) <- 0;
  (* Ids come from the owning simulation's counter (Sim.fresh_id), not a
     process-global Atomic: per-run sequences are deterministic
     regardless of what other simulations the process hosts, and
     concurrent runs (Exp.Runner -j) don't bounce a shared cache line. *)
  st.uid.(p) <- Engine.Sim.fresh_id st.sim;
  st.payload.(p) <- payload;
  st.live <- st.live + 1;
  p

(* Handles are owned linearly: whoever consumes a packet (a terminal
   flow handler, a dropping queue, a routeless switch, a lossy link)
   frees it, exactly once. The uid check catches double frees — a
   recycled handle would otherwise silently alias a newer packet. *)
let free st p =
  if st.uid.(p) < 0 then invalid_arg "Packet.free: handle already freed";
  st.uid.(p) <- -1;
  st.payload.(p) <- No_payload (* don't pin a dead transport payload *);
  st.free_stack.(st.free_top) <- p;
  st.free_top <- st.free_top + 1;
  st.live <- st.live - 1

let id st p = st.uid.(p)
let src st p = st.src.(p)
let dst st p = st.dst.(p)
let flow st p = st.flow.(p)
let size st p = st.size.(p)
let payload st p = st.payload.(p)

let ecn st p =
  let e = st.ecn.(p) in
  if e = ecn_not_ect then Not_ect else if e = ecn_ect then Ect else Ce

let mark_ce st p = if st.ecn.(p) <> ecn_not_ect then st.ecn.(p) <- ecn_ce
let is_ce st p = st.ecn.(p) = ecn_ce
let is_ect st p = st.ecn.(p) <> ecn_not_ect
let set_enq_ns st p ns = st.enq_ns.(p) <- ns
let enq_ns st p = st.enq_ns.(p)
let live_count st = st.live
let pool_size st = st.next_slot

let pp st ppf p =
  let e =
    match st.ecn.(p) with
    | 0 -> "not-ect"
    | 1 -> "ect"
    | _ -> "CE"
  in
  Format.fprintf ppf "pkt#%d flow=%d %d->%d %dB %s" st.uid.(p) st.flow.(p)
    st.src.(p) st.dst.(p) st.size.(p) e
