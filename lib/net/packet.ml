type ecn = Not_ect | Ect | Ce

type payload = ..

type payload += No_payload

type t = {
  id : int;
  src : int;
  dst : int;
  flow : int;
  size : int;
  mutable ecn : ecn;
  payload : payload;
}

(* Ids come from the owning simulation's counter (Sim.fresh_id), not a
   process-global Atomic: per-run sequences are deterministic regardless
   of what other simulations the process hosts, and concurrent runs
   (Exp.Runner -j) stop bouncing a shared cache line on every packet. *)
let make sim ~src ~dst ~flow ~size ~ecn payload =
  if size <= 0 then invalid_arg "Packet.make: size must be positive";
  { id = Engine.Sim.fresh_id sim; src; dst; flow; size; ecn; payload }

let mark_ce t = match t.ecn with Not_ect -> () | Ect | Ce -> t.ecn <- Ce
let is_ce t = t.ecn = Ce
let is_ect t = match t.ecn with Ect | Ce -> true | Not_ect -> false

let pp ppf t =
  let ecn =
    match t.ecn with Not_ect -> "not-ect" | Ect -> "ect" | Ce -> "CE"
  in
  Format.fprintf ppf "pkt#%d flow=%d %d->%d %dB %s" t.id t.flow t.src t.dst
    t.size ecn
