type ecn = Not_ect | Ect | Ce

type payload = ..

type payload += No_payload

type t = {
  id : int;
  src : int;
  dst : int;
  flow : int;
  size : int;
  mutable ecn : ecn;
  payload : payload;
}

(* Atomic so concurrent simulations (Exp.Runner fans runs across domains)
   never race; ids are process-global and only feed [pp]. *)
let next_id = Atomic.make 0

let make ~src ~dst ~flow ~size ~ecn payload =
  if size <= 0 then invalid_arg "Packet.make: size must be positive";
  let id = 1 + Atomic.fetch_and_add next_id 1 in
  { id; src; dst; flow; size; ecn; payload }

let mark_ce t = match t.ecn with Not_ect -> () | Ect | Ce -> t.ecn <- Ce
let is_ce t = t.ecn = Ce
let is_ect t = match t.ecn with Ect | Ce -> true | Not_ect -> false

let pp ppf t =
  let ecn =
    match t.ecn with Not_ect -> "not-ect" | Ect -> "ect" | Ce -> "CE"
  in
  Format.fprintf ppf "pkt#%d flow=%d %d->%d %dB %s" t.id t.flow t.src t.dst
    t.size ecn
