(* Equal-cost multi-path port selection.

   A group is an immutable port set plus a per-switch salt. Selection
   hashes the flow identity (src host, dst host, flow id — the
   simulator's stand-in for the 5-tuple) through an xorshift-multiply
   finalizer, so the same flow always resolves to the same port (no
   packet reordering inside a flow) while distinct flows spread across
   the set. The salt decorrelates switches: without it, every switch
   would agree on the hash and the fabric's upper tiers would see only
   a fraction of their ports.

   Everything here runs once per forwarded packet on multi-path
   switches, so the module is a dtlint R14 hot root: int-only
   arithmetic, no closures, no boxed returns. *)

type group = { ports : int array; salt : int }

let make_group ~salt ~ports =
  if Array.length ports = 0 then invalid_arg "Ecmp.make_group: empty port set";
  Array.iter
    (fun p -> if p < 0 then invalid_arg "Ecmp.make_group: negative port")
    ports;
  { ports = Array.copy ports; salt = Int64.to_int salt land max_int }

(* xorshift*-style avalanche. The multipliers are 62-bit primescaled
   constants (0x9E37... from SplitMix64 does not fit OCaml's immediate
   int), which is plenty: inputs are small host/flow ids and the salt
   supplies the high-entropy bits. *)
let mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x27D4EB2F165667C5 in
  x lxor (x lsr 31)

let hash g ~src ~dst ~flow =
  let h = mix (g.salt lxor src) in
  let h = mix (h lxor dst) in
  let h = mix (h lxor flow) in
  h land max_int

let select g ~src ~dst ~flow =
  g.ports.(hash g ~src ~dst ~flow mod Array.length g.ports)

let width g = Array.length g.ports
let ports g = Array.copy g.ports
