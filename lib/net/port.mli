(** Output port: queue + serializer + propagation.

    A port drains its {!Queue_disc} at the line rate, then delivers each
    packet to the remote end after the link's propagation delay. Ports are
    unidirectional; a full-duplex cable is a pair of ports.

    Fault injection (lib/fault) drives three extensions: link up/down
    state ({!set_up}), runtime rate changes ({!set_rate}), and a
    pre-delivery hook ({!set_fault_hook}) that can lose or delay
    individual packets. None of them perturbs an un-faulted run: with the
    link up, the default rate, and no hook installed, the event sequence
    is identical to a port without these features. *)

type t

(** What the fault hook decides for a packet about to be delivered. *)
type disposition =
  | Deliver  (** Deliver normally. *)
  | Lose  (** Drop silently on the wire. *)
  | Delay of Engine.Time.span  (** Deliver after an extra delay (may reorder). *)

val create :
  Engine.Sim.t ->
  rate_bps:float ->
  delay:Engine.Time.span ->
  queue:Queue_disc.t ->
  deliver:(Packet.t -> unit) ->
  t
(** [deliver] is invoked at the remote end, [delay] after serialization
    completes. @raise Invalid_argument if [rate_bps <= 0]. *)

val send : t -> Packet.t -> unit
(** Enqueues (possibly tail-dropping) and starts transmitting if idle and
    the link is up. While the link is down packets accumulate in the
    queue (and tail-drop once it fills). *)

val set_up : t -> bool -> unit
(** Take the link down or bring it back up. Taking it down lets the
    packet currently serializing finish (it is already on the wire);
    bringing it up restarts transmission if the queue is non-empty. *)

val is_up : t -> bool

val set_rate : t -> float -> unit
(** Change the line rate mid-run; affects packets whose serialization
    starts after the call. @raise Invalid_argument if the rate is not
    positive. *)

val set_fault_hook : t -> (Packet.t -> disposition) -> unit
(** Install a per-packet hook consulted when a packet reaches the remote
    end of the link, before [deliver]. Installed once per port by
    [Fault.Injector]; not designed to be stacked. *)

val queue : t -> Queue_disc.t
val rate_bps : t -> float

val tx_time : t -> bytes:int -> Engine.Time.span
(** Serialization time of [bytes] at the port's rate. *)

val bytes_sent : t -> int
(** Payload bytes fully serialized since creation or {!reset_counters}. *)

val packets_sent : t -> int

val reset_counters : t -> unit

val is_busy : t -> bool
