module Sim = Engine.Sim
module Time = Engine.Time
module Trace_ev = Obs.Trace

(* Slots of the time-weighted occupancy-integral accumulator. A flat
   float array keeps the sums unboxed: mutable float fields in this
   (mixed) record would allocate a box on every enqueue/dequeue. *)
let int_bytes = 0 (* integral of occ_bytes dt (seconds) *)

let int_bytes2 = 1 (* integral of occ_bytes^2 dt *)

let int_pkts = 2
let int_pkts2 = 3

type t = {
  sim : Sim.t;
  name : string;
  capacity_bytes : int;
  marking : Marking.t;
  tracer : Trace_ev.t;
  fifo : Packet.t Engine.Ring.t;
  mutable occ_bytes : int;
  mutable occ_pkts : int;
  mutable drops : int;
  mutable enqueued : int;
  mutable marked : int;
  mutable observer : unit -> unit;
  (* time-weighted occupancy integrals *)
  mutable stats_start : Time.t;
  mutable last_change : Time.t;
  acc : float array;
  mutable max_bytes : int;
}

let create sim ~capacity_bytes ?(marking = Marking.none ())
    ?(tracer = Trace_ev.null) ?metrics ?(name = "queue") () =
  if capacity_bytes <= 0 then
    invalid_arg "Queue_disc.create: capacity must be positive";
  let now = Sim.now sim in
  let t =
    {
      sim;
      name;
      capacity_bytes;
      marking;
      tracer;
      fifo = Engine.Ring.create ~capacity:64 ();
      occ_bytes = 0;
      occ_pkts = 0;
      drops = 0;
      enqueued = 0;
      marked = 0;
      observer = (fun () -> ());
      stats_start = now;
      last_change = now;
      acc = Array.make 4 0.;
      max_bytes = 0;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let pre = "queue." ^ name ^ "." in
      Obs.Metrics.probe m (pre ^ "drops") (fun () -> float_of_int t.drops);
      Obs.Metrics.probe m (pre ^ "marks") (fun () -> float_of_int t.marked);
      Obs.Metrics.probe m (pre ^ "enqueues") (fun () ->
          float_of_int t.enqueued));
  t

let name t = t.name

let emit t event =
  Trace_ev.emit t.tracer
    { Trace_ev.time = Sim.now t.sim; component = t.name; event }

let accumulate t =
  let now = Sim.now t.sim in
  let dt = Time.span_to_sec (Time.diff now t.last_change) in
  if dt > 0. then begin
    let b = float_of_int t.occ_bytes and p = float_of_int t.occ_pkts in
    let acc = t.acc in
    acc.(int_bytes) <- acc.(int_bytes) +. (b *. dt);
    acc.(int_bytes2) <- acc.(int_bytes2) +. (b *. b *. dt);
    acc.(int_pkts) <- acc.(int_pkts) +. (p *. dt);
    acc.(int_pkts2) <- acc.(int_pkts2) +. (p *. p *. dt)
  end;
  t.last_change <- now

let enqueue t pkt =
  if t.occ_bytes + pkt.Packet.size > t.capacity_bytes then begin
    t.drops <- t.drops + 1;
    if Trace_ev.enabled t.tracer Trace_ev.C_drop then
      emit t
        (Trace_ev.Drop { flow = pkt.Packet.flow; occ_bytes = t.occ_bytes });
    t.observer ();
    `Dropped
  end
  else begin
    accumulate t;
    Engine.Ring.push t.fifo pkt;
    t.occ_bytes <- t.occ_bytes + pkt.Packet.size;
    t.occ_pkts <- t.occ_pkts + 1;
    t.enqueued <- t.enqueued + 1;
    if t.occ_bytes > t.max_bytes then t.max_bytes <- t.occ_bytes;
    if t.marking.Marking.on_enqueue ~bytes:t.occ_bytes ~packets:t.occ_pkts
    then begin
      if Packet.is_ect pkt then begin
        Packet.mark_ce pkt;
        t.marked <- t.marked + 1;
        if Trace_ev.enabled t.tracer Trace_ev.C_mark then
          emit t
            (Trace_ev.Mark
               {
                 flow = pkt.Packet.flow;
                 occ_bytes = t.occ_bytes;
                 occ_pkts = t.occ_pkts;
               })
      end
    end;
    if Trace_ev.enabled t.tracer Trace_ev.C_enqueue then
      emit t
        (Trace_ev.Enqueue
           {
             flow = pkt.Packet.flow;
             occ_bytes = t.occ_bytes;
             occ_pkts = t.occ_pkts;
           });
    t.observer ();
    `Enqueued
  end

let dequeue_exn t =
  let pkt = Engine.Ring.pop t.fifo in
  accumulate t;
  t.occ_bytes <- t.occ_bytes - pkt.Packet.size;
  t.occ_pkts <- t.occ_pkts - 1;
  t.marking.Marking.on_dequeue ~bytes:t.occ_bytes ~packets:t.occ_pkts;
  if Trace_ev.enabled t.tracer Trace_ev.C_dequeue then
    emit t
      (Trace_ev.Dequeue
         {
           flow = pkt.Packet.flow;
           occ_bytes = t.occ_bytes;
           occ_pkts = t.occ_pkts;
         });
  t.observer ();
  pkt

let dequeue t =
  if Engine.Ring.is_empty t.fifo then None else Some (dequeue_exn t)

let is_empty t = Engine.Ring.is_empty t.fifo

let occupancy_bytes t = t.occ_bytes
let occupancy_packets t = t.occ_pkts
let capacity_bytes t = t.capacity_bytes
let drops t = t.drops
let enqueued t = t.enqueued
let marked t = t.marked
let set_observer t f = t.observer <- f

let reset_stats t =
  let now = Sim.now t.sim in
  t.stats_start <- now;
  t.last_change <- now;
  Array.fill t.acc 0 4 0.;
  t.max_bytes <- t.occ_bytes;
  t.drops <- 0;
  t.enqueued <- 0;
  t.marked <- 0

let elapsed t =
  accumulate t;
  Time.span_to_sec (Time.diff (Sim.now t.sim) t.stats_start)

let mean_occupancy_bytes t =
  let dt = elapsed t in
  if dt <= 0. then float_of_int t.occ_bytes else t.acc.(int_bytes) /. dt

let stddev_occupancy_bytes t =
  let dt = elapsed t in
  if dt <= 0. then 0.
  else begin
    let mean = t.acc.(int_bytes) /. dt in
    let var = (t.acc.(int_bytes2) /. dt) -. (mean *. mean) in
    sqrt (Stdlib.max var 0.)
  end

let mean_occupancy_packets t =
  let dt = elapsed t in
  if dt <= 0. then float_of_int t.occ_pkts else t.acc.(int_pkts) /. dt

let stddev_occupancy_packets t =
  let dt = elapsed t in
  if dt <= 0. then 0.
  else begin
    let mean = t.acc.(int_pkts) /. dt in
    let var = (t.acc.(int_pkts2) /. dt) -. (mean *. mean) in
    sqrt (Stdlib.max var 0.)
  end

let max_occupancy_bytes t = t.max_bytes
