module Sim = Engine.Sim
module Time = Engine.Time
module Trace_ev = Obs.Trace

(* Slots of the time-weighted occupancy-integral accumulator. A flat
   float array keeps the sums unboxed: mutable float fields in this
   (mixed) record would allocate a box on every enqueue/dequeue. *)
let int_bytes = 0 (* integral of occ_bytes dt (seconds) *)

let int_bytes2 = 1 (* integral of occ_bytes^2 dt *)

let int_pkts = 2
let int_pkts2 = 3

type t = {
  sim : Sim.t;
  name : string;
  buffer : Buffer_mgr.port;
  marking : Marking.t;
  tracer : Trace_ev.t;
  st : Packet.store;
  fifo : Engine.Int_ring.t;
  mutable occ_bytes : int;
  mutable occ_pkts : int;
  mutable drops : int;
  mutable enqueued : int;
  mutable marked : int;
  mutable observer : unit -> unit;
  (* time-weighted occupancy integrals *)
  mutable stats_start : Time.t;
  mutable last_change : Time.t;
  acc : float array;
  mutable max_bytes : int;
}

let create sim ~buffer ?(marking = Marking.none ())
    ?(tracer = Trace_ev.null) ?metrics ?(name = "queue") () =
  let now = Sim.now sim in
  let t =
    {
      sim;
      name;
      buffer;
      marking;
      tracer;
      st = Packet.store_of sim;
      fifo = Engine.Int_ring.create ~capacity:64 ();
      occ_bytes = 0;
      occ_pkts = 0;
      drops = 0;
      enqueued = 0;
      marked = 0;
      observer = (fun () -> ());
      stats_start = now;
      last_change = now;
      acc = Array.make 4 0.;
      max_bytes = 0;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let pre = "queue." ^ name ^ "." in
      Obs.Metrics.probe m (pre ^ "drops") (fun () -> float_of_int t.drops);
      Obs.Metrics.probe m (pre ^ "marks") (fun () -> float_of_int t.marked);
      Obs.Metrics.probe m (pre ^ "enqueues") (fun () ->
          float_of_int t.enqueued);
      Buffer_mgr.register_metrics buffer m);
  (* Announce the capacity behind the marking policy once at creation;
     limit-relative policies derive their initial thresholds from it. A
     Static buffer's limit never moves again, so this is the only call
     those queues ever make. *)
  marking.Marking.on_limit ~limit_bytes:(Buffer_mgr.effective_limit buffer);
  t

let name t = t.name

let emit t event =
  Trace_ev.emit t.tracer
    { Trace_ev.time = Sim.now t.sim; component = t.name; event }

let accumulate t =
  let now = Sim.now t.sim in
  (* Instants are immediate ints: subtracting them directly skips the
     boxed span [Time.diff] would build, and the int -> float conversion
     rounds identically to the int64 one (both are exact below 2^53). *)
  let dt =
    float_of_int (Time.to_int_ns now - Time.to_int_ns t.last_change) /. 1e9
  in
  if dt > 0. then begin
    let b = float_of_int t.occ_bytes and p = float_of_int t.occ_pkts in
    let acc = t.acc in
    acc.(int_bytes) <- acc.(int_bytes) +. (b *. dt);
    acc.(int_bytes2) <- acc.(int_bytes2) +. (b *. b *. dt);
    acc.(int_pkts) <- acc.(int_pkts) +. (p *. dt);
    acc.(int_pkts2) <- acc.(int_pkts2) +. (p *. p *. dt)
  end;
  t.last_change <- now

let enqueue t pkt =
  let size = Packet.size t.st pkt in
  if not (Buffer_mgr.admit t.buffer size) then begin
    t.drops <- t.drops + 1;
    if
      Buffer_mgr.shared t.buffer
      && Trace_ev.enabled t.tracer Trace_ev.C_pool_reject
    then
      emit t
        (Trace_ev.Pool_reject
           {
             flow = Packet.flow t.st pkt;
             occ_bytes = t.occ_bytes;
             pool_used = Buffer_mgr.pool_used t.buffer;
             limit_bytes = Buffer_mgr.effective_limit t.buffer;
           });
    if Trace_ev.enabled t.tracer Trace_ev.C_drop then
      emit t
        (Trace_ev.Drop
           { flow = Packet.flow t.st pkt; occ_bytes = t.occ_bytes });
    (* The queue consumed the packet by dropping it: its handle is
       recycled here, after the traces above read their fields. *)
    Packet.free t.st pkt;
    t.observer ();
    `Dropped
  end
  else begin
    accumulate t;
    Packet.set_enq_ns t.st pkt (Time.to_int_ns (Sim.now t.sim));
    Engine.Int_ring.push t.fifo pkt;
    t.occ_bytes <- t.occ_bytes + size;
    t.occ_pkts <- t.occ_pkts + 1;
    t.enqueued <- t.enqueued + 1;
    if t.occ_bytes > t.max_bytes then t.max_bytes <- t.occ_bytes;
    (* On a shared pool the capacity behind the policy moved with this
       admission (and with every other port's); refresh before the
       policy is consulted so hysteresis sees the K its zone machine
       should be judged against. Static buffers skip this: their limit
       was announced once at creation. *)
    if Buffer_mgr.shared t.buffer then begin
      t.marking.Marking.on_limit
        ~limit_bytes:(Buffer_mgr.effective_limit t.buffer);
      if Trace_ev.enabled t.tracer Trace_ev.C_pool_high_water then begin
        let hw = Buffer_mgr.poll_high_water t.buffer in
        if hw >= 0 then emit t (Trace_ev.Pool_high_water { pool_used = hw })
      end
    end;
    if t.marking.Marking.on_enqueue ~bytes:t.occ_bytes ~packets:t.occ_pkts
    then begin
      if Packet.is_ect t.st pkt then begin
        Packet.mark_ce t.st pkt;
        t.marked <- t.marked + 1;
        if Trace_ev.enabled t.tracer Trace_ev.C_mark then
          emit t
            (Trace_ev.Mark
               {
                 flow = Packet.flow t.st pkt;
                 occ_bytes = t.occ_bytes;
                 occ_pkts = t.occ_pkts;
               })
      end
    end;
    if Trace_ev.enabled t.tracer Trace_ev.C_enqueue then
      emit t
        (Trace_ev.Enqueue
           {
             flow = Packet.flow t.st pkt;
             occ_bytes = t.occ_bytes;
             occ_pkts = t.occ_pkts;
           });
    t.observer ();
    `Enqueued
  end

let dequeue_exn t =
  let pkt = Engine.Int_ring.pop t.fifo in
  let size = Packet.size t.st pkt in
  accumulate t;
  t.occ_bytes <- t.occ_bytes - size;
  t.occ_pkts <- t.occ_pkts - 1;
  Buffer_mgr.release t.buffer size;
  if Buffer_mgr.shared t.buffer then
    t.marking.Marking.on_limit
      ~limit_bytes:(Buffer_mgr.effective_limit t.buffer);
  t.marking.Marking.on_dequeue ~bytes:t.occ_bytes ~packets:t.occ_pkts;
  if Trace_ev.enabled t.tracer Trace_ev.C_dequeue then
    emit t
      (Trace_ev.Dequeue
         {
           flow = Packet.flow t.st pkt;
           occ_bytes = t.occ_bytes;
           occ_pkts = t.occ_pkts;
         });
  t.observer ();
  pkt

let dequeue t =
  if Engine.Int_ring.is_empty t.fifo then None else Some (dequeue_exn t)

let is_empty t = Engine.Int_ring.is_empty t.fifo

let occupancy_bytes t = t.occ_bytes
let occupancy_packets t = t.occ_pkts
let capacity_bytes t = Buffer_mgr.capacity t.buffer
let effective_limit t = Buffer_mgr.effective_limit t.buffer
let buffer t = t.buffer
let drops t = t.drops
let enqueued t = t.enqueued
let marked t = t.marked
let set_observer t f = t.observer <- f

let reset_stats t =
  let now = Sim.now t.sim in
  t.stats_start <- now;
  t.last_change <- now;
  Array.fill t.acc 0 4 0.;
  t.max_bytes <- t.occ_bytes;
  t.drops <- 0;
  t.enqueued <- 0;
  t.marked <- 0

let elapsed t =
  accumulate t;
  Time.span_to_sec (Time.diff (Sim.now t.sim) t.stats_start)

let mean_occupancy_bytes t =
  let dt = elapsed t in
  if dt <= 0. then float_of_int t.occ_bytes else t.acc.(int_bytes) /. dt

let stddev_occupancy_bytes t =
  let dt = elapsed t in
  if dt <= 0. then 0.
  else begin
    let mean = t.acc.(int_bytes) /. dt in
    let var = (t.acc.(int_bytes2) /. dt) -. (mean *. mean) in
    sqrt (Stdlib.max var 0.)
  end

let mean_occupancy_packets t =
  let dt = elapsed t in
  if dt <= 0. then float_of_int t.occ_pkts else t.acc.(int_pkts) /. dt

let stddev_occupancy_packets t =
  let dt = elapsed t in
  if dt <= 0. then 0.
  else begin
    let mean = t.acc.(int_pkts) /. dt in
    let var = (t.acc.(int_pkts2) /. dt) -. (mean *. mean) in
    sqrt (Stdlib.max var 0.)
  end

let max_occupancy_bytes t = t.max_bytes
