(* Pluggable buffer admission: either the historical private per-queue
   capacity (Static) or a switch-level shared memory pool governed by the
   Dynamic Threshold algorithm of Choudhury & Hahne (per-port limit =
   alpha x free pool bytes).

   alpha is quantised to alpha_x1024 = floor(alpha * 1024) at pool
   creation so the admission test on the per-packet hot path is pure
   integer arithmetic: no float compares, no allocation, and the result
   is bit-identical across machines regardless of libm. *)

type config = Static | Dynamic_threshold of { pool_bytes : int; alpha : float }

type pool = {
  size : int;
  alpha_x1024 : int;
  mutable used : int;
  mutable high_water : int;
  mutable announced : int; (* last high_water reported via poll_high_water *)
  mutable rejects : int;
  mutable metrics_registered : bool;
}

type port = {
  pool : pool option; (* [None] = private fixed-capacity buffer *)
  capacity : int; (* fixed cap (solo) / pool size (shared) *)
  mutable occ : int;
}

let config_equal a b =
  match (a, b) with
  | Static, Static -> true
  | ( Dynamic_threshold { pool_bytes = b1; alpha = a1 },
      Dynamic_threshold { pool_bytes = b2; alpha = a2 } ) ->
      b1 = b2 && Int64.bits_of_float a1 = Int64.bits_of_float a2
  | Static, Dynamic_threshold _ | Dynamic_threshold _, Static -> false

let solo ~capacity_bytes =
  if capacity_bytes <= 0 then
    invalid_arg "Buffer_mgr.solo: capacity must be positive";
  { pool = None; capacity = capacity_bytes; occ = 0 }

let create_pool ~pool_bytes ~alpha =
  if pool_bytes <= 0 then
    invalid_arg "Buffer_mgr.create_pool: pool size must be positive";
  let alpha_x1024 = int_of_float (alpha *. 1024.) in
  if alpha_x1024 < 1 then
    invalid_arg "Buffer_mgr.create_pool: alpha must be >= 1/1024";
  {
    size = pool_bytes;
    alpha_x1024;
    used = 0;
    high_water = 0;
    announced = 0;
    rejects = 0;
    metrics_registered = false;
  }

let attach pool = { pool = Some pool; capacity = pool.size; occ = 0 }
let shared t = match t.pool with None -> false | Some _ -> true

(* Current per-port length limit. Static ports: the fixed capacity.
   Shared ports: T = alpha x (B - used), clamped to the pool size (alpha
   > 1 over a near-empty pool would otherwise announce a limit larger
   than the memory that exists). *)
let effective_limit t =
  match t.pool with
  | None -> t.capacity
  | Some p ->
      let limit = (p.size - p.used) * p.alpha_x1024 / 1024 in
      if limit > p.size then p.size else limit

(* Hot path (called from Queue_disc.enqueue): admit and charge [size]
   bytes, or reject. The second conjunct guards pool overflow when
   alpha > 1: the threshold may exceed the free memory, but the pool
   itself never overfills. *)
let admit t size =
  match t.pool with
  | None ->
      if t.occ + size <= t.capacity then begin
        t.occ <- t.occ + size;
        true
      end
      else false
  | Some p ->
      if t.occ + size <= effective_limit t && p.used + size <= p.size then begin
        t.occ <- t.occ + size;
        p.used <- p.used + size;
        if p.used > p.high_water then p.high_water <- p.used;
        true
      end
      else begin
        p.rejects <- p.rejects + 1;
        false
      end

(* Hot path (called from Queue_disc.dequeue): return [size] bytes. *)
let release t size =
  t.occ <- t.occ - size;
  match t.pool with None -> () | Some p -> p.used <- p.used - size

(* Returns the pool high-water mark if it has risen since the last poll,
   [-1] otherwise; lets the queue emit a trace event only on new peaks
   without allocating an option on the hot path. *)
let poll_high_water t =
  match t.pool with
  | None -> -1
  | Some p ->
      if p.high_water > p.announced then begin
        p.announced <- p.high_water;
        p.high_water
      end
      else -1

let occupancy t = t.occ
let capacity t = t.capacity
let pool_used t = match t.pool with None -> t.occ | Some p -> p.used

let pool_size t =
  match t.pool with None -> t.capacity | Some p -> p.size

let pool_rejects t = match t.pool with None -> 0 | Some p -> p.rejects

let pool_high_water t =
  match t.pool with None -> 0 | Some p -> p.high_water

let register_metrics t metrics =
  match t.pool with
  | None -> ()
  | Some p ->
      if not p.metrics_registered then begin
        p.metrics_registered <- true;
        Obs.Metrics.probe metrics "buffer.pool_used" (fun () ->
            float_of_int p.used);
        Obs.Metrics.probe metrics "buffer.pool_high_water" (fun () ->
            float_of_int p.high_water);
        Obs.Metrics.probe metrics "buffer.pool_rejects" (fun () ->
            float_of_int p.rejects)
      end
