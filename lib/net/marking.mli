(** Active-queue-management marking policies.

    A policy is consulted by {!Queue_disc} on every enqueue (may the
    arriving packet be ECN-marked?) and informed of every dequeue (so
    policies with hysteresis can observe queue descents). Policies are
    stateful; create one instance per queue.

    The network layer ships the trivial {!none} policy and the classic RED
    marker used as an extra baseline; the paper's single-threshold (DCTCP)
    and double-threshold (DT-DCTCP) policies live in [lib/dctcp] and are
    built with {!make}. *)

type t = {
  name : string;
  on_enqueue : bytes:int -> packets:int -> bool;
      (** Called after the arriving packet is accepted, with the queue
          occupancy including it; [true] = mark CE. Occupancy is passed
          as two labelled ints (not a record) so the per-packet hot path
          allocates nothing. *)
  on_dequeue : bytes:int -> packets:int -> unit;
      (** Called after a packet leaves; occupancy excludes it. *)
  on_limit : limit_bytes:int -> unit;
      (** Called by {!Queue_disc} whenever the buffer manager's
          effective capacity for the queue changes: once at queue
          creation, then before every enqueue/dequeue consultation while
          the queue sits on a shared {!Buffer_mgr} pool (a Static
          buffer's limit never moves, so the hook stays silent there).
          Lets limit-relative policies re-derive their thresholds from a
          moving K. *)
}

val make :
  name:string ->
  ?on_limit:(limit_bytes:int -> unit) ->
  on_enqueue:(bytes:int -> packets:int -> bool) ->
  on_dequeue:(bytes:int -> packets:int -> unit) ->
  unit ->
  t
(** [on_limit] defaults to a no-op: occupancy-threshold policies with
    absolute byte thresholds ignore capacity movement. *)

val none : unit -> t
(** Never marks (plain drop-tail). *)

val suppress :
  active:(unit -> bool) ->
  on_suppress:(bytes:int -> packets:int -> unit) ->
  t ->
  t
(** ECN-degradation wrapper (fault injection): the inner policy runs on
    every enqueue — its internal state keeps advancing — but whenever it
    asks for a mark while [active ()] holds, the mark is discarded and
    [on_suppress] is invoked with the occupancy instead. Models a
    non-ECN or mark-dropping switch without disturbing the marker. *)

val red :
  ?rng:Engine.Rng.t ->
  min_th_bytes:int ->
  max_th_bytes:int ->
  max_p:float ->
  weight:float ->
  avg_pkt_size:int ->
  unit ->
  t
(** Random Early Detection (gentle variant off) operating on an EWMA of the
    byte occupancy; marks (rather than drops) ECT packets, as in ECN-enabled
    RED. Provided as a classical AQM baseline for the ablation benches.
    Without [rng] the policy marks deterministically when the computed
    probability exceeds 1/2 (useful for reproducible unit tests). *)
