(** Declarative scenario descriptions.

    A spec is everything needed to reproduce one simulation run: the
    transport under test (with its marking parameters), the workload
    variant with its full configuration (topology knobs, durations,
    seed), and a display name. Specs round-trip through JSON via
    {!Obs.Json}, and {!Runner} stores each run's spec inside its
    {!Obs.Manifest}, so any published result can be reconstructed
    bit-for-bit from its manifest alone. *)

type protocol =
  | Dctcp of { g : float; k_bytes : int }
  | Dt_dctcp of { g : float; k1_bytes : int; k2_bytes : int }
  | Reno
  | Ecn_reno of { k_bytes : int }
  | Newreno
      (** Loss-based NewReno ({!Dctcp.Protocol.newreno}): no marking,
          halves at most once per loss episode. *)
  | Dctcp_scaled of { g : float; k_frac : float }
      (** DCTCP with [K = k_frac x effective buffer limit] — thresholds
          ride the shared pool's moving capacity. *)
  | Dt_dctcp_scaled of { g : float; k1_frac : float; k2_frac : float }
      (** DT-DCTCP with the hysteresis band at fractions of the
          effective limit. *)

type workload =
  | Longlived of Workloads.Longlived.config
  | Incast of { config : Workloads.Incast.config; sack : bool }
  | Completion of Workloads.Completion.config
  | Dynamic of Workloads.Dynamic.config
  | Convergence of Workloads.Convergence.config
  | Deadline of { config : Workloads.Deadline.config; d2tcp : bool }
  | Fattree of Workloads.Fattree.config
      (** Fat-tree fabric FCT-slowdown study (runs on
          {!Net.Topology.fat_tree}, not the dumbbell/star). *)

type t = {
  name : string;
  protocol : protocol;
  workload : workload;
  faults : Fault.Plan.t option;
      (** Optional fault plan for the scenario's bottleneck link. [None]
          means no injector is ever constructed — the run (and the
          spec's JSON, which omits the key) is bit-identical to a
          pre-fault-injection build. *)
  buffer : Net.Buffer_mgr.config;
      (** The bottleneck switch's memory model. [Static] (the default)
          keeps every queue's private fixed capacity and serializes to
          nothing — the JSON omits the key, so pre-existing specs and
          manifests stay bit-stable. [Dynamic_threshold] replaces the
          workload config's [buffer_bytes] at the bottleneck switch
          with one shared pool. *)
}

val make :
  ?faults:Fault.Plan.t ->
  ?buffer:Net.Buffer_mgr.config ->
  name:string ->
  protocol:protocol ->
  workload:workload ->
  unit ->
  t
(** [buffer] defaults to {!Net.Buffer_mgr.Static}. *)

val protocol_name : protocol -> string
(** Stable identifier, also the JSON [kind] tag: ["dctcp"],
    ["dt-dctcp"], ["reno"], ["ecn-reno"], ["newreno"], ["dctcp-scaled"],
    ["dt-dctcp-scaled"]. *)

val workload_name : workload -> string
(** JSON [kind] tag: ["longlived"], ["incast"], ... *)

val protocol_of : protocol -> Dctcp.Protocol.t
(** Instantiate the transport bundle a scenario deploys. *)

val seed : t -> int64
(** The RNG seed of the underlying workload config. *)

val with_seed : int64 -> t -> t
(** Functional update of the workload seed (for repeat sweeps). *)

val with_name : string -> t -> t

val to_json : t -> Obs.Json.t
(** Spans are integer nanoseconds; seeds are decimal strings (the
    {!Obs.Manifest} convention, so full-width int64 seeds survive JSON
    readers without 64-bit integers). *)

val of_json : Obs.Json.t -> (t, string) result
(** Strict inverse of {!to_json}: every config field is required, so a
    spec written by an older build fails loudly instead of silently
    filling defaults. The exceptions are ["faults"] (absence means
    {!t.faults}[ = None]) and ["buffer"] (absence means [Static]) —
    older specs predate both fields. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** [of_json] composed with {!Obs.Json.parse}. *)

val equal : t -> t -> bool
(** Field-complete equality via the canonical JSON form (floats compare
    by bit pattern). *)
