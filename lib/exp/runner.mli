(** Sweep executor: runs {!Spec} lists, optionally fanning runs across
    OCaml 5 domains.

    This module is the only sanctioned parallelism site in the tree
    (dtlint rule R8): scenarios and protocol code stay strictly
    deterministic single-domain programs, and the runner exploits the
    fact that distinct runs share no mutable simulation state. Results
    are always delivered in spec order, so for a fixed spec list the
    output array is bit-identical whatever [jobs] is. *)

type outcome = {
  spec : Spec.t;
  result : Outcome.t;
  manifest : Obs.Manifest.t;
      (** Carries the full spec under params key ["spec"], so
          [Spec.of_json] can reconstruct the exact scenario from the
          manifest alone. *)
}

val run_one : ?tracer:Obs.Trace.t -> Spec.t -> outcome
(** Executes one spec with a fresh metrics registry. A raising workload
    yields [result = Failed _] rather than an exception; the manifest is
    still produced. [tracer] is forwarded to workloads that accept one
    (currently longlived). *)

val run : ?jobs:int -> Spec.t list -> outcome array
(** [run ~jobs specs] executes every spec and returns outcomes in spec
    order. [jobs <= 1] (default) runs serially in the calling domain;
    otherwise [min jobs (length specs)] workers claim specs off a shared
    atomic counter. A failing run occupies its slot as [Failed] and
    never aborts the sweep. *)
