(** Sweep executor: runs {!Spec} lists, optionally fanning runs across
    OCaml 5 domains.

    This module is the only sanctioned parallelism site in the tree
    (dtlint rule R8): scenarios and protocol code stay strictly
    deterministic single-domain programs, and the runner exploits the
    fact that distinct runs share no mutable simulation state. Results
    are always delivered in spec order, so for a fixed spec list the
    output array is bit-identical whatever [jobs] is. *)

type outcome = {
  spec : Spec.t;
  result : Outcome.t;
  manifest : Obs.Manifest.t;
      (** Carries the full spec under params key ["spec"], so
          [Spec.of_json] can reconstruct the exact scenario from the
          manifest alone. *)
}

val analysis_config : Spec.t -> Obs.Analyze.config option
(** The streaming-analysis configuration a spec implies: the workload's
    sampling period (default 20 us when [trace_sampling] is unset), the
    protocol's marking band — (K1, K2) for DT-DCTCP, K widened by one
    segment either side for single-threshold protocols, none for the
    loss-based transports. Scaled protocols resolve their fractions
    against the steady-state effective limit: the configured capacity
    under [Static], the Dynamic-Threshold fixed point
    [alpha B / (1 + alpha f)] under a shared pool — and the flow count /
    RTT for the synchronization index. [None] for
    workloads the analyzer does not cover yet (currently everything but
    longlived). [dtsim analyze] writes this same config into the trace
    header, which is what keeps online and offline analysis identical. *)

val run_one :
  ?tracer:Obs.Trace.t ->
  ?on_sim:(Engine.Sim.t -> unit) ->
  ?analyze:bool ->
  Spec.t ->
  outcome
(** Executes one spec with a fresh metrics registry. A raising workload
    yields [result = Failed _] rather than an exception; the manifest is
    still produced. [tracer] is forwarded to workloads that accept one
    (currently longlived); [on_sim] likewise (the self-profiler's
    attachment point). [analyze] (default false) tees an {!Obs.Analyze}
    analyzer into the run's tracer and embeds its JSON block into the
    manifest; when false nothing is constructed and the manifest is
    byte-identical to pre-analysis builds. *)

val run : ?jobs:int -> ?analyze:bool -> Spec.t list -> outcome array
(** [run ~jobs specs] executes every spec and returns outcomes in spec
    order. [jobs <= 1] (default) runs serially in the calling domain;
    otherwise [min jobs (length specs)] workers claim specs off a shared
    atomic counter. A failing run occupies its slot as [Failed] and
    never aborts the sweep. [analyze] is forwarded to {!run_one} for
    every spec (each worker builds its own analyzer, so sweeps stay
    data-race free). *)
