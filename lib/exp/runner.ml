type outcome = {
  spec : Spec.t;
  result : Outcome.t;
  manifest : Obs.Manifest.t;
}

let metric snapshot name =
  match List.find_opt (fun (k, _) -> String.equal k name) snapshot with
  | Some (_, v) -> Some v
  | None -> None

let payload_of ?tracer ~metrics ?faults proto (w : Spec.workload) =
  (* Workloads that have not grown fault support yet must not silently
     ignore a plan: a "robustness" result that secretly ran fault-free
     would be worse than no result. *)
  let unsupported kind =
    invalid_arg
      (Printf.sprintf
         "Exp.Runner: spec has a fault plan but the %s workload does not \
          support fault injection"
         kind)
  in
  match w with
  | Spec.Longlived cfg ->
      Outcome.Longlived
        (Workloads.Longlived.run ?tracer ~metrics ?faults proto cfg)
  | Spec.Incast { config; sack } ->
      Outcome.Incast (Workloads.Incast.run_with_sack ?faults ~sack proto config)
  | Spec.Completion cfg ->
      Outcome.Completion (Workloads.Completion.run ?faults proto cfg)
  | Spec.Dynamic cfg ->
      if Option.is_some faults then unsupported "dynamic";
      Outcome.Dynamic (Workloads.Dynamic.run proto cfg)
  | Spec.Convergence cfg ->
      if Option.is_some faults then unsupported "convergence";
      Outcome.Convergence (Workloads.Convergence.run proto cfg)
  | Spec.Deadline { config; d2tcp } ->
      if Option.is_some faults then unsupported "deadline";
      let kind =
        if d2tcp then
          Workloads.Deadline.Deadline_aware
            (fun ~total_segments ~deadline ->
              Dctcp.D2tcp_cc.cc ~total_segments ~deadline ())
        else Workloads.Deadline.Plain proto.Dctcp.Protocol.cc
      in
      Outcome.Deadline
        (Workloads.Deadline.run
           ~marking:(fun () -> proto.Dctcp.Protocol.marking ())
           ~echo:proto.Dctcp.Protocol.echo kind config)

let run_one ?tracer (spec : Spec.t) =
  let metrics = Obs.Metrics.create () in
  let result, wall_s =
    Obs.Profile.time (fun () ->
        match
          let proto = Spec.protocol_of spec.protocol in
          payload_of ?tracer ~metrics ?faults:spec.faults proto spec.workload
        with
        | payload -> Outcome.Done payload
        | exception exn ->
            Outcome.Failed
              { spec = spec.name; error = Printexc.to_string exn })
  in
  let snapshot = Obs.Metrics.snapshot metrics in
  let events =
    match metric snapshot "engine.events_processed" with
    | Some v -> int_of_float v
    | None -> 0
  in
  let manifest =
    Obs.Manifest.make ~name:spec.name ~seed:(Spec.seed spec)
      ~params:[ ("spec", Spec.to_json spec) ]
      ~wall_clock_s:wall_s ~events ~metrics:snapshot
  in
  { spec; result; manifest }

(* Work-stealing over an atomic index. Each worker claims the next
   unclaimed spec and writes its outcome into that spec's slot, so the
   result array is in spec order no matter which domain ran what, and
   simulations themselves share no mutable state (each run builds its own
   Sim/Rng from the spec's seed). [Domain.join] gives the happens-before
   edge that makes the slot writes visible to the caller. *)
let run ?(jobs = 1) specs =
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let workers = Stdlib.min jobs n in
  if workers <= 1 then Array.map (fun s -> run_one s) specs
  else begin
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        slots.(i) <- Some (run_one specs.(i));
        worker ()
      end
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function
        | Some o -> o
        | None -> invalid_arg "Exp.Runner.run: unfilled slot")
      slots
  end
