type outcome = {
  spec : Spec.t;
  result : Outcome.t;
  manifest : Obs.Manifest.t;
}

let metric snapshot name =
  match List.find_opt (fun (k, _) -> String.equal k name) snapshot with
  | Some (_, v) -> Some v
  | None -> None

(* The analyzer band is the marking operating point of the protocol
   under test. Single-threshold protocols get a degenerate band widened
   by one segment either side of K, so instantaneous-marking chatter
   around the threshold still registers as band crossings; loss-based
   protocols have no marking threshold at all, which disables the cycle
   detector. Scaled protocols mark at fractions of the effective limit,
   so their band needs the steady-state limit: under [Static] that is
   the configured capacity; under Dynamic Threshold a single loaded
   port whose queue parks at [f x limit] settles at the fixed point
   [limit = alpha (B - f limit)], i.e. [alpha B / (1 + alpha f)]. *)
let steady_limit ~(buffer : Net.Buffer_mgr.config) ~buffer_bytes ~frac =
  match buffer with
  | Net.Buffer_mgr.Static -> float_of_int buffer_bytes
  | Net.Buffer_mgr.Dynamic_threshold { pool_bytes; alpha } ->
      alpha *. float_of_int pool_bytes /. (1. +. (alpha *. frac))

let band_of (p : Spec.protocol) ~buffer ~buffer_bytes ~segment_bytes =
  match p with
  | Spec.Dctcp { k_bytes; _ } | Spec.Ecn_reno { k_bytes } ->
      Some (k_bytes - segment_bytes, k_bytes + segment_bytes)
  | Spec.Dt_dctcp { k1_bytes; k2_bytes; _ } -> Some (k1_bytes, k2_bytes)
  | Spec.Reno | Spec.Newreno -> None
  | Spec.Dctcp_scaled { k_frac; _ } ->
      let limit = steady_limit ~buffer ~buffer_bytes ~frac:k_frac in
      let k = int_of_float (k_frac *. limit) in
      Some (k - segment_bytes, k + segment_bytes)
  | Spec.Dt_dctcp_scaled { k1_frac; k2_frac; _ } ->
      let frac = (k1_frac +. k2_frac) /. 2. in
      let limit = steady_limit ~buffer ~buffer_bytes ~frac in
      Some (int_of_float (k1_frac *. limit), int_of_float (k2_frac *. limit))

let default_sample_period = Engine.Time.span_of_us 20.

let analysis_config (spec : Spec.t) =
  match spec.workload with
  | Spec.Longlived cfg ->
      let segment_bytes = cfg.Workloads.Longlived.segment_bytes in
      Some
        {
          Obs.Analyze.sample_period =
            Option.value cfg.Workloads.Longlived.trace_sampling
              ~default:default_sample_period;
          band_bytes =
            band_of spec.protocol ~buffer:spec.buffer
              ~buffer_bytes:cfg.Workloads.Longlived.buffer_bytes
              ~segment_bytes;
          n_flows = cfg.Workloads.Longlived.n_flows;
          rtt = cfg.Workloads.Longlived.rtt;
          segment_bytes;
        }
  | Spec.Incast _ | Spec.Completion _ | Spec.Dynamic _ | Spec.Convergence _
  | Spec.Deadline _ | Spec.Fattree _ ->
      None

let payload_of ?tracer ?on_sim ~metrics ?faults ~buffer proto
    (w : Spec.workload) =
  match w with
  | Spec.Longlived cfg ->
      Outcome.Longlived
        (Workloads.Longlived.run ?tracer ~metrics ?faults ~buffer ?on_sim
           proto cfg)
  | Spec.Incast { config; sack } ->
      Outcome.Incast
        (Workloads.Incast.run_with_sack ?faults ~buffer ~sack proto config)
  | Spec.Completion cfg ->
      Outcome.Completion (Workloads.Completion.run ?faults ~buffer proto cfg)
  | Spec.Dynamic cfg ->
      Outcome.Dynamic (Workloads.Dynamic.run ?faults ~buffer proto cfg)
  | Spec.Convergence cfg ->
      Outcome.Convergence (Workloads.Convergence.run ?faults ~buffer proto cfg)
  | Spec.Deadline { config; d2tcp } ->
      let kind =
        if d2tcp then
          Workloads.Deadline.Deadline_aware
            (fun ~total_segments ~deadline ->
              Dctcp.D2tcp_cc.cc ~total_segments ~deadline ())
        else Workloads.Deadline.Plain proto.Dctcp.Protocol.cc
      in
      Outcome.Deadline
        (Workloads.Deadline.run
           ~marking:(fun () -> proto.Dctcp.Protocol.marking ())
           ~echo:proto.Dctcp.Protocol.echo ?faults ~buffer kind config)
  | Spec.Fattree cfg ->
      Outcome.Fattree
        (Workloads.Fattree.run ~metrics ?faults ~buffer proto cfg)

let run_one ?tracer ?on_sim ?(analyze = false) (spec : Spec.t) =
  let metrics = Obs.Metrics.create () in
  (* The analyzer tees into whatever tracer the caller supplied; with
     [analyze = false] nothing is constructed and the run — tracer
     plumbing included — is the one this runner always produced. *)
  let analyzer =
    if not analyze then None
    else
      Option.map (fun cfg -> Obs.Analyze.create cfg) (analysis_config spec)
  in
  let tracer =
    match analyzer with
    | None -> tracer
    | Some an ->
        let atr = Obs.Analyze.tracer an in
        Some
          (match tracer with
          | None -> atr
          | Some user -> Obs.Trace.tee user atr)
  in
  let result, wall_s =
    Obs.Profile.time (fun () ->
        match
          let proto = Spec.protocol_of spec.protocol in
          payload_of ?tracer ?on_sim ~metrics ?faults:spec.faults
            ~buffer:spec.buffer proto spec.workload
        with
        | payload -> Outcome.Done payload
        | exception exn ->
            Outcome.Failed
              { spec = spec.name; error = Printexc.to_string exn })
  in
  let snapshot = Obs.Metrics.snapshot metrics in
  let events =
    match metric snapshot "engine.events_processed" with
    | Some v -> int_of_float v
    | None -> 0
  in
  let analysis = Option.map Obs.Analyze.to_json analyzer in
  let manifest =
    Obs.Manifest.make ?analysis ~name:spec.name ~seed:(Spec.seed spec)
      ~params:[ ("spec", Spec.to_json spec) ]
      ~wall_clock_s:wall_s ~events ~metrics:snapshot ()
  in
  { spec; result; manifest }

(* Work-stealing over an atomic index. Each worker claims the next
   unclaimed spec and writes its outcome into that spec's slot, so the
   result array is in spec order no matter which domain ran what, and
   simulations themselves share no mutable state (each run builds its own
   Sim/Rng from the spec's seed). [Domain.join] gives the happens-before
   edge that makes the slot writes visible to the caller. *)
let run ?(jobs = 1) ?(analyze = false) specs =
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let workers = Stdlib.min jobs n in
  if workers <= 1 then Array.map (fun s -> run_one ~analyze s) specs
  else begin
    let slots = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        slots.(i) <- Some (run_one ~analyze specs.(i));
        worker ()
      end
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.map
      (function
        | Some o -> o
        | None -> invalid_arg "Exp.Runner.run: unfilled slot")
      slots
  end
