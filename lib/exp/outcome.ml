module Json = Obs.Json
module L = Workloads.Longlived
module I = Workloads.Incast
module Cp = Workloads.Completion
module Dy = Workloads.Dynamic
module Cv = Workloads.Convergence
module De = Workloads.Deadline
module Ft = Workloads.Fattree

type payload =
  | Longlived of L.result
  | Incast of I.result
  | Completion of Cp.result
  | Dynamic of Dy.result
  | Convergence of Cv.result
  | Deadline of De.result
  | Fattree of Ft.result

type t = Done of payload | Failed of { spec : string; error : string }

let floats xs = Json.List (Array.to_list xs |> List.map (fun x -> Json.Float x))

let longlived_json (r : L.result) =
  let base =
    [
      ("mean_queue_pkts", Json.Float r.mean_queue_pkts);
      ("std_queue_pkts", Json.Float r.std_queue_pkts);
      ("max_queue_pkts", Json.Float r.max_queue_pkts);
      ("mean_alpha", Json.Float r.mean_alpha);
      ("throughput_bps", Json.Float r.throughput_bps);
      ("utilization", Json.Float r.utilization);
      ("marked_fraction", Json.Float r.marked_fraction);
      ("drops", Json.Int r.drops);
      ("timeouts", Json.Int r.timeouts);
      ("fast_retransmits", Json.Int r.fast_retransmits);
      ("jain_fairness", Json.Float r.jain_fairness);
    ]
  in
  let series =
    match r.queue_series with
    | None -> []
    | Some pts ->
        [
          ( "queue_series",
            Json.List
              (Array.to_list pts
              |> List.map (fun (t, q) ->
                     Json.List [ Json.Float t; Json.Float q ])) );
        ]
  in
  Json.Obj (base @ series)

let incast_json (r : I.result) =
  Json.Obj
    [
      ("mean_goodput_bps", Json.Float r.mean_goodput_bps);
      ("min_goodput_bps", Json.Float r.min_goodput_bps);
      ("max_goodput_bps", Json.Float r.max_goodput_bps);
      ("mean_completion", Json.Float r.mean_completion);
      ("p99_completion", Json.Float r.p99_completion);
      ("timeouts_per_run", Json.Float r.timeouts_per_run);
      ("incomplete", Json.Int r.incomplete);
    ]

let completion_json (r : Cp.result) =
  Json.Obj
    [
      ("mean_completion_s", Json.Float r.mean_completion_s);
      ("min_completion_s", Json.Float r.min_completion_s);
      ("max_completion_s", Json.Float r.max_completion_s);
      ("p99_completion_s", Json.Float r.p99_completion_s);
      ("stddev_completion_s", Json.Float r.stddev_completion_s);
      ("timeouts_per_run", Json.Float r.timeouts_per_run);
      ("incomplete", Json.Int r.incomplete);
    ]

let dynamic_json (r : Dy.result) =
  Json.Obj
    [
      ("short_flows_started", Json.Int r.short_flows_started);
      ("short_flows_completed", Json.Int r.short_flows_completed);
      ("fct_mean_s", Json.Float r.fct_mean_s);
      ("fct_p50_s", Json.Float r.fct_p50_s);
      ("fct_p99_s", Json.Float r.fct_p99_s);
      ("fct_max_s", Json.Float r.fct_max_s);
      ("background_throughput_bps", Json.Float r.background_throughput_bps);
      ("mean_queue_pkts", Json.Float r.mean_queue_pkts);
      ("std_queue_pkts", Json.Float r.std_queue_pkts);
    ]

let convergence_json (r : Cv.result) =
  Json.Obj
    [
      ( "shares",
        Json.List (Array.to_list r.shares |> List.map (fun row -> floats row))
      );
      ("window_s", Json.Float r.window_s);
      ("convergence_times_s", floats r.convergence_times_s);
      ("jain_steady", Json.Float r.jain_steady);
      ("utilization_steady", Json.Float r.utilization_steady);
    ]

let deadline_json (r : De.result) =
  Json.Obj
    [
      ("met_fraction", Json.Float r.met_fraction);
      ("mean_completion_s", Json.Float r.mean_completion_s);
      ("p99_completion_s", Json.Float r.p99_completion_s);
      ("timeouts_per_run", Json.Float r.timeouts_per_run);
      ("incomplete", Json.Int r.incomplete);
    ]

let fattree_json (r : Ft.result) =
  Json.Obj
    [
      ("slowdown_p50", Json.Float r.slowdown_p50);
      ("slowdown_p95", Json.Float r.slowdown_p95);
      ("slowdown_p99", Json.Float r.slowdown_p99);
      ("slowdown_p999", Json.Float r.slowdown_p999);
      ("slowdown_mean", Json.Float r.slowdown_mean);
      ("slowdown_max", Json.Float r.slowdown_max);
      ("flows_total", Json.Int r.flows_total);
      ("timeouts", Json.Int r.timeouts);
      ("incomplete", Json.Int r.incomplete);
      ("no_route_drops", Json.Int r.no_route_drops);
    ]

let payload_kind = function
  | Longlived _ -> "longlived"
  | Incast _ -> "incast"
  | Completion _ -> "completion"
  | Dynamic _ -> "dynamic"
  | Convergence _ -> "convergence"
  | Deadline _ -> "deadline"
  | Fattree _ -> "fattree"

let payload_json = function
  | Longlived r -> longlived_json r
  | Incast r -> incast_json r
  | Completion r -> completion_json r
  | Dynamic r -> dynamic_json r
  | Convergence r -> convergence_json r
  | Deadline r -> deadline_json r
  | Fattree r -> fattree_json r

let to_json = function
  | Done p ->
      Json.Obj
        [
          ("status", Json.String "done");
          ("kind", Json.String (payload_kind p));
          ("result", payload_json p);
        ]
  | Failed { spec; error } ->
      Json.Obj
        [
          ("status", Json.String "failed");
          ("spec", Json.String spec);
          ("error", Json.String error);
        ]

let summary = function
  | Failed { spec; error } -> Printf.sprintf "%s: FAILED (%s)" spec error
  | Done (Longlived r) ->
      Printf.sprintf
        "queue %.1f±%.1f pkts, util %.3f, fairness %.3f, %d drops"
        r.mean_queue_pkts r.std_queue_pkts r.utilization r.jain_fairness
        r.drops
  | Done (Incast r) ->
      Printf.sprintf "goodput %.1f Mbps, %.2f timeouts/run, %d incomplete"
        (r.mean_goodput_bps /. 1e6)
        r.timeouts_per_run r.incomplete
  | Done (Completion r) ->
      Printf.sprintf "completion %.2f ms mean / %.2f ms p99, %d incomplete"
        (r.mean_completion_s *. 1e3)
        (r.p99_completion_s *. 1e3)
        r.incomplete
  | Done (Dynamic r) ->
      Printf.sprintf "fct p50 %.3f ms / p99 %.3f ms, queue %.1f pkts"
        (r.fct_p50_s *. 1e3) (r.fct_p99_s *. 1e3) r.mean_queue_pkts
  | Done (Convergence r) ->
      Printf.sprintf "jain %.3f, util %.3f" r.jain_steady r.utilization_steady
  | Done (Deadline r) ->
      Printf.sprintf "%.1f%% deadlines met, %.2f timeouts/run"
        (100. *. r.met_fraction) r.timeouts_per_run
  | Done (Fattree r) ->
      Printf.sprintf
        "slowdown p50 %.2f / p99 %.2f / p99.9 %.2f, %d timeouts, %d incomplete"
        r.slowdown_p50 r.slowdown_p99 r.slowdown_p999 r.timeouts r.incomplete

let equal a b = Json.equal (to_json a) (to_json b)
