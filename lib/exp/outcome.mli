(** Run results, unified across workload variants.

    [Runner] wraps every workload's result record in one sum type so
    sweeps over heterogeneous scenarios return a single array, and a
    failed run is an ordinary value ({!Failed}) rather than an exception
    that kills the sweep. *)

type payload =
  | Longlived of Workloads.Longlived.result
  | Incast of Workloads.Incast.result
  | Completion of Workloads.Completion.result
  | Dynamic of Workloads.Dynamic.result
  | Convergence of Workloads.Convergence.result
  | Deadline of Workloads.Deadline.result
  | Fattree of Workloads.Fattree.result

type t =
  | Done of payload
  | Failed of { spec : string; error : string }
      (** [spec] is the failing scenario's name; [error] the printed
          exception. *)

val payload_kind : payload -> string
(** Workload tag, matching {!Spec.workload_name}. *)

val to_json : t -> Obs.Json.t
(** Full result serialization (including optional queue series and
    per-window share matrices). Non-finite floats are preserved in the
    tree; {!Obs.Json.equal} compares them by bit pattern, which is what
    the parallel-vs-serial identity check relies on. *)

val summary : t -> string
(** One-line human summary for CLI output (the library itself never
    prints). *)

val equal : t -> t -> bool
(** Bit-exact comparison via {!to_json}. *)
