module Json = Obs.Json
module L = Workloads.Longlived
module I = Workloads.Incast
module Cp = Workloads.Completion
module Dy = Workloads.Dynamic
module Cv = Workloads.Convergence
module De = Workloads.Deadline
module Ft = Workloads.Fattree

type protocol =
  | Dctcp of { g : float; k_bytes : int }
  | Dt_dctcp of { g : float; k1_bytes : int; k2_bytes : int }
  | Reno
  | Ecn_reno of { k_bytes : int }
  | Newreno
  | Dctcp_scaled of { g : float; k_frac : float }
  | Dt_dctcp_scaled of { g : float; k1_frac : float; k2_frac : float }

type workload =
  | Longlived of L.config
  | Incast of { config : I.config; sack : bool }
  | Completion of Cp.config
  | Dynamic of Dy.config
  | Convergence of Cv.config
  | Deadline of { config : De.config; d2tcp : bool }
  | Fattree of Ft.config

type t = {
  name : string;
  protocol : protocol;
  workload : workload;
  faults : Fault.Plan.t option;
  buffer : Net.Buffer_mgr.config;
}

let make ?faults ?(buffer = Net.Buffer_mgr.Static) ~name ~protocol ~workload
    () =
  { name; protocol; workload; faults; buffer }

let protocol_name = function
  | Dctcp _ -> "dctcp"
  | Dt_dctcp _ -> "dt-dctcp"
  | Reno -> "reno"
  | Ecn_reno _ -> "ecn-reno"
  | Newreno -> "newreno"
  | Dctcp_scaled _ -> "dctcp-scaled"
  | Dt_dctcp_scaled _ -> "dt-dctcp-scaled"

let workload_name = function
  | Longlived _ -> "longlived"
  | Incast _ -> "incast"
  | Completion _ -> "completion"
  | Dynamic _ -> "dynamic"
  | Convergence _ -> "convergence"
  | Deadline _ -> "deadline"
  | Fattree _ -> "fattree"

let protocol_of = function
  | Dctcp { g; k_bytes } -> Dctcp.Protocol.dctcp ~g ~k_bytes ()
  | Dt_dctcp { g; k1_bytes; k2_bytes } ->
      Dctcp.Protocol.dt_dctcp ~g ~k1_bytes ~k2_bytes ()
  | Reno -> Dctcp.Protocol.reno ()
  | Ecn_reno { k_bytes } -> Dctcp.Protocol.ecn_reno ~k_bytes
  | Newreno -> Dctcp.Protocol.newreno ()
  | Dctcp_scaled { g; k_frac } -> Dctcp.Protocol.dctcp_scaled ~g ~k_frac ()
  | Dt_dctcp_scaled { g; k1_frac; k2_frac } ->
      Dctcp.Protocol.dt_dctcp_scaled ~g ~k1_frac ~k2_frac ()

let seed t =
  match t.workload with
  | Longlived c -> c.L.seed
  | Incast { config; _ } -> config.I.seed
  | Completion c -> c.Cp.seed
  | Dynamic c -> c.Dy.seed
  | Convergence c -> c.Cv.seed
  | Deadline { config; _ } -> config.De.seed
  | Fattree c -> c.Ft.seed

let with_seed seed t =
  let workload =
    match t.workload with
    | Longlived c -> Longlived { c with L.seed }
    | Incast { config; sack } -> Incast { config = { config with I.seed }; sack }
    | Completion c -> Completion { c with Cp.seed }
    | Dynamic c -> Dynamic { c with Dy.seed }
    | Convergence c -> Convergence { c with Cv.seed }
    | Deadline { config; d2tcp } ->
        Deadline { config = { config with De.seed }; d2tcp }
    | Fattree c -> Fattree { c with Ft.seed }
  in
  { t with workload }

let with_name name t = { t with name }

(* --- JSON encoding ---

   Spans are serialized as integer nanoseconds ([Engine.Time.span] is an
   [int64], always in-range for OCaml's 63-bit [int] at simulated
   timescales); seeds follow the Manifest convention of a decimal string
   so full-width int64 values survive readers without exact 64-bit
   integers. *)

let span s = Json.Int (Int64.to_int s)
let span_opt = function None -> Json.Null | Some s -> span s
let seed_json s = Json.String (Int64.to_string s)

let longlived_fields (c : L.config) =
  [
    ("n_flows", Json.Int c.n_flows);
    ("bottleneck_rate_bps", Json.Float c.bottleneck_rate_bps);
    ("rtt", span c.rtt);
    ("buffer_bytes", Json.Int c.buffer_bytes);
    ("segment_bytes", Json.Int c.segment_bytes);
    ("warmup", span c.warmup);
    ("measure", span c.measure);
    ("trace_sampling", span_opt c.trace_sampling);
    ("alpha_sample_period", span c.alpha_sample_period);
    ("stagger", span c.stagger);
    ("min_rto", span c.min_rto);
    ("seed", seed_json c.seed);
  ]

let incast_fields (c : I.config) sack =
  [
    ("sack", Json.Bool sack);
    ("n_flows", Json.Int c.n_flows);
    ("bytes_per_flow", Json.Int c.bytes_per_flow);
    ("repeats", Json.Int c.repeats);
    ("rate_bps", Json.Float c.rate_bps);
    ("buffer_bytes", Json.Int c.buffer_bytes);
    ("leaf_buffer_bytes", Json.Int c.leaf_buffer_bytes);
    ("segment_bytes", Json.Int c.segment_bytes);
    ("min_rto", span c.min_rto);
    ("time_cap", span c.time_cap);
    ("start_jitter", span c.start_jitter);
    ("initial_cwnd", Json.Float c.initial_cwnd);
    ("seed", seed_json c.seed);
  ]

let completion_fields (c : Cp.config) =
  [
    ("n_flows", Json.Int c.n_flows);
    ("total_bytes", Json.Int c.total_bytes);
    ("repeats", Json.Int c.repeats);
    ("rate_bps", Json.Float c.rate_bps);
    ("buffer_bytes", Json.Int c.buffer_bytes);
    ("leaf_buffer_bytes", Json.Int c.leaf_buffer_bytes);
    ("segment_bytes", Json.Int c.segment_bytes);
    ("min_rto", span c.min_rto);
    ("time_cap", span c.time_cap);
    ("seed", seed_json c.seed);
  ]

let dynamic_fields (c : Dy.config) =
  [
    ("background_flows", Json.Int c.background_flows);
    ("short_senders", Json.Int c.short_senders);
    ("arrival_rate", Json.Float c.arrival_rate);
    ("short_flow_segments", Json.Int c.short_flow_segments);
    ("duration", span c.duration);
    ("warmup", span c.warmup);
    ("drain", span c.drain);
    ("bottleneck_rate_bps", Json.Float c.bottleneck_rate_bps);
    ("rtt", span c.rtt);
    ("buffer_bytes", Json.Int c.buffer_bytes);
    ("segment_bytes", Json.Int c.segment_bytes);
    ("min_rto", span c.min_rto);
    ("seed", seed_json c.seed);
  ]

let convergence_fields (c : Cv.config) =
  [
    ("n_flows", Json.Int c.n_flows);
    ("join_interval", span c.join_interval);
    ("hold", span c.hold);
    ("sample_window", span c.sample_window);
    ("bottleneck_rate_bps", Json.Float c.bottleneck_rate_bps);
    ("rtt", span c.rtt);
    ("buffer_bytes", Json.Int c.buffer_bytes);
    ("segment_bytes", Json.Int c.segment_bytes);
    ("min_rto", span c.min_rto);
    ("convergence_band", Json.Float c.convergence_band);
    ("seed", seed_json c.seed);
  ]

let deadline_fields (c : De.config) d2tcp =
  [
    ("d2tcp", Json.Bool d2tcp);
    ("n_flows", Json.Int c.n_flows);
    ("bytes_per_flow", Json.Int c.bytes_per_flow);
    ("deadline", span c.deadline);
    ("deadline_spread", span c.deadline_spread);
    ("repeats", Json.Int c.repeats);
    ("rate_bps", Json.Float c.rate_bps);
    ("buffer_bytes", Json.Int c.buffer_bytes);
    ("leaf_buffer_bytes", Json.Int c.leaf_buffer_bytes);
    ("segment_bytes", Json.Int c.segment_bytes);
    ("min_rto", span c.min_rto);
    ("start_jitter", span c.start_jitter);
    ("time_cap", span c.time_cap);
    ("seed", seed_json c.seed);
  ]

let fattree_fields (c : Ft.config) =
  [
    ("k", Json.Int c.k);
    ("incast_fanin", Json.Int c.incast_fanin);
    ("incast_bytes", Json.Int c.incast_bytes);
    ("long_flows", Json.Int c.long_flows);
    ("long_bytes", Json.Int c.long_bytes);
    ("rate_bps", Json.Float c.rate_bps);
    ("link_delay", span c.link_delay);
    ("queue_bytes", Json.Int c.queue_bytes);
    ("segment_bytes", Json.Int c.segment_bytes);
    ("min_rto", span c.min_rto);
    ("time_cap", span c.time_cap);
    ("start_spread", span c.start_spread);
    ("initial_cwnd", Json.Float c.initial_cwnd);
    ("seed", seed_json c.seed);
  ]

let protocol_to_json p =
  let kind = ("kind", Json.String (protocol_name p)) in
  match p with
  | Dctcp { g; k_bytes } ->
      Json.Obj [ kind; ("g", Json.Float g); ("k_bytes", Json.Int k_bytes) ]
  | Dt_dctcp { g; k1_bytes; k2_bytes } ->
      Json.Obj
        [
          kind;
          ("g", Json.Float g);
          ("k1_bytes", Json.Int k1_bytes);
          ("k2_bytes", Json.Int k2_bytes);
        ]
  | Reno -> Json.Obj [ kind ]
  | Ecn_reno { k_bytes } -> Json.Obj [ kind; ("k_bytes", Json.Int k_bytes) ]
  | Newreno -> Json.Obj [ kind ]
  | Dctcp_scaled { g; k_frac } ->
      Json.Obj [ kind; ("g", Json.Float g); ("k_frac", Json.Float k_frac) ]
  | Dt_dctcp_scaled { g; k1_frac; k2_frac } ->
      Json.Obj
        [
          kind;
          ("g", Json.Float g);
          ("k1_frac", Json.Float k1_frac);
          ("k2_frac", Json.Float k2_frac);
        ]

let workload_to_json w =
  let kind = ("kind", Json.String (workload_name w)) in
  let fields =
    match w with
    | Longlived c -> longlived_fields c
    | Incast { config; sack } -> incast_fields config sack
    | Completion c -> completion_fields c
    | Dynamic c -> dynamic_fields c
    | Convergence c -> convergence_fields c
    | Deadline { config; d2tcp } -> deadline_fields config d2tcp
    | Fattree c -> fattree_fields c
  in
  Json.Obj (kind :: fields)

let buffer_to_json = function
  | Net.Buffer_mgr.Static -> None
  | Net.Buffer_mgr.Dynamic_threshold { pool_bytes; alpha } ->
      Some
        (Json.Obj
           [ ("pool_bytes", Json.Int pool_bytes); ("alpha", Json.Float alpha) ])

let to_json t =
  (* The "faults" and "buffer" keys are omitted (not null) when at their
     defaults, so a spec without faults and with Static buffering
     serializes byte-identically to one from before these features
     existed — pre-existing manifests stay bit-stable. *)
  let base =
    [
      ("name", Json.String t.name);
      ("protocol", protocol_to_json t.protocol);
      ("workload", workload_to_json t.workload);
    ]
  in
  let base =
    match t.faults with
    | None -> base
    | Some plan -> base @ [ ("faults", Fault.Plan.to_json plan) ]
  in
  match buffer_to_json t.buffer with
  | None -> Json.Obj base
  | Some bj -> Json.Obj (base @ [ ("buffer", bj) ])

let to_string t = Json.to_string (to_json t)

(* --- JSON decoding --- *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "Spec.of_json: missing field %S" name)

let wrong name got =
  Error (Printf.sprintf "Spec.of_json: field %S is not a %s" name got)

let int_field name j =
  let* v = field name j in
  match v with Json.Int i -> Ok i | _ -> wrong name "int"

let float_field name j =
  let* v = field name j in
  match v with
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> wrong name "number"

let bool_field name j =
  let* v = field name j in
  match v with Json.Bool b -> Ok b | _ -> wrong name "bool"

let string_field name j =
  let* v = field name j in
  match v with Json.String s -> Ok s | _ -> wrong name "string"

let span_field name j =
  let* i = int_field name j in
  Ok (Int64.of_int i)

let span_opt_field name j =
  let* v = field name j in
  match v with
  | Json.Null -> Ok None
  | Json.Int i -> Ok (Some (Int64.of_int i))
  | _ -> wrong name "int or null"

let seed_field name j =
  let* v = field name j in
  match v with
  | Json.String s -> (
      match Int64.of_string_opt s with
      | Some i -> Ok i
      | None -> wrong name "decimal int64 string")
  | Json.Int i -> Ok (Int64.of_int i)
  | _ -> wrong name "seed"

let protocol_of_json j =
  let* kind = string_field "kind" j in
  match kind with
  | "dctcp" ->
      let* g = float_field "g" j in
      let* k_bytes = int_field "k_bytes" j in
      Ok (Dctcp { g; k_bytes })
  | "dt-dctcp" ->
      let* g = float_field "g" j in
      let* k1_bytes = int_field "k1_bytes" j in
      let* k2_bytes = int_field "k2_bytes" j in
      Ok (Dt_dctcp { g; k1_bytes; k2_bytes })
  | "reno" -> Ok Reno
  | "ecn-reno" ->
      let* k_bytes = int_field "k_bytes" j in
      Ok (Ecn_reno { k_bytes })
  | "newreno" -> Ok Newreno
  | "dctcp-scaled" ->
      let* g = float_field "g" j in
      let* k_frac = float_field "k_frac" j in
      Ok (Dctcp_scaled { g; k_frac })
  | "dt-dctcp-scaled" ->
      let* g = float_field "g" j in
      let* k1_frac = float_field "k1_frac" j in
      let* k2_frac = float_field "k2_frac" j in
      Ok (Dt_dctcp_scaled { g; k1_frac; k2_frac })
  | other -> Error (Printf.sprintf "Spec.of_json: unknown protocol %S" other)

let longlived_of_json j =
  let* n_flows = int_field "n_flows" j in
  let* bottleneck_rate_bps = float_field "bottleneck_rate_bps" j in
  let* rtt = span_field "rtt" j in
  let* buffer_bytes = int_field "buffer_bytes" j in
  let* segment_bytes = int_field "segment_bytes" j in
  let* warmup = span_field "warmup" j in
  let* measure = span_field "measure" j in
  let* trace_sampling = span_opt_field "trace_sampling" j in
  let* alpha_sample_period = span_field "alpha_sample_period" j in
  let* stagger = span_field "stagger" j in
  let* min_rto = span_field "min_rto" j in
  let* seed = seed_field "seed" j in
  Ok
    (Longlived
       {
         L.n_flows;
         bottleneck_rate_bps;
         rtt;
         buffer_bytes;
         segment_bytes;
         warmup;
         measure;
         trace_sampling;
         alpha_sample_period;
         stagger;
         min_rto;
         seed;
       })

let incast_of_json j =
  let* sack = bool_field "sack" j in
  let* n_flows = int_field "n_flows" j in
  let* bytes_per_flow = int_field "bytes_per_flow" j in
  let* repeats = int_field "repeats" j in
  let* rate_bps = float_field "rate_bps" j in
  let* buffer_bytes = int_field "buffer_bytes" j in
  let* leaf_buffer_bytes = int_field "leaf_buffer_bytes" j in
  let* segment_bytes = int_field "segment_bytes" j in
  let* min_rto = span_field "min_rto" j in
  let* time_cap = span_field "time_cap" j in
  let* start_jitter = span_field "start_jitter" j in
  let* initial_cwnd = float_field "initial_cwnd" j in
  let* seed = seed_field "seed" j in
  Ok
    (Incast
       {
         config =
           {
             I.n_flows;
             bytes_per_flow;
             repeats;
             rate_bps;
             buffer_bytes;
             leaf_buffer_bytes;
             segment_bytes;
             min_rto;
             time_cap;
             start_jitter;
             initial_cwnd;
             seed;
           };
         sack;
       })

let completion_of_json j =
  let* n_flows = int_field "n_flows" j in
  let* total_bytes = int_field "total_bytes" j in
  let* repeats = int_field "repeats" j in
  let* rate_bps = float_field "rate_bps" j in
  let* buffer_bytes = int_field "buffer_bytes" j in
  let* leaf_buffer_bytes = int_field "leaf_buffer_bytes" j in
  let* segment_bytes = int_field "segment_bytes" j in
  let* min_rto = span_field "min_rto" j in
  let* time_cap = span_field "time_cap" j in
  let* seed = seed_field "seed" j in
  Ok
    (Completion
       {
         Cp.n_flows;
         total_bytes;
         repeats;
         rate_bps;
         buffer_bytes;
         leaf_buffer_bytes;
         segment_bytes;
         min_rto;
         time_cap;
         seed;
       })

let dynamic_of_json j =
  let* background_flows = int_field "background_flows" j in
  let* short_senders = int_field "short_senders" j in
  let* arrival_rate = float_field "arrival_rate" j in
  let* short_flow_segments = int_field "short_flow_segments" j in
  let* duration = span_field "duration" j in
  let* warmup = span_field "warmup" j in
  let* drain = span_field "drain" j in
  let* bottleneck_rate_bps = float_field "bottleneck_rate_bps" j in
  let* rtt = span_field "rtt" j in
  let* buffer_bytes = int_field "buffer_bytes" j in
  let* segment_bytes = int_field "segment_bytes" j in
  let* min_rto = span_field "min_rto" j in
  let* seed = seed_field "seed" j in
  Ok
    (Dynamic
       {
         Dy.background_flows;
         short_senders;
         arrival_rate;
         short_flow_segments;
         duration;
         warmup;
         drain;
         bottleneck_rate_bps;
         rtt;
         buffer_bytes;
         segment_bytes;
         min_rto;
         seed;
       })

let convergence_of_json j =
  let* n_flows = int_field "n_flows" j in
  let* join_interval = span_field "join_interval" j in
  let* hold = span_field "hold" j in
  let* sample_window = span_field "sample_window" j in
  let* bottleneck_rate_bps = float_field "bottleneck_rate_bps" j in
  let* rtt = span_field "rtt" j in
  let* buffer_bytes = int_field "buffer_bytes" j in
  let* segment_bytes = int_field "segment_bytes" j in
  let* min_rto = span_field "min_rto" j in
  let* convergence_band = float_field "convergence_band" j in
  let* seed = seed_field "seed" j in
  Ok
    (Convergence
       {
         Cv.n_flows;
         join_interval;
         hold;
         sample_window;
         bottleneck_rate_bps;
         rtt;
         buffer_bytes;
         segment_bytes;
         min_rto;
         convergence_band;
         seed;
       })

let deadline_of_json j =
  let* d2tcp = bool_field "d2tcp" j in
  let* n_flows = int_field "n_flows" j in
  let* bytes_per_flow = int_field "bytes_per_flow" j in
  let* deadline = span_field "deadline" j in
  let* deadline_spread = span_field "deadline_spread" j in
  let* repeats = int_field "repeats" j in
  let* rate_bps = float_field "rate_bps" j in
  let* buffer_bytes = int_field "buffer_bytes" j in
  let* leaf_buffer_bytes = int_field "leaf_buffer_bytes" j in
  let* segment_bytes = int_field "segment_bytes" j in
  let* min_rto = span_field "min_rto" j in
  let* start_jitter = span_field "start_jitter" j in
  let* time_cap = span_field "time_cap" j in
  let* seed = seed_field "seed" j in
  Ok
    (Deadline
       {
         config =
           {
             De.n_flows;
             bytes_per_flow;
             deadline;
             deadline_spread;
             repeats;
             rate_bps;
             buffer_bytes;
             leaf_buffer_bytes;
             segment_bytes;
             min_rto;
             start_jitter;
             time_cap;
             seed;
           };
         d2tcp;
       })

let fattree_of_json j =
  let* k = int_field "k" j in
  let* incast_fanin = int_field "incast_fanin" j in
  let* incast_bytes = int_field "incast_bytes" j in
  let* long_flows = int_field "long_flows" j in
  let* long_bytes = int_field "long_bytes" j in
  let* rate_bps = float_field "rate_bps" j in
  let* link_delay = span_field "link_delay" j in
  let* queue_bytes = int_field "queue_bytes" j in
  let* segment_bytes = int_field "segment_bytes" j in
  let* min_rto = span_field "min_rto" j in
  let* time_cap = span_field "time_cap" j in
  let* start_spread = span_field "start_spread" j in
  let* initial_cwnd = float_field "initial_cwnd" j in
  let* seed = seed_field "seed" j in
  Ok
    (Fattree
       {
         Ft.k;
         incast_fanin;
         incast_bytes;
         long_flows;
         long_bytes;
         rate_bps;
         link_delay;
         queue_bytes;
         segment_bytes;
         min_rto;
         time_cap;
         start_spread;
         initial_cwnd;
         seed;
       })

let workload_of_json j =
  let* kind = string_field "kind" j in
  match kind with
  | "longlived" -> longlived_of_json j
  | "incast" -> incast_of_json j
  | "completion" -> completion_of_json j
  | "dynamic" -> dynamic_of_json j
  | "convergence" -> convergence_of_json j
  | "deadline" -> deadline_of_json j
  | "fattree" -> fattree_of_json j
  | other -> Error (Printf.sprintf "Spec.of_json: unknown workload %S" other)

let buffer_of_json j =
  let* pool_bytes = int_field "pool_bytes" j in
  let* alpha = float_field "alpha" j in
  if pool_bytes <= 0 then
    Error "Spec.of_json: buffer pool_bytes must be positive"
  else if not (alpha >= 1. /. 1024.) then
    Error "Spec.of_json: buffer alpha must be >= 1/1024"
  else Ok (Net.Buffer_mgr.Dynamic_threshold { pool_bytes; alpha })

let of_json j =
  let* name = string_field "name" j in
  let* pj = field "protocol" j in
  let* protocol = protocol_of_json pj in
  let* wj = field "workload" j in
  let* workload = workload_of_json wj in
  let* faults =
    match Json.member "faults" j with
    | None -> Ok None
    | Some fj ->
        let* plan = Fault.Plan.of_json fj in
        Ok (Some plan)
  in
  let* buffer =
    match Json.member "buffer" j with
    | None -> Ok Net.Buffer_mgr.Static
    | Some bj -> buffer_of_json bj
  in
  Ok { name; protocol; workload; faults; buffer }

let of_string s =
  let* j = Json.parse s in
  of_json j

(* Structural equality via the canonical JSON form: covers every field,
   and [Json.equal] compares floats by bit pattern, so specs containing
   identical configs are equal without tripping dtlint's R2/R3. *)
let equal a b = Json.equal (to_json a) (to_json b)
