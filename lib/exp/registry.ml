module Time = Engine.Time
module L = Workloads.Longlived
module I = Workloads.Incast
module Cp = Workloads.Completion
module Dy = Workloads.Dynamic
module Cv = Workloads.Convergence
module De = Workloads.Deadline
module Ft = Workloads.Fattree

(* --- the paper's protocol operating points --- *)

let g = 1. /. 16.
let sim_dctcp = Spec.Dctcp { g; k_bytes = 40 * 1500 }
let sim_dt = Spec.Dt_dctcp { g; k1_bytes = 30 * 1500; k2_bytes = 50 * 1500 }
let sim_ecn_reno = Spec.Ecn_reno { k_bytes = 40 * 1500 }
let sim_reno = Spec.Reno
let testbed_dctcp = Spec.Dctcp { g; k_bytes = 32 * 1024 }

let testbed_dt_a =
  Spec.Dt_dctcp { g; k1_bytes = 28 * 1024; k2_bytes = 34 * 1024 }

let testbed_dt_b =
  Spec.Dt_dctcp { g; k1_bytes = 30 * 1024; k2_bytes = 34 * 1024 }

let testbed_dt_swapped =
  Spec.Dt_dctcp { g; k1_bytes = 34 * 1024; k2_bytes = 28 * 1024 }

(* --- parameterized spec builders ---

   Each figure/section is a function of the knobs the bench harness
   scales in --quick mode; the registry entries below apply the paper's
   full-scale defaults. Spec names encode the point within the sweep
   ("fig_sweep/n=40/dt-dctcp"), so per-run manifests are self-describing. *)

let longlived_config ?(warmup = Time.span_of_ms 100.)
    ?(measure = Time.span_of_ms 200.) ?trace_sampling ~n () =
  { L.default_config with L.n_flows = n; warmup; measure; trace_sampling }

let named base proto suffix =
  Printf.sprintf "%s/%s%s" base (Spec.protocol_name proto) suffix

let fig_queue_specs ?warmup ?measure () =
  List.concat_map
    (fun n ->
      let config =
        longlived_config ?warmup ?measure
          ~trace_sampling:(Time.span_of_us 20.) ~n ()
      in
      List.map
        (fun proto ->
          {
            Spec.name = named "fig_queue" proto (Printf.sprintf "/n=%d" n);
            protocol = proto;
            workload = Spec.Longlived config;
            faults = None;
            buffer = Net.Buffer_mgr.Static;
          })
        [ sim_dctcp; sim_dt ])
    [ 10; 100 ]

let sweep_ns = List.init 19 (fun i -> 10 + (5 * i))

let fig_sweep_specs ?(ns = sweep_ns) ?warmup ?measure () =
  List.concat_map
    (fun n ->
      let config = longlived_config ?warmup ?measure ~n () in
      List.map
        (fun proto ->
          {
            Spec.name = named "fig_sweep" proto (Printf.sprintf "/n=%d" n);
            protocol = proto;
            workload = Spec.Longlived config;
            faults = None;
            buffer = Net.Buffer_mgr.Static;
          })
        [ sim_dctcp; sim_dt ])
    ns

let incast_flow_counts =
  [ 4; 8; 12; 16; 20; 24; 28; 30; 32; 34; 36; 38; 40; 42; 44; 48 ]

(* The two DT readings share the "dt-dctcp" kind tag, so testbed sweeps
   name their points by threshold slug instead of [named]. *)
let testbed_protocols =
  [
    ("dctcp-32KB", testbed_dctcp);
    ("dt-28-34", testbed_dt_a);
    ("dt-30-34", testbed_dt_b);
  ]

let fig_incast_specs ?(flow_counts = incast_flow_counts) ?(repeats = 20) () =
  List.concat_map
    (fun n ->
      List.map
        (fun (slug, proto) ->
          {
            Spec.name = Printf.sprintf "fig_incast/%s/n=%d" slug n;
            protocol = proto;
            workload =
              Spec.Incast
                {
                  config = { I.default_config with I.n_flows = n; repeats };
                  sack = false;
                };
            faults = None;
            buffer = Net.Buffer_mgr.Static;
          })
        testbed_protocols)
    flow_counts

let fig_completion_specs ?(flow_counts = incast_flow_counts) ?(repeats = 20)
    () =
  List.concat_map
    (fun n ->
      List.map
        (fun (slug, proto) ->
          {
            Spec.name = Printf.sprintf "fig_completion/%s/n=%d" slug n;
            protocol = proto;
            workload =
              Spec.Completion
                { Cp.default_config with Cp.n_flows = n; repeats };
            faults = None;
            buffer = Net.Buffer_mgr.Static;
          })
        testbed_protocols)
    flow_counts

let threshold_splits = [ (35, 45); (30, 50); (25, 55); (20, 60); (38, 42) ]

let threshold_ablation_specs ?(n = 60) ?warmup ?measure () =
  let config = longlived_config ?warmup ?measure ~n () in
  let point proto =
    {
      Spec.name = named "ablation_thresholds" proto "";
      protocol = proto;
      workload = Spec.Longlived config;
      faults = None;
      buffer = Net.Buffer_mgr.Static;
    }
  in
  point sim_dctcp
  :: List.map
       (fun (k1, k2) ->
         let proto =
           Spec.Dt_dctcp
             { g; k1_bytes = k1 * 1500; k2_bytes = k2 * 1500 }
         in
         {
           Spec.name =
             Printf.sprintf "ablation_thresholds/dt-dctcp/k1=%d,k2=%d" k1 k2;
           protocol = proto;
           workload = Spec.Longlived config;
           faults = None;
           buffer = Net.Buffer_mgr.Static;
         })
       threshold_splits

let gains = [ ("1_4", 0.25); ("1_16", 1. /. 16.); ("1_64", 1. /. 64.) ]

let g_ablation_specs ?(n = 60) ?warmup ?measure () =
  let config = longlived_config ?warmup ?measure ~n () in
  List.concat_map
    (fun (label, g) ->
      List.map
        (fun proto ->
          {
            Spec.name = named "ablation_g" proto ("/g=" ^ label);
            protocol = proto;
            workload = Spec.Longlived config;
            faults = None;
            buffer = Net.Buffer_mgr.Static;
          })
        [
          Spec.Dctcp { g; k_bytes = 40 * 1500 };
          Spec.Dt_dctcp { g; k1_bytes = 30 * 1500; k2_bytes = 50 * 1500 };
        ])
    gains

let policy_ablation_specs ?(n = 60) ?warmup ?measure () =
  let config = longlived_config ?warmup ?measure ~n () in
  List.map
    (fun proto ->
      {
        Spec.name = named "ablation_policies" proto "";
        protocol = proto;
        workload = Spec.Longlived config;
        faults = None;
        buffer = Net.Buffer_mgr.Static;
      })
    [ sim_dctcp; sim_dt; sim_ecn_reno; sim_reno ]

let testbed_label_specs ?(flow_counts = [ 28; 30; 32; 34; 36; 38; 40 ])
    ?(repeats = 10) () =
  List.concat_map
    (fun n ->
      List.map
        (fun (reading, proto) ->
          {
            Spec.name =
              Printf.sprintf "ablation_testbed_labels/%s/n=%d" reading n;
            protocol = proto;
            workload =
              Spec.Incast
                {
                  config = { I.default_config with I.n_flows = n; repeats };
                  sack = false;
                };
            faults = None;
            buffer = Net.Buffer_mgr.Static;
          })
        [
          ("dctcp-32KB", testbed_dctcp);
          ("start28-stop34", testbed_dt_a);
          ("thermostat34-28", testbed_dt_swapped);
        ])
    flow_counts

let d2tcp_config ~n ~repeats =
  {
    De.default_config with
    De.n_flows = n;
    repeats;
    rate_bps = 10e9;
    buffer_bytes = 512 * 1024;
    bytes_per_flow = 300 * 1024;
    min_rto = Time.span_of_ms 10.;
    deadline = Time.span_of_ms 2.;
    deadline_spread = Time.span_of_ms 4.;
  }

let d2tcp_specs ?(flow_counts = [ 6; 8; 10; 12; 16; 20 ]) ?(repeats = 10) () =
  List.concat_map
    (fun n ->
      let config = d2tcp_config ~n ~repeats in
      List.map
        (fun (tag, d2tcp) ->
          {
            Spec.name = Printf.sprintf "d2tcp/%s/n=%d" tag n;
            protocol = sim_dctcp;
            workload = Spec.Deadline { config; d2tcp };
            faults = None;
            buffer = Net.Buffer_mgr.Static;
          })
        [ ("dctcp", false); ("d2tcp", true) ])
    flow_counts

let sack_specs ?(flow_counts = [ 28; 32; 34; 36; 40; 44 ]) ?(repeats = 10) ()
    =
  List.concat_map
    (fun n ->
      let config = { I.default_config with I.n_flows = n; repeats } in
      List.map
        (fun (tag, sack) ->
          {
            Spec.name = Printf.sprintf "sack/%s/n=%d" tag n;
            protocol = testbed_dctcp;
            workload = Spec.Incast { config; sack };
            faults = None;
            buffer = Net.Buffer_mgr.Static;
          })
        [ ("go-back-n", false); ("sack", true) ])
    flow_counts

let queue_buildup_specs ?duration () =
  let config =
    match duration with
    | None -> Dy.default_config
    | Some duration -> { Dy.default_config with Dy.duration }
  in
  List.map
    (fun proto ->
      {
        Spec.name = named "queue_buildup" proto "";
        protocol = proto;
        workload = Spec.Dynamic config;
        faults = None;
        buffer = Net.Buffer_mgr.Static;
      })
    [ sim_dctcp; sim_dt; sim_ecn_reno; sim_reno ]

let convergence_specs ?(join_interval = Time.span_of_ms 400.)
    ?(hold = Time.span_of_ms 400.) () =
  let config = { Cv.default_config with Cv.join_interval; hold } in
  List.map
    (fun proto ->
      {
        Spec.name = named "convergence" proto "";
        protocol = proto;
        workload = Spec.Convergence config;
        faults = None;
        buffer = Net.Buffer_mgr.Static;
      })
    [ sim_dctcp; sim_dt ]

(* --- shared-buffer sizing study (extension) ---

   Sweep one shared switch memory from well under a bandwidth-delay
   product to deep buffering, governed by Dynamic Threshold at three
   alpha settings. The ECN protocols mark at fractions of the moving
   effective limit (the scaled policies), so the same protocol point is
   meaningful at every pool size; NewReno is the loss-based competitor
   that only notices the buffer when it overflows. *)

let bdp_bytes = 125_000
let buffer_pool_sizes = [ 10_000; 62_500; 125_000; 250_000; 1_000_000 ]
let buffer_alphas = [ 0.5; 1.0; 2.0 ]
let scaled_dctcp = Spec.Dctcp_scaled { g; k_frac = 0.25 }
let scaled_dt = Spec.Dt_dctcp_scaled { g; k1_frac = 0.2; k2_frac = 0.3 }

let buffer_protocols =
  [
    ("dctcp", scaled_dctcp);
    ("dt-dctcp", scaled_dt);
    ("newreno", Spec.Newreno);
  ]

let fig_buffer_specs ?(pool_sizes = buffer_pool_sizes)
    ?(alphas = buffer_alphas) ?warmup ?measure ?(n = 10) () =
  List.concat_map
    (fun pool_bytes ->
      List.concat_map
        (fun alpha ->
          (* [buffer_bytes] still sizes the non-pool queues and anchors
             the analyzer's notion of capacity; at the bottleneck switch
             the pool replaces it. *)
          let config =
            {
              (longlived_config ?warmup ?measure ~n ()) with
              L.buffer_bytes = pool_bytes;
            }
          in
          List.map
            (fun (slug, proto) ->
              {
                Spec.name =
                  Printf.sprintf "fig_buffer/%s/B=%d/a=%g" slug pool_bytes
                    alpha;
                protocol = proto;
                workload = Spec.Longlived config;
                faults = None;
                buffer =
                  Net.Buffer_mgr.Dynamic_threshold { pool_bytes; alpha };
              })
            buffer_protocols)
        alphas)
    pool_sizes

(* --- fat-tree fabric study (extension) ---

   FCT slowdown on the k-ary fat tree: per-rack incast victims plus
   cross-pod long flows over ECMP multi-path routing. The protocol
   points are the testbed 1 Gbps operating points (every fabric link is
   1 Gbps), with loss-based NewReno as the non-ECN competitor. *)

let fattree_protocols =
  [
    ("dctcp", testbed_dctcp);
    ("dt-dctcp", testbed_dt_a);
    ("newreno", Spec.Newreno);
  ]

let fattree_ks = [ 4; 8 ]

(* Fan-in scales with the fabric: k/2 hosts share each rack uplink
   group, and 4k senders per victim keeps every edge switch busy
   without degenerating into pure timeout counting. Long flows number
   2k so each pod sources a couple on average. At k=8 this is
   32 racks x 32 + 16 = 1040 flows over 128 hosts. *)
let fattree_config ?incast_bytes ?long_bytes ?time_cap ~k () =
  let d = Ft.default_config in
  {
    d with
    Ft.k;
    incast_fanin = 4 * k;
    long_flows = 2 * k;
    incast_bytes = Option.value incast_bytes ~default:d.Ft.incast_bytes;
    long_bytes = Option.value long_bytes ~default:d.Ft.long_bytes;
    time_cap = Option.value time_cap ~default:d.Ft.time_cap;
  }

let fig_fattree_specs ?(ks = fattree_ks) ?incast_bytes ?long_bytes ?time_cap
    () =
  List.concat_map
    (fun k ->
      let config = fattree_config ?incast_bytes ?long_bytes ?time_cap ~k () in
      List.map
        (fun (slug, proto) ->
          {
            Spec.name = Printf.sprintf "fig_fattree/%s/k=%d" slug k;
            protocol = proto;
            workload = Spec.Fattree config;
            faults = None;
            buffer = Net.Buffer_mgr.Static;
          })
        fattree_protocols)
    ks

(* Sub-minute fabric slice for CI: the smallest legal fabric with light
   transfers, still exercising ECMP groups on every tier. *)
let fattree_smoke_specs () =
  let config =
    fattree_config ~incast_bytes:(16 * 1024) ~long_bytes:(64 * 1024)
      ~time_cap:(Time.span_of_ms 500.) ~k:4 ()
  in
  List.map
    (fun (slug, proto) ->
      {
        Spec.name = Printf.sprintf "fig_fattree_smoke/%s/k=4" slug;
        protocol = proto;
        workload = Spec.Fattree config;
        faults = None;
        buffer = Net.Buffer_mgr.Static;
      })
    fattree_protocols

(* A fast cross-workload slice (sub-minute serial) for CI: exercises every
   workload variant and both marking families. *)
let smoke_specs () =
  [
    {
      Spec.name = "ci_smoke/longlived/dctcp";
      protocol = sim_dctcp;
      workload =
        Spec.Longlived
          (longlived_config ~warmup:(Time.span_of_ms 2.)
             ~measure:(Time.span_of_ms 5.) ~n:4 ());
      faults = None;
      buffer = Net.Buffer_mgr.Static;
    };
    {
      Spec.name = "ci_smoke/longlived/dt-dctcp";
      protocol = sim_dt;
      workload =
        Spec.Longlived
          (longlived_config ~warmup:(Time.span_of_ms 2.)
             ~measure:(Time.span_of_ms 5.) ~n:4 ());
      faults = None;
      buffer = Net.Buffer_mgr.Static;
    };
    {
      Spec.name = "ci_smoke/incast/dt-dctcp";
      protocol = testbed_dt_a;
      workload =
        Spec.Incast
          {
            config = { I.default_config with I.n_flows = 8; repeats = 2 };
            sack = false;
          };
      faults = None;
      buffer = Net.Buffer_mgr.Static;
    };
    {
      Spec.name = "ci_smoke/completion/dctcp";
      protocol = testbed_dctcp;
      workload =
        Spec.Completion
          { Cp.default_config with Cp.n_flows = 8; repeats = 2 };
      faults = None;
      buffer = Net.Buffer_mgr.Static;
    };
    {
      Spec.name = "ci_smoke/dynamic/dctcp";
      protocol = sim_dctcp;
      workload =
        Spec.Dynamic
          {
            Dy.default_config with
            Dy.short_senders = 8;
            arrival_rate = 2000.;
            duration = Time.span_of_ms 20.;
            warmup = Time.span_of_ms 5.;
            drain = Time.span_of_ms 20.;
          };
      faults = None;
      buffer = Net.Buffer_mgr.Static;
    };
    {
      Spec.name = "ci_smoke/convergence/dt-dctcp";
      protocol = sim_dt;
      workload =
        Spec.Convergence
          {
            Cv.default_config with
            Cv.n_flows = 3;
            join_interval = Time.span_of_ms 40.;
            hold = Time.span_of_ms 40.;
            sample_window = Time.span_of_ms 5.;
          };
      faults = None;
      buffer = Net.Buffer_mgr.Static;
    };
    {
      Spec.name = "ci_smoke/deadline/d2tcp";
      protocol = sim_dctcp;
      workload =
        Spec.Deadline
          { config = d2tcp_config ~n:6 ~repeats:2; d2tcp = true };
      faults = None;
      buffer = Net.Buffer_mgr.Static;
    };
  ]

(* --- robustness sweeps (fault injection) --- *)

(* Loss resilience: queue statistics and goodput as random loss grows.
   DT-DCTCP's claim is steadier queues; these sweeps check the claim
   does not depend on a loss-free fabric. *)
let robust_loss_rates = [ 0.0001; 0.001; 0.01; 0.05 ]

let robust_loss_specs ?(loss_rates = robust_loss_rates) ?warmup ?measure
    ?(n = 40) () =
  List.concat_map
    (fun p ->
      let config = longlived_config ?warmup ?measure ~n () in
      List.map
        (fun proto ->
          {
            Spec.name = named "robust_loss" proto (Printf.sprintf "/p=%g" p);
            protocol = proto;
            workload = Spec.Longlived config;
            faults = Some { Fault.Plan.none with loss_rate = p };
            buffer = Net.Buffer_mgr.Static;
          })
        [ sim_dctcp; sim_dt ])
    loss_rates

(* Oscillation recovery: take the bottleneck down mid-measurement (and,
   separately, halve its rate for a window) and watch the queue trace
   find its operating point again. Trace sampling is on so the recovery
   transient is visible in `dtsim sweep` output. *)
let robust_flap_specs ?warmup ?measure ?(n = 40) () =
  let config =
    longlived_config ?warmup ?measure
      ~trace_sampling:(Time.span_of_us 20.) ~n ()
  in
  let flap =
    {
      Fault.Plan.none with
      flaps =
        [
          {
            Fault.Plan.down_at = Time.span_of_ms 150.;
            up_at = Time.span_of_ms 170.;
          };
        ];
    }
  in
  let brownout =
    {
      Fault.Plan.none with
      rate_changes =
        [
          {
            Fault.Plan.at = Time.span_of_ms 150.;
            until = Time.span_of_ms 200.;
            factor = 0.5;
          };
        ];
    }
  in
  List.concat_map
    (fun (slug, plan) ->
      List.map
        (fun proto ->
          {
            Spec.name = named "robust_flap" proto ("/" ^ slug);
            protocol = proto;
            workload = Spec.Longlived config;
            faults = Some plan;
            buffer = Net.Buffer_mgr.Static;
          })
        [ sim_dctcp; sim_dt ])
    [ ("flap", flap); ("brownout", brownout) ]

(* ECN degradation: a switch that randomly fails to mark (the "non-ECN
   switch" scenario). Swept across flow counts because the damage is
   congestion-dependent: the more senders, the more a lost mark costs. *)
let robust_suppress_specs ?(ns = [ 10; 40; 70; 100 ]) ?warmup ?measure () =
  List.concat_map
    (fun n ->
      let config = longlived_config ?warmup ?measure ~n () in
      List.map
        (fun proto ->
          {
            Spec.name =
              named "robust_suppress" proto (Printf.sprintf "/n=%d" n);
            protocol = proto;
            workload = Spec.Longlived config;
            faults =
              Some
                { Fault.Plan.none with suppression = Fault.Plan.Suppress_prob 0.5 };
            buffer = Net.Buffer_mgr.Static;
          })
        [ sim_dctcp; sim_dt ])
    ns

(* Sub-minute faulted slice for CI: one plan of each kind, tiny windows,
   both workload families that support injection. *)
let robust_smoke_specs () =
  let tiny ?trace_sampling () =
    longlived_config ~warmup:(Time.span_of_ms 2.)
      ~measure:(Time.span_of_ms 5.) ?trace_sampling ~n:4 ()
  in
  [
    {
      Spec.name = "robust_smoke/longlived/loss";
      protocol = sim_dctcp;
      workload = Spec.Longlived (tiny ());
      faults = Some { Fault.Plan.none with loss_rate = 0.01 };
      buffer = Net.Buffer_mgr.Static;
    };
    {
      Spec.name = "robust_smoke/longlived/flap";
      protocol = sim_dt;
      workload = Spec.Longlived (tiny ());
      faults =
        Some
          {
            Fault.Plan.none with
            flaps =
              [
                {
                  Fault.Plan.down_at = Time.span_of_ms 3.;
                  up_at = Time.span_of_ms 4.;
                };
              ];
          };
      buffer = Net.Buffer_mgr.Static;
    };
    {
      Spec.name = "robust_smoke/longlived/suppress";
      protocol = sim_dt;
      workload = Spec.Longlived (tiny ());
      faults =
        Some
          {
            Fault.Plan.none with
            suppression = Fault.Plan.Suppress_prob 0.5;
          };
      buffer = Net.Buffer_mgr.Static;
    };
    {
      Spec.name = "robust_smoke/incast/jitter";
      protocol = testbed_dctcp;
      workload =
        Spec.Incast
          {
            config = { I.default_config with I.n_flows = 8; repeats = 2 };
            sack = false;
          };
      faults =
        Some
          { Fault.Plan.none with jitter_max = Time.span_of_us 20. };
      buffer = Net.Buffer_mgr.Static;
    };
  ]

(* --- the registry proper --- *)

type entry = { name : string; doc : string; specs : unit -> Spec.t list }

let entries =
  [
    {
      name = "fig_queue";
      doc = "Figure 1: queue traces, DCTCP vs DT-DCTCP at N=10 and N=100";
      specs = (fun () -> fig_queue_specs ());
    };
    {
      name = "fig_sweep";
      doc = "Figures 10-12: dumbbell flow-count sweep N=10..100";
      specs = (fun () -> fig_sweep_specs ());
    };
    {
      name = "fig_incast";
      doc = "Figure 14: Incast goodput collapse on the 1 Gbps star";
      specs = (fun () -> fig_incast_specs ());
    };
    {
      name = "fig_completion";
      doc = "Figure 15: 1MB scatter-gather completion time";
      specs = (fun () -> fig_completion_specs ());
    };
    {
      name = "ablation_thresholds";
      doc = "DT threshold placement (K1,K2) at N=60";
      specs = (fun () -> threshold_ablation_specs ());
    };
    {
      name = "ablation_g";
      doc = "EWMA gain g sweep at N=60";
      specs = (fun () -> g_ablation_specs ());
    };
    {
      name = "ablation_policies";
      doc = "marking-policy family comparison at N=60";
      specs = (fun () -> policy_ablation_specs ());
    };
    {
      name = "ablation_testbed_labels";
      doc = "both readings of the testbed's (K1,K2) labels under Incast";
      specs = (fun () -> testbed_label_specs ());
    };
    {
      name = "d2tcp";
      doc = "extension: deadline-aware backoff vs plain DCTCP";
      specs = (fun () -> d2tcp_specs ());
    };
    {
      name = "sack";
      doc = "extension: SACK vs go-back-N recovery under Incast";
      specs = (fun () -> sack_specs ());
    };
    {
      name = "queue_buildup";
      doc = "extension: mixed traffic queue buildup (DCTCP paper sec. 3.3)";
      specs = (fun () -> queue_buildup_specs ());
    };
    {
      name = "convergence";
      doc = "extension: convergence and fairness under flow churn";
      specs = (fun () -> convergence_specs ());
    };
    {
      name = "fig_buffer";
      doc =
        "extension: buffer-sizing study on a shared Dynamic-Threshold pool";
      specs = (fun () -> fig_buffer_specs ());
    };
    {
      name = "fig_fattree";
      doc = "extension: fat-tree fabric FCT slowdown over ECMP, k=4 and k=8";
      specs = (fun () -> fig_fattree_specs ());
    };
    {
      name = "fig_fattree_smoke";
      doc = "fast fat-tree fabric slice (CI): k=4, light transfers";
      specs = fattree_smoke_specs;
    };
    {
      name = "ci_smoke";
      doc = "fast cross-workload smoke sweep (CI)";
      specs = smoke_specs;
    };
    {
      name = "robust_loss";
      doc = "robustness: queue stats and goodput vs random loss rate";
      specs = (fun () -> robust_loss_specs ());
    };
    {
      name = "robust_flap";
      doc = "robustness: oscillation recovery after a bottleneck flap";
      specs = (fun () -> robust_flap_specs ());
    };
    {
      name = "robust_suppress";
      doc = "robustness: stability vs N when half the ECN marks are lost";
      specs = (fun () -> robust_suppress_specs ());
    };
    {
      name = "robust_smoke";
      doc = "fast faulted smoke sweep (CI): loss, flap, suppression, jitter";
      specs = robust_smoke_specs;
    };
  ]

let all () = entries
let names () = List.map (fun e -> e.name) entries
let find name = List.find_opt (fun e -> String.equal e.name name) entries
