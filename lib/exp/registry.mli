(** Named scenario catalogue.

    One place declaring the paper's operating points and every sweep the
    figure harness and [dtsim sweep] run, so the bench sections and the
    CLI execute literally the same {!Spec} values. The builders take the
    knobs the bench scales in --quick mode (durations, repeats, flow
    counts); the registry {!entry} list applies full-scale defaults. *)

(** {2 Protocol operating points} *)

val sim_dctcp : Spec.protocol
(** Simulation sections: K = 40 pkt, g = 1/16 (Section VI-A). *)

val sim_dt : Spec.protocol
(** DT-DCTCP split (K1, K2) = (30, 50) pkt. *)

val sim_ecn_reno : Spec.protocol

val sim_reno : Spec.protocol

val testbed_dctcp : Spec.protocol
(** Testbed sections: K = 32 KB at 1 Gbps (Section VI-B). *)

val testbed_dt_a : Spec.protocol
(** (start, stop) = (28, 34) KB. *)

val testbed_dt_b : Spec.protocol
(** (start, stop) = (30, 34) KB. *)

val testbed_dt_swapped : Spec.protocol
(** The literal "thermostat" reading (34, 28) KB — ablation E. *)

(** {2 Sweep builders} *)

val longlived_config :
  ?warmup:Engine.Time.span ->
  ?measure:Engine.Time.span ->
  ?trace_sampling:Engine.Time.span ->
  n:int ->
  unit ->
  Workloads.Longlived.config

val fig_queue_specs :
  ?warmup:Engine.Time.span -> ?measure:Engine.Time.span -> unit -> Spec.t list

val sweep_ns : int list
(** N = 10, 15, ..., 100. *)

val fig_sweep_specs :
  ?ns:int list ->
  ?warmup:Engine.Time.span ->
  ?measure:Engine.Time.span ->
  unit ->
  Spec.t list

val incast_flow_counts : int list

val fig_incast_specs :
  ?flow_counts:int list -> ?repeats:int -> unit -> Spec.t list

val fig_completion_specs :
  ?flow_counts:int list -> ?repeats:int -> unit -> Spec.t list

val threshold_ablation_specs :
  ?n:int ->
  ?warmup:Engine.Time.span ->
  ?measure:Engine.Time.span ->
  unit ->
  Spec.t list

val g_ablation_specs :
  ?n:int ->
  ?warmup:Engine.Time.span ->
  ?measure:Engine.Time.span ->
  unit ->
  Spec.t list

val policy_ablation_specs :
  ?n:int ->
  ?warmup:Engine.Time.span ->
  ?measure:Engine.Time.span ->
  unit ->
  Spec.t list

val testbed_label_specs :
  ?flow_counts:int list -> ?repeats:int -> unit -> Spec.t list

val d2tcp_specs : ?flow_counts:int list -> ?repeats:int -> unit -> Spec.t list

val sack_specs : ?flow_counts:int list -> ?repeats:int -> unit -> Spec.t list

val queue_buildup_specs :
  ?duration:Engine.Time.span -> unit -> Spec.t list

val convergence_specs :
  ?join_interval:Engine.Time.span ->
  ?hold:Engine.Time.span ->
  unit ->
  Spec.t list

(** {2 Shared-buffer sizing study (extension)} *)

val bdp_bytes : int
(** One bandwidth-delay product of the simulated dumbbell: 10 Gbps x
    100 us / 8 = 125 KB. *)

val buffer_pool_sizes : int list
(** Default pool sweep, from under 0.1 BDP (10 KB) to deep (8 BDP). *)

val buffer_alphas : float list
(** Dynamic-Threshold alpha settings (0.5, 1, 2). *)

val scaled_dctcp : Spec.protocol
(** DCTCP marking at K = 0.25 x effective limit. *)

val scaled_dt : Spec.protocol
(** DT-DCTCP with the hysteresis band at (0.20, 0.30) x effective
    limit. *)

val buffer_protocols : (string * Spec.protocol) list
(** Slugged protocol points of the buffer study: the two scaled ECN
    transports plus loss-based NewReno. *)

val fig_buffer_specs :
  ?pool_sizes:int list ->
  ?alphas:float list ->
  ?warmup:Engine.Time.span ->
  ?measure:Engine.Time.span ->
  ?n:int ->
  unit ->
  Spec.t list
(** Long-lived dumbbell at [n] flows (default 10) where the bottleneck
    switch draws every port from one Dynamic-Threshold pool, swept over
    [pool_sizes] x [alphas] x {!buffer_protocols}. *)

(** {2 Fat-tree fabric study (extension)} *)

val fattree_protocols : (string * Spec.protocol) list
(** Slugged protocol points of the fabric study: the testbed 1 Gbps
    DCTCP and DT-DCTCP operating points plus loss-based NewReno. *)

val fattree_ks : int list
(** Default arity sweep: k = 4 (16 hosts) and k = 8 (128 hosts,
    1040 flows). *)

val fattree_config :
  ?incast_bytes:int ->
  ?long_bytes:int ->
  ?time_cap:Engine.Time.span ->
  k:int ->
  unit ->
  Workloads.Fattree.config
(** Fabric point at arity [k]: incast fan-in [4k] per rack victim and
    [2k] cross-pod long flows (the knobs bench --quick shrinks are the
    transfer sizes and the cap). *)

val fig_fattree_specs :
  ?ks:int list ->
  ?incast_bytes:int ->
  ?long_bytes:int ->
  ?time_cap:Engine.Time.span ->
  unit ->
  Spec.t list

val fattree_smoke_specs : unit -> Spec.t list
(** Sub-minute k=4 fabric slice for CI. *)

val smoke_specs : unit -> Spec.t list
(** Fast cross-workload slice covering every workload variant. *)

(** {2 Robustness sweeps}

    Faulted variants of the long-lived dumbbell (and one faulted
    Incast): every spec carries a {!Fault.Plan.t}, so these are the
    registry's only entries that exercise the injector. *)

val robust_loss_rates : float list

val robust_loss_specs :
  ?loss_rates:float list ->
  ?warmup:Engine.Time.span ->
  ?measure:Engine.Time.span ->
  ?n:int ->
  unit ->
  Spec.t list
(** Queue statistics and goodput vs seeded Bernoulli loss, DCTCP vs
    DT-DCTCP. *)

val robust_flap_specs :
  ?warmup:Engine.Time.span ->
  ?measure:Engine.Time.span ->
  ?n:int ->
  unit ->
  Spec.t list
(** Bottleneck down/up flap plus a half-rate "brownout" window, with
    trace sampling on so the recovery transient is visible. *)

val robust_suppress_specs :
  ?ns:int list ->
  ?warmup:Engine.Time.span ->
  ?measure:Engine.Time.span ->
  unit ->
  Spec.t list
(** Stability vs flow count when the switch drops half its ECN marks. *)

val robust_smoke_specs : unit -> Spec.t list
(** Sub-minute faulted slice for CI: loss, flap, suppression, jitter. *)

(** {2 Lookup} *)

type entry = {
  name : string;
  doc : string;
  specs : unit -> Spec.t list;  (** Full-scale spec list. *)
}

val all : unit -> entry list
val names : unit -> string list
val find : string -> entry option
