(** Datacenter fabric workload on the k-ary fat tree: per-rack incast
    plus cross-pod long flows, reported as FCT slowdown percentiles.

    Every rack's first host is an incast victim fed by [incast_fanin]
    short flows whose senders are drawn uniformly from the other racks;
    [long_flows] additional long flows each cross half the fabric
    (their destination sits [n_hosts/2] beyond their source, always a
    different pod). Flow starts are paced uniformly over
    [start_spread]. Total flows = [(k^2/2) * incast_fanin +
    long_flows] — at [k = 8] with [incast_fanin = 32] that is a
    1040-flow fabric over 128 hosts and 80 switches.

    Each flow's completion time is scored against the idle-network
    ideal (round-trip propagation over its 2/4/6-link path, whole-flow
    serialization at line rate, plus per-intermediate-hop
    store-and-forward of one segment; see {!Stats.Fct}); the result
    aggregates the slowdown distribution over all flows, with censored
    (incomplete at [time_cap]) flows scored at the cap. One seeded run,
    no repeats: with O(1000) flows the distribution itself is the
    ensemble. *)

type config = {
  k : int;  (** Fat-tree arity (even, >= 2). *)
  incast_fanin : int;  (** Short flows converging on each rack victim. *)
  incast_bytes : int;
  long_flows : int;
  long_bytes : int;
  rate_bps : float;  (** Every link's rate. *)
  link_delay : Engine.Time.span;  (** Per-traversal propagation. *)
  queue_bytes : int;  (** Per-switch-port queue capacity. *)
  segment_bytes : int;
  min_rto : Engine.Time.span;
  time_cap : Engine.Time.span;
  start_spread : Engine.Time.span;
  initial_cwnd : float;
  seed : int64;
}

val default_config : config
(** k = 4 (16 hosts, 20 switches), fanin 8 + 8 long flows = 72 flows,
    1 Gbps links, 5 us per-link delay, 10 ms min RTO. *)

type result = {
  slowdown_p50 : float;
  slowdown_p95 : float;
  slowdown_p99 : float;
  slowdown_p999 : float;
  slowdown_mean : float;
  slowdown_max : float;
  flows_total : int;
  timeouts : int;
  incomplete : int;  (** Flows still unfinished at [time_cap]. *)
  no_route_drops : int;
      (** Fabric-wide; nonzero means the topology is miswired. *)
}

val run :
  ?metrics:Obs.Metrics.t ->
  ?faults:Fault.Plan.t ->
  ?buffer:Net.Buffer_mgr.config ->
  Dctcp.Protocol.t ->
  config ->
  result
(** [metrics] registers [engine.events_processed], the fabric-wide
    [switch.no_route_drops] probe and [sender.timeouts]. [buffer]
    applies to all three switch tiers (each switch gets its own pool
    under [Dynamic_threshold]).
    @raise Invalid_argument if [faults] is given — fault injection is
    not yet supported on the fabric. *)
