(** Long-lived flows over the dumbbell — the workload of the paper's
    Section VI-A (Figures 1, 10, 11, 12).

    [n] senders each run one infinite DCTCP/DT-DCTCP flow into the single
    10 Gbps bottleneck; after a warm-up the bottleneck queue's
    time-weighted mean and standard deviation, the flows' alpha estimates,
    and utilization are measured. *)

type config = {
  n_flows : int;
  bottleneck_rate_bps : float;  (** Default 10 Gbps. *)
  rtt : Engine.Time.span;  (** Two-way propagation, default 100 us. *)
  buffer_bytes : int;  (** Bottleneck buffer, default 1000 packets. *)
  segment_bytes : int;  (** Default 1500. *)
  warmup : Engine.Time.span;  (** Discarded, default 100 ms. *)
  measure : Engine.Time.span;  (** Measured window, default 200 ms. *)
  trace_sampling : Engine.Time.span option;
      (** Also record a sampled queue series (for Figure 1). *)
  alpha_sample_period : Engine.Time.span;
      (** Alpha is polled at every sender on this period (default 1 ms). *)
  stagger : Engine.Time.span;
      (** Each flow starts at a seed-determined uniform offset in
          [0, stagger] (default 1 ms), breaking perfect synchronization as
          distinct ns-2 start times do. *)
  min_rto : Engine.Time.span;  (** Default 10 ms (no Incast here). *)
  seed : int64;
}

val default_config : config

type result = {
  mean_queue_pkts : float;
  std_queue_pkts : float;
  max_queue_pkts : float;
  mean_alpha : float;  (** Averaged over flows and samples. *)
  throughput_bps : float;  (** Bottleneck departures over the window. *)
  utilization : float;
  marked_fraction : float;  (** Marked / enqueued during measurement. *)
  drops : int;
  timeouts : int;  (** Summed over flows. *)
  fast_retransmits : int;
  jain_fairness : float;
      (** Jain's index over per-flow segments delivered during the
          measured window. *)
  queue_series : (float * float) array option;
      (** (seconds, packets), present iff [trace_sampling] was set. *)
}

val run :
  ?tracer:Obs.Trace.t -> ?metrics:Obs.Metrics.t -> ?faults:Fault.Plan.t ->
  ?buffer:Net.Buffer_mgr.config ->
  ?on_sim:(Engine.Sim.t -> unit) ->
  Dctcp.Protocol.t -> config -> result
(** [on_sim] is called with the freshly created simulator before any
    component is built — the hook the engine self-profiler attaches
    through. It must not schedule events.
    [tracer] (default {!Obs.Trace.null}) is attached to the bottleneck
    queue and every sender, and receives [Mark_state_flip] events
    (component ["bottleneck"]) whenever the protocol's marking policy has
    hysteresis state. When [metrics] is given, the scenario registers
    probes [marking.flips_up]/[.flips_down], [engine.events_processed],
    [engine.heap_high_water], and the summed [sender.*] counters on top
    of the per-queue probes from {!Net.Queue_disc.create}.
    When [faults] is given, a {!Fault.Injector} (seeded from
    [config.seed]) is attached to the bottleneck port and wrapped around
    the marking policy; when absent no injector is constructed and the
    run is bit-identical to one without fault support.
    [buffer] (default {!Net.Buffer_mgr.Static}) selects the bottleneck
    switch's memory model; under [Dynamic_threshold] the shared pool
    replaces [config.buffer_bytes]. *)
