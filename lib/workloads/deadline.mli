(** Deadline-constrained fan-in (extension, not in the reproduced paper).

    The OLDI-style workload D2TCP targets: [n] synchronized responses, each
    carrying its own completion deadline; the figure of merit is the
    fraction of flows that meet their deadlines rather than aggregate
    goodput. Deadlines are assigned uniformly over
    [[deadline, deadline + deadline_spread]], so near- and far-deadline
    flows coexist (which is where deadline-aware backoff pays off). *)

type sender_kind =
  | Plain of Tcp.Cc.factory
      (** Every flow uses the same factory (DCTCP, Reno, ...). *)
  | Deadline_aware of
      (total_segments:int -> deadline:Engine.Time.t -> Tcp.Cc.factory)
      (** The factory sees each flow's size and deadline (D2TCP). *)

type config = {
  n_flows : int;
  bytes_per_flow : int;  (** Default 64 KB. *)
  deadline : Engine.Time.span;  (** Base deadline from flow start (20 ms). *)
  deadline_spread : Engine.Time.span;  (** Uniform extra slack (20 ms). *)
  repeats : int;  (** Default 20. *)
  rate_bps : float;
  buffer_bytes : int;
  leaf_buffer_bytes : int;
  segment_bytes : int;
  min_rto : Engine.Time.span;
  start_jitter : Engine.Time.span;
  time_cap : Engine.Time.span;
  seed : int64;
}

val default_config : config

type result = {
  met_fraction : float;  (** Flows finishing before their deadline. *)
  mean_completion_s : float;  (** Over all flows and repeats. *)
  p99_completion_s : float;
  timeouts_per_run : float;
  incomplete : int;  (** Flows still unfinished at [time_cap]. *)
}

val run :
  marking:(unit -> Net.Marking.t) ->
  ?echo:Tcp.Receiver.echo_policy ->
  ?faults:Fault.Plan.t ->
  ?buffer:Net.Buffer_mgr.config ->
  sender_kind ->
  config ->
  result
(** When [faults] is given, each repeat attaches a {!Fault.Injector}
    (seeded from that repeat's seed) to the star's root-to-aggregator
    bottleneck — the {!Incast.run} discipline; when absent no injector
    is constructed. [buffer] (default {!Net.Buffer_mgr.Static}) is the
    root switch's memory model. *)
