module Time = Engine.Time

type config = {
  n_flows : int;
  total_bytes : int;
  repeats : int;
  rate_bps : float;
  buffer_bytes : int;
  leaf_buffer_bytes : int;
  segment_bytes : int;
  min_rto : Time.span;
  time_cap : Time.span;
  seed : int64;
}

let default_config =
  {
    n_flows = 16;
    total_bytes = 1024 * 1024;
    repeats = 20;
    rate_bps = 1e9;
    buffer_bytes = 128 * 1024;
    leaf_buffer_bytes = 512 * 1024;
    segment_bytes = 1500;
    min_rto = Time.span_of_ms 200.;
    time_cap = Time.span_of_sec 10.;
    seed = 1L;
  }

type result = {
  mean_completion_s : float;
  min_completion_s : float;
  max_completion_s : float;
  p99_completion_s : float;
  stddev_completion_s : float;
  timeouts_per_run : float;
  incomplete : int;
}

let run ?faults ?buffer proto config =
  Workload.require_positive ~scenario:"Completion" ~what:"flows"
    config.n_flows;
  Workload.require_positive ~scenario:"Completion" ~what:"repeats"
    config.repeats;
  (* Reuse the Incast machinery: the workload is Incast with a per-flow
     share of the fixed total. *)
  let per_flow =
    (config.total_bytes + config.n_flows - 1) / config.n_flows
  in
  let incast_config =
    {
      Incast.n_flows = config.n_flows;
      bytes_per_flow = per_flow;
      repeats = 1;
      rate_bps = config.rate_bps;
      buffer_bytes = config.buffer_bytes;
      leaf_buffer_bytes = config.leaf_buffer_bytes;
      segment_bytes = config.segment_bytes;
      min_rto = config.min_rto;
      time_cap = config.time_cap;
      start_jitter = Incast.default_config.Incast.start_jitter;
      initial_cwnd = Incast.default_config.Incast.initial_cwnd;
      seed = config.seed;
    }
  in
  let completions = Array.make config.repeats 0. in
  let timeouts = ref 0 in
  let incomplete = ref 0 in
  for r = 0 to config.repeats - 1 do
    let res =
      Incast.run ?faults ?buffer proto
        {
          incast_config with
          Incast.seed = Workload.repeat_seed ~base:config.seed ~stride:104729 r;
        }
    in
    completions.(r) <- res.Incast.mean_completion;
    timeouts := !timeouts + int_of_float res.Incast.timeouts_per_run;
    incomplete := !incomplete + res.Incast.incomplete
  done;
  let d = Stats.Descriptive.of_array completions in
  {
    mean_completion_s = Stats.Descriptive.mean d;
    min_completion_s = Stats.Descriptive.min d;
    max_completion_s = Stats.Descriptive.max d;
    p99_completion_s = Stats.Percentile.of_array completions 99.;
    stddev_completion_s = Stats.Descriptive.stddev d;
    timeouts_per_run = float_of_int !timeouts /. float_of_int config.repeats;
    incomplete = !incomplete;
  }
