module Sim = Engine.Sim
module Time = Engine.Time

type t = {
  cwnd : Stats.Timeseries.t;
  alpha : Stats.Timeseries.t;
  srtt : Stats.Timeseries.t;
  (* Joined view for CSV export: one row per sampling instant. *)
  mutable rows : (Time.t * float * float option * float option) list;
  mutable sampler : Obs.Sampler.t option;
}

let sample t flow now =
  let cwnd = Tcp.Flow.cwnd flow in
  Stats.Timeseries.add t.cwnd now cwnd;
  let alpha = Tcp.Flow.alpha flow in
  (match alpha with
  | Some a -> Stats.Timeseries.add t.alpha now a
  | None -> ());
  let srtt =
    Option.map Time.span_to_sec (Tcp.Sender.srtt (Tcp.Flow.sender flow))
  in
  (match srtt with
  | Some s -> Stats.Timeseries.add t.srtt now s
  | None -> ());
  t.rows <- (now, cwnd, alpha, srtt) :: t.rows

let attach sim flow ~period ~stop_at =
  if Int64.compare period 0L <= 0 then
    invalid_arg "Instrument.attach: period must be positive";
  let t =
    {
      cwnd = Stats.Timeseries.create ();
      alpha = Stats.Timeseries.create ();
      srtt = Stats.Timeseries.create ();
      rows = [];
      sampler = None;
    }
  in
  t.sampler <-
    Some
      (Obs.Sampler.start sim ~period ~stop_at ~immediate:true (fun now ->
           sample t flow now));
  t

let cwnd_series t = t.cwnd
let alpha_series t = t.alpha
let srtt_series t = t.srtt
let detach t = Option.iter Obs.Sampler.stop t.sampler

let to_csv t oc =
  output_string oc "time_s,cwnd_segments,alpha,srtt_s\n";
  List.iter
    (fun (now, cwnd, alpha, srtt) ->
      let opt = function
        | Some v -> Printf.sprintf "%g" v
        | None -> ""
      in
      Printf.fprintf oc "%.9f,%g,%s,%s\n" (Time.to_sec now) cwnd (opt alpha)
        (opt srtt))
    (List.rev t.rows)
