module Sim = Engine.Sim
module Time = Engine.Time

type config = {
  n_flows : int;
  bottleneck_rate_bps : float;
  rtt : Time.span;
  buffer_bytes : int;
  segment_bytes : int;
  warmup : Time.span;
  measure : Time.span;
  trace_sampling : Time.span option;
  alpha_sample_period : Time.span;
  stagger : Time.span;
  min_rto : Time.span;
  seed : int64;
}

let default_config =
  {
    n_flows = 10;
    bottleneck_rate_bps = 10e9;
    rtt = Time.span_of_us 100.;
    buffer_bytes = 1000 * 1500;
    segment_bytes = 1500;
    warmup = Time.span_of_ms 100.;
    measure = Time.span_of_ms 200.;
    trace_sampling = None;
    alpha_sample_period = Time.span_of_ms 1.;
    stagger = Time.span_of_ms 1.;
    min_rto = Time.span_of_ms 10.;
    seed = 1L;
  }

type result = {
  mean_queue_pkts : float;
  std_queue_pkts : float;
  max_queue_pkts : float;
  mean_alpha : float;
  throughput_bps : float;
  utilization : float;
  marked_fraction : float;
  drops : int;
  timeouts : int;
  fast_retransmits : int;
  jain_fairness : float;
  queue_series : (float * float) array option;
}

let run ?(tracer = Obs.Trace.null) ?metrics ?faults
    ?(buffer = Net.Buffer_mgr.Static) ?on_sim (proto : Dctcp.Protocol.t)
    config =
  Workload.require_positive ~scenario:"Longlived" ~what:"flows" config.n_flows;
  let sim = Sim.create ~seed:config.seed () in
  (match on_sim with None -> () | Some f -> f sim);
  (* With no plan the injector is never constructed: the run is
     event-for-event the one this workload produced before fault
     injection existed. *)
  let injector =
    Option.map
      (fun plan ->
        Fault.Injector.create sim ~plan ~seed:config.seed ~tracer ?metrics
          ~component:"bottleneck" ())
      faults
  in
  (* The hysteresis flip observer: the policy lives inside the marking
     closure, so the run — which has both the sim and the tracer in
     scope — is the place to build it. *)
  let flips_up = ref 0 and flips_down = ref 0 in
  let on_flip ~marking ~occ_bytes =
    if marking then incr flips_up else incr flips_down;
    if Obs.Trace.enabled tracer Obs.Trace.C_mark_state_flip then
      Obs.Trace.emit tracer
        {
          Obs.Trace.time = Sim.now sim;
          component = "bottleneck";
          event = Obs.Trace.Mark_state_flip { marking; occ_bytes };
        }
  in
  let marking =
    let m = proto.Dctcp.Protocol.marking ~on_flip () in
    match injector with
    | None -> m
    | Some inj -> Fault.Injector.wrap_marking inj m
  in
  let net =
    Net.Topology.dumbbell sim ~n_senders:config.n_flows
      ~bottleneck_rate_bps:config.bottleneck_rate_bps ~rtt:config.rtt
      ~buffer_bytes:config.buffer_bytes ~buffer ~marking ~tracer ?metrics ()
  in
  (match injector with
  | None -> ()
  | Some inj -> Fault.Injector.attach inj ~port:net.Net.Topology.bottleneck);
  let tcp_config =
    {
      Tcp.Sender.default_config with
      segment_bytes = config.segment_bytes;
      min_rto = config.min_rto;
    }
  in
  let flows =
    Array.mapi
      (fun i src ->
        Tcp.Flow.create sim ~src ~dst:net.Net.Topology.receiver ~flow:i
          ~cc:proto.Dctcp.Protocol.cc ~tracer ~config:tcp_config
          ~echo:proto.Dctcp.Protocol.echo ())
      net.Net.Topology.senders
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let sum f = float_of_int (Array.fold_left (fun a x -> a + f x) 0 flows) in
      Obs.Metrics.probe m "marking.flips_up" (fun () ->
          float_of_int !flips_up);
      Obs.Metrics.probe m "marking.flips_down" (fun () ->
          float_of_int !flips_down);
      Obs.Metrics.probe m "engine.events_processed" (fun () ->
          float_of_int (Sim.events_processed sim));
      Obs.Metrics.probe m "engine.heap_high_water" (fun () ->
          float_of_int (Sim.heap_high_water sim));
      Obs.Metrics.probe m "sender.retransmissions" (fun () ->
          sum (fun f -> Tcp.Sender.retransmissions (Tcp.Flow.sender f)));
      Obs.Metrics.probe m "sender.timeouts" (fun () ->
          sum (fun f -> Tcp.Sender.timeouts (Tcp.Flow.sender f)));
      Obs.Metrics.probe m "sender.fast_retransmits" (fun () ->
          sum (fun f -> Tcp.Sender.fast_retransmits (Tcp.Flow.sender f)));
      Obs.Metrics.probe m "sender.ece_acks" (fun () ->
          sum (fun f -> Tcp.Sender.ece_acks (Tcp.Flow.sender f))));
  let nf = Array.length flows in
  let rng = Sim.rng sim in
  Array.iter
    (fun f ->
      let offset = Engine.Rng.jitter_span rng ~max:config.stagger in
      Tcp.Flow.start_at f (Time.of_ns offset))
    flows;
  let bottleneck = net.Net.Topology.bottleneck in
  let bqueue = Net.Port.queue bottleneck in
  let t_warm = Time.of_ns config.warmup in
  let t_stop = Time.add t_warm config.measure in
  (* Measurement bookkeeping armed at the end of the warm-up. *)
  let alpha_stats = Stats.Descriptive.create () in
  let delivered_at_warm = Array.make nf 0 in
  let trace = ref None in
  ignore
    (Sim.schedule_at sim t_warm (fun () ->
         Net.Queue_disc.reset_stats bqueue;
         Net.Port.reset_counters bottleneck;
         Array.iteri
           (fun i f -> delivered_at_warm.(i) <- Tcp.Flow.segments_delivered f)
           flows;
         (match config.trace_sampling with
         | Some period ->
             trace :=
               Some
                 (Net.Trace.on_queue sim bqueue ~mode:(Net.Trace.Sampled period)
                    ~stop_at:t_stop ())
         | None -> ());
         ignore
           (Obs.Sampler.start sim ~period:config.alpha_sample_period
              ~stop_at:t_stop ~immediate:true (fun _now ->
                Array.iter
                  (fun f ->
                    match Tcp.Flow.alpha f with
                    | Some a -> Stats.Descriptive.add alpha_stats a
                    | None -> ())
                  flows))));
  Sim.run ~until:t_stop sim;
  let measure_s = Time.span_to_sec config.measure in
  let throughput_bps =
    float_of_int (Net.Port.bytes_sent bottleneck * 8) /. measure_s
  in
  let enq = Net.Queue_disc.enqueued bqueue in
  let marked_fraction =
    if enq = 0 then 0.
    else float_of_int (Net.Queue_disc.marked bqueue) /. float_of_int enq
  in
  let per_flow =
    Array.mapi
      (fun i f ->
        float_of_int (Tcp.Flow.segments_delivered f - delivered_at_warm.(i)))
      flows
  in
  let queue_series =
    Option.map
      (fun tr ->
        Array.map
          (fun (t, v) -> (Time.to_sec t, v))
          (Stats.Timeseries.samples (Net.Trace.series_packets tr)))
      !trace
  in
  let pkt = float_of_int config.segment_bytes in
  {
    mean_queue_pkts = Net.Queue_disc.mean_occupancy_bytes bqueue /. pkt;
    std_queue_pkts = Net.Queue_disc.stddev_occupancy_bytes bqueue /. pkt;
    max_queue_pkts =
      float_of_int (Net.Queue_disc.max_occupancy_bytes bqueue) /. pkt;
    mean_alpha = Stats.Descriptive.mean alpha_stats;
    throughput_bps;
    utilization = throughput_bps /. config.bottleneck_rate_bps;
    marked_fraction;
    drops = Net.Queue_disc.drops bqueue;
    timeouts =
      Array.fold_left
        (fun acc f -> acc + Tcp.Sender.timeouts (Tcp.Flow.sender f))
        0 flows;
    fast_retransmits =
      Array.fold_left
        (fun acc f -> acc + Tcp.Sender.fast_retransmits (Tcp.Flow.sender f))
        0 flows;
    jain_fairness = Stats.Fairness.jain per_flow;
    queue_series;
  }
