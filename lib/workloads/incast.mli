(** Incast on the testbed star — the paper's Section VI-B-1 (Figure 14).

    The aggregator fans a query out to [n] synchronized senders (placed
    round-robin on the 9 workers), each responding with a fixed block
    (64 KB in the paper). All responses start simultaneously; the run's
    goodput is the total response volume divided by the time the last
    response completes. Throughput collapses once simultaneous arrivals
    overflow the shallow bottleneck buffer and some flow must wait out a
    200 ms minimum RTO. *)

type config = {
  n_flows : int;
  bytes_per_flow : int;  (** Default 64 KB. *)
  repeats : int;  (** Default 20. *)
  rate_bps : float;  (** Link rate, default 1 Gbps. *)
  buffer_bytes : int;  (** Bottleneck buffer, default 128 KB. *)
  leaf_buffer_bytes : int;  (** Default 512 KB. *)
  segment_bytes : int;  (** Default 1500. *)
  min_rto : Engine.Time.span;  (** Default 200 ms. *)
  time_cap : Engine.Time.span;
      (** Give up on a repeat after this long (default 10 s). *)
  start_jitter : Engine.Time.span;
      (** Each response starts uniformly within this window (default
          300 us), modelling the query fan-out serialization and host
          scheduling jitter of the physical testbed; 0 restores perfectly
          synchronized starts. *)
  initial_cwnd : float;  (** Sender initial window (default 2 segments). *)
  seed : int64;
}

val default_config : config

type result = {
  mean_goodput_bps : float;
  min_goodput_bps : float;
  max_goodput_bps : float;
  mean_completion : float;  (** Seconds, mean over repeats. *)
  p99_completion : float;
  timeouts_per_run : float;  (** RTO events averaged over repeats. *)
  incomplete : int;  (** Repeats that hit [time_cap]. *)
}

val run :
  ?faults:Fault.Plan.t ->
  ?buffer:Net.Buffer_mgr.config ->
  Dctcp.Protocol.t ->
  config ->
  result
(** When [faults] is given, each repeat attaches a {!Fault.Injector}
    (seeded from that repeat's seed) to the star's root-to-aggregator
    bottleneck; when absent no injector is constructed. [buffer] (default
    {!Net.Buffer_mgr.Static}) is the root switch's memory model. *)

val run_with_sack :
  ?faults:Fault.Plan.t ->
  ?buffer:Net.Buffer_mgr.config ->
  sack:bool ->
  Dctcp.Protocol.t ->
  config ->
  result
(** Like {!run} with selective-acknowledgment loss recovery toggled (the
    default {!run} uses go-back-N, matching the paper-era stacks). *)

val goodput_of_completion : config -> float -> float
(** [goodput_of_completion cfg t] is the goodput implied by finishing all
    responses in [t] seconds. *)
