(** The common shape of a scenario runner, plus helpers shared by the
    concrete workloads.

    Every workload module pairs a plain-record [config] (with a complete
    [default_config], so call sites override only what they vary) with a
    plain-record [result], and exposes [run] taking the protocol bundle
    under test. [Exp.Spec] relies on this uniformity to describe any
    scenario declaratively; the conformance of each concrete workload is
    asserted in [test/test_workloads.ml]. *)

module type S = sig
  type config

  type result

  val default_config : config

  val run : Dctcp.Protocol.t -> config -> result
end

val require_positive : scenario:string -> what:string -> int -> unit
(** [require_positive ~scenario ~what n] rejects non-positive scenario
    sizes with a uniform message.
    @raise Invalid_argument if [n <= 0]. *)

val repeat_seed : base:int64 -> stride:int -> int -> int64
(** Seed for repeat [r] of a multi-repeat workload: [base + r * stride].
    Strides are distinct per workload so repeats never share an RNG
    stream across workload families. *)

val run_slices :
  ?slice:Engine.Time.span ->
  Engine.Sim.t ->
  cap:Engine.Time.t ->
  pending:(unit -> bool) ->
  unit
(** Advance [sim] in [slice]-sized steps (default 5 ms) until [pending]
    reports completion or the clock reaches [cap] — the shared
    "stop as soon as the query is answered" loop of the fan-in
    workloads. *)
