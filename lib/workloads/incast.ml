module Sim = Engine.Sim
module Time = Engine.Time

type config = {
  n_flows : int;
  bytes_per_flow : int;
  repeats : int;
  rate_bps : float;
  buffer_bytes : int;
  leaf_buffer_bytes : int;
  segment_bytes : int;
  min_rto : Time.span;
  time_cap : Time.span;
  start_jitter : Time.span;
  initial_cwnd : float;
  seed : int64;
}

let default_config =
  {
    n_flows = 16;
    bytes_per_flow = 64 * 1024;
    repeats = 20;
    rate_bps = 1e9;
    buffer_bytes = 128 * 1024;
    leaf_buffer_bytes = 512 * 1024;
    segment_bytes = 1500;
    min_rto = Time.span_of_ms 200.;
    time_cap = Time.span_of_sec 10.;
    start_jitter = Time.span_of_us 300.;
    initial_cwnd = 2.;
    seed = 1L;
  }

type result = {
  mean_goodput_bps : float;
  min_goodput_bps : float;
  max_goodput_bps : float;
  mean_completion : float;
  p99_completion : float;
  timeouts_per_run : float;
  incomplete : int;
}

type run_outcome = {
  completion_s : float;  (** [time_cap] when incomplete. *)
  run_timeouts : int;
  finished : bool;
}

let one_repeat ?(sack = false) ?faults ~buffer (proto : Dctcp.Protocol.t)
    config ~seed =
  let sim = Sim.create ~seed () in
  (* One injector per repeat, derived from the repeat seed, so each
     repeat sees an independent but reproducible fault realization. *)
  let injector =
    Option.map
      (fun plan ->
        Fault.Injector.create sim ~plan ~seed ~component:"star_bottleneck" ())
      faults
  in
  let marking =
    let m = proto.Dctcp.Protocol.marking () in
    match injector with
    | None -> m
    | Some inj -> Fault.Injector.wrap_marking inj m
  in
  let star =
    Net.Topology.star_testbed sim ~rate_bps:config.rate_bps
      ~bottleneck_buffer:config.buffer_bytes
      ~leaf_buffer:config.leaf_buffer_bytes ~buffer ~marking ()
  in
  (match injector with
  | None -> ()
  | Some inj ->
      Fault.Injector.attach inj ~port:star.Net.Topology.star_bottleneck);
  let workers = star.Net.Topology.workers in
  let segments =
    (config.bytes_per_flow + config.segment_bytes - 1) / config.segment_bytes
  in
  let tcp_config =
    {
      Tcp.Sender.default_config with
      segment_bytes = config.segment_bytes;
      min_rto = config.min_rto;
      initial_cwnd = config.initial_cwnd;
      sack;
    }
  in
  let remaining = ref config.n_flows in
  let last_done = ref Time.zero in
  let flows =
    Array.init config.n_flows (fun i ->
        let src = workers.(i mod Array.length workers) in
        Tcp.Flow.create sim ~src ~dst:star.Net.Topology.aggregator ~flow:i
          ~cc:proto.Dctcp.Protocol.cc ~config:tcp_config
          ~echo:proto.Dctcp.Protocol.echo ~limit_segments:segments
          ~on_complete:(fun _ ->
            decr remaining;
            last_done := Sim.now sim)
          ())
  in
  let rng = Sim.rng sim in
  Array.iter
    (fun f ->
      let offset = Engine.Rng.jitter_span rng ~max:config.start_jitter in
      Tcp.Flow.start_at f (Time.of_ns offset))
    flows;
  let cap = Time.of_ns config.time_cap in
  Workload.run_slices sim ~cap ~pending:(fun () -> !remaining > 0);
  let run_timeouts =
    Array.fold_left
      (fun acc f -> acc + Tcp.Sender.timeouts (Tcp.Flow.sender f))
      0 flows
  in
  let finished = !remaining = 0 in
  {
    completion_s =
      (if finished then Time.to_sec !last_done
       else Time.span_to_sec config.time_cap);
    run_timeouts;
    finished;
  }

let goodput_of_completion config completion_s =
  if completion_s <= 0. then 0.
  else
    float_of_int (config.n_flows * config.bytes_per_flow * 8) /. completion_s

let run_with_sack ?faults ?(buffer = Net.Buffer_mgr.Static) ~sack proto
    config =
  Workload.require_positive ~scenario:"Incast" ~what:"flows" config.n_flows;
  Workload.require_positive ~scenario:"Incast" ~what:"repeats" config.repeats;
  let outcomes =
    Array.init config.repeats (fun r ->
        one_repeat ~sack ?faults ~buffer proto config
          ~seed:(Workload.repeat_seed ~base:config.seed ~stride:7919 r))
  in
  let completions = Array.map (fun o -> o.completion_s) outcomes in
  let goodputs = Array.map (goodput_of_completion config) completions in
  let d = Stats.Descriptive.of_array goodputs in
  {
    mean_goodput_bps = Stats.Descriptive.mean d;
    min_goodput_bps = Stats.Descriptive.min d;
    max_goodput_bps = Stats.Descriptive.max d;
    mean_completion =
      Stats.Descriptive.mean (Stats.Descriptive.of_array completions);
    p99_completion = Stats.Percentile.of_array completions 99.;
    timeouts_per_run =
      float_of_int
        (Array.fold_left (fun acc o -> acc + o.run_timeouts) 0 outcomes)
      /. float_of_int config.repeats;
    incomplete =
      Array.fold_left
        (fun acc o -> if o.finished then acc else acc + 1)
        0 outcomes;
  }

let run ?faults ?buffer proto config =
  run_with_sack ?faults ?buffer ~sack:false proto config
