(** Queue buildup under mixed traffic (extension; the "queue buildup"
    micro-benchmark of the original DCTCP paper, which Section II invokes
    as motivation).

    A few long-lived background flows keep the bottleneck busy while short
    request-sized flows arrive as a Poisson process from a pool of extra
    senders. The figure of merit is the short flows' completion-time
    distribution: a transport that parks a standing queue at the
    bottleneck (Reno) inflates every short flow's latency; DCTCP-family
    transports keep the queue at the marking threshold. *)

type config = {
  background_flows : int;  (** Default 2. *)
  short_senders : int;  (** Source pool for short flows (default 32). *)
  arrival_rate : float;  (** Short flows per second (default 5000). *)
  short_flow_segments : int;  (** Default 14 (~21 KB). *)
  duration : Engine.Time.span;  (** Measurement window (default 200 ms). *)
  warmup : Engine.Time.span;  (** Background-only warmup (default 50 ms). *)
  drain : Engine.Time.span;
      (** Extra time after the last arrival for stragglers (default
          100 ms). *)
  bottleneck_rate_bps : float;  (** Default 10 Gbps. *)
  rtt : Engine.Time.span;  (** Default 100 us. *)
  buffer_bytes : int;  (** Default 1000 packets. *)
  segment_bytes : int;
  min_rto : Engine.Time.span;
  seed : int64;
}

val default_config : config

type result = {
  short_flows_started : int;
  short_flows_completed : int;
  fct_mean_s : float;  (** Short-flow completion time statistics. *)
  fct_p50_s : float;
  fct_p99_s : float;
  fct_max_s : float;
  background_throughput_bps : float;
      (** Aggregate background goodput over the window. *)
  mean_queue_pkts : float;
  std_queue_pkts : float;
}

val run :
  ?faults:Fault.Plan.t ->
  ?buffer:Net.Buffer_mgr.config ->
  Dctcp.Protocol.t ->
  config ->
  result
(** When [faults] is given, a {!Fault.Injector} (seeded from
    [config.seed]) is attached to the bottleneck port and wrapped around
    the marking policy — the same discipline as {!Longlived.run}; when
    absent no injector is constructed. [buffer] (default
    {!Net.Buffer_mgr.Static}) is the bottleneck switch's memory model. *)
