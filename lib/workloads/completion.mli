(** Scatter-gather completion time — the paper's Section VI-B-2
    (Figure 15).

    The aggregator requests a fixed total (1 MB in the paper) split evenly
    over [n] workers; each responds with [total/n] simultaneously, and the
    query completes when the last response arrives. With a 1 Gbps
    bottleneck the floor is ~10 ms for 1 MB; once Incast timeouts begin,
    the mean jumps roughly 20x. *)

type config = {
  n_flows : int;
  total_bytes : int;  (** Default 1 MB. *)
  repeats : int;  (** Default 20. *)
  rate_bps : float;
  buffer_bytes : int;
  leaf_buffer_bytes : int;
  segment_bytes : int;
  min_rto : Engine.Time.span;
  time_cap : Engine.Time.span;
  seed : int64;
}

val default_config : config

type result = {
  mean_completion_s : float;
  min_completion_s : float;
  max_completion_s : float;
  p99_completion_s : float;
  stddev_completion_s : float;
  timeouts_per_run : float;
  incomplete : int;
}

val run :
  ?faults:Fault.Plan.t ->
  ?buffer:Net.Buffer_mgr.config ->
  Dctcp.Protocol.t ->
  config ->
  result
(** [faults] and [buffer] are forwarded to the underlying {!Incast.run}
    repeats. *)
