module Sim = Engine.Sim
module Time = Engine.Time

type sender_kind =
  | Plain of Tcp.Cc.factory
  | Deadline_aware of
      (total_segments:int -> deadline:Engine.Time.t -> Tcp.Cc.factory)

type config = {
  n_flows : int;
  bytes_per_flow : int;
  deadline : Time.span;
  deadline_spread : Time.span;
  repeats : int;
  rate_bps : float;
  buffer_bytes : int;
  leaf_buffer_bytes : int;
  segment_bytes : int;
  min_rto : Time.span;
  start_jitter : Time.span;
  time_cap : Time.span;
  seed : int64;
}

let default_config =
  {
    n_flows = 16;
    bytes_per_flow = 64 * 1024;
    deadline = Time.span_of_ms 20.;
    deadline_spread = Time.span_of_ms 20.;
    repeats = 20;
    rate_bps = 1e9;
    buffer_bytes = 128 * 1024;
    leaf_buffer_bytes = 512 * 1024;
    segment_bytes = 1500;
    min_rto = Time.span_of_ms 200.;
    start_jitter = Time.span_of_us 300.;
    time_cap = Time.span_of_sec 10.;
    seed = 1L;
  }

type result = {
  met_fraction : float;
  mean_completion_s : float;
  p99_completion_s : float;
  timeouts_per_run : float;
  incomplete : int;
}

type flow_outcome = { met : bool; completion_s : float; finished : bool }

let one_repeat ~marking ~echo ?faults ~buffer kind config ~seed =
  let sim = Sim.create ~seed () in
  (* One injector per repeat, seeded from the repeat seed (the Incast
     discipline); no plan means no injector and a bit-identical run. *)
  let injector =
    Option.map
      (fun plan ->
        Fault.Injector.create sim ~plan ~seed ~component:"star_bottleneck" ())
      faults
  in
  let marking =
    let m = marking () in
    match injector with
    | None -> m
    | Some inj -> Fault.Injector.wrap_marking inj m
  in
  let star =
    Net.Topology.star_testbed sim ~rate_bps:config.rate_bps
      ~bottleneck_buffer:config.buffer_bytes
      ~leaf_buffer:config.leaf_buffer_bytes ~buffer ~marking ()
  in
  (match injector with
  | None -> ()
  | Some inj ->
      Fault.Injector.attach inj ~port:star.Net.Topology.star_bottleneck);
  let workers = star.Net.Topology.workers in
  let segments =
    (config.bytes_per_flow + config.segment_bytes - 1) / config.segment_bytes
  in
  let tcp_config =
    {
      Tcp.Sender.default_config with
      segment_bytes = config.segment_bytes;
      min_rto = config.min_rto;
    }
  in
  let rng = Sim.rng sim in
  let remaining = ref config.n_flows in
  let flows =
    Array.init config.n_flows (fun i ->
        let src = workers.(i mod Array.length workers) in
        let start =
          Time.of_ns (Engine.Rng.jitter_span rng ~max:config.start_jitter)
        in
        let deadline =
          Time.add
            (Time.add start config.deadline)
            (Engine.Rng.jitter_span rng ~max:config.deadline_spread)
        in
        let cc =
          match kind with
          | Plain f -> f
          | Deadline_aware mk -> mk ~total_segments:segments ~deadline
        in
        let flow =
          Tcp.Flow.create sim ~src ~dst:star.Net.Topology.aggregator ~flow:i
            ~cc ~config:tcp_config ?echo ~limit_segments:segments
            ~on_complete:(fun _ -> decr remaining)
            ()
        in
        Tcp.Flow.start_at flow start;
        (flow, start, deadline))
  in
  let cap = Time.of_ns config.time_cap in
  Workload.run_slices sim ~cap ~pending:(fun () -> !remaining > 0);
  let outcomes =
    Array.map
      (fun (flow, start, deadline) ->
        match Tcp.Flow.completion_time flow with
        | Some t ->
            {
              met = Time.(t <= deadline);
              completion_s = Time.span_to_sec (Time.diff t start);
              finished = true;
            }
        | None ->
            {
              met = false;
              completion_s = Time.span_to_sec config.time_cap;
              finished = false;
            })
      flows
  in
  let timeouts =
    Array.fold_left
      (fun acc (flow, _, _) ->
        acc + Tcp.Sender.timeouts (Tcp.Flow.sender flow))
      0 flows
  in
  (outcomes, timeouts)

let run ~marking ?echo ?faults ?(buffer = Net.Buffer_mgr.Static) kind config =
  Workload.require_positive ~scenario:"Deadline" ~what:"flows" config.n_flows;
  Workload.require_positive ~scenario:"Deadline" ~what:"repeats"
    config.repeats;
  let all = ref [] in
  let timeouts = ref 0 in
  for r = 0 to config.repeats - 1 do
    let outcomes, t =
      one_repeat ~marking ~echo ?faults ~buffer kind config
        ~seed:(Workload.repeat_seed ~base:config.seed ~stride:6151 r)
    in
    all := outcomes :: !all;
    timeouts := !timeouts + t
  done;
  let outcomes = Array.concat !all in
  let n = Array.length outcomes in
  let met = Array.fold_left (fun a o -> if o.met then a + 1 else a) 0 outcomes in
  let completions = Array.map (fun o -> o.completion_s) outcomes in
  {
    met_fraction = float_of_int met /. float_of_int n;
    mean_completion_s =
      Array.fold_left ( +. ) 0. completions /. float_of_int n;
    p99_completion_s = Stats.Percentile.of_array completions 99.;
    timeouts_per_run = float_of_int !timeouts /. float_of_int config.repeats;
    incomplete =
      Array.fold_left (fun a o -> if o.finished then a else a + 1) 0 outcomes;
  }
