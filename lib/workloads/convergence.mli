(** Convergence and fairness under flow churn (extension; the "convergence
    test" of the original DCTCP paper).

    Flows join the bottleneck one at a time at a fixed interval, then
    leave in the same order, so the fair share steps down and back up.
    The runner samples every flow's goodput in fixed windows; the metrics
    are how quickly a newly joining flow reaches its fair share and how
    fair the allocation is while all flows are active. *)

type config = {
  n_flows : int;  (** Default 5. *)
  join_interval : Engine.Time.span;  (** Default 500 ms. *)
  hold : Engine.Time.span;
      (** Time with all flows active before departures begin (default
          500 ms). *)
  sample_window : Engine.Time.span;  (** Goodput bins (default 10 ms). *)
  bottleneck_rate_bps : float;  (** Default 1 Gbps. *)
  rtt : Engine.Time.span;
  buffer_bytes : int;
  segment_bytes : int;
  min_rto : Engine.Time.span;
  convergence_band : float;
      (** A flow has converged when its windowed goodput is within this
          fraction of the fair share (default 0.25). *)
  seed : int64;
}

val default_config : config

type result = {
  shares : float array array;
      (** [shares.(w).(i)]: flow [i]'s goodput (bps) in window [w]. *)
  window_s : float;  (** Width of each window, seconds. *)
  convergence_times_s : float array;
      (** Per flow: seconds from its join until windowed goodput first
          stays within the convergence band of the then-current fair
          share for three consecutive windows; [nan] if never. *)
  jain_steady : float;
      (** Jain index over per-flow goodput while all flows are active. *)
  utilization_steady : float;
}

val run :
  ?faults:Fault.Plan.t ->
  ?buffer:Net.Buffer_mgr.config ->
  Dctcp.Protocol.t ->
  config ->
  result
(** When [faults] is given, a {!Fault.Injector} (seeded from
    [config.seed]) is attached to the bottleneck port and wrapped around
    the marking policy; when absent no injector is constructed. [buffer]
    (default {!Net.Buffer_mgr.Static}) is the bottleneck switch's memory
    model. *)
