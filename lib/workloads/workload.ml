module Sim = Engine.Sim
module Time = Engine.Time

module type S = sig
  type config

  type result

  val default_config : config

  val run : Dctcp.Protocol.t -> config -> result
end

let require_positive ~scenario ~what n =
  if n <= 0 then
    invalid_arg (Printf.sprintf "%s.run: need %s (got %d)" scenario what n)

let repeat_seed ~base ~stride r = Int64.add base (Int64.of_int (r * stride))

let default_slice = Time.span_of_ms 5.

let run_slices ?(slice = default_slice) sim ~cap ~pending =
  let rec advance () =
    if pending () && Time.(Sim.now sim < cap) then begin
      Sim.run ~until:(Time.min cap (Time.add (Sim.now sim) slice)) sim;
      advance ()
    end
  in
  advance ()
