module Sim = Engine.Sim
module Time = Engine.Time

type config = {
  k : int;
  incast_fanin : int;
  incast_bytes : int;
  long_flows : int;
  long_bytes : int;
  rate_bps : float;
  link_delay : Time.span;
  queue_bytes : int;
  segment_bytes : int;
  min_rto : Time.span;
  time_cap : Time.span;
  start_spread : Time.span;
  initial_cwnd : float;
  seed : int64;
}

let default_config =
  {
    k = 4;
    incast_fanin = 8;
    incast_bytes = 128 * 1024;
    long_flows = 8;
    long_bytes = 512 * 1024;
    rate_bps = 1e9;
    link_delay = Time.span_of_us 5.;
    queue_bytes = 128 * 1024;
    segment_bytes = 1500;
    min_rto = Time.span_of_ms 10.;
    time_cap = Time.span_of_sec 5.;
    start_spread = Time.span_of_ms 1.;
    initial_cwnd = 2.;
    seed = 1L;
  }

type result = {
  slowdown_p50 : float;
  slowdown_p95 : float;
  slowdown_p99 : float;
  slowdown_p999 : float;
  slowdown_mean : float;
  slowdown_max : float;
  flows_total : int;
  timeouts : int;
  incomplete : int;
  no_route_drops : int;
}

(* One-way link traversals between two hosts: 2 within a rack
   (host-edge-host), 4 within a pod, 6 across pods. *)
let hops ~half ~hosts_per_pod ~src ~dst =
  if src / half = dst / half then 2
  else if src / hosts_per_pod = dst / hosts_per_pod then 4
  else 6

(* Idle-network FCT: round-trip propagation (request out, last ACK
   back), serialization of the whole transfer at line rate, plus one
   segment's store-and-forward delay at each intermediate hop. Slow
   start, queueing and loss recovery are exactly what the slowdown
   ratio is meant to expose, so they are not modeled here. *)
let ideal_fct_ns config ~hops ~bytes =
  let seg = config.segment_bytes in
  let segments = (bytes + seg - 1) / seg in
  let ser_ns b =
    Int64.of_float (float_of_int (b * 8) /. config.rate_bps *. 1e9)
  in
  let prop = Int64.mul (Int64.of_int (2 * hops)) config.link_delay in
  Int64.add
    (Int64.add prop (ser_ns (segments * seg)))
    (Int64.mul (Int64.of_int (hops - 1)) (ser_ns seg))

let total_no_route (ft : Net.Topology.fat_tree) =
  let sum = Array.fold_left (fun a sw -> a + Net.Switch.no_route_drops sw) in
  sum (sum (sum 0 ft.Net.Topology.edges) ft.Net.Topology.aggs)
    ft.Net.Topology.cores

let run ?metrics ?faults ?(buffer = Net.Buffer_mgr.Static)
    (proto : Dctcp.Protocol.t) config =
  (match faults with
  | None -> ()
  | Some _ ->
      invalid_arg "Fattree.run: fault injection is not supported on the fabric");
  Workload.require_positive ~scenario:"Fattree" ~what:"incast_fanin"
    config.incast_fanin;
  if config.long_flows < 0 then
    invalid_arg "Fattree.run: negative long_flows";
  let sim = Sim.create ~seed:config.seed () in
  let ft =
    Net.Topology.fat_tree sim ~k:config.k ~rate_bps:config.rate_bps
      ~link_delay:config.link_delay ~queue_bytes:config.queue_bytes
      ~edge_buffer:buffer ~agg_buffer:buffer ~core_buffer:buffer
      ~marking:proto.Dctcp.Protocol.marking ()
  in
  let half = config.k / 2 in
  let n_hosts = Array.length ft.Net.Topology.hosts in
  let hosts_per_pod = half * half in
  let n_racks = n_hosts / half in
  let n_short = n_racks * config.incast_fanin in
  let total = n_short + config.long_flows in
  let src_a = Array.make total 0 in
  let dst_a = Array.make total 0 in
  let bytes_a = Array.make total 0 in
  let rng = Sim.rng sim in
  (* Per-rack incast: every rack's first host is a victim fed by
     [incast_fanin] senders drawn uniformly from the other racks. *)
  for r = 0 to n_racks - 1 do
    let victim = r * half in
    for j = 0 to config.incast_fanin - 1 do
      let i = (r * config.incast_fanin) + j in
      let rec pick () =
        let s = Engine.Rng.int rng ~bound:n_hosts in
        if s / half = r then pick () else s
      in
      src_a.(i) <- pick ();
      dst_a.(i) <- victim;
      bytes_a.(i) <- config.incast_bytes
    done
  done;
  (* Long flows cross half the fabric: dst sits n_hosts/2 beyond src,
     which is always a different pod. *)
  for l = 0 to config.long_flows - 1 do
    let i = n_short + l in
    let src = Engine.Rng.int rng ~bound:n_hosts in
    src_a.(i) <- src;
    dst_a.(i) <- (src + (n_hosts / 2)) mod n_hosts;
    bytes_a.(i) <- config.long_bytes
  done;
  let tcp_config =
    {
      Tcp.Sender.default_config with
      segment_bytes = config.segment_bytes;
      min_rto = config.min_rto;
      initial_cwnd = config.initial_cwnd;
    }
  in
  let remaining = ref total in
  let finished = Array.make total false in
  let done_at = Array.make total Time.zero in
  let flows =
    Array.init total (fun i ->
        let segments =
          (bytes_a.(i) + config.segment_bytes - 1) / config.segment_bytes
        in
        Tcp.Flow.create sim ~src:ft.Net.Topology.hosts.(src_a.(i))
          ~dst:ft.Net.Topology.hosts.(dst_a.(i))
          ~flow:i ~cc:proto.Dctcp.Protocol.cc ~config:tcp_config
          ~echo:proto.Dctcp.Protocol.echo ~limit_segments:segments
          ~on_complete:(fun _ ->
            decr remaining;
            finished.(i) <- true;
            done_at.(i) <- Sim.now sim)
          ())
  in
  (match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.probe m "engine.events_processed" (fun () ->
          float_of_int (Sim.events_processed sim));
      Obs.Metrics.probe m "switch.no_route_drops" (fun () ->
          float_of_int (total_no_route ft));
      Obs.Metrics.probe m "sender.timeouts" (fun () ->
          float_of_int
            (Array.fold_left
               (fun a f -> a + Tcp.Sender.timeouts (Tcp.Flow.sender f))
               0 flows)));
  let starts = Array.make total Time.zero in
  Array.iteri
    (fun i f ->
      let offset = Engine.Rng.jitter_span rng ~max:config.start_spread in
      starts.(i) <- Time.of_ns offset;
      Tcp.Flow.start_at f starts.(i))
    flows;
  let cap = Time.of_ns config.time_cap in
  Workload.run_slices sim ~cap ~pending:(fun () -> !remaining > 0);
  let slowdowns =
    Array.init total (fun i ->
        let h = hops ~half ~hosts_per_pod ~src:src_a.(i) ~dst:dst_a.(i) in
        let ideal_ns = ideal_fct_ns config ~hops:h ~bytes:bytes_a.(i) in
        let finish = if finished.(i) then done_at.(i) else cap in
        let actual =
          Int64.sub (Time.to_ns finish) (Time.to_ns starts.(i))
        in
        (* A censored flow that never even started scores the minimum. *)
        let actual_ns = if Int64.compare actual 0L < 0 then 0L else actual in
        Stats.Fct.slowdown ~ideal_ns ~actual_ns)
  in
  let s = Stats.Fct.summarize slowdowns in
  let timeouts =
    Array.fold_left
      (fun acc f -> acc + Tcp.Sender.timeouts (Tcp.Flow.sender f))
      0 flows
  in
  let incomplete =
    Array.fold_left (fun acc f -> if f then acc else acc + 1) 0 finished
  in
  {
    slowdown_p50 = s.Stats.Fct.p50;
    slowdown_p95 = s.Stats.Fct.p95;
    slowdown_p99 = s.Stats.Fct.p99;
    slowdown_p999 = s.Stats.Fct.p999;
    slowdown_mean = s.Stats.Fct.mean;
    slowdown_max = s.Stats.Fct.max;
    flows_total = total;
    timeouts;
    incomplete;
    no_route_drops = total_no_route ft;
  }
