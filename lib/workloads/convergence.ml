module Sim = Engine.Sim
module Time = Engine.Time

type config = {
  n_flows : int;
  join_interval : Time.span;
  hold : Time.span;
  sample_window : Time.span;
  bottleneck_rate_bps : float;
  rtt : Time.span;
  buffer_bytes : int;
  segment_bytes : int;
  min_rto : Time.span;
  convergence_band : float;
  seed : int64;
}

let default_config =
  {
    n_flows = 5;
    join_interval = Time.span_of_ms 500.;
    hold = Time.span_of_ms 500.;
    sample_window = Time.span_of_ms 10.;
    bottleneck_rate_bps = 1e9;
    rtt = Time.span_of_us 100.;
    buffer_bytes = 500 * 1500;
    segment_bytes = 1500;
    min_rto = Time.span_of_ms 10.;
    convergence_band = 0.25;
    seed = 1L;
  }

type result = {
  shares : float array array;
  window_s : float;
  convergence_times_s : float array;
  jain_steady : float;
  utilization_steady : float;
}

let run ?faults ?(buffer = Net.Buffer_mgr.Static) (proto : Dctcp.Protocol.t)
    config =
  Workload.require_positive ~scenario:"Convergence" ~what:"flows"
    config.n_flows;
  let sim = Sim.create ~seed:config.seed () in
  let injector =
    Option.map
      (fun plan ->
        Fault.Injector.create sim ~plan ~seed:config.seed
          ~component:"bottleneck" ())
      faults
  in
  let marking =
    let m = proto.Dctcp.Protocol.marking () in
    match injector with
    | None -> m
    | Some inj -> Fault.Injector.wrap_marking inj m
  in
  let net =
    Net.Topology.dumbbell sim ~n_senders:config.n_flows
      ~bottleneck_rate_bps:config.bottleneck_rate_bps ~rtt:config.rtt
      ~buffer_bytes:config.buffer_bytes ~buffer ~marking ()
  in
  (match injector with
  | None -> ()
  | Some inj -> Fault.Injector.attach inj ~port:net.Net.Topology.bottleneck);
  let tcp_config =
    {
      Tcp.Sender.default_config with
      segment_bytes = config.segment_bytes;
      min_rto = config.min_rto;
    }
  in
  let flows =
    Array.mapi
      (fun i src ->
        Tcp.Flow.create sim ~src ~dst:net.Net.Topology.receiver ~flow:i
          ~cc:proto.Dctcp.Protocol.cc ~config:tcp_config
          ~echo:proto.Dctcp.Protocol.echo ())
      net.Net.Topology.senders
  in
  let join_time i =
    Time.of_ns (Int64.mul config.join_interval (Int64.of_int i))
  in
  let all_joined = join_time (config.n_flows - 1) in
  let departures_start = Time.add all_joined config.hold in
  (* Departure = the sender simply stops growing its demand: we close the
     flow (stop transmitting) at its departure instant, mirroring the join
     staircase. *)
  let leave_time i =
    Time.add departures_start
      (Int64.mul config.join_interval (Int64.of_int i))
  in
  Array.iteri
    (fun i f ->
      Tcp.Flow.start_at f (join_time i);
      ignore (Sim.schedule_at sim (leave_time i) (fun () -> Tcp.Flow.close f)))
    flows;
  let t_end = leave_time (config.n_flows - 1) in
  let window_s = Time.span_to_sec config.sample_window in
  let n_windows =
    int_of_float
      (Float.round (Time.to_sec t_end /. window_s))
  in
  let shares = Array.make_matrix n_windows config.n_flows 0. in
  let prev = Array.make config.n_flows 0 in
  for w = 0 to n_windows - 1 do
    ignore
      (Sim.schedule_at sim
         (Time.of_sec (float_of_int (w + 1) *. window_s))
         (fun () ->
           Array.iteri
             (fun i f ->
               let d = Tcp.Flow.segments_delivered f in
               shares.(w).(i) <-
                 Stats.Fairness.goodput_bps ~segments:(d - prev.(i))
                   ~segment_bytes:config.segment_bytes ~window_s;
               prev.(i) <- d)
             flows))
  done;
  Sim.run ~until:t_end sim;
  (* Convergence time per flow: first window after its join where the
     windowed goodput stays within the band of the instantaneous fair
     share for three consecutive windows. *)
  let active_at w =
    let t = (float_of_int w +. 0.5) *. window_s in
    let joined =
      Array.to_list flows
      |> List.mapi (fun i _ -> if t >= Time.to_sec (join_time i) then 1 else 0)
      |> List.fold_left ( + ) 0
    in
    let left =
      Array.to_list flows
      |> List.mapi (fun i _ -> if t >= Time.to_sec (leave_time i) then 1 else 0)
      |> List.fold_left ( + ) 0
    in
    Stdlib.max 1 (joined - left)
  in
  let convergence_times_s =
    Array.mapi
      (fun i _ ->
        let join_w =
          int_of_float (Time.to_sec (join_time i) /. window_s) + 1
        in
        let leave_w =
          Stdlib.min n_windows
            (int_of_float (Time.to_sec (leave_time i) /. window_s))
        in
        let ok w =
          let fair =
            config.bottleneck_rate_bps /. float_of_int (active_at w)
          in
          Float.abs (shares.(w).(i) -. fair) <= config.convergence_band *. fair
        in
        let rec scan w =
          if w + 2 >= leave_w then Float.nan
          else if ok w && ok (w + 1) && ok (w + 2) then
            (float_of_int w *. window_s) -. Time.to_sec (join_time i)
          else scan (w + 1)
        in
        scan join_w)
      flows
  in
  (* Steady state: all flows active. *)
  let w_lo = int_of_float (Time.to_sec all_joined /. window_s) + 1 in
  let w_hi = int_of_float (Time.to_sec departures_start /. window_s) - 1 in
  let steady_totals = Array.make config.n_flows 0. in
  let count = ref 0 in
  for w = w_lo to w_hi do
    if w >= 0 && w < n_windows then begin
      incr count;
      Array.iteri (fun i v -> steady_totals.(i) <- steady_totals.(i) +. v)
        shares.(w)
    end
  done;
  let steady_mean =
    Array.map (fun v -> v /. float_of_int (Stdlib.max 1 !count)) steady_totals
  in
  {
    shares;
    window_s;
    convergence_times_s;
    jain_steady = Stats.Fairness.jain steady_mean;
    utilization_steady =
      Array.fold_left ( +. ) 0. steady_mean /. config.bottleneck_rate_bps;
  }
