module Sim = Engine.Sim
module Time = Engine.Time

type config = {
  background_flows : int;
  short_senders : int;
  arrival_rate : float;
  short_flow_segments : int;
  duration : Time.span;
  warmup : Time.span;
  drain : Time.span;
  bottleneck_rate_bps : float;
  rtt : Time.span;
  buffer_bytes : int;
  segment_bytes : int;
  min_rto : Time.span;
  seed : int64;
}

let default_config =
  {
    background_flows = 2;
    short_senders = 32;
    arrival_rate = 5000.;
    short_flow_segments = 14;
    duration = Time.span_of_ms 200.;
    warmup = Time.span_of_ms 50.;
    drain = Time.span_of_ms 100.;
    bottleneck_rate_bps = 10e9;
    rtt = Time.span_of_us 100.;
    buffer_bytes = 1000 * 1500;
    segment_bytes = 1500;
    min_rto = Time.span_of_ms 10.;
    seed = 1L;
  }

type result = {
  short_flows_started : int;
  short_flows_completed : int;
  fct_mean_s : float;
  fct_p50_s : float;
  fct_p99_s : float;
  fct_max_s : float;
  background_throughput_bps : float;
  mean_queue_pkts : float;
  std_queue_pkts : float;
}

let run ?faults ?(buffer = Net.Buffer_mgr.Static) (proto : Dctcp.Protocol.t)
    config =
  Workload.require_positive ~scenario:"Dynamic" ~what:"background flows"
    config.background_flows;
  Workload.require_positive ~scenario:"Dynamic" ~what:"senders"
    config.short_senders;
  if config.arrival_rate <= 0. then invalid_arg "Dynamic.run: need arrivals";
  let sim = Sim.create ~seed:config.seed () in
  let n_hosts = config.background_flows + config.short_senders in
  (* Same injector discipline as Longlived: no plan, no injector, and the
     run is event-for-event the pre-fault one. *)
  let injector =
    Option.map
      (fun plan ->
        Fault.Injector.create sim ~plan ~seed:config.seed
          ~component:"bottleneck" ())
      faults
  in
  let marking =
    let m = proto.Dctcp.Protocol.marking () in
    match injector with
    | None -> m
    | Some inj -> Fault.Injector.wrap_marking inj m
  in
  let net =
    Net.Topology.dumbbell sim ~n_senders:n_hosts
      ~bottleneck_rate_bps:config.bottleneck_rate_bps ~rtt:config.rtt
      ~buffer_bytes:config.buffer_bytes ~buffer ~marking ()
  in
  (match injector with
  | None -> ()
  | Some inj -> Fault.Injector.attach inj ~port:net.Net.Topology.bottleneck);
  let tcp_config =
    {
      Tcp.Sender.default_config with
      segment_bytes = config.segment_bytes;
      min_rto = config.min_rto;
    }
  in
  (* Background long-lived flows on the first hosts. *)
  let background =
    Array.init config.background_flows (fun i ->
        let f =
          Tcp.Flow.create sim ~src:net.Net.Topology.senders.(i)
            ~dst:net.Net.Topology.receiver ~flow:i
            ~cc:proto.Dctcp.Protocol.cc ~config:tcp_config
            ~echo:proto.Dctcp.Protocol.echo ()
        in
        Tcp.Flow.start_at f (Time.of_us (float_of_int i));
        f)
  in
  let rng = Engine.Rng.split (Sim.rng sim) in
  let t_measure_start = Time.of_ns config.warmup in
  let t_last_arrival = Time.add t_measure_start config.duration in
  let t_stop = Time.add t_last_arrival config.drain in
  let started = ref 0 in
  let fcts = ref [] in
  let next_flow_id = ref config.background_flows in
  let next_src = ref 0 in
  (* Poisson arrivals of short flows during the measurement window. *)
  let rec arrival () =
    let now = Sim.now sim in
    if Time.(now <= t_last_arrival) then begin
      let src =
        net.Net.Topology.senders.(config.background_flows
                                  + (!next_src mod config.short_senders))
      in
      incr next_src;
      let id = !next_flow_id in
      incr next_flow_id;
      incr started;
      let born = now in
      let flow = ref None in
      let f =
        Tcp.Flow.create sim ~src ~dst:net.Net.Topology.receiver ~flow:id
          ~cc:proto.Dctcp.Protocol.cc ~config:tcp_config
          ~echo:proto.Dctcp.Protocol.echo
          ~limit_segments:config.short_flow_segments
          ~on_complete:(fun _ ->
            fcts :=
              Time.span_to_sec (Time.diff (Sim.now sim) born) :: !fcts;
            (* Free the host's flow binding for reuse. *)
            match !flow with Some f -> Tcp.Flow.close f | None -> ())
          ()
      in
      flow := Some f;
      Tcp.Flow.start f;
      let gap = Engine.Rng.exponential rng ~mean:(1. /. config.arrival_rate) in
      ignore (Sim.schedule_after sim (Time.span_of_sec gap) arrival)
    end
  in
  let bottleneck = net.Net.Topology.bottleneck in
  let bqueue = Net.Port.queue bottleneck in
  let background_at_start = Array.make config.background_flows 0 in
  ignore
    (Sim.schedule_at sim t_measure_start (fun () ->
         Net.Queue_disc.reset_stats bqueue;
         Array.iteri
           (fun i f ->
             background_at_start.(i) <- Tcp.Flow.segments_delivered f)
           background;
         arrival ()));
  Sim.run ~until:t_stop sim;
  let fcts = Array.of_list !fcts in
  let n_done = Array.length fcts in
  let pct p = if n_done = 0 then 0. else Stats.Percentile.of_array fcts p in
  let bg_segments =
    Array.to_list background
    |> List.mapi (fun i f ->
           Tcp.Flow.segments_delivered f - background_at_start.(i))
    |> List.fold_left ( + ) 0
  in
  let window_s =
    Time.span_to_sec (Time.diff t_stop t_measure_start)
  in
  {
    short_flows_started = !started;
    short_flows_completed = n_done;
    fct_mean_s =
      (if n_done = 0 then 0.
       else Array.fold_left ( +. ) 0. fcts /. float_of_int n_done);
    fct_p50_s = pct 50.;
    fct_p99_s = pct 99.;
    fct_max_s = pct 100.;
    background_throughput_bps =
      float_of_int (bg_segments * config.segment_bytes * 8) /. window_s;
    mean_queue_pkts = Net.Queue_disc.mean_occupancy_packets bqueue;
    std_queue_pkts = Net.Queue_disc.stddev_occupancy_packets bqueue;
  }
