(** Compiles a {!Plan} into scheduled simulator events and per-packet
    hooks on one link.

    The injector owns a dedicated [Engine.Rng] stream derived from the
    spec seed ([seed XOR 'FAULT']), so fault randomness (loss coin
    flips, jitter draws, probabilistic mark suppression) is bit-stable
    across repeats and [-j] levels and never perturbs the workload's own
    stream. Determinism contract: a given (plan, seed, scenario) triple
    always injects the identical fault sequence; with {!Plan.none}
    nothing is scheduled or hooked at all.

    Typed [Obs.Trace] events ([Link_down] / [Link_up] / [Pkt_lost] /
    [Mark_suppressed] / [Rate_changed]) are emitted as faults fire, and
    [fault.*] probes are registered when [metrics] is given. *)

type t

val create :
  Engine.Sim.t ->
  plan:Plan.t ->
  seed:int64 ->
  ?tracer:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?component:string ->
  unit ->
  t
(** [seed] is the scenario's spec seed; the injector derives its own
    stream from it. [component] (default ["fault"]) labels trace events.
    @raise Invalid_argument if {!Plan.validate} rejects the plan. *)

val attach : t -> port:Net.Port.t -> unit
(** Schedule the plan's flaps and rate changes against [port] (spans
    relative to the current instant, normally simulation start) and
    install the loss/jitter delivery hook if either channel is enabled.
    Call once, on the scenario's bottleneck port. *)

val wrap_marking : t -> Net.Marking.t -> Net.Marking.t
(** Apply the plan's ECN-mark suppression around a marking policy; the
    identity when the plan keeps marks. Window spans are relative to the
    current instant. *)

(** {2 Counters} (also exported as [fault.*] metric probes) *)

val link_downs : t -> int
val link_ups : t -> int
val pkts_lost : t -> int
val pkts_delayed : t -> int
val marks_suppressed : t -> int
val rate_changes : t -> int
