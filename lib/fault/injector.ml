module Sim = Engine.Sim
module Time = Engine.Time
module Rng = Engine.Rng
module Trace = Obs.Trace

(* 'FAULT' in ASCII. XORed into the spec seed so the injector's stream is
   deterministic yet distinct from the simulation's own stream: faulted
   draws never consume from — or depend on the draw order of — the
   workload's randomness. *)
let seed_salt = 0x4641554C54L

type t = {
  sim : Sim.t;
  plan : Plan.t;
  rng : Rng.t;
  tracer : Trace.t;
  component : string;
  mutable link_downs : int;
  mutable link_ups : int;
  mutable pkts_lost : int;
  mutable pkts_delayed : int;
  mutable marks_suppressed : int;
  mutable rate_changes : int;
}

let create sim ~plan ~seed ?(tracer = Trace.null) ?metrics
    ?(component = "fault") () =
  (match Plan.validate plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fault.Injector.create: " ^ msg));
  let t =
    {
      sim;
      plan;
      rng = Rng.create ~seed:(Int64.logxor seed seed_salt);
      tracer;
      component;
      link_downs = 0;
      link_ups = 0;
      pkts_lost = 0;
      pkts_delayed = 0;
      marks_suppressed = 0;
      rate_changes = 0;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.probe m "fault.link_downs" (fun () ->
          float_of_int t.link_downs);
      Obs.Metrics.probe m "fault.pkts_lost" (fun () ->
          float_of_int t.pkts_lost);
      Obs.Metrics.probe m "fault.pkts_delayed" (fun () ->
          float_of_int t.pkts_delayed);
      Obs.Metrics.probe m "fault.marks_suppressed" (fun () ->
          float_of_int t.marks_suppressed);
      Obs.Metrics.probe m "fault.rate_changes" (fun () ->
          float_of_int t.rate_changes));
  t

let emit t event =
  if Trace.enabled t.tracer (Trace.cls_of_event event) then
    Trace.emit t.tracer
      { time = Sim.now t.sim; component = t.component; event }

let cls_fault = Engine.Event_class.(index Fault)

let attach t ~port =
  let queue = Net.Port.queue port in
  let occ () = Net.Queue_disc.occupancy_bytes queue in
  List.iter
    (fun { Plan.down_at; up_at } ->
      ignore
        (Sim.schedule_after_cls t.sim down_at ~cls:cls_fault (fun () ->
             Net.Port.set_up port false;
             t.link_downs <- t.link_downs + 1;
             emit t (Trace.Link_down { occ_bytes = occ () })));
      ignore
        (Sim.schedule_after_cls t.sim up_at ~cls:cls_fault (fun () ->
             Net.Port.set_up port true;
             t.link_ups <- t.link_ups + 1;
             emit t (Trace.Link_up { occ_bytes = occ () }))))
    t.plan.Plan.flaps;
  let base_rate = Net.Port.rate_bps port in
  List.iter
    (fun { Plan.at; until; factor } ->
      let set rate () =
        Net.Port.set_rate port rate;
        t.rate_changes <- t.rate_changes + 1;
        emit t (Trace.Rate_changed { rate_bps = rate })
      in
      ignore
        (Sim.schedule_after_cls t.sim at ~cls:cls_fault
           (set (base_rate *. factor)));
      ignore (Sim.schedule_after_cls t.sim until ~cls:cls_fault (set base_rate)))
    t.plan.Plan.rate_changes;
  let loss = t.plan.Plan.loss_rate and jitter = t.plan.Plan.jitter_max in
  (* Resolved once here, not per delivery inside the hook. *)
  let st = Net.Packet.store_of t.sim in
  if loss > 0. || Int64.compare jitter 0L > 0 then
    Net.Port.set_fault_hook port (fun pkt ->
        if loss > 0. && Rng.float t.rng < loss then begin
          t.pkts_lost <- t.pkts_lost + 1;
          emit t
            (Trace.Pkt_lost
               {
                 flow = Net.Packet.flow st pkt;
                 size = Net.Packet.size st pkt;
               });
          Net.Port.Lose
        end
        else if Int64.compare jitter 0L > 0 then begin
          let d = Rng.jitter_span t.rng ~max:jitter in
          if Int64.compare d 0L = 0 then Net.Port.Deliver
          else begin
            t.pkts_delayed <- t.pkts_delayed + 1;
            Net.Port.Delay d
          end
        end
        else Net.Port.Deliver)

let wrap_marking t marking =
  match t.plan.Plan.suppression with
  | Plan.Keep_marks -> marking
  | sup ->
      let attach_time = Sim.now t.sim in
      let active =
        match sup with
        | Plan.Keep_marks -> fun () -> false
        | Plan.Suppress_all -> fun () -> true
        | Plan.Suppress_window { at; until } ->
            let start = Time.add attach_time at in
            let stop = Time.add attach_time until in
            fun () ->
              let now = Sim.now t.sim in
              Time.(start <= now) && Time.(now < stop)
        | Plan.Suppress_prob p -> fun () -> Rng.float t.rng < p
      in
      let on_suppress ~bytes ~packets =
        t.marks_suppressed <- t.marks_suppressed + 1;
        emit t (Trace.Mark_suppressed { occ_bytes = bytes; occ_pkts = packets })
      in
      Net.Marking.suppress ~active ~on_suppress marking

let link_downs t = t.link_downs
let link_ups t = t.link_ups
let pkts_lost t = t.pkts_lost
let pkts_delayed t = t.pkts_delayed
let marks_suppressed t = t.marks_suppressed
let rate_changes t = t.rate_changes
