(** Declarative fault plans.

    A plan describes every non-ideality injected into one link (in
    practice the bottleneck port of a scenario's topology): down/up
    windows ("flaps"), seeded Bernoulli packet loss on the wire,
    per-packet delay jitter, mid-run rate-degradation windows, and
    ECN-mark suppression. Plans are pure data with a strict JSON
    round-trip, so they embed in {b Exp.Spec} and in run manifests; the
    randomness they call for is drawn by {b Fault.Injector} from a
    dedicated stream derived from the spec seed, never here.

    All spans are relative to the instant the injector is attached
    (simulation start in the stock workloads). *)

type flap = { down_at : Engine.Time.span; up_at : Engine.Time.span }
(** The link goes down at [down_at] and comes back at [up_at]. *)

type rate_change = {
  at : Engine.Time.span;
  until : Engine.Time.span;
  factor : float;  (** Rate multiplier over the window, e.g. 0.5. *)
}

type suppression =
  | Keep_marks  (** ECN works normally (the default). *)
  | Suppress_all  (** "Non-ECN switch": every CE mark is discarded. *)
  | Suppress_window of { at : Engine.Time.span; until : Engine.Time.span }
  | Suppress_prob of float  (** Each would-be mark is lost with probability p. *)

type t = {
  flaps : flap list;
  loss_rate : float;  (** Per-packet Bernoulli wire loss in [0, 1). *)
  jitter_max : Engine.Time.span;
      (** Extra per-packet delivery delay drawn uniformly from
          [[0, jitter_max]]; 0 disables jitter. May reorder packets. *)
  rate_changes : rate_change list;
  suppression : suppression;
}

val none : t
(** The no-fault plan; use with record update to enable one channel:
    [{ Fault.Plan.none with loss_rate = 0.01 }]. *)

val validate : t -> (unit, string) result
(** Checks ranges and that flap / rate-change windows are chronological
    and disjoint. *)

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result
(** Strict: missing or mistyped fields and invalid plans are errors. *)

val equal : t -> t -> bool
(** Structural equality via the JSON image (floats by bit pattern). *)

val to_string : t -> string
