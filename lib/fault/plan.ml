module Time = Engine.Time
module Json = Obs.Json

type flap = { down_at : Time.span; up_at : Time.span }
type rate_change = { at : Time.span; until : Time.span; factor : float }

type suppression =
  | Keep_marks
  | Suppress_all
  | Suppress_window of { at : Time.span; until : Time.span }
  | Suppress_prob of float

type t = {
  flaps : flap list;
  loss_rate : float;
  jitter_max : Time.span;
  rate_changes : rate_change list;
  suppression : suppression;
}

let none =
  {
    flaps = [];
    loss_rate = 0.;
    jitter_max = 0L;
    rate_changes = [];
    suppression = Keep_marks;
  }

(* --- validation --- *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let span_nonneg what s =
  if Int64.compare s 0L < 0 then err "Fault.Plan: negative %s" what else Ok ()

let check_windows what windows =
  (* Windows must be chronological and disjoint: overlapping flaps would
     re-enable a link mid-outage, overlapping rate windows would restore
     the wrong base rate. *)
  let rec go prev_end = function
    | [] -> Ok ()
    | (lo, hi) :: rest ->
        let* () = span_nonneg what lo in
        if Int64.compare hi lo <= 0 then err "Fault.Plan: empty %s window" what
        else if Int64.compare lo prev_end < 0 then
          err "Fault.Plan: %s windows overlap or are unsorted" what
        else go hi rest
  in
  go 0L windows

let validate t =
  let* () =
    check_windows "flap" (List.map (fun f -> (f.down_at, f.up_at)) t.flaps)
  in
  let* () =
    check_windows "rate-change"
      (List.map (fun r -> (r.at, r.until)) t.rate_changes)
  in
  let* () =
    if List.exists (fun r -> r.factor <= 0.) t.rate_changes then
      err "Fault.Plan: rate-change factor must be positive"
    else Ok ()
  in
  let* () =
    if t.loss_rate < 0. || t.loss_rate >= 1. then
      err "Fault.Plan: loss_rate must be in [0, 1)"
    else Ok ()
  in
  let* () = span_nonneg "jitter_max" t.jitter_max in
  match t.suppression with
  | Keep_marks | Suppress_all -> Ok ()
  | Suppress_window { at; until } ->
      let* () = span_nonneg "suppression window start" at in
      if Int64.compare until at <= 0 then
        err "Fault.Plan: empty suppression window"
      else Ok ()
  | Suppress_prob p ->
      if p < 0. || p > 1. then
        err "Fault.Plan: suppression probability must be in [0, 1]"
      else Ok ()

(* --- JSON (same conventions as Exp.Spec: spans as integer ns, strict
   decoding that rejects missing or mistyped fields) --- *)

let span_json s = Json.Int (Int64.to_int s)

let to_json t =
  let flap f =
    Json.Obj
      [ ("down_at", span_json f.down_at); ("up_at", span_json f.up_at) ]
  in
  let rate r =
    Json.Obj
      [
        ("at", span_json r.at);
        ("until", span_json r.until);
        ("factor", Json.Float r.factor);
      ]
  in
  let suppression =
    match t.suppression with
    | Keep_marks -> Json.Obj [ ("kind", Json.String "none") ]
    | Suppress_all -> Json.Obj [ ("kind", Json.String "all") ]
    | Suppress_window { at; until } ->
        Json.Obj
          [
            ("kind", Json.String "window");
            ("at", span_json at);
            ("until", span_json until);
          ]
    | Suppress_prob p ->
        Json.Obj [ ("kind", Json.String "prob"); ("p", Json.Float p) ]
  in
  Json.Obj
    [
      ("flaps", Json.List (List.map flap t.flaps));
      ("loss_rate", Json.Float t.loss_rate);
      ("jitter_max", span_json t.jitter_max);
      ("rate_changes", Json.List (List.map rate t.rate_changes));
      ("suppression", suppression);
    ]

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> err "Fault.Plan.of_json: missing field %S" name

let span_field name j =
  let* v = field name j in
  match v with
  | Json.Int n when n >= 0 -> Ok (Int64.of_int n)
  | _ -> err "Fault.Plan.of_json: %S must be a non-negative integer (ns)" name

let float_field name j =
  let* v = field name j in
  match v with
  | Json.Float f -> Ok f
  | Json.Int n -> Ok (float_of_int n)
  | _ -> err "Fault.Plan.of_json: %S must be a number" name

let list_field name j =
  let* v = field name j in
  match v with
  | Json.List l -> Ok l
  | _ -> err "Fault.Plan.of_json: %S must be a list" name

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let flap_of_json j =
  let* down_at = span_field "down_at" j in
  let* up_at = span_field "up_at" j in
  Ok { down_at; up_at }

let rate_of_json j =
  let* at = span_field "at" j in
  let* until = span_field "until" j in
  let* factor = float_field "factor" j in
  Ok { at; until; factor }

let suppression_of_json j =
  let* kind = field "kind" j in
  match kind with
  | Json.String "none" -> Ok Keep_marks
  | Json.String "all" -> Ok Suppress_all
  | Json.String "window" ->
      let* at = span_field "at" j in
      let* until = span_field "until" j in
      Ok (Suppress_window { at; until })
  | Json.String "prob" ->
      let* p = float_field "p" j in
      Ok (Suppress_prob p)
  | _ -> err "Fault.Plan.of_json: unknown suppression kind"

let of_json j =
  let* flaps_j = list_field "flaps" j in
  let* flaps = map_result flap_of_json flaps_j in
  let* loss_rate = float_field "loss_rate" j in
  let* jitter_max = span_field "jitter_max" j in
  let* rates_j = list_field "rate_changes" j in
  let* rate_changes = map_result rate_of_json rates_j in
  let* sup_j = field "suppression" j in
  let* suppression = suppression_of_json sup_j in
  let t = { flaps; loss_rate; jitter_max; rate_changes; suppression } in
  let* () = validate t in
  Ok t

let equal a b = Json.equal (to_json a) (to_json b)
let to_string t = Json.to_string (to_json t)
