let bytes_of_packets ?(packet_bytes = 1500) k =
  if k < 0 || packet_bytes <= 0 then
    invalid_arg "Marking_policies.bytes_of_packets";
  k * packet_bytes

type flip_callback = marking:bool -> occ_bytes:int -> unit

(* Shared zone machine for both the absolute and the limit-relative
   double threshold. [lo]/[hi] are refs so a limit-relative wrapper can
   move the band from [on_limit]; [marking] is the caller-visible state;
   [directional] fixes the in-band rule once (it depends on the K1-vs-K2
   ordering, which scaling by a common positive limit preserves). *)
let zone_machine ?on_flip ~directional ~lo ~hi ~marking () =
  let prev = ref 0 in
  (* Zones: above [hi] always marking, at/below [lo] never; inside the band
     the state depends on the configuration. With K1 < K2 (the paper's
     simulation setup) the band is directional: entering it rising through
     K1 starts marking early, entering it falling through K2 stops marking
     early. With K1 > K2 the band is a classic thermostat (state held).
     K1 = K2 degenerates to the single threshold. *)
  let update now =
    let before = !marking in
    if now > !hi then marking := true
    else if now <= !lo then marking := false
    else if directional then begin
      if !prev <= !lo then marking := true
      else if !prev > !hi then marking := false
    end;
    prev := now;
    if Bool.equal before !marking then ()
    else
      match on_flip with
      | Some f -> f ~marking:!marking ~occ_bytes:now
      | None -> ()
  in
  update

let single_threshold ~k_bytes =
  if k_bytes < 0 then invalid_arg "Marking_policies.single_threshold";
  Net.Marking.make
    ~name:(Printf.sprintf "dctcp(K=%dB)" k_bytes)
    ~on_enqueue:(fun ~bytes ~packets:_ -> bytes > k_bytes)
    ~on_dequeue:(fun ~bytes:_ ~packets:_ -> ())
    ()

let double_threshold ?on_flip ~k1_bytes ~k2_bytes () =
  if k1_bytes < 0 || k2_bytes < 0 then
    invalid_arg "Marking_policies.double_threshold";
  let lo = ref (Stdlib.min k1_bytes k2_bytes) in
  let hi = ref (Stdlib.max k1_bytes k2_bytes) in
  let marking = ref false in
  let update =
    zone_machine ?on_flip ~directional:(k1_bytes < k2_bytes) ~lo ~hi ~marking
      ()
  in
  let on_enqueue ~bytes ~packets:_ =
    update bytes;
    !marking
  in
  let on_dequeue ~bytes ~packets:_ = update bytes in
  Net.Marking.make
    ~name:(Printf.sprintf "dt-dctcp(K1=%dB,K2=%dB)" k1_bytes k2_bytes)
    ~on_enqueue ~on_dequeue ()

(* Limit-relative thresholds: fractions of the buffer manager's current
   effective limit, re-derived on every [on_limit] callback. The
   fraction is quantised to 1/1024ths and the per-callback derivation is
   one multiply and shift of ints — deterministic across machines and
   allocation-free on the hot path (Queue_disc invokes [on_limit] per
   enqueue/dequeue while the queue sits on a shared pool). *)

let frac_x1024 ~what f =
  if f < 0. || f > 1. then
    invalid_arg (Printf.sprintf "Marking_policies.%s: fraction outside [0,1]" what);
  int_of_float (f *. 1024.)

let single_threshold_scaled ~k_frac =
  let kx = frac_x1024 ~what:"single_threshold_scaled" k_frac in
  let k = ref 0 in
  Net.Marking.make
    ~name:(Printf.sprintf "dctcp(K=%.3g*limit)" k_frac)
    ~on_limit:(fun ~limit_bytes -> k := limit_bytes * kx / 1024)
    ~on_enqueue:(fun ~bytes ~packets:_ -> bytes > !k)
    ~on_dequeue:(fun ~bytes:_ ~packets:_ -> ())
    ()

let double_threshold_scaled ?on_flip ~k1_frac ~k2_frac () =
  let k1x = frac_x1024 ~what:"double_threshold_scaled" k1_frac in
  let k2x = frac_x1024 ~what:"double_threshold_scaled" k2_frac in
  let lo = ref 0 in
  let hi = ref 0 in
  let marking = ref false in
  let lox = Stdlib.min k1x k2x in
  let hix = Stdlib.max k1x k2x in
  let update =
    zone_machine ?on_flip ~directional:(k1x < k2x) ~lo ~hi ~marking ()
  in
  let on_limit ~limit_bytes =
    lo := limit_bytes * lox / 1024;
    hi := limit_bytes * hix / 1024
  in
  let on_enqueue ~bytes ~packets:_ =
    update bytes;
    !marking
  in
  let on_dequeue ~bytes ~packets:_ = update bytes in
  Net.Marking.make
    ~name:(Printf.sprintf "dt-dctcp(K1=%.3g*limit,K2=%.3g*limit)" k1_frac k2_frac)
    ~on_limit ~on_enqueue ~on_dequeue ()
