let bytes_of_packets ?(packet_bytes = 1500) k =
  if k < 0 || packet_bytes <= 0 then
    invalid_arg "Marking_policies.bytes_of_packets";
  k * packet_bytes

let single_threshold ~k_bytes =
  if k_bytes < 0 then invalid_arg "Marking_policies.single_threshold";
  Net.Marking.make
    ~name:(Printf.sprintf "dctcp(K=%dB)" k_bytes)
    ~on_enqueue:(fun ~bytes ~packets:_ -> bytes > k_bytes)
    ~on_dequeue:(fun ~bytes:_ ~packets:_ -> ())

type flip_callback = marking:bool -> occ_bytes:int -> unit

let double_threshold ?on_flip ~k1_bytes ~k2_bytes () =
  if k1_bytes < 0 || k2_bytes < 0 then
    invalid_arg "Marking_policies.double_threshold";
  let lo = Stdlib.min k1_bytes k2_bytes in
  let hi = Stdlib.max k1_bytes k2_bytes in
  let marking = ref false in
  let prev = ref 0 in
  (* Zones: above [hi] always marking, at/below [lo] never; inside the band
     the state depends on the configuration. With K1 < K2 (the paper's
     simulation setup) the band is directional: entering it rising through
     K1 starts marking early, entering it falling through K2 stops marking
     early. With K1 > K2 the band is a classic thermostat (state held).
     K1 = K2 degenerates to the single threshold. *)
  let update now =
    let before = !marking in
    if now > hi then marking := true
    else if now <= lo then marking := false
    else if k1_bytes < k2_bytes then begin
      if !prev <= lo then marking := true
      else if !prev > hi then marking := false
    end;
    prev := now;
    if Bool.equal before !marking then ()
    else
      match on_flip with
      | Some f -> f ~marking:!marking ~occ_bytes:now
      | None -> ()
  in
  let on_enqueue ~bytes ~packets:_ =
    update bytes;
    !marking
  in
  let on_dequeue ~bytes ~packets:_ = update bytes in
  Net.Marking.make
    ~name:(Printf.sprintf "dt-dctcp(K1=%dB,K2=%dB)" k1_bytes k2_bytes)
    ~on_enqueue ~on_dequeue
