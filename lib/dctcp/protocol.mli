(** Protocol bundles: everything a scenario needs to deploy one of the
    compared transports — a congestion-control factory for the senders, a
    fresh marking policy for the bottleneck switch, and the receiver echo
    policy. *)

type t = {
  name : string;
  cc : Tcp.Cc.factory;
  marking : ?on_flip:Marking_policies.flip_callback -> unit -> Net.Marking.t;
      (** Fresh policy instance (policies are stateful, one per queue).
          [on_flip] observes hysteresis state changes where the policy has
          any (DT-DCTCP); stateless policies ignore it, so existing
          [proto.marking ()] call sites are unchanged. *)
  echo : Tcp.Receiver.echo_policy;
}

val dctcp : ?g:float -> ?init_alpha:float -> k_bytes:int -> unit -> t
(** DCTCP with single-threshold marking at [k_bytes]. *)

val dt_dctcp :
  ?g:float -> ?init_alpha:float -> k1_bytes:int -> k2_bytes:int -> unit -> t
(** DT-DCTCP: the same DCTCP sender with double-threshold marking. *)

val dctcp_pkts : ?g:float -> ?packet_bytes:int -> k:int -> unit -> t
(** Packet-denominated convenience (the paper's K=40 packets etc.). *)

val dt_dctcp_pkts :
  ?g:float -> ?packet_bytes:int -> k1:int -> k2:int -> unit -> t

val reno : unit -> t
(** Plain drop-tail TCP Reno (no marking), as a baseline. *)

val ecn_reno : k_bytes:int -> t
(** Classic RFC-3168 ECN TCP with single-threshold marking: reacts to any
    ECE by halving — the "ECN is not sufficient" comparison point. *)

val newreno : unit -> t
(** NewReno-style loss-based TCP ({!Reno_cc.newreno}, no marking): the
    non-ECN competitor for the shared-buffer sweeps. *)

val dctcp_scaled : ?g:float -> ?init_alpha:float -> k_frac:float -> unit -> t
(** DCTCP marking at [K = k_frac x effective limit]
    ({!Marking_policies.single_threshold_scaled}) — the threshold rides
    the buffer manager's moving capacity on shared-pool switches. *)

val dt_dctcp_scaled :
  ?g:float ->
  ?init_alpha:float ->
  k1_frac:float ->
  k2_frac:float ->
  unit ->
  t
(** DT-DCTCP with the hysteresis band at fractions of the effective
    limit ({!Marking_policies.double_threshold_scaled}). *)
