(** The paper's switch-side marking mechanisms.

    {b Single threshold} (DCTCP, Fig. 2a): an arriving packet is CE-marked
    iff the instantaneous queue occupancy exceeds [K] at its arrival.

    {b Double threshold} (DT-DCTCP, Fig. 2b): marking is a state, not a
    per-packet comparison: it turns on when the queue rises through [K1]
    and off when it falls back through [K2]. The paper only specifies the
    behaviour on large swings that cross both thresholds; we implement the
    zone semantics documented in DESIGN.md. With [lo = min K1 K2] and
    [hi = max K1 K2]:

    - occupancy above [hi]: always marking;
    - occupancy at/below [lo]: never marking;
    - inside the band ([lo], [hi]]: with [K1 < K2] (the paper's simulation
      setup) the band is directional — entering it rising through [K1]
      turns marking on (start early), entering it falling through [K2]
      turns marking off (stop early), and the state is held while the
      occupancy wanders inside the band; with [K1 > K2] (the paper's
      testbed setup) the band is a classic thermostat and the state is
      simply held.

    With [K1 = K2 = K] the policy degenerates {e exactly} to the single
    threshold (property-tested).

    All thresholds are in bytes; use {!bytes_of_packets} for the paper's
    packet-denominated parameters. *)

val bytes_of_packets : ?packet_bytes:int -> int -> int
(** [bytes_of_packets k] is [k * packet_bytes] (default 1500 B). *)

val single_threshold : k_bytes:int -> Net.Marking.t
(** Marks an arriving packet iff the occupancy including it is strictly
    above [k_bytes] (i.e. the queue already held at least [k_bytes]).
    @raise Invalid_argument if [k_bytes < 0]. *)

type flip_callback = marking:bool -> occ_bytes:int -> unit
(** Observer of hysteresis state changes: [marking] is the {e new} state,
    [occ_bytes] the occupancy that caused the flip. *)

val double_threshold :
  ?on_flip:flip_callback -> k1_bytes:int -> k2_bytes:int -> unit -> Net.Marking.t
(** Hysteresis marker as described above. [on_flip] fires on every state
    change — the paper's mechanism made directly observable (with
    [K1 = K2] the state never enters the band and flips still occur at
    the single threshold's crossings).
    @raise Invalid_argument if a threshold is negative. *)

(** {2 Limit-relative (scaled) variants}

    On a shared-memory switch ({!Net.Buffer_mgr.Dynamic_threshold}) the
    capacity behind a port moves as other ports fill, so an absolute [K]
    can sit above the entire effective limit (never marks, queue tail
    drops instead) or pin the queue near empty. The scaled variants take
    thresholds as {e fractions of the current effective limit} and
    re-derive the byte thresholds from every [on_limit] callback — the
    paper's hysteresis band riding on a moving K. Fractions are
    quantised to 1/1024ths so the derivation is pure integer arithmetic
    (bit-identical across machines, allocation-free per packet). On a
    Static buffer [on_limit] fires once at queue creation, making these
    equivalent to the absolute policies at [frac x capacity]. *)

val single_threshold_scaled : k_frac:float -> Net.Marking.t
(** DCTCP marking at [K = k_frac x effective limit].
    @raise Invalid_argument if [k_frac] is outside [0, 1]. *)

val double_threshold_scaled :
  ?on_flip:flip_callback -> k1_frac:float -> k2_frac:float -> unit -> Net.Marking.t
(** Hysteresis marker with [K1 = k1_frac x limit], [K2 = k2_frac x
    limit]. The in-band rule (directional vs thermostat) follows the
    quantised fraction ordering and cannot change as the limit moves.
    @raise Invalid_argument if a fraction is outside [0, 1]. *)
