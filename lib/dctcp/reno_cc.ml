(* NewReno-style loss-based congestion control: the non-ECN competitor
   for the shared-buffer sweeps. Unlike [Tcp.Cc.reno], which halves on
   every fast retransmit, this controller halves at most once per
   loss-recovery episode — further duplicate-ACK retransmits before
   snd_una passes the recovery point leave the window alone, as in RFC
   6582. With tiny shared buffers a single overflow burst loses several
   segments from one window; halving once instead of per loss is what
   keeps the comparison against the ECN protocols fair.

   ECN is ignored entirely (ECE never moves the window): the point of
   the competitor is to show what pure loss feedback does to a shared
   pool that the marking protocols keep half-empty. *)

type api = Tcp.Cc.flow_api

(* Reno window arithmetic, local copies: [Tcp.Cc] keeps its helpers
   private and this module must not perturb that interface. *)
let grow (api : api) newly_acked =
  if newly_acked > 0 then begin
    let cwnd = api.Tcp.Cc.get_cwnd () in
    if cwnd < api.Tcp.Cc.get_ssthresh () then
      api.Tcp.Cc.set_cwnd (cwnd +. float_of_int newly_acked)
    else api.Tcp.Cc.set_cwnd (cwnd +. (float_of_int newly_acked /. cwnd))
  end

let halve (api : api) =
  let cwnd = api.Tcp.Cc.get_cwnd () in
  let target = Stdlib.max (cwnd /. 2.) 1. in
  api.Tcp.Cc.set_ssthresh target;
  api.Tcp.Cc.set_cwnd target

let collapse (api : api) =
  let cwnd = api.Tcp.Cc.get_cwnd () in
  api.Tcp.Cc.set_ssthresh (Stdlib.max (cwnd /. 2.) 1.);
  api.Tcp.Cc.set_cwnd 1.

let newreno (api : api) =
  (* [recover] is the snd_nxt recorded when the last halving happened;
     fast retransmits for segments below it belong to the same loss
     episode and must not halve again. *)
  let recover = ref 0 in
  let una = ref 0 in
  let nxt = ref 0 in
  {
    Tcp.Cc.name = "newreno";
    on_ack =
      (fun ~newly_acked ~ece:_ ~snd_una ~snd_nxt ->
        una := snd_una;
        nxt := snd_nxt;
        grow api newly_acked);
    on_fast_retransmit =
      (fun () ->
        if !una >= !recover then begin
          halve api;
          recover := !nxt
        end);
    on_timeout =
      (fun () ->
        collapse api;
        recover := !nxt);
    alpha = (fun () -> None);
  }
