type params = { g : float; init_alpha : float }

let default_params = { g = 1. /. 16.; init_alpha = 1.0 }

type reduction_context = {
  alpha : float;
  cwnd : float;
  now : Engine.Time.t;
  rtt_estimate : Engine.Time.span option;
  snd_una : int;
}

type state = {
  mutable alpha : float;
  mutable window_end : int;
  mutable acked_total : int;
  mutable acked_marked : int;
  mutable cwr_end : int;
  mutable epoch_started : Engine.Time.t;
  mutable epoch_duration : Engine.Time.span option;
}

let cc_with_penalty ?(params = default_params) ~penalty () =
  if params.g <= 0. || params.g > 1. then
    invalid_arg "Dctcp_cc.cc: g out of (0,1]";
  if params.init_alpha < 0. || params.init_alpha > 1. then
    invalid_arg "Dctcp_cc.cc: init_alpha out of [0,1]";
  fun (api : Tcp.Cc.flow_api) ->
    let st =
      {
        alpha = params.init_alpha;
        window_end = 0;
        acked_total = 0;
        acked_marked = 0;
        cwr_end = 0;
        epoch_started = api.Tcp.Cc.now ();
        epoch_duration = None;
      }
    in
    let grow newly_acked =
      if newly_acked > 0 then begin
        let cwnd = api.Tcp.Cc.get_cwnd () in
        if cwnd < api.Tcp.Cc.get_ssthresh () then
          api.Tcp.Cc.set_cwnd (cwnd +. float_of_int newly_acked)
        else api.Tcp.Cc.set_cwnd (cwnd +. (float_of_int newly_acked /. cwnd))
      end
    in
    let on_ack ~newly_acked ~ece ~snd_una ~snd_nxt =
      if newly_acked > 0 then begin
        st.acked_total <- st.acked_total + newly_acked;
        if ece then st.acked_marked <- st.acked_marked + newly_acked
      end;
      if ece then begin
        if snd_una > st.cwr_end then begin
          (* Penalty-gated proportional backoff, once per window. *)
          let cwnd = api.Tcp.Cc.get_cwnd () in
          let ctx =
            {
              alpha = st.alpha;
              cwnd;
              now = api.Tcp.Cc.now ();
              rtt_estimate = st.epoch_duration;
              snd_una;
            }
          in
          let p = Float.min 1. (Float.max 0. (penalty ctx)) in
          let target = cwnd *. (1. -. (p /. 2.)) in
          if Obs.Trace.enabled api.Tcp.Cc.tracer Obs.Trace.C_cwnd_cut then
            Obs.Trace.emit api.Tcp.Cc.tracer
              {
                Obs.Trace.time = api.Tcp.Cc.now ();
                component = Printf.sprintf "flow%d" api.Tcp.Cc.flow;
                event =
                  Obs.Trace.Cwnd_cut
                    {
                      flow = api.Tcp.Cc.flow;
                      cwnd_before = cwnd;
                      cwnd_after = target;
                      alpha = st.alpha;
                    };
              };
          api.Tcp.Cc.set_cwnd target;
          api.Tcp.Cc.set_ssthresh target;
          st.cwr_end <- snd_nxt
        end
      end
      else grow newly_acked;
      if snd_una >= st.window_end then begin
        (* End of the observation window: fold the marked fraction into
           alpha and open the next window. *)
        let f =
          if st.acked_total = 0 then 0.
          else float_of_int st.acked_marked /. float_of_int st.acked_total
        in
        st.alpha <- ((1. -. params.g) *. st.alpha) +. (params.g *. f);
        st.acked_total <- 0;
        st.acked_marked <- 0;
        st.window_end <- snd_nxt;
        let now = api.Tcp.Cc.now () in
        let span = Engine.Time.diff now st.epoch_started in
        if Int64.compare span 0L > 0 then st.epoch_duration <- Some span;
        st.epoch_started <- now
      end
    in
    let halve () =
      let cwnd = api.Tcp.Cc.get_cwnd () in
      let target = Float.max (cwnd /. 2.) 1. in
      api.Tcp.Cc.set_ssthresh target;
      api.Tcp.Cc.set_cwnd target
    in
    {
      Tcp.Cc.name = "dctcp";
      on_ack;
      on_fast_retransmit = halve;
      on_timeout =
        (fun () ->
          let cwnd = api.Tcp.Cc.get_cwnd () in
          api.Tcp.Cc.set_ssthresh (Float.max (cwnd /. 2.) 1.);
          api.Tcp.Cc.set_cwnd 1.);
      alpha = (fun () -> Some st.alpha);
    }

let cc ?params () =
  cc_with_penalty ?params ~penalty:(fun ctx -> ctx.alpha) ()
