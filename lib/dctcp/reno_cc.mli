(** NewReno-style loss-based congestion control (RFC 6582 flavor).

    The non-ECN competitor for the shared-buffer study: reacts to loss
    only (ECE is ignored), with at most one multiplicative decrease per
    loss-recovery episode — a fast retransmit while snd_una has not yet
    passed the recovery point of the previous halving leaves the window
    untouched. Contrast with {!Tcp.Cc.reno}, which halves on {e every}
    fast retransmit and therefore collapses under the multi-segment
    losses a tiny shared buffer inflicts in a single RTT. *)

val newreno : Tcp.Cc.factory
