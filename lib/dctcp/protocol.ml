type t = {
  name : string;
  cc : Tcp.Cc.factory;
  marking : ?on_flip:Marking_policies.flip_callback -> unit -> Net.Marking.t;
  echo : Tcp.Receiver.echo_policy;
}

let dctcp_params ?g ?init_alpha () =
  let d = Dctcp_cc.default_params in
  {
    Dctcp_cc.g = Option.value g ~default:d.Dctcp_cc.g;
    init_alpha = Option.value init_alpha ~default:d.Dctcp_cc.init_alpha;
  }

let dctcp ?g ?init_alpha ~k_bytes () =
  {
    name = "DCTCP";
    cc = Dctcp_cc.cc ~params:(dctcp_params ?g ?init_alpha ()) ();
    marking =
      (fun ?on_flip:_ () -> Marking_policies.single_threshold ~k_bytes);
    echo = Tcp.Receiver.Per_packet;
  }

let dt_dctcp ?g ?init_alpha ~k1_bytes ~k2_bytes () =
  {
    name = "DT-DCTCP";
    cc = Dctcp_cc.cc ~params:(dctcp_params ?g ?init_alpha ()) ();
    marking =
      (fun ?on_flip () ->
        Marking_policies.double_threshold ?on_flip ~k1_bytes ~k2_bytes ());
    echo = Tcp.Receiver.Per_packet;
  }

let dctcp_pkts ?g ?packet_bytes ~k () =
  dctcp ?g ~k_bytes:(Marking_policies.bytes_of_packets ?packet_bytes k) ()

let dt_dctcp_pkts ?g ?packet_bytes ~k1 ~k2 () =
  dt_dctcp ?g
    ~k1_bytes:(Marking_policies.bytes_of_packets ?packet_bytes k1)
    ~k2_bytes:(Marking_policies.bytes_of_packets ?packet_bytes k2)
    ()

let reno () =
  {
    name = "Reno";
    cc = Tcp.Cc.reno;
    marking = (fun ?on_flip:_ () -> Net.Marking.none ());
    echo = Tcp.Receiver.Per_packet;
  }

let ecn_reno ~k_bytes =
  {
    name = "ECN-Reno";
    cc = Tcp.Cc.ecn_reno;
    marking =
      (fun ?on_flip:_ () -> Marking_policies.single_threshold ~k_bytes);
    echo = Tcp.Receiver.Per_packet;
  }

let newreno () =
  {
    name = "NewReno";
    cc = Reno_cc.newreno;
    marking = (fun ?on_flip:_ () -> Net.Marking.none ());
    echo = Tcp.Receiver.Per_packet;
  }

let dctcp_scaled ?g ?init_alpha ~k_frac () =
  {
    name = "DCTCP";
    cc = Dctcp_cc.cc ~params:(dctcp_params ?g ?init_alpha ()) ();
    marking =
      (fun ?on_flip:_ () -> Marking_policies.single_threshold_scaled ~k_frac);
    echo = Tcp.Receiver.Per_packet;
  }

let dt_dctcp_scaled ?g ?init_alpha ~k1_frac ~k2_frac () =
  {
    name = "DT-DCTCP";
    cc = Dctcp_cc.cc ~params:(dctcp_params ?g ?init_alpha ()) ();
    marking =
      (fun ?on_flip () ->
        Marking_policies.double_threshold_scaled ?on_flip ~k1_frac ~k2_frac ());
    echo = Tcp.Receiver.Per_packet;
  }
