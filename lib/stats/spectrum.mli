(** Spectral analysis of evenly-sampled series.

    Used to extract the dominant oscillation frequency of a queue trace so
    the packet simulator's limit cycle can be compared against the
    describing-function prediction (which yields an angular frequency). *)

val fft : Complex.t array -> Complex.t array
(** In-order radix-2 Cooley-Tukey FFT.
    @raise Invalid_argument if the length is not a power of two. *)

val power_spectrum : float array -> float array
(** Magnitude-squared spectrum of a real series (mean removed, Hann
    window applied, zero-padded to the next power of two). Index [k] is
    frequency [k * fs / n_fft]; only the first half (positive
    frequencies) is returned. *)

type peak = {
  frequency_hz : float;
  power : float;
  total_power : float;
}

(** Why a series does (or does not) yield a dominant frequency — the
    diagnostic [dtsim analyze] surfaces instead of a silent [None]. *)
type verdict =
  | Peak of peak
  | Too_short of { samples : int; needed : int }
  | No_variation of { samples : int }  (** Zero total spectral power. *)

val analyze : samples:float array -> sample_rate_hz:float -> verdict
(** The strongest non-DC spectral peak, or the specific reason there is
    none. *)

val verdict_note : verdict -> string option
(** Human-readable explanation for the two no-peak verdicts; [None] for
    [Peak]. *)

val dominant_frequency :
  samples:float array -> sample_rate_hz:float -> peak option
(** [analyze] with both failure verdicts collapsed to [None]. *)
