let jain xs =
  let n = Array.length xs in
  if n = 0 then 1.
  else begin
    let s = Array.fold_left ( +. ) 0. xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if s2 <= 0. then 1. else s *. s /. (float_of_int n *. s2)
  end

let goodput_bps ~segments ~segment_bytes ~window_s =
  if window_s <= 0. then invalid_arg "Fairness.goodput_bps: window must be > 0";
  float_of_int (segments * segment_bytes * 8) /. window_s
