let is_power_of_two n = n > 0 && n land (n - 1) = 0

let fft input =
  let n = Array.length input in
  if not (is_power_of_two n) then
    invalid_arg "Spectrum.fft: length must be a power of two";
  (* Iterative in-order Cooley-Tukey with bit-reversal permutation. *)
  let a = Array.copy input in
  let bits =
    let rec count b m = if m >= n then b else count (b + 1) (m * 2) in
    count 0 1
  in
  let reverse i =
    let r = ref 0 in
    for b = 0 to bits - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
    done;
    !r
  in
  Array.iteri
    (fun i _ ->
      let j = reverse i in
      if i < j then begin
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      end)
    a;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let theta = -2. *. Float.pi /. float_of_int !len in
    let wstep = { Complex.re = cos theta; im = sin theta } in
    let block = ref 0 in
    while !block < n do
      let w = ref Complex.one in
      for k = 0 to half - 1 do
        let even = a.(!block + k) in
        let odd = Complex.mul a.(!block + k + half) !w in
        a.(!block + k) <- Complex.add even odd;
        a.(!block + k + half) <- Complex.sub even odd;
        w := Complex.mul !w wstep
      done;
      block := !block + !len
    done;
    len := !len * 2
  done;
  a

let next_power_of_two n =
  let rec go m = if m >= n then m else go (m * 2) in
  go 1

let power_spectrum samples =
  let n = Array.length samples in
  if n = 0 then [||]
  else begin
    let mean = Array.fold_left ( +. ) 0. samples /. float_of_int n in
    let n_fft = next_power_of_two n in
    let windowed =
      Array.init n_fft (fun i ->
          if i >= n then Complex.zero
          else begin
            let hann =
              0.5
              *. (1.
                 -. cos (2. *. Float.pi *. float_of_int i /. float_of_int (n - 1)))
            in
            { Complex.re = (samples.(i) -. mean) *. hann; im = 0. }
          end)
    in
    let spectrum = fft windowed in
    Array.init (n_fft / 2) (fun k -> Complex.norm2 spectrum.(k))
  end

type peak = { frequency_hz : float; power : float; total_power : float }

type verdict =
  | Peak of peak
  | Too_short of { samples : int; needed : int }
  | No_variation of { samples : int }

let min_samples = 16

let analyze ~samples ~sample_rate_hz =
  let n = Array.length samples in
  if n < min_samples then Too_short { samples = n; needed = min_samples }
  else begin
    let ps = power_spectrum samples in
    let n_fft = 2 * Array.length ps in
    let total = Array.fold_left ( +. ) 0. ps in
    if total <= 0. then No_variation { samples = n }
    else begin
      (* skip DC (k = 0); find the strongest bin *)
      let best = ref 1 in
      for k = 2 to Array.length ps - 1 do
        if ps.(k) > ps.(!best) then best := k
      done;
      if ps.(!best) <= 0. then No_variation { samples = n }
      else
        Peak
          {
            frequency_hz =
              float_of_int !best *. sample_rate_hz /. float_of_int n_fft;
            power = ps.(!best);
            total_power = total;
          }
    end
  end

let verdict_note = function
  | Peak _ -> None
  | Too_short { samples; needed } ->
      Some
        (Printf.sprintf "series too short: %d samples (need >= %d)" samples
           needed)
  | No_variation { samples } ->
      Some
        (Printf.sprintf "no variation: series of %d samples is flat" samples)

let dominant_frequency ~samples ~sample_rate_hz =
  match analyze ~samples ~sample_rate_hz with
  | Peak p -> Some p
  | Too_short _ | No_variation _ -> None
