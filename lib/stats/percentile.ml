let of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Percentile.of_sorted: empty";
  if p < 0. || p > 100. then invalid_arg "Percentile.of_sorted: p out of range";
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let of_array arr p =
  let copy = Array.copy arr in
  Array.sort Float.compare copy;
  of_sorted copy p

let of_list l p = of_array (Array.of_list l) p
let median arr = of_array arr 50.

let summary arr =
  let copy = Array.copy arr in
  Array.sort Float.compare copy;
  [
    ("min", of_sorted copy 0.);
    ("p25", of_sorted copy 25.);
    ("p50", of_sorted copy 50.);
    ("p75", of_sorted copy 75.);
    ("p90", of_sorted copy 90.);
    ("p99", of_sorted copy 99.);
    ("max", of_sorted copy 100.);
  ]
