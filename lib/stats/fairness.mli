(** Per-flow fairness and throughput helpers shared by the workload
    runners (previously duplicated in [Workloads.Longlived] and
    [Workloads.Convergence]). *)

val jain : float array -> float
(** Jain's fairness index [(sum x)^2 / (n * sum x^2)], in [(0, 1]]; [1.]
    for an empty array or an all-zero allocation (nothing to be unfair
    about). *)

val goodput_bps : segments:int -> segment_bytes:int -> window_s:float -> float
(** Bits per second delivered by [segments] MSS-sized segments over a
    window. @raise Invalid_argument if [window_s <= 0]. *)
