(** Flow-completion-time slowdown.

    The headline metric of datacenter fabric studies: a flow's actual
    completion time divided by its ideal one (the transfer time it
    would see alone on an idle network), so flows of every size share
    one scale and tail percentiles are meaningful across a mixed
    workload. *)

val slowdown : ideal_ns:int64 -> actual_ns:int64 -> float
(** [actual / ideal], clamped below at 1.0 — an actual faster than the
    ideal model can only be model error and must not reward a protocol.
    @raise Invalid_argument if [ideal_ns <= 0] or [actual_ns < 0]. *)

type summary = {
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;  (** The 99.9th percentile — the incast-victim tail. *)
  mean : float;
  max : float;
  count : int;
}

val summarize : float array -> summary
(** Percentiles via {!Percentile.of_sorted} (linear interpolation) over
    a copy of the input; the input is not mutated.
    @raise Invalid_argument on an empty array. *)
