type summary = {
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  mean : float;
  max : float;
  count : int;
}

let slowdown ~ideal_ns ~actual_ns =
  if Int64.compare ideal_ns 0L <= 0 then
    invalid_arg "Fct.slowdown: ideal_ns must be positive";
  if Int64.compare actual_ns 0L < 0 then
    invalid_arg "Fct.slowdown: actual_ns must be non-negative";
  let s = Int64.to_float actual_ns /. Int64.to_float ideal_ns in
  if s < 1. then 1. else s

let summarize arr =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Fct.summarize: empty";
  let copy = Array.copy arr in
  Array.sort Float.compare copy;
  let total = Array.fold_left ( +. ) 0. copy in
  {
    p50 = Percentile.of_sorted copy 50.;
    p95 = Percentile.of_sorted copy 95.;
    p99 = Percentile.of_sorted copy 99.;
    p999 = Percentile.of_sorted copy 99.9;
    mean = total /. float_of_int n;
    max = copy.(n - 1);
    count = n;
  }
