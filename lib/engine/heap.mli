(** Imperative binary min-heap.

    The heap is parameterised by an element comparison given at creation.
    Used by the simulator's event queue; kept generic so other subsystems
    (e.g. token buckets, timer wheels in tests) can reuse it. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Amortised O(log n). *)

val peek : 'a t -> 'a option
(** Minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. O(log n). *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keeps only the elements satisfying the predicate and restores the
    heap invariant, in O(n) and without allocating a new backing array.
    Used by the simulator to sweep cancelled events. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive; O(n log n). Mainly for tests and debugging. *)

val iter_unordered : ('a -> unit) -> 'a t -> unit
(** Iterates over elements in unspecified order. *)
