(* Monomorphic int ring-buffer FIFO. The generic {!Ring} stores boxed
   ['a] elements, so every [push] of a heap value pays the caml_modify
   write barrier; with packets now immediate ints (pooled SoA handles,
   see [Net.Packet]) the switch-queue and in-flight FIFOs can use plain
   int stores instead. Empty slots hold [min_int] — a real value, not an
   [Obj.magic] placeholder, so there is nothing for the GC to misread. *)

type t = {
  mutable data : int array;
  mutable head : int;  (* index of the front element *)
  mutable len : int;
}

let rec pow2 n k = if k >= n then k else pow2 n (2 * k)

let create ?(capacity = 16) () =
  let capacity = pow2 (Stdlib.max capacity 1) 1 in
  { data = Array.make capacity min_int; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let n = Array.length t.data in
  let data = Array.make (2 * n) min_int in
  (* Unwrap: front segment [head, n), then the wrapped prefix. *)
  let front = n - t.head in
  Array.blit t.data t.head data 0 front;
  Array.blit t.data 0 data front t.head;
  t.data <- data;
  t.head <- 0

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.((t.head + t.len) land (Array.length t.data - 1)) <- x;
  t.len <- t.len + 1

let peek t = if t.len = 0 then raise Not_found else t.data.(t.head)

let pop t =
  if t.len = 0 then raise Not_found;
  let x = t.data.(t.head) in
  t.head <- (t.head + 1) land (Array.length t.data - 1);
  t.len <- t.len - 1;
  x

let clear t =
  t.head <- 0;
  t.len <- 0

let iter f t =
  let mask = Array.length t.data - 1 in
  for i = 0 to t.len - 1 do
    f t.data.((t.head + i) land mask)
  done
