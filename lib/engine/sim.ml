type event = {
  time : Time.t;
  seq : int;
  mutable cancelled : bool;
  action : unit -> unit;
}

type event_id = event

type t = {
  heap : event Heap.t;
  mutable now : Time.t;
  mutable seq : int;
  rng : Rng.t;
  mutable processed : int;
  mutable live : int;
  mutable hwm : int;
  mutable instrument : unit -> unit;
}

let noop () = ()

let cmp_event a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 1L) () =
  {
    heap = Heap.create ~capacity:1024 ~cmp:cmp_event ();
    now = Time.zero;
    seq = 0;
    rng = Rng.create ~seed;
    processed = 0;
    live = 0;
    hwm = 0;
    instrument = noop;
  }

let now t = t.now
let rng t = t.rng

let schedule_at t time action =
  if Time.(time < t.now) then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: %s is before now (%s)"
         (Time.to_string time) (Time.to_string t.now));
  let ev = { time; seq = t.seq; cancelled = false; action } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  if t.live > t.hwm then t.hwm <- t.live;
  Heap.push t.heap ev;
  ev

let schedule_after t span action =
  if Int64.compare span 0L < 0 then
    invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t (Time.add t.now span) action

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let rec step t =
  match Heap.pop t.heap with
  | None -> false
  | Some ev ->
      if ev.cancelled then step t
      else begin
        t.now <- ev.time;
        t.live <- t.live - 1;
        t.processed <- t.processed + 1;
        ev.action ();
        t.instrument ();
        true
      end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.heap with
        | Some ev when Time.(ev.time <= stop) -> ignore (step t)
        | Some _ | None -> continue := false
      done;
      if Time.(t.now < stop) then t.now <- stop

let events_processed t = t.processed
let pending t = t.live
let heap_high_water t = t.hwm
let set_instrument t f = t.instrument <- f
let clear_instrument t = t.instrument <- noop
