type event_id = Event_queue.id

type t = {
  q : Event_queue.t;
  mutable now : Time.t;
  rng : Rng.t;
  mutable processed : int;
  mutable hwm : int;
  mutable ids : int;
  mutable instrument : unit -> unit;
  (* Self-profiler hooks: when [profiling] is false the step loop pays a
     single immediate-bool branch and touches neither closure. *)
  mutable profiling : bool;
  mutable prof_before : int -> unit;
  mutable prof_after : int -> unit;
}

let noop () = ()
let noop_cls (_ : int) = ()
let no_event = Event_queue.none

let create ?(seed = 1L) () =
  {
    q = Event_queue.create ~capacity:1024 ();
    now = Time.zero;
    rng = Rng.create ~seed;
    processed = 0;
    hwm = 0;
    ids = 0;
    instrument = noop;
    profiling = false;
    prof_before = noop_cls;
    prof_after = noop_cls;
  }

let now t = t.now
let rng t = t.rng

let fresh_id t =
  t.ids <- t.ids + 1;
  t.ids

let schedule_at_cls t time ~cls action =
  if Time.(time < t.now) then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: %s is before now (%s)"
         (Time.to_string time) (Time.to_string t.now));
  let id = Event_queue.add_cls t.q ~time ~cls action in
  (* High water tracks true heap occupancy (live plus not-yet-swept
     cancelled entries): that is the memory the engine actually holds. *)
  let occ = Event_queue.length t.q in
  if occ > t.hwm then t.hwm <- occ;
  id

let schedule_at t time action = schedule_at_cls t time ~cls:0 action

let schedule_after_cls t span ~cls action =
  if Int64.compare span 0L < 0 then
    invalid_arg "Sim.schedule_after: negative delay";
  schedule_at_cls t (Time.add t.now span) ~cls action

let schedule_after t span action = schedule_after_cls t span ~cls:0 action

let cancel t id = ignore (Event_queue.cancel t.q id)

let step t =
  if Event_queue.pop t.q then begin
    t.now <- Event_queue.popped_time t.q;
    t.processed <- t.processed + 1;
    let action = Event_queue.popped_action t.q in
    if t.profiling then begin
      (* Read the class before running the action: the action may pop
         nothing itself, but keeping the read first costs nothing and
         makes the pairing obviously correct. *)
      let cls = Event_queue.popped_cls t.q in
      t.prof_before cls;
      action ();
      t.prof_after cls
    end
    else action ();
    t.instrument ();
    true
  end
  else false

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
      (* Keys are int nanoseconds, so the deadline comparison in the
         loop is a single unboxed compare. [live_min_key_ns] recycles
         not-yet-swept cancelled roots itself and returns [max_int]
         when no live event remains, so the guard only passes when the
         event [step] will actually fire is at or before [stop] — a
         live event past the deadline never fires just because a dead
         root sat in front of it. *)
      let stop_ns = Int64.to_int (Time.to_ns stop) in
      while Event_queue.live_min_key_ns t.q <= stop_ns do
        ignore (step t)
      done;
      if Time.(t.now < stop) then t.now <- stop

let events_processed t = t.processed
let pending t = Event_queue.live t.q
let heap_size t = Event_queue.length t.q
let heap_high_water t = t.hwm
let event_pool_size t = Event_queue.pool_size t.q
let set_instrument t f = t.instrument <- f
let clear_instrument t = t.instrument <- noop

let set_profiler t ~before ~after =
  t.prof_before <- before;
  t.prof_after <- after;
  t.profiling <- true

let clear_profiler t =
  t.profiling <- false;
  t.prof_before <- noop_cls;
  t.prof_after <- noop_cls

let profiling t = t.profiling
