type event = {
  time : Time.t;
  seq : int;
  mutable cancelled : bool;
  action : unit -> unit;
}

type event_id = event

type t = {
  heap : event Heap.t;
  mutable now : Time.t;
  mutable seq : int;
  rng : Rng.t;
  mutable processed : int;
  mutable live : int;
  mutable dead : int;  (** Cancelled events still sitting in the heap. *)
  mutable hwm : int;
  mutable instrument : unit -> unit;
}

let noop () = ()

(* Below this occupancy a sweep is not worth the O(n) pass. *)
let compact_min_size = 64

let cmp_event a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create ?(seed = 1L) () =
  {
    heap = Heap.create ~capacity:1024 ~cmp:cmp_event ();
    now = Time.zero;
    seq = 0;
    rng = Rng.create ~seed;
    processed = 0;
    live = 0;
    dead = 0;
    hwm = 0;
    instrument = noop;
  }

let now t = t.now
let rng t = t.rng

let schedule_at t time action =
  if Time.(time < t.now) then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: %s is before now (%s)"
         (Time.to_string time) (Time.to_string t.now));
  let ev = { time; seq = t.seq; cancelled = false; action } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Heap.push t.heap ev;
  (* High water tracks true heap occupancy (live plus not-yet-swept
     cancelled entries): that is the memory the engine actually holds. *)
  let occ = Heap.length t.heap in
  if occ > t.hwm then t.hwm <- occ;
  ev

let schedule_after t span action =
  if Int64.compare span 0L < 0 then
    invalid_arg "Sim.schedule_after: negative delay";
  schedule_at t (Time.add t.now span) action

(* Cancelled events stay in the heap until popped; on cancel-heavy runs
   (retransmission timers that almost always get rearmed) that dead weight
   would dominate the heap. Sweep lazily: once cancelled entries outnumber
   the live ones — more than half the heap is dead — rebuild without them. *)
let compact t =
  Heap.filter_in_place (fun ev -> not ev.cancelled) t.heap;
  t.dead <- 0

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1;
    t.dead <- t.dead + 1;
    if t.dead > t.live && Heap.length t.heap >= compact_min_size then
      compact t
  end

let rec step t =
  match Heap.pop t.heap with
  | None -> false
  | Some ev ->
      if ev.cancelled then begin
        t.dead <- t.dead - 1;
        step t
      end
      else begin
        t.now <- ev.time;
        t.live <- t.live - 1;
        t.processed <- t.processed + 1;
        ev.action ();
        t.instrument ();
        true
      end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.heap with
        | Some ev when Time.(ev.time <= stop) -> ignore (step t)
        | Some _ | None -> continue := false
      done;
      if Time.(t.now < stop) then t.now <- stop

let events_processed t = t.processed
let pending t = t.live
let heap_size t = Heap.length t.heap
let heap_high_water t = t.hwm
let set_instrument t f = t.instrument <- f
let clear_instrument t = t.instrument <- noop
