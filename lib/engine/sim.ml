type event_id = Event_queue.id

type ext = ..

type t = {
  q : Event_queue.t;
  mutable now : Time.t;
  rng : Rng.t;
  mutable processed : int;
  mutable hwm : int;
  mutable ids : int;
  mutable instrument : unit -> unit;
  (* Self-profiler hooks: when [profiling] is false the step loop pays a
     single immediate-bool branch and touches neither closure. *)
  mutable profiling : bool;
  mutable prof_before : int -> unit;
  mutable prof_after : int -> unit;
  (* Per-simulation extension slots: upper layers attach state scoped to
     this simulation (e.g. the packet store) without a module-level
     global (dtlint R12) and without threading new parameters through
     every component constructor. Looked up at component creation, not
     per event, so a list walk is fine. *)
  mutable exts : ext list;
}

let noop () = ()
let noop_cls (_ : int) = ()
let no_event = Event_queue.none

let create ?(seed = 1L) () =
  {
    q = Event_queue.create ~capacity:1024 ();
    now = Time.zero;
    rng = Rng.create ~seed;
    processed = 0;
    hwm = 0;
    ids = 0;
    instrument = noop;
    profiling = false;
    prof_before = noop_cls;
    prof_after = noop_cls;
    exts = [];
  }

let add_ext t e = t.exts <- e :: t.exts

let rec find_ext_walk f = function
  | [] -> None
  | e :: rest -> (
      match f e with Some _ as r -> r | None -> find_ext_walk f rest)

let find_ext t f = find_ext_walk f t.exts

let now t = t.now
let rng t = t.rng

let fresh_id t =
  t.ids <- t.ids + 1;
  t.ids

let schedule_at_cls t time ~cls action =
  if Time.(time < t.now) then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: %s is before now (%s)"
         (Time.to_string time) (Time.to_string t.now));
  let id = Event_queue.add_cls t.q ~time ~cls action in
  (* High water tracks live events only. Counting unswept cancelled
     entries (as before PR 9) made the manifest metric depend on the
     queue's internal sweep schedule rather than on scheduling load;
     with the wheel's immediate-reclaim cancel the two coincide anyway
     on every run the engine can produce. *)
  let occ = Event_queue.live t.q in
  if occ > t.hwm then t.hwm <- occ;
  id

let schedule_at t time action = schedule_at_cls t time ~cls:0 action

let schedule_after_cls t span ~cls action =
  if Int64.compare span 0L < 0 then
    invalid_arg "Sim.schedule_after: negative delay";
  schedule_at_cls t (Time.add t.now span) ~cls action

let schedule_after t span action = schedule_after_cls t span ~cls:0 action

let cancel t id = ignore (Event_queue.cancel t.q id)

let step t =
  if Event_queue.pop t.q then begin
    t.now <- Event_queue.popped_time t.q;
    t.processed <- t.processed + 1;
    let action = Event_queue.popped_action t.q in
    if t.profiling then begin
      (* Read the class before running the action: the action may pop
         nothing itself, but keeping the read first costs nothing and
         makes the pairing obviously correct. *)
      let cls = Event_queue.popped_cls t.q in
      t.prof_before cls;
      action ();
      t.prof_after cls
    end
    else action ();
    t.instrument ();
    true
  end
  else false

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some stop ->
      (* Keys are int nanoseconds, so the deadline comparison in the
         loop is a single unboxed compare. [live_min_key_ns] recycles
         not-yet-swept cancelled roots itself and returns [max_int]
         when no live event remains, so the guard only passes when the
         event [step] will actually fire is at or before [stop] — a
         live event past the deadline never fires just because a dead
         root sat in front of it. *)
      let stop_ns = Time.to_int_ns stop in
      while Event_queue.live_min_key_ns t.q <= stop_ns do
        ignore (step t)
      done;
      if Time.(t.now < stop) then t.now <- stop

let events_processed t = t.processed
let pending t = Event_queue.live t.q
let heap_size t = Event_queue.length t.q
let heap_high_water t = t.hwm
let event_pool_size t = Event_queue.pool_size t.q
let set_instrument t f = t.instrument <- f
let clear_instrument t = t.instrument <- noop

let set_profiler t ~before ~after =
  t.prof_before <- before;
  t.prof_after <- after;
  t.profiling <- true

let clear_profiler t =
  t.profiling <- false;
  t.prof_before <- noop_cls;
  t.prof_after <- noop_cls

let profiling t = t.profiling
