(** Simulated time.

    Time is an absolute instant measured in integer nanoseconds since the
    start of the simulation. Using integers keeps event ordering exact and
    the simulator deterministic; floating-point seconds are only used at the
    API boundary. *)

type t = private int
(** An instant, in nanoseconds since simulation start. Total order.
    Immediate (63-bit nanoseconds reach past year 2260): the scheduler
    touches an instant on every schedule and every pop, and a boxed
    representation would cost an allocation per event. *)

type span = int64
(** A duration in nanoseconds. Durations are plain [int64] so arithmetic
    stays lightweight in the event loop. *)

val zero : t
(** Simulation start. *)

val of_ns : int64 -> t
(** [of_ns n] is the instant [n] nanoseconds after start.
    @raise Invalid_argument if [n] is negative. *)

val to_ns : t -> int64

val of_int_ns : int -> t
(** {!of_ns} on an already-immediate nanosecond count — allocation-free,
    for hot paths that carry instants as native ints (the event wheel's
    keys, pooled packet timestamps).
    @raise Invalid_argument if negative. *)

val to_int_ns : t -> int
(** {!to_ns} without the box; the identity, at this representation. *)

val of_sec : float -> t
(** [of_sec s] rounds [s] seconds to the nearest nanosecond.
    @raise Invalid_argument if [s] is negative or not finite. *)

val to_sec : t -> float

val of_us : float -> t
(** Microseconds variant of {!of_sec}. *)

val of_ms : float -> t
(** Milliseconds variant of {!of_sec}. *)

val add : t -> span -> t
(** [add t d] is the instant [d] after [t]. *)

val diff : t -> t -> span
(** [diff a b] is [a - b] in nanoseconds (negative if [a] precedes [b]). *)

val span_of_sec : float -> span
(** Duration conversion; requires a non-negative finite argument. *)

val span_of_us : float -> span
val span_of_ms : float -> span
val span_to_sec : span -> float

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints with an adaptive unit (ns/us/ms/s). *)

val to_string : t -> string
