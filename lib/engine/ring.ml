(* Growable ring-buffer FIFO. Replaces [Stdlib.Queue] on hot paths: a
   Stdlib queue allocates a cons cell per [push], a ring writes into a
   flat array slot, so steady enqueue/dequeue traffic allocates nothing.

   The backing array is a power of two so the index wrap is a mask, and
   empty slots hold the same [Obj.magic 0] placeholder the generic
   {!Heap} uses (see its caveats: not for float elements). *)

type 'a t = {
  mutable data : 'a array;
  mutable head : int;  (* index of the front element *)
  mutable len : int;
}

let rec pow2 n k = if k >= n then k else pow2 n (2 * k)

let create ?(capacity = 16) () =
  let capacity = pow2 (Stdlib.max capacity 1) 1 in
  { data = Array.make capacity (Obj.magic 0); head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let n = Array.length t.data in
  let data = Array.make (2 * n) (Obj.magic 0) in
  (* Unwrap: front segment [head, n), then the wrapped prefix. *)
  let front = n - t.head in
  Array.blit t.data t.head data 0 front;
  Array.blit t.data 0 data front t.head;
  t.data <- data;
  t.head <- 0

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.((t.head + t.len) land (Array.length t.data - 1)) <- x;
  t.len <- t.len + 1

let peek_opt t = if t.len = 0 then None else Some t.data.(t.head)

let pop t =
  if t.len = 0 then raise Not_found;
  let x = t.data.(t.head) in
  (* Release the slot so the GC can reclaim the element. *)
  t.data.(t.head) <- Obj.magic 0;
  t.head <- (t.head + 1) land (Array.length t.data - 1);
  t.len <- t.len - 1;
  x

let pop_opt t = if t.len = 0 then None else Some (pop t)

let clear t =
  let mask = Array.length t.data - 1 in
  for i = 0 to t.len - 1 do
    t.data.((t.head + i) land mask) <- Obj.magic 0
  done;
  t.head <- 0;
  t.len <- 0

let iter f t =
  let mask = Array.length t.data - 1 in
  for i = 0 to t.len - 1 do
    f t.data.((t.head + i) land mask)
  done
