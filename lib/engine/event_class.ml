type t = Other | Timer | Link_tx | Link_rx | Sample | Protocol | Fault

let count = 7

let index = function
  | Other -> 0
  | Timer -> 1
  | Link_tx -> 2
  | Link_rx -> 3
  | Sample -> 4
  | Protocol -> 5
  | Fault -> 6

let all = [| Other; Timer; Link_tx; Link_rx; Sample; Protocol; Fault |]

let of_index i =
  if i < 0 || i >= count then
    invalid_arg (Printf.sprintf "Event_class.of_index: %d" i)
  else all.(i)

let name = function
  | Other -> "other"
  | Timer -> "timer"
  | Link_tx -> "link_tx"
  | Link_rx -> "link_rx"
  | Sample -> "sample"
  | Protocol -> "protocol"
  | Fault -> "fault"
