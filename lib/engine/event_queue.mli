(** Monomorphic event queue — the simulator's hot path.

    A hierarchical bucketed timing wheel (Varghese–Lauck style) over
    pooled event records, keyed on the (time, seq) pair: earlier
    instants first, schedule order (FIFO) within an instant. Six levels
    of 32 power-of-two time buckets keyed off the wheel's virtual
    position cover a 2^30 ns (≈1.07 s) horizon; each bucket is an
    intrusive doubly-linked list over the pooled slots, each level keeps
    an occupancy bitmask so finding the next tick is a find-first-set,
    not a scan. Two small (key, seq) binary heaps back the wheel up at
    its edges: {e overdue} (events dated at or before an instant the
    wheel already passed — {!Sim} never produces these, but arbitrary
    call sequences may) and {e overflow} (events beyond the horizon,
    drained into the wheel a block at a time as the clock advances).
    Schedule and cancel are O(1) for wheel-resident events; pop is
    near-O(1) — each event cascades down at most [levels] times over
    its whole life. Pop order is bit-identical to the 4-ary heap this
    replaced (the generic {!Heap} is retained as the qcheck oracle).

    {b Pooling invariants.} An event record is owned by the queue from
    {!add} until it leaves the structure — by firing ({!pop}), by
    {!cancel} when wheel-resident (unlinked and recycled immediately),
    or, for heap-resident events, when the lazy sweep or a later pop
    reaches the dead record. At that point it is recycled: its
    generation is bumped (invalidating outstanding {!id}s) and its
    action/time references are dropped (so the pool never pins a dead
    closure). Callers interact only through {!id} values, which are
    immediate ints; a stale id — one whose event already fired or was
    cancelled — is detected by the generation check and {!cancel}
    returns [false] instead of touching a recycled record.

    Times must stay below 2^62 ns (≈146 years of simulated time): keys
    are stored as unboxed [int] nanoseconds. *)

type t

type id = private int
(** Handle to a scheduled event. Immediate (never allocated). *)

val none : id
(** A handle that matches no event; [cancel t none] is a no-op. Useful
    as an initial value for fields that later hold real ids. *)

val create : ?capacity:int -> unit -> t
(** Empty queue. [capacity] (default 1024) pre-sizes the overflow heap
    and pool arrays; both grow on demand. *)

val length : t -> int
(** Occupancy the queue actually holds in memory: live events plus
    cancelled heap-resident events not yet swept. Wheel-resident
    cancels recycle immediately and never linger, so on the {!Sim}
    fast path (no past or beyond-horizon events) this equals {!live}. *)

val live : t -> int
(** Scheduled, not-yet-fired, not-cancelled events. *)

val pool_size : t -> int
(** Number of event records ever allocated (live + dead + free). A
    steady schedule→pop cycle keeps this constant — the observable
    effect of pooling, asserted by the allocation regression tests. *)

val overdue_len : t -> int
(** Entries (live + unswept dead) in the overdue backstop heap — events
    scheduled at or before an instant the wheel has already passed.
    Always 0 under {!Sim}, which forbids scheduling in the past.
    Exposed so tests can assert which structure a trace exercised. *)

val overflow_len : t -> int
(** Entries (live + unswept dead) in the far-future overflow heap —
    events beyond the wheel's 2^30 ns horizon, waiting to drain. *)

val add : t -> time:Time.t -> (unit -> unit) -> id
(** Schedules an action. Events added at equal [time] fire in [add]
    order. O(1) for events within the wheel horizon (the common case);
    O(log n) into a backstop heap otherwise. Allocates only when the
    pool has no free record. The event carries class tag 0
    ({!Event_class.Other}). *)

val add_cls : t -> time:Time.t -> cls:int -> (unit -> unit) -> id
(** {!add} with an explicit {!Event_class} index tag for the
    self-profiler. [cls] is a required label (an optional int would box
    on every call); tagging is one immediate store and never changes
    pop order. *)

val cancel : t -> id -> bool
(** Cancels the event; returns [false] (and does nothing) if the id is
    stale — already fired, already cancelled, or recycled. A
    wheel-resident event (the hot case: every pending timer within
    ~1 s) is unlinked from its bucket and recycled immediately, O(1).
    Heap-resident events (overdue / far-future) are marked dead and
    swept lazily: once corpses exceed half that heap (and it holds at
    least 64 entries) it is compacted in O(n). *)

val pop : t -> bool
(** Removes the minimum live event, advancing the wheel's virtual
    position (cascading higher-level buckets as it crosses into them)
    and recycling any cancelled heap roots met on the way. Returns
    [false] when no live event remains. On [true] the fired event's
    fields are readable via {!popped_time} / {!popped_action} until the
    next [pop]. *)

val popped_time : t -> Time.t
val popped_action : t -> unit -> unit

val popped_cls : t -> int
(** {!Event_class} index of the last popped event (0 = untagged). *)

val live_min_key_ns : t -> int
(** Nanosecond key of the next event {!pop} would fire, or [max_int]
    when no live event remains. Advances the wheel to that event's tick
    (the work {!pop} would do anyway) and recycles cancelled heap roots
    met on the way, so the result is the true live minimum, never the
    key of a stale cancelled root. Lets the run-until loop compare
    against a deadline without boxing and without overshooting it. *)
