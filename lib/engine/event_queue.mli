(** Monomorphic event queue — the simulator's hot path.

    An implicit 4-ary min-heap over pooled event records, keyed on the
    (time, seq) pair: earlier instants first, schedule order (FIFO)
    within an instant. Unlike the generic {!Heap}, comparisons are
    inlined int compares (no comparator closure), and event records are
    recycled through a free list, so a steady schedule→fire or
    schedule→cancel cycle allocates nothing.

    {b Pooling invariants.} An event record is owned by the queue from
    {!add} until it leaves the heap — by firing ({!pop}), or after
    {!cancel} when the lazy sweep or a later pop reaches it. At that
    point it is recycled: its generation is bumped (invalidating
    outstanding {!id}s) and its action/time references are dropped (so
    the pool never pins a dead closure). Callers interact only through
    {!id} values, which are immediate ints; a stale id — one whose event
    already fired or was cancelled — is detected by the generation check
    and {!cancel} returns [false] instead of touching a recycled record.

    Times must stay below 2^62 ns (≈146 years of simulated time): keys
    are stored as unboxed [int] nanoseconds. *)

type t

type id = private int
(** Handle to a scheduled event. Immediate (never allocated). *)

val none : id
(** A handle that matches no event; [cancel t none] is a no-op. Useful
    as an initial value for fields that later hold real ids. *)

val create : ?capacity:int -> unit -> t
(** Empty queue. [capacity] (default 1024) pre-sizes the heap and pool
    arrays; both grow on demand. *)

val length : t -> int
(** Current heap occupancy: live events plus cancelled events not yet
    swept. This is the memory the queue actually holds. *)

val live : t -> int
(** Scheduled, not-yet-fired, not-cancelled events. *)

val pool_size : t -> int
(** Number of event records ever allocated (live + dead + free). A
    steady schedule→pop cycle keeps this constant — the observable
    effect of pooling, asserted by the allocation regression tests. *)

val add : t -> time:Time.t -> (unit -> unit) -> id
(** Schedules an action. Events added at equal [time] fire in [add]
    order. O(log₄ n); allocates only when the pool has no free record.
    The event carries class tag 0 ({!Event_class.Other}). *)

val add_cls : t -> time:Time.t -> cls:int -> (unit -> unit) -> id
(** {!add} with an explicit {!Event_class} index tag for the
    self-profiler. [cls] is a required label (an optional int would box
    on every call); tagging is one immediate store and never changes
    pop order. *)

val cancel : t -> id -> bool
(** Marks the event dead; returns [false] (and does nothing) if the id
    is stale — already fired, already cancelled, or recycled. Dead
    events are swept lazily: once they outnumber the live ones (and the
    heap holds at least 64 entries) the heap is compacted in O(n). *)

val pop : t -> bool
(** Removes the minimum live event, recycling any cancelled records met
    on the way. Returns [false] when no live event remains. On [true]
    the fired event's fields are readable via {!popped_time} /
    {!popped_action} until the next [pop]. *)

val popped_time : t -> Time.t
val popped_action : t -> unit -> unit

val popped_cls : t -> int
(** {!Event_class} index of the last popped event (0 = untagged). *)

val live_min_key_ns : t -> int
(** Nanosecond key of the next event {!pop} would fire, or [max_int]
    when no live event remains. Cancelled records met at the root are
    recycled on the way — the same ones the next [pop] would skip — so
    the result is the true live minimum, never the key of a stale
    cancelled root. Lets the run-until loop compare against a deadline
    without boxing and without overshooting it. *)
