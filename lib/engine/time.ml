(* Instants are immediate native ints (63-bit nanoseconds reach past
   year 2260), not boxed int64: the scheduler touches an instant on
   every schedule and every pop, and a boxed representation costs an
   allocation per event plus a write barrier per store. Spans stay
   int64 at the API boundary; the conversions below are single machine
   instructions. *)
type t = int

and span = int64

let zero = 0

let of_ns n =
  if Int64.compare n 0L < 0 then invalid_arg "Time.of_ns: negative";
  Int64.to_int n

let to_ns t = Int64.of_int t

let of_int_ns n =
  if n < 0 then invalid_arg "Time.of_int_ns: negative";
  n

let to_int_ns t = t

let ns_per_sec = 1_000_000_000.

let span_of_sec s =
  if not (Float.is_finite s) || s < 0. then
    invalid_arg "Time.span_of_sec: negative or non-finite";
  Int64.of_float (Float.round (s *. ns_per_sec))

let span_of_us us = span_of_sec (us *. 1e-6)
let span_of_ms ms = span_of_sec (ms *. 1e-3)
let span_to_sec d = Int64.to_float d /. ns_per_sec
let of_sec s = of_ns (span_of_sec s)
let to_sec t = float_of_int t /. ns_per_sec
let of_us us = of_sec (us *. 1e-6)
let of_ms ms = of_sec (ms *. 1e-3)
let add t d = t + Int64.to_int d
let diff a b = Int64.of_int (a - b)
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) b = a <= b
let ( < ) (a : t) b = a < b
let ( >= ) (a : t) b = a >= b
let ( > ) (a : t) b = a > b
let min (a : t) b = if a <= b then a else b
let max (a : t) b = if a >= b then a else b

let pp ppf t =
  let ns = float_of_int t in
  if Stdlib.( < ) ns 1e3 then Format.fprintf ppf "%.0fns" ns
  else if Stdlib.( < ) ns 1e6 then Format.fprintf ppf "%.3fus" (ns /. 1e3)
  else if Stdlib.( < ) ns 1e9 then Format.fprintf ppf "%.3fms" (ns /. 1e6)
  else Format.fprintf ppf "%.6fs" (ns /. 1e9)

let to_string t = Format.asprintf "%a" pp t
