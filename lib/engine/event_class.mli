(** Coarse taxonomy of scheduled events, for the self-profiler.

    Every event in the {!Event_queue} carries a class tag (stored as the
    class {e index}, an immediate int, so tagging costs nothing on the
    hot path). Scheduling sites that know what kind of work they enqueue
    pass the tag through {!Sim.schedule_at_cls} / {!Sim.schedule_after_cls};
    everything else defaults to {!Other}. The profiler aggregates
    per-class execution counts and sampled wall-clock time, which is how
    "where does event time actually go" questions (ROADMAP item 3) get
    answered without a system profiler. *)

type t =
  | Other  (** Untagged: workload bookkeeping, measurement arming, ... *)
  | Timer  (** {!Timer} firings — RTO and protocol timers. *)
  | Link_tx  (** Port serialization complete (transmit side). *)
  | Link_rx  (** Propagation-delay delivery (receive side). *)
  | Sample  (** {!Obs.Sampler} periodic ticks. *)
  | Protocol  (** Transport control events (flow start, ...). *)
  | Fault  (** Fault-injection plan events (flaps, brownouts, jitter). *)

val count : int
(** Number of classes; valid indices are [0 .. count - 1]. *)

val index : t -> int
(** Stable dense index; {!Other} is 0 (the default tag). *)

val of_index : int -> t
(** @raise Invalid_argument when outside [0 .. count - 1]. *)

val name : t -> string
(** Stable lowercase identifier, e.g. ["link_tx"]; used in profiler
    JSON output. *)

val all : t array
(** Every class, in index order. *)
