(* A timer is a rearm-heavy client of the event queue (RTO timers rearm
   on nearly every ACK), so [set]/[cancel] must not allocate: the firing
   closure is built once in [create], and the pending state lives in
   mutable immediate fields instead of an option of a tuple. *)

type t = {
  sim : Sim.t;
  action : unit -> unit;
  mutable ev : Sim.event_id;
  mutable armed : bool;
  mutable at : Time.t;
  mutable fire : unit -> unit;
}

let create sim ~action =
  let t =
    {
      sim;
      action;
      ev = Sim.no_event;
      armed = false;
      at = Time.zero;
      fire = action;
    }
  in
  t.fire <-
    (fun () ->
      t.armed <- false;
      t.action ());
  t

let cancel t =
  if t.armed then begin
    Sim.cancel t.sim t.ev;
    t.armed <- false
  end

let cls_timer = Event_class.index Event_class.Timer

let set_at t ~at =
  cancel t;
  t.ev <- Sim.schedule_at_cls t.sim at ~cls:cls_timer t.fire;
  t.armed <- true;
  t.at <- at

let set t ~after = set_at t ~at:(Time.add (Sim.now t.sim) after)
let is_pending t = t.armed
let deadline t = if t.armed then Some t.at else None
