type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ?(capacity = 64) ~cmp () =
  let capacity = Stdlib.max capacity 1 in
  { cmp; data = Array.make capacity (Obj.magic 0); size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h =
  (* Spare slots get the placeholder, matching [pop]/[clear]: seeding
     them with [h.data.(0)] would pin a live reference to the current
     root long after it is popped. *)
  let data = Array.make (2 * Array.length h.data) (Obj.magic 0) in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 in
  let r = l + 1 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let root = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    (* Release the slot so the GC can reclaim the popped element. *)
    h.data.(h.size) <- Obj.magic 0;
    if h.size > 0 then sift_down h 0;
    Some root
  end

let pop_exn h =
  match pop h with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let filter_in_place keep h =
  let j = ref 0 in
  for i = 0 to h.size - 1 do
    if keep h.data.(i) then begin
      h.data.(!j) <- h.data.(i);
      incr j
    end
  done;
  let old_size = h.size in
  h.size <- !j;
  for i = h.size to old_size - 1 do
    h.data.(i) <- Obj.magic 0
  done;
  (* Bottom-up heapify restores the invariant in O(n). *)
  for i = (h.size / 2) - 1 downto 0 do
    sift_down h i
  done

let clear h =
  for i = 0 to h.size - 1 do
    h.data.(i) <- Obj.magic 0
  done;
  h.size <- 0

let to_sorted_list h =
  let copy = { h with data = Array.copy h.data } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

let iter_unordered f h =
  for i = 0 to h.size - 1 do
    f h.data.(i)
  done
