(** Growable ring-buffer FIFO.

    First-in first-out like [Stdlib.Queue], but backed by a flat array:
    [push]/[pop_opt] write into slots instead of allocating a cons cell
    per element, so steady traffic (a switch queue cycling packets)
    allocates nothing. The buffer doubles when full and never shrinks.

    Like {!Heap}, the backing array seeds empty slots with an immediate
    placeholder — do not instantiate at [float] (the placeholder is not
    a valid unboxed float). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Empty ring; [capacity] (default 16, rounded up to a power of two)
    pre-sizes the backing array. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Appends at the back. Amortised O(1), allocation-free unless the
    buffer must grow. *)

val peek_opt : 'a t -> 'a option
(** Front element, without removing it. *)

val pop : 'a t -> 'a
(** Removes and returns the front element without boxing an option — the
    hot-path variant of {!pop_opt}.
    @raise Not_found when empty. *)

val pop_opt : 'a t -> 'a option
(** Removes and returns the front element; [None] when empty. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back iteration. *)
