(** Discrete-event simulator core.

    A simulator owns a virtual clock and an event queue. Events scheduled
    for the same instant run in scheduling order (FIFO), which makes runs
    fully deterministic for a given seed. *)

type t

type event_id = Event_queue.id
(** Handle to a scheduled event, used for cancellation. Immediate (an
    int carrying a pool-slot/generation pair), so scheduling never
    allocates a handle. *)

type ext = ..
(** Per-simulation extension slots. An upper layer that needs state
    scoped to one simulation (e.g. {!Net.Packet}'s pooled packet store)
    extends this type, attaches one instance with {!add_ext}, and finds
    it back with {!find_ext} — no module-level mutable global (unsafe
    under parallel sweeps), no new parameter on every component
    constructor. *)

val add_ext : t -> ext -> unit
(** Attaches an extension. The caller is responsible for attaching one
    instance of its own constructor per simulation (check {!find_ext}
    first). *)

val find_ext : t -> (ext -> 'a option) -> 'a option
(** [find_ext sim f] returns the first attached extension [f] accepts.
    A list walk — intended for component creation, not per-event use. *)

val no_event : event_id
(** A handle matching no event; cancelling it is a no-op. Initial value
    for fields that later hold real handles (see {!Timer}). *)

val create : ?seed:int64 -> unit -> t
(** A fresh simulator with its clock at {!Time.zero}. [seed] (default 1)
    initialises the simulation-wide {!Rng.t}. *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The simulation-wide random stream. Use {!Rng.split} to derive
    per-component streams. *)

val fresh_id : t -> int
(** Per-run unique id source: returns 1, 2, 3, ... across the whole
    simulation. Used for packet ids (see {!Net.Packet.make}) and any
    other per-run identifier, so ids are deterministic for a given run
    and independent of whatever other simulations the process hosts. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> event_id
(** [schedule_at sim t f] runs [f] when the clock reaches [t].
    @raise Invalid_argument if [t] is in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> event_id
(** [schedule_after sim d f] is [schedule_at sim (add (now sim) d) f].
    @raise Invalid_argument if [d] is negative. *)

val schedule_at_cls : t -> Time.t -> cls:int -> (unit -> unit) -> event_id
(** {!schedule_at} with an {!Event_class} index tag for the
    self-profiler. Plain {!schedule_at} tags with 0
    ({!Event_class.Other}); the tag never changes firing order. [cls] is
    a required label — an optional int argument would box [Some cls] on
    every call, and the rearm-heavy callers (timers, port transmit
    loops) sit on the allocation-free hot path. *)

val schedule_after_cls : t -> Time.span -> cls:int -> (unit -> unit) -> event_id
(** {!schedule_after} with an {!Event_class} index tag. *)

val cancel : t -> event_id -> unit
(** Cancels a pending event; cancelling an already-fired or already-cancelled
    event is a no-op (stale handles are detected by the generation stamp,
    even after the underlying pooled record has been recycled). Cancelled
    events are swept from the heap lazily: whenever they come to outnumber
    the live ones the heap is compacted in O(n), so cancel-heavy runs
    (rearmed retransmission timers) do not accumulate dead weight. *)

val step : t -> bool
(** Runs the next event, advancing the clock. Returns [false] if the queue
    was empty. *)

val run : ?until:Time.t -> t -> unit
(** Runs events in time order. With [until], stops once all events at
    instants [<= until] have run and leaves the clock at [until]; without
    it, runs until the queue is empty. *)

val events_processed : t -> int
(** Number of events executed so far (cancelled events are not counted). *)

val pending : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events. *)

val heap_size : t -> int
(** Current queue occupancy: [pending] plus cancelled backstop-heap
    events not yet swept (wheel-resident cancels recycle immediately).
    Exposed for the reclaim tests and as a memory gauge. *)

val heap_high_water : t -> int
(** Maximum number of simultaneously live (scheduled, not fired, not
    cancelled) events seen so far — the engine's memory-pressure signal
    for the observability layer. Counts live events only; unswept
    cancelled entries are an implementation detail of the backstop
    heaps and no longer inflate this metric. *)

val event_pool_size : t -> int
(** Number of event records the engine has ever allocated (the event
    pool's footprint). Stays constant across steady schedule→fire
    cycles; exposed for the allocation regression tests. *)

val set_instrument : t -> (unit -> unit) -> unit
(** Install a callback run after every executed event. Intended for the
    observability layer (periodic flushing, progress accounting); the
    callback must not perturb simulation state. At most one is installed;
    setting replaces the previous one. *)

val clear_instrument : t -> unit
(** Restore the default no-op instrumentation callback. *)

val set_profiler :
  t -> before:(int -> unit) -> after:(int -> unit) -> unit
(** Install the self-profiler hook pair. Around every executed event the
    step loop calls [before cls] then the action then [after cls], where
    [cls] is the event's {!Event_class} index (0 for untagged events).
    The hooks receive the raw index (not the variant) so dispatching
    into per-class accumulator arrays is a plain array access. When no
    profiler is installed the step loop pays exactly one immediate-bool
    branch — the disabled path allocates nothing (asserted by the
    regression tests) and is bounded like the null tracer (<2%,
    measured in [bench perf]). At most one profiler is installed;
    setting replaces the previous one. *)

val clear_profiler : t -> unit
(** Remove the profiler hooks, restoring the single-branch fast path. *)

val profiling : t -> bool
(** Whether a profiler hook pair is currently installed. *)
