(** Growable ring-buffer FIFO specialised to [int].

    Same discipline as the generic {!Ring}, minus the write barrier: int
    elements are immediate, so [push] is a plain array store — the right
    container for pooled handles (packet ids, event ids) on hot paths.
    Empty slots hold [min_int], a real value rather than an [Obj.magic]
    placeholder, and popped slots need no clearing (an int pins
    nothing). The buffer doubles when full and never shrinks. *)

type t

val create : ?capacity:int -> unit -> t
(** Empty ring; [capacity] (default 16, rounded up to a power of two)
    pre-sizes the backing array. *)

val length : t -> int
val is_empty : t -> bool

val push : t -> int -> unit
(** Appends at the back. Amortised O(1), allocation-free unless the
    buffer must grow. *)

val peek : t -> int
(** Front element, without removing it.
    @raise Not_found when empty. *)

val pop : t -> int
(** Removes and returns the front element.
    @raise Not_found when empty. *)

val clear : t -> unit

val iter : (int -> unit) -> t -> unit
(** Front-to-back iteration. *)
