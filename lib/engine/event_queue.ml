(* Monomorphic event queue: an implicit 4-ary min-heap over pooled event
   records, keyed on (time, seq). This is the simulator's hot path, so the
   design removes every per-event indirection and allocation the generic
   [Heap] had to pay:

   - comparisons are inlined int compares on [key_ns]/[seq] (no [cmp]
     closure call per sift step);
   - the heap is 4-ary, halving its depth: sift loops touch fewer levels
     and the four children share cache lines;
   - event records come from a free-list pool, so schedule/cancel-heavy
     runs (rearmed RTO timers) allocate nothing in steady state;
   - ids handed to callers are immediate ints carrying a generation
     stamp, so a stale [cancel] (after the record was recycled) is
     detected and ignored instead of corrupting an unrelated event. *)

type event = {
  mutable key_ns : int;
      (* Scheduled instant in integer nanoseconds; the primary sort key.
         An [int] (not [int64]) so sift comparisons are single unboxed
         compares — fine for any simulated instant below 2^62 ns. *)
  mutable seq : int;  (* FIFO tie-break: schedule order within an instant. *)
  mutable time : Time.t;
      (* The same instant, boxed once at schedule time, so firing can
         advance the clock without re-boxing an int64. *)
  mutable action : unit -> unit;
  mutable cls : int;
      (* {!Event_class} index tag, carried for the self-profiler. An
         immediate int: tagging costs one mutable-field store. *)
  mutable live : bool;  (* Scheduled and not cancelled, not yet fired. *)
  mutable gen : int;  (* Bumped on every release; validates ids. *)
  mutable next_free : int;  (* Free-list link (pool index), -1 = end. *)
  idx : int;  (* This record's pool slot; never changes. *)
}

type id = int

let noop () = ()

(* id layout: [idx lsl gen_bits | gen mod 2^gen_bits]. A stale id only
   aliases a reused slot after the same record has been recycled 2^32
   times while the caller still holds the old id. *)
let gen_bits = 32
let gen_mask = (1 lsl gen_bits) - 1

(* The packing needs idx and gen to occupy disjoint bit ranges of a
   native int. On a 32-bit target (or js_of_ocaml) [idx lsl 32] is 0
   for every slot, so all ids would alias pool slot 0 and stale-cancel
   detection would silently break — fail loudly instead. *)
let () =
  if Sys.int_size < 63 then
    failwith "Event_queue: requires 63-bit native ints (32-bit unsupported)"
let id_of ev = (ev.idx lsl gen_bits) lor (ev.gen land gen_mask)
let none = -1

type t = {
  mutable heap : event array;  (* implicit 4-ary min-heap in [0, size) *)
  mutable size : int;
  mutable pool : event array;  (* pool slot -> record, in [0, pool_len) *)
  mutable pool_len : int;
  mutable free_head : int;  (* head of the free list, -1 = empty *)
  mutable next_seq : int;
  mutable live_count : int;
  mutable dead_count : int;  (* cancelled events still in the heap *)
  mutable popped_time : Time.t;
  mutable popped_action : unit -> unit;
  mutable popped_cls : int;
  dummy : event;  (* placeholder for empty heap/pool slots *)
}

(* Below this occupancy a compaction sweep is not worth the O(n) pass
   (same threshold the simulator used with the generic heap, so heap
   occupancy trajectories — and the high-water metric — are unchanged). *)
let compact_min_occupancy = 64

let create ?(capacity = 1024) () =
  let capacity = Stdlib.max capacity 1 in
  let dummy =
    {
      key_ns = 0;
      seq = -1;
      time = Time.zero;
      action = noop;
      cls = 0;
      live = false;
      gen = 0;
      next_free = -1;
      idx = -1;
    }
  in
  {
    heap = Array.make capacity dummy;
    size = 0;
    pool = Array.make capacity dummy;
    pool_len = 0;
    free_head = -1;
    next_seq = 0;
    live_count = 0;
    dead_count = 0;
    popped_time = Time.zero;
    popped_action = noop;
    popped_cls = 0;
    dummy;
  }

let length t = t.size
let live t = t.live_count
let pool_size t = t.pool_len

(* Events are ordered by strict (key_ns, seq); seq is unique so there are
   no ties and pop order is fully deterministic whatever the heap's
   internal layout. The comparison is written out inline in the sift
   loops below: without flambda a [lt a b] helper costs a call per sift
   step, and this is the hottest loop in the simulator. *)

(* --- pool ---------------------------------------------------------- *)

let grow_pool t =
  let data = Array.make (2 * Array.length t.pool) t.dummy in
  Array.blit t.pool 0 data 0 t.pool_len;
  t.pool <- data

let alloc t =
  if t.free_head >= 0 then begin
    let ev = t.pool.(t.free_head) in
    t.free_head <- ev.next_free;
    ev.next_free <- -1;
    ev
  end
  else begin
    if t.pool_len = Array.length t.pool then grow_pool t;
    let ev =
      {
        key_ns = 0;
        seq = 0;
        time = Time.zero;
        action = noop;
        cls = 0;
        live = false;
        gen = 0;
        next_free = -1;
        idx = t.pool_len;
      }
    in
    t.pool.(t.pool_len) <- ev;
    t.pool_len <- t.pool_len + 1;
    ev
  end

(* A record is released exactly once, when it leaves the heap (fired,
   or swept/popped after cancellation). The generation bump invalidates
   outstanding ids; dropping the action/time references keeps the pool
   from pinning closures the caller is done with. *)
let release t ev =
  ev.gen <- ev.gen + 1;
  ev.live <- false;
  ev.action <- noop;
  ev.time <- Time.zero;
  ev.next_free <- t.free_head;
  t.free_head <- ev.idx

(* --- implicit 4-ary heap ------------------------------------------- *)

(* Children of [i] live at [4i+1 .. 4i+4]; parent of [i] at [(i-1)/4].
   Sifts move a hole instead of swapping: one array write per level. *)

let sift_up t i ev =
  let heap = t.heap in
  let key = ev.key_ns and seq = ev.seq in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) lsr 2 in
    let pe = heap.(p) in
    if key < pe.key_ns || (key = pe.key_ns && seq < pe.seq) then begin
      heap.(!i) <- pe;
      i := p
    end
    else continue := false
  done;
  heap.(!i) <- ev

let sift_down t i ev =
  let heap = t.heap in
  let n = t.size in
  let key = ev.key_ns and seq = ev.seq in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let c1 = (!i lsl 2) + 1 in
    if c1 >= n then continue := false
    else begin
      let last = if c1 + 3 < n then c1 + 3 else n - 1 in
      (* Index and key of the smallest of the (up to four) children. *)
      let m = ref c1 in
      let me = heap.(c1) in
      let mk = ref me.key_ns and ms = ref me.seq in
      for c = c1 + 1 to last do
        let ce = heap.(c) in
        if ce.key_ns < !mk || (ce.key_ns = !mk && ce.seq < !ms) then begin
          m := c;
          mk := ce.key_ns;
          ms := ce.seq
        end
      done;
      if !mk < key || (!mk = key && !ms < seq) then begin
        heap.(!i) <- heap.(!m);
        i := !m
      end
      else continue := false
    end
  done;
  heap.(!i) <- ev

let grow_heap t =
  let data = Array.make (2 * Array.length t.heap) t.dummy in
  Array.blit t.heap 0 data 0 t.size;
  t.heap <- data

let heap_push t ev =
  if t.size = Array.length t.heap then grow_heap t;
  t.size <- t.size + 1;
  sift_up t (t.size - 1) ev

(* Removes the root and restores the invariant; the caller still holds
   the root record. *)
let heap_drop_root t =
  t.size <- t.size - 1;
  let last = t.heap.(t.size) in
  t.heap.(t.size) <- t.dummy;
  if t.size > 0 then sift_down t 0 last

(* --- queue operations ---------------------------------------------- *)

let add_cls t ~time ~cls action =
  let ev = alloc t in
  ev.key_ns <- Int64.to_int (Time.to_ns time);
  ev.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  ev.time <- time;
  ev.action <- action;
  ev.cls <- cls;
  ev.live <- true;
  t.live_count <- t.live_count + 1;
  heap_push t ev;
  id_of ev

(* [~cls] is a required label (not optional): an optional int argument
   would box [Some cls] on every call, and this is the hot path. *)
let add t ~time action = add_cls t ~time ~cls:0 action

(* Key of the next event [pop] would fire, or [max_int] when no live
   event remains. Cancelled records met at the root are recycled en
   route — exactly the ones the next [pop] would skip anyway — so the
   deadline loop in [Sim.run] never fires a live event past its stop
   time just because a dead root happened to sit in front of it. *)
let rec live_min_key_ns t =
  if t.size = 0 then max_int
  else begin
    let root = t.heap.(0) in
    if root.live then root.key_ns
    else begin
      heap_drop_root t;
      t.dead_count <- t.dead_count - 1;
      release t root;
      live_min_key_ns t
    end
  end

(* Compaction: drop every cancelled record, then bottom-up heapify in
   O(n). Pop order is unaffected (the (key, seq) order is total). *)
let compact t =
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let ev = t.heap.(i) in
    if ev.live then begin
      t.heap.(!j) <- ev;
      incr j
    end
    else release t ev
  done;
  for i = !j to t.size - 1 do
    t.heap.(i) <- t.dummy
  done;
  t.size <- !j;
  t.dead_count <- 0;
  (* [asr], not [lsr]: when compaction leaves <= 1 survivor the bound
     is negative and must stay negative (skipping the loop), not wrap
     to a huge index. *)
  for i = ((t.size - 2) asr 2) downto 0 do
    sift_down t i t.heap.(i)
  done

let cancel t id =
  let idx = id lsr gen_bits in
  if idx < 0 || idx >= t.pool_len then false
  else begin
    let ev = t.pool.(idx) in
    if ev.live && ev.gen land gen_mask = id land gen_mask then begin
      ev.live <- false;
      t.live_count <- t.live_count - 1;
      t.dead_count <- t.dead_count + 1;
      (* Cancelled events stay in the heap until popped; sweep lazily
         once they outnumber the live ones so cancel-heavy runs do not
         carry the dead weight. *)
      if t.dead_count > t.live_count && t.size >= compact_min_occupancy
      then compact t;
      true
    end
    else false
  end

let rec pop t =
  if t.size = 0 then false
  else begin
    let root = t.heap.(0) in
    heap_drop_root t;
    if root.live then begin
      t.live_count <- t.live_count - 1;
      t.popped_time <- root.time;
      t.popped_action <- root.action;
      t.popped_cls <- root.cls;
      release t root;
      true
    end
    else begin
      (* Cancelled en route: recycle and keep looking. *)
      t.dead_count <- t.dead_count - 1;
      release t root;
      pop t
    end
  end

let popped_time t = t.popped_time
let popped_action t = t.popped_action
let popped_cls t = t.popped_cls
