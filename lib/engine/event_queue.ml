(* Monomorphic event queue: a hierarchical bucketed timing wheel
   (Varghese–Lauck style) over pooled event records, keyed on (time, seq).
   This is the simulator's hot path; the wheel replaces the PR 4 implicit
   4-ary min-heap because the event mix is timer-dominated — RTO rearms,
   pacing ticks, link serialization completions — which is exactly the
   workload wheels make near-O(1):

   - schedule is a level computation (one xor, a short compare chain) and
     a list append: no O(log n) sift;
   - cancel unlinks the slot from its bucket's intrusive doubly-linked
     list and recycles it immediately: no dead weight carried to the next
     compaction sweep, no sweep at all for wheel-resident events;
   - pop finds the next occupied 1 ns tick through per-level occupancy
     bitmasks (find-first-set, not a scan) and cascades higher-level
     buckets down only when the virtual clock actually crosses into
     them — each event is touched at most [levels] times over its life;
   - event records come from a free-list pool, so steady schedule/fire
     and schedule/cancel churn allocates nothing;
   - ids handed to callers are immediate ints carrying a generation
     stamp, so a stale [cancel] (after the record was recycled) is
     detected and ignored instead of corrupting an unrelated event.

   {b Pop order is bit-identical to the heap it replaced}: strict
   (key_ns, seq) — earlier instants first, schedule order within an
   instant. Within a 1 ns level-0 bucket every resident shares the same
   key, so the bucket list is kept in ascending [seq] order (direct adds
   append — seq is monotone — and cascaded arrivals insert from the
   tail); popping the head is therefore the global minimum. The qcheck
   suite proves the equivalence against both a naive model and the
   retained generic {!Heap}.

   Two small (key, seq) binary min-heaps back the wheel up at its edges:

   - {e overdue}: events scheduled at or before an instant the wheel has
     already passed (never produced by {!Sim}, which forbids scheduling
     in the past, but the queue keeps the total order honest under
     arbitrary call sequences);
   - {e overflow}: events beyond the wheel horizon (2^30 ns ≈ 1.07 s
     past the current position). When the wheel drains below them the
     clock jumps to the earliest overflow block and that block's events
     cascade into the wheel — in heap order, so same-instant residents
     arrive seq-sorted.

   Heap-resident events cancel lazily (marked dead, skipped at the root,
   swept when the dead outnumber half the heap); wheel-resident events —
   the hot case — cancel in O(1). *)

(* Wheel geometry: [levels] levels of [1 lsl slot_bits] buckets. Level 0
   buckets are one tick (1 ns) wide; level l buckets span 2^(5l) ns. The
   wheel as a whole covers keys sharing the current position's bits at or
   above [horizon_bits]; everything further out is overflow. *)
let slot_bits = 5
let slots = 1 lsl slot_bits (* 32 *)
let slot_mask = slots - 1
let levels = 6
let horizon_bits = slot_bits * levels (* 30 *)

(* Location codes for [where]: a bucket index [level * slots + slot], or
   one of these. *)
let loc_none = -1
let loc_overdue = -2
let loc_overflow = -3

type event = {
  mutable key_ns : int;
      (* Scheduled instant in integer nanoseconds; the primary sort key.
         An [int] (not [int64]) so compares are single unboxed compares —
         fine for any simulated instant below 2^62 ns. *)
  mutable seq : int;  (* FIFO tie-break: schedule order within an instant. *)
  mutable time : Time.t;
      (* The same instant, boxed once at schedule time, so firing can
         advance the clock without re-boxing an int64. *)
  mutable action : unit -> unit;
  mutable cls : int;
      (* {!Event_class} index tag, carried for the self-profiler. An
         immediate int: tagging costs one mutable-field store. *)
  mutable live : bool;  (* Scheduled and not cancelled, not yet fired. *)
  mutable gen : int;  (* Bumped on every release; validates ids. *)
  mutable next_free : int;  (* Free-list link (pool index), -1 = end. *)
  mutable where : int;  (* Bucket index, or a [loc_*] code. *)
  mutable next_ev : int;  (* Intrusive bucket-list links (pool indices). *)
  mutable prev_ev : int;
  idx : int;  (* This record's pool slot; never changes. *)
}

type id = int

let noop () = ()

(* id layout: [idx lsl gen_bits | gen mod 2^gen_bits]. A stale id only
   aliases a reused slot after the same record has been recycled 2^32
   times while the caller still holds the old id. *)
let gen_bits = 32
let gen_mask = (1 lsl gen_bits) - 1

(* The packing needs idx and gen to occupy disjoint bit ranges of a
   native int. On a 32-bit target (or js_of_ocaml) [idx lsl 32] is 0
   for every slot, so all ids would alias pool slot 0 and stale-cancel
   detection would silently break — fail loudly instead. *)
let () =
  if Sys.int_size < 63 then
    failwith "Event_queue: requires 63-bit native ints (32-bit unsupported)"

let id_of ev = (ev.idx lsl gen_bits) lor (ev.gen land gen_mask)
let none = -1

(* A (key, seq) binary min-heap of pool indices: the overdue / overflow
   backstops. Cancelled entries stay until the root sweep or a compaction
   reaches them (the wheel's own buckets never hold dead events). *)
type mini = {
  mutable arr : int array;
  mutable n : int;
  mutable dead : int;
}

type t = {
  mutable pool : event array;  (* pool slot -> record, in [0, pool_len) *)
  mutable pool_len : int;
  mutable free_head : int;  (* head of the free list, -1 = empty *)
  mutable next_seq : int;
  mutable live_count : int;
  mutable pos : int;
      (* The wheel's virtual position (ns): the key of the last event
         popped out of the wheel, monotone. Bucket membership is always
         relative to [pos]. *)
  head : int array;  (* bucket -> first pool index, -1 = empty *)
  tail : int array;  (* bucket -> last pool index, -1 = empty *)
  masks : int array;  (* level -> occupancy bitmask over its 32 slots *)
  overdue : mini;
  overflow : mini;
  mutable popped_time : Time.t;
  mutable popped_action : unit -> unit;
  mutable popped_cls : int;
}

let create ?(capacity = 1024) () =
  let capacity = Stdlib.max capacity 1 in
  {
    pool = [||];
    pool_len = 0;
    free_head = -1;
    next_seq = 0;
    live_count = 0;
    pos = 0;
    head = Array.make (levels * slots) (-1);
    tail = Array.make (levels * slots) (-1);
    masks = Array.make levels 0;
    overdue = { arr = Array.make 8 (-1); n = 0; dead = 0 };
    overflow = { arr = Array.make capacity (-1); n = 0; dead = 0 };
    popped_time = Time.zero;
    popped_action = noop;
    popped_cls = 0;
  }

let live t = t.live_count
let pool_size t = t.pool_len

(* Occupancy actually held: live events plus cancelled heap residents not
   yet swept (wheel cancels recycle immediately and never linger). *)
let length t = t.live_count + t.overdue.dead + t.overflow.dead

let overdue_len t = t.overdue.n
let overflow_len t = t.overflow.n

(* --- pool ---------------------------------------------------------- *)

let new_event idx =
  {
    key_ns = 0;
    seq = 0;
    time = Time.zero;
    action = noop;
    cls = 0;
    live = false;
    gen = 0;
    next_free = -1;
    where = loc_none;
    next_ev = -1;
    prev_ev = -1;
    idx;
  }

let grow_pool t =
  let cap = Stdlib.max 8 (2 * Array.length t.pool) in
  let data = Array.make cap (new_event (-1)) in
  Array.blit t.pool 0 data 0 t.pool_len;
  t.pool <- data

let alloc t =
  if t.free_head >= 0 then begin
    let ev = t.pool.(t.free_head) in
    t.free_head <- ev.next_free;
    ev.next_free <- -1;
    ev
  end
  else begin
    if t.pool_len = Array.length t.pool then grow_pool t;
    let ev = new_event t.pool_len in
    t.pool.(t.pool_len) <- ev;
    t.pool_len <- t.pool_len + 1;
    ev
  end

(* A record is released exactly once, when it leaves the structure
   (fired, cancelled out of the wheel, or swept out of a backstop heap).
   The generation bump invalidates outstanding ids; dropping the
   action/time references keeps the pool from pinning closures the
   caller is done with. *)
let release t ev =
  ev.gen <- ev.gen + 1;
  ev.live <- false;
  ev.action <- noop;
  ev.time <- Time.zero;
  ev.where <- loc_none;
  ev.next_ev <- -1;
  ev.prev_ev <- -1;
  ev.next_free <- t.free_head;
  t.free_head <- ev.idx

(* --- find-first-set ------------------------------------------------- *)

(* De Bruijn multiply: index of the lowest set bit of a 32-bit mask in a
   handful of arithmetic ops, no loop. The [land 0xFFFFFFFF] is load-
   bearing — the classic constant relies on 32-bit truncation. *)
let debruijn = 0x077CB531

let ctz_table =
  let tbl = Array.make 32 0 in
  for i = 0 to 31 do
    tbl.((((1 lsl i) * debruijn) land 0xFFFFFFFF) lsr 27) <- i
  done;
  tbl

let ctz m = ctz_table.((((m land (-m)) * debruijn) land 0xFFFFFFFF) lsr 27)

(* Smallest level whose bucket span covers [x] = key lxor pos. Written as
   a compare chain: branch-predictable, no loop, no table. *)
let level_of_xor x =
  if x < 0x20 then 0
  else if x < 0x400 then 1
  else if x < 0x8000 then 2
  else if x < 0x100000 then 3
  else if x < 0x2000000 then 4
  else 5

(* --- wheel buckets -------------------------------------------------- *)

(* Append [ev] keeping the bucket's ascending-seq invariant. Direct adds
   carry the highest seq ever issued, so the tail check succeeds
   immediately; only cascaded arrivals (older events re-filed under a
   new position) ever walk backwards, and only past same-instant
   residents scheduled after them. *)
let bucket_insert t ev b =
  let pool = t.pool in
  ev.where <- b;
  let tl = t.tail.(b) in
  if tl < 0 then begin
    ev.prev_ev <- -1;
    ev.next_ev <- -1;
    t.head.(b) <- ev.idx;
    t.tail.(b) <- ev.idx;
    t.masks.(b lsr slot_bits) <-
      t.masks.(b lsr slot_bits) lor (1 lsl (b land slot_mask))
  end
  else if pool.(tl).seq < ev.seq then begin
    ev.prev_ev <- tl;
    ev.next_ev <- -1;
    pool.(tl).next_ev <- ev.idx;
    t.tail.(b) <- ev.idx
  end
  else begin
    (* Cascaded arrival older than some residents: walk back to its spot. *)
    let p = ref pool.(tl).prev_ev in
    while !p >= 0 && pool.(!p).seq > ev.seq do
      p := pool.(!p).prev_ev
    done;
    let prev = !p in
    let next = if prev < 0 then t.head.(b) else pool.(prev).next_ev in
    ev.prev_ev <- prev;
    ev.next_ev <- next;
    pool.(next).prev_ev <- ev.idx;
    if prev < 0 then t.head.(b) <- ev.idx else pool.(prev).next_ev <- ev.idx
  end

let bucket_unlink t ev =
  let b = ev.where in
  let pool = t.pool in
  if ev.prev_ev >= 0 then pool.(ev.prev_ev).next_ev <- ev.next_ev
  else t.head.(b) <- ev.next_ev;
  if ev.next_ev >= 0 then pool.(ev.next_ev).prev_ev <- ev.prev_ev
  else t.tail.(b) <- ev.prev_ev;
  if t.head.(b) < 0 then
    t.masks.(b lsr slot_bits) <-
      t.masks.(b lsr slot_bits) land lnot (1 lsl (b land slot_mask))

(* File a live event whose key shares the current position's top block.
   The level is the highest 5-bit block where key and pos differ; the
   slot is the key's bits at that level. Keys at [pos] itself land in
   level 0, slot [pos land 31]. *)
let wheel_insert t ev =
  let l = level_of_xor (ev.key_ns lxor t.pos) in
  let s = (ev.key_ns lsr (l * slot_bits)) land slot_mask in
  bucket_insert t ev ((l lsl slot_bits) lor s)

(* --- backstop heaps ------------------------------------------------- *)

let mini_less pool a b =
  let ea = pool.(a) and eb = pool.(b) in
  ea.key_ns < eb.key_ns || (ea.key_ns = eb.key_ns && ea.seq < eb.seq)

let mini_push t (m : mini) ev =
  if m.n = Array.length m.arr then begin
    let arr = Array.make (2 * m.n) (-1) in
    Array.blit m.arr 0 arr 0 m.n;
    m.arr <- arr
  end;
  let pool = t.pool in
  let arr = m.arr in
  let i = ref m.n in
  m.n <- m.n + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) lsr 1 in
    if mini_less pool ev.idx arr.(p) then begin
      arr.(!i) <- arr.(p);
      i := p
    end
    else continue := false
  done;
  arr.(!i) <- ev.idx

let mini_drop_root pool (m : mini) =
  m.n <- m.n - 1;
  let last = m.arr.(m.n) in
  m.arr.(m.n) <- -1;
  if m.n > 0 then begin
    let arr = m.arr in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let c1 = (2 * !i) + 1 in
      if c1 >= m.n then continue := false
      else begin
        let c =
          if c1 + 1 < m.n && mini_less pool arr.(c1 + 1) arr.(c1) then c1 + 1
          else c1
        in
        if mini_less pool arr.(c) last then begin
          arr.(!i) <- arr.(c);
          i := c
        end
        else continue := false
      end
    done;
    arr.(!i) <- last
  end

(* Root pool index after recycling any dead entries sitting on top, or
   -1 when the heap has no live entry reachable without a full sweep
   (dead entries below live ones are left for the compaction policy). *)
let rec mini_min t (m : mini) =
  if m.n = 0 then -1
  else begin
    let r = m.arr.(0) in
    if t.pool.(r).live then r
    else begin
      mini_drop_root t.pool m;
      m.dead <- m.dead - 1;
      release t t.pool.(r);
      mini_min t m
    end
  end

(* Drop every dead entry, then bottom-up heapify in O(n). *)
let mini_compact t (m : mini) =
  let pool = t.pool in
  let j = ref 0 in
  for i = 0 to m.n - 1 do
    let e = m.arr.(i) in
    if pool.(e).live then begin
      m.arr.(!j) <- e;
      incr j
    end
    else release t pool.(e)
  done;
  for i = !j to m.n - 1 do
    m.arr.(i) <- -1
  done;
  m.n <- !j;
  m.dead <- 0;
  for i = ((m.n - 2) asr 1) downto 0 do
    let v = m.arr.(i) in
    let k = ref i in
    let continue = ref true in
    while !continue do
      let c1 = (2 * !k) + 1 in
      if c1 >= m.n then continue := false
      else begin
        let c =
          if c1 + 1 < m.n && mini_less pool m.arr.(c1 + 1) m.arr.(c1) then
            c1 + 1
          else c1
        in
        if mini_less pool m.arr.(c) v then begin
          m.arr.(!k) <- m.arr.(c);
          k := c
        end
        else continue := false
      end
    done;
    m.arr.(!k) <- v
  done

(* --- scheduling ----------------------------------------------------- *)

let file t ev =
  let key = ev.key_ns in
  if key < t.pos then begin
    ev.where <- loc_overdue;
    mini_push t t.overdue ev
  end
  else if key lsr horizon_bits = t.pos lsr horizon_bits then wheel_insert t ev
  else begin
    ev.where <- loc_overflow;
    mini_push t t.overflow ev
  end

let add_cls t ~time ~cls action =
  let ev = alloc t in
  ev.key_ns <- Time.to_int_ns time;
  ev.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  ev.time <- time;
  ev.action <- action;
  ev.cls <- cls;
  ev.live <- true;
  t.live_count <- t.live_count + 1;
  file t ev;
  id_of ev

(* [~cls] is a required label (not optional): an optional int argument
   would box [Some cls] on every call, and this is the hot path. *)
let add t ~time action = add_cls t ~time ~cls:0 action

let cancel t id =
  let idx = id lsr gen_bits in
  if idx < 0 || idx >= t.pool_len then false
  else begin
    let ev = t.pool.(idx) in
    if ev.live && ev.gen land gen_mask = id land gen_mask then begin
      t.live_count <- t.live_count - 1;
      if ev.where >= 0 then begin
        (* Wheel resident: unlink and recycle immediately — the O(1)
           cancel is the point of the wheel for rearm-heavy timers. *)
        bucket_unlink t ev;
        release t ev
      end
      else begin
        (* Heap resident: mark dead, sweep lazily once corpses dominate. *)
        ev.live <- false;
        let m = if ev.where = loc_overdue then t.overdue else t.overflow in
        m.dead <- m.dead + 1;
        if m.n >= 64 && 2 * m.dead > m.n then mini_compact t m
      end;
      true
    end
    else false
  end

(* --- the wheel's virtual clock -------------------------------------- *)

(* Pull the contents of bucket [b] (level >= 1) back through [file]: with
   [pos] just advanced into the bucket's span, every resident re-files at
   a strictly lower level. List order is preserved; same-instant events
   restore seq order via [bucket_insert]'s tail walk. *)
let cascade t b =
  let pool = t.pool in
  let cur = ref t.head.(b) in
  t.head.(b) <- -1;
  t.tail.(b) <- -1;
  t.masks.(b lsr slot_bits) <-
    t.masks.(b lsr slot_bits) land lnot (1 lsl (b land slot_mask));
  while !cur >= 0 do
    let ev = pool.(!cur) in
    cur := ev.next_ev;
    wheel_insert t ev
  done

(* Pool index of the wheel's earliest event — the head of the first
   occupied level-0 bucket at or after [pos] — or -1 when the wheel is
   empty. Advances [pos] to the event's tick, cascading any higher-level
   bucket the position crosses into; skipped slots are provably empty, so
   the advance never loses an event. Each iteration either returns or
   strictly descends a level, bounding the loop at [levels] steps. *)
let wheel_min t =
  let result = ref (-2) in
  while !result = -2 do
    let m0 = t.masks.(0) land (-1 lsl (t.pos land slot_mask)) in
    if m0 <> 0 then begin
      let s = ctz m0 in
      t.pos <- (t.pos land lnot slot_mask) lor s;
      result := t.head.(s)
    end
    else begin
      (* Level 0 exhausted: find the lowest level with a bucket strictly
         ahead of the position's slot there. Within one parent block,
         higher slot = later span, so masking below (slot + 1) is exact —
         no wraparound case exists. *)
      let l = ref 1 in
      let found = ref (-1) in
      while !found < 0 && !l < levels do
        let sl = (t.pos lsr (!l * slot_bits)) land slot_mask in
        let m = t.masks.(!l) land (-1 lsl (sl + 1)) in
        if m <> 0 then found := (!l lsl slot_bits) lor ctz m else incr l
      done;
      if !found < 0 then result := -1
      else begin
        let l = !found lsr slot_bits and s = !found land slot_mask in
        (* Enter the bucket's span: keep the bits above it, set its slot,
           zero everything below. *)
        let above = slot_bits * (l + 1) in
        t.pos <- ((t.pos lsr above) lsl above) lor (s lsl (slot_bits * l));
        cascade t !found
      end
    end
  done;
  !result

(* Jump the wheel to the earliest overflow block and file that whole
   block's events. Heap pops deliver them in (key, seq) order, so
   same-instant residents arrive seq-sorted. Only called when the wheel
   is empty, so the position jump cannot skip a wheel event. *)
let drain_overflow t root =
  let pool = t.pool in
  t.pos <- pool.(root).key_ns;
  let block = t.pos lsr horizon_bits in
  let continue = ref true in
  while !continue do
    let r = mini_min t t.overflow in
    if r >= 0 && pool.(r).key_ns lsr horizon_bits = block then begin
      mini_drop_root pool t.overflow;
      wheel_insert t pool.(r)
    end
    else continue := false
  done

(* --- pop ------------------------------------------------------------ *)

(* The three sources, cheapest first. The wheel beats the overflow heap
   by construction (overflow keys live beyond the wheel's whole span);
   only the overdue heap can undercut a wheel event. *)

let pop t =
  let w = wheel_min t in
  let w =
    if w >= 0 then w
    else begin
      let o = mini_min t t.overflow in
      if o < 0 then -1
      else begin
        let od = mini_min t t.overdue in
        if od >= 0 && mini_less t.pool od o then -1
        else begin
          drain_overflow t o;
          wheel_min t
        end
      end
    end
  in
  let best =
    let od = mini_min t t.overdue in
    if od < 0 then w
    else if w < 0 || mini_less t.pool od w then begin
      mini_drop_root t.pool t.overdue;
      od
    end
    else w
  in
  if best < 0 then false
  else begin
    let ev = t.pool.(best) in
    if ev.where >= 0 then bucket_unlink t ev;
    t.live_count <- t.live_count - 1;
    t.popped_time <- ev.time;
    t.popped_action <- ev.action;
    t.popped_cls <- ev.cls;
    release t ev;
    true
  end

(* Key of the next event [pop] would fire, or [max_int] when no live
   event remains. Dead heap roots met on the way are recycled — exactly
   the entries the next [pop] would skip — so the result is the true
   live minimum and the run-until loop never fires a live event past its
   deadline because a corpse sat in front of it. *)
let live_min_key_ns t =
  let w = wheel_min t in
  let k = if w >= 0 then t.pool.(w).key_ns else max_int in
  let k =
    if w >= 0 then k
    else begin
      let o = mini_min t t.overflow in
      if o >= 0 then t.pool.(o).key_ns else max_int
    end
  in
  let od = mini_min t t.overdue in
  if od >= 0 && t.pool.(od).key_ns < k then t.pool.(od).key_ns else k

let popped_time t = t.popped_time
let popped_action t = t.popped_action
let popped_cls t = t.popped_cls
