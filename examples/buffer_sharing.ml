(* Shared-buffer walkthrough: what a Dynamic-Threshold memory pool does
   to admission, and how the paper's marking policies behave when their
   thresholds ride on the moving effective limit.

   Part 1 drives Net.Buffer_mgr directly: two ports contending for one
   pool, each port's admission limit shrinking as the other fills.

   Part 2 runs the long-lived dumbbell on a 1-BDP shared pool under
   DCTCP and DT-DCTCP marking at fractions of the effective limit, plus
   loss-based NewReno, which only notices the buffer when admission
   fails. Everything is seeded: every run prints the same numbers.

   Run with: dune exec examples/buffer_sharing.exe *)

module Time = Engine.Time
module B = Net.Buffer_mgr
module L = Workloads.Longlived

let part1 () =
  print_endline "-- Part 1: two ports, one 12 KB pool, alpha = 1 --";
  let pool = B.create_pool ~pool_bytes:12_000 ~alpha:1.0 in
  let a = B.attach pool and b = B.attach pool in
  let show step =
    Printf.printf
      "%-28s occ(a) %5d  occ(b) %5d  limit(a) %5d  limit(b) %5d\n" step
      (B.occupancy a) (B.occupancy b) (B.effective_limit a)
      (B.effective_limit b)
  in
  show "empty pool";
  (* Port a enqueues four packets; port b's limit shrinks even though b
     itself never saw a packet — the Dynamic Threshold per-port limit is
     alpha x free pool bytes (Choudhury-Hahne). *)
  for _ = 1 to 4 do
    ignore (B.admit a 1500)
  done;
  show "a holds 4 packets";
  ignore (B.admit b 1500);
  ignore (B.admit b 1500);
  show "b joins with 2";
  (* The pool is at 9000/12000: each port may only grow to the moving
     limit, so a's next admission is judged against 3000 free bytes. *)
  Printf.printf "a admits another packet? %b\n" (B.admit a 1500);
  Printf.printf "a admits a second one?   %b\n" (B.admit a 1500);
  show "pool saturating";
  (* Dequeues at either port raise everyone's limit again. *)
  B.release b 1500;
  B.release b 1500;
  show "b drained";
  Printf.printf "pool high water %d B, rejects %d\n\n" (B.pool_high_water a)
    (B.pool_rejects a)

let bdp = 125_000 (* 10 Gbps x 100 us / 8 *)

let config =
  {
    L.default_config with
    L.n_flows = 10;
    buffer_bytes = bdp;
    warmup = Time.span_of_ms 50.;
    measure = Time.span_of_ms 150.;
  }

let run label proto ~buffer =
  let metrics = Obs.Metrics.create () in
  let r = L.run ~metrics ~buffer proto config in
  let metric key =
    match List.assoc_opt key (Obs.Metrics.snapshot metrics) with
    | Some v -> int_of_float v
    | None -> 0
  in
  Printf.printf
    "%-34s queue %5.1f +- %4.1f pkts  util %.3f  drops %4d  pool peak %3d \
     pkts\n"
    label r.L.mean_queue_pkts r.L.std_queue_pkts r.L.utilization r.L.drops
    (metric "buffer.pool_high_water" / config.L.segment_bytes)

let part2 () =
  print_endline
    "-- Part 2: 10 flows, 10 Gbps dumbbell, one 1-BDP shared pool --";
  let pool = B.Dynamic_threshold { pool_bytes = bdp; alpha = 1.0 } in
  (* The scaled policies mark at fractions of the effective limit; with
     alpha = 1 and the queue parked at fraction f of the limit the
     fixed point is T = alpha x B / (1 + alpha x f), so DCTCP's K =
     0.25 x limit sits near 0.25 x 100_000 B = 16.7 packets. *)
  run "DCTCP, K = 0.25 x limit" (Dctcp.Protocol.dctcp_scaled ~k_frac:0.25 ())
    ~buffer:pool;
  (* DT-DCTCP's hysteresis band (0.20, 0.30) x limit rides the same
     moving threshold and trades a slightly lower mean for fewer
     full-band swings. *)
  run "DT-DCTCP, band (0.20,0.30) x limit"
    (Dctcp.Protocol.dt_dctcp_scaled ~k1_frac:0.2 ~k2_frac:0.3 ())
    ~buffer:pool;
  (* The loss-based competitor ignores ECN entirely: it fills the pool
     until the Dynamic Threshold rejects, loses a burst, halves once
     per episode (NewReno), and repeats — deep queues and real drops. *)
  run "NewReno (loss-based)" (Dctcp.Protocol.newreno ()) ~buffer:pool;
  (* Same transport on the historical private buffer for contrast: a
     Static queue of the same 1-BDP capacity behaves exactly as before
     the buffer manager existed. *)
  run "DCTCP, static 1-BDP buffer"
    (Dctcp.Protocol.dctcp_pkts ~k:(bdp / 4 / 1500) ())
    ~buffer:B.Static

let () =
  part1 ();
  part2 ();
  print_endline
    "\nThe full sweep (pool sizes x alpha x protocols) is the registry's\n\
     fig_buffer family: dune exec bin/dtsim.exe -- sweep --name fig_buffer -j 4"
