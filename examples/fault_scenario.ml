(* Fault injection walkthrough: run the same DT-DCTCP dumbbell three
   times — fault-free, through a 20 ms bottleneck outage, and behind a
   mark-dropping ("non-ECN") switch — and print how the queue statistics
   move. Everything is seeded, so every run of this example prints the
   same numbers.

   Run with: dune exec examples/fault_scenario.exe *)

module Sim = Engine.Sim
module Time = Engine.Time
module Plan = Fault.Plan
module L = Workloads.Longlived

let config =
  {
    L.default_config with
    L.n_flows = 20;
    warmup = Time.span_of_ms 50.;
    measure = Time.span_of_ms 150.;
  }

let run label ?faults () =
  let proto = Dctcp.Protocol.dt_dctcp_pkts ~k1:30 ~k2:50 () in
  let r = L.run ?faults proto config in
  Printf.printf
    "%-28s mean queue %5.1f pkts  stddev %5.2f  util %.3f  timeouts %d\n"
    label r.L.mean_queue_pkts r.L.std_queue_pkts r.L.utilization r.L.timeouts

let () =
  print_endline
    "Fault injection: 20 DT-DCTCP flows, 10 Gbps dumbbell, 100 us RTT";

  (* Baseline: the ideal fabric every figure in the paper assumes. *)
  run "fault-free" ();

  (* A 20 ms outage in the middle of the measurement window. The link
     pauses (packets queue, they are not lost); senders discover the
     outage through RTO, back off exponentially, and re-converge after
     the link returns. *)
  run "20 ms bottleneck outage"
    ~faults:
      {
        Plan.none with
        flaps =
          [
            {
              Plan.down_at = Time.span_of_ms 100.;
              up_at = Time.span_of_ms 120.;
            };
          ];
      }
    ();

  (* A switch that loses half its CE marks: the queue runs higher
     because half the congestion signal never reaches the senders. *)
  run "50% of ECN marks dropped"
    ~faults:{ Plan.none with suppression = Plan.Suppress_prob 0.5 }
    ();

  (* Plans are plain data with a strict JSON round-trip, so any faulted
     scenario can be stored in an Exp.Spec (key "faults") and re-run
     bit-for-bit from its manifest. *)
  let plan = { Plan.none with loss_rate = 0.01 } in
  Printf.printf "\na plan as JSON: %s\n" (Plan.to_string plan);
  print_endline
    "Same registry machinery as the paper sweeps: try\n\
    \  dune exec bin/dtsim.exe -- sweep --name robust_loss -j 4"
