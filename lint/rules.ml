open Parsetree

type rule =
  | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10
  | R11 | R12 | R13 | R14

type violation = {
  rule : rule;
  file : string;
  line : int;
  message : string;
  notes : string list;
}

exception Parse_error of string * int * string

let syntactic_rules = [ R1; R2; R3; R4; R5; R6; R7; R8; R9; R10 ]
let typed_rules = [ R11; R12; R13; R14 ]
let all_rules = syntactic_rules @ typed_rules

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"
  | R11 -> "R11"
  | R12 -> "R12"
  | R13 -> "R13"
  | R14 -> "R14"

let rule_of_id s =
  match String.uppercase_ascii (String.trim s) with
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "R8" -> Some R8
  | "R9" -> Some R9
  | "R10" -> Some R10
  | "R11" -> Some R11
  | "R12" -> Some R12
  | "R13" -> Some R13
  | "R14" -> Some R14
  | _ -> None

let rule_doc = function
  | R1 ->
      "no Random.* outside lib/engine/rng.ml; use the seeded Engine.Rng so \
       runs are reproducible"
  | R2 ->
      "no float = / <> / == / !=; compare times with Time.compare and floats \
       with an epsilon"
  | R3 ->
      "no polymorphic compare / Stdlib.compare / Hashtbl.hash; use an \
       explicit monomorphic comparator"
  | R4 ->
      "no print_* / Printf.printf / Format.printf under lib/; log through \
       Logs or Net.Trace"
  | R5 -> "every lib/**/*.ml must have a matching .mli"
  | R6 ->
      "no assert false or bare failwith \"\" in lib/engine and lib/net; \
       failures must carry a message with context"
  | R7 ->
      "no wall-clock reads (Sys.time, Unix.gettimeofday, Unix.time) outside \
       lib/obs; simulation logic must use Engine.Time, profiling must go \
       through Obs.Profile"
  | R8 ->
      "no Domain.* / Thread.* / Unix.fork outside lib/exp; Exp.Runner is \
       the only sanctioned parallelism site — simulations stay single-domain \
       so runs are bit-reproducible"
  | R9 ->
      "no Obj.magic outside lib/engine/; the engine's pooled containers are \
       the only audited placeholder-value sites — anywhere else it defeats \
       the type system"
  | R10 ->
      "no Rng.create / Rng.split outside lib/engine, lib/fault, \
       lib/workloads and lib/exp; ad-hoc streams fork the deterministic \
       seed tree, so new draws must come from an owner layer's seeded \
       stream"
  | R11 ->
      "typed: no call chain from Random.*, Hashtbl.hash, polymorphic \
       compare or a wall-clock read into lib/engine|net|tcp|dctcp|fault|\
       workloads — wrapper functions are followed transitively across \
       modules, closing the laundering gap in R1/R3/R7"
  | R12 ->
      "typed: no top-level mutable state (ref, array, Hashtbl, Buffer, \
       mutable record fields) reachable from a Domain.spawn-ing function \
       unless it is Atomic or carries a justified per-domain-ownership \
       annotation — the guard rail for Exp.Runner's parallel sweeps"
  | R13 ->
      "typed: no raw int64 arithmetic on Engine.Time.t instants (a \
       coercion of Time.t, or Int64 ops fed by Time.to_ns) outside \
       lib/engine/time.ml; instants carry a unit, spans are plain int64"
  | R14 ->
      "typed: no per-call allocation in event hot-path functions of \
       lib/engine and lib/net — partial applications, environment-\
       capturing closures and boxed-float returns burn the ~13 minor \
       words/event budget"

(* --- Path scoping ------------------------------------------------------ *)

type scope = {
  in_lib : bool;
  in_hot_path : bool;
  is_rng : bool;
  is_obs : bool;
  is_exp : bool;
  is_engine : bool;
  is_rng_owner : bool;
}

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let rec after_lib = function
  | "lib" :: rest -> Some rest
  | _ :: rest -> after_lib rest
  | [] -> None

let scope_of_file file =
  match after_lib (segments file) with
  | None ->
      {
        in_lib = false;
        in_hot_path = false;
        is_rng = false;
        is_obs = false;
        is_exp = false;
        is_engine = false;
        is_rng_owner = false;
      }
  | Some rest ->
      let in_hot_path =
        match rest with ("engine" | "net") :: _ -> true | _ -> false
      in
      let is_rng = match rest with [ "engine"; "rng.ml" ] -> true | _ -> false in
      let is_obs = match rest with "obs" :: _ -> true | _ -> false in
      let is_exp = match rest with "exp" :: _ -> true | _ -> false in
      let is_engine = match rest with "engine" :: _ -> true | _ -> false in
      let is_rng_owner =
        match rest with
        | ("engine" | "fault" | "workloads" | "exp") :: _ -> true
        | _ -> false
      in
      { in_lib = true; in_hot_path; is_rng; is_obs; is_exp; is_engine;
        is_rng_owner }

(* --- Suppression comments ---------------------------------------------- *)

type allow = All | Only of rule list
type suppressions = (int, allow) Hashtbl.t

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* Recognise [(* dtlint: allow R2 R4 *)] (or [allow all]) anywhere on a
   line; the listed rules are suppressed for that line only. *)
let suppressions source =
  let tbl = Hashtbl.create 8 in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      match find_sub line "dtlint:" with
      | None -> ()
      | Some at -> (
          let rest = String.sub line at (String.length line - at) in
          match find_sub rest "allow" with
          | None -> ()
          | Some a ->
              let tail =
                String.sub rest (a + 5) (String.length rest - a - 5)
              in
              let tokens =
                String.map
                  (fun c -> if c = ',' || c = '*' || c = ')' then ' ' else c)
                  tail
                |> String.split_on_char ' '
                |> List.filter (fun t -> t <> "")
              in
              let allow =
                if List.exists (fun t -> String.lowercase_ascii t = "all") tokens
                then All
                else Only (List.filter_map rule_of_id tokens)
              in
              Hashtbl.replace tbl (i + 1) allow))
    lines;
  tbl

let suppressed (sup : suppressions) rule ~line =
  match Hashtbl.find_opt sup line with
  | Some All -> true
  | Some (Only rs) -> List.mem rule rs
  | None -> false

(* --- Expression classification ----------------------------------------- *)

let flatten lid = try Longident.flatten lid with _ -> []

(* Drop the [Stdlib] prefix so [Stdlib.compare] and [compare] match alike. *)
let norm lid =
  match flatten lid with "Stdlib" :: rest -> rest | parts -> parts

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

(* Well-known float-returning functions, for the R2 heuristic. Bare names
   must be unambiguous; module-qualified names match on the last component
   only for [Float.*]. *)
let float_fns =
  [
    "sqrt"; "exp"; "log"; "log10"; "expm1"; "log1p"; "cos"; "sin"; "tan";
    "acos"; "asin"; "atan"; "atan2"; "cosh"; "sinh"; "tanh"; "ceil"; "floor";
    "abs_float"; "mod_float"; "float_of_int"; "float_of_string"; "ldexp";
    "to_sec"; "span_to_sec"; "to_float";
  ]

let float_consts =
  [ "infinity"; "nan"; "neg_infinity"; "epsilon_float"; "max_float"; "min_float" ]

(* Syntactic "this is a float" evidence for R2. The parsetree is untyped,
   so this is a heuristic: float literals, float arithmetic, float type
   annotations and calls to well-known float producers. *)
let rec is_floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []); _ })
    ->
      true
  | Pexp_ident { txt; _ } -> (
      match norm txt with
      | [ c ] -> List.mem c float_consts
      | [ "Float"; f ] -> List.mem f float_consts || f = "pi"
      | _ -> false)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match norm txt with
      | [ op ] when List.mem op float_ops -> true
      | [ "Float"; _ ] -> true
      | parts -> (
          match List.rev parts with
          | last :: _ -> List.mem last float_fns
          | [] -> false))
  | Pexp_ifthenelse (_, a, Some b) -> is_floatish a || is_floatish b
  | _ -> false

let is_wall_clock parts =
  match parts with
  | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] -> true
  | _ -> false

let is_print_fn parts =
  match parts with
  | [ ("print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_int" | "print_float" | "print_bytes") ] ->
      true
  | [ "Printf"; "printf" ] -> true
  | [ "Format"; f ] ->
      (match find_sub f "print" with Some 0 -> true | _ -> f = "printf")
  | _ -> false

(* --- The linter itself -------------------------------------------------- *)

let parse_structure ~filename source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf filename;
  try Parse.implementation lexbuf
  with exn ->
    let line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum in
    let msg =
      match exn with
      | Syntaxerr.Error _ -> "syntax error"
      | e -> Printexc.to_string e
    in
    raise (Parse_error (filename, line, msg))

(* Does the file itself bind a value called [compare]? If so, bare
   [compare] refers to that monomorphic binding, not Stdlib's polymorphic
   one, and R3 must not fire (cf. Engine.Time). *)
let binds_compare str =
  let found = ref false in
  let pat sub p =
    (match p.ppat_desc with
    | Ppat_var { txt = "compare"; _ } -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.pat sub p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.structure it str;
  !found

let lint_source ?(rules = all_rules) ~filename source =
  let sc = scope_of_file filename in
  let active r = List.mem r rules in
  let sup = suppressions source in
  let out = ref [] in
  let emit rule loc message =
    let line = loc.Location.loc_start.Lexing.pos_lnum in
    if not (suppressed sup rule ~line) then
      out := { rule; file = filename; line; message; notes = [] } :: !out
  in
  let str = parse_structure ~filename source in
  let compare_is_local = binds_compare str in
  let check_ident loc lid =
    let parts = norm lid in
    if active R1 && (not sc.is_rng) && List.mem "Random" parts then
      emit R1 loc
        "Random is non-deterministic across runs; draw from the seeded \
         Engine.Rng instead";
    (if active R3 then
       match parts with
       | [ "compare" ] when not compare_is_local ->
           emit R3 loc
             "polymorphic compare; pass an explicit comparator (e.g. \
              Time.compare, Int.compare)"
       | [ "Hashtbl"; ("hash" | "seeded_hash") ] ->
           emit R3 loc
             "polymorphic Hashtbl.hash; hash a canonical key (e.g. the \
              packet id) explicitly"
       | _ -> ());
    if active R4 && sc.in_lib && is_print_fn parts then
      emit R4 loc
        "direct console output inside lib/; route through Logs or Net.Trace \
         so headless benches stay clean";
    if active R7 && (not sc.is_obs) && is_wall_clock parts then
      emit R7 loc
        "wall-clock read outside lib/obs; simulated time is Engine.Time and \
         profiling goes through Obs.Profile, so runs stay deterministic";
    if
      active R9 && (not sc.is_engine)
      && match parts with [ "Obj"; "magic" ] -> true | _ -> false
    then
      emit R9 loc
        "Obj.magic outside lib/engine/; only the engine's pooled containers \
         may use a placeholder value, and their caveats (no float elements) \
         are documented there";
    (if active R10 && not sc.is_rng_owner then
       match List.rev parts with
       | ("create" | "split") :: "Rng" :: _ ->
           emit R10 loc
             "new Rng stream outside an owner layer (lib/engine, lib/fault, \
              lib/workloads, lib/exp); derive randomness from the owning \
              layer's seeded stream so the seed tree stays deterministic"
       | _ -> ());
    if active R8 && not sc.is_exp then
      match parts with
      | ("Domain" | "Thread") :: _ | [ "Unix"; "fork" ] ->
          emit R8 loc
            "parallelism primitive outside lib/exp; run whole specs through \
             Exp.Runner instead — a simulation must stay a single-domain \
             program to be bit-reproducible"
      | _ -> ()
  in
  let expr sub e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident loc txt
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ },
          [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] )
      when active R2 && (op = "=" || op = "<>" || op = "==" || op = "!=") ->
        if is_floatish a || is_floatish b then
          emit R2 e.pexp_loc
            (Printf.sprintf
               "float %s is exact-bit comparison; use Time.compare or an \
                epsilon test"
               op)
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
      when active R6 && sc.in_hot_path ->
        emit R6 e.pexp_loc
          "assert false carries no context; raise with a message naming the \
           invariant"
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt; _ }; _ },
          [ (Asttypes.Nolabel, { pexp_desc = Pexp_constant (Pconst_string ("", _, _)); _ }) ] )
      when active R6 && sc.in_hot_path
           && (match norm txt with
              | [ ("failwith" | "invalid_arg") ] -> true
              | _ -> false) ->
        emit R6 e.pexp_loc
          "empty failure message; say which invariant broke and with what \
           values"
    | _ -> ());
    Ast_iterator.default_iterator.expr sub e
  in
  let module_expr sub m =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } ->
        if active R1 && (not sc.is_rng) && List.mem "Random" (norm txt) then
          emit R1 loc
            "Random is non-deterministic across runs; draw from the seeded \
             Engine.Rng instead";
        if
          active R8 && (not sc.is_exp)
          &&
          match norm txt with
          | ("Domain" | "Thread") :: _ -> true
          | _ -> false
        then
          emit R8 loc
            "parallelism primitive outside lib/exp; run whole specs through \
             Exp.Runner instead — a simulation must stay a single-domain \
             program to be bit-reproducible"
    | _ -> ());
    Ast_iterator.default_iterator.module_expr sub m
  in
  let it = { Ast_iterator.default_iterator with expr; module_expr } in
  it.structure it str;
  List.sort
    (fun a b ->
      match Int.compare a.line b.line with
      | 0 -> String.compare (rule_id a.rule) (rule_id b.rule)
      | c -> c)
    !out

let check_mli ~ml_file ~mli_exists =
  let sc = scope_of_file ml_file in
  if sc.in_lib && Filename.check_suffix ml_file ".ml" && not mli_exists then
    Some
      {
        rule = R5;
        file = ml_file;
        line = 1;
        notes = [];
        message =
          Printf.sprintf
            "missing interface %si; every lib module must state its public \
             API"
            ml_file;
      }
  else None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?(rules = all_rules) path =
  if Filename.check_suffix path ".ml" then
    let vs = lint_source ~rules ~filename:path (read_file path) in
    if List.mem R5 rules then
      match check_mli ~ml_file:path ~mli_exists:(Sys.file_exists (path ^ "i")) with
      | Some v -> v :: vs
      | None -> vs
    else vs
  else []

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name.[0] = '.' || name.[0] = '_' then acc
           else walk (Filename.concat path name) acc)
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths ?(rules = all_rules) paths =
  let files = List.fold_left (fun acc p -> walk p acc) [] paths in
  files
  |> List.sort_uniq String.compare
  |> List.concat_map (fun f -> lint_file ~rules f)

let pp_violation ppf v =
  Format.fprintf ppf "%s:%d: [%s] %s" v.file v.line (rule_id v.rule) v.message

(* Head line as [pp_violation], then one indented line per note (call-chain
   steps for the typed rules). Keeping notes off the head line lets a CI
   problem matcher parse [file:line: [Rn] message] while the log still shows
   the full trace. *)
let pp_violation_full ppf v =
  pp_violation ppf v;
  List.iter (fun n -> Format.fprintf ppf "@\n    %s" n) v.notes
