let rules = Rules.typed_rules

let line_of_loc (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let rec after_lib = function
  | "lib" :: rest -> Some rest
  | _ :: rest -> after_lib rest
  | [] -> None

(* R11's protected tree: the layers whose behaviour the paper's figures
   depend on. lib/obs, lib/exp, lib/stats, lib/fluid, lib/control are
   deliberately outside: they either own a sanctioned effect (obs: wall
   clock; exp: domains) or never run inside a simulation. *)
let protected_dirs = [ "engine"; "net"; "tcp"; "dctcp"; "fault"; "workloads" ]

let is_protected src =
  match after_lib (segments src) with
  | Some (d :: _) -> List.mem d protected_dirs
  | _ -> false

let is_time_ml src =
  match after_lib (segments src) with
  | Some [ "engine"; "time.ml" ] -> true
  | _ -> false

let under_paths paths file =
  match paths with
  | [] -> true
  | _ ->
      let norm p =
        let p = if String.length p > 2 && String.sub p 0 2 = "./" then
            String.sub p 2 (String.length p - 2)
          else p
        in
        match String.length p with
        | 0 -> p
        | n -> if p.[n - 1] = '/' then String.sub p 0 (n - 1) else p
      in
      List.exists
        (fun p ->
          let p = norm p in
          file = p
          || String.length file > String.length p
             && String.sub file 0 (String.length p + 1) = p ^ "/")
        paths

(* --- type inspection helpers ------------------------------------------- *)

let type_head ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (Callgraph.normalize p)
  | _ -> None

let rec arrow_result ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, _, ret, _) -> arrow_result ret
  | _ -> ty

let mutable_builtin_heads =
  [ "ref"; "array"; "bytes"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t" ]

(* Is [ty] a mutable container? Returns a human description of why.
   Looks through builtins, then through type declarations found in the
   loaded units themselves (a record with a [mutable] field, or whose
   fields are themselves mutable containers — one recursive walk with a
   visited set, so recursive types terminate). [Atomic.t] is the sanctioned
   cross-domain cell and is never mutable for R12's purposes. *)
let mutability decls ty =
  let rec go visited ty =
    match Types.get_desc ty with
    | Types.Tconstr (p, _, _) -> (
        let name = Callgraph.normalize p in
        if name = "Atomic.t" then None
        else if List.mem name mutable_builtin_heads then Some name
        else if List.mem name visited then None
        else
          match Hashtbl.find_opt decls name with
          | None -> None
          | Some (td : Typedtree.type_declaration) ->
              decl (name :: visited) name td)
    | _ -> None
  and decl visited name (td : Typedtree.type_declaration) =
    match td.typ_kind with
    | Ttype_record fields -> record_fields visited name fields
    | Ttype_variant constructors ->
        List.find_map
          (fun (cd : Typedtree.constructor_declaration) ->
            match cd.cd_args with
            | Cstr_record fields -> record_fields visited name fields
            | Cstr_tuple _ -> None)
          constructors
    | Ttype_abstract -> (
        match td.typ_manifest with
        | Some ct -> go visited ct.ctyp_type
        | None -> None)
    | Ttype_open -> None
  and record_fields visited name fields =
    List.find_map
      (fun (ld : Typedtree.label_declaration) ->
        match ld.ld_mutable with
        | Mutable ->
            Some
              (Printf.sprintf "%s, record with mutable field '%s'" name
                 (Ident.name ld.ld_id))
        | Immutable -> (
            match go visited ld.ld_type.ctyp_type with
            | Some why ->
                Some
                  (Printf.sprintf "%s, field '%s' holds %s" name
                     (Ident.name ld.ld_id) why)
            | None -> None))
      fields
  in
  go [] ty

(* --- violation emission ------------------------------------------------- *)

let default_read_source file =
  if Sys.file_exists file && not (Sys.is_directory file) then
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  else None

let lint_units ?(rules = rules) ?(report_paths = [])
    ?(read_source = default_read_source) units =
  let graph = Callgraph.build units in
  let eff = Effects.compute graph in
  let sup_cache : (string, Rules.suppressions option) Hashtbl.t =
    Hashtbl.create 16
  in
  let suppressions_for file =
    match Hashtbl.find_opt sup_cache file with
    | Some s -> s
    | None ->
        let s = Option.map Rules.suppressions (read_source file) in
        Hashtbl.add sup_cache file s;
        s
  in
  let out = ref [] in
  let emit rule ~file ~line ~message ~notes =
    if List.mem rule rules && under_paths report_paths file then
      let allowed =
        match suppressions_for file with
        | Some sup -> Rules.suppressed sup rule ~line
        | None -> false
      in
      if not allowed then
        out := { Rules.rule; file; line; message; notes } :: !out
  in
  let defs = Callgraph.defs graph in

  (* ---- R11: transitive determinism taint ---- *)
  let taint_line = function
    | Effects.Root { line; _ } | Effects.Via { line; _ } -> line
  in
  let report_r11 (d : Callgraph.def) kind reason =
    (* Entry points only: a violation whose taint flows through another
       protected function is that function's violation, not this one's —
       one report per laundering site, not one per caller. *)
    let entry =
      match reason with
      | Effects.Root _ -> true
      | Effects.Via { def; _ } -> (
          match Callgraph.find_def graph def with
          | Some gd -> not (is_protected gd.source)
          | None -> true)
    in
    if entry then begin
      let chain = Effects.chain graph eff kind d.id in
      let root = match List.rev chain with r :: _ -> r | [] -> "?" in
      let message =
        match kind with
        | Effects.Nondet ->
            Printf.sprintf
              "%s reaches %s through the call chain below; every figure \
               depends on bit-identical replay, so draw from the seeded \
               Engine.Rng (or hash/compare a canonical key) instead"
              d.id root
        | Effects.Wall ->
            Printf.sprintf
              "%s reaches the wall clock (%s) through the call chain below; \
               simulation logic must use Engine.Time, profiling goes \
               through Obs.Profile"
              d.id root
        | Effects.Spawn -> assert false
      in
      emit Rules.R11 ~file:d.source ~line:(taint_line reason) ~message
        ~notes:(List.mapi (fun i s -> if i = 0 then s else "-> " ^ s) chain)
    end
  in
  if List.mem Rules.R11 rules then
    List.iter
      (fun (d : Callgraph.def) ->
        if is_protected d.source then begin
          let t = Effects.taint_of eff d.id in
          (match t.Effects.nondet with
          | Some r -> report_r11 d Effects.Nondet r
          | None -> ());
          match t.Effects.wall with
          | Some r -> report_r11 d Effects.Wall r
          | None -> ()
        end)
      defs;

  (* ---- R12: top-level mutable state reachable from domain spawns ---- *)
  if List.mem Rules.R12 rules then begin
    let decls = Hashtbl.create 64 in
    List.iter
      (fun (name, td) -> Hashtbl.replace decls name td)
      (Callgraph.type_decls graph);
    let mutable_globals =
      List.filter_map
        (fun ((d : Callgraph.def), ty) ->
          match mutability decls ty with
          | Some why -> Some (d.id, (d, why))
          | None -> None)
        (Callgraph.globals graph)
    in
    let spawners =
      List.filter
        (fun (d : Callgraph.def) ->
          List.exists
            (fun (target, _) -> Effects.classify_root target = Some Effects.Spawn)
            (Callgraph.refs graph d.id))
        defs
    in
    (* BFS from each spawning function over resolved references, keeping
       parent edges for the reported chain. Deterministic: defs and refs
       are both in canonical order. *)
    let parent : (string, (string * int) option) Hashtbl.t =
      Hashtbl.create 256
    in
    let queue = Queue.create () in
    List.iter
      (fun (d : Callgraph.def) ->
        if not (Hashtbl.mem parent d.id) then begin
          Hashtbl.replace parent d.id None;
          Queue.push d.id queue
        end)
      spawners;
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      List.iter
        (fun (target, line) ->
          match Callgraph.resolve graph ~from_def:id target with
          | Some node when not (Hashtbl.mem parent node) ->
              Hashtbl.replace parent node (Some (id, line));
              Queue.push node queue
          | _ -> ())
        (Callgraph.refs graph id)
    done;
    let rec chain_to id acc =
      match Hashtbl.find_opt parent id with
      | Some (Some (p, line)) -> (
          match Callgraph.find_def graph p with
          | Some pd ->
              chain_to p
                (Printf.sprintf "%s (%s:%d)" pd.id pd.source line :: acc)
          | None -> acc)
      | _ -> acc
    in
    List.iter
      (fun (gid, ((gd : Callgraph.def), why)) ->
        match Hashtbl.find_opt parent gid with
        | Some _ ->
            let chain = chain_to gid [] in
            let spawner =
              match chain with
              | s :: _ -> (
                  match String.index_opt s ' ' with
                  | Some i -> String.sub s 0 i
                  | None -> s)
              | [] -> gd.id
            in
            let message =
              Printf.sprintf
                "%s is module-level mutable state (%s) reachable from the \
                 domain-spawning %s — a data race once specs fan out across \
                 Domains; make it Atomic.t, allocate it per run, or keep it \
                 and document per-domain ownership with (* dtlint: allow \
                 R12 *) on this line"
                gd.id why spawner
            in
            emit Rules.R12 ~file:gd.source ~line:gd.line ~message
              ~notes:
                (List.mapi (fun i s -> if i = 0 then s else "-> " ^ s) chain
                @ [ Printf.sprintf "-> touches %s (%s:%d)" gd.id gd.source
                      gd.line ])
        | None -> ())
      mutable_globals
  end;

  (* ---- R13: raw int64 arithmetic on Engine.Time.t instants ---- *)
  if List.mem Rules.R13 rules then begin
    let int64_ops =
      [
        "Int64.add"; "Int64.sub"; "Int64.mul"; "Int64.div"; "Int64.rem";
        "Int64.neg"; "Int64.abs"; "Int64.succ"; "Int64.pred"; "Int64.logand";
        "Int64.logor"; "Int64.logxor"; "Int64.shift_left"; "Int64.shift_right";
        "Int64.shift_right_logical"; "Int64.min"; "Int64.max";
      ]
    in
    let time_t = "Engine.Time.t" in
    let is_coerced_time (e : Typedtree.expression) =
      List.exists
        (fun (extra, _, _) ->
          match extra with Typedtree.Texp_coerce _ -> true | _ -> false)
        e.exp_extra
      &&
      match e.exp_desc with
      | Texp_ident (_, _, vd) -> type_head vd.val_type = Some time_t
      | _ -> false
    in
    let is_instant_expr (e : Typedtree.expression) =
      type_head e.exp_type = Some time_t
      || is_coerced_time e
      ||
      match e.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) ->
          Callgraph.normalize p = "Engine.Time.to_ns"
      | _ -> false
    in
    List.iter
      (fun (u : Cmt_loader.unit_info) ->
        if not (is_time_ml u.source) then begin
          let expr sub (e : Typedtree.expression) =
            (match e.exp_desc with
            | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
              when List.mem (Callgraph.normalize p) int64_ops ->
                if
                  List.exists
                    (fun (_, a) ->
                      match a with Some a -> is_instant_expr a | None -> false)
                    args
                then
                  emit Rules.R13 ~file:u.source ~line:(line_of_loc e.exp_loc)
                    ~message:
                      ("raw " ^ Callgraph.normalize p
                     ^ " on an Engine.Time.t instant; instants carry a unit \
                        — use Time.add/diff/compare (spans are plain int64 \
                        and stay fair game), only lib/engine/time.ml does \
                        raw instant arithmetic")
                    ~notes:[]
            | _ -> ());
            if is_coerced_time e then
              emit Rules.R13 ~file:u.source ~line:(line_of_loc e.exp_loc)
                ~message:
                  "coercing an Engine.Time.t instant to raw int64 strips \
                   its unit; go through Time.to_ns at the API boundary so \
                   the escape is greppable"
                ~notes:[];
            Tast_iterator.default_iterator.expr sub e
          in
          let it = { Tast_iterator.default_iterator with expr } in
          it.structure it u.structure
        end)
      units
  end;

  (* ---- R14: per-call allocation in event hot-path functions ---- *)
  if List.mem Rules.R14 rules then begin
    let whole_module_roots src =
      match after_lib (segments src) with
      | Some
          [
            "engine";
            ("event_queue.ml" | "heap.ml" | "ring.ml" | "int_ring.ml");
          ] ->
          true
      | Some [ "net"; ("packet.ml" | "ecmp.ml") ] -> true
      | _ -> false
    in
    let named_roots =
      [
        "Engine.Sim.step"; "Engine.Sim.run"; "Engine.Sim.schedule_at";
        "Engine.Sim.schedule_after"; "Engine.Sim.cancel"; "Engine.Sim.now";
        "Net.Port.send"; "Net.Queue_disc.enqueue"; "Net.Queue_disc.dequeue";
        "Net.Queue_disc.dequeue_exn"; "Net.Queue_disc.is_empty";
        "Net.Switch.receive"; "Net.Host.receive";
      ]
    in
    let in_engine_or_net src =
      match after_lib (segments src) with
      | Some (("engine" | "net") :: _) -> true
      | _ -> false
    in
    (* Hot set: roots plus everything they reach inside lib/engine|net. *)
    let hot : (string, unit) Hashtbl.t = Hashtbl.create 128 in
    let queue = Queue.create () in
    List.iter
      (fun (d : Callgraph.def) ->
        if whole_module_roots d.source || List.mem d.id named_roots then begin
          Hashtbl.replace hot d.id ();
          Queue.push d.id queue
        end)
      defs;
    while not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      List.iter
        (fun (target, _) ->
          match Callgraph.resolve graph ~from_def:id target with
          | Some node when not (Hashtbl.mem hot node) -> (
              match Callgraph.find_def graph node with
              | Some nd when in_engine_or_net nd.source ->
                  Hashtbl.replace hot node ();
                  Queue.push node queue
              | _ -> ())
          | _ -> ())
        (Callgraph.refs graph id)
    done;
    let global_types = Hashtbl.create 128 in
    List.iter
      (fun ((d : Callgraph.def), ty) -> Hashtbl.replace global_types d.id ty)
      (Callgraph.globals graph);
    (* Syntactic arity of every def, so a total call that merely returns a
       stored closure (Event_queue.popped_action q) is not mistaken for a
       partial application — the types alone cannot tell [t -> unit -> unit]
       from [t -> (unit -> unit)], but the definition's parameter count
       can. *)
    let arity_tbl : (string, int) Hashtbl.t = Hashtbl.create 256 in
    let rec syn_arity (e : Typedtree.expression) =
      match e.exp_desc with
      | Texp_function { cases = [ c ]; _ } -> 1 + syn_arity c.c_rhs
      | Texp_function _ -> 1
      | _ -> 0
    in
    List.iter
      (fun ((d : Callgraph.def), body) ->
        Hashtbl.replace arity_tbl d.id (syn_arity body))
      (Callgraph.bodies graph);
    (* The def's own curried parameter chain is not a closure: walk through
       leading Texp_function nodes (multi-case [function] included). *)
    let rec top_chain (e : Typedtree.expression) acc =
      match e.exp_desc with
      | Texp_function { cases; _ } ->
          List.fold_left
            (fun acc (c : Typedtree.value Typedtree.case) ->
              top_chain c.c_rhs acc)
            (e :: acc) cases
      | _ -> acc
    in
    let free_vars ~unit (fn : Typedtree.expression) =
      let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
      let used = ref [] in
      let pat : type k. Tast_iterator.iterator -> k Typedtree.general_pattern
          -> unit =
       fun sub p ->
        List.iter
          (fun i -> Hashtbl.replace bound (Ident.unique_name i) ())
          (Typedtree.pat_bound_idents p);
        Tast_iterator.default_iterator.pat sub p
      in
      let expr sub (e : Typedtree.expression) =
        (match e.exp_desc with
        | Texp_ident (Path.Pident i, _, _) -> used := i :: !used
        | _ -> ());
        Tast_iterator.default_iterator.expr sub e
      in
      let it = { Tast_iterator.default_iterator with pat; expr } in
      it.expr it fn;
      List.filter
        (fun i ->
          let name = Ident.name i in
          (not (Hashtbl.mem bound (Ident.unique_name i)))
          && (not (Callgraph.is_toplevel_ident graph ~unit i))
          && (not (String.contains name '*'))
          && name <> "()")
        !used
      |> List.map Ident.name |> List.sort_uniq String.compare
    in
    List.iter
      (fun ((d : Callgraph.def), body) ->
        if Hashtbl.mem hot d.id then begin
          (* boxed-float return of the hot function itself *)
          (match Hashtbl.find_opt global_types d.id with
          | Some ty
            when type_head (arrow_result ty) = Some "float"
                 && (match Types.get_desc ty with
                    | Types.Tarrow _ -> true
                    | _ -> false)
                 && not (is_time_ml d.source) ->
              emit Rules.R14 ~file:d.source ~line:d.line
                ~message:
                  (d.id
                 ^ " is on the event hot path and returns float — every \
                    call boxes the result; return it via an out-parameter \
                    float array slot or keep the computation int-typed")
                ~notes:[]
          | _ -> ());
          let chain = top_chain body [] in
          let in_chain e = List.memq e chain in
          let expr sub (e : Typedtree.expression) =
            (match e.exp_desc with
            | Texp_apply (fn, args)
              when (not e.exp_loc.Location.loc_ghost)
                   && (match Types.get_desc e.exp_type with
                      | Types.Tarrow _ -> true
                      | _ -> false)
                   && (List.exists (fun (_, a) -> Option.is_none a) args
                      ||
                      match fn.exp_desc with
                      | Texp_ident (p, _, _) -> (
                          match
                            Callgraph.resolve graph ~from_def:d.id
                              (Callgraph.normalize p)
                          with
                          | Some node -> (
                              match Hashtbl.find_opt arity_tbl node with
                              | Some a -> a > 0 && List.length args < a
                              | None -> false)
                          | None -> false)
                      | _ -> false) ->
                emit Rules.R14 ~file:d.source ~line:(line_of_loc e.exp_loc)
                  ~message:
                    ("partial application inside hot-path " ^ d.id
                   ^ " allocates a closure per call; apply all arguments \
                      (or hoist the partial application out of the hot \
                      path)")
                  ~notes:[]
            | Texp_function _
              when (not (in_chain e)) && not e.exp_loc.Location.loc_ghost -> (
                match free_vars ~unit:d.unit_canonical e with
                | [] -> () (* no captures: statically allocated *)
                | vars ->
                    emit Rules.R14 ~file:d.source ~line:(line_of_loc e.exp_loc)
                      ~message:
                        (Printf.sprintf
                           "closure inside hot-path %s captures %s — one \
                            allocation per call; hoist it to creation time \
                            (cf. Net.Port's per-port closures) or pass the \
                            state as arguments"
                           d.id
                           (String.concat ", " vars))
                      ~notes:[])
            | _ -> ());
            Tast_iterator.default_iterator.expr sub e
          in
          let it = { Tast_iterator.default_iterator with expr } in
          it.expr it body
        end)
      (Callgraph.bodies graph)
  end;

  List.sort
    (fun (a : Rules.violation) (b : Rules.violation) ->
      match String.compare a.file b.file with
      | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> String.compare (Rules.rule_id a.rule) (Rules.rule_id b.rule)
          | c -> c)
      | c -> c)
    !out

let lint_cmt_roots ?rules ?report_paths ?read_source ~roots () =
  lint_units ?rules ?report_paths ?read_source (Cmt_loader.load_tree ~roots)
