(** The typed whole-program pass: rules R11–R14 over [.cmt] Typedtrees.

    Where the syntactic rules (R1–R10) look at one parsetree at a time,
    these rules see the {e whole program}: a cross-module call graph
    ({!Callgraph}) with an effect classification per function
    ({!Effects}). That closes the laundering gap — a helper that wraps
    [Random.int] taints every caller, across module and library
    boundaries.

    - {b R11 — transitive determinism taint.} Any call path from
      [Random.*], [Hashtbl.hash], polymorphic [compare], or a wall-clock
      read into [lib/engine|net|tcp|dctcp|fault|workloads] is a
      violation. Only the {e entry point} is reported (the first tainted
      function inside the protected tree), with the full call chain in
      the violation's notes. [lib/engine/rng.ml] and [lib/obs] are
      absorbing barriers, matching R1/R7's sanctioned sites.
    - {b R12 — static data-race detection.} A module-level mutable value
      ([ref], [array], [bytes], [Hashtbl.t], [Buffer.t], [Queue.t],
      [Stack.t], or a record type with [mutable] fields, transitively)
      reachable from a function that spawns domains (e.g.
      [Exp.Runner.run]'s per-domain closures) is a violation unless it is
      [Atomic.t]. Reported at the value's definition, so the ownership
      annotation [(* dtlint: allow R12 *)] + justification lives next to
      the state it blesses. The reachability is an over-approximation: it
      includes code the spawning function runs before spawning — by
      design, since refactors move code into the closure silently.
    - {b R13 — time-unit hygiene.} Outside [lib/engine/time.ml], an
      [Engine.Time.t] instant must not meet raw [int64] arithmetic:
      coercing [Time.t :> int64], or feeding [Time.to_ns] straight into
      an [Int64] operation, is a violation ([Time.span]s are plain
      [int64] and stay fair game — the paper's queue dynamics live on
      spans, the unit bug lives on instants).
    - {b R14 — hot-path allocation.} In functions reachable from the
      event-loop entry points ([Engine.Event_queue]/[Heap]/[Ring] whole
      modules; [Sim.step/run/schedule_at/schedule_after/cancel];
      [Port.send], [Queue_disc.enqueue/dequeue/dequeue_exn],
      [Switch.receive]), a partial application, an
      environment-capturing closure, or a float-returning function is a
      per-event allocation and a violation (PR 4's budget is ~13 minor
      words/event). Closures without captures are statically allocated
      and stay legal. *)

val rules : Rules.rule list
(** [R11; R12; R13; R14]. *)

val lint_units :
  ?rules:Rules.rule list ->
  ?report_paths:string list ->
  ?read_source:(string -> string option) ->
  Cmt_loader.unit_info list ->
  Rules.violation list
(** Run the typed rules over loaded units. The call graph always spans
    {e all} given units (a bench-side wrapper must still taint a lib
    caller), while [report_paths] — when non-empty — restricts which
    files violations may be {e reported} against. [read_source] is how
    suppression comments are found (defaults to reading the recorded
    source path from disk; tests inject a tmpdir-relative reader).
    Violations are sorted by file, line, rule. *)

val lint_cmt_roots :
  ?rules:Rules.rule list ->
  ?report_paths:string list ->
  ?read_source:(string -> string option) ->
  roots:string list ->
  unit ->
  Rules.violation list
(** [lint_units] over every [.cmt] found under [roots]
    (see {!Cmt_loader.load_tree}). *)
