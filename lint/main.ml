(* dtlint CLI: parse arguments by hand (no dependency beyond
   compiler-libs), lint the given files/directories, print compiler-style
   violations and exit non-zero when any are found.

   Two stages:
   - the syntactic pass (R1-R10) parses sources directly — fast, always on;
   - the typed pass (R11-R14) reads dune-produced .cmt Typedtrees; enable
     it with --typed (and point --cmt-root at the build dir, default
     _build/default when it exists, else "."). `dune build @lint` wires
     this up with the right deps. *)

let default_paths = [ "lib"; "bin"; "bench"; "examples"; "lint"; "test" ]

let usage () =
  print_string
    ("usage: dtlint [OPTIONS] [PATH...]\n\n\
      Simulator-aware static analysis for the DT-DCTCP codebase. Lints\n\
      every .ml under the given files/directories (default: lib bin bench\n\
      examples lint test) and exits 1 if any rule is violated, 2 on usage\n\
      or parse errors.\n\n\
      Options:\n\
     \  --only R2[,R4...]   run only the listed rules\n\
     \  --skip R5[,R6...]   run all rules except the listed ones\n\
     \  --typed             also run the typed whole-program rules\n\
     \                      (R11-R14) over .cmt build artifacts\n\
     \  --cmt-root DIR      where to look for .cmt files (repeatable;\n\
     \                      implies --typed; default: _build/default if\n\
     \                      present, else .)\n\
     \  --format FMT        text (default) or json\n\
     \  --list-rules        print the rule table and exit\n\
     \  --help              this message\n\n\
      Suppress a single line with a trailing comment:\n\
     \  let eq a b = a = b  (* dtlint: allow R2 *)\n\n\
      Rules:\n"
    ^ String.concat ""
        (List.map
           (fun r ->
             Printf.sprintf "  %-4s %s\n" (Dtlint.Rules.rule_id r)
               (Dtlint.Rules.rule_doc r))
           Dtlint.Rules.all_rules))

let fail_usage msg =
  prerr_endline ("dtlint: " ^ msg ^ " (try --help)");
  exit 2

let parse_rule_list s =
  String.split_on_char ',' s
  |> List.filter (fun t -> String.trim t <> "")
  |> List.map (fun t ->
         match Dtlint.Rules.rule_of_id t with
         | Some r -> r
         | None -> fail_usage (Printf.sprintf "unknown rule %S" t))

(* --- JSON output -------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_json violations =
  let item (v : Dtlint.Rules.violation) =
    Printf.sprintf
      "    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"message\": \
       \"%s\", \"chain\": [%s]}"
      (Dtlint.Rules.rule_id v.rule) (json_escape v.file) v.line
      (json_escape v.message)
      (String.concat ", "
         (List.map (fun n -> "\"" ^ json_escape n ^ "\"") v.notes))
  in
  Printf.printf "{\n  \"violations\": [\n%s\n  ],\n  \"count\": %d\n}\n"
    (String.concat ",\n" (List.map item violations))
    (List.length violations)

(* --- CLI ---------------------------------------------------------------- *)

type options = {
  only : Dtlint.Rules.rule list;
  skip : Dtlint.Rules.rule list;
  typed : bool;
  cmt_roots : string list;
  json : bool;
  paths : string list;
}

let () =
  let rec go o = function
    | [] -> o
    | ("--help" | "-help" | "-h") :: _ ->
        usage ();
        exit 0
    | "--list-rules" :: _ ->
        List.iter
          (fun r ->
            Printf.printf "%-4s %s\n" (Dtlint.Rules.rule_id r)
              (Dtlint.Rules.rule_doc r))
          Dtlint.Rules.all_rules;
        exit 0
    | "--only" :: v :: rest -> go { o with only = o.only @ parse_rule_list v } rest
    | "--skip" :: v :: rest -> go { o with skip = o.skip @ parse_rule_list v } rest
    | "--typed" :: rest -> go { o with typed = true } rest
    | "--cmt-root" :: v :: rest ->
        go { o with typed = true; cmt_roots = o.cmt_roots @ [ v ] } rest
    | "--format" :: "json" :: rest -> go { o with json = true } rest
    | "--format" :: "text" :: rest -> go { o with json = false } rest
    | "--format" :: v :: _ -> fail_usage (Printf.sprintf "unknown format %S" v)
    | [ ("--only" | "--skip" | "--cmt-root" | "--format") ] ->
        fail_usage "missing option value"
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
        fail_usage (Printf.sprintf "unknown option %S" a)
    | p :: rest -> go { o with paths = p :: o.paths } rest
  in
  let o =
    go
      { only = []; skip = []; typed = false; cmt_roots = []; json = false;
        paths = [] }
      (List.tl (Array.to_list Sys.argv))
  in
  let rules =
    (match o.only with [] -> Dtlint.Rules.all_rules | only -> only)
    |> List.filter (fun r -> not (List.mem r o.skip))
  in
  let syntactic =
    List.filter (fun r -> List.mem r Dtlint.Rules.syntactic_rules) rules
  in
  let typed_rules =
    List.filter (fun r -> List.mem r Dtlint.Rules.typed_rules) rules
  in
  let paths = match List.rev o.paths with [] -> default_paths | ps -> ps in
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then
        fail_usage (Printf.sprintf "no such path %S" p))
    paths;
  let syntactic_violations =
    match Dtlint.Rules.lint_paths ~rules:syntactic paths with
    | vs -> vs
    | exception Dtlint.Rules.Parse_error (file, line, msg) ->
        Printf.eprintf "dtlint: %s:%d: cannot parse: %s\n" file line msg;
        exit 2
  in
  let typed_violations =
    if not o.typed then []
    else begin
      let roots =
        match o.cmt_roots with
        | [] -> if Sys.file_exists "_build/default" then [ "_build/default" ]
                else [ "." ]
        | rs -> rs
      in
      Dtlint.Typed_rules.lint_cmt_roots ~rules:typed_rules ~report_paths:paths
        ~roots ()
    end
  in
  let violations = syntactic_violations @ typed_violations in
  match violations with
  | [] -> if o.json then print_json []
  | violations ->
      if o.json then print_json violations
      else
        List.iter
          (fun v -> Format.printf "%a@." Dtlint.Rules.pp_violation_full v)
          violations;
      Printf.eprintf "dtlint: %d violation%s\n" (List.length violations)
        (if List.length violations = 1 then "" else "s");
      exit 1
