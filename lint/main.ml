(* dtlint CLI: parse arguments by hand (no dependency beyond
   compiler-libs), lint the given files/directories, print compiler-style
   violations and exit non-zero when any are found. *)

let default_paths = [ "lib"; "bin"; "bench"; "examples" ]

let usage () =
  print_string
    ("usage: dtlint [OPTIONS] [PATH...]\n\n\
      Simulator-aware static analysis for the DT-DCTCP codebase. Lints\n\
      every .ml under the given files/directories (default: lib bin bench\n\
      examples) and exits 1 if any rule is violated, 2 on usage or parse\n\
      errors.\n\n\
      Options:\n\
     \  --only R2[,R4...]   run only the listed rules\n\
     \  --skip R5[,R6...]   run all rules except the listed ones\n\
     \  --list-rules        print the rule table and exit\n\
     \  --help              this message\n\n\
      Suppress a single line with a trailing comment:\n\
     \  let eq a b = a = b  (* dtlint: allow R2 *)\n\n\
      Rules:\n"
    ^ String.concat ""
        (List.map
           (fun r ->
             Printf.sprintf "  %s  %s\n" (Dtlint.Rules.rule_id r)
               (Dtlint.Rules.rule_doc r))
           Dtlint.Rules.all_rules))

let fail_usage msg =
  prerr_endline ("dtlint: " ^ msg ^ " (try --help)");
  exit 2

let parse_rule_list s =
  String.split_on_char ',' s
  |> List.filter (fun t -> String.trim t <> "")
  |> List.map (fun t ->
         match Dtlint.Rules.rule_of_id t with
         | Some r -> r
         | None -> fail_usage (Printf.sprintf "unknown rule %S" t))

let () =
  let rec go only skip paths = function
    | [] -> (only, skip, List.rev paths)
    | ("--help" | "-help" | "-h") :: _ ->
        usage ();
        exit 0
    | "--list-rules" :: _ ->
        List.iter
          (fun r ->
            Printf.printf "%s  %s\n" (Dtlint.Rules.rule_id r)
              (Dtlint.Rules.rule_doc r))
          Dtlint.Rules.all_rules;
        exit 0
    | "--only" :: v :: rest -> go (only @ parse_rule_list v) skip paths rest
    | "--skip" :: v :: rest -> go only (skip @ parse_rule_list v) paths rest
    | [ ("--only" | "--skip") ] -> fail_usage "missing rule list"
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
        fail_usage (Printf.sprintf "unknown option %S" a)
    | p :: rest -> go only skip (p :: paths) rest
  in
  let only, skip, paths = go [] [] [] (List.tl (Array.to_list Sys.argv)) in
  let rules =
    (match only with [] -> Dtlint.Rules.all_rules | _ -> only)
    |> List.filter (fun r -> not (List.mem r skip))
  in
  let paths = match paths with [] -> default_paths | _ -> paths in
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then
        fail_usage (Printf.sprintf "no such path %S" p))
    paths;
  match Dtlint.Rules.lint_paths ~rules paths with
  | [] -> ()
  | violations ->
      List.iter
        (fun v -> Format.printf "%a@." Dtlint.Rules.pp_violation v)
        violations;
      Printf.eprintf "dtlint: %d violation%s\n" (List.length violations)
        (if List.length violations = 1 then "" else "s");
      exit 1
  | exception Dtlint.Rules.Parse_error (file, line, msg) ->
      Printf.eprintf "dtlint: %s:%d: cannot parse: %s\n" file line msg;
      exit 2
