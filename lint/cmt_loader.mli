(** Loading dune-produced [.cmt] Typedtree artifacts for the typed pass.

    Dune compiles every module with [-bin-annot], leaving a [.cmt] per
    module under [_build/default/<dir>/.<lib>.objs/byte/]. Each records the
    module's {e typed} AST plus the path of the source file it came from,
    which is what lets the typed rules report violations against real
    source locations and honour the per-line suppression comments.

    Module names are canonicalised from dune's mangled form
    ([Engine__Time]) to the dotted form users write ([Engine.Time]), so
    call-graph identifiers line up with {!Callgraph.normalize}d use-site
    paths no matter which spelling the source used. *)

type unit_info = {
  modname : string;  (** compiler module name, e.g. ["Engine__Time"] *)
  canonical : string;  (** dotted form, e.g. ["Engine.Time"] *)
  source : string;  (** source path as recorded by the compiler, e.g.
                        ["lib/engine/time.ml"] *)
  structure : Typedtree.structure;
}

val canonical_of_modname : string -> string
(** ["Engine__Time"] → ["Engine.Time"]; names without ["__"] unchanged. *)

val load_file : string -> unit_info option
(** Read one [.cmt]. [None] when it is not an implementation (interfaces,
    partial trees), has no recorded source file, or the source is not an
    [.ml] file (dune's generated library-alias modules end in [.ml-gen]
    and carry no user code). Unreadable or wrong-magic files also yield
    [None] — a stale artifact must not crash the lint. *)

val load_tree : roots:string list -> unit_info list
(** Walk each root recursively (descending into dune's dot-prefixed
    [.objs] directories, skipping [.git]) and load every [.cmt] found.
    Units are deduplicated by module name and returned sorted by
    [canonical], so the result is independent of filesystem order. *)
