(** Effect classification over the call graph.

    Every node is classified against a small effect lattice:

    {v
                    nondeterministic   wall-clock   domain-spawning
                           \               |              /
                            +------- tainted ------------+
                                         |
                                     seeded-rng
                                         |
                                        pure
    v}

    - {b pure} — no effectful root reachable;
    - {b seeded-rng} — draws randomness, but only through the seeded
      {!Engine.Rng} (deterministic given the spec seed);
    - {b nondeterministic} — some call path reaches [Random.*],
      [Hashtbl.hash] or polymorphic [compare];
    - {b wall-clock} — some call path reaches [Sys.time] /
      [Unix.gettimeofday] / [Unix.time];
    - {b domain-spawning} — some call path reaches [Domain.spawn] /
      [Thread.create] / [Unix.fork].

    Taint propagates caller-ward to a fixpoint, with two sanctioned
    {e barriers} that absorb it: [lib/engine/rng.ml] absorbs
    nondeterminism (it is the seeded wrapper itself) and [lib/obs/]
    absorbs wall-clock reads ([Obs.Profile] is the one sanctioned
    profiling site, per R7). The reasons recorded for each taint are
    recomputed canonically after the fixpoint, so reported chains do not
    depend on propagation order (see the module-reordering qcheck
    property in the tests). *)

type kind = Nondet | Wall | Spawn

type reason =
  | Root of { name : string; line : int }
      (** direct reference to a primitive root at [line] *)
  | Via of { def : string; line : int }
      (** reference at [line] to a node that is itself tainted *)

type taint = {
  nondet : reason option;
  wall : reason option;
  spawn : reason option;
  seeded : bool;
}

type t

val classify_root : string -> kind option
(** Classify a normalised external name as a primitive taint root. *)

val compute : Callgraph.t -> t
val taint_of : t -> string -> taint

val effect_name : taint -> string
(** Human name of the strongest classification: ["nondeterministic"],
    ["wall-clock"], ["domain-spawning"], ["seeded-rng"] or ["pure"]
    (taints dominate seededness; among taints the order above is used
    for display only). *)

val chain : Callgraph.t -> t -> kind -> string -> string list
(** [chain g t kind id] renders the call chain from node [id] to the
    primitive root that taints it, one formatted step per element:
    ["Net.Port.delay (lib/net/port.ml:12)"; ...; "Random.float"].
    Empty when [id] is not tainted for [kind]. *)
