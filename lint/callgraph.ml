type def = {
  id : string;
  unit_canonical : string;
  source : string;
  line : int;
}

type t = {
  defs_tbl : (string, def) Hashtbl.t;
  refs_tbl : (string, (string * int) list) Hashtbl.t;
  ident_ids : (string, string) Hashtbl.t;
      (* "<unit>\x00<Ident.unique_name>" -> node id, for resolving bare
         in-module references (Pident) to the binding they denote. Ident
         stamps restart for every compilation unit, so the key must carry
         the unit: two files of similar shape routinely give their
         top-level bindings identical stamps, and an unscoped table
         cross-wires them. Pidents can only denote same-unit bindings
         (cross-module references are Pdots), so the unit of the body
         being scanned is the right scope. *)
  bodies_ : (def * Typedtree.expression) list;
  globals_ : (def * Types.type_expr) list;
  type_decls_ : (string, Typedtree.type_declaration) Hashtbl.t;
}

let strip_stdlib s =
  let p = "Stdlib." in
  let lp = String.length p in
  if String.length s > lp && String.sub s 0 lp = p then
    String.sub s lp (String.length s - lp)
  else s

let normalize path =
  strip_stdlib (Cmt_loader.canonical_of_modname (Path.name path))

let line_of_loc (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let build units =
  let defs_tbl = Hashtbl.create 512 in
  let refs_tbl = Hashtbl.create 512 in
  let ident_ids = Hashtbl.create 512 in
  let bodies = ref [] in
  let globals = ref [] in
  let type_decls_ = Hashtbl.create 64 in
  (* Pass 1: collect module-level bindings (nested modules included) and
     remember which body belongs to which node. *)
  List.iter
    (fun (u : Cmt_loader.unit_info) ->
      let add_def id line expr =
        let d = { id; unit_canonical = u.canonical; source = u.source; line } in
        if not (Hashtbl.mem defs_tbl id) then begin
          Hashtbl.replace defs_tbl id d;
          bodies := (d, expr) :: !bodies
        end;
        d
      in
      let rec collect_str prefix (str : Typedtree.structure) =
        List.iter
          (fun (item : Typedtree.structure_item) ->
            match item.str_desc with
            | Tstr_value (_, vbs) ->
                List.iter
                  (fun (vb : Typedtree.value_binding) ->
                    let line = line_of_loc vb.vb_loc in
                    match Typedtree.pat_bound_idents vb.vb_pat with
                    | [] ->
                        ignore
                          (add_def
                             (Printf.sprintf "%s.<init:%d>" prefix line)
                             line vb.vb_expr)
                    | first :: _ as ids ->
                        let id = prefix ^ "." ^ Ident.name first in
                        let d = add_def id line vb.vb_expr in
                        List.iter
                          (fun i ->
                            Hashtbl.replace ident_ids
                              (u.canonical ^ "\x00" ^ Ident.unique_name i)
                              id)
                          ids;
                        (match ids with
                        | [ _ ] ->
                            globals := (d, vb.vb_pat.pat_type) :: !globals
                        | _ -> ()))
                  vbs
            | Tstr_eval (e, _) ->
                let line = line_of_loc item.str_loc in
                ignore
                  (add_def (Printf.sprintf "%s.<init:%d>" prefix line) line e)
            | Tstr_type (_, decls) ->
                List.iter
                  (fun (td : Typedtree.type_declaration) ->
                    Hashtbl.replace type_decls_
                      (prefix ^ "." ^ Ident.name td.typ_id)
                      td)
                  decls
            | Tstr_module mb ->
                let name =
                  match mb.mb_id with Some i -> Ident.name i | None -> "_"
                in
                collect_mod (prefix ^ "." ^ name) mb.mb_expr
            | Tstr_recmodule mbs ->
                List.iter
                  (fun (mb : Typedtree.module_binding) ->
                    let name =
                      match mb.mb_id with Some i -> Ident.name i | None -> "_"
                    in
                    collect_mod (prefix ^ "." ^ name) mb.mb_expr)
                  mbs
            | _ -> ())
          str.str_items
      and collect_mod prefix (me : Typedtree.module_expr) =
        match me.mod_desc with
        | Tmod_structure str -> collect_str prefix str
        | Tmod_constraint (me, _, _, _) -> collect_mod prefix me
        | Tmod_functor (_, me) -> collect_mod prefix me
        | _ -> ()
      in
      collect_str u.canonical u.structure)
    units;
  (* Pass 2: collect references per body. A reference in any position is
     an edge — closures escape into the event queue, so "mentions" is the
     sound notion of "may call". *)
  List.iter
    (fun ((d : def), expr) ->
      let seen = Hashtbl.create 16 in
      let out = ref [] in
      let record target line =
        if not (Hashtbl.mem seen target) then begin
          Hashtbl.add seen target ();
          out := (target, line) :: !out
        end
      in
      let expr_it sub (e : Typedtree.expression) =
        (match e.exp_desc with
        | Texp_ident (path, _, _) -> (
            let line = line_of_loc e.exp_loc in
            match path with
            | Path.Pident i -> (
                match
                  Hashtbl.find_opt ident_ids
                    (d.unit_canonical ^ "\x00" ^ Ident.unique_name i)
                with
                | Some id -> record id line
                | None -> (* local binding: not an edge *) ())
            | _ -> record (normalize path) line)
        | _ -> ());
        Tast_iterator.default_iterator.expr sub e
      in
      let it = { Tast_iterator.default_iterator with expr = expr_it } in
      it.expr it expr;
      Hashtbl.replace refs_tbl d.id (List.rev !out))
    !bodies;
  let cmp_fst (a, _) (b, _) = String.compare a.id b.id in
  {
    defs_tbl;
    refs_tbl;
    ident_ids;
    bodies_ = List.sort cmp_fst !bodies;
    globals_ = List.sort cmp_fst !globals;
    type_decls_;
  }

let defs t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.defs_tbl []
  |> List.sort (fun a b -> String.compare a.id b.id)

let find_def t id = Hashtbl.find_opt t.defs_tbl id
let refs t id = Option.value ~default:[] (Hashtbl.find_opt t.refs_tbl id)

let resolve t ~from_def target =
  if Hashtbl.mem t.defs_tbl target then Some target
  else
    (* Walk up the enclosing-module prefixes of the referrer. *)
    let rec up prefix =
      match String.rindex_opt prefix '.' with
      | None -> None
      | Some i ->
          let prefix = String.sub prefix 0 i in
          let candidate = prefix ^ "." ^ target in
          if Hashtbl.mem t.defs_tbl candidate then Some candidate
          else up prefix
    in
    up from_def

let bodies t = t.bodies_
let globals t = t.globals_

let type_decls t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.type_decls_ []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let is_toplevel_ident t ~unit i =
  Hashtbl.mem t.ident_ids (unit ^ "\x00" ^ Ident.unique_name i)
