(** Cross-module call graph over loaded [.cmt] units.

    Nodes are module-level value bindings, identified by their canonical
    dotted path (["Engine.Sim.step"], ["Net.Port.send"], nested modules
    included). Side-effecting top-level items ([let () = ...],
    [Tstr_eval]) become pseudo-nodes named [Mod.<init:LINE>] so module
    initialisation code participates in taint propagation like any other
    code.

    Edges are {e references}: every resolved identifier mentioned in a
    binding's body, whether in call position or merely escaping as a
    value (a function whose address escapes into the event queue runs
    later, so a reference is treated as a potential call — the
    over-approximation that makes the taint analysis sound for
    event-driven code). Use-site paths are normalised so that
    [Engine__Time.add], [Engine.Time.add] and a bare in-module [add] all
    resolve to the same node, and a [Stdlib.] prefix is dropped so
    primitives compare as [Random.int], [compare], [Hashtbl.hash]. *)

type def = {
  id : string;  (** canonical dotted identifier *)
  unit_canonical : string;  (** owning compilation unit, dotted *)
  source : string;  (** source path, e.g. ["lib/engine/sim.ml"] *)
  line : int;  (** 1-based line of the binding *)
}

type t

val normalize : Path.t -> string
(** Canonical dotted name of a use-site path: ["__"] module mangling
    becomes ["."], one leading ["Stdlib."] is dropped. *)

val build : Cmt_loader.unit_info list -> t

val defs : t -> def list
(** All nodes, sorted by [id] — iteration order is deterministic and
    independent of the order units were loaded in. *)

val find_def : t -> string -> def option

val refs : t -> string -> (string * int) list
(** References made by a node's body, in source order, deduplicated by
    target (first occurrence wins). Targets are either known node ids or
    normalised external names ([Random.int], [List.iter], ...). *)

val resolve : t -> from_def:string -> string -> string option
(** Resolve a reference target to a node id: exact match first, then
    against each enclosing module prefix of [from_def] (so a reference
    to [Sub.helper] from [Mod.Sub2.f] finds [Mod.Sub.helper]). [None]
    for externals (stdlib, otherlibs). *)

val bodies : t -> (def * Typedtree.expression) list
(** Every node paired with its body, sorted by [def.id] — the hook for
    per-expression typed passes (R13, R14) that need to know which
    function they are inside. *)

val globals : t -> (def * Types.type_expr) list
(** Module-level single-variable bindings with their inferred type —
    the candidate set for R12's mutable-global scan. Sorted by id. *)

val type_decls : t -> (string * Typedtree.type_declaration) list
(** Type declarations keyed by canonical path (["Obs.Metrics.t"]) —
    lets R12 see through user record types with [mutable] fields. *)

val is_toplevel_ident : t -> unit:string -> Ident.t -> bool
(** Whether an identifier is bound at module level in the given
    compilation unit (canonical name). Used by R14 to separate closure
    captures from references to statically-allocated globals. Scoped per
    unit because [Ident] stamps restart for each compilation unit. *)
