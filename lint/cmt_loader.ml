type unit_info = {
  modname : string;
  canonical : string;
  source : string;
  structure : Typedtree.structure;
}

(* Split on the literal "__" dune uses to mangle wrapped-library module
   names; single underscores are ordinary identifier characters. *)
let canonical_of_modname m =
  let n = String.length m in
  let parts = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    if m.[!i] = '_' && m.[!i + 1] = '_' then begin
      parts := String.sub m !start (!i - !start) :: !parts;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  parts := String.sub m !start (n - !start) :: !parts;
  List.rev !parts |> List.filter (fun s -> s <> "") |> String.concat "."

let load_file path =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation structure, Some source
        when Filename.check_suffix source ".ml" ->
          let modname = cmt.Cmt_format.cmt_modname in
          Some
            { modname; canonical = canonical_of_modname modname; source;
              structure }
      | _ -> None)

(* Unlike the source walker in Rules, this one must descend into
   dot-prefixed directories: dune hides the .cmt artifacts under
   .<lib>.objs/byte/. Only .git (huge, never holds cmts) is skipped. *)
let rec walk path acc =
  match Sys.is_directory path with
  | exception Sys_error _ -> acc
  | true ->
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
             if name = ".git" then acc
             else walk (Filename.concat path name) acc)
           acc
  | false ->
      if Filename.check_suffix path ".cmt" then path :: acc else acc

let load_tree ~roots =
  let files =
    List.fold_left (fun acc r -> walk r acc) [] roots
    |> List.sort_uniq String.compare
  in
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc f ->
      match load_file f with
      | Some u when not (Hashtbl.mem seen u.modname) ->
          Hashtbl.add seen u.modname ();
          u :: acc
      | _ -> acc)
    [] files
  |> List.sort (fun a b -> String.compare a.canonical b.canonical)
