type kind = Nondet | Wall | Spawn

type reason =
  | Root of { name : string; line : int }
  | Via of { def : string; line : int }

type taint = {
  nondet : reason option;
  wall : reason option;
  spawn : reason option;
  seeded : bool;
}

type t = (string, taint) Hashtbl.t

let pure = { nondet = None; wall = None; spawn = None; seeded = false }

let starts_with ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let rec after_lib = function
  | "lib" :: rest -> Some rest
  | _ :: rest -> after_lib rest
  | [] -> None

(* The two sanctioned absorption sites: the seeded Rng wrapper itself, and
   the observability layer's profiling clock (cf. R1 and R7). *)
let is_rng_barrier src =
  match after_lib (segments src) with
  | Some [ "engine"; "rng.ml" ] -> true
  | _ -> false

let is_obs_barrier src =
  match after_lib (segments src) with
  | Some ("obs" :: _) -> true
  | _ -> false

let classify_root name =
  if starts_with ~prefix:"Random." name then Some Nondet
  else
    match name with
    | "Hashtbl.hash" | "Hashtbl.seeded_hash" | "Hashtbl.hash_param" ->
        Some Nondet
    | "compare" -> Some Nondet (* bare = Stdlib.compare, polymorphic *)
    | "Sys.time" | "Unix.gettimeofday" | "Unix.time" -> Some Wall
    | "Domain.spawn" | "Thread.create" | "Unix.fork" -> Some Spawn
    | _ -> None

let is_seeded_target name = starts_with ~prefix:"Engine.Rng." name

(* A reference, pre-resolved: either an edge to another node or (when it
   does not resolve) possibly a primitive taint root. *)
type rref = {
  target : string;
  line : int;
  node : string option;
  root : kind option;
}

let resolved_refs g (d : Callgraph.def) =
  List.map
    (fun (target, line) ->
      match Callgraph.resolve g ~from_def:d.id target with
      | Some node -> { target; line; node = Some node; root = None }
      | None -> { target; line; node = None; root = classify_root target })
    (Callgraph.refs g d.id)

type bits = { n : bool; w : bool; s : bool; sd : bool }

let compute g =
  let defs = Callgraph.defs g in
  let rrefs = Hashtbl.create 256 in
  List.iter (fun d -> Hashtbl.replace rrefs d.Callgraph.id (resolved_refs g d)) defs;
  let state : (string, bits) Hashtbl.t = Hashtbl.create 256 in
  let get id =
    Option.value ~default:{ n = false; w = false; s = false; sd = false }
      (Hashtbl.find_opt state id)
  in
  (* Boolean fixpoint first; reasons are assigned canonically afterwards so
     the reported chains do not depend on propagation order. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (d : Callgraph.def) ->
        let old = get d.id in
        let bits =
          List.fold_left
            (fun b r ->
              match (r.node, r.root) with
              | Some node, _ ->
                  let g' = get node in
                  {
                    n = b.n || g'.n;
                    w = b.w || g'.w;
                    s = b.s || g'.s;
                    sd = b.sd || g'.sd;
                  }
              | None, Some Nondet -> { b with n = true }
              | None, Some Wall -> { b with w = true }
              | None, Some Spawn -> { b with s = true }
              | None, None ->
                  if is_seeded_target r.target then { b with sd = true } else b)
            { n = false; w = false; s = false; sd = false }
            (Hashtbl.find rrefs d.id)
        in
        let bits =
          if is_rng_barrier d.source then { bits with n = false; sd = true }
          else bits
        in
        let bits =
          if is_obs_barrier d.source then { bits with w = false } else bits
        in
        if bits <> old then begin
          Hashtbl.replace state d.id bits;
          changed := true
        end)
      defs
  done;
  (* Canonical reason: the first reference, in source order, that carries
     the taint. *)
  let reason_for d kind =
    let has (b : bits) = function
      | Nondet -> b.n
      | Wall -> b.w
      | Spawn -> b.s
    in
    List.find_map
      (fun r ->
        match (r.node, r.root) with
        | Some node, _ when has (get node) kind ->
            Some (Via { def = node; line = r.line })
        | None, Some k when k = kind ->
            Some (Root { name = r.target; line = r.line })
        | _ -> None)
      (Hashtbl.find rrefs d.Callgraph.id)
  in
  let out : t = Hashtbl.create 256 in
  List.iter
    (fun (d : Callgraph.def) ->
      let b = get d.id in
      Hashtbl.replace out d.id
        {
          nondet = (if b.n then reason_for d Nondet else None);
          wall = (if b.w then reason_for d Wall else None);
          spawn = (if b.s then reason_for d Spawn else None);
          seeded = b.sd;
        })
    defs;
  out

let taint_of t id = Option.value ~default:pure (Hashtbl.find_opt t id)

let effect_name taint =
  if taint.nondet <> None then "nondeterministic"
  else if taint.wall <> None then "wall-clock"
  else if taint.spawn <> None then "domain-spawning"
  else if taint.seeded then "seeded-rng"
  else "pure"

let reason_of taint = function
  | Nondet -> taint.nondet
  | Wall -> taint.wall
  | Spawn -> taint.spawn

let chain g t kind id =
  let step (d : Callgraph.def) =
    Printf.sprintf "%s (%s:%d)" d.id d.source d.line
  in
  let rec go id visited acc =
    if List.mem id visited then List.rev acc
    else
      match Callgraph.find_def g id with
      | None -> List.rev acc
      | Some d -> (
          let acc = step d :: acc in
          match reason_of (taint_of t id) kind with
          | Some (Root { name; _ }) -> List.rev (name :: acc)
          | Some (Via { def; _ }) -> go def (id :: visited) acc
          | None -> List.rev acc)
  in
  go id [] []
