(** dtlint — simulator-aware static analysis for the DT-DCTCP codebase.

    The simulator's headline results (describing-function loci, limit-cycle
    verdicts, figure reproduction) depend on bit-exact, deterministic runs.
    These rules catch the slips that silently break that property:

    - {b R1} no [Random.*] outside [lib/engine/rng.ml]: all stochasticity
      must flow through the seeded {!Engine.Rng} so runs are reproducible.
    - {b R2} no float [=] / [<>] / [==] / [!=]: timestamps and queue depths
      must use [Time.compare] / epsilon comparisons.
    - {b R3} no polymorphic [compare] / [Stdlib.compare] / [Hashtbl.hash]:
      event ordering must use an explicit monomorphic comparator.
    - {b R4} no [print_string] / [print_endline] / [Printf.printf] /
      [Format.printf] inside [lib/]: output goes through [Logs] or
      [Net.Trace] so headless benches stay clean.
    - {b R5} every [lib/**/*.ml] has a matching [.mli].
    - {b R6} no [assert false] or bare [failwith ""] / [invalid_arg ""] in
      the [lib/engine] and [lib/net] hot paths: failures must carry context.
    - {b R7} no wall-clock reads ([Sys.time], [Unix.gettimeofday],
      [Unix.time]) outside [lib/obs]: simulated time is {!Engine.Time}, and
      the only sanctioned wall-clock site is [Obs.Profile] — a stray read
      leaking into simulation logic would silently break determinism, the
      same hazard family as R1.
    - {b R8} no [Domain.*] / [Thread.*] / [Unix.fork] outside [lib/exp]:
      Exp.Runner is the only sanctioned parallelism site. Simulations are
      strictly single-domain programs — parallelism belongs between runs
      (the runner fans whole specs across domains), never inside one, where
      scheduling nondeterminism would break bit-reproducibility.
    - {b R9} no [Obj.magic] outside [lib/engine/]: the engine's pooled
      containers ({!Engine.Heap}, {!Engine.Ring}, the event pool) seed
      empty slots with an immediate placeholder and are the only audited
      sites; anywhere else [Obj.magic] defeats the type system.
    - {b R10} no [Rng.create] / [Rng.split] outside the stream-owning
      layers ([lib/engine], [lib/fault], [lib/workloads], [lib/exp]): every
      random stream must be derivable from a spec seed, so only the layers
      that receive seeds may mint streams. A transport or queue module
      minting its own stream would fork the seed tree invisibly — the
      faulted-run analogue of R1.

    Rules R1–R4 and R6–R10 are detected on the parsetree ({!lint_source}); R2
    is necessarily a syntactic heuristic (the parsetree is untyped): an
    equality is flagged when either operand is recognisably a float — a
    float literal, float arithmetic ([+.], [*.], ...), a [float] type
    annotation, or a call to a well-known float-returning function
    ([to_sec], [sqrt], [Float.*], ...).

    Rules R11–R14 are the {e typed} whole-program pass: they operate on
    dune-produced [.cmt] Typedtree artifacts (see {!Typed_rules}) and can
    therefore follow call chains across modules and read inferred types:

    - {b R11} transitive nondeterminism taint: no call path from
      [Random.*], [Hashtbl.hash], polymorphic [compare] or a wall-clock
      read into [lib/engine|net|tcp|dctcp|fault|workloads], wrappers
      included — the whole-program closure of R1/R3/R7.
    - {b R12} static data-race detection: top-level mutable state ([ref],
      [array], [Hashtbl.t], [Buffer.t], records with [mutable] fields)
      reachable from a [Domain.spawn]-ing function must be [Atomic.t] or
      carry a justified ownership annotation.
    - {b R13} time-unit hygiene: no raw [int64] arithmetic on
      {!Engine.Time.t} instants outside [lib/engine/time.ml].
    - {b R14} hot-path allocation: no partial applications, capturing
      closures or boxed-float returns in functions reachable from the
      event-loop entry points of [lib/engine] / [lib/net].

    Any line-based rule can be suppressed for one line with a trailing
    comment: [(* dtlint: allow R2 *)] (several ids may be listed, or
    [all]). *)

type rule =
  | R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10
  | R11 | R12 | R13 | R14

type violation = {
  rule : rule;
  file : string;  (** path as given on the command line *)
  line : int;  (** 1-based line of the offending expression *)
  message : string;  (** human-readable explanation, no location prefix *)
  notes : string list;
      (** extra context lines (the typed rules put the call-chain trace
          here); empty for the syntactic rules *)
}

exception Parse_error of string * int * string
(** [(file, line, message)] — the file is not syntactically valid OCaml. *)

val all_rules : rule list
(** Every rule, R1–R14, in order. *)

val syntactic_rules : rule list
(** R1–R10: detected on the parsetree, no build artifacts needed. *)

val typed_rules : rule list
(** R11–R14: need [.cmt] Typedtree artifacts (the [--typed] pass). *)

val rule_id : rule -> string
val rule_of_id : string -> rule option
val rule_doc : rule -> string

type suppressions
(** Per-line [(* dtlint: allow Rn *)] table for one source file. *)

val suppressions : string -> suppressions
(** Parse the suppression comments out of a source text. *)

val suppressed : suppressions -> rule -> line:int -> bool

val lint_source : ?rules:rule list -> filename:string -> string -> violation list
(** Lint an implementation ([.ml]) given as a string. [filename] scopes the
    rules (R1's rng exemption, R4's [lib/] scope, R6's hot-path scope) and
    is reported in violations. Only expression-level rules apply; R5 is
    checked by {!check_mli}. Violations are sorted by line. Raises
    {!Parse_error} on syntax errors. *)

val check_mli : ml_file:string -> mli_exists:bool -> violation option
(** R5: [Some violation] when [ml_file] lives under [lib/] and has no
    matching interface. *)

val lint_file : ?rules:rule list -> string -> violation list
(** Lint one file from disk. [.ml] files get the expression rules plus R5
    (probing for the sibling [.mli]); other files yield []. *)

val lint_paths : ?rules:rule list -> string list -> violation list
(** Walk files and/or directories (recursively, skipping [_build], [.git]
    and other [_]/[.]-prefixed entries) and lint every [.ml] found, in
    deterministic (sorted) order. *)

val pp_violation : Format.formatter -> violation -> unit
(** [file:line: [Rn] message] — one line, suitable for compiler-style
    output (and for the CI problem matcher). Notes are omitted. *)

val pp_violation_full : Format.formatter -> violation -> unit
(** Like {!pp_violation} followed by one indented line per note — the
    call-chain trace for the typed rules. *)
