(* Tests for the paper's contribution layer: the two marking mechanisms and
   the DCTCP sender algorithm. *)

module M = Dctcp.Marking_policies
module Marking = Net.Marking

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg

(* Drive a marking policy with a walk of occupancy values (bytes). Between
   consecutive samples we call on_enqueue when rising (the occupancy
   includes an arriving packet) and on_dequeue when falling. Returns the
   per-step mark decision for rising steps (None for falling steps). *)
let drive policy walk =
  List.map
    (fun (dir, occ) ->
      match dir with
      | `Enq ->
          Some (policy.Marking.on_enqueue ~bytes:occ ~packets:(occ / 1500))
      | `Deq ->
          policy.Marking.on_dequeue ~bytes:occ ~packets:(occ / 1500);
          None)
    walk

(* Turn a list of absolute occupancies into enqueue/dequeue steps. *)
let steps_of_walk occs =
  let rec go prev = function
    | [] -> []
    | occ :: rest ->
        let dir = if occ >= prev then `Enq else `Deq in
        (dir, occ) :: go occ rest
  in
  go 0 occs

(* --- single threshold --- *)

let test_single_marks_above_k () =
  let p = M.single_threshold ~k_bytes:3000 in
  let marks =
    drive p (steps_of_walk [ 1500; 3000; 4500; 6000 ]) |> List.filter_map Fun.id
  in
  Alcotest.check
    (Alcotest.list Alcotest.bool)
    "marks strictly above K"
    [ false; false; true; true ]
    marks

let test_single_is_stateless () =
  let p = M.single_threshold ~k_bytes:3000 in
  (* Marking reflects only the instantaneous occupancy. *)
  ignore (drive p (steps_of_walk [ 6000; 1500 ]));
  let marks =
    drive p [ (`Enq, 3000) ] |> List.filter_map Fun.id
  in
  Alcotest.check (Alcotest.list Alcotest.bool) "at K does not mark" [ false ]
    marks

let test_single_validation () =
  checkb "negative K raises" true
    (match M.single_threshold ~k_bytes:(-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- double threshold (K1 < K2, the simulation configuration) --- *)

let k1 = 3000 (* 2 packets *)
let k2 = 6000 (* 4 packets *)

let test_dt_starts_at_k1_rising () =
  let p = M.double_threshold ~k1_bytes:k1 ~k2_bytes:k2 () in
  let marks =
    drive p (steps_of_walk [ 1500; 3000; 4500; 6000; 7500 ])
    |> List.filter_map Fun.id
  in
  Alcotest.check
    (Alcotest.list Alcotest.bool)
    "on from the K1 up-crossing"
    [ false; false; true; true; true ]
    marks

let test_dt_stops_at_k2_falling () =
  let p = M.double_threshold ~k1_bytes:k1 ~k2_bytes:k2 () in
  (* rise to 9000, then fall: marking stops when occupancy falls to K2 *)
  ignore (drive p (steps_of_walk [ 4500; 9000 ]));
  ignore (drive p [ (`Deq, 7500) ]);
  (* still above K2: a new arrival is marked *)
  let still = drive p [ (`Enq, 9000) ] |> List.filter_map Fun.id in
  Alcotest.check (Alcotest.list Alcotest.bool) "still marking above K2"
    [ true ] still;
  ignore (drive p [ (`Deq, 7500); (`Deq, 6000); (`Deq, 4500) ]);
  (* now below K2 on the way down: off, even though above K1 *)
  let after = drive p [ (`Enq, 4600) ] |> List.filter_map Fun.id in
  Alcotest.check (Alcotest.list Alcotest.bool) "off below K2 on descent"
    [ false ] after

let test_dt_turnaround_inside_band () =
  let p = M.double_threshold ~k1_bytes:k1 ~k2_bytes:k2 () in
  (* Rise through K1 into the band, turn around before K2, fall below K1:
     marking on inside the band (entered rising), off below K1. *)
  let up = drive p (steps_of_walk [ 3000; 4500 ]) |> List.filter_map Fun.id in
  Alcotest.check (Alcotest.list Alcotest.bool) "on in band (rising)"
    [ false; true ] up;
  ignore (drive p [ (`Deq, 4000) ]);
  let still = drive p [ (`Enq, 4500) ] |> List.filter_map Fun.id in
  Alcotest.check (Alcotest.list Alcotest.bool)
    "held while wandering in band" [ true ] still;
  ignore (drive p [ (`Deq, 3000) ]);
  let off = drive p [ (`Enq, 3000) ] |> List.filter_map Fun.id in
  Alcotest.check (Alcotest.list Alcotest.bool) "off at/below K1" [ false ] off

let test_dt_reentry_from_above () =
  let p = M.double_threshold ~k1_bytes:k1 ~k2_bytes:k2 () in
  (* Fall into the band from above K2 (marking off), wander, then rise
     above K2 again: marking must resume (no dead zone). *)
  ignore (drive p (steps_of_walk [ 4500; 9000 ]));
  ignore (drive p [ (`Deq, 5900) ]);
  let in_band = drive p [ (`Enq, 6000) ] |> List.filter_map Fun.id in
  Alcotest.check (Alcotest.list Alcotest.bool) "off in band from above"
    [ false ] in_band;
  let above = drive p [ (`Enq, 6100) ] |> List.filter_map Fun.id in
  Alcotest.check (Alcotest.list Alcotest.bool) "resumes above K2" [ true ]
    above

(* --- double threshold, thermostat configuration (K1 > K2) --- *)

let test_dt_thermostat () =
  (* on above 6000, held in (3000,6000], off at/below 3000 *)
  let p = M.double_threshold ~k1_bytes:6000 ~k2_bytes:3000 () in
  let up =
    drive p (steps_of_walk [ 3000; 4500; 6000; 6100 ]) |> List.filter_map Fun.id
  in
  Alcotest.check
    (Alcotest.list Alcotest.bool)
    "on only above hi"
    [ false; false; false; true ]
    up;
  ignore (drive p [ (`Deq, 4500) ]);
  let held = drive p [ (`Enq, 4600) ] |> List.filter_map Fun.id in
  Alcotest.check (Alcotest.list Alcotest.bool) "held on descent into band"
    [ true ] held;
  ignore (drive p [ (`Deq, 3000) ]);
  let off = drive p [ (`Enq, 3100) ] |> List.filter_map Fun.id in
  Alcotest.check (Alcotest.list Alcotest.bool) "off below lo" [ false ] off

let test_dt_validation () =
  checkb "negative raises" true
    (match M.double_threshold ~k1_bytes:(-1) ~k2_bytes:5 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bytes_of_packets () =
  checki "default packet size" 60000 (M.bytes_of_packets 40);
  checki "custom packet size" 40000 (M.bytes_of_packets ~packet_bytes:1000 40);
  checkb "negative raises" true
    (match M.bytes_of_packets (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Property: with K1 = K2 = K the double threshold behaves exactly like the
   single threshold on any occupancy walk. *)
let prop_dt_degenerates_to_single =
  QCheck.Test.make ~count:500
    ~name:"double threshold with K1=K2 equals single threshold"
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 20))
    (fun occupancies_pkts ->
      let k = 7500 in
      let walk = steps_of_walk (List.map (fun p -> p * 1500) occupancies_pkts) in
      let single = M.single_threshold ~k_bytes:k in
      let double = M.double_threshold ~k1_bytes:k ~k2_bytes:k () in
      drive single walk = drive double walk)

(* Property: the double threshold marks a superset of nothing and is always
   off at/below min(K1,K2) and on above max(K1,K2). *)
let prop_dt_zone_bounds =
  QCheck.Test.make ~count:500 ~name:"double threshold respects its zones"
    QCheck.(
      triple
        (list_of_size Gen.(int_range 1 200) (int_bound 20))
        (int_range 1 10) (int_range 1 10))
    (fun (occupancies_pkts, a, b) ->
      let k1 = a * 1500 and k2 = b * 1500 in
      let lo = min k1 k2 and hi = max k1 k2 in
      let walk = steps_of_walk (List.map (fun p -> p * 1500) occupancies_pkts) in
      let p = M.double_threshold ~k1_bytes:k1 ~k2_bytes:k2 () in
      List.for_all2
        (fun (dir, occ) verdict ->
          match (dir, verdict) with
          | `Deq, None -> true
          | `Enq, Some marked ->
              if occ <= lo then not marked
              else if occ > hi then marked
              else true
          | _ -> false)
        walk (drive p walk))

(* --- scaled (limit-relative) thresholds --- *)

let test_scaled_single_tracks_limit () =
  let p = M.single_threshold_scaled ~k_frac:0.5 in
  p.Marking.on_limit ~limit_bytes:6000;
  (* K = 3000 *)
  checkb "marks above K" true (p.Marking.on_enqueue ~bytes:3100 ~packets:2);
  checkb "not at K" false (p.Marking.on_enqueue ~bytes:3000 ~packets:2);
  (* The buffer manager squeezes the port: K follows the limit down. *)
  p.Marking.on_limit ~limit_bytes:2000;
  checkb "K moved with the limit" true
    (p.Marking.on_enqueue ~bytes:1100 ~packets:1);
  checkb "below the moved K" false
    (p.Marking.on_enqueue ~bytes:1000 ~packets:1)

let test_scaled_equals_absolute_on_static_limit () =
  (* With one on_limit call (the Static-buffer case) the scaled policy
     is the absolute policy at frac x capacity, on any walk. *)
  let walk = steps_of_walk [ 1500; 3000; 4500; 6000; 3000; 1500; 4500 ] in
  let scaled = M.single_threshold_scaled ~k_frac:0.25 in
  scaled.Marking.on_limit ~limit_bytes:12_000;
  let absolute = M.single_threshold ~k_bytes:3000 in
  checkb "single: scaled = absolute" true
    (drive scaled walk = drive absolute walk);
  let dscaled = M.double_threshold_scaled ~k1_frac:0.25 ~k2_frac:0.5 () in
  dscaled.Marking.on_limit ~limit_bytes:12_000;
  let dabsolute = M.double_threshold ~k1_bytes:3000 ~k2_bytes:6000 () in
  checkb "double: scaled = absolute" true
    (drive dscaled walk = drive dabsolute walk)

let test_scaled_double_band_moves () =
  let p = M.double_threshold_scaled ~k1_frac:0.25 ~k2_frac:0.5 () in
  p.Marking.on_limit ~limit_bytes:12_000;
  (* band (3000, 6000], directional: on when entered rising *)
  let up = drive p (steps_of_walk [ 1500; 4500 ]) |> List.filter_map Fun.id in
  Alcotest.check (Alcotest.list Alcotest.bool) "on in band (rising)"
    [ false; true ] up;
  (* The limit doubles: the same occupancy is now below K1 = 6000, and
     the very next consultation sees the moved band. *)
  p.Marking.on_limit ~limit_bytes:24_000;
  let after = drive p [ (`Enq, 4500) ] |> List.filter_map Fun.id in
  Alcotest.check (Alcotest.list Alcotest.bool) "off below the moved band"
    [ false ] after

let test_scaled_validation () =
  checkb "frac above 1 raises" true
    (match M.single_threshold_scaled ~k_frac:1.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "negative frac raises" true
    (match M.double_threshold_scaled ~k1_frac:(-0.1) ~k2_frac:0.5 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_scaled_quantisation () =
  (* Fractions are floor-quantised to 1/1024ths: k_frac = 0.3 becomes
     307/1024, so at limit 1024 the byte threshold is exactly 307. *)
  let p = M.single_threshold_scaled ~k_frac:0.3 in
  p.Marking.on_limit ~limit_bytes:1024;
  checkb "marks just above the quantised K" true
    (p.Marking.on_enqueue ~bytes:308 ~packets:1);
  checkb "not at the quantised K" false
    (p.Marking.on_enqueue ~bytes:307 ~packets:1)

(* --- Dctcp_cc --- *)

type fake = { mutable cwnd : float; mutable ssthresh : float }

let fake_api () =
  let f = { cwnd = 10.; ssthresh = 1e9 } in
  let api =
    {
      Tcp.Cc.now = (fun () -> Engine.Time.zero);
      flow = 0;
      tracer = Obs.Trace.null;
      get_cwnd = (fun () -> f.cwnd);
      set_cwnd = (fun c -> f.cwnd <- Float.max 1. c);
      get_ssthresh = (fun () -> f.ssthresh);
      set_ssthresh = (fun s -> f.ssthresh <- s);
    }
  in
  (f, api)

let mk_cc ?(g = 1. /. 16.) ?(init_alpha = 0.) api =
  (Dctcp.Dctcp_cc.cc ~params:{ Dctcp.Dctcp_cc.g; init_alpha } ()) api

let alpha_of cc =
  match cc.Tcp.Cc.alpha () with
  | Some a -> a
  | None -> Alcotest.fail "dctcp must expose alpha"

(* Feed [windows] windows of [size] acks each, marking a fraction. *)
let feed cc ~windows ~size ~marked_fraction =
  let seq = ref 0 in
  for _ = 1 to windows do
    for i = 0 to size - 1 do
      let ece = float_of_int i < marked_fraction *. float_of_int size in
      incr seq;
      cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece ~snd_una:!seq
        ~snd_nxt:(!seq + size)
    done
  done

let test_alpha_starts_at_init () =
  let _, api = fake_api () in
  let cc = mk_cc ~init_alpha:0.7 api in
  checkf "initial alpha" 0.7 (alpha_of cc)

let test_alpha_converges_to_one_under_full_marking () =
  let _, api = fake_api () in
  let cc = mk_cc api in
  feed cc ~windows:100 ~size:10 ~marked_fraction:1.;
  checkb "alpha near 1" true (alpha_of cc > 0.95)

let test_alpha_decays_without_marking () =
  let _, api = fake_api () in
  let cc = mk_cc ~init_alpha:1. api in
  feed cc ~windows:100 ~size:10 ~marked_fraction:0.;
  checkb "alpha near 0" true (alpha_of cc < 0.05)

let test_alpha_tracks_marked_fraction () =
  let _, api = fake_api () in
  let cc = mk_cc api in
  feed cc ~windows:300 ~size:10 ~marked_fraction:0.4;
  checkb "alpha tracks F" true (Float.abs (alpha_of cc -. 0.4) < 0.05)

let test_alpha_ewma_gain () =
  let _, api = fake_api () in
  let cc = mk_cc ~g:0.5 ~init_alpha:0. api in
  (* One fully-marked window: alpha = 0.5 * 1.0. The first ack closes the
     (empty) initial window, so feed two windows and read after. *)
  feed cc ~windows:1 ~size:10 ~marked_fraction:1.;
  checkb "one-window update applied" true (alpha_of cc > 0.4)

let test_reduction_proportional_to_alpha () =
  let f, api = fake_api () in
  let cc = mk_cc ~init_alpha:0.5 api in
  f.cwnd <- 20.;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:5 ~snd_nxt:25;
  (* cwnd * (1 - alpha/2) = 20 * 0.75 = 15 *)
  checkf ~eps:1e-6 "proportional backoff" 15. f.cwnd;
  checkf ~eps:1e-6 "ssthresh follows" 15. f.ssthresh

let test_reduction_once_per_window () =
  let f, api = fake_api () in
  let cc = mk_cc ~init_alpha:1.0 api in
  f.cwnd <- 16.;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:5 ~snd_nxt:20;
  checkf "first reduction" 8. f.cwnd;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:10 ~snd_nxt:21;
  checkf "no second reduction in window" 8. f.cwnd;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:21 ~snd_nxt:40;
  checkf "reduces in next window" 4. f.cwnd

let test_growth_like_reno_without_marks () =
  let f, api = fake_api () in
  let cc = mk_cc api in
  f.cwnd <- 2.;
  f.ssthresh <- 8.;
  cc.Tcp.Cc.on_ack ~newly_acked:2 ~ece:false ~snd_una:2 ~snd_nxt:4;
  checkf "slow start" 4. f.cwnd;
  f.cwnd <- 10.;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:false ~snd_una:3 ~snd_nxt:14;
  checkf ~eps:1e-9 "congestion avoidance" 10.1 f.cwnd

let test_loss_behaviour () =
  let f, api = fake_api () in
  let cc = mk_cc api in
  f.cwnd <- 16.;
  cc.Tcp.Cc.on_fast_retransmit ();
  checkf "halve on fast rtx" 8. f.cwnd;
  cc.Tcp.Cc.on_timeout ();
  checkf "collapse on timeout" 1. f.cwnd;
  checkf "ssthresh half of pre-timeout" 4. f.ssthresh

let test_cc_validation () =
  checkb "bad g raises" true
    (match
       ignore
         (Dctcp.Dctcp_cc.cc ~params:{ Dctcp.Dctcp_cc.g = 0.; init_alpha = 0. } ()
           : Tcp.Cc.factory)
     with
    | exception Invalid_argument _ -> true
    | () -> false);
  checkb "bad init_alpha raises" true
    (match
       ignore
         (Dctcp.Dctcp_cc.cc
            ~params:{ Dctcp.Dctcp_cc.g = 0.1; init_alpha = 2. }
            ()
           : Tcp.Cc.factory)
     with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_default_params () =
  checkf ~eps:1e-12 "g is 1/16" (1. /. 16.) Dctcp.Dctcp_cc.default_params.Dctcp.Dctcp_cc.g;
  checkf "alpha starts conservative" 1.
    Dctcp.Dctcp_cc.default_params.Dctcp.Dctcp_cc.init_alpha

(* --- penalty hook & D2TCP --- *)

let fake_api_with_clock () =
  let f = { cwnd = 10.; ssthresh = 1e9 } in
  let clock = ref Engine.Time.zero in
  let api =
    {
      Tcp.Cc.now = (fun () -> !clock);
      flow = 0;
      tracer = Obs.Trace.null;
      get_cwnd = (fun () -> f.cwnd);
      set_cwnd = (fun c -> f.cwnd <- Float.max 1. c);
      get_ssthresh = (fun () -> f.ssthresh);
      set_ssthresh = (fun s -> f.ssthresh <- s);
    }
  in
  (f, api, clock)

let test_penalty_hook_overrides_alpha () =
  let f, api, _ = fake_api_with_clock () in
  let cc =
    (Dctcp.Dctcp_cc.cc_with_penalty
       ~params:{ Dctcp.Dctcp_cc.g = 0.0625; init_alpha = 1.0 }
       ~penalty:(fun _ -> 0.2)
       ())
      api
  in
  f.cwnd <- 20.;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:5 ~snd_nxt:25;
  (* reduction uses the penalty 0.2, not alpha=1: 20 * (1 - 0.1) = 18 *)
  checkf ~eps:1e-6 "penalty-gated reduction" 18. f.cwnd

let test_penalty_clamped () =
  let f, api, _ = fake_api_with_clock () in
  let cc =
    (Dctcp.Dctcp_cc.cc_with_penalty ~penalty:(fun _ -> 5.) ()) api
  in
  f.cwnd <- 20.;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:5 ~snd_nxt:25;
  (* clamped to 1: halves like classic TCP *)
  checkf ~eps:1e-6 "penalty clamped at 1" 10. f.cwnd

let test_penalty_context_fields () =
  let f, api, clock = fake_api_with_clock () in
  let seen = ref None in
  let cc =
    (Dctcp.Dctcp_cc.cc_with_penalty
       ~params:{ Dctcp.Dctcp_cc.g = 0.5; init_alpha = 0.6 }
       ~penalty:(fun ctx ->
         seen := Some ctx;
         ctx.Dctcp.Dctcp_cc.alpha)
       ())
      api
  in
  f.cwnd <- 12.;
  clock := Engine.Time.of_ms 3.;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:7 ~snd_nxt:20;
  match !seen with
  | Some ctx ->
      checkf "alpha passed" 0.6 ctx.Dctcp.Dctcp_cc.alpha;
      checkf "cwnd passed" 12. ctx.Dctcp.Dctcp_cc.cwnd;
      checki "snd_una passed" 7 ctx.Dctcp.Dctcp_cc.snd_una;
      checkf "now passed" 3e-3 (Engine.Time.to_sec ctx.Dctcp.Dctcp_cc.now)
  | None -> Alcotest.fail "penalty not consulted"

let test_imminence_formula () =
  let params = Dctcp.D2tcp_cc.default_deadline_params in
  (* Tc = 100 segments * 100us / 10 = 1 ms; D = 2 ms -> d = 0.5 *)
  let d =
    Dctcp.D2tcp_cc.imminence ~params ~remaining_segments:100 ~cwnd:10.
      ~rtt:(Engine.Time.span_of_us 100.)
      ~time_left:(Engine.Time.span_of_ms 2.)
  in
  checkf ~eps:1e-9 "far deadline" 0.5 d;
  (* Tc = 1 ms, D = 0.5 ms -> d = 2.0 *)
  let d2 =
    Dctcp.D2tcp_cc.imminence ~params ~remaining_segments:100 ~cwnd:10.
      ~rtt:(Engine.Time.span_of_us 100.)
      ~time_left:(Engine.Time.span_of_us 500.)
  in
  checkf ~eps:1e-9 "near deadline" 2.0 d2;
  (* expired deadline -> maximum urgency *)
  let d3 =
    Dctcp.D2tcp_cc.imminence ~params ~remaining_segments:1 ~cwnd:10.
      ~rtt:(Engine.Time.span_of_us 100.) ~time_left:0L
  in
  checkf "expired" 2.0 d3

let test_imminence_clamping () =
  let params =
    { Dctcp.D2tcp_cc.default_deadline_params with d_min = 0.25; d_max = 4. }
  in
  let d_lo =
    Dctcp.D2tcp_cc.imminence ~params ~remaining_segments:1 ~cwnd:100.
      ~rtt:(Engine.Time.span_of_us 1.)
      ~time_left:(Engine.Time.span_of_sec 10.)
  in
  checkf "clamped low" 0.25 d_lo;
  let d_hi =
    Dctcp.D2tcp_cc.imminence ~params ~remaining_segments:100000 ~cwnd:1.
      ~rtt:(Engine.Time.span_of_ms 1.)
      ~time_left:(Engine.Time.span_of_us 1.)
  in
  checkf "clamped high" 4. d_hi

let drive_d2tcp_reduction ~deadline_ms ~alpha =
  let f, api, clock = fake_api_with_clock () in
  let cc =
    (Dctcp.D2tcp_cc.cc
       ~params:
         {
           Dctcp.D2tcp_cc.default_deadline_params with
           base = { Dctcp.Dctcp_cc.g = 0.5; init_alpha = alpha };
         }
       ~total_segments:1000
       ~deadline:(Engine.Time.of_ms deadline_ms)
       ())
      api
  in
  f.cwnd <- 20.;
  clock := Engine.Time.of_ms 1.;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:5 ~snd_nxt:25;
  f.cwnd

let test_d2tcp_near_deadline_backs_off_less () =
  (* same alpha, same progress; only the time to deadline differs *)
  let near = drive_d2tcp_reduction ~deadline_ms:1.5 ~alpha:0.5 in
  let far = drive_d2tcp_reduction ~deadline_ms:1000. ~alpha:0.5 in
  checkb
    (Printf.sprintf "near keeps more window (%.2f > %.2f)" near far)
    true (near > far);
  (* DCTCP's reduction with alpha=0.5 sits between the two extremes *)
  let dctcp = 20. *. (1. -. (0.5 /. 2.)) in
  checkb "near >= dctcp" true (near >= dctcp -. 1e-9);
  checkb "far <= dctcp" true (far <= dctcp +. 1e-9)

let test_d2tcp_completed_flow_falls_back_to_alpha () =
  let f, api, clock = fake_api_with_clock () in
  let cc =
    (Dctcp.D2tcp_cc.cc ~total_segments:10
       ~deadline:(Engine.Time.of_ms 1.) ())
      api
  in
  f.cwnd <- 16.;
  clock := Engine.Time.of_ms 5.;
  (* snd_una beyond total: remaining <= 0, penalty = alpha (init 1.0) *)
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:15 ~snd_nxt:20;
  checkf ~eps:1e-6 "plain dctcp reduction" 8. f.cwnd

let test_d2tcp_validation () =
  checkb "bad total raises" true
    (match
       ignore
         (Dctcp.D2tcp_cc.cc ~total_segments:0
            ~deadline:(Engine.Time.of_ms 1.) ()
           : Tcp.Cc.factory)
     with
    | exception Invalid_argument _ -> true
    | () -> false);
  checkb "bad clamp raises" true
    (match
       ignore
         (Dctcp.D2tcp_cc.cc
            ~params:
              { Dctcp.D2tcp_cc.default_deadline_params with d_min = 3.; d_max = 2. }
            ~total_segments:10
            ~deadline:(Engine.Time.of_ms 1.) ()
           : Tcp.Cc.factory)
     with
    | exception Invalid_argument _ -> true
    | () -> false)

(* --- Protocol bundles --- *)

let test_protocol_names () =
  Alcotest.check Alcotest.string "dctcp" "DCTCP"
    (Dctcp.Protocol.dctcp ~k_bytes:60000 ()).Dctcp.Protocol.name;
  Alcotest.check Alcotest.string "dt" "DT-DCTCP"
    (Dctcp.Protocol.dt_dctcp ~k1_bytes:45000 ~k2_bytes:75000 ())
      .Dctcp.Protocol.name;
  Alcotest.check Alcotest.string "reno" "Reno"
    (Dctcp.Protocol.reno ()).Dctcp.Protocol.name;
  Alcotest.check Alcotest.string "ecn-reno" "ECN-Reno"
    (Dctcp.Protocol.ecn_reno ~k_bytes:60000).Dctcp.Protocol.name

let test_protocol_fresh_marking_instances () =
  let proto = Dctcp.Protocol.dt_dctcp ~k1_bytes:3000 ~k2_bytes:6000 () in
  let m1 = proto.Dctcp.Protocol.marking () in
  let m2 = proto.Dctcp.Protocol.marking () in
  (* Drive m1 into the marking state; m2 must be unaffected. *)
  ignore (m1.Marking.on_enqueue ~bytes:4500 ~packets:3);
  checkb "m2 state independent" false
    (m2.Marking.on_enqueue ~bytes:1000 ~packets:1)

let test_protocol_pkts_constructors () =
  let p = Dctcp.Protocol.dctcp_pkts ~k:40 () in
  let m = p.Dctcp.Protocol.marking () in
  checkb "marks above 40 pkts" true
    (m.Marking.on_enqueue ~bytes:61500 ~packets:41);
  let p2 = Dctcp.Protocol.dt_dctcp_pkts ~k1:30 ~k2:50 () in
  let m2 = p2.Dctcp.Protocol.marking () in
  checkb "dt marks above k1 rising" true
    (m2.Marking.on_enqueue ~bytes:46500 ~packets:31)

(* --- Reno_cc: the loss-based competitor --- *)

let mk_newreno api = Dctcp.Reno_cc.newreno api

let test_newreno_ignores_ece () =
  let f, api = fake_api () in
  let cc = mk_newreno api in
  Alcotest.(check string) "name" "newreno" cc.Tcp.Cc.name;
  checkb "no alpha" true (cc.Tcp.Cc.alpha () = None);
  (* Slow start, every ACK carrying ECE: a loss-based sender must keep
     growing as if the marks were not there. *)
  cc.Tcp.Cc.on_ack ~newly_acked:2 ~ece:true ~snd_una:2 ~snd_nxt:12;
  checkf "ECE ignored, window grew" 12. f.cwnd

let test_newreno_halves_once_per_episode () =
  let f, api = fake_api () in
  let cc = mk_newreno api in
  f.cwnd <- 16.;
  f.ssthresh <- 8.;
  cc.Tcp.Cc.on_ack ~newly_acked:0 ~ece:false ~snd_una:100 ~snd_nxt:200;
  cc.Tcp.Cc.on_fast_retransmit ();
  checkf "first retransmit halves" 8. f.cwnd;
  (* Another fast retransmit while snd_una is still below the recovery
     point (200): same loss episode, window untouched. *)
  cc.Tcp.Cc.on_ack ~newly_acked:0 ~ece:false ~snd_una:150 ~snd_nxt:210;
  cc.Tcp.Cc.on_fast_retransmit ();
  checkf "same episode: no second halving" 8. f.cwnd;
  (* snd_una passes the recovery point: the next loss is a new episode. *)
  cc.Tcp.Cc.on_ack ~newly_acked:0 ~ece:false ~snd_una:210 ~snd_nxt:260;
  cc.Tcp.Cc.on_fast_retransmit ();
  checkf "new episode halves again" 4. f.cwnd

let test_newreno_timeout_collapses () =
  let f, api = fake_api () in
  let cc = mk_newreno api in
  f.cwnd <- 16.;
  cc.Tcp.Cc.on_ack ~newly_acked:0 ~ece:false ~snd_una:100 ~snd_nxt:200;
  cc.Tcp.Cc.on_timeout ();
  checkf "collapse to 1" 1. f.cwnd;
  checkf "ssthresh = cwnd/2" 8. f.ssthresh;
  (* The timeout opened an episode too: a straggling fast retransmit
     below its recovery point must not halve the recovering window. *)
  cc.Tcp.Cc.on_ack ~newly_acked:0 ~ece:false ~snd_una:150 ~snd_nxt:210;
  cc.Tcp.Cc.on_fast_retransmit ();
  checkf "no halving inside the timeout episode" 1. f.cwnd

let test_newreno_growth () =
  let f, api = fake_api () in
  let cc = mk_newreno api in
  (* slow start: +1 segment per newly acked segment *)
  cc.Tcp.Cc.on_ack ~newly_acked:3 ~ece:false ~snd_una:3 ~snd_nxt:13;
  checkf "slow start growth" 13. f.cwnd;
  (* congestion avoidance: +acked/cwnd *)
  f.ssthresh <- 10.;
  cc.Tcp.Cc.on_ack ~newly_acked:13 ~ece:false ~snd_una:16 ~snd_nxt:29;
  checkf "linear growth" 14. f.cwnd

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "dctcp.single_threshold",
      [
        Alcotest.test_case "marks above K" `Quick test_single_marks_above_k;
        Alcotest.test_case "stateless" `Quick test_single_is_stateless;
        Alcotest.test_case "validation" `Quick test_single_validation;
      ] );
    ( "dctcp.double_threshold",
      [
        Alcotest.test_case "starts at K1 rising" `Quick
          test_dt_starts_at_k1_rising;
        Alcotest.test_case "stops at K2 falling" `Quick
          test_dt_stops_at_k2_falling;
        Alcotest.test_case "turnaround inside band" `Quick
          test_dt_turnaround_inside_band;
        Alcotest.test_case "re-entry from above" `Quick
          test_dt_reentry_from_above;
        Alcotest.test_case "thermostat configuration" `Quick test_dt_thermostat;
        Alcotest.test_case "validation" `Quick test_dt_validation;
        Alcotest.test_case "bytes_of_packets" `Quick test_bytes_of_packets;
        qtest prop_dt_degenerates_to_single;
        qtest prop_dt_zone_bounds;
      ] );
    ( "dctcp.scaled_thresholds",
      [
        Alcotest.test_case "single tracks the limit" `Quick
          test_scaled_single_tracks_limit;
        Alcotest.test_case "static limit = absolute policy" `Quick
          test_scaled_equals_absolute_on_static_limit;
        Alcotest.test_case "band moves with the limit" `Quick
          test_scaled_double_band_moves;
        Alcotest.test_case "validation" `Quick test_scaled_validation;
        Alcotest.test_case "1/1024 quantisation" `Quick
          test_scaled_quantisation;
      ] );
    ( "dctcp.newreno",
      [
        Alcotest.test_case "ECE ignored" `Quick test_newreno_ignores_ece;
        Alcotest.test_case "halves once per episode" `Quick
          test_newreno_halves_once_per_episode;
        Alcotest.test_case "timeout collapses" `Quick
          test_newreno_timeout_collapses;
        Alcotest.test_case "growth phases" `Quick test_newreno_growth;
      ] );
    ( "dctcp.cc",
      [
        Alcotest.test_case "alpha init" `Quick test_alpha_starts_at_init;
        Alcotest.test_case "alpha -> 1 under full marking" `Quick
          test_alpha_converges_to_one_under_full_marking;
        Alcotest.test_case "alpha decays unmarked" `Quick
          test_alpha_decays_without_marking;
        Alcotest.test_case "alpha tracks marked fraction" `Quick
          test_alpha_tracks_marked_fraction;
        Alcotest.test_case "ewma gain applied" `Quick test_alpha_ewma_gain;
        Alcotest.test_case "proportional reduction" `Quick
          test_reduction_proportional_to_alpha;
        Alcotest.test_case "once per window" `Quick
          test_reduction_once_per_window;
        Alcotest.test_case "reno growth without marks" `Quick
          test_growth_like_reno_without_marks;
        Alcotest.test_case "loss behaviour" `Quick test_loss_behaviour;
        Alcotest.test_case "validation" `Quick test_cc_validation;
        Alcotest.test_case "paper defaults" `Quick test_default_params;
      ] );
    ( "dctcp.d2tcp",
      [
        Alcotest.test_case "penalty hook overrides alpha" `Quick
          test_penalty_hook_overrides_alpha;
        Alcotest.test_case "penalty clamped" `Quick test_penalty_clamped;
        Alcotest.test_case "penalty context fields" `Quick
          test_penalty_context_fields;
        Alcotest.test_case "imminence formula" `Quick test_imminence_formula;
        Alcotest.test_case "imminence clamping" `Quick test_imminence_clamping;
        Alcotest.test_case "near deadline backs off less" `Quick
          test_d2tcp_near_deadline_backs_off_less;
        Alcotest.test_case "completed flow falls back" `Quick
          test_d2tcp_completed_flow_falls_back_to_alpha;
        Alcotest.test_case "validation" `Quick test_d2tcp_validation;
      ] );
    ( "dctcp.protocol",
      [
        Alcotest.test_case "names" `Quick test_protocol_names;
        Alcotest.test_case "fresh marking instances" `Quick
          test_protocol_fresh_marking_instances;
        Alcotest.test_case "packet-denominated constructors" `Quick
          test_protocol_pkts_constructors;
      ] );
  ]
