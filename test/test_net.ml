(* Tests for packets, marking policy plumbing, queues, ports, hosts,
   switches, topologies, and traces. *)

module Sim = Engine.Sim
module Time = Engine.Time
module Packet = Net.Packet
module Marking = Net.Marking
module Q = Net.Queue_disc

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg

(* A dedicated sim (and its packet store) for tests that do not
   otherwise need one. *)
let pkt_sim = Sim.create ()
let pkt_st = Packet.store_of pkt_sim

let mk_pkt ?(sim = pkt_sim) ?(src = 0) ?(dst = 1) ?(flow = 0) ?(size = 1500)
    ?(ecn = Packet.Ect) () =
  Packet.make (Packet.store_of sim) ~src ~dst ~flow ~size ~ecn
    Packet.No_payload

(* --- Packet --- *)

let test_packet_fields () =
  let p = mk_pkt ~src:3 ~dst:9 ~flow:7 ~size:100 () in
  checki "src" 3 (Packet.src pkt_st p);
  checki "dst" 9 (Packet.dst pkt_st p);
  checki "flow" 7 (Packet.flow pkt_st p);
  checki "size" 100 (Packet.size pkt_st p)

let test_packet_ids_unique () =
  let a = mk_pkt () and b = mk_pkt () in
  checkb "distinct ids" true (Packet.id pkt_st a <> Packet.id pkt_st b)

let test_packet_ids_per_sim () =
  (* Packet ids come from the owning sim's counter, not process-global
     state, so two runs hand out the same sequence however many other
     sims are interleaved with them. *)
  let ids_of sim others =
    List.init 8 (fun i ->
        List.iter (fun o -> if i mod 2 = 0 then ignore (mk_pkt ~sim:o ())) others;
        Packet.id (Packet.store_of sim) (mk_pkt ~sim ()))
  in
  let a = Sim.create ~seed:9L () and b = Sim.create ~seed:9L () in
  let noise = Sim.create () in
  let ids_a = ids_of a [ noise ] in
  let ids_b = ids_of b [] in
  Alcotest.(check (list int)) "identical id sequences" ids_a ids_b;
  Alcotest.(check (list int))
    "dense from 1" [ 1; 2; 3; 4; 5; 6; 7; 8 ] ids_b

let test_packet_mark () =
  let p = mk_pkt ~ecn:Packet.Ect () in
  checkb "not ce" false (Packet.is_ce pkt_st p);
  checkb "ect" true (Packet.is_ect pkt_st p);
  Packet.mark_ce pkt_st p;
  checkb "ce" true (Packet.is_ce pkt_st p);
  checkb "ce is ect" true (Packet.is_ect pkt_st p)

let test_packet_mark_not_ect () =
  let p = mk_pkt ~ecn:Packet.Not_ect () in
  Packet.mark_ce pkt_st p;
  checkb "not-ect cannot be marked" false (Packet.is_ce pkt_st p);
  checkb "not ect" false (Packet.is_ect pkt_st p)

let test_packet_bad_size () =
  checkb "zero size raises" true
    (match mk_pkt ~size:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_packet_double_free () =
  let sim = Sim.create () in
  let st = Packet.store_of sim in
  let p = mk_pkt ~sim () in
  Packet.free st p;
  checkb "second free raises" true
    (match Packet.free st p with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_packet_pool_steady () =
  (* The store recycles handles: with at most [k] packets live at once,
     the backing arrays stop growing after the first cycle, however many
     packets pass through afterwards. *)
  let sim = Sim.create () in
  let st = Packet.store_of sim in
  let live0 = Packet.live_count st in
  let k = 8 in
  let cycle () =
    let ps =
      List.init k (fun i -> mk_pkt ~sim ~flow:i ())
    in
    List.iter (fun p -> Packet.free st p) ps
  in
  cycle ();
  let pool = Packet.pool_size st in
  for _ = 1 to 100 do
    cycle ()
  done;
  checki "pool stopped growing" pool (Packet.pool_size st);
  checki "all handles returned" live0 (Packet.live_count st)

let test_packet_enq_ns_stamp () =
  (* Queue_disc.enqueue stamps the admission instant; a fresh packet
     reads back 0 until it is admitted somewhere. *)
  let sim = Sim.create () in
  let st = Packet.store_of sim in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:10_000) () in
  let p = mk_pkt ~sim () in
  checki "fresh packet unstamped" 0 (Packet.enq_ns st p);
  ignore
    (Sim.schedule_at sim (Time.of_ns 5_000L) (fun () ->
         checkb "admitted" true (Q.enqueue q p = `Enqueued)));
  Sim.run sim;
  checki "stamped with admission time" 5_000 (Packet.enq_ns st p)

(* --- Marking: none & red --- *)

let test_marking_none () =
  let m = Marking.none () in
  checkb "never marks" false
    (m.Marking.on_enqueue ~bytes:1_000_000 ~packets:1000)

let test_marking_red_below_min () =
  let m =
    Marking.red ~min_th_bytes:10_000 ~max_th_bytes:20_000 ~max_p:1.0
      ~weight:1.0 ~avg_pkt_size:1500 ()
  in
  checkb "below min never marks" false
    (m.Marking.on_enqueue ~bytes:5000 ~packets:4)

let test_marking_red_above_max () =
  let m =
    Marking.red ~min_th_bytes:10_000 ~max_th_bytes:20_000 ~max_p:1.0
      ~weight:1.0 ~avg_pkt_size:1500 ()
  in
  checkb "above max always marks" true
    (m.Marking.on_enqueue ~bytes:30_000 ~packets:20)

let test_marking_red_validation () =
  checkb "max<=min raises" true
    (match
       Marking.red ~min_th_bytes:10 ~max_th_bytes:10 ~max_p:0.5 ~weight:0.5
         ~avg_pkt_size:1500 ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Queue_disc --- *)

let test_queue_fifo_order () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:10_000) () in
  let a = mk_pkt ~sim ~size:100 () and b = mk_pkt ~sim ~size:100 () in
  checkb "enq a" true (Q.enqueue q a = `Enqueued);
  checkb "enq b" true (Q.enqueue q b = `Enqueued);
  checkb "fifo" true (Q.dequeue q = Some a);
  checkb "fifo2" true (Q.dequeue q = Some b);
  checkb "empty" true (Q.dequeue q = None)

let test_queue_occupancy () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:10_000) () in
  ignore (Q.enqueue q (mk_pkt ~sim ~size:600 ()));
  ignore (Q.enqueue q (mk_pkt ~sim ~size:400 ()));
  checki "bytes" 1000 (Q.occupancy_bytes q);
  checki "pkts" 2 (Q.occupancy_packets q);
  ignore (Q.dequeue q);
  checki "bytes after deq" 400 (Q.occupancy_bytes q);
  checki "pkts after deq" 1 (Q.occupancy_packets q)

let test_queue_tail_drop () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1000) () in
  checkb "fits" true (Q.enqueue q (mk_pkt ~sim ~size:600 ()) = `Enqueued);
  checkb "drops" true (Q.enqueue q (mk_pkt ~sim ~size:600 ()) = `Dropped);
  checki "drop count" 1 (Q.drops q);
  checki "enqueued count" 1 (Q.enqueued q);
  checkb "small still fits" true (Q.enqueue q (mk_pkt ~sim ~size:400 ()) = `Enqueued)

let test_queue_marks_via_policy () =
  let sim = Sim.create () in
  let policy =
    Marking.make ~name:"always"
      ~on_enqueue:(fun ~bytes:_ ~packets:_ -> true)
      ~on_dequeue:(fun ~bytes:_ ~packets:_ -> ())
      ()
  in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:10_000) ~marking:policy () in
  let ect = mk_pkt ~sim ~ecn:Packet.Ect () in
  let nect = mk_pkt ~sim ~ecn:Packet.Not_ect () in
  let st = Packet.store_of sim in
  ignore (Q.enqueue q ect);
  ignore (Q.enqueue q nect);
  checkb "ect marked" true (Packet.is_ce st ect);
  checkb "not-ect unmarked" false (Packet.is_ce st nect);
  checki "marked counts only ect" 1 (Q.marked q)

let test_queue_policy_sees_occupancy () =
  let sim = Sim.create () in
  let seen = ref [] in
  let policy =
    Marking.make ~name:"spy"
      ~on_enqueue:(fun ~bytes ~packets ->
        seen := `Enq (bytes, packets) :: !seen;
        false)
      ~on_dequeue:(fun ~bytes ~packets ->
        seen := `Deq (bytes, packets) :: !seen)
      ()
  in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:10_000) ~marking:policy () in
  ignore (Q.enqueue q (mk_pkt ~sim ~size:100 ()));
  ignore (Q.enqueue q (mk_pkt ~sim ~size:200 ()));
  ignore (Q.dequeue q);
  Alcotest.check
    (Alcotest.list
       (Alcotest.testable
          (fun ppf -> function
            | `Enq (b, p) -> Format.fprintf ppf "Enq(%d,%d)" b p
            | `Deq (b, p) -> Format.fprintf ppf "Deq(%d,%d)" b p)
          ( = )))
    "occupancies include arriving packet on enqueue, exclude on dequeue"
    [ `Enq (100, 1); `Enq (300, 2); `Deq (200, 1) ]
    (List.rev !seen)

let test_queue_time_weighted_stats () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  (* occupancy 1500 over [0,10us), 3000 over [10,20us), drain at 20us;
     measure at 30us: mean = (1500*10 + 3000*10 + 0*10)/30 = 1500 *)
  ignore (Q.enqueue q (mk_pkt ~sim ~size:1500 ()));
  ignore
    (Sim.schedule_at sim (Time.of_us 10.) (fun () ->
         ignore (Q.enqueue q (mk_pkt ~sim ~size:1500 ()))));
  ignore
    (Sim.schedule_at sim (Time.of_us 20.) (fun () ->
         ignore (Q.dequeue q);
         ignore (Q.dequeue q)));
  Sim.run ~until:(Time.of_us 30.) sim;
  checkf ~eps:1e-6 "mean bytes" 1500. (Q.mean_occupancy_bytes q);
  checkf ~eps:1e-6 "mean pkts" 1. (Q.mean_occupancy_packets q);
  (* variance of {1500,3000,0} equally weighted *)
  checkf ~eps:1e-3 "stddev bytes"
    (sqrt ((1500. ** 2. +. 3000. ** 2. +. 0.) /. 3. -. 1500. ** 2.))
    (Q.stddev_occupancy_bytes q);
  checki "max occupancy" 3000 (Q.max_occupancy_bytes q)

let test_queue_reset_stats () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  ignore (Q.enqueue q (mk_pkt ~sim ~size:1500 ()));
  Sim.run ~until:(Time.of_us 10.) sim;
  Q.reset_stats q;
  Sim.run ~until:(Time.of_us 20.) sim;
  (* After reset, the standing packet still contributes occupancy. *)
  checkf ~eps:1e-6 "mean after reset" 1500. (Q.mean_occupancy_bytes q);
  checki "counters reset" 0 (Q.enqueued q)

let test_queue_observer () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:2000) () in
  let events = ref 0 in
  Q.set_observer q (fun () -> incr events);
  ignore (Q.enqueue q (mk_pkt ~sim ~size:1500 ()));
  ignore (Q.enqueue q (mk_pkt ~sim ~size:1500 ()));
  (* dropped, still observed *)
  ignore (Q.dequeue q);
  checki "three events" 3 !events

let test_queue_validation () =
  let sim = Sim.create () in
  checkb "bad capacity raises" true
    (match Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:0) () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Port --- *)

let test_port_serialization_timing () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  let arrivals = ref [] in
  let port =
    Net.Port.create sim ~rate_bps:1e9 ~delay:(Time.span_of_us 10.) ~queue:q
      ~deliver:(fun pkt ->
        arrivals :=
          (Time.to_sec (Sim.now sim), Packet.id (Packet.store_of sim) pkt)
          :: !arrivals)
  in
  (* 1500 B at 1 Gbps = 12 us serialization + 10 us propagation. *)
  let p = mk_pkt ~sim ~size:1500 () in
  Net.Port.send port p;
  Sim.run sim;
  (match !arrivals with
  | [ (t, _) ] -> checkf ~eps:1e-9 "arrival time" 22e-6 t
  | _ -> Alcotest.fail "expected one arrival");
  checki "bytes sent" 1500 (Net.Port.bytes_sent port);
  checki "packets sent" 1 (Net.Port.packets_sent port)

let test_port_back_to_back () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  let arrivals = ref [] in
  let port =
    Net.Port.create sim ~rate_bps:1e9 ~delay:0L ~queue:q ~deliver:(fun _ ->
        arrivals := Time.to_sec (Sim.now sim) :: !arrivals)
  in
  Net.Port.send port (mk_pkt ~sim ~size:1500 ());
  Net.Port.send port (mk_pkt ~sim ~size:1500 ());
  Sim.run sim;
  (match List.rev !arrivals with
  | [ t1; t2 ] ->
      checkf ~eps:1e-9 "first at 12us" 12e-6 t1;
      checkf ~eps:1e-9 "second serialized after first" 24e-6 t2
  | _ -> Alcotest.fail "expected two arrivals")

let test_port_tx_time () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1000) () in
  let port =
    Net.Port.create sim ~rate_bps:10e9 ~delay:0L ~queue:q ~deliver:ignore
  in
  Alcotest.check Alcotest.int64 "1500B at 10G = 1.2us" 1200L
    (Net.Port.tx_time port ~bytes:1500)

let test_port_reset_counters () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:10_000) () in
  let port = Net.Port.create sim ~rate_bps:1e9 ~delay:0L ~queue:q ~deliver:ignore in
  Net.Port.send port (mk_pkt ~sim ~size:1000 ());
  Sim.run sim;
  Net.Port.reset_counters port;
  checki "bytes zero" 0 (Net.Port.bytes_sent port);
  checki "packets zero" 0 (Net.Port.packets_sent port)

let test_port_drops_dont_transmit () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1000) () in
  let count = ref 0 in
  let port =
    Net.Port.create sim ~rate_bps:1e6 ~delay:0L ~queue:q ~deliver:(fun _ ->
        incr count)
  in
  (* The first is dequeued for transmission immediately, so the queue can
     hold one more; the third must be dropped. *)
  Net.Port.send port (mk_pkt ~sim ~size:800 ());
  Net.Port.send port (mk_pkt ~sim ~size:800 ());
  Net.Port.send port (mk_pkt ~sim ~size:800 ());
  Sim.run sim;
  checki "two delivered" 2 !count;
  checki "one dropped" 1 (Q.drops q)

(* --- Host --- *)

let test_host_dispatch () =
  let sim = Sim.create () in
  let h = Net.Host.create sim ~id:5 in
  let got = ref [] in
  Net.Host.bind_flow h ~flow:1 (fun p ->
      got := Packet.flow (Packet.store_of sim) p :: !got);
  Net.Host.receive h (mk_pkt ~sim ~flow:1 ());
  Net.Host.receive h (mk_pkt ~sim ~flow:2 ());
  checki "dispatched" 1 (List.length !got);
  checki "unclaimed" 1 (Net.Host.unclaimed h)

let test_host_double_bind () =
  let sim = Sim.create () in
  let h = Net.Host.create sim ~id:0 in
  Net.Host.bind_flow h ~flow:1 ignore;
  checkb "double bind raises" true
    (match Net.Host.bind_flow h ~flow:1 ignore with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Net.Host.unbind_flow h ~flow:1;
  Net.Host.bind_flow h ~flow:1 ignore

let test_host_nic_errors () =
  let sim = Sim.create () in
  let h = Net.Host.create sim ~id:0 in
  checkb "nic before attach raises" true
    (match Net.Host.nic h with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Switch --- *)

let mk_port sim deliver =
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  Net.Port.create sim ~rate_bps:1e9 ~delay:0L ~queue:q ~deliver

let test_switch_routing () =
  let sim = Sim.create () in
  let sw = Net.Switch.create sim ~id:0 () in
  let to_a = ref 0 and to_b = ref 0 in
  let pa = mk_port sim (fun _ -> incr to_a) in
  let pb = mk_port sim (fun _ -> incr to_b) in
  let ia = Net.Switch.add_port sw pa in
  let ib = Net.Switch.add_port sw pb in
  Net.Switch.set_route sw ~dst:1 ~port:ia;
  Net.Switch.set_route sw ~dst:2 ~port:ib;
  Net.Switch.receive sw (mk_pkt ~sim ~dst:1 ());
  Net.Switch.receive sw (mk_pkt ~sim ~dst:2 ());
  Net.Switch.receive sw (mk_pkt ~sim ~dst:2 ());
  Sim.run sim;
  checki "a got one" 1 !to_a;
  checki "b got two" 2 !to_b;
  checki "port count" 2 (Net.Switch.port_count sw)

let test_switch_no_route () =
  let sim = Sim.create () in
  let sw = Net.Switch.create sim ~id:0 () in
  Net.Switch.receive sw (mk_pkt ~sim ~dst:42 ());
  checki "counted" 1 (Net.Switch.no_route_drops sw)

let test_switch_bad_port () =
  let sim = Sim.create () in
  let sw = Net.Switch.create sim ~id:0 () in
  checkb "bad route raises" true
    (match Net.Switch.set_route sw ~dst:1 ~port:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad port raises" true
    (match Net.Switch.port sw 3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Topology --- *)

let test_dumbbell_connectivity () =
  let sim = Sim.create () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:3 ~bottleneck_rate_bps:1e9
      ~rtt:(Time.span_of_us 100.) ~buffer_bytes:100_000
      ~marking:(Marking.none ()) ()
  in
  checki "three senders" 3 (Array.length d.Net.Topology.senders);
  let got = ref 0 in
  Net.Host.bind_flow d.Net.Topology.receiver ~flow:9 (fun _ -> incr got);
  Array.iter
    (fun s ->
      Net.Host.send s
        (mk_pkt ~sim
           ~src:(Net.Host.id s)
           ~dst:(Net.Host.id d.Net.Topology.receiver)
           ~flow:9 ()))
    d.Net.Topology.senders;
  Sim.run sim;
  checki "all delivered" 3 !got

let test_dumbbell_reverse_path () =
  let sim = Sim.create () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:2 ~bottleneck_rate_bps:1e9
      ~rtt:(Time.span_of_us 100.) ~buffer_bytes:100_000
      ~marking:(Marking.none ()) ()
  in
  let got = ref 0 in
  Net.Host.bind_flow d.Net.Topology.senders.(1) ~flow:3 (fun _ -> incr got);
  Net.Host.send d.Net.Topology.receiver
    (mk_pkt ~sim
       ~src:(Net.Host.id d.Net.Topology.receiver)
       ~dst:(Net.Host.id d.Net.Topology.senders.(1))
       ~flow:3 ());
  Sim.run sim;
  checki "ack path works" 1 !got

let test_dumbbell_rtt () =
  (* One-way latency for a small packet should be half the propagation RTT
     plus serialization at both hops. *)
  let sim = Sim.create () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:1 ~bottleneck_rate_bps:1e9
      ~rtt:(Time.span_of_us 100.) ~buffer_bytes:100_000
      ~marking:(Marking.none ()) ()
  in
  let arrival = ref 0. in
  Net.Host.bind_flow d.Net.Topology.receiver ~flow:0 (fun _ ->
      arrival := Time.to_sec (Sim.now sim));
  Net.Host.send d.Net.Topology.senders.(0)
    (mk_pkt ~sim ~src:0 ~dst:(Net.Host.id d.Net.Topology.receiver) ~size:1500 ());
  Sim.run sim;
  (* 25us + 25us propagation + 2 * 12us serialization at 1 Gbps *)
  checkf ~eps:1e-7 "one-way latency" 74e-6 !arrival

let test_dumbbell_bottleneck_marks () =
  let sim = Sim.create () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:1 ~bottleneck_rate_bps:1e9
      ~rtt:(Time.span_of_us 100.) ~buffer_bytes:100_000
      ~marking:
        (Marking.make ~name:"always"
           ~on_enqueue:(fun ~bytes:_ ~packets:_ -> true)
           ~on_dequeue:(fun ~bytes:_ ~packets:_ -> ())
           ())
      ()
  in
  let ce = ref false in
  Net.Host.bind_flow d.Net.Topology.receiver ~flow:0 (fun p ->
      ce := Packet.is_ce (Packet.store_of sim) p);
  Net.Host.send d.Net.Topology.senders.(0)
    (mk_pkt ~sim ~src:0 ~dst:(Net.Host.id d.Net.Topology.receiver) ());
  Sim.run sim;
  checkb "bottleneck marked data" true !ce

let test_star_connectivity () =
  let sim = Sim.create () in
  let s =
    Net.Topology.star_testbed sim ~rate_bps:1e9 ~bottleneck_buffer:128_000
      ~marking:(Marking.none ()) ()
  in
  checki "nine workers" 9 (Array.length s.Net.Topology.workers);
  checki "three leaves" 3 (Array.length s.Net.Topology.leaves);
  let got = ref 0 in
  Net.Host.bind_flow s.Net.Topology.aggregator ~flow:1 (fun _ -> incr got);
  Array.iter
    (fun w ->
      Net.Host.send w
        (mk_pkt ~sim
           ~src:(Net.Host.id w)
           ~dst:(Net.Host.id s.Net.Topology.aggregator)
           ~flow:1 ()))
    s.Net.Topology.workers;
  Sim.run sim;
  checki "all workers reach aggregator" 9 !got

let test_star_reverse_and_cross () =
  let sim = Sim.create () in
  let s =
    Net.Topology.star_testbed sim ~rate_bps:1e9 ~bottleneck_buffer:128_000
      ~marking:(Marking.none ()) ()
  in
  let w0 = s.Net.Topology.workers.(0) in
  let w8 = s.Net.Topology.workers.(8) in
  let got_w0 = ref 0 and got_w8 = ref 0 in
  Net.Host.bind_flow w0 ~flow:2 (fun _ -> incr got_w0);
  Net.Host.bind_flow w8 ~flow:3 (fun _ -> incr got_w8);
  (* aggregator -> worker *)
  Net.Host.send s.Net.Topology.aggregator
    (mk_pkt ~sim
       ~src:(Net.Host.id s.Net.Topology.aggregator)
       ~dst:(Net.Host.id w0) ~flow:2 ());
  (* worker -> worker across leaves *)
  Net.Host.send w0
    (mk_pkt ~sim ~src:(Net.Host.id w0) ~dst:(Net.Host.id w8) ~flow:3 ());
  Sim.run sim;
  checki "agg to worker" 1 !got_w0;
  checki "worker to worker" 1 !got_w8

let test_parking_lot_connectivity () =
  let sim = Sim.create () in
  let pl =
    Net.Topology.parking_lot sim ~hops:3 ~rate_bps:1e9
      ~buffer_bytes:100_000 ~marking:(fun () -> Marking.none ()) ()
  in
  checki "four switches" 4 (Array.length pl.Net.Topology.chain);
  checki "three trunks" 3 (Array.length pl.Net.Topology.trunks);
  (* long path end to end *)
  let got_long = ref 0 in
  Net.Host.bind_flow pl.Net.Topology.long_dst ~flow:7 (fun _ -> incr got_long);
  Net.Host.send pl.Net.Topology.long_src
    (mk_pkt ~sim
       ~src:(Net.Host.id pl.Net.Topology.long_src)
       ~dst:(Net.Host.id pl.Net.Topology.long_dst)
       ~flow:7 ());
  (* every cross path *)
  let got_cross = Array.map (fun _ -> ref 0) pl.Net.Topology.cross_dsts in
  Array.iteri
    (fun i dst ->
      Net.Host.bind_flow dst ~flow:(20 + i) (fun _ -> incr got_cross.(i));
      Net.Host.send pl.Net.Topology.cross_srcs.(i)
        (mk_pkt ~sim
           ~src:(Net.Host.id pl.Net.Topology.cross_srcs.(i))
           ~dst:(Net.Host.id dst) ~flow:(20 + i) ()))
    pl.Net.Topology.cross_dsts;
  (* reverse path for the long flow (ACKs) *)
  let got_rev = ref 0 in
  Net.Host.bind_flow pl.Net.Topology.long_src ~flow:9 (fun _ -> incr got_rev);
  Net.Host.send pl.Net.Topology.long_dst
    (mk_pkt ~sim
       ~src:(Net.Host.id pl.Net.Topology.long_dst)
       ~dst:(Net.Host.id pl.Net.Topology.long_src)
       ~flow:9 ());
  Sim.run sim;
  checki "long delivered" 1 !got_long;
  Array.iteri
    (fun i r -> checki (Printf.sprintf "cross %d delivered" i) 1 !r)
    got_cross;
  checki "reverse delivered" 1 !got_rev

let test_parking_lot_per_trunk_marking () =
  (* Fresh policy per trunk: marking one trunk's queue must not mark
     another's. *)
  let sim = Sim.create () in
  let instances = ref 0 in
  let pl =
    Net.Topology.parking_lot sim ~hops:2 ~rate_bps:1e9 ~buffer_bytes:100_000
      ~marking:(fun () ->
        incr instances;
        Marking.none ())
      ()
  in
  ignore pl;
  checki "one policy per trunk" 2 !instances

let test_parking_lot_validation () =
  let sim = Sim.create () in
  checkb "needs hops" true
    (match
       Net.Topology.parking_lot sim ~hops:0 ~rate_bps:1e9 ~buffer_bytes:1000
         ~marking:(fun () -> Marking.none ())
         ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Trace --- *)

let test_trace_every_change () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  let tr = Net.Trace.on_queue sim q ~mode:Net.Trace.Every_change () in
  ignore
    (Sim.schedule_at sim (Time.of_us 1.) (fun () ->
         ignore (Q.enqueue q (mk_pkt ~sim ()))));
  ignore
    (Sim.schedule_at sim (Time.of_us 2.) (fun () -> ignore (Q.dequeue q)));
  Sim.run sim;
  (* initial sample + enqueue + dequeue *)
  checki "three samples" 3
    (Stats.Timeseries.length (Net.Trace.series_packets tr));
  checkf "max occupancy seen" 1.
    (Stats.Timeseries.max_value (Net.Trace.series_packets tr))

let test_trace_sampled () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  let tr =
    Net.Trace.on_queue sim q
      ~mode:(Net.Trace.Sampled (Time.span_of_us 10.))
      ~stop_at:(Time.of_us 100.) ()
  in
  Sim.run ~until:(Time.of_ms 1.) sim;
  (* initial sample plus 10 periodic ones *)
  checki "eleven samples" 11
    (Stats.Timeseries.length (Net.Trace.series_packets tr))

let test_trace_sampled_requires_stop () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  checkb "raises" true
    (match
       Net.Trace.on_queue sim q ~mode:(Net.Trace.Sampled 1000L) ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_trace_detach () =
  let sim = Sim.create () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  let tr = Net.Trace.on_queue sim q ~mode:Net.Trace.Every_change () in
  Net.Trace.detach tr;
  ignore (Q.enqueue q (mk_pkt ~sim ()));
  checki "no further samples" 1
    (Stats.Timeseries.length (Net.Trace.series_packets tr))

(* --- cross-validation invariants --- *)

(* The queue's built-in time-weighted statistics must agree with the
   statistics computed from an exhaustive occupancy trace. *)
let test_queue_stats_match_trace () =
  let sim = Sim.create ~seed:77L () in
  let q = Q.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:20_000) () in
  let tr = Net.Trace.on_queue sim q ~mode:Net.Trace.Every_change () in
  let rng = Engine.Rng.create ~seed:3L in  (* dtlint: allow R10 *)
  for i = 1 to 400 do
    let at = Time.of_us (float_of_int i *. 7.) in
    ignore
      (Sim.schedule_at sim at (fun () ->
           if Engine.Rng.bool rng then
             ignore (Q.enqueue q (mk_pkt ~sim ~size:(500 + Engine.Rng.int rng ~bound:1000) ()))
           else ignore (Q.dequeue q)))
  done;
  let t_end = Time.of_us 3000. in
  Sim.run ~until:t_end sim;
  let series = Net.Trace.series_bytes tr in
  let trace_mean =
    Stats.Timeseries.time_weighted_mean ~from:Time.zero ~until:t_end series
  in
  let trace_std =
    Stats.Timeseries.time_weighted_stddev ~from:Time.zero ~until:t_end series
  in
  checkf ~eps:1e-3 "means agree" trace_mean (Q.mean_occupancy_bytes q);
  checkf ~eps:1e-3 "stddevs agree" trace_std (Q.stddev_occupancy_bytes q)

(* Packet conservation at the bottleneck: everything accepted is either
   transmitted or still queued once the network is idle. *)
let test_bottleneck_conservation () =
  let sim = Sim.create ~seed:9L () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:3 ~bottleneck_rate_bps:1e9
      ~rtt:(Time.span_of_us 100.) ~buffer_bytes:(30 * 1500)
      ~marking:(Marking.none ()) ()
  in
  let flows =
    Array.mapi
      (fun i src ->
        Tcp.Flow.create sim ~src ~dst:d.Net.Topology.receiver ~flow:i
          ~cc:Tcp.Cc.reno
          ~config:
            {
              Tcp.Sender.default_config with
              min_rto = Time.span_of_ms 10.;
            }
          ~limit_segments:400 ())
      d.Net.Topology.senders
  in
  Array.iter Tcp.Flow.start flows;
  Sim.run sim;
  (* all flows done, network fully drained *)
  Array.iter (fun f -> checkb "flow completed" true (Tcp.Flow.completed f)) flows;
  let q = Net.Port.queue d.Net.Topology.bottleneck in
  checki "queue drained" 0 (Q.occupancy_packets q);
  checki "accepted = transmitted"
    (Q.enqueued q)
    (Net.Port.packets_sent d.Net.Topology.bottleneck);
  (* every data segment the receiver delivered crossed the bottleneck *)
  let delivered =
    Array.fold_left (fun a f -> a + Tcp.Flow.segments_delivered f) 0 flows
  in
  checki "all segments delivered" (3 * 400) delivered

(* --- Buffer_mgr: private buffers and the shared Dynamic-Threshold
   pool --- *)

module B = Net.Buffer_mgr

let test_buffer_solo_boundary () =
  let p = B.solo ~capacity_bytes:3000 in
  checkb "not shared" false (B.shared p);
  checki "limit is the capacity" 3000 (B.effective_limit p);
  checkb "admits up to capacity" true (B.admit p 1500);
  checkb "fills exactly" true (B.admit p 1500);
  checkb "rejects past capacity" false (B.admit p 1);
  checki "occupancy" 3000 (B.occupancy p);
  B.release p 1500;
  checkb "admits after release" true (B.admit p 1500);
  checkb "zero capacity raises" true
    (match B.solo ~capacity_bytes:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_buffer_dt_limit_moves () =
  let pool = B.create_pool ~pool_bytes:10_000 ~alpha:1.0 in
  let a = B.attach pool and b = B.attach pool in
  checkb "shared" true (B.shared a);
  checki "empty pool: limit = alpha x B" 10_000 (B.effective_limit a);
  checkb "a admits" true (B.admit a 4_000);
  (* The other port's limit moved even though it never enqueued. *)
  checki "limit = alpha x free" 6_000 (B.effective_limit b);
  checkb "b admits the rest" true (B.admit b 6_000);
  checki "full pool: limit 0" 0 (B.effective_limit a);
  checkb "full pool rejects" false (B.admit a 1);
  B.release b 6_000;
  checki "limit recovers on release" 6_000 (B.effective_limit a);
  checki "pool used tracks both ports" 4_000 (B.pool_used b)

let test_buffer_dt_alpha_above_one () =
  let pool = B.create_pool ~pool_bytes:10_000 ~alpha:4.0 in
  let p = B.attach pool in
  (* alpha x free = 40_000 over an empty pool: the announced limit is
     clamped to the memory that exists. *)
  checki "limit clamped to pool size" 10_000 (B.effective_limit p);
  checkb "big admit" true (B.admit p 9_000);
  (* A second, empty port now sees limit = 4 x 1000 = 4000 — more than
     the 1000 bytes of memory that actually remain. The second
     admission conjunct must keep the pool from overfilling. *)
  let q = B.attach pool in
  checki "limit exceeds free memory" 4_000 (B.effective_limit q);
  checkb "beyond free memory rejected" false (B.admit q 1_500);
  checkb "within free memory admitted" true (B.admit q 1_000);
  checki "pool exactly full" 10_000 (B.pool_used p);
  checki "reject was counted" 1 (B.pool_rejects p);
  checkb "alpha below 1/1024 raises" true
    (match B.create_pool ~pool_bytes:1000 ~alpha:0.0001 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_buffer_dt_high_water_poll () =
  let pool = B.create_pool ~pool_bytes:10_000 ~alpha:1.0 in
  let p = B.attach pool in
  checki "nothing to announce" (-1) (B.poll_high_water p);
  ignore (B.admit p 1_500);
  checki "new peak announced" 1_500 (B.poll_high_water p);
  checki "announced once" (-1) (B.poll_high_water p);
  B.release p 1_500;
  ignore (B.admit p 1_000);
  checki "below the old peak: silent" (-1) (B.poll_high_water p);
  ignore (B.admit p 1_500);
  checki "fresh peak announced" 2_500 (B.poll_high_water p);
  checki "high water is sticky" 2_500 (B.pool_high_water p);
  checki "solo ports never announce" (-1)
    (B.poll_high_water (B.solo ~capacity_bytes:1000))

(* Conservation: however admissions and releases interleave across the
   ports of one pool, the per-port occupancies always sum to the pool's
   used counter and the pool never exceeds its size. *)
let prop_buffer_pool_conservation =
  QCheck.Test.make ~count:300
    ~name:"shared pool conserves bytes across ports"
    QCheck.(
      pair (int_range 1 4)
        (list_of_size
           Gen.(int_range 1 300)
           (triple bool (int_bound 3) (int_range 1 3_000))))
    (fun (n_ports, ops) ->
      let size = 20_000 in
      let pool = B.create_pool ~pool_bytes:size ~alpha:2.0 in
      let ports = Array.init n_ports (fun _ -> B.attach pool) in
      (* FIFO of admitted sizes per port, so releases mirror dequeues. *)
      let queued = Array.make n_ports [] in
      List.for_all
        (fun (is_admit, pi, sz) ->
          let i = pi mod n_ports in
          let p = ports.(i) in
          (if is_admit then begin
             if B.admit p sz then queued.(i) <- queued.(i) @ [ sz ]
           end
           else
             match queued.(i) with
             | [] -> ()
             | sz :: rest ->
                 B.release p sz;
                 queued.(i) <- rest);
          let sum =
            Array.fold_left (fun acc q -> acc + B.occupancy q) 0 ports
          in
          sum = B.pool_used p
          && B.pool_used p <= size
          && B.pool_high_water p >= B.pool_used p
          && Array.for_all (fun q -> B.occupancy q >= 0) ports)
        ops)

(* Equivalence with the naive float model: for any alpha that is an
   exact multiple of 1/1024 (which is what create_pool quantises to),
   the integer hot path must make exactly the admission decisions of
   the textbook formulation [T = min (B, floor (alpha x free))]. *)
let prop_buffer_dt_matches_float_model =
  QCheck.Test.make ~count:300
    ~name:"DT integer admission equals the float model (alpha = i/1024)"
    QCheck.(
      pair (int_range 1 8192)
        (list_of_size
           Gen.(int_range 1 200)
           (pair bool (int_range 1 3_000))))
    (fun (ax, ops) ->
      let size = 50_000 in
      let alpha = float_of_int ax /. 1024. in
      let pool = B.create_pool ~pool_bytes:size ~alpha in
      let p = B.attach pool in
      let occ = ref 0 in
      let fifo = Queue.create () in
      List.for_all
        (fun (is_admit, sz) ->
          let model_limit =
            Stdlib.min size
              (int_of_float (alpha *. float_of_int (size - !occ)))
          in
          let limits_agree = model_limit = B.effective_limit p in
          if is_admit then begin
            let model_admits =
              !occ + sz <= model_limit && !occ + sz <= size
            in
            let got = B.admit p sz in
            if got then begin
              occ := !occ + sz;
              Queue.push sz fifo
            end;
            limits_agree && Bool.equal model_admits got
          end
          else if Queue.is_empty fifo then limits_agree
          else begin
            let sz = Queue.pop fifo in
            B.release p sz;
            occ := !occ - sz;
            limits_agree
          end)
        ops)

(* --- ECMP groups --- *)

let test_ecmp_select_basic () =
  let g = Net.Ecmp.make_group ~salt:42L ~ports:[| 3; 5; 9 |] in
  checki "width" 3 (Net.Ecmp.width g);
  checkb "ports copied out" true (Net.Ecmp.ports g = [| 3; 5; 9 |]);
  let p = Net.Ecmp.select g ~src:1 ~dst:2 ~flow:7 in
  checkb "selected from the set" true
    (Array.exists (Int.equal p) (Net.Ecmp.ports g));
  checki "same 5-tuple, same port" p (Net.Ecmp.select g ~src:1 ~dst:2 ~flow:7)

let test_ecmp_validation () =
  checkb "empty set raises" true
    (match Net.Ecmp.make_group ~salt:1L ~ports:[||] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "negative port raises" true
    (match Net.Ecmp.make_group ~salt:1L ~ports:[| 0; -1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Selection is a pure function of (salt, src, dst, flow): two
   identically-salted groups agree, repeats agree, and the pick is
   always a member of the set. *)
let prop_ecmp_flow_stickiness =
  QCheck.Test.make ~count:500 ~name:"ECMP selection sticky per 5-tuple"
    QCheck.(
      quad int64 (int_bound 1_000) (int_bound 1_000) (int_bound 100_000))
    (fun (salt, src, dst, flow) ->
      let ports = [| 0; 1; 2; 3 |] in
      let g = Net.Ecmp.make_group ~salt ~ports in
      let g' = Net.Ecmp.make_group ~salt ~ports in
      let p = Net.Ecmp.select g ~src ~dst ~flow in
      p >= 0 && p < 4
      && p = Net.Ecmp.select g ~src ~dst ~flow
      && p = Net.Ecmp.select g' ~src ~dst ~flow)

(* Chi-squared-style balance check: over n = 1000 x width sequential
   flows the per-port counts must look uniform. df <= 7 puts the
   statistic's mean at w-1 and std near sqrt(2(w-1)); the 5w bound is
   many sigmas out (no flaky seeds) yet fails decisively for a biased
   hash — e.g. [hash mod width] over sequential flows without mixing
   concentrates whole residue classes on one port and scores in the
   thousands. *)
let prop_ecmp_balance =
  QCheck.Test.make ~count:50 ~name:"ECMP spreads flows evenly (chi-squared)"
    QCheck.(pair int64 (int_range 2 8))
    (fun (salt, w) ->
      let g = Net.Ecmp.make_group ~salt ~ports:(Array.init w Fun.id) in
      let n = 1_000 * w in
      let counts = Array.make w 0 in
      for flow = 0 to n - 1 do
        let p =
          Net.Ecmp.select g ~src:(flow mod 17) ~dst:(flow mod 23) ~flow
        in
        counts.(p) <- counts.(p) + 1
      done;
      let e = float_of_int n /. float_of_int w in
      let chi2 =
        Array.fold_left
          (fun acc c ->
            let d = float_of_int c -. e in
            acc +. (d *. d /. e))
          0. counts
      in
      chi2 < 5. *. float_of_int w)

let test_switch_ecmp_routing () =
  let sim = Sim.create () in
  let sw = Net.Switch.create sim ~id:0 () in
  let counts = Array.make 3 0 in
  let idx =
    Array.init 3 (fun i ->
        Net.Switch.add_port sw
          (mk_port sim (fun _ -> counts.(i) <- counts.(i) + 1)))
  in
  let gi = Net.Switch.add_group sw ~salt:7L ~ports:idx in
  checki "group registered" 1 (Net.Switch.group_count sw);
  Net.Switch.set_group_route sw ~dst:9 ~group:gi;
  let flows = List.init 30 Fun.id in
  (* route_port is the pure view of what receive will do. *)
  let predicted = Array.make 3 0 in
  List.iter
    (fun f ->
      let p = Net.Switch.route_port sw ~src:1 ~dst:9 ~flow:f in
      predicted.(p) <- predicted.(p) + 1;
      Net.Switch.receive sw (mk_pkt ~sim ~src:1 ~dst:9 ~flow:f ()))
    flows;
  Sim.run sim;
  Array.iteri
    (fun i n -> checki (Printf.sprintf "port %d deliveries" i) n counts.(i))
    predicted;
  checki "every packet went somewhere" 30
    (Array.fold_left ( + ) 0 counts);
  checkb "group used more than one port" true
    (Array.for_all (fun c -> c > 0) counts);
  checki "single-port routes unaffected" (-1)
    (Net.Switch.route_port sw ~src:1 ~dst:5 ~flow:0);
  checkb "bad group raises" true
    (match Net.Switch.set_group_route sw ~dst:1 ~group:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_switch_no_route_trace_and_metric () =
  let sim = Sim.create () in
  let ring = Obs.Trace.ring ~capacity:16 in
  let tracer =
    Obs.Trace.create ~classes:[ Obs.Trace.C_no_route_drop ]
      (Obs.Trace.Ring ring)
  in
  let metrics = Obs.Metrics.create () in
  let sw = Net.Switch.create sim ~id:3 ~tracer ~metrics () in
  Net.Switch.receive sw (mk_pkt ~sim ~flow:5 ~dst:42 ());
  checki "counted" 1 (Net.Switch.no_route_drops sw);
  (match Obs.Trace.ring_records ring with
  | [ { Obs.Trace.component; event = Obs.Trace.No_route_drop { flow; dst }; _ } ]
    ->
      Alcotest.check Alcotest.string "component" "sw3" component;
      checki "flow" 5 flow;
      checki "dst" 42 dst
  | rs -> Alcotest.failf "expected one no_route_drop, got %d" (List.length rs));
  match
    List.assoc_opt "switch.sw3.no_route_drops" (Obs.Metrics.snapshot metrics)
  with
  | Some v -> checkf "probe" 1.0 v
  | None -> Alcotest.fail "switch.sw3.no_route_drops probe missing"

(* --- Fat tree --- *)

let test_fat_tree_wiring () =
  let sim = Sim.create () in
  let ft =
    Net.Topology.fat_tree sim ~k:4 ~marking:(fun () -> Net.Marking.none ()) ()
  in
  checki "k" 4 ft.Net.Topology.k;
  checki "hosts = k^3/4" 16 (Array.length ft.Net.Topology.hosts);
  checki "edges = k^2/2" 8 (Array.length ft.Net.Topology.edges);
  checki "aggs = k^2/2" 8 (Array.length ft.Net.Topology.aggs);
  checki "cores = (k/2)^2" 4 (Array.length ft.Net.Topology.cores);
  (* Each edge: k/2 host ports + k/2 uplinks; each agg: k/2 down +
     k/2 up; each core: one port per pod. *)
  Array.iter
    (fun sw -> checki "edge degree" 4 (Net.Switch.port_count sw))
    ft.Net.Topology.edges;
  Array.iter
    (fun sw -> checki "agg degree" 4 (Net.Switch.port_count sw))
    ft.Net.Topology.aggs;
  Array.iter
    (fun sw -> checki "core degree" 4 (Net.Switch.port_count sw))
    ft.Net.Topology.cores;
  checkb "odd k raises" true
    (match
       Net.Topology.fat_tree sim ~k:3
         ~marking:(fun () -> Net.Marking.none ())
         ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Every ordered host pair exchanges one packet: all 240 deliveries
   arrive and no switch anywhere records a no-route drop. *)
let test_fat_tree_all_pairs () =
  let sim = Sim.create () in
  let ft =
    Net.Topology.fat_tree sim ~k:4 ~marking:(fun () -> Net.Marking.none ()) ()
  in
  let hosts = ft.Net.Topology.hosts in
  let n = Array.length hosts in
  let got = ref 0 in
  Array.iter
    (fun h -> Net.Host.bind_flow h ~flow:1 (fun _ -> incr got))
    hosts;
  Array.iteri
    (fun s src ->
      Array.iteri
        (fun d _ ->
          if s <> d then
            Net.Host.send src
              (mk_pkt ~sim ~src:s ~dst:d ~flow:1 ()))
        hosts)
    hosts;
  Sim.run sim;
  checki "all pairs delivered" (n * (n - 1)) !got;
  let no_route =
    Array.fold_left (fun a sw -> a + Net.Switch.no_route_drops sw) 0
  in
  checki "no no-route drops" 0
    (no_route ft.Net.Topology.edges
    + no_route ft.Net.Topology.aggs
    + no_route ft.Net.Topology.cores)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "net.packet",
      [
        Alcotest.test_case "fields" `Quick test_packet_fields;
        Alcotest.test_case "unique ids" `Quick test_packet_ids_unique;
        Alcotest.test_case "per-sim id determinism" `Quick
          test_packet_ids_per_sim;
        Alcotest.test_case "CE marking" `Quick test_packet_mark;
        Alcotest.test_case "not-ect immune to marking" `Quick
          test_packet_mark_not_ect;
        Alcotest.test_case "size validation" `Quick test_packet_bad_size;
        Alcotest.test_case "double free detected" `Quick
          test_packet_double_free;
        Alcotest.test_case "pool reaches steady state" `Quick
          test_packet_pool_steady;
        Alcotest.test_case "enqueue stamps admission time" `Quick
          test_packet_enq_ns_stamp;
      ] );
    ( "net.marking",
      [
        Alcotest.test_case "none never marks" `Quick test_marking_none;
        Alcotest.test_case "red below min" `Quick test_marking_red_below_min;
        Alcotest.test_case "red above max" `Quick test_marking_red_above_max;
        Alcotest.test_case "red validation" `Quick test_marking_red_validation;
      ] );
    ( "net.queue_disc",
      [
        Alcotest.test_case "FIFO order" `Quick test_queue_fifo_order;
        Alcotest.test_case "occupancy accounting" `Quick test_queue_occupancy;
        Alcotest.test_case "tail drop" `Quick test_queue_tail_drop;
        Alcotest.test_case "policy marking" `Quick test_queue_marks_via_policy;
        Alcotest.test_case "policy occupancy view" `Quick
          test_queue_policy_sees_occupancy;
        Alcotest.test_case "time-weighted stats" `Quick
          test_queue_time_weighted_stats;
        Alcotest.test_case "reset stats" `Quick test_queue_reset_stats;
        Alcotest.test_case "observer" `Quick test_queue_observer;
        Alcotest.test_case "validation" `Quick test_queue_validation;
      ] );
    ( "net.port",
      [
        Alcotest.test_case "serialization + propagation" `Quick
          test_port_serialization_timing;
        Alcotest.test_case "back-to-back serialization" `Quick
          test_port_back_to_back;
        Alcotest.test_case "tx_time" `Quick test_port_tx_time;
        Alcotest.test_case "reset counters" `Quick test_port_reset_counters;
        Alcotest.test_case "drops do not transmit" `Quick
          test_port_drops_dont_transmit;
      ] );
    ( "net.host",
      [
        Alcotest.test_case "flow dispatch" `Quick test_host_dispatch;
        Alcotest.test_case "double bind" `Quick test_host_double_bind;
        Alcotest.test_case "nic errors" `Quick test_host_nic_errors;
      ] );
    ( "net.switch",
      [
        Alcotest.test_case "routing" `Quick test_switch_routing;
        Alcotest.test_case "no route" `Quick test_switch_no_route;
        Alcotest.test_case "bad indices" `Quick test_switch_bad_port;
        Alcotest.test_case "ECMP group routing" `Quick
          test_switch_ecmp_routing;
        Alcotest.test_case "no-route trace and metric" `Quick
          test_switch_no_route_trace_and_metric;
      ] );
    ( "net.ecmp",
      [
        Alcotest.test_case "select basics" `Quick test_ecmp_select_basic;
        Alcotest.test_case "validation" `Quick test_ecmp_validation;
        qtest prop_ecmp_flow_stickiness;
        qtest prop_ecmp_balance;
      ] );
    ( "net.topology",
      [
        Alcotest.test_case "dumbbell forward path" `Quick
          test_dumbbell_connectivity;
        Alcotest.test_case "dumbbell reverse path" `Quick
          test_dumbbell_reverse_path;
        Alcotest.test_case "dumbbell latency" `Quick test_dumbbell_rtt;
        Alcotest.test_case "bottleneck marking" `Quick
          test_dumbbell_bottleneck_marks;
        Alcotest.test_case "star connectivity" `Quick test_star_connectivity;
        Alcotest.test_case "star reverse and cross-leaf" `Quick
          test_star_reverse_and_cross;
        Alcotest.test_case "parking lot connectivity" `Quick
          test_parking_lot_connectivity;
        Alcotest.test_case "parking lot per-trunk marking" `Quick
          test_parking_lot_per_trunk_marking;
        Alcotest.test_case "parking lot validation" `Quick
          test_parking_lot_validation;
        Alcotest.test_case "fat tree wiring" `Quick test_fat_tree_wiring;
        Alcotest.test_case "fat tree all-pairs connectivity" `Quick
          test_fat_tree_all_pairs;
      ] );
    ( "net.trace",
      [
        Alcotest.test_case "every change" `Quick test_trace_every_change;
        Alcotest.test_case "sampled" `Quick test_trace_sampled;
        Alcotest.test_case "sampled requires stop_at" `Quick
          test_trace_sampled_requires_stop;
        Alcotest.test_case "detach" `Quick test_trace_detach;
      ] );
    ( "net.invariants",
      [
        Alcotest.test_case "queue stats match exhaustive trace" `Quick
          test_queue_stats_match_trace;
        Alcotest.test_case "bottleneck packet conservation" `Quick
          test_bottleneck_conservation;
      ] );
    ( "net.buffer_mgr",
      [
        Alcotest.test_case "solo boundary semantics" `Quick
          test_buffer_solo_boundary;
        Alcotest.test_case "DT limit moves with pool fill" `Quick
          test_buffer_dt_limit_moves;
        Alcotest.test_case "alpha > 1 never overfills" `Quick
          test_buffer_dt_alpha_above_one;
        Alcotest.test_case "high-water poll announces once" `Quick
          test_buffer_dt_high_water_poll;
        qtest prop_buffer_pool_conservation;
        qtest prop_buffer_dt_matches_float_model;
      ] );
  ]
