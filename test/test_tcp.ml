(* Tests for the TCP substrate: RTO estimation, congestion-control
   baselines, receiver echo policies, and the full sender state machine
   driven end-to-end over a simulated dumbbell. *)

module Sim = Engine.Sim
module Time = Engine.Time

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg

(* --- Rtt_estimator --- *)

let mk_est () =
  Tcp.Rtt_estimator.create ~min_rto:(Time.span_of_ms 1.)
    ~max_rto:(Time.span_of_sec 10.) ~initial_rto:(Time.span_of_sec 1.) ()

let test_rtt_initial () =
  let e = mk_est () in
  checki "no samples" 0 (Tcp.Rtt_estimator.samples e);
  checkb "no srtt" true (Tcp.Rtt_estimator.srtt e = None);
  Alcotest.check Alcotest.int64 "initial rto" (Time.span_of_sec 1.)
    (Tcp.Rtt_estimator.rto e)

let test_rtt_first_sample () =
  let e = mk_est () in
  Tcp.Rtt_estimator.sample e (Time.span_of_ms 100.);
  (* srtt = 100ms, rttvar = 50ms, rto = 100 + 4*50 = 300ms *)
  checkf ~eps:1e-6 "rto after first sample" 0.3
    (Time.span_to_sec (Tcp.Rtt_estimator.rto e));
  (match Tcp.Rtt_estimator.srtt e with
  | Some s -> checkf ~eps:1e-6 "srtt" 0.1 (Time.span_to_sec s)
  | None -> Alcotest.fail "expected srtt")

let test_rtt_converges () =
  let e = mk_est () in
  for _ = 1 to 200 do
    Tcp.Rtt_estimator.sample e (Time.span_of_ms 10.)
  done;
  (* constant samples: rttvar -> 0, rto -> min clamp or srtt *)
  (match Tcp.Rtt_estimator.srtt e with
  | Some s -> checkf ~eps:1e-4 "srtt converges" 0.01 (Time.span_to_sec s)
  | None -> Alcotest.fail "expected srtt");
  checkb "rto near srtt" true
    (Time.span_to_sec (Tcp.Rtt_estimator.rto e) < 0.02)

let test_rtt_min_clamp () =
  let e =
    Tcp.Rtt_estimator.create ~min_rto:(Time.span_of_ms 200.)
      ~max_rto:(Time.span_of_sec 60.) ~initial_rto:(Time.span_of_sec 1.) ()
  in
  for _ = 1 to 50 do
    Tcp.Rtt_estimator.sample e (Time.span_of_us 100.)
  done;
  checkf ~eps:1e-9 "clamped at min" 0.2
    (Time.span_to_sec (Tcp.Rtt_estimator.rto e))

let test_rtt_backoff () =
  let e = mk_est () in
  Tcp.Rtt_estimator.sample e (Time.span_of_ms 100.);
  let r0 = Time.span_to_sec (Tcp.Rtt_estimator.rto e) in
  Tcp.Rtt_estimator.backoff e;
  checkf ~eps:1e-9 "doubled" (2. *. r0)
    (Time.span_to_sec (Tcp.Rtt_estimator.rto e));
  for _ = 1 to 20 do
    Tcp.Rtt_estimator.backoff e
  done;
  checkf ~eps:1e-9 "capped at max" 10.
    (Time.span_to_sec (Tcp.Rtt_estimator.rto e))

let test_rtt_validation () =
  checkb "min>max raises" true
    (match
       Tcp.Rtt_estimator.create ~min_rto:(Time.span_of_sec 2.)
         ~max_rto:(Time.span_of_sec 1.) ~initial_rto:(Time.span_of_sec 1.) ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Cc baselines via a fake flow api --- *)

type fake_flow = { mutable cwnd : float; mutable ssthresh : float }

let fake_api () =
  let f = { cwnd = 2.; ssthresh = 1e9 } in
  let api =
    {
      Tcp.Cc.now = (fun () -> Time.zero);
      flow = 0;
      tracer = Obs.Trace.null;
      get_cwnd = (fun () -> f.cwnd);
      set_cwnd = (fun c -> f.cwnd <- Float.max 1. c);
      get_ssthresh = (fun () -> f.ssthresh);
      set_ssthresh = (fun s -> f.ssthresh <- s);
    }
  in
  (f, api)

let test_reno_slow_start () =
  let f, api = fake_api () in
  let cc = Tcp.Cc.reno api in
  cc.Tcp.Cc.on_ack ~newly_acked:2 ~ece:false ~snd_una:2 ~snd_nxt:4;
  checkf "cwnd grows by acked in slow start" 4. f.cwnd

let test_reno_congestion_avoidance () =
  let f, api = fake_api () in
  let cc = Tcp.Cc.reno api in
  f.cwnd <- 10.;
  f.ssthresh <- 5.;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:false ~snd_una:1 ~snd_nxt:11;
  checkf ~eps:1e-9 "cwnd += 1/cwnd" 10.1 f.cwnd

let test_reno_ignores_ece () =
  let f, api = fake_api () in
  let cc = Tcp.Cc.reno api in
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:1 ~snd_nxt:3;
  checkf "reno grows despite ece" 3. f.cwnd

let test_reno_fast_retransmit () =
  let f, api = fake_api () in
  let cc = Tcp.Cc.reno api in
  f.cwnd <- 16.;
  cc.Tcp.Cc.on_fast_retransmit ();
  checkf "halved" 8. f.cwnd;
  checkf "ssthresh" 8. f.ssthresh

let test_reno_timeout () =
  let f, api = fake_api () in
  let cc = Tcp.Cc.reno api in
  f.cwnd <- 16.;
  cc.Tcp.Cc.on_timeout ();
  checkf "collapsed" 1. f.cwnd;
  checkf "ssthresh half" 8. f.ssthresh;
  checkb "no alpha" true (cc.Tcp.Cc.alpha () = None)

let test_ecn_reno_halves_once_per_window () =
  let f, api = fake_api () in
  let cc = Tcp.Cc.ecn_reno api in
  f.cwnd <- 16.;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:5 ~snd_nxt:20;
  checkf "halved" 8. f.cwnd;
  (* further ECE inside the same window is ignored *)
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:10 ~snd_nxt:22;
  checkf "not halved again" 8. f.cwnd;
  (* past the recorded snd_nxt the next ECE bites again *)
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:21 ~snd_nxt:30;
  checkf "halved in next window" 4. f.cwnd

let test_aimd_parameters () =
  let f, api = fake_api () in
  let cc = Tcp.Cc.ai_md ~increase:2. ~decrease:0.25 api in
  f.cwnd <- 10.;
  f.ssthresh <- 1.;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:false ~snd_una:1 ~snd_nxt:10;
  checkf ~eps:1e-9 "additive increase scaled" 10.2 f.cwnd;
  cc.Tcp.Cc.on_ack ~newly_acked:1 ~ece:true ~snd_una:2 ~snd_nxt:11;
  checkf ~eps:1e-6 "multiplicative decrease" (10.2 *. 0.75) f.cwnd

let test_aimd_validation () =
  let _, api = fake_api () in
  checkb "bad increase" true
    (match Tcp.Cc.ai_md ~increase:0. ~decrease:0.5 api with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad decrease" true
    (match Tcp.Cc.ai_md ~increase:1. ~decrease:1. api with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Segment --- *)

let test_segment_describe () =
  Alcotest.check Alcotest.string "data" "data seq=5"
    (Tcp.Segment.describe (Tcp.Segment.data ~seq:5));
  Alcotest.check Alcotest.string "ack" "ack=3 ece=true"
    (Tcp.Segment.describe (Tcp.Segment.ack ~ack:3 ~ece:true ()));
  Alcotest.check Alcotest.string "other" "other"
    (Tcp.Segment.describe Net.Packet.No_payload)

(* --- End-to-end transfers --- *)

let fast_config =
  {
    Tcp.Sender.default_config with
    min_rto = Time.span_of_ms 10.;
    initial_rto = Time.span_of_ms 50.;
  }

let mk_net ?(n = 1) ?(buffer = 100 * 1500) ?(rate = 1e9) ?marking () =
  let sim = Sim.create ~seed:5L () in
  let marking = match marking with Some m -> m | None -> Net.Marking.none () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:n ~bottleneck_rate_bps:rate
      ~rtt:(Time.span_of_us 100.) ~buffer_bytes:buffer ~marking ()
  in
  (sim, d)

let test_transfer_completes () =
  let sim, d = mk_net () in
  let done_at = ref None in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno ~config:fast_config
      ~limit_segments:200
      ~on_complete:(fun f -> done_at := Tcp.Flow.completion_time f)
      ()
  in
  Tcp.Flow.start flow;
  Sim.run ~until:(Time.of_sec 2.) sim;
  checkb "completed" true (Tcp.Flow.completed flow);
  checki "all delivered" 200 (Tcp.Flow.segments_delivered flow);
  (match !done_at with
  | Some t ->
      (* 200 segments of 1500B at 1 Gbps = 2.4 ms serialization floor. *)
      checkb "took at least the line-rate floor" true (Time.to_sec t > 2.4e-3);
      checkb "reasonably fast" true (Time.to_sec t < 0.1)
  | None -> Alcotest.fail "expected completion time")

let test_transfer_no_losses_on_big_buffer () =
  let sim, d = mk_net () in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno ~config:fast_config
      ~limit_segments:300 ()
  in
  Tcp.Flow.start flow;
  Sim.run ~until:(Time.of_sec 2.) sim;
  checkb "completed" true (Tcp.Flow.completed flow);
  checki "no timeouts" 0 (Tcp.Sender.timeouts (Tcp.Flow.sender flow));
  checki "no retransmissions" 0
    (Tcp.Sender.retransmissions (Tcp.Flow.sender flow))

let test_slow_start_doubling () =
  (* With a huge pipe and no losses, cwnd should roughly double per RTT
     from the initial window while in slow start. *)
  let sim, d = mk_net ~rate:10e9 () in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno ~config:fast_config
      ()
  in
  Tcp.Flow.start flow;
  (* Base RTT ~100us: after ~5 RTTs cwnd should be >= 2^5 = 32 *)
  Sim.run ~until:(Time.of_us 550.) sim;
  checkb "cwnd grew exponentially" true (Tcp.Flow.cwnd flow >= 32.)

let test_rtt_measured_close_to_real () =
  let sim, d = mk_net () in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno ~config:fast_config
      ~limit_segments:50 ()
  in
  Tcp.Flow.start flow;
  Sim.run ~until:(Time.of_sec 1.) sim;
  match Tcp.Sender.srtt (Tcp.Flow.sender flow) with
  | Some s ->
      let srtt = Time.span_to_sec s in
      (* base RTT 100us prop + serialization; queueing adds on top *)
      checkb "srtt plausible" true (srtt > 100e-6 && srtt < 3e-3)
  | None -> Alcotest.fail "expected an RTT sample"

let test_fast_retransmit_recovers () =
  (* A tiny bottleneck buffer forces burst losses; the transfer must still
     complete, using fast retransmit (dupacks) rather than only timeouts. *)
  let sim, d = mk_net ~buffer:(8 * 1500) () in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno ~config:fast_config
      ~limit_segments:2000 ()
  in
  Tcp.Flow.start flow;
  Sim.run ~until:(Time.of_sec 10.) sim;
  checkb "completed despite losses" true (Tcp.Flow.completed flow);
  checkb "losses actually happened" true
    (Tcp.Sender.retransmissions (Tcp.Flow.sender flow) > 0);
  checkb "fast retransmit used" true
    (Tcp.Sender.fast_retransmits (Tcp.Flow.sender flow) > 0)

let test_goodput_at_line_rate () =
  let sim, d = mk_net () in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno ~config:fast_config
      ()
  in
  Tcp.Flow.start flow;
  let t_end = Time.of_ms 300. in
  Sim.run ~until:t_end sim;
  let goodput = Tcp.Flow.goodput_bps flow ~since:Time.zero ~until:t_end in
  checkb
    (Printf.sprintf "near line rate (%.0f Mbps)" (goodput /. 1e6))
    true (goodput > 0.9e9)

let test_two_flows_share_fairly () =
  let sim, d = mk_net ~n:2 () in
  let mk i =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(i)
      ~dst:d.Net.Topology.receiver ~flow:i ~cc:Tcp.Cc.reno ~config:fast_config
      ()
  in
  let f0 = mk 0 and f1 = mk 1 in
  Tcp.Flow.start f0;
  Tcp.Flow.start f1;
  Sim.run ~until:(Time.of_ms 400.) sim;
  let d0 = float_of_int (Tcp.Flow.segments_delivered f0) in
  let d1 = float_of_int (Tcp.Flow.segments_delivered f1) in
  let ratio = Float.min d0 d1 /. Float.max d0 d1 in
  checkb "within 2x of each other" true (ratio > 0.5);
  checkb
    (Printf.sprintf "combined near line rate (%.0f Mbps)"
       ((d0 +. d1) *. 1500. *. 8. /. 0.4 /. 1e6))
    true
    ((d0 +. d1) *. 1500. *. 8. /. 0.4 > 0.9e9)

let test_rto_recovers_without_fast_retransmit () =
  (* With the dupack threshold out of reach, the RTO path is the only loss
     recovery; it must still push a lossy transfer through. *)
  let sim, d = mk_net () in
  let config = { fast_config with Tcp.Sender.dupack_threshold = 1_000_000 } in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno ~config
      ~limit_segments:1500 ()
  in
  Tcp.Flow.start flow;
  Sim.run ~until:(Time.of_sec 30.) sim;
  checkb "completed" true (Tcp.Flow.completed flow);
  checkb "timeouts happened" true
    (Tcp.Sender.timeouts (Tcp.Flow.sender flow) > 0);
  checki "fast retransmit never triggered" 0
    (Tcp.Sender.fast_retransmits (Tcp.Flow.sender flow))

let test_receiver_ooo_buffering () =
  let sim = Sim.create () in
  let h = Net.Host.create sim ~id:1 in
  (* A NIC so the receiver can emit ACKs; deliver them nowhere. *)
  let q = Net.Queue_disc.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  Net.Host.attach_nic h
    (Net.Port.create sim ~rate_bps:1e9 ~delay:0L ~queue:q ~deliver:ignore);
  let r = Tcp.Receiver.create sim ~host:h ~flow:0 ~peer:0 () in
  let push seq =
    Net.Host.receive h
      (Net.Packet.make (Net.Packet.store_of sim) ~src:0 ~dst:1 ~flow:0
         ~size:1500 ~ecn:Net.Packet.Ect
         (Tcp.Segment.data ~seq))
  in
  push 0;
  checki "in order" 1 (Tcp.Receiver.segments_delivered r);
  push 2;
  push 3;
  checki "held back" 1 (Tcp.Receiver.segments_delivered r);
  push 1;
  checki "drained" 4 (Tcp.Receiver.segments_delivered r);
  push 1;
  checki "duplicate ignored" 4 (Tcp.Receiver.segments_delivered r);
  checki "all counted" 5 (Tcp.Receiver.segments_received r)

let test_receiver_echo_per_packet () =
  let sim = Sim.create () in
  let h = Net.Host.create sim ~id:1 in
  let acks = ref [] in
  let q = Net.Queue_disc.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  Net.Host.attach_nic h
    (Net.Port.create sim ~rate_bps:1e9 ~delay:0L ~queue:q ~deliver:(fun p ->
         let st = Net.Packet.store_of sim in
         (match Net.Packet.payload st p with
         | Tcp.Segment.Ack { ack; ece; sack = _ } ->
             acks := (ack, ece) :: !acks
         | _ -> ());
         Net.Packet.free st p));
  let _r = Tcp.Receiver.create sim ~host:h ~flow:0 ~peer:0 () in
  let push seq ecn =
    Net.Host.receive h
      (Net.Packet.make (Net.Packet.store_of sim) ~src:0 ~dst:1 ~flow:0
         ~size:1500 ~ecn
         (Tcp.Segment.data ~seq))
  in
  push 0 Net.Packet.Ect;
  push 1 Net.Packet.Ce;
  push 2 Net.Packet.Ect;
  Sim.run sim;
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool))
    "one ack per packet, ece mirrors CE"
    [ (1, false); (2, true); (3, false) ]
    (List.rev !acks)

let test_receiver_echo_dctcp_delayed () =
  let sim = Sim.create () in
  let h = Net.Host.create sim ~id:1 in
  let acks = ref [] in
  let q = Net.Queue_disc.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  Net.Host.attach_nic h
    (Net.Port.create sim ~rate_bps:1e9 ~delay:0L ~queue:q ~deliver:(fun p ->
         let st = Net.Packet.store_of sim in
         (match Net.Packet.payload st p with
         | Tcp.Segment.Ack { ack; ece; sack = _ } ->
             acks := (ack, ece) :: !acks
         | _ -> ());
         Net.Packet.free st p));
  let r =
    Tcp.Receiver.create sim ~host:h ~flow:0 ~peer:0
      ~echo:(Tcp.Receiver.Dctcp_delayed 2) ()
  in
  let push seq ecn =
    Net.Host.receive h
      (Net.Packet.make (Net.Packet.store_of sim) ~src:0 ~dst:1 ~flow:0
         ~size:1500 ~ecn
         (Tcp.Segment.data ~seq))
  in
  (* two unmarked packets -> one coalesced ACK(ece=false) *)
  push 0 Net.Packet.Ect;
  push 1 Net.Packet.Ect;
  (* CE state change -> nothing pending yet, next CE packet coalesces *)
  push 2 Net.Packet.Ce;
  push 3 Net.Packet.Ce;
  Sim.run sim;
  checki "coalesced to two acks" 2 (Tcp.Receiver.acks_sent r);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.bool))
    "delayed ack stream"
    [ (2, false); (4, true) ]
    (List.rev !acks)

let test_receiver_delayed_ack_halves_ack_count () =
  let sim, d = mk_net () in
  let flow =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno ~config:fast_config
      ~echo:(Tcp.Receiver.Dctcp_delayed 2) ~limit_segments:100 ()
  in
  Tcp.Flow.start flow;
  Sim.run ~until:(Time.of_sec 2.) sim;
  checkb "completed with delayed acks" true (Tcp.Flow.completed flow);
  let acks = Tcp.Receiver.acks_sent (Tcp.Flow.receiver flow) in
  checkb "roughly half the acks" true (acks >= 50 && acks <= 80)

(* --- SACK --- *)

let test_receiver_sack_blocks () =
  let sim = Sim.create () in
  let h = Net.Host.create sim ~id:1 in
  let last_sack = ref [] in
  let q = Net.Queue_disc.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  Net.Host.attach_nic h
    (Net.Port.create sim ~rate_bps:1e9 ~delay:0L ~queue:q ~deliver:(fun p ->
         let st = Net.Packet.store_of sim in
         (match Net.Packet.payload st p with
         | Tcp.Segment.Ack { sack; _ } -> last_sack := sack
         | _ -> ());
         Net.Packet.free st p));
  let _r = Tcp.Receiver.create sim ~host:h ~flow:0 ~peer:0 ~sack:true () in
  let push seq =
    Net.Host.receive h
      (Net.Packet.make (Net.Packet.store_of sim) ~src:0 ~dst:1 ~flow:0
         ~size:1500 ~ecn:Net.Packet.Ect
         (Tcp.Segment.data ~seq));
    Sim.run sim
  in
  push 0;
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "no blocks in order" [] !last_sack;
  push 2;
  push 3;
  push 5;
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "two merged blocks"
    [ (2, 4); (5, 6) ]
    !last_sack;
  (* filling the hole drains the buffer; blocks disappear *)
  push 1;
  push 4;
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "drained" [] !last_sack

let test_receiver_sack_block_limit () =
  let sim = Sim.create () in
  let h = Net.Host.create sim ~id:1 in
  let last_sack = ref [] in
  let q = Net.Queue_disc.create sim ~buffer:(Net.Buffer_mgr.solo ~capacity_bytes:1_000_000) () in
  Net.Host.attach_nic h
    (Net.Port.create sim ~rate_bps:1e9 ~delay:0L ~queue:q ~deliver:(fun p ->
         let st = Net.Packet.store_of sim in
         (match Net.Packet.payload st p with
         | Tcp.Segment.Ack { sack; _ } -> last_sack := sack
         | _ -> ());
         Net.Packet.free st p));
  let _r = Tcp.Receiver.create sim ~host:h ~flow:0 ~peer:0 ~sack:true () in
  List.iter
    (fun seq ->
      Net.Host.receive h
        (Net.Packet.make (Net.Packet.store_of sim) ~src:0 ~dst:1 ~flow:0
           ~size:1500 ~ecn:Net.Packet.Ect
           (Tcp.Segment.data ~seq)))
    [ 2; 4; 6; 8; 10 ];
  Sim.run sim;
  checki "at most three blocks" 3 (List.length !last_sack)

let lossy_transfer ~sack =
  let sim, d = mk_net ~buffer:(20 * 1500) ~n:2 () in
  (* A competing greedy flow creates drops at the shared bottleneck. *)
  let config = { fast_config with Tcp.Sender.sack } in
  let main =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
      ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno ~config
      ~limit_segments:3000 ()
  in
  let cross =
    Tcp.Flow.create sim ~src:d.Net.Topology.senders.(1)
      ~dst:d.Net.Topology.receiver ~flow:1 ~cc:Tcp.Cc.reno ~config ()
  in
  Tcp.Flow.start main;
  Tcp.Flow.start cross;
  (* Run until the main transfer completes so both modes are compared on
     identical delivered work. *)
  let rec advance () =
    if (not (Tcp.Flow.completed main)) && Time.(Sim.now sim < Time.of_sec 30.)
    then begin
      Sim.run ~until:(Time.add (Sim.now sim) (Time.span_of_ms 100.)) sim;
      advance ()
    end
  in
  advance ();
  (* Host 0's NIC carries exactly the main flow's data segments, so the
     overhead beyond the 3000 useful segments is the resend waste. *)
  let sent = Net.Port.packets_sent (Net.Host.nic d.Net.Topology.senders.(0)) in
  ( Tcp.Flow.completed main,
    sent - 3000,
    Tcp.Sender.fast_retransmits (Tcp.Flow.sender main) )

let test_sack_transfer_completes () =
  let completed, overhead, frtx = lossy_transfer ~sack:true in
  checkb "completed" true completed;
  checkb "losses happened" true (overhead > 0);
  checkb "fast retransmit used" true (frtx > 0)

let test_sack_fewer_retransmissions () =
  let _, overhead_sack, _ = lossy_transfer ~sack:true in
  let _, overhead_gbn, _ = lossy_transfer ~sack:false in
  checkb
    (Printf.sprintf "sack resend overhead %d < go-back-N %d" overhead_sack
       overhead_gbn)
    true
    (overhead_sack < overhead_gbn)

let test_sender_validation () =
  let sim, d = mk_net () in
  checkb "zero-segment flow raises" true
    (match
       Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
         ~dst:d.Net.Topology.receiver ~flow:99 ~cc:Tcp.Cc.reno
         ~limit_segments:0 ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_flow_determinism () =
  let run () =
    let sim, d = mk_net ~buffer:(8 * 1500) () in
    let flow =
      Tcp.Flow.create sim ~src:d.Net.Topology.senders.(0)
        ~dst:d.Net.Topology.receiver ~flow:0 ~cc:Tcp.Cc.reno
        ~config:fast_config ~limit_segments:1000 ()
    in
    Tcp.Flow.start flow;
    Sim.run ~until:(Time.of_sec 5.) sim;
    ( Option.map Time.to_ns (Tcp.Flow.completion_time flow),
      Tcp.Sender.retransmissions (Tcp.Flow.sender flow),
      Sim.events_processed sim )
  in
  checkb "identical runs" true (run () = run ())

let suites =
  [
    ( "tcp.rtt_estimator",
      [
        Alcotest.test_case "initial state" `Quick test_rtt_initial;
        Alcotest.test_case "first sample" `Quick test_rtt_first_sample;
        Alcotest.test_case "convergence" `Quick test_rtt_converges;
        Alcotest.test_case "min clamp" `Quick test_rtt_min_clamp;
        Alcotest.test_case "backoff" `Quick test_rtt_backoff;
        Alcotest.test_case "validation" `Quick test_rtt_validation;
      ] );
    ( "tcp.cc",
      [
        Alcotest.test_case "reno slow start" `Quick test_reno_slow_start;
        Alcotest.test_case "reno congestion avoidance" `Quick
          test_reno_congestion_avoidance;
        Alcotest.test_case "reno ignores ece" `Quick test_reno_ignores_ece;
        Alcotest.test_case "reno fast retransmit" `Quick
          test_reno_fast_retransmit;
        Alcotest.test_case "reno timeout" `Quick test_reno_timeout;
        Alcotest.test_case "ecn-reno once per window" `Quick
          test_ecn_reno_halves_once_per_window;
        Alcotest.test_case "aimd parameters" `Quick test_aimd_parameters;
        Alcotest.test_case "aimd validation" `Quick test_aimd_validation;
      ] );
    ( "tcp.segment",
      [ Alcotest.test_case "describe" `Quick test_segment_describe ] );
    ( "tcp.receiver",
      [
        Alcotest.test_case "out-of-order buffering" `Quick
          test_receiver_ooo_buffering;
        Alcotest.test_case "per-packet echo" `Quick
          test_receiver_echo_per_packet;
        Alcotest.test_case "dctcp delayed echo" `Quick
          test_receiver_echo_dctcp_delayed;
        Alcotest.test_case "delayed ack halves ack count" `Quick
          test_receiver_delayed_ack_halves_ack_count;
      ] );
    ( "tcp.flow",
      [
        Alcotest.test_case "transfer completes" `Quick test_transfer_completes;
        Alcotest.test_case "clean path has no losses" `Quick
          test_transfer_no_losses_on_big_buffer;
        Alcotest.test_case "slow start doubling" `Quick
          test_slow_start_doubling;
        Alcotest.test_case "rtt measurement" `Quick
          test_rtt_measured_close_to_real;
        Alcotest.test_case "fast retransmit recovery" `Quick
          test_fast_retransmit_recovers;
        Alcotest.test_case "line-rate goodput" `Quick test_goodput_at_line_rate;
        Alcotest.test_case "two flows share" `Quick test_two_flows_share_fairly;
        Alcotest.test_case "rto-only recovery" `Quick
          test_rto_recovers_without_fast_retransmit;
        Alcotest.test_case "sack blocks at receiver" `Quick
          test_receiver_sack_blocks;
        Alcotest.test_case "sack block limit" `Quick
          test_receiver_sack_block_limit;
        Alcotest.test_case "sack transfer completes" `Quick
          test_sack_transfer_completes;
        Alcotest.test_case "sack beats go-back-N on retransmissions" `Slow
          test_sack_fewer_retransmissions;
        Alcotest.test_case "validation" `Quick test_sender_validation;
        Alcotest.test_case "determinism" `Quick test_flow_determinism;
      ] );
  ]
