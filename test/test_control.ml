(* Tests for the describing-function machinery: complex helpers, the plant
   transfer function, closed-form DFs against numerical Fourier
   integration, Nyquist geometry, and the stability theorems. *)

module C = Control.Cplx
module Plant = Control.Plant
module Df = Control.Df
module Ny = Control.Nyquist
module St = Control.Stability

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg
let close ?(eps = 1e-9) a b = C.dist a b < eps

(* --- Cplx --- *)

let test_cplx_arith () =
  let open C in
  let a = make 1. 2. and b = make 3. (-1.) in
  checkb "add" true (close (a +: b) (make 4. 1.));
  checkb "sub" true (close (a -: b) (make (-2.) 3.));
  checkb "mul" true (close (a *: b) (make 5. 5.));
  checkb "div roundtrip" true (close (a *: b /: b) a);
  checkb "scale" true (close (scale 2. a) (make 2. 4.));
  checkb "neg" true (close (neg a) (make (-1.) (-2.)));
  checkb "conj" true (close (conj a) (make 1. (-2.)));
  checkb "inv" true (close (inv a *: a) one)

let test_cplx_polar () =
  let z = C.of_polar ~r:2. ~theta:(Float.pi /. 2.) in
  checkb "polar" true (close ~eps:1e-12 z (C.make 0. 2.));
  checkf ~eps:1e-12 "modulus" 2. (C.modulus z);
  checkf ~eps:1e-12 "arg" (Float.pi /. 2.) (C.arg z)

let test_cplx_exp () =
  (* e^{j pi} = -1 *)
  checkb "euler" true
    (close ~eps:1e-12 (C.exp (C.im Float.pi)) (C.re (-1.)))

let test_cplx_misc () =
  checkf ~eps:1e-12 "dist" 5. (C.dist (C.make 0. 0.) (C.make 3. 4.));
  checkb "finite" true (C.is_finite (C.make 1. 2.));
  checkb "infinite" false (C.is_finite (C.make Float.infinity 0.));
  checkb "nan" false (C.is_finite (C.make 0. Float.nan));
  checkb "to_string" true (String.length (C.to_string (C.make 1. 2.)) > 0)

(* --- Plant --- *)

let params ?(n = 10) () = Plant.paper_params ~n ()

let test_plant_equilibrium () =
  let p = params () in
  (* W0 = R0 C / N = 1e-4 * 833333 / 10 = 8.333 packets *)
  checkf ~eps:1e-3 "w0" 8.3333 (Plant.w0 p);
  checkf ~eps:1e-4 "alpha0" (sqrt (2. /. 8.3333)) (Plant.alpha0 p)

let test_plant_validation () =
  checkb "bad c" true
    (match Plant.params ~c:0. ~n:1 ~r0:1. ~g:0.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad n" true
    (match Plant.params ~c:1. ~n:0 ~r0:1. ~g:0.5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad g" true
    (match Plant.params ~c:1. ~n:1 ~r0:1. ~g:1.5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_plant_block_dc_gains () =
  let p = params () in
  (* P_alpha(0) = 1; P_queue(0) = N. *)
  checkb "p_alpha dc" true (close ~eps:1e-12 (Plant.p_alpha p C.zero) C.one);
  checkb "p_queue dc" true
    (close ~eps:1e-9 (Plant.p_queue p C.zero) (C.re 10.))

(* Eq. 17 says the assembled product equals the closed-form rational
   function; verify on a grid of frequencies. *)
let test_plant_eq17_identity () =
  let p = params () in
  let closed_form s =
    let open C in
    let r0 = 1e-4 and g = 1. /. 16. in
    let c = 10e9 /. (1500. *. 8.) and nf = 10. in
    let num =
      scale
        (sqrt (c /. (2. *. nf *. r0)) *. nf /. r0)
        (re (2. *. g /. r0) +: s)
    in
    let den =
      (s +: re (g /. r0))
      *: (s +: re (nf /. (r0 *. r0 *. c)))
      *: (s +: re (1. /. r0))
    in
    num /: den
  in
  List.iter
    (fun w ->
      let s = C.im w in
      let got = Plant.p p s in
      let want = closed_form s in
      checkb
        (Printf.sprintf "identity at w=%g" w)
        true
        (C.dist got want /. (1. +. C.modulus want) < 1e-9))
    [ 1.; 100.; 1e4; 1e5; 1e6 ]

let test_plant_delay_factor () =
  let p = params () in
  (* |G(jw)| = |P(jw)| (the delay is a pure rotation). *)
  let w = 12345. in
  checkf ~eps:1e-9 "modulus preserved"
    (C.modulus (Plant.p p (C.im w)))
    (C.modulus (Plant.g_jw p w));
  (* arg difference = -w R0 (mod 2pi) *)
  let d = C.arg (Plant.g_jw p w) -. C.arg (Plant.p p (C.im w)) in
  let d = Float.rem (d +. (4. *. Float.pi)) (2. *. Float.pi) in
  let want = Float.rem ((-.w *. 1e-4) +. (4. *. Float.pi)) (2. *. Float.pi) in
  checkf ~eps:1e-9 "delay rotation" want d

(* --- Df: closed forms --- *)

let test_relay_below_threshold () =
  checkb "zero below K" true (close (Df.relay ~k:40. ~x:30.) C.zero)

let test_relay_known_value () =
  (* X = K sqrt(2): N = 2/(pi X) * sqrt(1/2) *)
  let k = 40. in
  let x = k *. sqrt 2. in
  let expected = 2. /. (Float.pi *. x) *. sqrt 0.5 in
  checkb "value" true (close ~eps:1e-12 (Df.relay ~k ~x) (C.re expected))

let test_relay_relative_max () =
  (* N0_dc peaks at 1/pi at X = K sqrt 2 *)
  let k = 40. in
  let at_peak = (Df.relay_relative ~k ~x:(k *. sqrt 2.)).C.re in
  checkf ~eps:1e-12 "peak value" (1. /. Float.pi) at_peak;
  checkf ~eps:1e-12 "constant exposed" (1. /. Float.pi) Df.relay_max_relative;
  (* and it is indeed a maximum *)
  checkb "smaller nearby" true
    ((Df.relay_relative ~k ~x:(k *. 1.2)).C.re < at_peak);
  checkb "smaller nearby 2" true
    ((Df.relay_relative ~k ~x:(k *. 2.)).C.re < at_peak)

let test_hysteresis_below_k1 () =
  checkb "zero below K1" true
    (close (Df.hysteresis ~k1:30. ~k2:50. ~x:20.) C.zero)

let test_hysteresis_band_is_relay_at_k1 () =
  (* For K1 <= X < K2 the implemented mechanism is a relay at K1. *)
  checkb "piecewise relay" true
    (close ~eps:1e-12
       (Df.hysteresis ~k1:30. ~k2:50. ~x:40.)
       (Df.relay ~k:30. ~x:40.))

let test_hysteresis_formula () =
  (* Eq. 27 at a hand-computed point: K1=30, K2=50, X=50. *)
  let k1 = 30. and k2 = 50. and x = 50. in
  let b1 = (sqrt (1. -. 0.36) +. 0.) /. Float.pi in
  let a1 = (k2 -. k1) /. (Float.pi *. x) in
  checkb "matches Eq. 27" true
    (close ~eps:1e-12
       (Df.hysteresis ~k1 ~k2 ~x)
       (C.make (b1 /. x) (a1 /. x)))

let test_hysteresis_imag_positive () =
  List.iter
    (fun x ->
      checkb "phase lead" true ((Df.hysteresis ~k1:30. ~k2:50. ~x).C.im > 0.))
    [ 51.; 60.; 100.; 500. ]

let test_hysteresis_equal_thresholds_is_relay () =
  List.iter
    (fun x ->
      checkb "degenerates" true
        (close ~eps:1e-12 (Df.hysteresis ~k1:40. ~k2:40. ~x) (Df.relay ~k:40. ~x)))
    [ 45.; 60.; 100. ]

let test_neg_recip () =
  let n = C.make 0.2 0.1 in
  let z = Df.neg_recip n in
  checkb "n * (-1/n) = -1" true (close ~eps:1e-12 (C.( *: ) n z) (C.re (-1.)));
  checkb "zero maps to non-finite" true
    (not (C.is_finite (Df.neg_recip C.zero)))

(* --- Df: closed forms vs numeric Fourier integration --- *)

let qtest = QCheck_alcotest.to_alcotest

let prop_relay_df_matches_fourier =
  QCheck.Test.make ~count:100
    ~name:"relay DF equals numeric Fourier of its indicator"
    QCheck.(pair (float_range 1. 100.) (float_range 1.01 10.))
    (fun (k, ratio) ->
      let x = k *. ratio in
      let closed = Df.relay ~k ~x in
      let numeric =
        Df.fundamental_of_indicator
          (fun theta -> Df.relay_indicator ~k ~x ~theta)
          ~x ~n:20000
      in
      C.dist closed numeric < 1e-3 /. x *. 10.)

let prop_hysteresis_df_matches_fourier =
  QCheck.Test.make ~count:100
    ~name:"hysteresis DF equals numeric Fourier of its indicator"
    QCheck.(
      triple (float_range 1. 50.) (float_range 1.0 2.0) (float_range 1.01 8.))
    (fun (k1, spread, ratio) ->
      let k2 = k1 *. spread in
      let x = k2 *. ratio in
      let closed = Df.hysteresis ~k1 ~k2 ~x in
      let numeric =
        Df.fundamental_of_indicator
          (fun theta -> Df.hysteresis_indicator ~k1 ~k2 ~x ~theta)
          ~x ~n:20000
      in
      C.dist closed numeric < 1e-3 /. x *. 10.)

(* The implemented switch policy (Dctcp.Marking_policies) driven over a
   sinusoidal occupancy has the DF of Eq. 27: an end-to-end bridge between
   the code that runs in the simulator and the paper's analysis. *)
let df_of_policy ~k1_pkts ~k2_pkts ~x_pkts ~n =
  let scale_bytes = 1500. in
  let policy =
    Dctcp.Marking_policies.double_threshold
      ~k1_bytes:(int_of_float (k1_pkts *. scale_bytes))
      ~k2_bytes:(int_of_float (k2_pkts *. scale_bytes))
      ()
  in
  let occupancy theta =
    (* Offset so the sine is non-negative: the policy sees bytes. The DF
       thresholds shift with the offset; use offset 0 and clamp at 0. *)
    Float.max 0. (x_pkts *. sin theta *. scale_bytes)
  in
  let prev = ref 0. in
  let indicator = Array.make n false in
  (* Two warm-up periods to settle the hysteresis state, then measure. *)
  for cycle = 0 to 2 do
    for i = 0 to n - 1 do
      let theta = 2. *. Float.pi *. float_of_int i /. float_of_int n in
      let occ = occupancy theta in
      let bytes = int_of_float occ in
      let packets = int_of_float (occ /. scale_bytes) in
      let mark =
        if occ >= !prev then policy.Net.Marking.on_enqueue ~bytes ~packets
        else begin
          policy.Net.Marking.on_dequeue ~bytes ~packets;
          (* query state without a crossing *)
          policy.Net.Marking.on_enqueue ~bytes ~packets
        end
      in
      prev := occ;
      if cycle = 2 then indicator.(i) <- mark
    done
  done;
  let h = 2. *. Float.pi /. float_of_int n in
  let a1 = ref 0. and b1 = ref 0. in
  Array.iteri
    (fun i m ->
      if m then begin
        let theta = (float_of_int i +. 0.5) *. h in
        a1 := !a1 +. (cos theta *. h);
        b1 := !b1 +. (sin theta *. h)
      end)
    indicator;
  C.make (!b1 /. Float.pi /. x_pkts) (!a1 /. Float.pi /. x_pkts)

let test_policy_df_matches_eq27 () =
  let k1 = 30. and k2 = 50. and x = 80. in
  let from_policy = df_of_policy ~k1_pkts:k1 ~k2_pkts:k2 ~x_pkts:x ~n:40000 in
  let closed = Df.hysteresis ~k1 ~k2 ~x in
  checkb
    (Printf.sprintf "policy DF %s ~ closed form %s" (C.to_string from_policy)
       (C.to_string closed))
    true
    (C.dist from_policy closed < 0.15 *. C.modulus closed)

(* --- Nyquist --- *)

let test_spaces () =
  let ls = Ny.log_space ~lo:1. ~hi:100. ~n:3 in
  checkf ~eps:1e-9 "log mid" 10. ls.(1);
  let lin = Ny.lin_space ~lo:0. ~hi:10. ~n:5 in
  checkf "lin" 2.5 lin.(1);
  checkb "bad log range raises" true
    (match Ny.log_space ~lo:0. ~hi:1. ~n:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_segment_intersection_cases () =
  let p a b = C.make a b in
  (* crossing diagonals of the unit square *)
  (match Ny.segment_intersection (p 0. 0.) (p 1. 1.) (p 0. 1.) (p 1. 0.) with
  | Some (z, t, u) ->
      checkb "midpoint" true (close ~eps:1e-12 z (p 0.5 0.5));
      checkf ~eps:1e-12 "t" 0.5 t;
      checkf ~eps:1e-12 "u" 0.5 u
  | None -> Alcotest.fail "expected intersection");
  (* parallel *)
  checkb "parallel" true
    (Ny.segment_intersection (p 0. 0.) (p 1. 0.) (p 0. 1.) (p 1. 1.) = None);
  (* disjoint *)
  checkb "disjoint" true
    (Ny.segment_intersection (p 0. 0.) (p 1. 1.) (p 2. 0.) (p 3. 1.) = None);
  (* touching endpoints counts *)
  checkb "endpoint touch" true
    (Ny.segment_intersection (p 0. 0.) (p 1. 1.) (p 1. 1.) (p 2. 0.) <> None)

let test_polyline_intersections () =
  (* A sine-ish polyline against the x axis segment. *)
  let curve_a =
    Array.init 100 (fun i ->
        let x = float_of_int i /. 10. in
        { Ny.param = x; z = C.make x (sin x) })
  in
  let curve_b =
    [| { Ny.param = 0.; z = C.make 0. 0. }; { Ny.param = 1.; z = C.make 10. 0. } |]
  in
  let crossings = Ny.intersections curve_a curve_b in
  (* sin crosses zero at 0, pi, 2pi, 3pi within [0, 9.9] *)
  checkb "about four crossings" true (List.length crossings >= 3);
  match crossings with
  | _ :: second :: _ ->
      checkb "near pi" true (Float.abs (second.Ny.param_a -. Float.pi) < 0.2)
  | _ -> Alcotest.fail "expected crossings"

let test_real_axis_crossings () =
  let curve =
    Array.init 5 (fun i ->
        let x = float_of_int i in
        (* imag: +1, -1, +1, -1, +1 -> four crossings *)
        { Ny.param = x; z = C.make x (if i mod 2 = 0 then 1. else -1.) })
  in
  let c = Ny.real_axis_crossings curve in
  checki "four crossings" 4 (List.length c);
  let x0, re0 = List.hd c in
  checkf "interpolated param" 0.5 x0;
  checkf "interpolated re" 0.5 re0

let test_plant_locus_tags_params () =
  let p = params () in
  let w = [| 1e3; 1e4 |] in
  let locus = Ny.plant_locus p ~k0:1. ~w in
  checki "two points" 2 (Array.length locus);
  checkf "param kept" 1e3 locus.(0).Ny.param

let test_df_loci_skip_zero () =
  (* Amplitudes below threshold produce a zero DF and must be skipped. *)
  let locus = Ny.relay_neg_recip_locus ~k:40. ~x:[| 10.; 20.; 80. |] in
  checki "only one valid point" 1 (Array.length locus);
  checkb "finite" true (C.is_finite locus.(0).Ny.z)

(* --- Stability --- *)

let coarse =
  { St.default_grids with St.w_points = 800; x_points = 400 }

let test_paper_params_stable () =
  (* With the paper's stated parameters the printed G never reaches the DF
     loci (documented in EXPERIMENTS.md): both theorems report stability
     for all N in the paper's sweep. *)
  List.iter
    (fun n ->
      let p = params ~n () in
      checkb "dctcp stable" true (St.dctcp ~grids:coarse p ~k:40. = St.Stable);
      checkb "dt stable" true
        (St.dt_dctcp ~grids:coarse p ~k1:30. ~k2:50. = St.Stable))
    [ 10; 60; 100 ]

let test_margins_ordering () =
  (* DT-DCTCP's DF locus lies strictly above the real axis, so its gain
     margin exceeds DCTCP's at every N — the quantitative form of the
     paper's Section V-D conclusion. *)
  List.iter
    (fun n ->
      let p = params ~n () in
      let mdc = St.dctcp_margin ~grids:coarse p ~k:40. in
      let mdt = St.dt_dctcp_margin ~grids:coarse p ~k1:30. ~k2:50. in
      checkb
        (Printf.sprintf "margin order at N=%d (%.3f < %.3f)" n mdc mdt)
        true (mdc < mdt))
    [ 10; 40; 60; 100 ]

let test_dctcp_margin_minimized_near_60 () =
  let margin n = St.dctcp_margin ~grids:coarse (params ~n ()) ~k:40. in
  let m40 = margin 40 and m60 = margin 60 and m150 = margin 150 in
  checkb "dip vs small N" true (m60 < margin 10);
  checkb "dip vs large N" true (m60 < m150);
  checkb "plateau near the dip" true (Float.abs (m40 -. m60) < 0.5)

let test_long_rtt_oscillates_in_order () =
  (* With R0 = 1 ms the loci do intersect; DCTCP goes unstable at smaller N
     than DT-DCTCP (the paper's Figure 9 ordering). *)
  let c = 10e9 /. 12000. and g = 1. /. 16. and r0 = 1e-3 in
  let dc =
    St.critical_n ~c ~r0 ~g ~n_max:150
      ~verdict_at:(fun p -> St.dctcp ~grids:coarse p ~k:40.)
      ()
  in
  let dt =
    St.critical_n ~c ~r0 ~g ~n_max:150
      ~verdict_at:(fun p -> St.dt_dctcp ~grids:coarse p ~k1:30. ~k2:50.)
      ()
  in
  match (dc, dt) with
  | Some ndc, Some ndt ->
      checkb
        (Printf.sprintf "dctcp (%d) before dt (%d)" ndc ndt)
        true (ndc < ndt)
  | Some ndc, None ->
      checkb (Printf.sprintf "dctcp unstable at %d, dt never" ndc) true true
  | None, _ -> Alcotest.fail "expected DCTCP to go unstable at R0=1ms"

let test_limit_cycle_amplitude_exceeds_threshold () =
  let c = 10e9 /. 12000. and g = 1. /. 16. and r0 = 1e-3 in
  let p = Plant.params ~c ~n:100 ~r0 ~g in
  (match St.dctcp ~grids:coarse p ~k:40. with
  | St.Oscillatory { amplitude; omega } ->
      checkb "amplitude >= K" true (amplitude >= 40.);
      checkb "frequency positive" true (omega > 0.)
  | St.Stable -> Alcotest.fail "expected oscillation");
  match St.dt_dctcp ~grids:coarse p ~k1:30. ~k2:50. with
  | St.Oscillatory { amplitude; omega } ->
      checkb "dt amplitude >= K2" true (amplitude >= 50.);
      checkb "dt frequency positive" true (omega > 0.)
  | St.Stable -> Alcotest.fail "expected dt oscillation at N=100, R0=1ms"

let test_stability_validation () =
  let p = params () in
  checkb "bad k" true
    (match St.dctcp p ~k:0. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad thresholds" true
    (match St.dt_dctcp p ~k1:50. ~k2:30. with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pp_verdict () =
  let s = Format.asprintf "%a" St.pp_verdict St.Stable in
  Alcotest.check Alcotest.string "stable" "stable" s;
  let s2 =
    Format.asprintf "%a" St.pp_verdict
      (St.Oscillatory { amplitude = 50.; omega = 1000. })
  in
  checkb "oscillatory mentions X" true (String.length s2 > 10)

let suites =
  [
    ( "control.cplx",
      [
        Alcotest.test_case "arithmetic" `Quick test_cplx_arith;
        Alcotest.test_case "polar" `Quick test_cplx_polar;
        Alcotest.test_case "euler" `Quick test_cplx_exp;
        Alcotest.test_case "misc" `Quick test_cplx_misc;
      ] );
    ( "control.plant",
      [
        Alcotest.test_case "equilibrium" `Quick test_plant_equilibrium;
        Alcotest.test_case "validation" `Quick test_plant_validation;
        Alcotest.test_case "block dc gains" `Quick test_plant_block_dc_gains;
        Alcotest.test_case "Eq.17 identity" `Quick test_plant_eq17_identity;
        Alcotest.test_case "delay factor" `Quick test_plant_delay_factor;
      ] );
    ( "control.df",
      [
        Alcotest.test_case "relay below threshold" `Quick
          test_relay_below_threshold;
        Alcotest.test_case "relay known value" `Quick test_relay_known_value;
        Alcotest.test_case "relative relay max = 1/pi" `Quick
          test_relay_relative_max;
        Alcotest.test_case "hysteresis below K1" `Quick
          test_hysteresis_below_k1;
        Alcotest.test_case "band is relay at K1" `Quick
          test_hysteresis_band_is_relay_at_k1;
        Alcotest.test_case "Eq.27 hand value" `Quick test_hysteresis_formula;
        Alcotest.test_case "phase lead (Im > 0)" `Quick
          test_hysteresis_imag_positive;
        Alcotest.test_case "K1=K2 degenerates to relay" `Quick
          test_hysteresis_equal_thresholds_is_relay;
        Alcotest.test_case "neg_recip" `Quick test_neg_recip;
        qtest prop_relay_df_matches_fourier;
        qtest prop_hysteresis_df_matches_fourier;
        Alcotest.test_case "implemented policy has Eq.27 DF" `Slow
          test_policy_df_matches_eq27;
      ] );
    ( "control.nyquist",
      [
        Alcotest.test_case "spaces" `Quick test_spaces;
        Alcotest.test_case "segment intersection" `Quick
          test_segment_intersection_cases;
        Alcotest.test_case "polyline intersections" `Quick
          test_polyline_intersections;
        Alcotest.test_case "real axis crossings" `Quick
          test_real_axis_crossings;
        Alcotest.test_case "plant locus params" `Quick
          test_plant_locus_tags_params;
        Alcotest.test_case "df loci skip zero" `Quick test_df_loci_skip_zero;
      ] );
    ( "control.stability",
      [
        Alcotest.test_case "paper params stable" `Slow test_paper_params_stable;
        Alcotest.test_case "margin ordering dt > dctcp" `Slow
          test_margins_ordering;
        Alcotest.test_case "dctcp margin dips near N=60" `Slow
          test_dctcp_margin_minimized_near_60;
        Alcotest.test_case "long-RTT instability ordering" `Slow
          test_long_rtt_oscillates_in_order;
        Alcotest.test_case "limit cycle amplitude" `Slow
          test_limit_cycle_amplitude_exceeds_threshold;
        Alcotest.test_case "validation" `Quick test_stability_validation;
        Alcotest.test_case "verdict printing" `Quick test_pp_verdict;
      ] );
  ]
