(* Tests for the dtlint static-analysis rules (lint/rules.ml), driven by
   inline fixture snippets: one positive case per rule R1-R10, the scoping
   exemptions, and the suppression-comment escape hatch. *)

module Rules = Dtlint.Rules

let findings ?rules ~file src =
  Rules.lint_source ?rules ~filename:file src
  |> List.map (fun (v : Rules.violation) -> (Rules.rule_id v.rule, v.line))

let check_findings msg expected actual =
  Alcotest.(check (list (pair string int))) msg expected actual

(* --- R1: Random outside lib/engine/rng.ml --- *)

let r1_src = "let jitter () =\n  Random.float 1.0\n"

let test_r1_random_leak () =
  check_findings "Random in lib/net" [ ("R1", 2) ]
    (findings ~file:"lib/net/port.ml" r1_src);
  check_findings "Random in bench" [ ("R1", 2) ]
    (findings ~file:"bench/perf.ml" r1_src);
  check_findings "qualified Stdlib.Random" [ ("R1", 1) ]
    (findings ~file:"lib/tcp/flow.ml" "let x = Stdlib.Random.bool ()\n");
  check_findings "open Random" [ ("R1", 1) ]
    (findings ~file:"lib/tcp/flow.ml" "open Random\n")

let test_r1_rng_exempt () =
  check_findings "lib/engine/rng.ml may use Random" []
    (findings ~file:"lib/engine/rng.ml" r1_src)

(* --- R2: float equality --- *)

let test_r2_float_equality () =
  check_findings "literal and arithmetic operands"
    [ ("R2", 2); ("R2", 3); ("R2", 4) ]
    (findings ~file:"lib/engine/time.ml"
       "let a = 1.0\n\
        let bad x = x = 0.5\n\
        let worse y = y <> (2. *. y)\n\
        let annotated z w = (z : float) == w\n\
        let fine n = n = 3\n");
  check_findings "known float producer" [ ("R2", 1) ]
    (findings ~file:"lib/net/trace.ml" "let f t u = sqrt t = u\n")

(* --- R3: polymorphic compare / hash --- *)

let test_r3_polymorphic_compare () =
  check_findings "bare compare and Hashtbl.hash"
    [ ("R3", 1); ("R3", 2) ]
    (findings ~file:"lib/engine/heap.ml"
       "let sort l = List.sort compare l\nlet h x = Hashtbl.hash x\n")

let test_r3_local_compare_ok () =
  (* A file that defines its own monomorphic [compare] (like Engine.Time)
     may use it bare. *)
  check_findings "locally bound compare" []
    (findings ~file:"lib/engine/time.ml"
       "let compare a b = Int64.compare a b\n\
        let lt a b = compare a b < 0\n")

(* --- R4: console output inside lib/ --- *)

let test_r4_print_in_lib () =
  check_findings "print_endline in lib" [ ("R4", 1); ("R4", 2) ]
    (findings ~file:"lib/stats/table.ml"
       "let f () = print_endline \"hi\"\nlet g x = Printf.printf \"%d\" x\n")

let test_r4_print_outside_lib_ok () =
  check_findings "bench may print" []
    (findings ~file:"bench/main.ml" "let f () = print_endline \"hi\"\n")

(* --- R5: missing .mli --- *)

let test_r5_missing_mli () =
  (match Rules.check_mli ~ml_file:"lib/fluid/dde.ml" ~mli_exists:false with
  | Some v ->
      Alcotest.(check string) "rule id" "R5" (Rules.rule_id v.rule);
      Alcotest.(check int) "line" 1 v.line
  | None -> Alcotest.fail "expected an R5 violation");
  Alcotest.(check bool)
    "mli present" true
    (Rules.check_mli ~ml_file:"lib/fluid/dde.ml" ~mli_exists:true = None);
  Alcotest.(check bool)
    "outside lib exempt" true
    (Rules.check_mli ~ml_file:"bench/perf.ml" ~mli_exists:false = None)

(* --- R6: context-free failures in hot paths --- *)

let test_r6_hot_path_failures () =
  check_findings "assert false in engine" [ ("R6", 1) ]
    (findings ~file:"lib/engine/sim.ml" "let f () = assert false\n");
  check_findings "bare failwith in net" [ ("R6", 1) ]
    (findings ~file:"lib/net/switch.ml" "let f () = failwith \"\"\n");
  check_findings "messageful failwith ok" []
    (findings ~file:"lib/net/switch.ml" "let f () = failwith \"no route\"\n");
  check_findings "outside hot path exempt" []
    (findings ~file:"lib/stats/ewma.ml" "let f () = assert false\n")

(* --- R7: wall-clock reads outside lib/obs --- *)

let test_r7_wall_clock () =
  check_findings "Unix.gettimeofday in lib" [ ("R7", 1) ]
    (findings ~file:"lib/workloads/longlived.ml"
       "let t0 = Unix.gettimeofday ()\n");
  check_findings "Sys.time in bench" [ ("R7", 1) ]
    (findings ~file:"bench/perf.ml" "let t0 = Sys.time ()\n");
  check_findings "Unix.time in bin" [ ("R7", 1) ]
    (findings ~file:"bin/dtsim.ml" "let now = Unix.time ()\n");
  check_findings "Stdlib-qualified Sys.time" [ ("R7", 1) ]
    (findings ~file:"lib/engine/sim.ml" "let t = Stdlib.Sys.time ()\n")

let test_r7_obs_exempt () =
  check_findings "lib/obs may read the wall clock" []
    (findings ~file:"lib/obs/profile.ml"
       "let wall_clock () = Unix.gettimeofday ()\nlet cpu () = Sys.time ()\n");
  (* Simulated time lookalikes stay clean: Engine.Time and Sim.now are the
     sanctioned clocks. *)
  check_findings "Sim.now is not a wall clock" []
    (findings ~file:"lib/net/trace.ml" "let t sim = Engine.Sim.now sim\n")

(* --- R8: parallelism primitives outside lib/exp --- *)

let test_r8_parallelism () =
  check_findings "Domain.spawn in lib" [ ("R8", 1) ]
    (findings ~file:"lib/workloads/incast.ml"
       "let d = Domain.spawn (fun () -> 1)\n");
  check_findings "Domain.join in lib" [ ("R8", 1) ]
    (findings ~file:"lib/engine/sim.ml" "let f d = Domain.join d\n");
  check_findings "Thread.create in bin" [ ("R8", 1) ]
    (findings ~file:"bin/dtsim.ml" "let t = Thread.create ignore ()\n");
  check_findings "Unix.fork in bench" [ ("R8", 1) ]
    (findings ~file:"bench/perf.ml" "let pid = Unix.fork ()\n");
  check_findings "open Domain" [ ("R8", 1) ]
    (findings ~file:"lib/net/switch.ml" "open Domain\n")

let test_r8_exp_exempt () =
  check_findings "lib/exp may spawn and join domains" []
    (findings ~file:"lib/exp/runner.ml"
       "let run f = Domain.join (Domain.spawn f)\n");
  (* Atomics are allowed everywhere: a lock-free counter doesn't introduce
     the scheduling nondeterminism R8 exists to keep out of simulations. *)
  check_findings "Atomic is not a parallelism primitive" []
    (findings ~file:"lib/net/packet.ml" "let c = Atomic.make 0\n")

(* --- R9: Obj.magic outside lib/engine --- *)

let test_r9_obj_magic () =
  check_findings "Obj.magic in lib/net" [ ("R9", 1) ]
    (findings ~file:"lib/net/queue_disc.ml"
       "let placeholder () = Obj.magic 0\n");
  check_findings "Obj.magic in bench" [ ("R9", 1) ]
    (findings ~file:"bench/perf.ml" "let x : int = Obj.magic \"boo\"\n");
  check_findings "Stdlib-qualified" [ ("R9", 1) ]
    (findings ~file:"bin/dtsim.ml" "let x : int = Stdlib.Obj.magic 1.0\n");
  (* Other Obj functions are not the hazard R9 polices. *)
  check_findings "Obj.repr untouched" []
    (findings ~file:"lib/net/queue_disc.ml"
       "let words x = Obj.reachable_words (Obj.repr x)\n")

let test_r9_engine_exempt () =
  check_findings "lib/engine containers may seed placeholder slots" []
    (findings ~file:"lib/engine/ring.ml"
       "let slot () = Obj.magic 0\n");
  check_findings "suppression works for R9" []
    (findings ~file:"lib/net/queue_disc.ml"
       "let p () = Obj.magic 0 (* dtlint: allow R9 *)\n")

(* --- R10: Rng stream creation outside the owner layers --- *)

let test_r10_rng_stream () =
  check_findings "Rng.create in lib/net" [ ("R10", 1) ]
    (findings ~file:"lib/net/port.ml"
       "let r = Engine.Rng.create ~seed:1L\n");
  check_findings "Rng.split in lib/tcp" [ ("R10", 1) ]
    (findings ~file:"lib/tcp/sender.ml"
       "let fork parent = Rng.split parent\n");
  check_findings "Rng.create in bench" [ ("R10", 1) ]
    (findings ~file:"bench/perf.ml"
       "let r = Engine.Rng.create ~seed:7L\n");
  check_findings "Rng.create in bin" [ ("R10", 1) ]
    (findings ~file:"bin/dtsim.ml"
       "let r = Engine.Rng.create ~seed:7L\n");
  (* Drawing from an existing stream is fine anywhere — R10 polices
     minting streams, not using them. *)
  check_findings "Rng.float untouched" []
    (findings ~file:"lib/net/port.ml" "let d rng = Engine.Rng.float rng\n")

let test_r10_owner_exempt () =
  List.iter
    (fun file ->
      check_findings (file ^ " may mint streams") []
        (findings ~file "let r = Engine.Rng.create ~seed:1L\n"))
    [
      "lib/engine/sim.ml";
      "lib/fault/injector.ml";
      "lib/workloads/incast.ml";
      "lib/exp/runner.ml";
    ];
  check_findings "suppression works for R10" []
    (findings ~file:"lib/net/port.ml"
       "let r = Rng.create ~seed:1L (* dtlint: allow R10 *)\n")

(* --- suppression comments --- *)

let test_suppression () =
  check_findings "matching rule suppressed" []
    (findings ~file:"lib/engine/time.ml"
       "let eq a b = a = 0.5 (* dtlint: allow R2 *)\n");
  check_findings "non-matching rule still fires" [ ("R2", 1) ]
    (findings ~file:"lib/engine/time.ml"
       "let eq a b = a = 0.5 (* dtlint: allow R1 *)\n");
  check_findings "allow all" []
    (findings ~file:"lib/engine/time.ml"
       "let eq a b = a = 0.5 (* dtlint: allow all *)\n");
  check_findings "only covers its own line" [ ("R2", 2) ]
    (findings ~file:"lib/engine/time.ml"
       "let a = 1.0 (* dtlint: allow R2 *)\nlet eq b = b = 0.5\n")

(* --- rule selection (the --only/--skip machinery) --- *)

let test_rule_selection () =
  let src = "let b x = x = 0.5\nlet c () = Random.bool ()\n" in
  check_findings "only R1" [ ("R1", 2) ]
    (findings ~rules:[ Rules.R1 ] ~file:"lib/net/host.ml" src);
  check_findings "skip nothing" [ ("R2", 1); ("R1", 2) ]
    (findings ~file:"lib/net/host.ml" src);
  Alcotest.(check bool)
    "rule_of_id roundtrip" true
    (List.for_all
       (fun r -> Rules.rule_of_id (Rules.rule_id r) = Some r)
       Rules.all_rules)

let test_parse_error () =
  Alcotest.(check bool)
    "raises Parse_error" true
    (match findings ~file:"lib/engine/sim.ml" "let let = in" with
    | exception Rules.Parse_error ("lib/engine/sim.ml", _, _) -> true
    | _ -> false)

let suites =
  [
    ( "lint.rules",
      [
        Alcotest.test_case "R1 random leakage" `Quick test_r1_random_leak;
        Alcotest.test_case "R1 rng.ml exempt" `Quick test_r1_rng_exempt;
        Alcotest.test_case "R2 float equality" `Quick test_r2_float_equality;
        Alcotest.test_case "R3 polymorphic compare" `Quick
          test_r3_polymorphic_compare;
        Alcotest.test_case "R3 local compare ok" `Quick test_r3_local_compare_ok;
        Alcotest.test_case "R4 print in lib" `Quick test_r4_print_in_lib;
        Alcotest.test_case "R4 print outside lib" `Quick
          test_r4_print_outside_lib_ok;
        Alcotest.test_case "R5 missing mli" `Quick test_r5_missing_mli;
        Alcotest.test_case "R6 hot-path failures" `Quick
          test_r6_hot_path_failures;
        Alcotest.test_case "R7 wall-clock reads" `Quick test_r7_wall_clock;
        Alcotest.test_case "R7 lib/obs exempt" `Quick test_r7_obs_exempt;
        Alcotest.test_case "R8 parallelism primitives" `Quick
          test_r8_parallelism;
        Alcotest.test_case "R8 lib/exp exempt" `Quick test_r8_exp_exempt;
        Alcotest.test_case "R9 Obj.magic outside engine" `Quick
          test_r9_obj_magic;
        Alcotest.test_case "R9 lib/engine exempt" `Quick test_r9_engine_exempt;
        Alcotest.test_case "R10 Rng streams outside owners" `Quick
          test_r10_rng_stream;
        Alcotest.test_case "R10 owner layers exempt" `Quick
          test_r10_owner_exempt;
        Alcotest.test_case "suppression comment" `Quick test_suppression;
        Alcotest.test_case "rule selection" `Quick test_rule_selection;
        Alcotest.test_case "parse errors surface" `Quick test_parse_error;
      ] );
  ]
