(* Aggregates all suites into one alcotest binary (dune runtest). *)

let () =
  Alcotest.run "dt_dctcp"
    (Test_engine.suites @ Test_obs.suites @ Test_stats.suites
   @ Test_net.suites @ Test_tcp.suites @ Test_dctcp.suites
   @ Test_control.suites @ Test_fluid.suites @ Test_workloads.suites
   @ Test_exp.suites @ Test_fault.suites @ Test_lint.suites
   @ Test_typed_lint.suites)
