(* Tests for the fault-injection subsystem (lib/fault): plan validation
   and JSON round-trips, injector semantics on a live dumbbell (flaps,
   wire loss, jitter, mark suppression), TCP loss recovery under seeded
   Bernoulli loss, the RTO exponential-backoff/clamp schedule during a
   long outage, and bit-identity of faulted sweeps across -j levels. *)

module Time = Engine.Time
module Sim = Engine.Sim
module Plan = Fault.Plan
module Injector = Fault.Injector
module Json = Obs.Json
module Trace = Obs.Trace
module Spec = Exp.Spec
module Registry = Exp.Registry
module Runner = Exp.Runner
module Outcome = Exp.Outcome
module Gen = QCheck.Gen

let qtest = QCheck_alcotest.to_alcotest
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Plan: validation and JSON round-trip ----------------------------- *)

let full_plan suppression =
  {
    Plan.flaps =
      [
        { Plan.down_at = Time.span_of_ms 1.; up_at = Time.span_of_ms 2. };
        { Plan.down_at = Time.span_of_ms 5.; up_at = Time.span_of_ms 9. };
      ];
    loss_rate = 0.125;
    jitter_max = Time.span_of_us 30.;
    rate_changes =
      [
        {
          Plan.at = Time.span_of_ms 3.;
          until = Time.span_of_ms 4.;
          factor = 0.25;
        };
      ];
    suppression;
  }

let test_plan_roundtrip () =
  let plans =
    Plan.none
    :: List.map full_plan
         [
           Plan.Keep_marks;
           Plan.Suppress_all;
           Plan.Suppress_window
             { at = Time.span_of_ms 1.; until = Time.span_of_ms 2. };
           Plan.Suppress_prob 0.5;
         ]
  in
  List.iter
    (fun p ->
      match Json.parse (Plan.to_string p) with
      | Error e -> Alcotest.failf "parse: %s" e
      | Ok j -> (
          match Plan.of_json j with
          | Error e -> Alcotest.failf "of_json: %s" e
          | Ok p' ->
              checkb "round-trips" true (Plan.equal p p');
              checkb "json stable" true
                (Json.equal (Plan.to_json p) (Plan.to_json p'))))
    plans

let test_plan_validate_rejects () =
  let rejected p = match Plan.validate p with Error _ -> true | Ok () -> false in
  let flap down_at up_at = { Plan.down_at; up_at } in
  checkb "empty window" true
    (rejected { Plan.none with flaps = [ flap 5L 5L ] });
  checkb "reversed window" true
    (rejected { Plan.none with flaps = [ flap 9L 3L ] });
  checkb "overlapping flaps" true
    (rejected { Plan.none with flaps = [ flap 1L 10L; flap 5L 20L ] });
  checkb "unsorted flaps" true
    (rejected { Plan.none with flaps = [ flap 50L 60L; flap 1L 10L ] });
  checkb "loss_rate = 1 (every packet lost forever)" true
    (rejected { Plan.none with loss_rate = 1.0 });
  checkb "negative loss_rate" true
    (rejected { Plan.none with loss_rate = -0.1 });
  checkb "negative jitter" true
    (rejected { Plan.none with jitter_max = -1L });
  checkb "zero rate factor" true
    (rejected
       {
         Plan.none with
         rate_changes = [ { Plan.at = 1L; until = 2L; factor = 0. } ];
       });
  checkb "suppression prob out of range" true
    (rejected { Plan.none with suppression = Plan.Suppress_prob 1.5 });
  checkb "the no-fault plan is valid" true (not (rejected Plan.none));
  (* of_json re-validates, so a structurally well-formed but invalid plan
     is rejected on the way in too. *)
  checkb "of_json validates" true
    (match Plan.of_json (Plan.to_json { Plan.none with loss_rate = 2. }) with
    | Error _ -> true
    | Ok _ -> false)

let test_injector_rejects_invalid_plan () =
  let sim = Sim.create () in
  checkb "create raises on invalid plan" true
    (match
       Injector.create sim ~plan:{ Plan.none with loss_rate = 1. } ~seed:1L ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Injector semantics on a live dumbbell ---------------------------- *)

let fast_config =
  (* max_rto must stay well under the run caps below: at the default 60 s
     a few consecutive losses of the same retransmission saturate the
     backoff and park the flow for a minute per further loss, so a
     correctly-recovering flow can still miss a 60 s deadline. *)
  {
    Tcp.Sender.default_config with
    min_rto = Time.span_of_ms 10.;
    initial_rto = Time.span_of_ms 50.;
    max_rto = Time.span_of_sec 1.;
  }

let mk_net ?(seed = 5L) ?(n = 1) ?(buffer = 100 * 1500) () =
  let sim = Sim.create ~seed () in
  let d =
    Net.Topology.dumbbell sim ~n_senders:n ~bottleneck_rate_bps:1e9
      ~rtt:(Time.span_of_us 100.) ~buffer_bytes:buffer
      ~marking:(Net.Marking.none ()) ()
  in
  (sim, d)

let mk_flow ?tracer ?(config = fast_config) ?limit_segments sim d i =
  Tcp.Flow.create sim ~src:d.Net.Topology.senders.(i)
    ~dst:d.Net.Topology.receiver ~flow:i ~cc:Tcp.Cc.reno ?tracer ~config
    ?limit_segments ()

let test_flap_downs_link_and_recovers () =
  let sim, d = mk_net () in
  let events = ref [] in
  let tracer =
    Trace.create
      ~classes:[ Trace.C_link_down; Trace.C_link_up ]
      (Trace.Fn (fun r -> events := r :: !events))
  in
  let down_at = Time.span_of_ms 5. and up_at = Time.span_of_ms 8. in
  let inj =
    Injector.create sim
      ~plan:{ Plan.none with flaps = [ { Plan.down_at; up_at } ] }
      ~seed:1L ~tracer ()
  in
  Injector.attach inj ~port:d.Net.Topology.bottleneck;
  let flow = mk_flow sim d 0 ~limit_segments:4000 in
  Tcp.Flow.start flow;
  (* Probe link state inside the window and after it. *)
  let seen_down = ref true and seen_up = ref false in
  ignore
    (Sim.schedule_after sim (Time.span_of_ms 6.) (fun () ->
         seen_down := Net.Port.is_up d.Net.Topology.bottleneck));
  ignore
    (Sim.schedule_after sim (Time.span_of_ms 9.) (fun () ->
         seen_up := Net.Port.is_up d.Net.Topology.bottleneck));
  Sim.run ~until:(Time.of_sec 2.) sim;
  checkb "link down inside the window" false !seen_down;
  checkb "link back up after the window" true !seen_up;
  checki "one down" 1 (Injector.link_downs inj);
  checki "one up" 1 (Injector.link_ups inj);
  checkb "transfer survives the outage" true (Tcp.Flow.completed flow);
  let names =
    List.rev_map (fun r -> Trace.cls_name (Trace.cls_of_event r.Trace.event))
      !events
  in
  Alcotest.(check (list string))
    "typed trace events" [ "link_down"; "link_up" ] names

let test_loss_hook_drops_packets () =
  let sim, d = mk_net () in
  let inj =
    Injector.create sim ~plan:{ Plan.none with loss_rate = 0.2 } ~seed:3L ()
  in
  Injector.attach inj ~port:d.Net.Topology.bottleneck;
  let flow = mk_flow sim d 0 ~limit_segments:500 in
  Tcp.Flow.start flow;
  Sim.run ~until:(Time.of_sec 10.) sim;
  checkb "packets were lost on the wire" true (Injector.pkts_lost inj > 0);
  checkb "sender retransmitted" true
    (Tcp.Sender.retransmissions (Tcp.Flow.sender flow) > 0);
  checkb "transfer still completes" true (Tcp.Flow.completed flow);
  checki "every byte delivered" 500 (Tcp.Flow.segments_delivered flow)

let test_jitter_delays_packets () =
  let sim, d = mk_net () in
  let inj =
    Injector.create sim
      ~plan:{ Plan.none with jitter_max = Time.span_of_us 50. }
      ~seed:4L ()
  in
  Injector.attach inj ~port:d.Net.Topology.bottleneck;
  let flow = mk_flow sim d 0 ~limit_segments:300 in
  Tcp.Flow.start flow;
  Sim.run ~until:(Time.of_sec 10.) sim;
  checkb "deliveries were delayed" true (Injector.pkts_delayed inj > 0);
  checkb "no wire loss from jitter" true (Injector.pkts_lost inj = 0);
  checkb "transfer completes despite reordering" true
    (Tcp.Flow.completed flow)

let always_mark () =
  Net.Marking.make ~name:"always"
    ~on_enqueue:(fun ~bytes:_ ~packets:_ -> true)
    ~on_dequeue:(fun ~bytes:_ ~packets:_ -> ())
    ()

let test_suppress_all_discards_marks () =
  let sim = Sim.create () in
  let inj =
    Injector.create sim
      ~plan:{ Plan.none with suppression = Plan.Suppress_all }
      ~seed:1L ()
  in
  let m = Injector.wrap_marking inj (always_mark ()) in
  let verdicts = List.init 5 (fun i -> m.Net.Marking.on_enqueue ~bytes:(1500 * i) ~packets:i) in
  checkb "no mark survives" true (List.for_all not verdicts);
  checki "every suppression counted" 5 (Injector.marks_suppressed inj)

let test_suppress_window_is_time_scoped () =
  let sim = Sim.create () in
  let inj =
    Injector.create sim
      ~plan:
        {
          Plan.none with
          suppression =
            Plan.Suppress_window
              { at = Time.span_of_ms 1.; until = Time.span_of_ms 2. };
        }
      ~seed:1L ()
  in
  let m = Injector.wrap_marking inj (always_mark ()) in
  let at ms = Sim.schedule_at sim (Time.of_ms ms) in
  let before = ref false and inside = ref true and after = ref false in
  ignore (at 0.5 (fun () -> before := m.Net.Marking.on_enqueue ~bytes:1500 ~packets:1));
  ignore (at 1.5 (fun () -> inside := m.Net.Marking.on_enqueue ~bytes:1500 ~packets:1));
  ignore (at 2.5 (fun () -> after := m.Net.Marking.on_enqueue ~bytes:1500 ~packets:1));
  Sim.run sim;
  checkb "marks pass before the window" true !before;
  checkb "marks suppressed inside the window" false !inside;
  checkb "marks pass after the window" true !after;
  checki "one suppression" 1 (Injector.marks_suppressed inj)

let test_keep_marks_is_identity () =
  let sim = Sim.create () in
  let inj = Injector.create sim ~plan:Plan.none ~seed:1L () in
  let inner = always_mark () in
  let m = Injector.wrap_marking inj inner in
  checkb "same policy object" true (m == inner);
  checkb "marks untouched" true (m.Net.Marking.on_enqueue ~bytes:1500 ~packets:1)

(* --- TCP loss recovery (satellite): every byte arrives ---------------- *)

let prop_loss_recovery =
  QCheck.Test.make ~count:12
    ~name:"seeded Bernoulli loss (p<1): every flow delivers all bytes"
    (QCheck.make
       ~print:(fun (seed, p) -> Printf.sprintf "seed=%d p=%.3f" seed p)
       (Gen.pair (Gen.int_range 1 10_000) (Gen.float_range 0.01 0.35)))
    (fun (seed, p) ->
      let sim, d = mk_net ~seed:(Int64.of_int seed) ~n:2 () in
      let inj =
        Injector.create sim
          ~plan:{ Plan.none with loss_rate = p }
          ~seed:(Int64.of_int seed) ()
      in
      Injector.attach inj ~port:d.Net.Topology.bottleneck;
      let per_flow = 150 in
      let flows =
        List.init 2 (fun i -> mk_flow sim d i ~limit_segments:per_flow)
      in
      List.iter Tcp.Flow.start flows;
      Sim.run ~until:(Time.of_sec 60.) sim;
      List.for_all
        (fun f ->
          Tcp.Flow.completed f
          && Tcp.Flow.segments_delivered f = per_flow)
        flows)

(* --- RTO backoff and clamp during a long outage (satellite) ----------- *)

let test_rto_backoff_and_clamp () =
  let sim, d = mk_net () in
  let max_rto = Time.span_of_ms 80. in
  let config = { fast_config with Tcp.Sender.max_rto } in
  let down_at = Time.span_of_ms 20. and up_at = Time.span_of_ms 600. in
  let inj =
    Injector.create sim
      ~plan:{ Plan.none with flaps = [ { Plan.down_at; up_at } ] }
      ~seed:1L ()
  in
  Injector.attach inj ~port:d.Net.Topology.bottleneck;
  let rto_times = ref [] in
  let tracer =
    Trace.create ~classes:[ Trace.C_rto ]
      (Trace.Fn (fun r -> rto_times := r.Trace.time :: !rto_times))
  in
  let flow = mk_flow sim d 0 ~tracer ~config ~limit_segments:10_000 in
  Tcp.Flow.start flow;
  Sim.run ~until:(Time.of_sec 5.) sim;
  checkb "transfer completes after the link returns" true
    (Tcp.Flow.completed flow);
  (* RTO events during the outage: gaps must follow the doubling-then-
     clamp schedule exactly (the run is deterministic, no ACKs arrive to
     re-seed the estimator mid-outage). *)
  let during =
    List.rev !rto_times
    |> List.filter (fun t ->
           Int64.compare (Time.to_ns t) down_at >= 0
           && Int64.compare (Time.to_ns t) up_at <= 0)
  in
  checkb
    (Printf.sprintf "several timeouts fired during the outage (%d)"
       (List.length during))
    true
    (List.length during >= 4);
  let gaps =
    let rec go = function
      | a :: (b :: _ as rest) ->
          Int64.sub (Time.to_ns b) (Time.to_ns a) :: go rest
      | _ -> []
    in
    go during
  in
  let rec check_schedule = function
    | g1 :: (g2 :: _ as rest) ->
        let expected = Int64.min (Int64.mul 2L g1) max_rto in
        checkb
          (Printf.sprintf "gap %Ldns follows %Ldns (expect %Ldns)" g2 g1
             expected)
          true (Int64.equal g2 expected);
        check_schedule rest
    | _ -> ()
  in
  check_schedule gaps;
  checkb "backoff reached the max_rto clamp" true
    (List.exists (fun g -> Int64.equal g max_rto) gaps);
  checkb "clamp held (no gap above max_rto)" true
    (List.for_all (fun g -> Int64.compare g max_rto <= 0) gaps);
  checkb "timeouts counted" true
    (Tcp.Sender.timeouts (Tcp.Flow.sender flow) >= List.length during)

(* --- faulted runs are bit-identical across -j and repeats -------------- *)

let manifest_deterministic_eq (a : Obs.Manifest.t) (b : Obs.Manifest.t) =
  String.equal a.Obs.Manifest.name b.Obs.Manifest.name
  && Int64.equal a.Obs.Manifest.seed b.Obs.Manifest.seed
  && a.Obs.Manifest.events = b.Obs.Manifest.events
  && List.length a.Obs.Manifest.metrics = List.length b.Obs.Manifest.metrics
  && List.for_all2
       (fun (k1, v1) (k2, v2) ->
         String.equal k1 k2
         && Int64.equal (Int64.bits_of_float v1) (Int64.bits_of_float v2))
       a.Obs.Manifest.metrics b.Obs.Manifest.metrics
  && Json.equal
       (Json.Obj a.Obs.Manifest.params)
       (Json.Obj b.Obs.Manifest.params)

let outcome_bitwise_eq (a : Runner.outcome) (b : Runner.outcome) =
  Spec.equal a.Runner.spec b.Runner.spec
  && Outcome.equal a.Runner.result b.Runner.result
  && manifest_deterministic_eq a.Runner.manifest b.Runner.manifest

let test_faulted_sweep_bit_identical () =
  let specs = Registry.robust_smoke_specs () in
  checkb "the smoke slice is faulted" true
    (List.for_all (fun s -> Option.is_some s.Spec.faults) specs);
  let serial = Runner.run ~jobs:1 specs in
  let par = Runner.run ~jobs:4 specs in
  let again = Runner.run ~jobs:1 specs in
  checki "slot per spec" (List.length specs) (Array.length serial);
  checkb "-j 4 bit-identical to -j 1" true
    (Array.for_all2 outcome_bitwise_eq serial par);
  checkb "same-seed repeat bit-identical" true
    (Array.for_all2 outcome_bitwise_eq serial again)

(* Formerly these three workloads rejected fault plans with a typed
   error; every workload now threads a plan through to an injector, so a
   faulted spec must run — and must actually differ from the fault-free
   run of the same seed (the injector is live, not silently dropped). *)
let test_faults_supported_on_all_workloads () =
  let cases =
    [
      ( "convergence",
        Spec.Convergence
          {
            Workloads.Convergence.default_config with
            n_flows = 2;
            join_interval = Time.span_of_ms 5.;
            hold = Time.span_of_ms 5.;
          } );
      ( "dynamic",
        Spec.Dynamic
          {
            Workloads.Dynamic.default_config with
            background_flows = 2;
            short_senders = 4;
            arrival_rate = 2000.;
            duration = Time.span_of_ms 5.;
            warmup = Time.span_of_ms 2.;
            drain = Time.span_of_ms 5.;
          } );
      ( "deadline",
        Spec.Deadline
          {
            config =
              {
                Workloads.Deadline.default_config with
                n_flows = 4;
                repeats = 2;
                time_cap = Time.span_of_sec 2.;
              };
            d2tcp = false;
          } );
    ]
  in
  List.iter
    (fun (name, workload) ->
      let spec faults =
        {
          Spec.name = "fault/supported/" ^ name;
          protocol = Registry.sim_dctcp;
          workload;
          faults;
          buffer = Net.Buffer_mgr.Static;
        }
      in
      let faulted = spec (Some { Plan.none with loss_rate = 0.05 }) in
      let clean = spec None in
      (match (Runner.run_one faulted).Runner.result with
      | Outcome.Done _ -> ()
      | Outcome.Failed { error; _ } ->
          Alcotest.failf "faulted %s spec failed: %s" name error);
      let payload o =
        Outcome.to_json (Runner.run_one o).Runner.result
      in
      checkb
        (name ^ " injector observably changes the run")
        false
        (Json.equal (payload faulted) (payload clean)))
    cases

let suites =
  [
    ( "fault.plan",
      [
        Alcotest.test_case "JSON round-trip" `Quick test_plan_roundtrip;
        Alcotest.test_case "validate rejections" `Quick
          test_plan_validate_rejects;
        Alcotest.test_case "injector rejects invalid plan" `Quick
          test_injector_rejects_invalid_plan;
      ] );
    ( "fault.injector",
      [
        Alcotest.test_case "flap downs and restores the link" `Quick
          test_flap_downs_link_and_recovers;
        Alcotest.test_case "loss hook drops packets" `Quick
          test_loss_hook_drops_packets;
        Alcotest.test_case "jitter delays packets" `Quick
          test_jitter_delays_packets;
        Alcotest.test_case "suppress_all discards marks" `Quick
          test_suppress_all_discards_marks;
        Alcotest.test_case "suppress window is time-scoped" `Quick
          test_suppress_window_is_time_scoped;
        Alcotest.test_case "keep_marks is the identity" `Quick
          test_keep_marks_is_identity;
      ] );
    ( "fault.recovery",
      [
        qtest prop_loss_recovery;
        Alcotest.test_case "RTO backoff doubles then clamps" `Quick
          test_rto_backoff_and_clamp;
      ] );
    ( "fault.determinism",
      [
        Alcotest.test_case "faulted sweep -j4 = -j1 = repeat" `Quick
          test_faulted_sweep_bit_identical;
        Alcotest.test_case "faults supported on all workloads" `Quick
          test_faults_supported_on_all_workloads;
      ] );
  ]
