(* Tests for descriptive stats, percentiles, time series, EWMA, histograms,
   tables, and plots. *)

module D = Stats.Descriptive
module P = Stats.Percentile
module Ts = Stats.Timeseries
module Time = Engine.Time

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg

(* --- FCT slowdown --- *)

let test_fct_slowdown () =
  checkf "plain ratio" 2.5
    (Stats.Fct.slowdown ~ideal_ns:1_000L ~actual_ns:2_500L);
  checkf "faster than ideal clamps to 1" 1.0
    (Stats.Fct.slowdown ~ideal_ns:1_000L ~actual_ns:500L);
  checkf "zero actual clamps to 1" 1.0
    (Stats.Fct.slowdown ~ideal_ns:1_000L ~actual_ns:0L)

let test_fct_slowdown_validation () =
  checkb "zero ideal raises" true
    (match Stats.Fct.slowdown ~ideal_ns:0L ~actual_ns:1L with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "negative actual raises" true
    (match Stats.Fct.slowdown ~ideal_ns:1L ~actual_ns:(-1L) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Hand-computed against Percentile.of_sorted's linear interpolation:
   rank = p/100 x (n-1) over the sorted copy. *)
let test_fct_summarize () =
  let s = Stats.Fct.summarize [| 5.; 1.; 4.; 2.; 3. |] in
  checki "count" 5 s.Stats.Fct.count;
  checkf "p50: rank 2" 3.0 s.Stats.Fct.p50;
  checkf "p95: rank 3.8" 4.8 s.Stats.Fct.p95;
  checkf ~eps:1e-9 "p99: rank 3.96" 4.96 s.Stats.Fct.p99;
  checkf ~eps:1e-9 "p99.9: rank 3.996" 4.996 s.Stats.Fct.p999;
  checkf "mean" 3.0 s.Stats.Fct.mean;
  checkf "max" 5.0 s.Stats.Fct.max;
  let s11 = Stats.Fct.summarize (Array.init 11 (fun i -> float_of_int (i + 1))) in
  checkf "11 pts p50" 6.0 s11.Stats.Fct.p50;
  checkf "11 pts p95: rank 9.5" 10.5 s11.Stats.Fct.p95;
  checkf ~eps:1e-9 "11 pts p99: rank 9.9" 10.9 s11.Stats.Fct.p99;
  checkf ~eps:1e-9 "11 pts p99.9: rank 9.99" 10.99 s11.Stats.Fct.p999;
  checkb "empty raises" true
    (match Stats.Fct.summarize [||] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_fct_summarize_pure () =
  let arr = [| 3.; 1.; 2. |] in
  ignore (Stats.Fct.summarize arr);
  checkb "input not sorted in place" true (arr = [| 3.; 1.; 2. |])

(* --- Descriptive --- *)

let test_desc_empty () =
  let d = D.create () in
  checki "count" 0 (D.count d);
  checkf "mean" 0. (D.mean d);
  checkf "variance" 0. (D.variance d);
  checkb "min raises" true
    (match D.min d with exception Invalid_argument _ -> true | _ -> false)

let test_desc_known () =
  let d = D.of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  checki "count" 8 (D.count d);
  checkf "mean" 5. (D.mean d);
  checkf "population variance" 4. (D.variance d);
  checkf "stddev" 2. (D.stddev d);
  checkf ~eps:1e-6 "sample variance" (32. /. 7.) (D.sample_variance d);
  checkf "min" 2. (D.min d);
  checkf "max" 9. (D.max d);
  checkf "sum" 40. (D.sum d)

let test_desc_single () =
  let d = D.of_list [ 3.5 ] in
  checkf "mean" 3.5 (D.mean d);
  checkf "variance" 0. (D.variance d)

let test_desc_merge () =
  let a = D.of_list [ 1.; 2.; 3. ] in
  let b = D.of_list [ 10.; 20. ] in
  let m = D.merge a b in
  let whole = D.of_list [ 1.; 2.; 3.; 10.; 20. ] in
  checki "count" (D.count whole) (D.count m);
  checkf ~eps:1e-9 "mean" (D.mean whole) (D.mean m);
  checkf ~eps:1e-9 "variance" (D.variance whole) (D.variance m);
  checkf "min" (D.min whole) (D.min m);
  checkf "max" (D.max whole) (D.max m)

let test_desc_merge_empty () =
  let a = D.of_list [ 1.; 2. ] in
  let e = D.create () in
  checkf "merge right empty" (D.mean a) (D.mean (D.merge a e));
  checkf "merge left empty" (D.mean a) (D.mean (D.merge e a))

let prop_desc_matches_naive =
  QCheck.Test.make ~count:300 ~name:"welford matches naive mean/variance"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1e3) 1e3))
    (fun l ->
      let d = D.of_list l in
      let n = float_of_int (List.length l) in
      let mean = List.fold_left ( +. ) 0. l /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. l /. n
      in
      Float.abs (D.mean d -. mean) < 1e-6 *. (1. +. Float.abs mean)
      && Float.abs (D.variance d -. var) < 1e-5 *. (1. +. var))

let prop_desc_merge_assoc =
  QCheck.Test.make ~count:200 ~name:"merge equals concatenation"
    QCheck.(pair (list (float_range (-100.) 100.)) (list (float_range (-100.) 100.)))
    (fun (a, b) ->
      let m = D.merge (D.of_list a) (D.of_list b) in
      let w = D.of_list (a @ b) in
      D.count m = D.count w
      && Float.abs (D.mean m -. D.mean w) < 1e-8
      && Float.abs (D.variance m -. D.variance w) < 1e-6)

(* --- Percentile --- *)

let test_percentile_known () =
  let arr = [| 1.; 2.; 3.; 4.; 5. |] in
  checkf "p0" 1. (P.of_array arr 0.);
  checkf "p50" 3. (P.of_array arr 50.);
  checkf "p100" 5. (P.of_array arr 100.);
  checkf "p25" 2. (P.of_array arr 25.);
  checkf "p10 interpolates" 1.4 (P.of_array arr 10.)

let test_percentile_unsorted_input () =
  checkf "median of shuffled" 3. (P.median [| 5.; 1.; 3.; 2.; 4. |])

let test_percentile_single () =
  checkf "single" 7. (P.of_array [| 7. |] 99.)

let test_percentile_errors () =
  checkb "empty raises" true
    (match P.of_array [||] 50. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "p>100 raises" true
    (match P.of_array [| 1. |] 101. with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_percentile_summary () =
  let s = P.summary [| 1.; 2.; 3.; 4. |] in
  checki "seven entries" 7 (List.length s);
  checkf "min entry" 1. (List.assoc "min" s);
  checkf "max entry" 4. (List.assoc "max" s)

let prop_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentiles are monotone in p"
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0. 100.))
    (fun l ->
      let arr = Array.of_list l in
      let ps = [ 0.; 10.; 25.; 50.; 75.; 90.; 100. ] in
      let vals = List.map (P.of_array arr) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono vals)

(* --- Timeseries --- *)

let series_of samples =
  let ts = Ts.create () in
  List.iter (fun (t_us, v) -> Ts.add ts (Time.of_us t_us) v) samples;
  ts

let test_ts_basic () =
  let ts = series_of [ (0., 1.); (10., 3.); (20., 5.) ] in
  checki "length" 3 (Ts.length ts);
  checkb "not empty" false (Ts.is_empty ts);
  (* step function: 1 over [0,10), 3 over [10,20) -> mean over [0,20] = 2 *)
  checkf "time weighted mean" 2. (Ts.time_weighted_mean ts)

let test_ts_weighted_mean_window () =
  let ts = series_of [ (0., 2.); (10., 6.) ] in
  checkf "window clips"
    ((2. *. 5.) +. (6. *. 5.))
    (10.
    *. Ts.time_weighted_mean ~from:(Time.of_us 5.) ~until:(Time.of_us 15.) ts)

let test_ts_stddev () =
  (* half the time at 0, half at 2 -> mean 1, stddev 1 *)
  let ts = series_of [ (0., 0.); (10., 2.); (20., 0.) ] in
  checkf "mean" 1. (Ts.time_weighted_mean ts);
  checkf "stddev" 1. (Ts.time_weighted_stddev ts)

let test_ts_constant_series () =
  let ts = series_of [ (0., 4.); (5., 4.); (30., 4.) ] in
  checkf "mean" 4. (Ts.time_weighted_mean ts);
  checkf "stddev" 0. (Ts.time_weighted_stddev ts)

let test_ts_value_at () =
  let ts = series_of [ (0., 1.); (10., 2.) ] in
  checkf "at 0" 1. (Ts.value_at ts (Time.of_us 0.));
  checkf "mid segment" 1. (Ts.value_at ts (Time.of_us 9.9));
  checkf "boundary takes new" 2. (Ts.value_at ts (Time.of_us 10.));
  checkf "after end" 2. (Ts.value_at ts (Time.of_us 100.))

let test_ts_out_of_order () =
  let ts = series_of [ (10., 1.) ] in
  checkb "out of order raises" true
    (match Ts.add ts (Time.of_us 5.) 2. with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ts_min_max () =
  let ts = series_of [ (0., 5.); (1., -2.); (2., 9.) ] in
  checkf "min" (-2.) (Ts.min_value ts);
  checkf "max" 9. (Ts.max_value ts)

let test_ts_resample () =
  let ts = series_of [ (0., 1.); (10., 2.) ] in
  let pts = Ts.resample ts ~from:(Time.of_us 0.) ~until:(Time.of_us 10.) ~n:3 in
  checki "three points" 3 (Array.length pts);
  checkf "first" 1. (snd pts.(0));
  checkf "last" 2. (snd pts.(2))

let test_ts_empty_mean () =
  let ts = Ts.create () in
  checkf "empty mean 0" 0. (Ts.time_weighted_mean ts)

let test_ts_samples_roundtrip () =
  let ts = series_of [ (0., 1.); (3., 2.) ] in
  let s = Ts.samples ts in
  checki "two" 2 (Array.length s);
  checkf "value kept" 2. (snd s.(1))

let test_ts_growth () =
  (* exceed the initial capacity of 256 *)
  let ts = Ts.create () in
  for i = 0 to 999 do
    Ts.add ts (Time.of_us (float_of_int i)) (float_of_int (i mod 7))
  done;
  checki "1000 samples" 1000 (Ts.length ts)

(* --- Ewma --- *)

let test_ewma_constant_input () =
  let e = Stats.Ewma.create ~gain:0.25 () in
  for _ = 1 to 100 do
    Stats.Ewma.update e 3.
  done;
  checkf ~eps:1e-6 "converges to input" 3. (Stats.Ewma.value e);
  checki "observations" 100 (Stats.Ewma.observations e)

let test_ewma_formula () =
  let e = Stats.Ewma.create ~init:1. ~gain:0.5 () in
  Stats.Ewma.update e 0.;
  checkf "one step" 0.5 (Stats.Ewma.value e);
  Stats.Ewma.update e 1.;
  checkf "two steps" 0.75 (Stats.Ewma.value e)

let test_ewma_bad_gain () =
  checkb "gain 0 raises" true
    (match Stats.Ewma.create ~gain:0. () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "gain 2 raises" true
    (match Stats.Ewma.create ~gain:2. () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Histogram --- *)

let test_hist_basic () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 0.; 1.; 2.5; 9.9; 10.; -1.; 11. ];
  checki "total" 7 (Stats.Histogram.count h);
  checki "underflow" 1 (Stats.Histogram.underflow h);
  checki "overflow" 1 (Stats.Histogram.overflow h);
  checki "bin0 has 0,1" 2 (Stats.Histogram.bin_count h 0);
  checki "bin1 has 2.5" 1 (Stats.Histogram.bin_count h 1);
  checki "last bin has 9.9 and 10" 2 (Stats.Histogram.bin_count h 4)

let test_hist_bounds () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  let lo, hi = Stats.Histogram.bin_bounds h 2 in
  checkf "lo" 4. lo;
  checkf "hi" 6. hi

let test_hist_mode () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Stats.Histogram.add h) [ 1.; 5.; 5.2; 5.9 ];
  checki "mode bin" 2 (Stats.Histogram.mode_bin h)

let test_hist_invalid () =
  checkb "bad range" true
    (match Stats.Histogram.create ~lo:1. ~hi:1. ~bins:5 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checkb "bad bins" true
    (match Stats.Histogram.create ~lo:0. ~hi:1. ~bins:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Table --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
  m = 0 || scan 0

let render_table t =
  let buf_name = Filename.temp_file "table" ".txt" in
  let oc = open_out buf_name in
  Stats.Table.print ~oc t;
  close_out oc;
  let ic = open_in buf_name in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove buf_name;
  s

let test_table_renders () =
  let t =
    Stats.Table.create ~title:"demo"
      ~columns:[ Stats.Table.column ~align:Stats.Table.Left "name";
                 Stats.Table.column "value" ]
  in
  Stats.Table.add_row t [ "alpha"; "1.5" ];
  Stats.Table.add_float_row t ~fmt:(Stats.Table.fmt_f 2) [ 3.14159; 2.71828 ];
  let s = render_table t in
  checkb "has title" true
    (contains s "== demo ==");
  checkb "has row" true (contains s "alpha");
  checkb "has formatted float" true (contains s "3.14")

let test_table_width_mismatch () =
  let t = Stats.Table.create ~title:"t" ~columns:[ Stats.Table.column "a" ] in
  checkb "row mismatch raises" true
    (match Stats.Table.add_row t [ "1"; "2" ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_table_fmt () =
  Alcotest.check Alcotest.string "fmt_f" "3.14" (Stats.Table.fmt_f 2 3.14159);
  Alcotest.check Alcotest.string "fmt_g" "1234" (Stats.Table.fmt_g 1234.)

(* --- Ascii_plot --- *)

let test_plot_renders () =
  let s =
    Stats.Ascii_plot.render
      ~series:[ ("queue", Array.init 100 (fun i -> sin (float_of_int i /. 5.))) ]
      ()
  in
  checkb "non-empty" true (String.length s > 100);
  checkb "has legend" true (contains s "queue")

let test_plot_empty () =
  Alcotest.check Alcotest.string "empty plot" "(empty plot)\n"
    (Stats.Ascii_plot.render ~series:[ ("x", [||]) ] ())

let test_sparkline () =
  let s = Stats.Ascii_plot.sparkline [| 0.; 1.; 2.; 3. |] in
  checkb "non-empty" true (String.length s > 0);
  Alcotest.check Alcotest.string "empty input" ""
    (Stats.Ascii_plot.sparkline [||])

let prop_percentile_extremes =
  QCheck.Test.make ~count:200 ~name:"p0 is min and p100 is max"
    QCheck.(list_of_size Gen.(int_range 1 40) (float_range (-50.) 50.))
    (fun l ->
      let arr = Array.of_list l in
      let mn = List.fold_left min (List.hd l) l in
      let mx = List.fold_left max (List.hd l) l in
      Float.abs (P.of_array arr 0. -. mn) < 1e-9
      && Float.abs (P.of_array arr 100. -. mx) < 1e-9)

let prop_ts_mean_bounded =
  QCheck.Test.make ~count:200
    ~name:"time-weighted mean lies within [min, max] of samples"
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range 0. 100.))
    (fun values ->
      let ts = Ts.create () in
      List.iteri
        (fun i v -> Ts.add ts (Time.of_us (float_of_int i)) v)
        values;
      let mean = Ts.time_weighted_mean ts in
      mean >= Ts.min_value ts -. 1e-9 && mean <= Ts.max_value ts +. 1e-9)

(* --- Spectrum --- *)

let test_fft_impulse () =
  let n = 8 in
  let input =
    Array.init n (fun i -> if i = 0 then Complex.one else Complex.zero)
  in
  let out = Stats.Spectrum.fft input in
  Array.iter
    (fun z ->
      checkf ~eps:1e-12 "flat magnitude" 1. (Complex.norm z))
    out

let test_fft_sine_bin () =
  (* sine exactly at bin 4 of a 64-point FFT -> energy only at bins 4, 60 *)
  let n = 64 in
  let input =
    Array.init n (fun i ->
        {
          Complex.re = sin (2. *. Float.pi *. 4. *. float_of_int i /. float_of_int n);
          im = 0.;
        })
  in
  let out = Stats.Spectrum.fft input in
  Array.iteri
    (fun k z ->
      let m = Complex.norm z in
      if k = 4 || k = n - 4 then checkb "peak bins" true (m > 10.)
      else checkb "quiet bins" true (m < 1e-9))
    out

let test_fft_parseval () =
  let n = 32 in
  let rng = Engine.Rng.create ~seed:5L in  (* dtlint: allow R10 *)
  let input =
    Array.init n (fun _ ->
        { Complex.re = Engine.Rng.uniform rng ~lo:(-1.) ~hi:1.; im = 0. })
  in
  let out = Stats.Spectrum.fft input in
  let e_time =
    Array.fold_left (fun a z -> a +. Complex.norm2 z) 0. input
  in
  let e_freq =
    Array.fold_left (fun a z -> a +. Complex.norm2 z) 0. out
    /. float_of_int n
  in
  checkf ~eps:1e-9 "parseval" e_time e_freq

let test_fft_invalid_length () =
  checkb "non power of two raises" true
    (match Stats.Spectrum.fft (Array.make 12 Complex.zero) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_dominant_frequency () =
  let fs = 1000. in
  let samples =
    Array.init 1000 (fun i ->
        5.
        +. (3. *. sin (2. *. Float.pi *. 70. *. float_of_int i /. fs))
        +. (0.3 *. sin (2. *. Float.pi *. 220. *. float_of_int i /. fs)))
  in
  match Stats.Spectrum.dominant_frequency ~samples ~sample_rate_hz:fs with
  | Some p ->
      checkb
        (Printf.sprintf "70 Hz found (got %.1f)" p.Stats.Spectrum.frequency_hz)
        true
        (Float.abs (p.Stats.Spectrum.frequency_hz -. 70.) < 2.);
      checkb "peak carries real power" true
        (p.Stats.Spectrum.power > 0.01 *. p.Stats.Spectrum.total_power)
  | None -> Alcotest.fail "expected a dominant frequency"

let test_dominant_frequency_flat () =
  checkb "flat has none" true
    (Stats.Spectrum.dominant_frequency ~samples:(Array.make 256 3.)
       ~sample_rate_hz:100.
    = None);
  checkb "short has none" true
    (Stats.Spectrum.dominant_frequency ~samples:(Array.make 8 0.)
       ~sample_rate_hz:100.
    = None)

(* The verdict API keeps both degenerate cases distinguishable — the
   diagnostics `dtsim analyze` surfaces instead of a silent None. *)
let test_spectrum_verdicts () =
  (match
     Stats.Spectrum.analyze ~samples:(Array.make 8 0.) ~sample_rate_hz:100.
   with
  | Stats.Spectrum.Too_short { samples; needed } ->
      checki "sample count reported" 8 samples;
      checki "threshold reported" 16 needed
  | _ -> Alcotest.fail "8 samples must be Too_short");
  (match
     Stats.Spectrum.analyze ~samples:(Array.make 256 3.) ~sample_rate_hz:100.
   with
  | Stats.Spectrum.No_variation { samples } ->
      checki "sample count reported" 256 samples
  | _ -> Alcotest.fail "constant series must be No_variation");
  let fs = 1000. in
  let sine =
    Array.init 256 (fun i -> sin (2. *. Float.pi *. 50. *. float_of_int i /. fs))
  in
  (match Stats.Spectrum.analyze ~samples:sine ~sample_rate_hz:fs with
  | Stats.Spectrum.Peak p ->
      checkb "peak at 50 Hz" true
        (Float.abs (p.Stats.Spectrum.frequency_hz -. 50.) < 4.);
      checkb "peak has no note" true
        (Stats.Spectrum.verdict_note (Stats.Spectrum.Peak p) = None)
  | v -> (
      match Stats.Spectrum.verdict_note v with
      | Some n -> Alcotest.fail ("sine did not peak: " ^ n)
      | None -> Alcotest.fail "sine did not peak"));
  (* Every no-peak verdict explains itself. *)
  List.iter
    (fun v ->
      match Stats.Spectrum.verdict_note v with
      | Some note -> checkb "note is not empty" true (String.length note > 0)
      | None -> Alcotest.fail "degenerate verdict without a note")
    [
      Stats.Spectrum.Too_short { samples = 3; needed = 16 };
      Stats.Spectrum.No_variation { samples = 99 };
    ]

(* --- Fairness --- *)

let test_jain_known () =
  checkf "equal shares" 1. (Stats.Fairness.jain [| 5.; 5.; 5.; 5. |]);
  checkf "one hog of four" 0.25 (Stats.Fairness.jain [| 8.; 0.; 0.; 0. |]);
  (* J([1;2;3]) = 36 / (3 * 14) *)
  checkf "mixed shares" (36. /. 42.) (Stats.Fairness.jain [| 1.; 2.; 3. |]);
  checkf "single flow" 1. (Stats.Fairness.jain [| 7. |]);
  checkf "empty is fair" 1. (Stats.Fairness.jain [||]);
  checkf "all-zero is fair" 1. (Stats.Fairness.jain [| 0.; 0. |])

let test_goodput () =
  (* 100 segments of 1500 B over 1 s = 1.2 Mbit/s. *)
  checkf "known rate" 1.2e6
    (Stats.Fairness.goodput_bps ~segments:100 ~segment_bytes:1500 ~window_s:1.);
  checkb "zero window rejected" true
    (match
       Stats.Fairness.goodput_bps ~segments:1 ~segment_bytes:1500 ~window_s:0.
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_jain_bounds =
  QCheck.Test.make ~name:"jain index stays in (0, 1]" ~count:200
    QCheck.(array_of_size Gen.(1 -- 20) (float_bound_exclusive 1000.))
    (fun xs ->
      let xs = Array.map Float.abs xs in
      let j = Stats.Fairness.jain xs in
      j > 0. && j <= 1. +. 1e-12)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "stats.descriptive",
      [
        Alcotest.test_case "empty accumulator" `Quick test_desc_empty;
        Alcotest.test_case "known values" `Quick test_desc_known;
        Alcotest.test_case "single value" `Quick test_desc_single;
        Alcotest.test_case "merge" `Quick test_desc_merge;
        Alcotest.test_case "merge with empty" `Quick test_desc_merge_empty;
        qtest prop_desc_matches_naive;
        qtest prop_desc_merge_assoc;
      ] );
    ( "stats.percentile",
      [
        Alcotest.test_case "known percentiles" `Quick test_percentile_known;
        Alcotest.test_case "unsorted input" `Quick test_percentile_unsorted_input;
        Alcotest.test_case "single element" `Quick test_percentile_single;
        Alcotest.test_case "errors" `Quick test_percentile_errors;
        Alcotest.test_case "summary" `Quick test_percentile_summary;
        qtest prop_percentile_monotone;
        qtest prop_percentile_extremes;
      ] );
    ( "stats.timeseries",
      [
        Alcotest.test_case "time-weighted mean" `Quick test_ts_basic;
        Alcotest.test_case "window clipping" `Quick test_ts_weighted_mean_window;
        Alcotest.test_case "stddev" `Quick test_ts_stddev;
        Alcotest.test_case "constant series" `Quick test_ts_constant_series;
        Alcotest.test_case "value_at" `Quick test_ts_value_at;
        Alcotest.test_case "out-of-order add" `Quick test_ts_out_of_order;
        Alcotest.test_case "min/max" `Quick test_ts_min_max;
        Alcotest.test_case "resample" `Quick test_ts_resample;
        Alcotest.test_case "empty mean" `Quick test_ts_empty_mean;
        Alcotest.test_case "samples roundtrip" `Quick test_ts_samples_roundtrip;
        Alcotest.test_case "growth beyond capacity" `Quick test_ts_growth;
        qtest prop_ts_mean_bounded;
      ] );
    ( "stats.ewma",
      [
        Alcotest.test_case "constant input" `Quick test_ewma_constant_input;
        Alcotest.test_case "update formula" `Quick test_ewma_formula;
        Alcotest.test_case "gain validation" `Quick test_ewma_bad_gain;
      ] );
    ( "stats.histogram",
      [
        Alcotest.test_case "binning" `Quick test_hist_basic;
        Alcotest.test_case "bin bounds" `Quick test_hist_bounds;
        Alcotest.test_case "mode" `Quick test_hist_mode;
        Alcotest.test_case "validation" `Quick test_hist_invalid;
      ] );
    ( "stats.fairness",
      [
        Alcotest.test_case "jain known values" `Quick test_jain_known;
        Alcotest.test_case "goodput" `Quick test_goodput;
        qtest prop_jain_bounds;
      ] );
    ( "stats.table",
      [
        Alcotest.test_case "renders" `Quick test_table_renders;
        Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
        Alcotest.test_case "formatters" `Quick test_table_fmt;
      ] );
    ( "stats.ascii_plot",
      [
        Alcotest.test_case "renders" `Quick test_plot_renders;
        Alcotest.test_case "empty series" `Quick test_plot_empty;
        Alcotest.test_case "sparkline" `Quick test_sparkline;
      ] );
    ( "stats.fct",
      [
        Alcotest.test_case "slowdown ratio and clamp" `Quick
          test_fct_slowdown;
        Alcotest.test_case "slowdown validation" `Quick
          test_fct_slowdown_validation;
        Alcotest.test_case "summarize vs hand-computed" `Quick
          test_fct_summarize;
        Alcotest.test_case "summarize leaves input alone" `Quick
          test_fct_summarize_pure;
      ] );
    ( "stats.spectrum",
      [
        Alcotest.test_case "impulse is flat" `Quick test_fft_impulse;
        Alcotest.test_case "sine concentrates in its bin" `Quick
          test_fft_sine_bin;
        Alcotest.test_case "parseval" `Quick test_fft_parseval;
        Alcotest.test_case "length validation" `Quick test_fft_invalid_length;
        Alcotest.test_case "dominant frequency" `Quick test_dominant_frequency;
        Alcotest.test_case "degenerate inputs" `Quick
          test_dominant_frequency_flat;
        Alcotest.test_case "verdict diagnostics" `Quick test_spectrum_verdicts;
      ] );
  ]
