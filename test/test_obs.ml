(* Tests for the observability layer (lib/obs): trace filtering and ring
   bounding, serialization, the metrics registry, manifest round-trips,
   the shared sampler, engine profiling hooks, and the load-bearing
   property that attaching observers never changes simulation results. *)

module Trace = Obs.Trace
module Json = Obs.Json
module Sim = Engine.Sim
module Time = Engine.Time

let mk ?(t = Time.zero) ?(component = "q") event =
  { Trace.time = t; component; event }

let enq ?(t = Time.zero) flow =
  mk ~t (Trace.Enqueue { flow; occ_bytes = 1500; occ_pkts = 1 })

let drop ?(t = Time.zero) flow = mk ~t (Trace.Drop { flow; occ_bytes = 3000 })

(* --- class filtering --- *)

let test_filtering () =
  let seen = ref [] in
  let tr =
    Trace.create ~classes:[ Trace.C_drop ]
      (Trace.Fn (fun r -> seen := r :: !seen))
  in
  Alcotest.(check bool) "drop enabled" true (Trace.enabled tr Trace.C_drop);
  Alcotest.(check bool)
    "enqueue disabled" false
    (Trace.enabled tr Trace.C_enqueue);
  Trace.emit tr (enq 0);
  Trace.emit tr (drop 1);
  Trace.emit tr (enq 2);
  Alcotest.(check int) "only the drop got through" 1 (List.length !seen);
  Trace.set_classes tr [ Trace.C_enqueue ];
  Trace.emit tr (drop 3);
  Trace.emit tr (enq 4);
  Alcotest.(check int) "reconfigured live" 2 (List.length !seen)

let test_null_tracer () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Trace.cls_name c ^ " disabled on null")
        false
        (Trace.enabled Trace.null c))
    Trace.all_classes;
  (* Emitting into null is a silent no-op, but reconfiguring the shared
     tracer would enable tracing globally, so it must be rejected. *)
  Trace.emit Trace.null (drop 0);
  Alcotest.(check bool)
    "set_classes on null rejected" true
    (match Trace.set_classes Trace.null [ Trace.C_drop ] with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_cls_name_roundtrip () =
  List.iter
    (fun c ->
      match Trace.cls_of_name (Trace.cls_name c) with
      | Some c' ->
          Alcotest.(check string)
            "roundtrip" (Trace.cls_name c) (Trace.cls_name c')
      | None -> Alcotest.fail ("cls_of_name failed for " ^ Trace.cls_name c))
    Trace.all_classes;
  Alcotest.(check bool)
    "unknown name" true
    (Trace.cls_of_name "no_such_event" = None)

(* --- ring buffer --- *)

let test_ring_bounding () =
  let r = Trace.ring ~capacity:4 in
  let tr = Trace.create (Trace.Ring r) in
  for i = 1 to 10 do
    Trace.emit tr (enq ~t:(Time.of_ns (Int64.of_int i)) i)
  done;
  Alcotest.(check int) "length capped" 4 (Trace.ring_length r);
  Alcotest.(check int) "total uncapped" 10 (Trace.ring_total r);
  let times =
    List.map
      (fun (rec_ : Trace.record) -> Time.to_ns rec_.Trace.time)
      (Trace.ring_records r)
  in
  Alcotest.(check (list int64))
    "keeps the most recent, oldest first" [ 7L; 8L; 9L; 10L ] times;
  Alcotest.(check bool)
    "capacity must be positive" true
    (match Trace.ring ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- serialization --- *)

let test_record_serialization () =
  let r = mk ~t:(Time.of_ns 42L) ~component:"bottleneck" (Trace.Drop { flow = 3; occ_bytes = 9000 }) in
  let j = Trace.record_to_json r in
  Alcotest.(check bool)
    "t_ns" true
    (Json.member "t_ns" j = Some (Json.Int 42));
  Alcotest.(check bool)
    "event tag" true
    (Json.member "event" j = Some (Json.String "drop"));
  Alcotest.(check bool)
    "flow" true
    (Json.member "flow" j = Some (Json.Int 3));
  let cols s = List.length (String.split_on_char ',' s) in
  List.iter
    (fun ev ->
      Alcotest.(check int)
        ("csv column count: " ^ Trace.cls_name (Trace.cls_of_event ev))
        (cols Trace.csv_header)
        (cols (Trace.record_to_csv (mk ev))))
    [
      Trace.Enqueue { flow = 0; occ_bytes = 1500; occ_pkts = 1 };
      Trace.Dequeue { flow = 0; occ_bytes = 0; occ_pkts = 0 };
      Trace.Drop { flow = 1; occ_bytes = 100 };
      Trace.Mark { flow = 1; occ_bytes = 100; occ_pkts = 2 };
      Trace.Mark_state_flip { marking = true; occ_bytes = 45000 };
      Trace.Cwnd_cut { flow = 2; cwnd_before = 10.; cwnd_after = 6.; alpha = 0.4 };
      Trace.Fast_retransmit { flow = 2; snd_una = 77 };
      Trace.Rto { flow = 2; snd_una = 77; timeouts = 1 };
      Trace.Flow_start { flow = 5 };
      Trace.Flow_done { flow = 5; segments = 1000 };
      Trace.No_route_drop { flow = 6; dst = 99 };
    ]

(* --- Json parse / print --- *)

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 0.1;
      Json.Float 1e-9;
      Json.Float 123456789.125;
      Json.String "with \"quotes\" and \\ and \n";
      Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ];
      Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool false ]) ];
    ]
  in
  List.iter
    (fun j ->
      let s = Json.to_string j in
      match Json.parse s with
      | Ok j' ->
          Alcotest.(check bool) ("roundtrip " ^ s) true (Json.equal j j')
      | Error e -> Alcotest.fail (Printf.sprintf "parse %s: %s" s e))
    samples;
  (* A Float must never come back as an Int — equality is constructor-
     sensitive, so 1.0 must print with a '.' or exponent. *)
  (match Json.parse (Json.to_string (Json.Float 1.0)) with
  | Ok (Json.Float _) -> ()
  | Ok _ -> Alcotest.fail "Float 1.0 reparsed as non-Float"
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool)
    "trailing garbage rejected" true
    (match Json.parse "1 x" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool)
    "truncated object rejected" true
    (match Json.parse "{\"a\": 1" with Error _ -> true | Ok _ -> false)

(* --- metrics registry --- *)

let test_metrics () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "z.count" in
  let g = Obs.Metrics.gauge m "a.gauge" in
  Obs.Metrics.probe m "m.probe" (fun () -> 7.5);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Obs.Metrics.set g 2.25;
  Alcotest.(check int) "counter reads back" 11 (Obs.Metrics.count c);
  Alcotest.(check (float 0.)) "gauge reads back" 2.25 (Obs.Metrics.value g);
  Alcotest.(check (list (pair string (float 0.))))
    "snapshot is name-sorted"
    [ ("a.gauge", 2.25); ("m.probe", 7.5); ("z.count", 11.) ]
    (Obs.Metrics.snapshot m);
  Alcotest.(check bool)
    "duplicate name rejected" true
    (match Obs.Metrics.counter m "a.gauge" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- manifest round-trip --- *)

let test_manifest_roundtrip () =
  let m =
    Obs.Manifest.make ~name:"test.run" ~seed:0x7FFF_FFFF_FFFF_FFFDL
      ~params:[ ("flows", Json.Int 8); ("protocol", Json.String "dt-dctcp") ]
      ~wall_clock_s:1.5 ~events:3000
      ~metrics:[ ("z", 1.); ("a", 2.5) ]
      ()
  in
  Alcotest.(check (float 0.)) "events_per_s computed" 2000. m.Obs.Manifest.events_per_s;
  Alcotest.(check (list (pair string (float 0.))))
    "metrics sorted" [ ("a", 2.5); ("z", 1.) ] m.Obs.Manifest.metrics;
  match Obs.Manifest.of_json (Obs.Manifest.to_json m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      Alcotest.(check string) "name" m.Obs.Manifest.name m'.Obs.Manifest.name;
      Alcotest.(check int64) "seed survives as int64" m.Obs.Manifest.seed m'.Obs.Manifest.seed;
      Alcotest.(check int) "events" m.Obs.Manifest.events m'.Obs.Manifest.events;
      Alcotest.(check (float 0.)) "wall" m.Obs.Manifest.wall_clock_s m'.Obs.Manifest.wall_clock_s;
      Alcotest.(check (list (pair string (float 0.))))
        "metrics" m.Obs.Manifest.metrics m'.Obs.Manifest.metrics;
      Alcotest.(check bool)
        "params" true
        (Json.equal
           (Json.Obj m.Obs.Manifest.params)
           (Json.Obj m'.Obs.Manifest.params))

(* --- sampler --- *)

let test_sampler () =
  let sim = Sim.create () in
  let ticks = ref [] in
  let s =
    Obs.Sampler.start sim ~period:10L ~stop_at:(Time.of_ns 35L) ~immediate:true (fun now ->
        ticks := Time.to_ns now :: !ticks)
  in
  Sim.run sim;
  Alcotest.(check (list int64))
    "immediate: t=0 then every period up to stop_at" [ 0L; 10L; 20L; 30L ]
    (List.rev !ticks);
  Alcotest.(check bool) "still active when merely drained" true
    (Obs.Sampler.active s);
  (* Deferred first tick: fires one period in even if that lands past
     stop_at (Net.Trace's historic contract). *)
  let sim = Sim.create () in
  let ticks = ref [] in
  ignore
    (Obs.Sampler.start sim ~period:50L ~stop_at:(Time.of_ns 20L) (fun now ->
         ticks := Time.to_ns now :: !ticks));
  Sim.run sim;
  Alcotest.(check (list int64)) "deferred first tick unconditional" [ 50L ] !ticks;
  (* Opt-in clamp: the same start suppresses the overshooting first tick. *)
  let sim = Sim.create () in
  let ticks = ref [] in
  ignore
    (Obs.Sampler.start sim ~period:50L ~stop_at:(Time.of_ns 20L)
       ~clamp_first:true (fun now -> ticks := Time.to_ns now :: !ticks));
  Sim.run sim;
  Alcotest.(check (list int64)) "clamped first tick suppressed" [] !ticks;
  (* The clamp is inert when the first tick lands within the bound. *)
  let sim = Sim.create () in
  let ticks = ref [] in
  ignore
    (Obs.Sampler.start sim ~period:10L ~stop_at:(Time.of_ns 35L)
       ~clamp_first:true (fun now -> ticks := Time.to_ns now :: !ticks));
  Sim.run sim;
  Alcotest.(check (list int64))
    "clamp inert within stop_at" [ 10L; 20L; 30L ]
    (List.rev !ticks);
  (* stop detaches mid-run. *)
  let sim = Sim.create () in
  let count = ref 0 in
  let s =
    Obs.Sampler.start sim ~period:10L ~stop_at:(Time.of_ns 1000L) ~immediate:true (fun _ ->
        incr count)
  in
  ignore
    (Sim.schedule_at sim (Time.of_ns 25L) (fun () -> Obs.Sampler.stop s));
  Sim.run sim;
  Alcotest.(check int) "stopped after t=25" 3 !count;
  Alcotest.(check bool) "inactive after stop" false (Obs.Sampler.active s);
  Alcotest.(check bool)
    "non-positive period rejected" true
    (match
       Obs.Sampler.start sim ~period:0L ~stop_at:(Time.of_ns 10L) (fun _ -> ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- engine profiling hooks --- *)

let test_sim_instrument () =
  let sim = Sim.create () in
  let calls = ref 0 in
  Sim.set_instrument sim (fun () -> incr calls);
  for i = 1 to 5 do
    ignore (Sim.schedule_at sim (Time.of_ns (Int64.of_int i)) (fun () -> ()))
  done;
  Sim.run sim;
  Alcotest.(check int) "instrument called once per event" 5 !calls;
  Alcotest.(check int)
    "calls match the engine's own count" (Sim.events_processed sim) !calls;
  Alcotest.(check int) "heap high-water saw the burst" 5 (Sim.heap_high_water sim);
  Sim.clear_instrument sim;
  ignore (Sim.schedule_at sim (Time.of_ns 10L) (fun () -> ()));
  Sim.run sim;
  Alcotest.(check int) "cleared hook is silent" 5 !calls

(* --- observability must not perturb the simulation --- *)

let small_config seed n_flows =
  {
    Workloads.Longlived.default_config with
    Workloads.Longlived.n_flows;
    warmup = Time.span_of_ms 2.;
    measure = Time.span_of_ms 5.;
    seed;
  }

let snapshot_with_observers ~observe proto config =
  let metrics = Obs.Metrics.create () in
  let result =
    if observe then begin
      let ring = Trace.create (Trace.Ring (Trace.ring ~capacity:1024)) in
      let tmp = Filename.temp_file "test_obs" ".csv" in
      let oc = open_out tmp in
      let csv = Trace.create (Trace.Csv oc) in
      (* Drive both a ring and a CSV sink through one Fn fan-out so a
         single run exercises every serialization path. *)
      let tr =
        Trace.create
          (Trace.Fn
             (fun r ->
               Trace.emit csv r;
               Trace.emit ring r))
      in
      let result = Workloads.Longlived.run ~tracer:tr ~metrics proto config in
      close_out oc;
      Sys.remove tmp;
      result
    end
    else Workloads.Longlived.run ~metrics proto config
  in
  (result, Obs.Metrics.snapshot metrics)

let determinism_invariance =
  QCheck.Test.make ~count:4
    ~name:"attaching tracer+metrics never changes results"
    QCheck.(pair (int_range 1 3) small_int)
    (fun (n_flows, seed_base) ->
      let proto = Dctcp.Protocol.dt_dctcp_pkts ~k1:30 ~k2:50 () in
      let config = small_config (Int64.of_int (seed_base + 1)) n_flows in
      let bare, snap_bare = snapshot_with_observers ~observe:false proto config in
      let full, snap_full = snapshot_with_observers ~observe:true proto config in
      (* Bit-exact equality: determinism means the observed run IS the
         bare run. *)
      snap_bare = snap_full
      && bare.Workloads.Longlived.mean_queue_pkts
         = full.Workloads.Longlived.mean_queue_pkts
      && bare.Workloads.Longlived.throughput_bps
         = full.Workloads.Longlived.throughput_bps
      && bare.Workloads.Longlived.drops = full.Workloads.Longlived.drops)

(* --- tee --- *)

let test_tee () =
  let a_seen = ref 0 and b_seen = ref 0 in
  let a =
    Trace.create ~classes:[ Trace.C_drop ] (Trace.Fn (fun _ -> incr a_seen))
  in
  let b =
    Trace.create ~classes:[ Trace.C_enqueue ]
      (Trace.Fn (fun _ -> incr b_seen))
  in
  let t = Trace.tee a b in
  Alcotest.(check bool) "union: drop enabled" true (Trace.enabled t Trace.C_drop);
  Alcotest.(check bool)
    "union: enqueue enabled" true
    (Trace.enabled t Trace.C_enqueue);
  Alcotest.(check bool) "union: mark disabled" false (Trace.enabled t Trace.C_mark);
  Trace.emit t (drop 0);
  Trace.emit t (enq 1);
  Trace.emit t (mk (Trace.Mark { flow = 0; occ_bytes = 100; occ_pkts = 1 }));
  Alcotest.(check int) "branch a re-filters to drops" 1 !a_seen;
  Alcotest.(check int) "branch b re-filters to enqueues" 1 !b_seen

(* --- streaming analyzer --- *)

module An = Obs.Analyze

let an_config ?(sample_period = 10L) ?band ?(n_flows = 4) ?(rtt = 100L) () =
  {
    An.sample_period;
    band_bytes = band;
    n_flows;
    rtt;
    segment_bytes = 1500;
  }

let occ_at t occ =
  mk ~t:(Time.of_ns t) (Trace.Enqueue { flow = 0; occ_bytes = occ; occ_pkts = occ / 1500 })

let cut_at t flow =
  mk ~t:(Time.of_ns t)
    (Trace.Cwnd_cut { flow; cwnd_before = 10.; cwnd_after = 5.; alpha = 1. })

let flip_at t marking =
  mk ~t:(Time.of_ns t) (Trace.Mark_state_flip { marking; occ_bytes = 0 })

let afield path j =
  let rec go j = function
    | [] -> j
    | k :: rest -> (
        match Json.member k j with
        | Some v -> go v rest
        | None -> Alcotest.fail ("analysis block lacks " ^ k))
  in
  go j path

let test_analyze_resampling () =
  (* Zero-order hold onto a 10 ns grid anchored at the first record:
     occupancy 100 from t=0, 200 from t=25, 0 from t=40 must sample as
     100,100,100,200,0 at t = 0,10,20,30,40. *)
  let an = An.create (an_config ()) in
  List.iter (An.feed an) [ occ_at 0L 100; occ_at 25L 200; occ_at 40L 0 ];
  An.finalize an;
  let j = An.to_json an in
  Alcotest.(check bool)
    "5 grid samples" true
    (afield [ "occupancy"; "samples" ] j = Json.Int 5);
  (match afield [ "occupancy"; "mean_bytes" ] j with
  | Json.Float m -> Alcotest.(check (float 1e-9)) "ZOH mean" 100. m
  | _ -> Alcotest.fail "mean_bytes not a float");
  Alcotest.(check bool)
    "event-level min" true
    (afield [ "occupancy"; "min_bytes" ] j = Json.Int 0);
  Alcotest.(check bool)
    "event-level max" true
    (afield [ "occupancy"; "max_bytes" ] j = Json.Int 200)

let test_analyze_cycles () =
  (* Band (100, 200): low at 50, up-cross at 250 (cycle armed), low at
     60, up-cross at 300 completes one cycle with amplitude 300-60. *)
  let an = An.create (an_config ~band:(100, 200) ()) in
  List.iter (An.feed an)
    [ occ_at 0L 50; occ_at 10L 250; occ_at 20L 60; occ_at 30L 300 ];
  let s = An.summary an in
  Alcotest.(check int) "one complete cycle" 1 s.An.cycles;
  Alcotest.(check (float 1e-9))
    "amplitude (max-min within cycle, pkts)" (240. /. 1500.)
    s.An.amp_mean_pkts;
  Alcotest.(check (float 1e-12)) "period between up-crossings" 20e-9 s.An.period_mean_s;
  (* No band: the detector stays off however the occupancy swings. *)
  let an = An.create (an_config ()) in
  List.iter (An.feed an)
    [ occ_at 0L 50; occ_at 10L 250; occ_at 20L 60; occ_at 30L 300 ];
  Alcotest.(check int) "no band, no cycles" 0 (An.summary an).An.cycles

let test_analyze_flips_and_sync () =
  (* 4 flows, 100 ns windows. Window 0: flows 0 and 1 cut (flow 1
     twice, deduplicated) -> 2/4. Window 3: flow 2 -> 1/4. Flips: 4
     over the 400 ns trace span. *)
  let an = An.create (an_config ~band:(100, 200) ()) in
  List.iter (An.feed an)
    [
      cut_at 0L 0;
      flip_at 10L true;
      cut_at 20L 1;
      cut_at 30L 1;
      flip_at 150L false;
      cut_at 310L 2;
      flip_at 350L true;
      flip_at 400L false;
    ];
  let s = An.summary an in
  Alcotest.(check (float 1e-9)) "sync mean over active windows" 0.375 s.An.sync_mean;
  Alcotest.(check (float 1e-9)) "sync max" 0.5 s.An.sync_max;
  Alcotest.(check (float 1e-3)) "flip rate over 400 ns" (4. /. 400e-9) s.An.flip_rate_hz;
  let j = An.to_json an in
  Alcotest.(check bool)
    "2 active windows" true
    (afield [ "sync"; "active_windows" ] j = Json.Int 2);
  Alcotest.(check bool)
    "flips_up counted" true
    (afield [ "marking"; "flips_up" ] j = Json.Int 2)

let test_analyze_spectrum () =
  (* A square wave of period 10 samples (100 ns at 10 ns sampling) must
     come back as the dominant frequency: 1 / 100 ns = 10 MHz. *)
  let an = An.create (an_config ()) in
  for i = 0 to 399 do
    let occ = if i mod 10 < 5 then 0 else 1000 in
    An.feed an (occ_at (Int64.of_int (i * 10)) occ)
  done;
  let s = An.summary an in
  (match s.An.dominant_freq_hz with
  | None -> Alcotest.fail "square wave yielded no dominant frequency"
  | Some f -> Alcotest.(check (float 1e3)) "10 MHz square wave" 1e7 f);
  Alcotest.(check bool) "no note on success" true (An.spectrum_note an = None);
  (* Degenerate diagnostics must be explicit, not a silent None. *)
  let short = An.create (an_config ()) in
  An.feed short (occ_at 0L 100);
  An.feed short (occ_at 50L 100);
  An.finalize short;
  (match An.spectrum_note short with
  | Some note ->
      Alcotest.(check bool)
        ("mentions shortness: " ^ note)
        true
        (String.length note >= 10 && String.sub note 0 12 = "series too s")
  | None -> Alcotest.fail "short series produced no note");
  let flat = An.create (an_config ()) in
  for i = 0 to 63 do
    An.feed flat (occ_at (Int64.of_int (i * 10)) 500)
  done;
  An.finalize flat;
  (match An.spectrum_note flat with
  | Some note ->
      Alcotest.(check bool)
        ("mentions flatness: " ^ note)
        true
        (String.sub note 0 12 = "no variation")
  | None -> Alcotest.fail "flat series produced no note")

let test_analyze_errors () =
  let raises f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool)
    "non-positive period rejected" true
    (raises (fun () -> An.create (an_config ~sample_period:0L ())));
  Alcotest.(check bool)
    "inverted band rejected" true
    (raises (fun () -> An.create (an_config ~band:(200, 100) ())));
  Alcotest.(check bool)
    "zero flows rejected" true
    (raises (fun () -> An.create (an_config ~n_flows:0 ())));
  let an = An.create (an_config ()) in
  An.feed an (occ_at 100L 10);
  Alcotest.(check bool)
    "time regression rejected" true
    (raises (fun () -> An.feed an (occ_at 50L 10)));
  An.finalize an;
  Alcotest.(check bool)
    "feed after finalize rejected" true
    (raises (fun () -> An.feed an (occ_at 200L 10)))

let test_analyze_header_roundtrip () =
  let h =
    {
      An.Header.config = an_config ~band:(45_000, 75_000) ();
      classes = An.required_classes;
    }
  in
  let j = An.Header.to_json h in
  Alcotest.(check bool) "is_header" true (An.Header.is_header j);
  Alcotest.(check bool)
    "a record is not a header" false
    (An.Header.is_header (Trace.record_to_json (enq 0)));
  (match An.Header.of_json j with
  | Error e -> Alcotest.fail e
  | Ok h' ->
      Alcotest.(check bool)
        "config survives" true
        (h'.An.Header.config = h.An.Header.config);
      Alcotest.(check bool)
        "classes survive" true
        (h'.An.Header.classes = h.An.Header.classes));
  (* None band round-trips through the Null fields. *)
  let h = { An.Header.config = an_config (); classes = [ Trace.C_drop ] } in
  match An.Header.of_json (An.Header.to_json h) with
  | Ok h' ->
      Alcotest.(check bool)
        "bandless config survives" true
        (h'.An.Header.config.An.band_bytes = None)
  | Error e -> Alcotest.fail e

(* --- record JSONL round-trip: every constructor --- *)

let all_events =
  [
    Trace.Enqueue { flow = 0; occ_bytes = 1500; occ_pkts = 1 };
    Trace.Dequeue { flow = 1; occ_bytes = 0; occ_pkts = 0 };
    Trace.Drop { flow = 2; occ_bytes = 99_000 };
    Trace.Mark { flow = 3; occ_bytes = 60_000; occ_pkts = 40 };
    Trace.Mark_state_flip { marking = true; occ_bytes = 45_000 };
    Trace.Cwnd_cut { flow = 4; cwnd_before = 12.5; cwnd_after = 6.25; alpha = 0.5 };
    Trace.Fast_retransmit { flow = 5; snd_una = 7077 };
    Trace.Rto { flow = 6; snd_una = 42; timeouts = 3 };
    Trace.Flow_start { flow = 7 };
    Trace.Flow_done { flow = 8; segments = 4096 };
    Trace.Link_down { occ_bytes = 10_500 };
    Trace.Link_up { occ_bytes = 0 };
    Trace.Pkt_lost { flow = 9; size = 1500 };
    Trace.Mark_suppressed { occ_bytes = 30_000; occ_pkts = 20 };
    Trace.Rate_changed { rate_bps = 5e9 };
    Trace.No_route_drop { flow = 10; dst = 63 };
  ]

let test_record_of_json_every_constructor () =
  List.iteri
    (fun i ev ->
      let r = mk ~t:(Time.of_ns (Int64.of_int (i * 7))) ~component:"c" ev in
      let line = Json.to_string (Trace.record_to_json r) in
      match Json.parse line with
      | Error e -> Alcotest.fail (line ^ ": " ^ e)
      | Ok j -> (
          match Trace.record_of_json j with
          | Ok r' ->
              Alcotest.(check bool)
                ("bit-identical record: " ^ Trace.cls_name (Trace.cls_of_event ev))
                true (r = r')
          | Error e -> Alcotest.fail (line ^ ": " ^ e)))
    all_events;
  (* Strictness: a missing field is an error, not a default. *)
  match
    Trace.record_of_json
      (Json.Obj [ ("t_ns", Json.Int 0); ("event", Json.String "drop") ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "record_of_json accepted a field-less drop"

(* Property: any event stream, serialized to JSONL and parsed back,
   drives the analyzer to a bit-identical analysis block. *)

let gen_event =
  let open QCheck.Gen in
  let occ = int_range 0 150_000 in
  let pkts = int_range 0 100 in
  let flow = int_range 0 7 in
  let posf = float_range 0.5 1000. in
  oneof
    [
      (fun st ->
        Trace.Enqueue { flow = flow st; occ_bytes = occ st; occ_pkts = pkts st });
      (fun st ->
        Trace.Dequeue { flow = flow st; occ_bytes = occ st; occ_pkts = pkts st });
      (fun st -> Trace.Drop { flow = flow st; occ_bytes = occ st });
      (fun st ->
        Trace.Mark { flow = flow st; occ_bytes = occ st; occ_pkts = pkts st });
      (fun st ->
        Trace.Mark_state_flip { marking = bool st; occ_bytes = occ st });
      (fun st ->
        Trace.Cwnd_cut
          {
            flow = flow st;
            cwnd_before = posf st;
            cwnd_after = posf st;
            alpha = float_range 0. 1. st;
          });
      (fun st -> Trace.Fast_retransmit { flow = flow st; snd_una = occ st });
      (fun st ->
        Trace.Rto { flow = flow st; snd_una = occ st; timeouts = pkts st });
      (fun st -> Trace.Flow_start { flow = flow st });
      (fun st -> Trace.Flow_done { flow = flow st; segments = occ st });
      (fun st -> Trace.Link_down { occ_bytes = occ st });
      (fun st -> Trace.Link_up { occ_bytes = occ st });
      (fun st -> Trace.Pkt_lost { flow = flow st; size = occ st });
      (fun st ->
        Trace.Mark_suppressed { occ_bytes = occ st; occ_pkts = pkts st });
      (fun st -> Trace.Rate_changed { rate_bps = posf st });
    ]

let gen_records =
  QCheck.Gen.(
    list_size (int_range 0 60) (pair (int_range 0 50) gen_event)
    >|= fun deltas ->
    let t = ref 0L in
    List.map
      (fun (dt, ev) ->
        t := Int64.add !t (Int64.of_int dt);
        mk ~t:(Time.of_ns !t) ev)
      deltas)

let analyzer_bit_identity =
  QCheck.Test.make ~count:50
    ~name:"JSONL round-trip drives a bit-identical analysis"
    (QCheck.make gen_records)
    (fun records ->
      let cfg = an_config ~band:(30_000, 60_000) () in
      let direct = An.create cfg in
      let replayed = An.create cfg in
      let direct_tr = An.tracer direct in
      let replay_tr = An.tracer replayed in
      List.iter
        (fun r ->
          Trace.emit direct_tr r;
          let line = Json.to_string (Trace.record_to_json r) in
          match Json.parse line with
          | Error e -> QCheck.Test.fail_report e
          | Ok j -> (
              match Trace.record_of_json j with
              | Ok r' -> Trace.emit replay_tr r'
              | Error e -> QCheck.Test.fail_report e))
        records;
      Json.equal (An.to_json direct) (An.to_json replayed))

(* --- self-profiler --- *)

let test_selfprof_counts () =
  (* A deterministic scenario with known class tags: the profiler's
     per-class counts must match exactly what was scheduled. *)
  let cls i = Engine.Event_class.index i in
  let prof = Obs.Selfprof.create ~sample_every:2 () in
  let sim = Sim.create () in
  Obs.Selfprof.attach prof sim;
  for i = 1 to 5 do
    ignore
      (Sim.schedule_at_cls sim
         (Time.of_ns (Int64.of_int i))
         ~cls:(cls Engine.Event_class.Timer)
         (fun () -> ()))
  done;
  for i = 6 to 8 do
    ignore
      (Sim.schedule_at_cls sim
         (Time.of_ns (Int64.of_int i))
         ~cls:(cls Engine.Event_class.Link_tx)
         (fun () -> ()))
  done;
  ignore (Sim.schedule_at sim (Time.of_ns 9L) (fun () -> ()));
  Sim.run sim;
  Alcotest.(check int) "timer events" 5
    (Obs.Selfprof.count prof Engine.Event_class.Timer);
  Alcotest.(check int) "link_tx events" 3
    (Obs.Selfprof.count prof Engine.Event_class.Link_tx);
  Alcotest.(check int) "untagged events land in Other" 1
    (Obs.Selfprof.count prof Engine.Event_class.Other);
  Alcotest.(check int) "total matches the engine" (Sim.events_processed sim)
    (Obs.Selfprof.total prof);
  Alcotest.(check int) "1-in-2 sampling timed half" 4
    (Obs.Selfprof.sampled_total prof);
  (* Detached: the hooks fall silent. *)
  Obs.Selfprof.detach sim;
  Alcotest.(check bool) "profiling off" false (Sim.profiling sim);
  ignore (Sim.schedule_at sim (Time.of_ns 20L) (fun () -> ()));
  Sim.run sim;
  Alcotest.(check int) "no counts after detach" 9 (Obs.Selfprof.total prof)

let test_selfprof_longlived () =
  (* On a real run the profiler observes exactly the engine's event
     count, and its trace-correlated classes line up with the trace:
     every Sample-class event is a sampler tick, every Timer-class
     event an RTO/timer fire. The strong assertion that stays exact is
     the total. *)
  let prof = Obs.Selfprof.create () in
  let proto = Dctcp.Protocol.dt_dctcp_pkts ~k1:30 ~k2:50 () in
  let config = small_config 3L 2 in
  let metrics = Obs.Metrics.create () in
  let _r =
    Workloads.Longlived.run ~metrics
      ~on_sim:(fun sim -> Obs.Selfprof.attach prof sim)
      proto config
  in
  let events =
    match List.assoc_opt "engine.events_processed" (Obs.Metrics.snapshot metrics) with
    | Some v -> int_of_float v
    | None -> Alcotest.fail "no engine.events_processed metric"
  in
  Alcotest.(check int) "profiler saw every engine event" events
    (Obs.Selfprof.total prof);
  Alcotest.(check bool)
    "protocol-class events observed" true
    (Obs.Selfprof.count prof Engine.Event_class.Protocol > 0);
  Alcotest.(check bool)
    "link-tx events dominate" true
    (Obs.Selfprof.count prof Engine.Event_class.Link_tx > 0);
  (* The JSON report carries one entry per class, counts first. *)
  match Json.member "classes" (Obs.Selfprof.to_json prof) with
  | Some (Json.List l) ->
      Alcotest.(check int) "one entry per class" Engine.Event_class.count
        (List.length l)
  | _ -> Alcotest.fail "profile JSON lacks classes"

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "class filtering" `Quick test_filtering;
        Alcotest.test_case "null tracer" `Quick test_null_tracer;
        Alcotest.test_case "cls_name roundtrip" `Quick test_cls_name_roundtrip;
        Alcotest.test_case "ring bounding" `Quick test_ring_bounding;
        Alcotest.test_case "record serialization" `Quick
          test_record_serialization;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "metrics registry" `Quick test_metrics;
        Alcotest.test_case "manifest roundtrip" `Quick test_manifest_roundtrip;
        Alcotest.test_case "sampler" `Quick test_sampler;
        Alcotest.test_case "sim instrument hooks" `Quick test_sim_instrument;
        qtest determinism_invariance;
        Alcotest.test_case "tee" `Quick test_tee;
        Alcotest.test_case "record_of_json every constructor" `Quick
          test_record_of_json_every_constructor;
      ] );
    ( "obs.analyze",
      [
        Alcotest.test_case "zero-order-hold resampling" `Quick
          test_analyze_resampling;
        Alcotest.test_case "cycle detector" `Quick test_analyze_cycles;
        Alcotest.test_case "flips and sync index" `Quick
          test_analyze_flips_and_sync;
        Alcotest.test_case "dominant frequency + diagnostics" `Quick
          test_analyze_spectrum;
        Alcotest.test_case "input validation" `Quick test_analyze_errors;
        Alcotest.test_case "trace header roundtrip" `Quick
          test_analyze_header_roundtrip;
        qtest analyzer_bit_identity;
      ] );
    ( "obs.selfprof",
      [
        Alcotest.test_case "per-class counts" `Quick test_selfprof_counts;
        Alcotest.test_case "longlived run totals" `Quick
          test_selfprof_longlived;
      ] );
  ]
