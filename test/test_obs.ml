(* Tests for the observability layer (lib/obs): trace filtering and ring
   bounding, serialization, the metrics registry, manifest round-trips,
   the shared sampler, engine profiling hooks, and the load-bearing
   property that attaching observers never changes simulation results. *)

module Trace = Obs.Trace
module Json = Obs.Json
module Sim = Engine.Sim
module Time = Engine.Time

let mk ?(t = Time.zero) ?(component = "q") event =
  { Trace.time = t; component; event }

let enq ?(t = Time.zero) flow =
  mk ~t (Trace.Enqueue { flow; occ_bytes = 1500; occ_pkts = 1 })

let drop ?(t = Time.zero) flow = mk ~t (Trace.Drop { flow; occ_bytes = 3000 })

(* --- class filtering --- *)

let test_filtering () =
  let seen = ref [] in
  let tr =
    Trace.create ~classes:[ Trace.C_drop ]
      (Trace.Fn (fun r -> seen := r :: !seen))
  in
  Alcotest.(check bool) "drop enabled" true (Trace.enabled tr Trace.C_drop);
  Alcotest.(check bool)
    "enqueue disabled" false
    (Trace.enabled tr Trace.C_enqueue);
  Trace.emit tr (enq 0);
  Trace.emit tr (drop 1);
  Trace.emit tr (enq 2);
  Alcotest.(check int) "only the drop got through" 1 (List.length !seen);
  Trace.set_classes tr [ Trace.C_enqueue ];
  Trace.emit tr (drop 3);
  Trace.emit tr (enq 4);
  Alcotest.(check int) "reconfigured live" 2 (List.length !seen)

let test_null_tracer () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Trace.cls_name c ^ " disabled on null")
        false
        (Trace.enabled Trace.null c))
    Trace.all_classes;
  (* Emitting into null is a silent no-op, but reconfiguring the shared
     tracer would enable tracing globally, so it must be rejected. *)
  Trace.emit Trace.null (drop 0);
  Alcotest.(check bool)
    "set_classes on null rejected" true
    (match Trace.set_classes Trace.null [ Trace.C_drop ] with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_cls_name_roundtrip () =
  List.iter
    (fun c ->
      match Trace.cls_of_name (Trace.cls_name c) with
      | Some c' ->
          Alcotest.(check string)
            "roundtrip" (Trace.cls_name c) (Trace.cls_name c')
      | None -> Alcotest.fail ("cls_of_name failed for " ^ Trace.cls_name c))
    Trace.all_classes;
  Alcotest.(check bool)
    "unknown name" true
    (Trace.cls_of_name "no_such_event" = None)

(* --- ring buffer --- *)

let test_ring_bounding () =
  let r = Trace.ring ~capacity:4 in
  let tr = Trace.create (Trace.Ring r) in
  for i = 1 to 10 do
    Trace.emit tr (enq ~t:(Time.of_ns (Int64.of_int i)) i)
  done;
  Alcotest.(check int) "length capped" 4 (Trace.ring_length r);
  Alcotest.(check int) "total uncapped" 10 (Trace.ring_total r);
  let times =
    List.map
      (fun (rec_ : Trace.record) -> Time.to_ns rec_.Trace.time)
      (Trace.ring_records r)
  in
  Alcotest.(check (list int64))
    "keeps the most recent, oldest first" [ 7L; 8L; 9L; 10L ] times;
  Alcotest.(check bool)
    "capacity must be positive" true
    (match Trace.ring ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- serialization --- *)

let test_record_serialization () =
  let r = mk ~t:(Time.of_ns 42L) ~component:"bottleneck" (Trace.Drop { flow = 3; occ_bytes = 9000 }) in
  let j = Trace.record_to_json r in
  Alcotest.(check bool)
    "t_ns" true
    (Json.member "t_ns" j = Some (Json.Int 42));
  Alcotest.(check bool)
    "event tag" true
    (Json.member "event" j = Some (Json.String "drop"));
  Alcotest.(check bool)
    "flow" true
    (Json.member "flow" j = Some (Json.Int 3));
  let cols s = List.length (String.split_on_char ',' s) in
  List.iter
    (fun ev ->
      Alcotest.(check int)
        ("csv column count: " ^ Trace.cls_name (Trace.cls_of_event ev))
        (cols Trace.csv_header)
        (cols (Trace.record_to_csv (mk ev))))
    [
      Trace.Enqueue { flow = 0; occ_bytes = 1500; occ_pkts = 1 };
      Trace.Dequeue { flow = 0; occ_bytes = 0; occ_pkts = 0 };
      Trace.Drop { flow = 1; occ_bytes = 100 };
      Trace.Mark { flow = 1; occ_bytes = 100; occ_pkts = 2 };
      Trace.Mark_state_flip { marking = true; occ_bytes = 45000 };
      Trace.Cwnd_cut { flow = 2; cwnd_before = 10.; cwnd_after = 6.; alpha = 0.4 };
      Trace.Fast_retransmit { flow = 2; snd_una = 77 };
      Trace.Rto { flow = 2; snd_una = 77; timeouts = 1 };
      Trace.Flow_start { flow = 5 };
      Trace.Flow_done { flow = 5; segments = 1000 };
    ]

(* --- Json parse / print --- *)

let test_json_roundtrip () =
  let samples =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 0.1;
      Json.Float 1e-9;
      Json.Float 123456789.125;
      Json.String "with \"quotes\" and \\ and \n";
      Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ];
      Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool false ]) ];
    ]
  in
  List.iter
    (fun j ->
      let s = Json.to_string j in
      match Json.parse s with
      | Ok j' ->
          Alcotest.(check bool) ("roundtrip " ^ s) true (Json.equal j j')
      | Error e -> Alcotest.fail (Printf.sprintf "parse %s: %s" s e))
    samples;
  (* A Float must never come back as an Int — equality is constructor-
     sensitive, so 1.0 must print with a '.' or exponent. *)
  (match Json.parse (Json.to_string (Json.Float 1.0)) with
  | Ok (Json.Float _) -> ()
  | Ok _ -> Alcotest.fail "Float 1.0 reparsed as non-Float"
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool)
    "trailing garbage rejected" true
    (match Json.parse "1 x" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool)
    "truncated object rejected" true
    (match Json.parse "{\"a\": 1" with Error _ -> true | Ok _ -> false)

(* --- metrics registry --- *)

let test_metrics () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "z.count" in
  let g = Obs.Metrics.gauge m "a.gauge" in
  Obs.Metrics.probe m "m.probe" (fun () -> 7.5);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Obs.Metrics.set g 2.25;
  Alcotest.(check int) "counter reads back" 11 (Obs.Metrics.count c);
  Alcotest.(check (float 0.)) "gauge reads back" 2.25 (Obs.Metrics.value g);
  Alcotest.(check (list (pair string (float 0.))))
    "snapshot is name-sorted"
    [ ("a.gauge", 2.25); ("m.probe", 7.5); ("z.count", 11.) ]
    (Obs.Metrics.snapshot m);
  Alcotest.(check bool)
    "duplicate name rejected" true
    (match Obs.Metrics.counter m "a.gauge" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- manifest round-trip --- *)

let test_manifest_roundtrip () =
  let m =
    Obs.Manifest.make ~name:"test.run" ~seed:0x7FFF_FFFF_FFFF_FFFDL
      ~params:[ ("flows", Json.Int 8); ("protocol", Json.String "dt-dctcp") ]
      ~wall_clock_s:1.5 ~events:3000
      ~metrics:[ ("z", 1.); ("a", 2.5) ]
  in
  Alcotest.(check (float 0.)) "events_per_s computed" 2000. m.Obs.Manifest.events_per_s;
  Alcotest.(check (list (pair string (float 0.))))
    "metrics sorted" [ ("a", 2.5); ("z", 1.) ] m.Obs.Manifest.metrics;
  match Obs.Manifest.of_json (Obs.Manifest.to_json m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
      Alcotest.(check string) "name" m.Obs.Manifest.name m'.Obs.Manifest.name;
      Alcotest.(check int64) "seed survives as int64" m.Obs.Manifest.seed m'.Obs.Manifest.seed;
      Alcotest.(check int) "events" m.Obs.Manifest.events m'.Obs.Manifest.events;
      Alcotest.(check (float 0.)) "wall" m.Obs.Manifest.wall_clock_s m'.Obs.Manifest.wall_clock_s;
      Alcotest.(check (list (pair string (float 0.))))
        "metrics" m.Obs.Manifest.metrics m'.Obs.Manifest.metrics;
      Alcotest.(check bool)
        "params" true
        (Json.equal
           (Json.Obj m.Obs.Manifest.params)
           (Json.Obj m'.Obs.Manifest.params))

(* --- sampler --- *)

let test_sampler () =
  let sim = Sim.create () in
  let ticks = ref [] in
  let s =
    Obs.Sampler.start sim ~period:10L ~stop_at:(Time.of_ns 35L) ~immediate:true (fun now ->
        ticks := Time.to_ns now :: !ticks)
  in
  Sim.run sim;
  Alcotest.(check (list int64))
    "immediate: t=0 then every period up to stop_at" [ 0L; 10L; 20L; 30L ]
    (List.rev !ticks);
  Alcotest.(check bool) "still active when merely drained" true
    (Obs.Sampler.active s);
  (* Deferred first tick: fires one period in even if that lands past
     stop_at (Net.Trace's historic contract). *)
  let sim = Sim.create () in
  let ticks = ref [] in
  ignore
    (Obs.Sampler.start sim ~period:50L ~stop_at:(Time.of_ns 20L) (fun now ->
         ticks := Time.to_ns now :: !ticks));
  Sim.run sim;
  Alcotest.(check (list int64)) "deferred first tick unconditional" [ 50L ] !ticks;
  (* stop detaches mid-run. *)
  let sim = Sim.create () in
  let count = ref 0 in
  let s =
    Obs.Sampler.start sim ~period:10L ~stop_at:(Time.of_ns 1000L) ~immediate:true (fun _ ->
        incr count)
  in
  ignore
    (Sim.schedule_at sim (Time.of_ns 25L) (fun () -> Obs.Sampler.stop s));
  Sim.run sim;
  Alcotest.(check int) "stopped after t=25" 3 !count;
  Alcotest.(check bool) "inactive after stop" false (Obs.Sampler.active s);
  Alcotest.(check bool)
    "non-positive period rejected" true
    (match
       Obs.Sampler.start sim ~period:0L ~stop_at:(Time.of_ns 10L) (fun _ -> ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- engine profiling hooks --- *)

let test_sim_instrument () =
  let sim = Sim.create () in
  let calls = ref 0 in
  Sim.set_instrument sim (fun () -> incr calls);
  for i = 1 to 5 do
    ignore (Sim.schedule_at sim (Time.of_ns (Int64.of_int i)) (fun () -> ()))
  done;
  Sim.run sim;
  Alcotest.(check int) "instrument called once per event" 5 !calls;
  Alcotest.(check int)
    "calls match the engine's own count" (Sim.events_processed sim) !calls;
  Alcotest.(check int) "heap high-water saw the burst" 5 (Sim.heap_high_water sim);
  Sim.clear_instrument sim;
  ignore (Sim.schedule_at sim (Time.of_ns 10L) (fun () -> ()));
  Sim.run sim;
  Alcotest.(check int) "cleared hook is silent" 5 !calls

(* --- observability must not perturb the simulation --- *)

let small_config seed n_flows =
  {
    Workloads.Longlived.default_config with
    Workloads.Longlived.n_flows;
    warmup = Time.span_of_ms 2.;
    measure = Time.span_of_ms 5.;
    seed;
  }

let snapshot_with_observers ~observe proto config =
  let metrics = Obs.Metrics.create () in
  let result =
    if observe then begin
      let ring = Trace.create (Trace.Ring (Trace.ring ~capacity:1024)) in
      let tmp = Filename.temp_file "test_obs" ".csv" in
      let oc = open_out tmp in
      let csv = Trace.create (Trace.Csv oc) in
      (* Drive both a ring and a CSV sink through one Fn fan-out so a
         single run exercises every serialization path. *)
      let tr =
        Trace.create
          (Trace.Fn
             (fun r ->
               Trace.emit csv r;
               Trace.emit ring r))
      in
      let result = Workloads.Longlived.run ~tracer:tr ~metrics proto config in
      close_out oc;
      Sys.remove tmp;
      result
    end
    else Workloads.Longlived.run ~metrics proto config
  in
  (result, Obs.Metrics.snapshot metrics)

let determinism_invariance =
  QCheck.Test.make ~count:4
    ~name:"attaching tracer+metrics never changes results"
    QCheck.(pair (int_range 1 3) small_int)
    (fun (n_flows, seed_base) ->
      let proto = Dctcp.Protocol.dt_dctcp_pkts ~k1:30 ~k2:50 () in
      let config = small_config (Int64.of_int (seed_base + 1)) n_flows in
      let bare, snap_bare = snapshot_with_observers ~observe:false proto config in
      let full, snap_full = snapshot_with_observers ~observe:true proto config in
      (* Bit-exact equality: determinism means the observed run IS the
         bare run. *)
      snap_bare = snap_full
      && bare.Workloads.Longlived.mean_queue_pkts
         = full.Workloads.Longlived.mean_queue_pkts
      && bare.Workloads.Longlived.throughput_bps
         = full.Workloads.Longlived.throughput_bps
      && bare.Workloads.Longlived.drops = full.Workloads.Longlived.drops)

let qtest = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "class filtering" `Quick test_filtering;
        Alcotest.test_case "null tracer" `Quick test_null_tracer;
        Alcotest.test_case "cls_name roundtrip" `Quick test_cls_name_roundtrip;
        Alcotest.test_case "ring bounding" `Quick test_ring_bounding;
        Alcotest.test_case "record serialization" `Quick
          test_record_serialization;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "metrics registry" `Quick test_metrics;
        Alcotest.test_case "manifest roundtrip" `Quick test_manifest_roundtrip;
        Alcotest.test_case "sampler" `Quick test_sampler;
        Alcotest.test_case "sim instrument hooks" `Quick test_sim_instrument;
        qtest determinism_invariance;
      ] );
  ]
